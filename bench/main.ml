(* Benchmark harness.

   Two layers:

   1. The experiment tables (E1-E13, from Core.Experiment_registry) — the
      paper has no measured tables of its own, so these claim-derived
      tables ARE the reproduction targets; running this binary regenerates
      every one of them (also individually: `dune exec bench/main.exe -- e4`;
      unknown ids are an error).

   2. Bechamel wall-clock benchmarks — one Test.make per registered
      experiment at its reduced parameter set (the cost of regenerating
      it), plus microbenchmarks of the simulator substrate and the
      ablations called out in DESIGN.md (peek cost, snapshot cost, erasure
      cost, adversary stability horizon). *)

open Bechamel
open Toolkit

(* Both layers enumerate Core.Experiment_registry: the full tables run the
   Default parameter sets; the bechamel subjects time the same runs at the
   registry's Reduced sets.  Adding an experiment to the registry adds it
   here automatically. *)

let registry = Core.Experiment_registry.all ()

let run_spec size (spec : Core.Experiment_def.spec) =
  spec.Core.Experiment_def.run ~jobs:1 size

let print_tables names =
  let valid = Core.Experiment_registry.ids () in
  (match List.filter (fun n -> not (List.mem n valid)) names with
  | [] -> ()
  | unknown ->
    Printf.eprintf "bench: unknown experiment id(s): %s\nvalid ids: %s\n"
      (String.concat ", " unknown)
      (String.concat " " valid);
    exit 2);
  List.iter
    (fun (spec : Core.Experiment_def.spec) ->
      if names = [] || List.mem spec.Core.Experiment_def.id names then
        List.iter
          (fun t ->
            Core.Report.print (Core.Results.to_report t);
            print_newline ())
          (run_spec Core.Experiment_def.Default spec))
    registry

(* --- bechamel subjects --- *)

(* Table-regeneration benches at the registry's reduced parameter sets, so
   the suite stays fast. *)
let table_benches =
  List.map
    (fun (spec : Core.Experiment_def.spec) ->
      Test.make
        ~name:("table/" ^ spec.Core.Experiment_def.id)
        (Staged.stage (fun () -> run_spec Core.Experiment_def.Reduced spec)))
    registry

(* Substrate microbenchmarks. *)

let sim_workload n =
  let open Smr in
  let ctx = Var.Ctx.create () in
  let vars =
    Array.init n (fun i ->
        Var.Ctx.int ctx ~name:(Printf.sprintf "v%d" i) ~home:(Var.Module i) 0)
  in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n in
  (sim, vars)

let bench_sim_steps =
  Test.make ~name:"sim/1000-steps"
    (Staged.stage (fun () ->
         let open Smr in
         let sim, vars = sim_workload 8 in
         let prog p =
           Program.map (fun () -> 0)
             (Program.for_ 1 125 (fun _ ->
                  Program.Syntax.(
                    let* v = Program.read vars.(p) in
                    Program.write vars.(p) (v + 1))))
         in
         let sim =
           List.fold_left
             (fun sim p -> fst (Sim.run_call sim p ~label:"w" (prog p)))
             sim
             (List.init 8 Fun.id)
         in
         assert (Sim.clock sim > 1000)))

let bench_snapshot =
  (* DESIGN.md decision 2: snapshots are O(1) because state is persistent —
     taking one is just keeping a binding. *)
  Test.make ~name:"sim/snapshot-and-diverge"
    (Staged.stage (fun () ->
         let open Smr in
         let sim, vars = sim_workload 4 in
         let sim = fst (Sim.run_call sim 0 ~label:"w" (Program.map (fun () -> 0) (Program.write vars.(0) 1))) in
         let snapshot = sim in
         let sim' = fst (Sim.run_call sim 1 ~label:"w" (Program.map (fun () -> 0) (Program.write vars.(1) 1))) in
         assert (Sim.total_rmrs snapshot <= Sim.total_rmrs sim')))

let bench_erase =
  Test.make ~name:"sim/erase-replay-64"
    (Staged.stage (fun () ->
         let open Smr in
         let n = 64 in
         let sim, vars = sim_workload n in
         let sim =
           List.fold_left
             (fun sim p ->
               fst
                 (Sim.run_call sim p ~label:"w"
                    (Program.map (fun () -> 0) (Program.write vars.(p) 1))))
             sim
             (List.init n Fun.id)
         in
         ignore (Sim.erase sim [ 7 ])))

let bench_peek =
  (* DESIGN.md decision 1: peeking a pending operation is a pattern match,
     not a re-execution. *)
  Test.make ~name:"sim/peek"
    (Staged.stage
       (let open Smr in
        let sim, vars = sim_workload 2 in
        let sim =
          Sim.begin_call sim 0 ~label:"w"
            (Program.map (fun () -> 0) (Program.write vars.(0) 1))
        in
        fun () -> assert (Sim.peek sim 0 <> None)))

(* Tracing ablation: the instrumented hot paths hold an [Obs.Trace.t
   option] and skip everything on [None], so an untraced run must cost
   the same as before the observability layer existed — compare these two
   subjects to see the overhead of tracing and the (near-)absence of
   overhead when it is off.  Both assert the traced and untraced runs
   compute identical accounting: observation never perturbs the run. *)
let trace_scenario tracer =
  let m = Option.get (Core.Experiment.find_algorithm "cc-flag") in
  let module A = (val m : Core.Signaling.POLLING) in
  let cfg = Core.Experiment.config_for m ~n:16 in
  Core.Scenario.run_phased (module A) ~model:`Cc_wt ~cfg ?tracer ()

let bench_trace_off =
  Test.make ~name:"obs/phased-16-untraced"
    (Staged.stage (fun () ->
         let o = trace_scenario None in
         assert (o.Core.Scenario.violations = [])))

let bench_trace_on =
  Test.make ~name:"obs/phased-16-traced"
    (Staged.stage (fun () ->
         let baseline = trace_scenario None in
         let tr = Obs.Trace.create () in
         let o = trace_scenario (Some tr) in
         assert (o.Core.Scenario.violations = []);
         assert (o.Core.Scenario.total_rmrs = baseline.Core.Scenario.total_rmrs);
         assert (
           int_of_float
             (Obs.Metrics.total (Obs.Trace.metrics tr) "rmr_total")
           = o.Core.Scenario.total_rmrs)))

let bench_adversary_horizon polls =
  Test.make
    ~name:(Printf.sprintf "ablate/adversary-stability-polls-%d" polls)
    (Staged.stage (fun () ->
         let r =
           Core.Adversary.run (module Core.Dsm_broadcast) ~n:32
             ~stability_polls:polls ()
         in
         assert (r.Core.Adversary.participants = 1)))

let micro_benches =
  [ bench_sim_steps; bench_snapshot; bench_erase; bench_peek;
    bench_trace_off; bench_trace_on;
    bench_adversary_horizon 1; bench_adversary_horizon 3;
    bench_adversary_horizon 6 ]

let estimate_ns instance raw =
  match
    Analyze.one
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  with
  | ols -> (
    match Analyze.OLS.estimates ols with
    | Some [ ns ] -> Some ns
    | Some _ | None -> None)
  | exception _ -> None

let run_benchmarks () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let tests = table_benches @ micro_benches in
  Fmt.pr "== bechamel: wall-clock per regeneration ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match estimate_ns instance raw with
          | Some ns -> Fmt.pr "  %-40s %12.0f ns/run@." name ns
          | None -> Fmt.pr "  %-40s (no estimate)@." name)
        results)
    tests

(* --- machine-readable perf baseline (--json) --- *)

(* The substrate microbenchmarks at a quick quota, one row per subject.
   Subjects are sorted by name: the bechamel result table iterates in hash
   order, and the JSON document must be schema-stable run to run (the
   VALUES are wall-clock measurements and of course vary — CI asserts the
   shape, never the numbers). *)
let micro_json_table () =
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.1) ~stabilize:false ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        Hashtbl.fold
          (fun name raw acc ->
            match estimate_ns instance raw with
            | Some ns -> (name, ns) :: acc
            | None -> acc)
          results [])
      micro_benches
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
  in
  Core.Results.make ~experiment:"bench" ~part:"micro"
    ~title:"Substrate microbenchmarks (bechamel, quick quota)"
    ~claim:"wall-clock cost per run of the simulator substrate"
    ~columns:Core.Results.[ param "subject"; measure "ns_per_run" ]
    (List.map
       (fun (name, ns) -> Core.Results.[ text name; float ~digits:0 ns ])
       rows)

(* Explorer throughput on the reference configuration of the perf work
   (cc-flag, N=4, three waiters, two polls) — the states/second figure the
   allocation-lean search is judged by, at one and two domains. *)
let explore_json_table () =
  let open Smr in
  let m = Option.get (Core.Experiment.find_algorithm "cc-flag") in
  let module A = (val m : Core.Signaling.POLLING) in
  let n = 4 and polls = 2 in
  let waiter_pids = [ 1; 2; 3 ] in
  let ctx = Var.Ctx.create () in
  let cfg = Core.Signaling.config ~n ~waiters:waiter_pids ~signalers:[ 0 ] in
  let inst = Core.Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    ( 0,
      Explore.of_list
        [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal 0) ] )
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
         waiter_pids
  in
  let row jobs =
    let r =
      Explore.check ~jobs ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
        ~property:Core.Signaling.polling_ok ()
    in
    let wall = r.Explore.stats.Explore.wall_s in
    let states = r.Explore.stats.Explore.states in
    Core.Results.
      [ int jobs; int states; float ~digits:4 wall;
        float ~digits:0 (float_of_int states /. Float.max wall 1e-9);
        int r.Explore.histories; bool r.Explore.complete ]
  in
  Core.Results.make ~experiment:"bench" ~part:"explore"
    ~title:
      (Printf.sprintf "Explorer throughput, %s N=%d %d waiters %d polls"
         A.name n (List.length waiter_pids) polls)
    ~claim:"states/second of the exhaustive search, reference configuration"
    ~params:
      Core.Results.
        [ ("algorithm", text A.name); ("n", int n);
          ("waiters", int (List.length waiter_pids)); ("polls", int polls) ]
    ~columns:
      Core.Results.
        [ param "jobs"; measure "states"; measure "wall_s";
          measure "states_per_sec"; measure "histories"; measure "complete" ]
    [ row 1; row 2 ]

(* Symmetry reduction and spill-to-disk at the 4-waiter reference
   configuration (cc-flag, N=5, four waiters, two polls, monolithic
   search).  The search stays monolithic ([split_depth:0]) so one shared
   dedup table sees every state: under the frontier split each task holds
   a private table and permuted twin subtrees land in different tasks,
   which understates the orbit reduction.  [symmetry_factor] is the
   measured states ratio against the no-symmetry row — CI gates it at
   >= 10x — and the spill row re-runs the reduced search under a resident
   budget small enough to force real paging, whose verdict and search
   counters must match the in-memory row exactly. *)
let explore_scale_json_table () =
  let open Smr in
  let m = Option.get (Core.Experiment.find_algorithm "cc-flag") in
  let module A = (val m : Core.Signaling.POLLING) in
  let n = 5 and polls = 2 in
  let waiter_pids = [ 1; 2; 3; 4 ] in
  let ctx = Var.Ctx.create () in
  let cfg = Core.Signaling.config ~n ~waiters:waiter_pids ~signalers:[ 0 ] in
  let inst = Core.Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    ( 0,
      Explore.of_list
        [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal 0) ] )
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
         waiter_pids
  in
  let symmetry =
    Explore.detect_symmetry
      ~values:(Analysis.Lint.value_domain ~n ~layout)
      (List.map
         (fun w ->
           (w, (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w)))
         waiter_pids)
  in
  assert (Sim.Pid_set.cardinal symmetry = List.length waiter_pids);
  let run ~symmetry ?mem_budget ?spill_seg_keys () =
    Explore.check ~split_depth:0 ~symmetry ?mem_budget ?spill_seg_keys
      ~spill_dir:
        (Filename.concat (Filename.get_temp_dir_name ())
           "separation-bench-spill")
      ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
      ~property:Core.Signaling.polling_ok ()
  in
  let plain = run ~symmetry:Sim.Pid_set.empty () in
  let reduced = run ~symmetry () in
  let spilled = run ~symmetry ~mem_budget:(256 * 1024) ~spill_seg_keys:512 () in
  assert (spilled.Explore.stats.Explore.spill_segments > 0);
  assert (
    (reduced.Explore.histories, reduced.Explore.complete,
     reduced.Explore.stats.Explore.states)
    = (spilled.Explore.histories, spilled.Explore.complete,
       spilled.Explore.stats.Explore.states));
  let row mode (r : Explore.result) =
    let s = r.Explore.stats in
    let wall = s.Explore.wall_s in
    Core.Results.
      [ text mode; int s.Explore.states; float ~digits:4 wall;
        float ~digits:0 (float_of_int s.Explore.states /. Float.max wall 1e-9);
        int s.Explore.fp_distinct; int s.Explore.orbit_hits;
        int s.Explore.spill_segments; bool r.Explore.complete;
        float ~digits:2
          (float_of_int plain.Explore.stats.Explore.states
          /. float_of_int (max 1 s.Explore.states)) ]
  in
  Core.Results.make ~experiment:"bench" ~part:"explore-scale"
    ~title:
      (Printf.sprintf
         "Symmetry reduction and spill, %s N=%d %d waiters %d polls \
          (monolithic)"
         A.name n (List.length waiter_pids) polls)
    ~claim:
      "orbit-canonical symmetry reduction shrinks the exhaustive search >= \
       10x at the 4-waiter reference configuration; a spilled run matches \
       it exactly"
    ~params:
      Core.Results.
        [ ("algorithm", text A.name); ("n", int n);
          ("waiters", int (List.length waiter_pids)); ("polls", int polls);
          ("split_depth", int 0) ]
    ~columns:
      Core.Results.
        [ param "mode"; measure "states"; measure "wall_s";
          measure "states_per_sec"; measure "fp_distinct";
          measure "orbit_hits"; measure "spill_segments"; measure "complete";
          measure "symmetry_factor" ]
    [ row "no-symmetry" plain; row "symmetry" reduced;
      row "symmetry-spill" spilled ]

(* Flat-engine throughput under the open-system workload driver — the
   figures the struct-of-arrays refactor is judged by: states/second,
   resident bytes per process, and minor-heap words allocated per step.
   The engine itself allocates nothing in steady state; what remains is
   the bounded constant the free-monad interpretation costs per effect
   (continuation closures and the boxed result), independent of n and k —
   CI asserts the per-step figure stays a small constant. *)
let load_json_table () =
  let scenario algorithm model =
    let m = Option.get (Core.Experiment.find_algorithm algorithm) in
    Core.Loadgen.scenario ~ways:2 ~algorithm:m ~model
      { Workload.Driver.default_spec with
        seed = 6;
        waiters = 10_000;
        polls_per_waiter = 2;
        signals = 16;
        signal_every = max 1 (4 * 10_000 / 16) }
  in
  let row sc =
    (* warm-up run excluded from the allocation window: first-touch work
       (array growth in the driver, cache population) is not steady state *)
    ignore (Core.Loadgen.run sc);
    let w0 = Gc.minor_words () in
    let r, t = Core.Loadgen.timed sc in
    let words = Gc.minor_words () -. w0 in
    let (module A : Core.Signaling.POLLING) = sc.Core.Loadgen.sc_algorithm in
    Core.Results.
      [ text A.name;
        text (Core.Scenario.model_tag_name sc.Core.Loadgen.sc_model);
        int sc.Core.Loadgen.sc_spec.Workload.Driver.waiters;
        int t.Core.Loadgen.steps;
        float ~digits:4 t.Core.Loadgen.elapsed_s;
        float ~digits:0 t.Core.Loadgen.states_per_sec;
        int t.Core.Loadgen.bytes_per_process;
        float ~digits:1
          (words /. float_of_int (max 1 r.Workload.Driver.r_steps)) ]
  in
  Core.Results.make ~experiment:"bench" ~part:"load"
    ~title:"Flat-engine open-system throughput (k=10000, 16 signals)"
    ~claim:
      "states/second and minor-words/step of the flat simulation engine \
       under the workload driver"
    ~params:Core.Results.[ ("k", int 10_000); ("signals", int 16) ]
    ~columns:
      Core.Results.
        [ param "algorithm"; param "model"; param "k"; measure "steps";
          measure "wall_s"; measure "states_per_sec"; measure "bytes_per_proc";
          measure "minor_words_per_step" ]
    [ row (scenario "cc-flag" `Cc_wt); row (scenario "dsm-broadcast" `Dsm) ]

(* Counter-plane overhead on the flat path: the load part's cc-flag
   scenario run twice, counters off and counters on.  CI gates the
   minor-words/step figure on BOTH rows — arming the planes must not
   reintroduce steady-state allocation — and the hot-cell columns give the
   profile layer a committed baseline (cc-flag concentrates its RMRs on
   one cell). *)
let profile_json_table () =
  let scenario () =
    let m = Option.get (Core.Experiment.find_algorithm "cc-flag") in
    Core.Loadgen.scenario ~ways:2 ~algorithm:m ~model:`Cc_wt
      { Workload.Driver.default_spec with
        seed = 6;
        waiters = 10_000;
        polls_per_waiter = 2;
        signals = 16;
        signal_every = max 1 (4 * 10_000 / 16) }
  in
  let row ~counters_on =
    let sc = scenario () in
    let counters =
      if counters_on then begin
        let _, layout, n = Core.Loadgen.prepare sc in
        Some
          (Obs.Counters.create ~groups:2 ~n
             ~size:(Smr.Var.layout_size layout) ())
      end
      else None
    in
    (* warm-up run excluded from the allocation window, as in the load
       part; the planes are re-zeroed so the measured run's counts stand
       alone *)
    ignore (Core.Loadgen.run ?counters sc);
    (match counters with Some c -> Obs.Counters.reset c | None -> ());
    let w0 = Gc.minor_words () in
    let t0 = Obs.Clock.now_s () in
    let r = Core.Loadgen.run ?counters sc in
    let elapsed = Obs.Clock.elapsed_s ~since:t0 in
    let words = Gc.minor_words () -. w0 in
    let steps = r.Workload.Driver.r_steps in
    let hot_cells, top_cell_rmrs =
      match counters with
      | None -> (0, 0)
      | Some c ->
        let hot = ref 0 and top = ref 0 in
        for a = 0 to Obs.Counters.size c - 1 do
          let v = Obs.Counters.cell_total c ~addr:a Obs.Counters.Rmr in
          if v > 0 then incr hot;
          if v > !top then top := v
        done;
        (!hot, !top)
    in
    Core.Results.
      [ text (if counters_on then "on" else "off");
        int steps;
        float ~digits:4 elapsed;
        float ~digits:0 (float_of_int steps /. Float.max elapsed 1e-9);
        float ~digits:1 (words /. float_of_int (max 1 steps));
        int hot_cells;
        int top_cell_rmrs ]
  in
  Core.Results.make ~experiment:"bench" ~part:"profile"
    ~title:
      "Counter-plane overhead on the flat path (cc-flag cc-wt, k=10000)"
    ~claim:
      "arming Obs.Counters keeps the flat engine allocation-free per step \
       and costs only marginal throughput"
    ~params:Core.Results.[ ("k", int 10_000); ("signals", int 16) ]
    ~columns:
      Core.Results.
        [ param "counters"; measure "steps"; measure "wall_s";
          measure "states_per_sec"; measure "minor_words_per_step";
          measure "hot_cells"; measure "top_cell_rmrs" ]
    [ row ~counters_on:false; row ~counters_on:true ]

(* Per-entry lint wall time — the figure `separation lint --timing`
   reports, committed so the cost profile of the static analyses (two
   extraction passes, the amortized cache interpretation, differential
   fact validation) is tracked like the other substrate numbers.  One row
   per catalog entry; the row set is schema-stable, the seconds are
   wall-clock and never diffed. *)
let lint_json_table () =
  let metrics = Obs.Metrics.create () in
  let reports = Core.Lint_catalog.run ~metrics () in
  let seconds name =
    List.fold_left
      (fun acc (r : Obs.Metrics.row) ->
        if
          r.Obs.Metrics.metric = "lint_entry_seconds_sum"
          && List.mem ("algorithm", name) r.Obs.Metrics.labels
        then acc +. r.Obs.Metrics.value
        else acc)
      0.0
      (Obs.Metrics.rows ~timing:true metrics)
  in
  let rows =
    List.map
      (fun (r : Analysis.Lint.report) ->
        let name = r.Analysis.Lint.entry.Analysis.Registry.name in
        Core.Results.
          [ text name;
            int (List.length r.Analysis.Lint.calls);
            float ~digits:6 (seconds name);
            bool r.Analysis.Lint.ok ])
      reports
  in
  Core.Results.make ~experiment:"bench" ~part:"lint"
    ~title:"Static lint wall time per catalog entry"
    ~claim:
      "wall-clock cost of the two-pass lint (CFG extraction, amortized \
       cache interpretation, independence-fact validation) per registry \
       entry"
    ~columns:
      Core.Results.
        [ param "algorithm"; measure "calls"; measure "wall_s"; measure "ok" ]
    rows

(* Stdout is the JSON document, nothing else: `bench --json > BENCH_N.json`
   must produce a valid file (see README, "Perf baseline"). *)
let run_json () =
  print_string
    (Core.Results.to_json_many
       [ micro_json_table (); explore_json_table ();
         explore_scale_json_table (); load_json_table (); lint_json_table ();
         profile_json_table () ])

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--json" ] -> run_json ()
  | [ "bench-only" ] -> run_benchmarks ()
  | [] ->
    print_tables [];
    run_benchmarks ()
  | names -> print_tables names
