(* Command-line interface to the library: run algorithms under cost models,
   unleash the Section 6 adversary, or regenerate experiment tables. *)

open Cmdliner

let model_conv =
  let parse = function
    | "dsm" -> Ok `Dsm
    | "cc-wt" -> Ok `Cc_wt
    | "cc-wb" -> Ok `Cc_wb
    | "cc-lfcu" -> Ok `Cc_lfcu
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (dsm|cc-wt|cc-wb|cc-lfcu)" s))
  in
  let print ppf m = Fmt.string ppf (Core.Scenario.model_tag_name m) in
  Arg.conv (parse, print)

let algo_conv =
  let parse s =
    match Core.Experiment.find_algorithm s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S; try `separation list`" s))
  in
  let print ppf (module A : Core.Signaling.POLLING) = Fmt.string ppf A.name in
  Arg.conv (parse, print)

let algo =
  Arg.(
    required
    & opt (some algo_conv) None
    & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"Signaling algorithm to run.")

let model =
  Arg.(
    value
    & opt model_conv `Dsm
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Cost model: dsm, cc-wt, cc-wb or cc-lfcu.")

let n_arg =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let run_cmd =
  let waiters =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "waiters" ] ~docv:"K"
          ~doc:"Restrict participation to the first $(docv) waiters.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Use a randomized step-level schedule with this seed instead of \
             the deterministic phased schedule.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the history as an ASCII timeline (small runs only).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the outcome as a stable JSON table on stdout.")
  in
  let run (module A : Core.Signaling.POLLING) model n waiters seed trace json =
    let cfg = Core.Experiment.config_for (module A) ~n in
    let o =
      match seed with
      | Some seed -> Core.Scenario.run_random (module A) ~model ~cfg ~seed ()
      | None ->
        let active_waiters =
          Option.map (fun k -> List.init k (fun i -> i + 1)) waiters
        in
        Core.Scenario.run_phased (module A) ~model ~cfg ?active_waiters ()
    in
    let table =
      Core.Observe.outcome_table ~algorithm:A.name
        ~model:(Core.Scenario.model_tag_name model) ~n o
    in
    (* Violations go to stderr so --json stdout stays a pure document. *)
    List.iter
      (fun v -> Fmt.epr "VIOLATION: %a@." Core.Signaling.pp_violation v)
      o.Core.Scenario.violations;
    if json then print_string (Core.Results.to_json table)
    else Core.Report.print (Core.Results.to_report table);
    if trace && not json then begin
      Fmt.pr "@.";
      Smr.Timeline.print o.Core.Scenario.sim
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a signaling algorithm and report RMR accounting.")
    Term.(const run $ algo $ model $ n_arg $ waiters $ seed $ trace $ json)

let explore_cmd =
  let waiters =
    Arg.(
      value & opt int 2
      & info [ "k"; "waiters" ] ~docv:"K" ~doc:"Number of waiters.")
  in
  let polls =
    Arg.(
      value & opt int 2
      & info [ "polls" ] ~docv:"P" ~doc:"Maximum polls per waiter.")
  in
  let signalers =
    Arg.(
      value & opt int 1
      & info [ "signalers" ] ~docv:"S"
          ~doc:
            "Number of signaling processes (algorithms with flexible \
             signaler sets only).  With two or more, one-shot flag \
             algorithms hit write/write pairs on the flag — the case the \
             static-independence facts resolve.")
  in
  let static_indep =
    Arg.(
      value & flag
      & info [ "static-indep" ]
          ~doc:
            "Consult the static-independence facts computed from the \
             algorithm's own CFGs (const-write cells) in the sleep-set \
             POR, instead of the generic syntactic relation alone.  \
             Verdicts are unchanged; states visited can only shrink.")
  in
  let cap =
    Arg.(
      value & opt int 1_000_000
      & info [ "cap" ] ~docv:"H" ~doc:"Maximum histories to enumerate.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Domains to fan the search across.  Every reported number is \
             byte-identical for every value.")
  in
  let split_depth =
    Arg.(
      value & opt int 2
      & info [ "split-depth" ] ~docv:"D"
          ~doc:
            "Tree levels to expand into independent subtree tasks before \
             searching (default 2).  0 keeps the search monolithic: no \
             parallelism, but one shared dedup table — states reachable \
             along several top-level prefixes (and, under symmetry, \
             whole permuted subtrees) merge instead of being re-explored \
             per task, so reported states drop further.  Every reported \
             number is byte-identical across --jobs for any fixed value.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the result as a stable JSON table on stdout.")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ] ~doc:"Disable state-fingerprint deduplication.")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ] ~doc:"Disable sleep-set partial-order reduction.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Disable symmetry reduction.  By default the waiters' poll \
             programs are checked for literal interchangeability \
             (identical labels and invocation/response trees, no \
             load-links) and, when they are, dedup keys are \
             canonicalized under waiter-pid permutation — the verdict is \
             unchanged, states visited shrink by up to the factorial of \
             the waiter count.")
  in
  let mem_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-budget" ] ~docv:"MIB"
          ~doc:
            "Cap the resident dedup tables at $(docv) MiB per subtree \
             task; segments beyond the window spill to binary files under \
             the system temp dir and are read back on probe misses.  \
             Verdicts and all counts except the spill counters are \
             byte-identical to an unbudgeted run.")
  in
  let run (module A : Core.Signaling.POLLING) n waiters polls signalers
      static_indep cap jobs split_depth json no_dedup no_por no_symmetry
      mem_budget =
    let open Smr in
    let ctx = Var.Ctx.create () in
    let signaler_pids = List.init signalers (fun i -> i) in
    let waiter_pids = List.init waiters (fun i -> i + signalers) in
    let cfg =
      Core.Signaling.config ~n ~waiters:waiter_pids ~signalers:signaler_pids
    in
    let inst = Core.Signaling.instantiate (module A) ctx cfg in
    let layout = Var.Ctx.freeze ctx in
    let scripts =
      List.map
        (fun s ->
          ( s,
            Explore.of_list
              [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal s) ]
          ))
        signaler_pids
      @ List.map
          (fun w ->
            ( w,
              Explore.repeat ~limit:polls
                ~until:(fun r -> r = 1)
                (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
          waiter_pids
    in
    (* The facts are computed from the CFGs of the very programs the
       scripts run, so the extended relation is sound for this search
       (Explore.check's [commute] contract).  An incomplete unfolding
       yields no facts and we fall back to the generic relation. *)
    let commute =
      if not static_indep then Op.commute
      else begin
        let values = Analysis.Lint.value_domain ~n ~layout in
        let extract pid prog =
          Analysis.Cfg.extract ~values ~exclusive:(fun _ -> false) ~pid prog
        in
        let cfgs =
          List.map
            (fun s -> (s, extract s (inst.Core.Signaling.i_signal s)))
            signaler_pids
          @ List.map
              (fun w -> (w, extract w (inst.Core.Signaling.i_poll w)))
              waiter_pids
        in
        let facts = Analysis.Independence.of_cfgs cfgs in
        Fmt.epr "static-indep: %d const-write fact(s)%s@."
          (List.length facts.Analysis.Independence.const_writes)
          (match Analysis.Independence.fact_names ~layout facts with
          | [] -> ""
          | names -> ": " ^ String.concat ", " names);
        Analysis.Independence.commute facts
      end
    in
    (* Symmetry detection runs on the waiters' poll calls — the scripts
       wrapping them ([Explore.repeat] with identical limit/until) branch
       only on own-process counts and results, so script symmetry follows
       from call symmetry; Spec 4.1 is waiter-permutation-invariant by
       construction (it reads labels, results and interval relations,
       never pids). *)
    let symmetry =
      if no_symmetry then Sim.Pid_set.empty
      else
        Explore.detect_symmetry
          ~values:(Analysis.Lint.value_domain ~n ~layout)
          (List.map
             (fun w ->
               (w, (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w)))
             waiter_pids)
    in
    let sym_k = Sim.Pid_set.cardinal symmetry in
    if not no_symmetry then
      if sym_k >= 2 then
        Fmt.epr "symmetry: %d interchangeable waiter(s)@." sym_k
      else
        Fmt.epr
          "symmetry: declined (waiter programs not interchangeable); running \
           without reduction@.";
    let mem_budget_bytes = Option.map (fun mib -> mib * 1024 * 1024) mem_budget in
    let r =
      Explore.check ~max_histories:cap ~dedup:(not no_dedup) ~por:(not no_por)
        ~commute ~jobs ~split_depth ~symmetry ?mem_budget:mem_budget_bytes
        ~layout
        ~model:(Cost_model.dsm layout) ~n ~scripts
        ~property:Core.Signaling.polling_ok
        ()
    in
    (* The table carries only jobs-invariant facts: jobs and wall time stay
       out so a jobs=1 vs jobs=J byte-comparison of the JSON is meaningful;
       timing goes to stderr. *)
    let table =
      Core.Results.make ~experiment:"explore"
        ~title:
          (Printf.sprintf "Exhaustive check of %s (N=%d, %d waiters)" A.name n
             waiters)
        ~claim:"Specification 4.1 holds on every explored interleaving"
        ~params:
          Core.Results.
            [ ("algorithm", text A.name); ("n", int n); ("waiters", int waiters);
              ("polls", int polls); ("signalers", int signalers);
              ("cap", int cap); ("dedup", bool (not no_dedup));
              ("por", bool (not no_por)); ("static_indep", bool static_indep);
              ("symmetry", int sym_k); ("split_depth", int split_depth);
              ("mem_budget_mib", int (Option.value mem_budget ~default:0)) ]
        ~columns:
          Core.Results.
            [ measure "histories"; measure "truncated"; measure "complete";
              measure "violation"; measure "states"; measure "dedup_hits";
              measure "por_prunes"; measure "tasks"; measure "max_depth";
              measure "orbit_hits"; measure "fp_distinct";
              measure "fp_collisions"; measure "fp_resizes";
              measure "fp_slots"; measure "spill_segments";
              measure "spill_reloads" ]
        Core.Results.
          [ [ int r.Explore.histories; int r.Explore.truncated;
              bool r.Explore.complete; bool (r.Explore.violation <> None);
              int r.Explore.stats.Explore.states;
              int r.Explore.stats.Explore.dedup_hits;
              int r.Explore.stats.Explore.por_prunes;
              int r.Explore.stats.Explore.tasks;
              int r.Explore.stats.Explore.max_depth;
              int r.Explore.stats.Explore.orbit_hits;
              int r.Explore.stats.Explore.fp_distinct;
              int r.Explore.stats.Explore.fp_collisions;
              int r.Explore.stats.Explore.fp_resizes;
              int r.Explore.stats.Explore.fp_slots;
              int r.Explore.stats.Explore.spill_segments;
              int r.Explore.stats.Explore.spill_reloads ] ]
    in
    Fmt.epr "search took %.2fs (%d jobs)@." r.Explore.stats.Explore.wall_s jobs;
    if json then print_string (Core.Results.to_json table)
    else begin
      Fmt.pr "%s: %d histories%s, %s; %d states (%d dedup hits, %d orbit \
              hits, %d POR prunes, %d tasks, max depth %d)@."
        A.name r.Explore.histories
        (if r.Explore.truncated > 0 then
           Printf.sprintf " (%d spin-truncated)" r.Explore.truncated
         else "")
        (if r.Explore.complete then "exhaustive" else "capped")
        r.Explore.stats.Explore.states r.Explore.stats.Explore.dedup_hits
        r.Explore.stats.Explore.orbit_hits r.Explore.stats.Explore.por_prunes
        r.Explore.stats.Explore.tasks r.Explore.stats.Explore.max_depth;
      Fmt.pr "intern: %d distinct keys, %d collisions, %d resizes, %d \
              slots%s@."
        r.Explore.stats.Explore.fp_distinct
        r.Explore.stats.Explore.fp_collisions
        r.Explore.stats.Explore.fp_resizes r.Explore.stats.Explore.fp_slots
        (if r.Explore.stats.Explore.spill_segments > 0 then
           Printf.sprintf "; spilled %d segment(s), reloaded %d"
             r.Explore.stats.Explore.spill_segments
             r.Explore.stats.Explore.spill_reloads
         else "");
      match r.Explore.violation with
      | None -> Fmt.pr "Specification 4.1 holds on every explored history.@."
      | Some sim ->
        Fmt.pr "VIOLATION FOUND:@.";
        List.iter
          (fun v -> Fmt.pr "  %a@." Core.Signaling.pp_violation v)
          (Core.Signaling.check_polling (Sim.calls sim));
        (* The search ran lean (no per-step records), which is enough to
           name the violated clauses above but leaves the step cells out
           of the timeline.  The search is deterministic, so re-running it
           with full history reaches the same first violation — pay that
           cost only on the failure path, to render it. *)
        let sim =
          if not (Sim.is_lean sim) then sim
          else
            match
              (Explore.check ~max_histories:cap ~dedup:(not no_dedup)
                 ~por:(not no_por) ~commute ~lean:false ~jobs ~split_depth
                 ~symmetry ?mem_budget:mem_budget_bytes ~layout
                 ~model:(Cost_model.dsm layout) ~n ~scripts
                 ~property:Core.Signaling.polling_ok ())
                .Explore.violation
            with
            | Some sim -> sim
            | None -> sim
        in
        Smr.Timeline.print sim
    end
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate every interleaving of a small \
          configuration and check Specification 4.1.")
    Term.(
      const run $ algo $ n_arg $ waiters $ polls $ signalers $ static_indep
      $ cap $ jobs $ split_depth $ json $ no_dedup $ no_por $ no_symmetry
      $ mem_budget)

let adversary_cmd =
  let rounds =
    Arg.(
      value & opt int 24
      & info [ "rounds" ] ~docv:"R" ~doc:"Maximum part-1 construction rounds.")
  in
  let polls =
    Arg.(
      value & opt int 3
      & info [ "stability-polls" ] ~docv:"P"
          ~doc:"Solo Poll() calls without an RMR needed to declare a waiter \
                stable (the Def. 6.8 horizon).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the surviving history as an ASCII timeline (small N).")
  in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("section6", `Section6); ("pct", `Pct); ("walk", `Walk) ])
          `Section6
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Adversary strategy: the deterministic $(b,section6) \
             construction, a $(b,pct) randomized-priority schedule, or a \
             uniform random $(b,walk).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for the randomized strategies (reproducible per seed).")
  in
  let depth =
    Arg.(
      value & opt (some int) None
      & info [ "depth" ] ~docv:"D"
          ~doc:"PCT bug depth: number of ordering constraints targeted \
                (default 3).")
  in
  let run (module A : Core.Signaling.POLLING) n rounds polls trace strategy
      seed depth model =
    match strategy with
    | `Section6 ->
      let r =
        Core.Adversary.run (module A) ~n ~max_rounds:rounds
          ~stability_polls:polls ()
      in
      Fmt.pr "%a" Core.Adversary.pp_result r;
      if trace then begin
        Fmt.pr "@.Surviving history:@.";
        Smr.Timeline.print r.Core.Adversary.final_sim
      end
    | `Pct ->
      let r = Core.Adversary.run_pct (module A) ~n ~seed ?depth ~model () in
      Fmt.pr "%a" Core.Adversary.pp_random_outcome r;
      if trace then begin
        Fmt.pr "@.History:@.";
        Smr.Timeline.print r.Core.Adversary.ro_outcome.Core.Scenario.sim
      end;
      if r.Core.Adversary.ro_outcome.Core.Scenario.violations <> [] then exit 1
    | `Walk ->
      let r = Core.Adversary.run_walk (module A) ~n ~seed ~model () in
      Fmt.pr "%a" Core.Adversary.pp_random_outcome r;
      if trace then begin
        Fmt.pr "@.History:@.";
        Smr.Timeline.print r.Core.Adversary.ro_outcome.Core.Scenario.sim
      end;
      if r.Core.Adversary.ro_outcome.Core.Scenario.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Play an adversary against an algorithm: the Section 6 lower-bound \
          construction (DSM model), or a seed-reproducible randomized \
          schedule (PCT priorities or a uniform walk) checked against \
          Specification 4.1.")
    Term.(
      const run $ algo $ n_arg $ rounds $ polls $ trace $ strategy $ seed
      $ depth $ model)

(* `trace` replays a scenario (or the adversary construction) with the
   observability layer attached and dumps the event stream.  Everything on
   stdout is keyed by the logical event clock, so the bytes are identical
   for every --jobs level and across hosts — CI diffs them. *)
let trace_cmd =
  let adversary =
    Arg.(
      value & flag
      & info [ "adversary" ]
          ~doc:
            "Trace the Section 6 adversary construction instead of the \
             phased scenario.  Always runs in the DSM model; $(b,--model) \
             is ignored.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome); ("text", `Text) ])
          `Jsonl
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Stream format: $(b,jsonl) (one JSON object per event), \
             $(b,chrome) (trace_event JSON loadable in Perfetto or \
             chrome://tracing, logical ticks as microseconds, one track \
             per process), or $(b,text) (one line per event).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Also print the metrics table derived from the stream \
             (counters and histograms; wall-time metrics excluded, so the \
             table is deterministic) on stderr.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Domains used to render the stream.  The output bytes are \
             identical for every value.")
  in
  let run (module A : Core.Signaling.POLLING) model n adversary format metrics
      jobs =
    let tr = Obs.Trace.create () in
    if adversary then
      ignore (Core.Adversary.run (module A) ~n ~tracer:tr ())
    else begin
      let cfg = Core.Experiment.config_for (module A) ~n in
      ignore (Core.Scenario.run_phased (module A) ~model ~cfg ~tracer:tr ())
    end;
    let events = Obs.Trace.events tr in
    (* Rendering is per-event pure, so an ordered parallel map yields the
       same bytes as List.map. *)
    let map f evs = Core.Parallel.map ~jobs f evs in
    print_string
      (match format with
      | `Jsonl -> Obs.Sink_jsonl.to_string ~map events
      | `Chrome -> Obs.Sink_chrome.to_string ~map events
      | `Text -> Obs.Sink_text.to_string ~map events);
    if metrics then
      Fmt.epr "%s"
        (Core.Report.to_string
           (Core.Results.to_report
              (Core.Observe.metrics_table (Obs.Trace.metrics tr))))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Re-run a scenario with the deterministic tracing layer attached \
          and dump the per-RMR event stream (JSONL, Chrome trace_event \
          JSON, or text).")
    Term.(
      const run $ algo $ model $ n_arg $ adversary $ format $ metrics $ jobs)

(* The registry-driven table pipeline: `tables` (and its historical alias
   `experiments`) resolves ids against Core.Experiment_registry, fans the
   runs out across domains, and renders text, CSV or JSON.  Output order
   follows the registry (or the requested id order), never completion
   order, so every --jobs level is byte-identical. *)

let resolve_specs names =
  match names with
  | [] -> Core.Experiment_registry.all ()
  | names -> (
    match List.map Core.Experiment_registry.find_exn names with
    | specs -> specs
    | exception Invalid_argument msg ->
      Fmt.epr "separation: %s@." msg;
      exit 2)

let run_tables format jobs reduced list names =
  if list then
    List.iter
      (fun (s : Core.Experiment_def.spec) ->
        Fmt.pr "%-4s %s@.     claim: %s@.     shape: %s@." s.Core.Experiment_def.id
          s.Core.Experiment_def.title s.Core.Experiment_def.claim
          s.Core.Experiment_def.shape_note)
      (Core.Experiment_registry.all ())
  else begin
    let specs = resolve_specs names in
    let jobs = match jobs with 0 -> Core.Runner.default_jobs () | j -> max 1 j in
    let size =
      if reduced then Core.Experiment_def.Reduced else Core.Experiment_def.Default
    in
    let metrics = Obs.Metrics.create () in
    let outcomes =
      Obs.Metrics.time metrics "tables_wall_seconds" ~labels:[] (fun () ->
          Core.Runner.run ~jobs ~size specs)
    in
    let tables = Core.Runner.tables outcomes in
    (match format with
    | `Json -> print_string (Core.Results.to_json_many tables)
    | `Csv ->
      List.iter
        (fun t ->
          print_string (Core.Results.to_csv t);
          print_newline ())
        tables
    | `Text ->
      List.iter
        (fun t ->
          Core.Report.print (Core.Results.to_report t);
          print_newline ())
        tables);
    (* Diagnostics go to stderr so stdout stays identical across runs. *)
    Fmt.epr "separation tables: %d experiment(s), %d table(s), jobs=%d, %.2fs@."
      (List.length specs) (List.length tables) jobs
      (Obs.Metrics.total metrics "tables_wall_seconds");
    match Core.Runner.failed_shapes outcomes with
    | [] -> ()
    | failures ->
      List.iter
        (fun (id, why) -> Fmt.epr "separation: %s shape check FAILED: %s@." id why)
        failures;
      exit 1
  end

let tables_term =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Experiment ids (try --list); all when omitted.  Unknown ids \
                are an error.")
  in
  let format =
    Arg.(
      value
      & vflag `Text
          [ (`Json, info [ "json" ] ~doc:"Emit the stable JSON format.");
            (`Csv,
             info [ "csv" ] ~doc:"Emit CSV (header + rows) instead of \
                                  aligned text.") ])
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan independent experiments (and parameter points within one \
             experiment) out across $(docv) domains.  0 (the default) \
             means Domain.recommended_domain_count.  Results are \
             byte-identical at every level.")
  in
  let reduced =
    Arg.(
      value & flag
      & info [ "reduced" ]
          ~doc:"Use the registry's reduced parameter sets (the ones the \
                bechamel benches time) instead of the full tables.")
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List registered experiments with their claims and \
                expected-shape predicates, then exit.")
  in
  Term.(const run_tables $ format $ jobs $ reduced $ list $ names)

let tables_cmd =
  Cmd.v
    (Cmd.info "tables"
       ~doc:
         "Regenerate the claim-derived experiment tables (EXPERIMENTS.md) \
          from the registry; text, CSV or JSON; domain-parallel with --jobs.")
    tables_term

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Alias of $(b,tables).")
    tables_term

(* `lint` statically verifies every registered algorithm's declared claims
   (primitive class, spin locality, DSM RMR bound, amortized CC RMR bound,
   write ownership, const-write independence facts) over its extracted
   control-flow graph, plus the Op.commute differential check behind
   Explore's POR.  Nonzero exit on any violation, so CI can gate on it. *)
let lint_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ALGORITHM"
          ~doc:
            "Algorithm entries to lint (as listed in the report); all \
             non-mutant entries when omitted.  Unknown names are an error.")
  in
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"ALGORITHM"
          ~doc:
            "Lint only this entry (repeatable; combines with positional \
             names).  Handy with $(b,--timing) to profile one expensive \
             unfolding.")
  in
  let timing =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Print the per-entry wall-time histogram \
             ($(b,lint_entry_seconds), labeled by algorithm) to stderr \
             after linting.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the stable JSON tables on stdout.")
  in
  let mutants =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Include the seeded-violation fixtures (expected to fail; used \
             by CI to prove the linter can fail).")
  in
  let fuel =
    Arg.(
      value & opt (some int) None
      & info [ "fuel" ] ~docv:"NODES"
          ~doc:"Override the extractor's CFG node budget per call.")
  in
  let lint_n =
    Arg.(
      value & opt int 4
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Process count for the signaling entries (locks use their own \
             small fixed counts).  Response domains grow with $(docv), so \
             keep it small.")
  in
  let run n json mutants fuel timing only names =
    let names = match names @ only with [] -> None | l -> Some l in
    let metrics = Obs.Metrics.create () in
    let reports =
      try Core.Lint_catalog.run ~n ~mutants ?fuel ?names ~metrics ()
      with Invalid_argument msg ->
        Fmt.epr "separation: %s@." msg;
        exit 2
    in
    if timing then
      Fmt.epr "%s"
        (Core.Report.to_string
           (Core.Results.to_report
              (Core.Observe.metrics_table ~timing:true metrics)));
    let commute = Analysis.Commute_check.run () in
    let tables =
      [ Core.Lint_catalog.lint_table reports;
        Core.Lint_catalog.commute_table commute ]
    in
    if json then print_string (Core.Results.to_json_many tables)
    else
      List.iter
        (fun t ->
          Core.Report.print (Core.Results.to_report t);
          print_newline ())
        tables;
    List.iter
      (fun (r : Analysis.Lint.report) ->
        List.iter
          (fun v ->
            Fmt.epr "lint: %s: %s@."
              r.Analysis.Lint.entry.Analysis.Registry.name v)
          (Analysis.Lint.violations r))
      reports;
    List.iter
      (fun c ->
        Fmt.epr "lint: commute: %a@." Analysis.Commute_check.pp_counterexample c)
      commute.Analysis.Commute_check.failures;
    if not (Core.Lint_catalog.all_ok reports commute) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify each algorithm's declared claims (primitive \
          class, local-spin, DSM RMR bound, amortized CC RMR bound, write \
          ownership, const-write independence facts) over its extracted \
          control-flow graph, and differentially check the POR \
          independence relation.  Exits nonzero on any violation.")
    Term.(const run $ lint_n $ json $ mutants $ fuel $ timing $ only $ names)

(* Shared by `load` and `profile`. *)
let arrivals_conv =
  let parse s =
      let fail () =
        Error
          (`Msg
            (Printf.sprintf
               "bad arrival spec %S (uniform:GAP | poisson:MEAN | \
                bursty:BURST,LULL)"
               s))
      in
      match String.index_opt s ':' with
      | None -> fail ()
      | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        try
          match kind with
          | "uniform" -> Ok (Workload.Arrivals.Uniform (int_of_string rest))
          | "poisson" -> Ok (Workload.Arrivals.Poisson (float_of_string rest))
          | "bursty" -> (
            match String.split_on_char ',' rest with
            | [ b; l ] ->
              Ok
                (Workload.Arrivals.Bursty
                   { burst = int_of_string b; mean_lull = float_of_string l })
            | _ -> fail ())
          | _ -> fail ()
        with Failure _ -> fail ())
    in
    let print ppf a = Fmt.string ppf (Workload.Arrivals.spec_name a) in
    Arg.conv (parse, print)

(* Build the scenario grid `load` and `profile` share: every requested k
   times every requested algorithm, under one spec shape. *)
let load_scenarios ~algos ~model ~ks ~seed ~polls ~signals ~signal_every
    ~arrivals ~crash_prob ~leave_prob ~ways =
  let algos =
    match algos with
    | [] ->
      List.filter_map Core.Experiment.find_algorithm
        [ "cc-flag"; "dsm-broadcast"; "dsm-queue" ]
    | l -> l
  in
  List.concat_map
    (fun k ->
      let spec =
        { Workload.Driver.default_spec with
          seed;
          waiters = k;
          polls_per_waiter = polls;
          signals;
          signal_every =
            (if signal_every > 0 then signal_every
             else max 1 (4 * k / max 1 signals));
          arrivals;
          crash_prob;
          leave_early_prob = leave_prob }
      in
      List.map
        (fun algorithm -> Core.Loadgen.scenario ~ways ~algorithm ~model spec)
        algos)
    ks

(* `load` runs the open-system workload driver over the flat engine: waiters
   arrive by a seeded arrival process, poll a few times and leave (or crash),
   while pid 0 signals on a cadence.  Stdout carries only seed-determined
   figures — CI diffs it across runs and --jobs levels — while wall-clock
   throughput goes to stderr and, when asked, to the --perf-out JSON. *)
let load_cmd =
  let algos =
    Arg.(
      value
      & opt_all algo_conv []
      & info [ "a"; "algorithm" ] ~docv:"NAME"
          ~doc:
            "Signaling algorithm(s) to drive (repeatable).  Default: \
             cc-flag, dsm-broadcast and dsm-queue.")
  in
  let ks =
    Arg.(
      value
      & opt_all int [ 1000 ]
      & info [ "k"; "waiters" ] ~docv:"K"
          ~doc:"Waiters that join over the run (repeatable).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "RNG seed; the whole stdout document is a function of the \
             scenario grid and this seed.")
  in
  let polls =
    Arg.(
      value & opt int 2
      & info [ "polls" ] ~docv:"P" ~doc:"Poll() budget per waiter.")
  in
  let signals =
    Arg.(
      value & opt int 8
      & info [ "signals" ] ~docv:"S" ~doc:"Signal() calls pid 0 issues.")
  in
  let signal_every =
    Arg.(
      value & opt int 0
      & info [ "signal-every" ] ~docv:"TICKS"
          ~doc:
            "Ticks between signal begins; 0 (default) spreads the signals \
             across the arrival span.")
  in
  let arrivals =
    Arg.(
      value
      & opt arrivals_conv (Workload.Arrivals.Poisson 2.0)
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Arrival process: $(b,uniform:GAP), $(b,poisson:MEAN) or \
             $(b,bursty:BURST,LULL).")
  in
  let crash_prob =
    Arg.(
      value & opt float 0.0
      & info [ "crash-prob" ] ~docv:"P"
          ~doc:"Chance a beginning Poll() crashes mid-call.")
  in
  let leave_prob =
    Arg.(
      value & opt float 0.0
      & info [ "leave-prob" ] ~docv:"P"
          ~doc:"Chance a waiter leaves before exhausting its poll budget.")
  in
  let ways =
    Arg.(
      value & opt int 8
      & info [ "ways" ] ~docv:"W"
          ~doc:"Cache lines per process under a CC model.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Domains to fan the scenario grid across.  Stdout bytes are \
             identical for every value.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the stable JSON table on stdout.")
  in
  let perf_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "perf-out" ] ~docv:"FILE"
          ~doc:
            "Also write wall-clock figures (states/sec, bytes/process) as \
             JSON to $(docv).  Never byte-stable; keep it out of diffs.")
  in
  let run algos model ks seed polls signals signal_every arrivals crash_prob
      leave_prob ways jobs json perf_out =
    let scenarios =
      load_scenarios ~algos ~model ~ks ~seed ~polls ~signals ~signal_every
        ~arrivals ~crash_prob ~leave_prob ~ways
    in
    let runs =
      Core.Parallel.map ~jobs:(max 1 jobs)
        (fun sc ->
          let r, t = Core.Loadgen.timed sc in
          (sc, r, t))
        scenarios
    in
    let table = Core.Loadgen.table (List.map (fun (sc, r, _) -> (sc, r)) runs) in
    if json then print_string (Core.Results.to_json table)
    else Core.Report.print (Core.Results.to_report table);
    (* Wall-clock figures: stderr and --perf-out only. *)
    List.iter
      (fun (sc, (r : Workload.Driver.report), (t : Core.Loadgen.timing)) ->
        let (module A : Core.Signaling.POLLING) = sc.Core.Loadgen.sc_algorithm in
        Fmt.epr
          "load: %s/%s k=%d: %d steps in %.2fs (%.0f states/sec, %d \
           bytes/process)%s@."
          A.name r.Workload.Driver.r_model
          sc.Core.Loadgen.sc_spec.Workload.Driver.waiters t.Core.Loadgen.steps
          t.Core.Loadgen.elapsed_s t.Core.Loadgen.states_per_sec
          t.Core.Loadgen.bytes_per_process
          (if r.Workload.Driver.r_fuel_exhausted then " FUEL EXHAUSTED" else ""))
      runs;
    match perf_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Core.Loadgen.perf_json (List.map (fun (sc, _, t) -> (sc, t)) runs));
      close_out oc
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive an open-system heavy-traffic workload (arrivals, churn, \
          crashes) over the flat simulation engine and report streaming \
          RMR/latency accounting; scales to k = 10^6 waiters.")
    Term.(
      const run $ algos $ model $ ks $ seed $ polls $ signals $ signal_every
      $ arrivals $ crash_prob $ leave_prob $ ways $ jobs $ json $ perf_out)

(* `profile` is `load` with the counter planes armed: the same driver and
   seed stream, plus deterministic per-cell / per-pid / per-pc RMR
   attribution tables and an optional Chrome export of coherence traffic
   (one lane per cell).  Stdout is a function of the flags alone, diffed
   by CI across runs and --jobs levels. *)
let profile_cmd =
  let algos =
    Arg.(
      value
      & opt_all algo_conv []
      & info [ "a"; "algorithm" ] ~docv:"NAME"
          ~doc:
            "Signaling algorithm(s) to profile (repeatable).  Default: \
             cc-flag, dsm-broadcast and dsm-queue.")
  in
  let ks =
    Arg.(
      value
      & opt_all int [ 1000 ]
      & info [ "k"; "waiters" ] ~docv:"K"
          ~doc:"Waiters that join over the run (repeatable).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "RNG seed; the whole stdout document is a function of the \
             scenario grid and this seed.")
  in
  let polls =
    Arg.(
      value & opt int 2
      & info [ "polls" ] ~docv:"P" ~doc:"Poll() budget per waiter.")
  in
  let signals =
    Arg.(
      value & opt int 8
      & info [ "signals" ] ~docv:"S" ~doc:"Signal() calls pid 0 issues.")
  in
  let signal_every =
    Arg.(
      value & opt int 0
      & info [ "signal-every" ] ~docv:"TICKS"
          ~doc:
            "Ticks between signal begins; 0 (default) spreads the signals \
             across the arrival span.")
  in
  let arrivals =
    Arg.(
      value
      & opt arrivals_conv (Workload.Arrivals.Poisson 2.0)
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Arrival process: $(b,uniform:GAP), $(b,poisson:MEAN) or \
             $(b,bursty:BURST,LULL).")
  in
  let crash_prob =
    Arg.(
      value & opt float 0.0
      & info [ "crash-prob" ] ~docv:"P"
          ~doc:"Chance a beginning Poll() crashes mid-call.")
  in
  let leave_prob =
    Arg.(
      value & opt float 0.0
      & info [ "leave-prob" ] ~docv:"P"
          ~doc:"Chance a waiter leaves before exhausting its poll budget.")
  in
  let ways =
    Arg.(
      value & opt int 8
      & info [ "ways" ] ~docv:"W"
          ~doc:"Cache lines per process under a CC model.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Domains to fan the scenario grid across.  Stdout bytes are \
             identical for every value.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows kept in the ranked hot-cell and per-pid views.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the stable JSON tables on stdout.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit RFC-4180 CSV tables on stdout.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-out" ] ~docv:"FILE"
          ~doc:
            "Also write the first scenario's coherence traffic as a Chrome \
             trace (chrome://tracing / Perfetto; one lane per cell) to \
             $(docv).")
  in
  let chrome_cap =
    Arg.(
      value & opt int 10_000
      & info [ "chrome-cap" ] ~docv:"N"
          ~doc:
            "Transactions recorded for --chrome-out; overflow is counted \
             on stderr, not recorded.")
  in
  let run algos model ks seed polls signals signal_every arrivals crash_prob
      leave_prob ways jobs top json csv chrome_out chrome_cap =
    let scenarios =
      load_scenarios ~algos ~model ~ks ~seed ~polls ~signals ~signal_every
        ~arrivals ~crash_prob ~leave_prob ~ways
    in
    let indexed = List.mapi (fun i sc -> (i, sc)) scenarios in
    let runs =
      Core.Parallel.map ~jobs:(max 1 jobs)
        (fun (i, sc) ->
          let record_cells =
            if i = 0 && chrome_out <> None then Some (max 0 chrome_cap)
            else None
          in
          (sc, Core.Profile.run ?record_cells sc))
        indexed
    in
    let tables =
      List.concat_map (fun (sc, r) -> Core.Profile.tables ~top sc r) runs
    in
    if json then print_string (Core.Results.to_json_many tables)
    else if csv then
      List.iteri
        (fun i t ->
          if i > 0 then print_newline ();
          print_string (Core.Results.to_csv t))
        tables
    else
      List.iter
        (fun t ->
          Core.Report.print (Core.Results.to_report t);
          print_newline ())
        tables;
    (match (chrome_out, runs) with
    | Some path, (_, r) :: _ ->
      let oc = open_out path in
      output_string oc (Core.Profile.chrome_trace r);
      close_out oc;
      if r.Core.Profile.p_cells_dropped > 0 then
        Fmt.epr "profile: chrome export capped: %d transactions dropped@."
          r.Core.Profile.p_cells_dropped
    | _ -> ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an open-system workload with counter planes armed and report \
          where the RMRs land: per-cell hot-cell ranking (with the \
          signaler's share), per-pid attribution, and per-program-counter \
          breakdowns — the observable half of the CC/DSM separation.  \
          Byte-deterministic for a fixed seed, at any --jobs.")
    Term.(
      const run $ algos $ model $ ks $ seed $ polls $ signals $ signal_every
      $ arrivals $ crash_prob $ leave_prob $ ways $ jobs $ top $ json $ csv
      $ chrome_out $ chrome_cap)

(* `fuzz` streams seeded random cases through the differential oracle
   lattice.  Everything on stdout is a function of the flags alone — the
   CI diffs two runs byte-for-byte — and any disagreement is shrunk to a
   minimal case whose replay line is printed on stderr. *)
let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Base seed.  Case $(i,i) is a function of (seed, $(i,i)) alone, \
             so any case replays in isolation via --only.")
  in
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N" ~doc:"Number of case indices to stream.")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"UNITS"
          ~doc:
            "Deterministic work-unit cap (schedule decisions times oracle \
             weight); the run stops once spent, independent of wall time.")
  in
  let oracle =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Restrict to the named oracle (repeatable): lean-vs-full, \
             sim-vs-flat, por-vs-nopor, claims-vs-measured, \
             amortized-vs-measured, cc-invariants.  All six when omitted.")
  in
  let mutants =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Draw lint-entry cases from the seeded mutant fixtures instead \
             of the honest catalog; every mutant reached must surface as a \
             finding (CI's expected-failure leg).")
  in
  let only =
    Arg.(
      value & opt (some int) None
      & info [ "only" ] ~docv:"IDX"
          ~doc:"Replay exactly one case index from this seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the stable JSON table on stdout.")
  in
  let coverage_new_only =
    Arg.(
      value & flag
      & info [ "coverage-new-only" ]
          ~doc:
            "Evaluate the oracle lattice only on cases whose counter-plane \
             behavior signature is new this run; duplicate buckets still \
             count toward coverage but cost no oracle work.")
  in
  let run seed cases budget oracle_names mutants only json coverage_new_only =
    let oracles =
      match oracle_names with
      | [] -> Fuzz.Oracles.all
      | names ->
        List.map
          (fun s ->
            match Fuzz.Oracles.of_name s with
            | Some o -> o
            | None ->
              Fmt.epr "separation: unknown oracle %S@." s;
              exit 2)
          names
    in
    let report =
      Fuzz.Harness.run
        { Fuzz.Harness.seed; cases; budget; oracles; mutants; only;
          coverage_new_only }
    in
    if json then
      print_string
        (Core.Results.to_json_many
           [ report.Fuzz.Harness.table; report.Fuzz.Harness.coverage ])
    else begin
      Core.Report.print (Core.Results.to_report report.Fuzz.Harness.table);
      print_newline ();
      Core.Report.print (Core.Results.to_report report.Fuzz.Harness.coverage)
    end;
    (* Findings go to stderr so --json stdout stays a pure document. *)
    List.iter
      (fun f -> Fmt.epr "%a@." Fuzz.Harness.pp_finding f)
      report.Fuzz.Harness.findings;
    if report.Fuzz.Harness.findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Stream seeded random cases (programs, catalog scripts, lint \
          entries) through the differential oracle lattice: lean vs full \
          machine, persistent vs flat engine, POR vs literal exploration, \
          static claims vs measured RMRs, proven amortized CC bounds vs \
          the workload driver's measurements, and the CC cost-model \
          invariants.  \
          Shrinks any disagreement to a minimal replayable case and exits \
          nonzero.")
    Term.(
      const run $ seed $ cases $ budget $ oracle $ mutants $ only $ json
      $ coverage_new_only)

let list_cmd =
  let run () =
    Fmt.pr "Experiments:@.";
    List.iter
      (fun (s : Core.Experiment_def.spec) ->
        Fmt.pr "  %-4s %s@." s.Core.Experiment_def.id s.Core.Experiment_def.title)
      (Core.Experiment_registry.all ());
    Fmt.pr "@.Algorithms:@.";
    List.iter
      (fun (module A : Core.Signaling.POLLING) ->
        Fmt.pr "  %-18s [%s]  %s@." A.name
          (String.concat ", "
             (List.map
                (Fmt.str "%a" Smr.Op.pp_primitive_class)
                A.primitives))
          A.description)
      Core.Experiment.polling_algorithms;
    Fmt.pr "@.Models: dsm, cc-wt, cc-wb, cc-lfcu@.";
    Fmt.pr "@.Locks (E7):@.";
    List.iter
      (fun (module L : Sync.Mutex_intf.LOCK) -> Fmt.pr "  %s@." L.name)
      Core.Experiment.locks
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List algorithms, cost models and locks.")
    Term.(const run $ const ())

let () =
  let doc =
    "Reproduction of Golab's CC/DSM amortized-RMR complexity separation \
     (PODC 2011)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "separation" ~version:"1.0.0" ~doc)
          [ run_cmd; adversary_cmd; explore_cmd; trace_cmd; tables_cmd;
            experiments_cmd; lint_cmd; load_cmd; profile_cmd; fuzz_cmd;
            list_cmd ]))
