(* Command-line interface to the library: run algorithms under cost models,
   unleash the Section 6 adversary, or regenerate experiment tables. *)

open Cmdliner

let model_conv =
  let parse = function
    | "dsm" -> Ok `Dsm
    | "cc-wt" -> Ok `Cc_wt
    | "cc-wb" -> Ok `Cc_wb
    | "cc-lfcu" -> Ok `Cc_lfcu
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (dsm|cc-wt|cc-wb|cc-lfcu)" s))
  in
  let print ppf m = Fmt.string ppf (Core.Scenario.model_tag_name m) in
  Arg.conv (parse, print)

let algo_conv =
  let parse s =
    match Core.Experiment.find_algorithm s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S; try `separation list`" s))
  in
  let print ppf (module A : Core.Signaling.POLLING) = Fmt.string ppf A.name in
  Arg.conv (parse, print)

let algo =
  Arg.(
    required
    & opt (some algo_conv) None
    & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"Signaling algorithm to run.")

let model =
  Arg.(
    value
    & opt model_conv `Dsm
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Cost model: dsm, cc-wt, cc-wb or cc-lfcu.")

let n_arg =
  Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let print_outcome name model_name (o : Core.Scenario.outcome) =
  Fmt.pr "%s under %s:@." name model_name;
  Fmt.pr "  total RMRs        %d@." o.Core.Scenario.total_rmrs;
  Fmt.pr "  total messages    %d@." o.Core.Scenario.total_messages;
  Fmt.pr "  participants      %d@." o.Core.Scenario.participants;
  Fmt.pr "  signaler RMRs     %d@." o.Core.Scenario.signaler_rmrs;
  Fmt.pr "  max waiter RMRs   %d@." o.Core.Scenario.max_waiter_rmrs;
  Fmt.pr "  amortized         %.2f@." o.Core.Scenario.amortized;
  Fmt.pr "  unfinished        %d@." o.Core.Scenario.unfinished_waiters;
  if o.Core.Scenario.violations = [] then Fmt.pr "  spec 4.1          satisfied@."
  else
    List.iter
      (fun v -> Fmt.pr "  VIOLATION: %a@." Core.Signaling.pp_violation v)
      o.Core.Scenario.violations

let run_cmd =
  let waiters =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "waiters" ] ~docv:"K"
          ~doc:"Restrict participation to the first $(docv) waiters.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Use a randomized step-level schedule with this seed instead of \
             the deterministic phased schedule.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the history as an ASCII timeline (small runs only).")
  in
  let run (module A : Core.Signaling.POLLING) model n waiters seed trace =
    let cfg = Core.Experiment.config_for (module A) ~n in
    let o =
      match seed with
      | Some seed -> Core.Scenario.run_random (module A) ~model ~cfg ~seed ()
      | None ->
        let active_waiters =
          Option.map (fun k -> List.init k (fun i -> i + 1)) waiters
        in
        Core.Scenario.run_phased (module A) ~model ~cfg ?active_waiters ()
    in
    print_outcome A.name (Core.Scenario.model_tag_name model) o;
    if trace then begin
      Fmt.pr "@.";
      Smr.Timeline.print o.Core.Scenario.sim
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a signaling algorithm and report RMR accounting.")
    Term.(const run $ algo $ model $ n_arg $ waiters $ seed $ trace)

let explore_cmd =
  let waiters =
    Arg.(
      value & opt int 2
      & info [ "k"; "waiters" ] ~docv:"K" ~doc:"Number of waiters.")
  in
  let polls =
    Arg.(
      value & opt int 2
      & info [ "polls" ] ~docv:"P" ~doc:"Maximum polls per waiter.")
  in
  let cap =
    Arg.(
      value & opt int 1_000_000
      & info [ "cap" ] ~docv:"H" ~doc:"Maximum histories to enumerate.")
  in
  let run (module A : Core.Signaling.POLLING) n waiters polls cap =
    let open Smr in
    let ctx = Var.Ctx.create () in
    let waiter_pids = List.init waiters (fun i -> i + 1) in
    let cfg = Core.Signaling.config ~n ~waiters:waiter_pids ~signalers:[ 0 ] in
    let inst = Core.Signaling.instantiate (module A) ctx cfg in
    let layout = Var.Ctx.freeze ctx in
    let scripts =
      ( 0,
        Explore.of_list
          [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal 0) ] )
      :: List.map
           (fun w ->
             ( w,
               Explore.repeat ~limit:polls
                 ~until:(fun r -> r = 1)
                 (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
           waiter_pids
    in
    let r =
      Explore.check ~max_histories:cap ~layout ~model:(Cost_model.dsm layout)
        ~n ~scripts
        ~property:(fun sim -> Core.Signaling.check_polling (Sim.calls sim) = [])
        ()
    in
    Fmt.pr "%s: %d histories%s, %s@." A.name r.Explore.histories
      (if r.Explore.truncated > 0 then
         Printf.sprintf " (%d spin-truncated)" r.Explore.truncated
       else "")
      (if r.Explore.complete then "exhaustive" else "capped");
    match r.Explore.violation with
    | None -> Fmt.pr "Specification 4.1 holds on every explored history.@."
    | Some sim ->
      Fmt.pr "VIOLATION FOUND:@.";
      List.iter
        (fun v -> Fmt.pr "  %a@." Core.Signaling.pp_violation v)
        (Core.Signaling.check_polling (Sim.calls sim));
      Smr.Timeline.print sim
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate every interleaving of a small \
          configuration and check Specification 4.1.")
    Term.(const run $ algo $ n_arg $ waiters $ polls $ cap)

let adversary_cmd =
  let rounds =
    Arg.(
      value & opt int 24
      & info [ "rounds" ] ~docv:"R" ~doc:"Maximum part-1 construction rounds.")
  in
  let polls =
    Arg.(
      value & opt int 3
      & info [ "stability-polls" ] ~docv:"P"
          ~doc:"Solo Poll() calls without an RMR needed to declare a waiter \
                stable (the Def. 6.8 horizon).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the surviving history as an ASCII timeline (small N).")
  in
  let run (module A : Core.Signaling.POLLING) n rounds polls trace =
    let r =
      Core.Adversary.run (module A) ~n ~max_rounds:rounds ~stability_polls:polls ()
    in
    Fmt.pr "%a" Core.Adversary.pp_result r;
    if trace then begin
      Fmt.pr "@.Surviving history:@.";
      Smr.Timeline.print r.Core.Adversary.final_sim
    end
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Play the Section 6 lower-bound construction against an algorithm \
          in the DSM model.")
    Term.(const run $ algo $ n_arg $ rounds $ polls $ trace)

let experiments_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Experiment names (e1..e13); all when omitted.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Emit CSV (header + rows) instead of aligned text.")
  in
  let run csv names =
    let wanted name = names = [] || List.mem name names in
    List.iter
      (fun (name, tables) ->
        if wanted name then
          List.iter
            (fun t ->
              if csv then print_string (Core.Report.to_csv t)
              else Core.Report.print t;
              print_newline ())
            (tables ()))
      [ ("e1", fun () -> [ Core.Experiment.e1 () ]);
        ("e2", fun () -> [ Core.Experiment.e2 () ]);
        ("e3", fun () -> Core.Experiment.e3 ());
        ("e4", fun () -> [ Core.Experiment.e4 () ]);
        ("e5", fun () -> [ Core.Experiment.e5 () ]);
        ("e6", fun () -> [ Core.Experiment.e6 () ]);
        ("e7", fun () -> [ Core.Experiment.e7 () ]);
        ("e8", fun () -> Core.Experiment.e8 ());
        ("e9", fun () -> [ Core.Experiment.e9 () ]);
        ("e10", fun () -> [ Core.Experiment.e10 () ]);
        ("e11", fun () -> [ Core.Experiment.e11 () ]);
        ("e12", fun () -> [ Core.Experiment.e12 () ]);
        ("e13", fun () -> [ Core.Experiment.e13 () ]) ]
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the claim-derived experiment tables (EXPERIMENTS.md).")
    Term.(const run $ csv $ names)

let list_cmd =
  let run () =
    Fmt.pr "Algorithms:@.";
    List.iter
      (fun (module A : Core.Signaling.POLLING) ->
        Fmt.pr "  %-18s [%s]  %s@." A.name
          (String.concat ", "
             (List.map
                (Fmt.str "%a" Smr.Op.pp_primitive_class)
                A.primitives))
          A.description)
      Core.Experiment.polling_algorithms;
    Fmt.pr "@.Models: dsm, cc-wt, cc-wb, cc-lfcu@.";
    Fmt.pr "@.Locks (E7):@.";
    List.iter
      (fun (module L : Sync.Mutex_intf.LOCK) -> Fmt.pr "  %s@." L.name)
      Core.Experiment.locks
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List algorithms, cost models and locks.")
    Term.(const run $ const ())

let () =
  let doc =
    "Reproduction of Golab's CC/DSM amortized-RMR complexity separation \
     (PODC 2011)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "separation" ~version:"1.0.0" ~doc)
          [ run_cmd; adversary_cmd; explore_cmd; experiments_cmd; list_cmd ]))
