(* Model-checking a signaling algorithm: enumerate EVERY interleaving.

   Random testing samples schedules; this example enumerates them.  We
   check the Section 5 flag algorithm and a deliberately broken variant
   against Specification 4.1 over their complete interleaving spaces, then
   size up the bigger algorithms' spaces.

   Run with: dune exec examples/model_check.exe *)

open Smr
open Core

let spec_ok sim = Signaling.check_polling (Sim.calls sim) = []

let setup (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n ~waiters ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ])
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Signaling.poll_label, inst.Signaling.i_poll w) ))
         waiters
  in
  (layout, scripts)

let verify name (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let layout, scripts = setup (module A) ~n ~waiters ~polls in
  let r =
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
      ~property:spec_ok ()
  in
  Fmt.pr "  %-16s %8d histories%s%s -> %s@." name r.Explore.histories
    (if r.Explore.truncated > 0 then
       Printf.sprintf " (%d spin-truncated)" r.Explore.truncated
     else "")
    (if r.Explore.complete then ", exhaustive" else ", capped")
    (match r.Explore.violation with
    | None -> "spec 4.1 holds"
    | Some _ -> "VIOLATION FOUND");
  r

(* A deliberately broken algorithm: Signal() raises the flag and then —
   sloppy cleanup — clears it again before returning.  A Poll() that
   begins after such a Signal() completed reads false: a Specification 4.1
   violation the enumeration is guaranteed to find. *)
module Buggy_reset : Signaling.POLLING = struct
  let name = "buggy-reset"

  let description =
    "writes the flag, then clears it before returning: a poll after the \
     completed signal sees false"

  let primitives = [ Op.Reads_writes ]

  let flexibility = Signaling.any_flexibility

  type t = { flag : bool Var.t }

  let create ctx (_ : Signaling.config) =
    { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false }

  let signal t _p =
    Program.bind (Program.write t.flag true) (fun () -> Program.write t.flag false)

  let poll t _p = Program.read t.flag
end

let () =
  Fmt.pr "Exhaustive interleaving checks (DSM model):@.";
  let _ = verify "cc-flag" (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  let _ = verify "dsm-broadcast" (module Dsm_broadcast) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  let _ = verify "dsm-single" (module Dsm_single_waiter) ~n:2 ~waiters:[ 1 ] ~polls:3 in
  let _ = verify "dsm-queue" (module Dsm_queue) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  Fmt.pr "@.And a deliberately broken signaler, to show the checker bites:@.";
  let r = verify "buggy-reset" (module Buggy_reset) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  (match r.Explore.violation with
  | Some sim ->
    Fmt.pr "@.The offending history's calls:@.";
    List.iter (fun c -> Fmt.pr "    %a@." History.pp_call c) (Sim.calls sim);
    List.iter
      (fun v -> Fmt.pr "    -> %a@." Signaling.pp_violation v)
      (Signaling.check_polling (Sim.calls sim))
  | None -> Fmt.pr "  (unexpectedly, no violation)@.")
