(* The wild goose chase, narrated.

   Runs the mechanized Section 6 adversary against two algorithms and
   explains each phase as it lands:

   - dsm-broadcast uses reads and writes only, so it is inside Theorem
     6.2's reach: every waiter stabilizes (their polls are local reads),
     and when the signaler sweeps the flags, the adversary erases each
     waiter an instant before its flag is written.  The signaler chases
     geese: N-1 RMRs delivered to processes that, in the surviving history,
     never existed.  Amortized cost: N-1 over a single participant.

   - dsm-queue registers waiters with Fetch-And-Increment.  Each
     registration is welded into the counter's value chain, so erasing a
     registrant changes what every later registrant observed — the replay
     check refuses, the geese are real, and every RMR the signaler pays is
     matched by a participant.  Amortized cost: O(1).

   Run with: dune exec examples/goose_chase.exe *)

open Core

let narrate (module A : Signaling.POLLING) ~n =
  Fmt.pr "=== adversary vs %s (N = %d) ===@." A.name n;
  Fmt.pr "%s@.@." A.description;
  let r = Adversary.run (module A) ~n () in
  if r.Adversary.rounds = [] then
    Fmt.pr
      "Part 1 needed no construction rounds: every waiter was stable from \
       its first step (polling is a local read).@."
  else begin
    Fmt.pr "Part 1 (Lemma 6.10) — erase / roll-forward rounds:@.";
    List.iter (fun s -> Fmt.pr "  %a@." Adversary.pp_round s) r.Adversary.rounds
  end;
  Fmt.pr "Stabilized waiters: %d (history regular: %b)@."
    r.Adversary.stable_waiters r.Adversary.part1_regular;
  (match r.Adversary.chase with
  | None -> Fmt.pr "Part 2 did not run (waiters never stabilized).@."
  | Some c ->
    Fmt.pr "@.Part 2 (Lemma 6.13) — the chase, signaler p%d:@." c.Adversary.signaler;
    Fmt.pr "  RMRs paid by the signaler:   %d@." c.Adversary.signaler_rmrs;
    Fmt.pr "  waiters erased mid-flight:   %d@." c.Adversary.chase_erased;
    Fmt.pr "  erasures blocked (visible):  %d@." c.Adversary.chase_erase_failures);
  Fmt.pr "@.Surviving history: %d participants, %d total RMRs -> amortized %.2f@."
    r.Adversary.participants r.Adversary.total_rmrs r.Adversary.amortized;
  if r.Adversary.spec_violated then
    Fmt.pr "A surviving waiter polled FALSE after Signal() completed — the \
            algorithm is incorrect!@.";
  Fmt.pr "@."

(* A miniature chase rendered as a timeline: the signaler's remote writes
   land in modules whose owners were erased from the history an instant
   earlier, so the surviving record shows a lone process paying RMRs into
   empty space. *)
let tiny_timeline () =
  let r = Adversary.run (module Dsm_broadcast) ~n:4 () in
  Fmt.pr "A 4-process chase, as a timeline of the SURVIVING history@.";
  Fmt.pr "(the erased waiters' steps are gone — only the signaler remains):@.";
  Smr.Timeline.print r.Adversary.final_sim;
  Fmt.pr "@."

let () =
  narrate (module Dsm_broadcast) ~n:32;
  narrate (module Dsm_queue) ~n:32;
  tiny_timeline ();
  Fmt.pr
    "Scaling the read/write victim shows the amortized cost growing \
     without bound:@.";
  List.iter
    (fun n ->
      let r = Adversary.run (module Dsm_broadcast) ~n () in
      Fmt.pr "  N=%4d  amortized %.2f@." n r.Adversary.amortized)
    [ 16; 64; 256 ];
  Fmt.pr
    "@.That growth is Theorem 6.2; the queue's flat line is Section 7's \
     escape through Fetch-And-Increment.@."
