(* Lock shoot-out: the Section 3 landscape the paper builds on.

   Five classic mutual-exclusion algorithms contend for one critical
   section on the same simulated machine; we bill the identical executions
   under the DSM and CC models and print RMRs per lock passage.  The
   textbook lesson reproduces: local-spin algorithms (MCS, Yang-Anderson)
   are flat or logarithmic, spin-on-shared-flag algorithms grow with the
   number of contenders, and Anderson's array lock is local-spin only where
   the cache can follow the spinner (CC).

   Run with: dune exec examples/lock_comparison.exe *)

let locks = Core.Algorithms.locks

let contenders = [ 2; 8; 32 ]

let () =
  Fmt.pr
    "RMRs per lock passage, %s contenders, 4 entries each, seeded random \
     schedule:@.@."
    (String.concat "/" (List.map string_of_int contenders));
  Fmt.pr "  %-14s" "lock";
  List.iter (fun n -> Fmt.pr "  cc@%-4d dsm@%-4d" n n) contenders;
  Fmt.pr "@.";
  List.iter
    (fun (module L : Sync.Mutex_intf.LOCK) ->
      Fmt.pr "  %-14s" L.name;
      List.iter
        (fun n ->
          let run model_of =
            (Sync.Lock_runner.run (module L) ~model_of ~n ~entries:4
               ~policy:(Smr.Schedule.Random_seed 42) ())
              .Sync.Lock_runner.avg_rmrs_per_passage
          in
          let cc = run (fun _ -> Smr.Cc.model ~n ()) in
          let dsm = run Smr.Cost_model.dsm in
          Fmt.pr "  %6.1f %7.1f" cc dsm)
        contenders;
      Fmt.pr "@.")
    locks;
  Fmt.pr
    "@.TAS/TTAS spin on the shared flag: every contender pays per hand-off.@.\
     MCS hands off through per-process nodes: O(1) everywhere.@.\
     Yang-Anderson pays one two-process duel per tree level: Θ(log N),@.\
     with reads and writes only — the tight bound for that class.@.\
     Anderson's array slots live in fixed modules: local only under CC.@."
