(* Quickstart: build a tiny machine by hand, write a signaling exchange in
   the program DSL, and watch the same execution get billed differently by
   the DSM and CC cost models.

   Run with: dune exec examples/quickstart.exe *)

open Smr
open Program.Syntax

let () =
  (* 1. Declare shared variables.  [flag] is a single shared Boolean — the
     whole Section 5 algorithm; [note] lives in process 1's own memory
     module, so only process 1 can read it for free in the DSM model. *)
  let ctx = Var.Ctx.create () in
  let flag = Var.Ctx.bool ctx ~name:"flag" ~home:Var.Shared false in
  let note = Var.Ctx.int ctx ~name:"note" ~home:(Var.Module 1) 0 in
  let layout = Var.Ctx.freeze ctx in

  (* 2. Write process code as ordinary monadic programs. *)
  let signaler =
    let* () = Program.write flag true in
    Program.write note 42
  in
  let waiter =
    (* Spin until the flag is up, then read the note. *)
    let* () = Program.await flag Fun.id in
    Program.read note
  in

  (* 3. Run the same interleaving under each cost model. *)
  let run model_name model =
    let sim = Sim.create ~model ~layout ~n:2 in
    (* Let the waiter poll the flag three times in vain first. *)
    let sim =
      Sim.begin_call sim 1 ~label:"wait" (Program.map Fun.id waiter)
    in
    let sim = List.fold_left (fun s () -> Sim.advance s 1) sim [ (); (); () ] in
    let sim, _ = Sim.run_call sim 0 ~label:"signal" (Program.map (fun () -> 0) signaler) in
    let sim = Sim.run_to_idle sim 1 in
    Fmt.pr "%-6s  signaler %d RMRs, waiter %d RMRs, note read = %d@."
      model_name (Sim.rmrs sim 0) (Sim.rmrs sim 1)
      (Option.get (Sim.last_result sim 1))
  in
  Fmt.pr "One spin-on-a-shared-flag exchange, billed by each model:@.";
  run "dsm" (Cost_model.dsm layout);
  run "cc-wt" (Cc.model ~n:2 ());
  Fmt.pr
    "@.The waiter's spin costs an RMR per iteration under DSM but is served@.\
     from its cache under CC — the asymmetry the paper turns into a theorem.@.";

  (* 4. The same comparison through the library's packaged algorithms. *)
  let n = 8 in
  let cfg = Core.Algorithms.config_for (module Core.Cc_flag) ~n in
  Fmt.pr "@.cc-flag (Sec. 5) at N=%d, per model:@." n;
  List.iter
    (fun tag ->
      let o = Core.Scenario.run_phased (module Core.Cc_flag) ~model:tag ~cfg () in
      Fmt.pr "  %-8s max waiter %d RMRs, amortized %.2f@."
        (Core.Scenario.model_tag_name tag)
        o.Core.Scenario.max_waiter_rmrs o.Core.Scenario.amortized)
    [ `Dsm; `Cc_wt; `Cc_wb; `Cc_lfcu ]
