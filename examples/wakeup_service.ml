(* Wakeup service: the workload the signaling problem abstracts.

   A pool of workers parks itself waiting for a coordinator's broadcast
   (shutdown, epoch change, config reload — any one-shot event).  Workers
   arrive at unpredictable times and only some of them park before the
   event fires.  On a DSM machine the naive design — everyone spins on one
   shared flag — melts the interconnect; the paper's Section 7 designs fix
   it, at different costs depending on what is known in advance.

   This example runs the same arrival pattern through four designs and
   prints what each costs whom.

   Run with: dune exec examples/wakeup_service.exe *)

open Core

let n = 128 (* coordinator + up to 127 workers *)

let arrivals = [ 1; 17; 23; 40; 77; 101 ] (* workers that park in time *)

let run name (module A : Signaling.POLLING) =
  let cfg = Algorithms.config_for (module A) ~n in
  match
    Scenario.run_phased (module A) ~model:`Dsm ~cfg ~active_waiters:arrivals ()
  with
  | o ->
    Fmt.pr "  %-18s worker max %3d   coordinator %3d   amortized %6.2f   %s@."
      name o.Scenario.max_waiter_rmrs o.Scenario.signaler_rmrs
      o.Scenario.amortized
      (if o.Scenario.violations = [] then "ok" else "SPEC VIOLATED")
  | exception Failure _ ->
    Fmt.pr "  %-18s blocks (waits for workers that never arrive)@." name

let () =
  Fmt.pr
    "Wakeup service on a %d-process DSM machine; %d of %d workers park \
     before the event.@.RMR bill per design:@.@."
    n (List.length arrivals) (n - 1);
  run "shared-flag" (module Cc_flag);
  run "flag-everyone" (module Dsm_broadcast);
  run "await-roster" (module Dsm_fixed_terminating);
  run "register-inbox" (module Dsm_registration);
  run "fai-queue" (module Dsm_queue);
  Fmt.pr
    "@.Reading the bill:@.\
     - shared-flag: workers spin remotely; fine on CC, unbounded on DSM.@.\
     - flag-everyone: workers free, but the coordinator pays for all %d@.\
    \  potential workers although only %d showed up — amortized blows up.@.\
     - await-roster: O(1) amortized but the coordinator blocks until every@.\
    \  rostered worker arrives; unusable when arrivals are optional.@.\
     - register-inbox: needs the coordinator's identity fixed in advance;@.\
    \  workers drop one word in its module, it scans locally.@.\
     - fai-queue: nobody fixed in advance, O(1) amortized — made possible@.\
    \  by Fetch-And-Increment, exactly as Section 7 prescribes; the paper's@.\
    \  Theorem 6.2 says no read/write/CAS design can match it.@."
    (n - 1) (List.length arrivals);

  (* The blocking flavor: workers that sleep instead of polling. *)
  Fmt.pr "@.Blocking flavor (workers Wait() instead of polling):@.";
  let cfg =
    Signaling.config ~n:16 ~waiters:(List.init 15 (fun i -> i + 1)) ~signalers:[ 0 ]
  in
  let o = Scenario.run_blocking (module Dsm_leader) ~model:`Dsm ~cfg ~seed:7 () in
  Fmt.pr
    "  dsm-leader: %d workers woke, max worker %d RMRs, total %d, spec %s@."
    (15 - o.Scenario.unfinished_waiters)
    o.Scenario.max_waiter_rmrs o.Scenario.total_rmrs
    (if o.Scenario.violations = [] then "ok" else "VIOLATED")
