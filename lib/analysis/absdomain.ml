(* The cache-state abstract domain behind the amortized lint.

   One abstract cell mirrors what Smr.Cc tracks concretely: does the
   analyzed process hold the line, and may it mutate in place?  The order
   runs from most to least knowledge —

     Owned <= Valid <= Invalid

   — and join moves toward Invalid, so merging control-flow paths can only
   forget cache contents, never invent them.  [Invalid] is the top element:
   the all-Invalid state (the empty map) is the sound starting point of
   every fixpoint iteration.

   Why the transfer functions look the way they do is pinned by Smr.Cc's
   concrete semantics (and by the wb failed-CAS counterexample PR 7's
   fuzzer minimized, docs/MODEL.md):

   - Under every protocol, any access by the process — read, write, or a
     comparison that fails — leaves it holding a valid copy ([Cc.account]
     ends every branch in [add_copy]).  So a transfer's post-state is at
     most [Valid].
   - A copy is lost only to another process's non-read-only operation:
     under wt and wb a remote mutation invalidates, and under wb even a
     {e failed} comparison acquires exclusive ownership and kills remote
     copies.  That is why [ext] classifies interference by
     [Op.is_read_only] alone — treating failed comparisons as invalidating
     — and why [Wb]'s [Owned] survives only on cells no other process
     touches at all.
   - The [Any] regime is the pointwise maximum cost over wt, wb and update
     with the pointwise minimum knowledge: reads bill iff the cell is
     Invalid (true in all three), mutations always bill (wt's rule; wb and
     update can only be cheaper), and [Owned] is never claimed.  A bound
     proved under [Any] therefore holds under every protocol, which is
     what the claim vocabulary promises.

   The model is the ideal (unbounded) cache of the paper's Section 8;
   capacity eviction (E12) is out of scope and documented as a caveat. *)

open Smr

type avail = Owned | Valid | Invalid

let rank = function Owned -> 0 | Valid -> 1 | Invalid -> 2

let avail_leq a b = rank a <= rank b

let join_avail a b = if rank a >= rank b then a else b

let avail_name = function
  | Owned -> "owned"
  | Valid -> "valid"
  | Invalid -> "invalid"

(* How other processes may touch a cell, from this process's viewpoint. *)
type ext = Ext_none | Ext_read | Ext_mut

type regime = Wt | Wb | Update | Any

let regime_name = function
  | Wt -> "wt"
  | Wb -> "wb"
  | Update -> "update"
  | Any -> "any"

module Addr_map = Map.Make (Int)

(* Per-cell availability; absent cells are Invalid, so the empty map is the
   all-Invalid top state and states stay canonical by never storing
   Invalid. *)
type state = avail Addr_map.t

let top : state = Addr_map.empty

let get st a =
  match Addr_map.find_opt a st with Some v -> v | None -> Invalid

let set st a v = if v = Invalid then Addr_map.remove a st else Addr_map.add a v st

let join st1 st2 =
  Addr_map.merge
    (fun _ v1 v2 ->
      match (v1, v2) with
      | Some v1, Some v2 ->
        let j = join_avail v1 v2 in
        if j = Invalid then None else Some j
      | Some _, None | None, Some _ ->
        None (* absent = Invalid, and join with Invalid is Invalid *)
      | None, None -> None)
    st1 st2

let equal = Addr_map.equal (fun a b -> rank a = rank b)

let leq st1 st2 =
  (* st1 <= st2 pointwise.  Absent cells are Invalid (top), so only cells
     st2 actually constrains can fail the comparison. *)
  Addr_map.for_all (fun a v2 -> avail_leq (get st1 a) v2) st2

let cells st = List.map fst (Addr_map.bindings st)

(* One access by the analyzed process: RMRs billed and the cell's new
   availability.  [ext] is the interference class of the accessed cell. *)
let transfer regime ~ext st inv =
  let a = Op.addr_of inv in
  let v = get st a in
  if Op.is_read_only inv then
    (* Identical in all four regimes: a read bills iff no valid copy, and
       ends with (at least) a shared copy.  A read never grants ownership
       (under wb a read miss even demotes a remote owner). *)
    let cost = if v = Invalid then 1 else 0 in
    let v' = if v = Invalid then Valid else v in
    (cost, set st a v')
  else
    match regime with
    | Wt | Any | Update ->
      (* wt: every mutating primitive reaches memory (a failed comparison
         still performs the round trip).  update bills writes remotely too;
         its failed-cached-comparison discount is outcome-dependent and so
         not statically claimable.  Any takes wt's cost as the sound
         maximum over all protocols.  All three end holding a copy, never
         ownership. *)
      (1, set st a Valid)
    | Wb ->
      (* wb: the exclusive owner mutates in cache; anyone else pays the
         acquisition (failed comparisons included — the PR 7
         counterexample).  Ownership is claimable only while no other
         process touches the cell at all: an external read demotes the
         owner to shared, an external mutation invalidates. *)
      let cost = if v = Owned then 0 else 1 in
      let v' = match ext a with Ext_none -> Owned | Ext_read | Ext_mut -> Valid in
      (cost, set st a v')

let pp ppf st =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:comma (fun ppf (a, v) -> Fmt.pf ppf "%d:%s" a (avail_name v)))
    (Addr_map.bindings st)
