open Smr

type call_report = {
  call : string;
  pids : int;
  nodes : int;
  cycles : int;
  stuck : int;
  complete : bool;
  classes : Op.primitive_class list;
  spin : Claims.spin;
  rmrs : Claims.bound;
  amortized : Amortized.result;
  violations : string list;
}

type report = {
  entry : Registry.entry;
  calls : call_report list;
  writer_violations : string list;
  facts : Independence.facts;
  indep_checked : int;
  indep_violations : string list;
  ok : bool;
}

module Addr_map = Map.Make (Int)

let spin_max a b = if Claims.spin_leq a b then b else a

let bound_max a b = if Claims.bound_leq a b then b else a

let class_name = function
  | Op.Reads_writes -> "reads/writes"
  | Op.Comparison -> "comparison"
  | Op.Fetch_and_phi -> "fetch-and-phi"

(* Base variable name: the part before an array suffix, so "reg[2]" and
   "reg[0]" both answer to a single-writer claim on "reg". *)
let base_name layout addr =
  let name = Var.layout_name layout addr in
  match String.index_opt name '[' with
  | Some i -> String.sub name 0 i
  | None -> name

let value_domain ~n ~layout =
  let inits = List.map (Var.layout_init layout) (Var.layout_addrs layout) in
  (* -1 covers the pid_opt NIL encoding; 0..n covers pids, booleans and
     small counters; initial values cover whatever the code compares
     against at start-up. *)
  List.sort_uniq compare ((-1) :: List.init (n + 1) (fun i -> i) @ inits)

let default_values entry =
  match entry.Registry.values with
  | Some vs -> vs
  | None -> value_domain ~n:entry.Registry.n ~layout:entry.Registry.layout

let run ?fuel ?unroll entry =
  let fuel =
    match entry.Registry.fuel with Some f -> Some f | None -> fuel
  in
  let unroll =
    match entry.Registry.unroll with Some u -> Some u | None -> unroll
  in
  let values = default_values entry in
  let extract ~exclusive pid program =
    Cfg.extract ?fuel ?unroll ~values ~exclusive ~pid program
  in
  (* Pass 1: no exclusivity assumptions; collect potential writers per cell
     across every call of the entry. *)
  let writers =
    List.fold_left
      (fun acc (call : Registry.call) ->
        List.fold_left
          (fun acc pid ->
            let cfg = extract ~exclusive:(fun _ -> false) pid (call.program pid) in
            List.fold_left
              (fun acc a ->
                let prev =
                  Option.value ~default:[] (Addr_map.find_opt a acc)
                in
                Addr_map.add a (List.sort_uniq compare (pid :: prev)) acc)
              acc
              (Checks.written_addrs cfg))
          acc call.pids)
      Addr_map.empty entry.calls
  in
  let writers_of a = Option.value ~default:[] (Addr_map.find_opt a writers) in
  let exclusive_for pid a =
    match writers_of a with [] -> true | [ q ] -> q = pid | _ -> false
  in
  let model = Cost_model.dsm entry.layout in
  (* A cell counts as externally mutable for [pid] when any other process
     may perform a non-read-only operation on it — the invalidation class
     the amortized pass's refill accounting uses (failed comparisons
     included, hence the pass-1 writers map is exactly the right source). *)
  let ext_mut_for pid a = List.exists (fun q -> q <> pid) (writers_of a) in
  (* Pass 2: owned-cell tracking on, evaluate the checks per call. *)
  let call_cfgs =
    List.map
      (fun (call : Registry.call) ->
        ( call,
          List.map
            (fun pid ->
              ( pid,
                extract ~exclusive:(exclusive_for pid) pid (call.program pid)
              ))
            call.pids ))
      entry.calls
  in
  (* Static-independence facts come from every call's CFGs together: a
     const-write fact must survive every mutation the algorithm can
     perform on the cell, whichever call performs it. *)
  let facts = Independence.of_cfgs (List.concat_map snd call_cfgs) in
  let calls =
    List.map
      (fun ((call : Registry.call), pid_cfgs) ->
        let claim = Claims.call entry.claims call.label in
        let cfgs = List.map snd pid_cfgs in
        let nodes = List.fold_left (fun a c -> a + Cfg.size c) 0 cfgs in
        let cycles =
          List.fold_left (fun a c -> a + List.length c.Cfg.cycles) 0 cfgs
        in
        let stuck = List.fold_left (fun a c -> a + c.Cfg.stuck) 0 cfgs in
        let complete = List.for_all (fun c -> c.Cfg.complete) cfgs in
        let classes =
          List.sort_uniq compare
            (List.concat_map Checks.used_classes cfgs)
        in
        let spin =
          List.fold_left
            (fun acc c ->
              spin_max acc (Checks.observed_spin ~layout:entry.layout c))
            Claims.No_spin cfgs
        in
        let rmrs =
          List.fold_left
            (fun acc c -> bound_max acc (Checks.worst_rmrs ~model c))
            (Claims.Rmr 0) cfgs
        in
        let amortized =
          (* Worst over the analyzed processes, componentwise: the claim
             must hold for whichever process pays the most. *)
          List.fold_left
            (fun acc (pid, cfg) ->
              let r = Amortized.analyze ~ext_mut:(ext_mut_for pid) cfg in
              {
                Amortized.cold = bound_max acc.Amortized.cold r.Amortized.cold;
                steady = bound_max acc.Amortized.steady r.Amortized.steady;
                refills = max acc.Amortized.refills r.Amortized.refills;
                footprint =
                  List.sort_uniq compare
                    (acc.Amortized.footprint @ r.Amortized.footprint);
              })
            {
              Amortized.cold = Claims.Rmr 0;
              steady = Claims.Rmr 0;
              refills = 0;
              footprint = [];
            }
            pid_cfgs
        in
        let amortized_observed =
          (* Abortable/Recoverable flavors are checked as worst-path
             (cold-cache) bounds until abort/crash-recover semantics land
             in the DSL; Amortized proper gets the cache-fixpoint bound. *)
          match claim.Claims.cc_amortized with
          | Claims.Amortized _ ->
            { Claims.steady = amortized.Amortized.steady;
              refills = amortized.Amortized.refills }
          | Claims.Abortable _ | Claims.Recoverable _ ->
            { Claims.steady = amortized.Amortized.cold;
              refills = amortized.Amortized.refills }
        in
        let violations =
          List.concat
            [
              (if complete then []
               else
                 [ "incomplete: fuel exhausted before the unfolding closed" ]);
              List.filter_map
                (fun c ->
                  (* Plain reads and writes are implicitly allowed: every
                     primitive class subsumes them, and the interesting
                     violation is smuggling in a *stronger* class than
                     declared. *)
                  if c = Op.Reads_writes || List.mem c entry.primitives then
                    None
                  else
                    Some
                      (Printf.sprintf
                         "primitive-class: uses %s primitives, declared %s"
                         (class_name c)
                         (String.concat "+"
                            (List.map class_name entry.primitives))))
                classes;
              (if Claims.spin_leq spin claim.Claims.spin then []
               else
                 [
                   Printf.sprintf "local-spin: observed %s spin, claimed %s"
                     (Claims.spin_name spin)
                     (Claims.spin_name claim.Claims.spin);
                 ]);
              (if Claims.bound_leq rmrs claim.Claims.dsm_rmrs then []
               else
                 [
                   Printf.sprintf
                     "rmr-bound: observed worst-case %s RMRs, claimed %s"
                     (Claims.bound_name rmrs)
                     (Claims.bound_name claim.Claims.dsm_rmrs);
                 ]);
              (if
                 Claims.amortized_leq amortized_observed
                   (Claims.amortized_of claim.Claims.cc_amortized)
               then []
               else
                 [
                   Printf.sprintf
                     "amortized: observed %s per call under any CC \
                      protocol, claimed %s"
                     (Claims.amortized_name amortized_observed)
                     (Claims.cc_amortized_name claim.Claims.cc_amortized);
                 ]);
            ]
        in
        {
          call = call.label;
          pids = List.length call.pids;
          nodes;
          cycles;
          stuck;
          complete;
          classes;
          spin;
          rmrs;
          amortized;
          violations;
        })
      call_cfgs
  in
  let writer_violations =
    List.filter_map
      (fun base ->
        let offenders =
          Addr_map.fold
            (fun a ws acc ->
              if base_name entry.layout a = base && List.length ws > 1 then
                (a, ws) :: acc
              else acc)
            writers []
        in
        match offenders with
        | [] -> None
        | (a, ws) :: _ ->
          Some
            (Printf.sprintf
               "write-ownership: %s declared single-writer but %s is written \
                by processes %s"
               base
               (Var.layout_name entry.layout a)
               (String.concat "," (List.map string_of_int ws))))
      entry.claims.Claims.single_writer
  in
  (* Declared const-write claims must be backed by a computed fact on every
     written cell of the base; the computed facts themselves are then
     validated differentially on the entry's own layout. *)
  let declared_violations =
    List.filter_map
      (fun base ->
        let offenders =
          Addr_map.fold
            (fun a ws acc ->
              if
                base_name entry.layout a = base
                && ws <> []
                && not (List.mem_assoc a facts.Independence.const_writes)
              then a :: acc
              else acc)
            writers []
        in
        match offenders with
        | [] -> None
        | a :: _ ->
          Some
            (Printf.sprintf
               "independence: %s declared const-write but %s is mutated \
                with more than one value or by non-write primitives"
               base
               (Var.layout_name entry.layout a)))
      entry.claims.Claims.const_writes
  in
  let indep_checked, fact_failures =
    Independence.validate ~layout:entry.layout facts
  in
  let indep_violations = declared_violations @ fact_failures in
  let ok =
    writer_violations = []
    && indep_violations = []
    && List.for_all (fun c -> c.violations = []) calls
  in
  { entry; calls; writer_violations; facts; indep_checked; indep_violations; ok }

let run_all ?fuel ?unroll entries = List.map (run ?fuel ?unroll) entries

let all_ok reports = List.for_all (fun r -> r.ok) reports

let violations r =
  List.concat_map (fun c -> List.map (fun v -> c.call ^ ": " ^ v) c.violations) r.calls
  @ r.writer_violations
  @ r.indep_violations
