(* The amortized-bound pass: interpret a call's CFG over the cache lattice
   and prove a [Claims.amortized] bound.

   The potential function is Phi(state) = number of Invalid cells in the
   call's read footprint.  One interpreted call from state S costs at most
   its worst path cost; external interference raises Phi by at most the
   number of footprint cells the interferer can invalidate ([refills]).
   Over any execution with N calls and S interfering external calls the
   telescoped total is

       total RMRs  <=  cold + N * steady + S * refills

   where [cold] pays Phi down from the all-Invalid start (the c0 of the
   claim) and [steady] is the per-call cost once the inter-call cache state
   has reached its fixpoint.

   Two structural facts make the analysis exact and terminating:

   - {!Cfg.extract} produces a {e tree} (each node has one incoming path),
     so a path-sensitive walk that records every node's in-state is linear
     and the worst path is a max-fold, exactly as {!Checks.worst_rmrs}.
   - {!Absdomain.transfer} only moves cells downward (toward Valid), so
     the inter-call exit state forms a descending chain in a finite
     lattice: iterating whole-call interpretation from all-Invalid
     converges, in at most one step per footprint cell.

   A cycle is billed by its residual: re-run the body from its own
   post-first-pass state; any cost still incurred recurs on every further
   iteration, and the spin count is not statically bounded, so a nonzero
   residual makes the call's bound [Unbounded].  Under the [Any] regime
   that happens exactly when a cycle contains a non-read-only operation —
   sound spin loops must be read-only on cached cells. *)

open Smr

type result = {
  cold : Claims.bound;
  steady : Claims.bound;
  refills : int;
  footprint : Op.addr list;
}

let interpret ~regime ~ext st0 (cfg : Cfg.t) =
  let in_state = Array.make (max 1 (Array.length cfg.Cfg.nodes)) Absdomain.top in
  let exit_state = ref None in
  let note_exit st =
    exit_state :=
      Some (match !exit_state with None -> st | Some s -> Absdomain.join s st)
  in
  let rec walk st target =
    match target with
    | Cfg.Done | Cfg.Stuck _ | Cfg.Cut ->
      note_exit st;
      0
    | Cfg.Back _ ->
      (* Not a call exit: the looping branch continues inside this call;
         its eventual exits are the loop's other edges, walked above. *)
      0
    | Cfg.Jump id ->
      let node = cfg.Cfg.nodes.(id) in
      in_state.(id) <- st;
      let cost, st' = Absdomain.transfer regime ~ext st node.Cfg.inv in
      cost
      + List.fold_left
          (fun acc e -> max acc (walk st' e.Cfg.target))
          0 node.Cfg.edges
  in
  let worst = walk st0 cfg.Cfg.entry in
  let residual_cost =
    let pass st =
      List.fold_left
        (fun (cost, st) inv ->
          let c, st' = Absdomain.transfer regime ~ext st inv in
          (cost + c, st'))
        (0, st)
    in
    List.fold_left
      (fun acc (c : Cfg.cycle) ->
        (* One body pass from the cycle entry's recorded in-state reaches
           the loop's own fixpoint (transfers only move cells downward and
           the second pass revisits the same cells); the second pass's cost
           is what every further spin iteration pays. *)
        let _, st1 = pass in_state.(c.Cfg.entry) c.Cfg.body in
        let cost, _ = pass st1 c.Cfg.body in
        max acc cost)
      0 cfg.Cfg.cycles
  in
  let bound =
    if residual_cost > 0 then Claims.Unbounded else Claims.Rmr worst
  in
  let exit = match !exit_state with Some s -> s | None -> st0 in
  (bound, exit)

let read_addrs cfg =
  Cfg.invocations cfg
  |> List.filter Op.is_read_only
  |> List.map Op.addr_of
  |> List.sort_uniq compare

(* Fixpoint iterations are bounded by the footprint size in theory; the
   cap is a safety net against a non-monotone regime slipping in. *)
let max_iters = 64

let analyze ~ext_mut cfg =
  let regime = Absdomain.Any in
  let ext a = if ext_mut a then Absdomain.Ext_mut else Absdomain.Ext_none in
  let cold, s1 = interpret ~regime ~ext Absdomain.top cfg in
  let rec fix st cost iters =
    if iters <= 0 then cost
    else
      let cost', st' = interpret ~regime ~ext st cfg in
      if Absdomain.equal st' st then cost' else fix st' cost' (iters - 1)
  in
  let steady = fix s1 cold max_iters in
  let footprint = read_addrs cfg in
  { cold;
    steady;
    refills = List.length (List.filter ext_mut footprint);
    footprint }
