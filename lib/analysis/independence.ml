(* The static-independence pass: from the extracted CFGs of every process
   of an algorithm, compute operation pairs that commute *beyond* what
   {!Smr.Op.commute} already knows, and validate each emitted fact
   differentially the same way {!Commute_check} validates the generic
   relation.

   The generic relation is purely syntactic: different cells always
   commute, same-cell pairs only when both are read-only.  A CFG gives one
   more sound fact for free: if every reachable non-read-only operation on
   cell [a], across every process, is a [Write] of one single value [v],
   then two cross-process [Write (a, v)] steps commute at instance level —
   either order leaves the same memory value, both responses are the
   write's constant acknowledgement, and any load-link on [a] is killed
   either way.  That is exactly the shape of one-shot signal flags (cc-flag
   writes [B := 1] and nothing else ever mutates [B]), where the generic
   relation sees a write/write conflict on every signaler pair.

   Soundness note: the facts are computed from the *over-approximating*
   unfolding ({!Cfg.extract} explores a superset of real paths), so a write
   present in some real execution is present in the CFG; a cell qualifies
   only if no other mutation shape appears anywhere.  Facts from an
   incomplete (fuel-cut) CFG are not emitted at all. *)

open Smr

type facts = {
  const_writes : (Op.addr * Op.value) list;
  co_kinds : (Op.addr * Op.kind * Op.kind) list;
}

let empty = { const_writes = []; co_kinds = [] }

module Addr_map = Map.Make (Int)

let of_cfgs cfgs =
  if List.exists (fun (_, cfg) -> not cfg.Cfg.complete) cfgs then empty
  else begin
    (* Per cell: every (pid, invocation) reaching it. *)
    let by_addr =
      List.fold_left
        (fun acc (pid, cfg) ->
          List.fold_left
            (fun acc inv ->
              let a = Op.addr_of inv in
              let prev = Option.value ~default:[] (Addr_map.find_opt a acc) in
              Addr_map.add a ((pid, inv) :: prev) acc)
            acc (Cfg.invocations cfg))
        Addr_map.empty cfgs
    in
    let const_writes =
      Addr_map.fold
        (fun a uses acc ->
          let muts =
            List.filter (fun (_, inv) -> not (Op.is_read_only inv)) uses
          in
          let values =
            List.filter_map
              (fun (_, inv) ->
                match inv with Op.Write (_, v) -> Some v | _ -> None)
              muts
          in
          match (muts, List.sort_uniq compare values) with
          | _ :: _, [ v ] when List.length values = List.length muts ->
            (a, v) :: acc
          | _ -> acc)
        by_addr []
      |> List.rev
    in
    let co_kinds =
      Addr_map.fold
        (fun a uses acc ->
          let pairs =
            List.concat_map
              (fun (p, ip) ->
                List.filter_map
                  (fun (q, iq) ->
                    if p >= q then None
                    else
                      let k1 = Op.kind ip and k2 = Op.kind iq in
                      let k1, k2 = if k1 <= k2 then (k1, k2) else (k2, k1) in
                      Some (a, k1, k2))
                  uses)
              uses
          in
          pairs @ acc)
        by_addr []
      |> List.sort_uniq compare
    in
    { const_writes; co_kinds }
  end

let commute facts p q =
  Op.commute p q
  ||
  match (p, q) with
  | Op.Write (x, v), Op.Write (y, w) ->
    x = y && v = w && List.mem (x, v) facts.const_writes
  | _ -> false

(* Differential validation of each const-write fact, in the style of
   {!Commute_check}: replay the pair in both orders through the real
   {!Smr.Memory} on the entry's own layout, over every priming value and
   every subset of pre-held load-links, and demand identical memory
   fingerprints and identical per-process responses. *)
let validate ~layout facts =
  let link_sites = [ 0; 1; 2 ] in
  let link_subsets =
    List.fold_left
      (fun acc site -> acc @ List.map (fun s -> site :: s) acc)
      [ [] ] link_sites
  in
  let checked = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (a, v) ->
      let init = Var.layout_init layout a in
      let primes = List.sort_uniq compare [ -1; 0; 1; init; v ] in
      List.iter
        (fun v0 ->
          List.iter
            (fun links ->
              incr checked;
              let m0 = Memory.create layout in
              let m0 =
                if v0 = init then m0
                else (Memory.apply m0 ~pid:2 (Op.Write (a, v0))).Memory.memory
              in
              let m0 =
                List.fold_left
                  (fun m pid -> (Memory.apply m ~pid (Op.Ll a)).Memory.memory)
                  m0 links
              in
              let both first second =
                let r1 = Memory.apply m0 ~pid:first (Op.Write (a, v)) in
                let r2 =
                  Memory.apply r1.Memory.memory ~pid:second (Op.Write (a, v))
                in
                (Memory.fingerprint r2.Memory.memory, r1.Memory.response,
                 r2.Memory.response)
              in
              let fp01, resp0_a, resp1_a = both 0 1 in
              let fp10, resp1_b, resp0_b = both 1 0 in
              if fp01 <> fp10 then
                failures :=
                  Printf.sprintf
                    "independence: %s=%d const-write fact refuted: memories \
                     diverge (prime %d, links {%s})"
                    (Var.layout_name layout a) v v0
                    (String.concat "," (List.map string_of_int links))
                  :: !failures
              else if resp0_a <> resp0_b || resp1_a <> resp1_b then
                failures :=
                  Printf.sprintf
                    "independence: %s=%d const-write fact refuted: responses \
                     diverge (prime %d, links {%s})"
                    (Var.layout_name layout a) v v0
                    (String.concat "," (List.map string_of_int links))
                  :: !failures)
            link_subsets)
        primes)
    facts.const_writes;
  (!checked, List.rev !failures)

let fact_names ~layout facts =
  List.map
    (fun (a, v) -> Printf.sprintf "%s=%d" (Var.layout_name layout a) v)
    facts.const_writes
