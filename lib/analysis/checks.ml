open Smr

let used_kinds cfg =
  let kinds = List.map Op.kind (Cfg.invocations cfg) in
  List.filter (fun k -> List.mem k kinds) Op.all_kinds

let used_classes cfg =
  let classes = List.map Op.primitive_class (Cfg.invocations cfg) in
  List.filter
    (fun c -> List.mem c classes)
    [ Op.Reads_writes; Op.Comparison; Op.Fetch_and_phi ]

let local ~layout ~pid inv =
  Var.layout_home layout (Op.addr_of inv) = Var.Module pid

let observed_spin ~layout cfg =
  match cfg.Cfg.cycles with
  | [] -> Claims.No_spin
  | cycles ->
    if
      List.for_all
        (fun c -> List.for_all (local ~layout ~pid:cfg.Cfg.pid) c.Cfg.body)
        cycles
    then Claims.Local_spin
    else Claims.Remote_spin

let rmr ~model ~pid inv =
  match Cost_model.predict model pid inv with
  | Some b -> b
  | None -> true (* cannot rule the RMR out statically: count it *)

let worst_rmrs ~model cfg =
  let pid = cfg.Cfg.pid in
  let cyclic_rmr =
    List.exists
      (fun c -> List.exists (rmr ~model ~pid) c.Cfg.body)
      cfg.Cfg.cycles
  in
  if cyclic_rmr then Claims.Unbounded
  else
    (* The nodes form a tree (back-edges contribute no further cost: their
       cycles are RMR-free here), so the worst path is a simple max-fold. *)
    let rec cost = function
      | Cfg.Jump id ->
        let node = cfg.Cfg.nodes.(id) in
        let here = if rmr ~model ~pid node.Cfg.inv then 1 else 0 in
        here
        + List.fold_left
            (fun acc e -> max acc (cost e.Cfg.target))
            0 node.Cfg.edges
      | Cfg.Back _ | Cfg.Done | Cfg.Stuck _ | Cfg.Cut -> 0
    in
    Claims.Rmr (cost cfg.Cfg.entry)

let written_addrs cfg =
  Cfg.invocations cfg
  |> List.filter (fun inv -> not (Op.is_read_only inv))
  |> List.map Op.addr_of
  |> List.sort_uniq compare
