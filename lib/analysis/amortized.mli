(** The amortized-bound pass: abstract interpretation of a call's {!Cfg}
    over the {!Absdomain} cache lattice, proving {!Claims.amortized}
    bounds.

    The accounting is the potential argument from the paper's CC side
    (Phi = Invalid cells in the call's read footprint): over any execution
    with [N] calls and [S] interfering external calls,

    {v total CC RMRs <= cold + N * steady + S * refills v}

    where [cold] is the worst single-call cost from the all-Invalid start,
    [steady] the worst cost once the inter-call cache state reaches its
    fixpoint, and [refills] the number of footprint cells an external
    call's non-read-only operation can invalidate.  Soundness caveats
    (ideal cache, failed comparisons counted as invalidating) are spelled
    out in docs/MODEL.md. *)

open Smr

type result = {
  cold : Claims.bound;  (** worst path from the all-Invalid state *)
  steady : Claims.bound;
      (** worst path at the inter-call cache fixpoint; [Unbounded] iff some
          cycle still bills at the fixpoint (under {!Absdomain.Any}: iff a
          cycle body contains a non-read-only operation) *)
  refills : int;  (** read-footprint cells external mutations can kill *)
  footprint : Op.addr list;  (** cells read somewhere in the graph *)
}

val interpret :
  regime:Absdomain.regime ->
  ext:(Op.addr -> Absdomain.ext) ->
  Absdomain.state ->
  Cfg.t ->
  Claims.bound * Absdomain.state
(** One whole-call interpretation from the given entry state: the worst
    path cost ([Unbounded] if some cycle's residual — the cost of a body
    pass from its own fixpoint — is nonzero) and the join of all exit
    states, for chaining into the next call. *)

val analyze : ext_mut:(Op.addr -> bool) -> Cfg.t -> result
(** Full analysis under {!Absdomain.Any} (sound for wt, wb and update).
    [ext_mut a] must be [true] whenever some {e other} process performs a
    non-read-only operation on [a] — {!Lint} computes this from its
    exclusivity-free first pass. *)
