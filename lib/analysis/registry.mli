(** Registry of lintable algorithm entries.

    Algorithm libraries register one {!entry} per analyzable instance (an
    algorithm at a concrete process count); the [separation lint] command
    and the test-suite run {!Lint} over {!all} of them.  Registration is
    by name: re-registering a name replaces the previous entry, so the
    catalog is idempotent. *)

open Smr

type call = {
  label : string;  (** e.g. ["poll"], ["acquire"] — must match a claim *)
  pids : Op.pid list;  (** processes the call is analyzed as *)
  program : Op.pid -> Op.value Program.t;
}

type entry = {
  name : string;
  mutant : bool;
      (** seeded lint-violation fixture: excluded from the default run,
          expected to fail when included *)
  n : int;  (** process count the instance was built for *)
  layout : Var.layout;
  primitives : Op.primitive_class list;  (** declared primitive classes *)
  claims : Claims.t;
  calls : call list;
  fuel : int option;  (** per-entry override of the extractor's node budget *)
  unroll : int option;
      (** per-entry override of the extractor's non-consecutive occurrence
          threshold, for algorithms whose infeasible-path artifacts need an
          extra unrolling to separate (see docs/MODEL.md) *)
  values : Op.value list option;  (** per-entry response-domain override *)
}

val entry :
  ?mutant:bool ->
  ?fuel:int ->
  ?unroll:int ->
  ?values:Op.value list ->
  name:string ->
  n:int ->
  layout:Var.layout ->
  primitives:Op.primitive_class list ->
  claims:Claims.t ->
  call list ->
  entry

val register : entry -> unit

val all : ?mutants:bool -> unit -> entry list
(** Registered entries in registration order; [mutants] (default [false])
    includes the seeded-violation fixtures. *)

val find : string -> entry option

val clear : unit -> unit
