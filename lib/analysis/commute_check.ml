open Smr

type counterexample = {
  a : Op.invocation;
  b : Op.invocation;
  init : (Op.addr * Op.value) list;
  links : (Op.pid * Op.addr) list;
  reason : string;
}

type result = {
  pairs : int;
  kind_pairs : int;
  checked : int;
  commuting : int;
  failures : counterexample list;
}

let domain = [ 0; 1 ]

(* Every invocation constructor over one address, with operands drawn from
   the value domain: 15 shapes per address, covering all 8 kinds. *)
let shapes a =
  [ Op.Read a; Op.Ll a; Op.Tas a ]
  @ List.concat_map
      (fun v -> [ Op.Write (a, v); Op.Sc (a, v); Op.Faa (a, v); Op.Fas (a, v) ])
      domain
  @ List.concat_map
      (fun e -> List.map (fun u -> Op.Cas (a, e, u)) domain)
      domain

let pp_counterexample ppf c =
  Fmt.pf ppf "%a / %a from %a links %a: %s" Op.pp_invocation c.a
    Op.pp_invocation c.b
    Fmt.(list ~sep:comma (pair ~sep:(any "=") int int))
    c.init
    Fmt.(list ~sep:comma (pair ~sep:(any "@") int int))
    c.links c.reason

let run () =
  let mk_memory (v0, v1) =
    let ctx = Var.Ctx.create () in
    let c0 = Var.Ctx.int ctx ~name:"c0" ~home:Var.Shared v0 in
    let c1 = Var.Ctx.int ctx ~name:"c1" ~home:Var.Shared v1 in
    (Memory.create (Var.Ctx.freeze ctx), Var.addr c0, Var.addr c1)
  in
  (* Addresses are allocation-order stable; grab them once. *)
  let _, a0, a1 = mk_memory (0, 0) in
  let invs = shapes a0 @ shapes a1 in
  let inits =
    List.concat_map (fun v0 -> List.map (fun v1 -> (v0, v1)) domain) domain
  in
  let link_sites = [ (0, a0); (0, a1); (1, a0); (1, a1) ] in
  let link_sets =
    (* All subsets of the four (pid, addr) link sites. *)
    List.fold_left
      (fun acc site -> acc @ List.map (fun s -> site :: s) acc)
      [ [] ] link_sites
  in
  let checked = ref 0 in
  let commuting = ref 0 in
  let failures = ref [] in
  let kind_pairs = Hashtbl.create 64 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Hashtbl.replace kind_pairs (Op.kind a, Op.kind b) ();
          List.iter
            (fun init ->
              List.iter
                (fun links ->
                  incr checked;
                  let m0, ad0, ad1 = mk_memory init in
                  let m0 =
                    List.fold_left
                      (fun m (pid, addr) ->
                        (Memory.apply m ~pid (Op.Ll addr)).Memory.memory)
                      m0 links
                  in
                  let both first_pid first second_pid second =
                    let r1 = Memory.apply m0 ~pid:first_pid first in
                    let r2 =
                      Memory.apply r1.Memory.memory ~pid:second_pid second
                    in
                    ( Memory.fingerprint r2.Memory.memory,
                      r1.Memory.response,
                      r2.Memory.response )
                  in
                  let fp_ab, ra_ab, rb_ab = both 0 a 1 b in
                  let fp_ba, rb_ba, ra_ba = both 1 b 0 a in
                  if Op.commute a b then begin
                    incr commuting;
                    let complain reason =
                      failures :=
                        {
                          a;
                          b;
                          init = [ (ad0, fst init); (ad1, snd init) ];
                          links;
                          reason;
                        }
                        :: !failures
                    in
                    if fp_ab <> fp_ba then
                      complain "memory fingerprints differ between orders"
                    else if ra_ab <> ra_ba then
                      complain "first operation's response depends on order"
                    else if rb_ab <> rb_ba then
                      complain "second operation's response depends on order"
                  end)
                link_sets)
            inits)
        invs)
    invs;
  {
    pairs = List.length invs * List.length invs;
    kind_pairs = Hashtbl.length kind_pairs;
    checked = !checked;
    commuting = !commuting;
    failures = List.rev !failures;
  }
