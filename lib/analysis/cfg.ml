open Smr

type target =
  | Jump of int
  | Back of int
  | Done
  | Stuck of string
  | Cut

type edge = { response : Op.value; target : target }

type node = { inv : Op.invocation; mutable edges : edge list }

type cycle = { entry : int; body : Op.invocation list }

type t = {
  pid : Op.pid;
  entry : target;
  nodes : node array;
  cycles : cycle list;
  complete : bool;
  stuck : int;
}

module Addr_map = Map.Make (Int)

(* Abstract one step.  [store] maps exclusively-owned cells to the value we
   know they hold (from a write we made, or a response we already observed —
   both stable until our own next write, since nobody else writes the cell).
   Returns every (response, store') the operation can produce. *)
let step_semantics ~exclusive ~values store inv =
  let a = Op.addr_of inv in
  let excl = exclusive a in
  let record v store = if excl then Addr_map.add a v store else store in
  let known = if excl then Addr_map.find_opt a store else None in
  match known with
  | Some current -> (
    match inv with
    | Op.Sc (_, v) ->
      (* The link state is not tracked, so SC branches even on owned cells. *)
      [ (0, store); (1, record v store) ]
    | _ ->
      let e = Op.execute ~current ~ll_valid:false inv in
      let store' =
        match e.Op.new_value with Some v -> record v store | None -> store
      in
      [ (e.Op.response, store') ])
  | None -> (
    match inv with
    | Op.Write (_, v) -> [ (0, record v store) ]
    | Op.Cas (_, _, u) ->
      (* Success pins the cell at [u]; failure tells us only what the cell
         is not, which the store cannot represent. *)
      [ (0, store); (1, record u store) ]
    | Op.Sc (_, v) -> [ (0, store); (1, record v store) ]
    | Op.Tas _ ->
      (* Either way the cell is 1 afterwards; the response branches. *)
      [ (0, record 1 store); (1, record 1 store) ]
    | Op.Read _ | Op.Ll _ ->
      (* Observing an owned cell pins it until our next write. *)
      List.map (fun v -> (v, record v store)) values
    | Op.Faa (_, d) -> List.map (fun v -> (v, record (v + d) store)) values
    | Op.Fas (_, v) -> List.map (fun r -> (r, record v store)) values)

let extract ?(fuel = 300_000) ?(unroll = 2) ?(values = [ -1; 0; 1 ])
    ~exclusive ~pid program =
  let nodes_rev = ref [] in
  let n_nodes = ref 0 in
  let cycles = ref [] in
  let stuck = ref 0 in
  let cut = ref false in
  (* [path] is the DFS stack of (invocation, node id), most recent first. *)
  let rec go path store prog =
    match prog with
    | Program.Return _ -> Done
    | Program.Step (inv, k) ->
      (match path with
       | (prev, prev_id) :: _ when prev = inv ->
         (* Consecutive repetition of one invocation is how [Program.await]
            retries: fold it into a self-loop immediately, independent of
            the unroll budget.  (Straight-line code that genuinely repeats
            an identical operation back-to-back is folded too — a
            documented imprecision; see docs/MODEL.md.) *)
         cycles := { entry = prev_id; body = [ inv ] } :: !cycles;
         Back prev_id
       | _ ->
      let occurrences = List.filter (fun (i, _) -> i = inv) path in
      if List.length occurrences >= unroll then begin
        (* Seen this exact invocation [unroll] times on the way here: treat
           the repetition as a loop back to its most recent occurrence. *)
        let entry = snd (List.hd occurrences) in
        let body =
          List.rev
            (List.filter_map
               (fun (i, id) -> if id >= entry then Some i else None)
               path)
        in
        cycles := { entry; body } :: !cycles;
        Back entry
      end
      else if !n_nodes >= fuel then begin
        cut := true;
        Cut
      end
      else begin
        let id = !n_nodes in
        let node = { inv; edges = [] } in
        nodes_rev := node :: !nodes_rev;
        incr n_nodes;
        let branches = step_semantics ~exclusive ~values store inv in
        let edges =
          List.map
            (fun (response, store') ->
              let target =
                match k response with
                | next -> go ((inv, id) :: path) store' next
                | exception e ->
                  incr stuck;
                  Stuck (Printexc.to_string e)
              in
              { response; target })
            branches
        in
        node.edges <- edges;
        Jump id
      end)
  in
  let entry = go [] Addr_map.empty program in
  {
    pid;
    entry;
    nodes = Array.of_list (List.rev !nodes_rev);
    cycles = List.rev !cycles;
    complete = not !cut;
    stuck = !stuck;
  }

let size t = Array.length t.nodes

let invocations t =
  Array.to_list t.nodes
  |> List.map (fun n -> n.inv)
  |> List.sort_uniq compare
