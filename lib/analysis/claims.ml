type spin = No_spin | Local_spin | Remote_spin

type bound = Rmr of int | Unbounded

type call_claim = { spin : spin; dsm_rmrs : bound }

type t = {
  single_writer : string list;
  calls : (string * call_claim) list;
}

let call t label =
  match List.assoc_opt label t.calls with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Claims.call: no claim for %S" label)

let spin_rank = function No_spin -> 0 | Local_spin -> 1 | Remote_spin -> 2

let spin_leq a b = spin_rank a <= spin_rank b

let bound_leq a b =
  match (a, b) with
  | _, Unbounded -> true
  | Unbounded, Rmr _ -> false
  | Rmr x, Rmr y -> x <= y

let spin_name = function
  | No_spin -> "none"
  | Local_spin -> "local"
  | Remote_spin -> "remote"

let bound_name = function
  | Rmr k -> string_of_int k
  | Unbounded -> "unbounded"

let pp_spin ppf s = Fmt.string ppf (spin_name s)

let pp_bound ppf b = Fmt.string ppf (bound_name b)
