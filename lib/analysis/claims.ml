type spin = No_spin | Local_spin | Remote_spin

type bound = Rmr of int | Unbounded

type amortized = { steady : bound; refills : int }

type cc_amortized =
  | Amortized of amortized
  | Abortable of amortized
  | Recoverable of amortized

type call_claim = {
  spin : spin;
  dsm_rmrs : bound;
  cc_amortized : cc_amortized;
}

type t = {
  single_writer : string list;
  const_writes : string list;
  calls : (string * call_claim) list;
}

let call t label =
  match List.assoc_opt label t.calls with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Claims.call: no claim for %S" label)

let spin_rank = function No_spin -> 0 | Local_spin -> 1 | Remote_spin -> 2

let spin_leq a b = spin_rank a <= spin_rank b

let bound_leq a b =
  match (a, b) with
  | _, Unbounded -> true
  | Unbounded, Rmr _ -> false
  | Rmr x, Rmr y -> x <= y

let amortized_leq a b = bound_leq a.steady b.steady && a.refills <= b.refills

let amortized_of = function
  | Amortized a | Abortable a | Recoverable a -> a

let spin_name = function
  | No_spin -> "none"
  | Local_spin -> "local"
  | Remote_spin -> "remote"

let bound_name = function
  | Rmr k -> string_of_int k
  | Unbounded -> "unbounded"

(* "steady+refills" — e.g. "1+0r": one RMR per steady-state call, no
   invalidation surcharge; "0+1r": free in steady state, one refill per
   interfering external call. *)
let amortized_name a = Printf.sprintf "%s+%dr" (bound_name a.steady) a.refills

let cc_amortized_name = function
  | Amortized a -> amortized_name a
  | Abortable a -> "abortable " ^ amortized_name a
  | Recoverable a -> "recoverable " ^ amortized_name a

let pp_spin ppf s = Fmt.string ppf (spin_name s)

let pp_bound ppf b = Fmt.string ppf (bound_name b)

let pp_amortized ppf a = Fmt.string ppf (amortized_name a)

let pp_cc_amortized ppf c = Fmt.string ppf (cc_amortized_name c)
