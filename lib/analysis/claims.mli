(** Machine-checkable claims an algorithm makes about itself.

    Every algorithm in the repo encodes a statement from the paper's
    complexity landscape — "cc-flag uses reads and writes only", "the DSM
    solutions are local-spin", "Poll is O(1) RMR".  A [Claims.t] states those
    properties as data so {!Lint} can verify them against the extracted
    control-flow graph instead of trusting comments. *)

(** How a call busy-waits, ordered [No_spin < Local_spin < Remote_spin].
    A claim passes when the observed behaviour is no worse than declared
    (over-claiming [Remote_spin] is always sound, never flattering). *)
type spin = No_spin | Local_spin | Remote_spin

(** Worst-case DSM RMRs over any single call: a concrete bound, or
    unbounded (some reachable loop performs a remote reference). *)
type bound = Rmr of int | Unbounded

(** An amortized CC RMR bound, the separation's native currency (the paper's
    Thm. 5.1 side: cc-flag pays O(1) RMRs {e per Signal}, not per call).
    Over any execution with [N] calls and [S] interfering external calls,
    total CC RMRs are at most [c0 + N*steady + S*refills], where [c0] is the
    one-time cold cost of populating the cache footprint:

    - [steady]: RMRs of one call once the cache has reached its fixpoint,
      with no interference during the call;
    - [refills]: footprint cells an external call's nontrivial operation can
      invalidate — the surcharge each such call adds (one re-fetch per
      invalidated cell).  PR 7's failed-CAS counterexample is why {e every}
      non-read-only external operation counts as invalidating: under
      write-back even a failed comparison acquires exclusive ownership. *)
type amortized = { steady : bound; refills : int }

(** The amortized-claim vocabulary of the adjacent results in PAPERS.md:
    [Amortized] is checked against the cache-fixpoint analysis;
    [Abortable] (Jayanti & Jayanti's constant-amortized abortable mutex) and
    [Recoverable] (Chan & Woelfel's crash-recoverable bounds) are checked as
    worst-path (cold-cache) bounds until abort/crash-recover semantics land
    in the DSL — the vocabulary is complete now so those algorithms can
    declare themselves when they arrive. *)
type cc_amortized =
  | Amortized of amortized
  | Abortable of amortized
  | Recoverable of amortized

type call_claim = {
  spin : spin;  (** worst busy-wait locality over every analyzed process *)
  dsm_rmrs : bound;  (** worst-case RMRs of one call under {!Smr.Cost_model.dsm} *)
  cc_amortized : cc_amortized;
      (** amortized RMRs of one call under any CC protocol (wt/wb/update) *)
}

type t = {
  single_writer : string list;
      (** base names of variables claimed to have at most one (potentially)
          writing process per cell; array cells are matched by the name
          before the ["[i]"] suffix *)
  const_writes : string list;
      (** base names of variables claimed to be written only by [Write]s of
          one single value (e.g. a one-shot flag only ever set to 1) — the
          static-independence facts {!Lint} must prove and
          {!Independence.commute} may then exploit *)
  calls : (string * call_claim) list;  (** claim per exported call label *)
}

val call : t -> string -> call_claim
(** Look up a call's claim; raises [Invalid_argument] for an undeclared
    label so a catalog typo fails loudly. *)

val spin_leq : spin -> spin -> bool
val bound_leq : bound -> bound -> bool

val amortized_leq : amortized -> amortized -> bool
(** Componentwise: the observed bound is no worse than the declared one. *)

val amortized_of : cc_amortized -> amortized
(** The payload, whatever the flavor. *)

val spin_name : spin -> string
val bound_name : bound -> string

val amortized_name : amortized -> string
(** ["steady+refillsr"], e.g. ["1+0r"], ["0+1r"], ["unbounded+2r"]. *)

val cc_amortized_name : cc_amortized -> string

val pp_spin : spin Fmt.t
val pp_bound : bound Fmt.t
val pp_amortized : amortized Fmt.t
val pp_cc_amortized : cc_amortized Fmt.t
