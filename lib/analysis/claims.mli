(** Machine-checkable claims an algorithm makes about itself.

    Every algorithm in the repo encodes a statement from the paper's
    complexity landscape — "cc-flag uses reads and writes only", "the DSM
    solutions are local-spin", "Poll is O(1) RMR".  A [Claims.t] states those
    properties as data so {!Lint} can verify them against the extracted
    control-flow graph instead of trusting comments. *)

(** How a call busy-waits, ordered [No_spin < Local_spin < Remote_spin].
    A claim passes when the observed behaviour is no worse than declared
    (over-claiming [Remote_spin] is always sound, never flattering). *)
type spin = No_spin | Local_spin | Remote_spin

(** Worst-case DSM RMRs over any single call: a concrete bound, or
    unbounded (some reachable loop performs a remote reference). *)
type bound = Rmr of int | Unbounded

type call_claim = {
  spin : spin;  (** worst busy-wait locality over every analyzed process *)
  dsm_rmrs : bound;  (** worst-case RMRs of one call under {!Smr.Cost_model.dsm} *)
}

type t = {
  single_writer : string list;
      (** base names of variables claimed to have at most one (potentially)
          writing process per cell; array cells are matched by the name
          before the ["[i]"] suffix *)
  calls : (string * call_claim) list;  (** claim per exported call label *)
}

val call : t -> string -> call_claim
(** Look up a call's claim; raises [Invalid_argument] for an undeclared
    label so a catalog typo fails loudly. *)

val spin_leq : spin -> spin -> bool
val bound_leq : bound -> bound -> bool

val spin_name : spin -> string
val bound_name : bound -> string

val pp_spin : spin Fmt.t
val pp_bound : bound Fmt.t
