(** Differential soundness check of {!Op.commute}.

    {!Smr.Explore}'s sleep-set partial-order reduction prunes interleavings
    on the strength of [Op.commute a b]: whenever it holds, executing [a]
    then [b] (by different processes) must be indistinguishable from [b]
    then [a] — same observable memory, same two responses.  This module
    machine-checks that premise by brute force: every ordered pair of
    invocation shapes over a two-cell layout, executed through the real
    {!Smr.Memory.apply} in both orders from every initial state of a small
    value domain and every load-link configuration, compared on
    {!Smr.Memory.fingerprint} (the same observable-state notion the
    explorer's dedup uses) and on responses.

    The shape enumeration instantiates every constructor with every operand
    from the value domain, so all 8 x 8 ordered kind pairs are covered —
    {!result}[.kind_pairs] asserts it. *)

open Smr

type counterexample = {
  a : Op.invocation;  (** performed by process 0 *)
  b : Op.invocation;  (** performed by process 1 *)
  init : (Op.addr * Op.value) list;
  links : (Op.pid * Op.addr) list;  (** load-links taken before the pair *)
  reason : string;
}

type result = {
  pairs : int;  (** ordered invocation-shape pairs enumerated *)
  kind_pairs : int;  (** distinct ordered [Op.kind] pairs among them (64) *)
  checked : int;  (** pair x initial-state x link-configuration scenarios *)
  commuting : int;  (** scenarios where [Op.commute] held (and was verified) *)
  failures : counterexample list;
}

val run : unit -> result

val pp_counterexample : counterexample Fmt.t
