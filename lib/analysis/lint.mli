(** The lint driver: extract, check, compare against claims.

    For one {!Registry.entry} the driver runs two extraction passes.  Pass
    one unfolds every (call, pid) with no exclusivity information and
    collects, per cell, the set of processes that may write it — this both
    feeds the write-ownership audit and computes the [exclusive] oracle for
    pass two.  Pass two re-extracts with owned-cell value tracking (precise
    enough to see through "register once, then spin locally" patterns) and
    evaluates the six checks:

    - {b primitive-class}: reachable kinds vs the declared classes;
    - {b local-spin}: observed busy-wait locality vs the claimed {!Claims.spin};
    - {b rmr-bound}: worst-case DSM RMRs vs the claimed {!Claims.bound};
    - {b amortized}: the {!Amortized} cache-fixpoint analysis vs the claimed
      {!Claims.cc_amortized} ([Abortable]/[Recoverable] flavors are held to
      their cold-cache worst path until those semantics land);
    - {b write-ownership}: per-cell writer sets vs the single-writer list;
    - {b independence}: declared const-write facts vs the {!Independence}
      pass, with every computed fact validated differentially on the
      entry's own layout;

    plus {b incomplete} when fuel cut a branch (an unverified claim is a
    failure, not a pass). *)

open Smr

type call_report = {
  call : string;
  pids : int;  (** number of processes analyzed *)
  nodes : int;  (** total CFG nodes across analyzed processes *)
  cycles : int;
  stuck : int;
  complete : bool;
  classes : Op.primitive_class list;  (** union over analyzed processes *)
  spin : Claims.spin;  (** worst over analyzed processes *)
  rmrs : Claims.bound;  (** worst over analyzed processes *)
  amortized : Amortized.result;  (** componentwise worst over processes *)
  violations : string list;  (** each tagged with the check's name *)
}

type report = {
  entry : Registry.entry;
  calls : call_report list;
  writer_violations : string list;
  facts : Independence.facts;
      (** computed from every call's pass-two CFGs together *)
  indep_checked : int;  (** differential scenarios run over the facts *)
  indep_violations : string list;
  ok : bool;
}

val value_domain : n:int -> layout:Var.layout -> Op.value list
(** The default response domain for unconstrained reads: -1 (the pid_opt
    NIL), 0..n, and every initial value of [layout].  Exposed so callers
    extracting CFGs outside a registry entry (e.g. the explorer's
    static-independence hook) branch over the same domain the lint does. *)

val run : ?fuel:int -> ?unroll:int -> Registry.entry -> report
(** [fuel]/[unroll] override the extractor defaults (an entry's own [fuel]
    field wins over both). *)

val run_all : ?fuel:int -> ?unroll:int -> Registry.entry list -> report list

val all_ok : report list -> bool

val violations : report -> string list
(** Every violation in the report, call-level and entry-level. *)
