(** The lint driver: extract, check, compare against claims.

    For one {!Registry.entry} the driver runs two extraction passes.  Pass
    one unfolds every (call, pid) with no exclusivity information and
    collects, per cell, the set of processes that may write it — this both
    feeds the write-ownership audit and computes the [exclusive] oracle for
    pass two.  Pass two re-extracts with owned-cell value tracking (precise
    enough to see through "register once, then spin locally" patterns) and
    evaluates the four checks:

    - {b primitive-class}: reachable kinds vs the declared classes;
    - {b local-spin}: observed busy-wait locality vs the claimed {!Claims.spin};
    - {b rmr-bound}: worst-case DSM RMRs vs the claimed {!Claims.bound};
    - {b write-ownership}: per-cell writer sets vs the single-writer list;

    plus {b incomplete} when fuel cut a branch (an unverified claim is a
    failure, not a pass). *)

open Smr

type call_report = {
  call : string;
  pids : int;  (** number of processes analyzed *)
  nodes : int;  (** total CFG nodes across analyzed processes *)
  cycles : int;
  stuck : int;
  complete : bool;
  classes : Op.primitive_class list;  (** union over analyzed processes *)
  spin : Claims.spin;  (** worst over analyzed processes *)
  rmrs : Claims.bound;  (** worst over analyzed processes *)
  violations : string list;  (** each tagged with the check's name *)
}

type report = {
  entry : Registry.entry;
  calls : call_report list;
  writer_violations : string list;
  ok : bool;
}

val run : ?fuel:int -> ?unroll:int -> Registry.entry -> report
(** [fuel]/[unroll] override the extractor defaults (an entry's own [fuel]
    field wins over both). *)

val run_all : ?fuel:int -> ?unroll:int -> Registry.entry list -> report list

val all_ok : report list -> bool

val violations : report -> string list
(** Every violation in the report, call-level and entry-level. *)
