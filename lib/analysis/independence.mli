(** The static-independence pass: per-algorithm commutation facts beyond
    the syntactic {!Smr.Op.commute}, computed from the extracted CFGs and
    validated differentially in the style of {!Commute_check}.

    The one fact shape emitted today is the {e const-write} cell: if every
    reachable non-read-only operation on a cell, across all processes, is a
    [Write] of one single value, then two cross-process writes of that
    value commute at instance level.  That turns the write/write "conflict"
    between two signalers of a one-shot flag into an independent pair the
    sleep-set POR in {!Smr.Explore} can exploit. *)

open Smr

type facts = {
  const_writes : (Op.addr * Op.value) list;
      (** cells whose every reachable mutation is [Write] of this value *)
  co_kinds : (Op.addr * Op.kind * Op.kind) list;
      (** per cell, the kind pairs that can co-occur across two distinct
          processes (unordered, smaller kind first) — the pairs a POR
          exploration of this algorithm can actually encounter *)
}

val empty : facts

val of_cfgs : (Op.pid * Cfg.t) list -> facts
(** Compute facts from one CFG per (process, call).  Returns {!empty} if
    any CFG is incomplete (fuel-cut): facts from a partial unfolding would
    be unsound. *)

val commute : facts -> Op.invocation -> Op.invocation -> bool
(** {!Smr.Op.commute} extended with the const-write facts.  Sound as an
    [?commute] argument to {!Smr.Explore.check} only for scripts whose
    reachable operations the CFGs cover — i.e. built from the same
    programs the facts were computed from. *)

val validate : layout:Var.layout -> facts -> int * string list
(** Differentially check every const-write fact on the real {!Smr.Memory}:
    both orders of the pair, over every priming value and subset of
    pre-held load-links, demanding identical fingerprints and responses.
    Returns (scenarios checked, refutations). *)

val fact_names : layout:Var.layout -> facts -> string list
(** Human-readable facts, e.g. [["B=1"]]. *)
