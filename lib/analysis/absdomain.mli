(** The per-cell cache-state lattice the amortized lint interprets over.

    Mirrors {!Smr.Cc}'s write-through / write-back / write-update regimes
    abstractly: a cell is [Owned] (exclusively held, mutable in cache),
    [Valid] (a shared copy) or [Invalid] (no copy), ordered
    [Owned <= Valid <= Invalid] with join toward [Invalid] — merging paths
    can only forget cache contents.  The [Any] regime is the sound
    upper bound over all three protocols and is what {!Amortized} proves
    claims under; [Wb]'s tighter ownership rule survives only on cells no
    other process touches, because under write-back even a {e failed}
    comparison by another process acquires exclusive ownership (the PR 7
    counterexample in docs/MODEL.md).  The model is the ideal unbounded
    cache of Section 8; capacity eviction (E12) is out of scope. *)

open Smr

type avail = Owned | Valid | Invalid

val rank : avail -> int
(** [Owned] 0, [Valid] 1, [Invalid] 2 — the lattice order. *)

val avail_leq : avail -> avail -> bool
val join_avail : avail -> avail -> avail
val avail_name : avail -> string

(** How other processes may touch a cell: not at all, reads only, or some
    non-read-only operation (failed comparisons included — they invalidate
    under write-back). *)
type ext = Ext_none | Ext_read | Ext_mut

type regime = Wt | Wb | Update | Any

val regime_name : regime -> string

type state
(** Per-cell availability; cells not mentioned are [Invalid]. *)

val top : state
(** The all-[Invalid] state — the sound start of every fixpoint. *)

val get : state -> Op.addr -> avail
val set : state -> Op.addr -> avail -> state

val join : state -> state -> state
val equal : state -> state -> bool
val leq : state -> state -> bool

val cells : state -> Op.addr list
(** Cells held ([Owned] or [Valid]), in address order. *)

val transfer :
  regime -> ext:(Op.addr -> ext) -> state -> Op.invocation -> int * state
(** One access by the analyzed process: (RMRs billed, post-state).
    Monotone in the state argument for every regime — the lattice-law
    tests in test_lint.ml check this over the full enumeration. *)

val pp : state Fmt.t
