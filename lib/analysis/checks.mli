(** The individual static checks over an extracted {!Cfg}.

    Each function computes the {e observed} property; {!Lint} compares it
    against the declared {!Claims}. *)

open Smr

val used_classes : Cfg.t -> Op.primitive_class list
(** Primitive classes of every reachable invocation, deduplicated, in
    declaration order of {!Op.primitive_class}. *)

val used_kinds : Cfg.t -> Op.kind list
(** Kinds of every reachable invocation, deduplicated. *)

val observed_spin : layout:Smr.Var.layout -> Cfg.t -> Claims.spin
(** Busy-wait locality: [No_spin] if the graph is acyclic, [Local_spin] if
    every invocation on every cycle targets a cell homed at the analyzed
    process's own memory module, [Remote_spin] otherwise.  (In the DSM model
    a remote cycle means unbounded RMRs — Sec. 1's reason shared spin
    variables are fatal.) *)

val worst_rmrs : model:Smr.Cost_model.t -> Cfg.t -> Claims.bound
(** Worst-case RMRs of a single call under [model] (normally
    {!Smr.Cost_model.dsm}): [Unbounded] when some cycle contains an
    RMR-classified invocation, otherwise the maximum RMR count over every
    root-to-leaf path.  An invocation whose classification the model cannot
    commit to statically ([predict] = [None]) is counted as an RMR. *)

val written_addrs : Cfg.t -> Op.addr list
(** Cells some reachable invocation may overwrite (writes, swaps, and
    comparison primitives whether or not they can succeed — conservative). *)
