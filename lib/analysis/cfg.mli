(** Bounded unfolding of a {!Smr.Program} into a response-branching
    control-flow graph.

    Programs are inert operation trees, so a call can be analyzed without a
    machine: starting from the call's program we branch on every value an
    operation could respond with, detect loops by spotting an invocation
    revisited along the current path, and stop runaway branches with fuel.
    The result is a finite tree of invocation nodes plus back-edges — enough
    structure for the {!Checks}: which operations are reachable, which
    invocations participate in cycles (busy-wait loops), and the worst-case
    acyclic operation cost.

    {2 Abstraction and soundness}

    The extractor over-approximates reachability: responses of operations on
    cells that several processes may write range over a caller-supplied
    finite [values] domain, so the graph contains every real execution path
    (plus infeasible ones — a continuation that rejects an impossible
    response by raising is recorded as a {!Stuck} leaf, not an error).  For
    cells the [exclusive] oracle attributes to the analyzed process alone,
    the extractor tracks values it has written {e or observed} along the
    path and resolves later operations deterministically — sound because no
    other process can overwrite such a cell between two of our steps.  Two
    caveats make the analysis bounded rather than complete: a branch that
    exhausts [fuel] is cut (reported via [complete = false], which {!Lint}
    treats as a violation), and loop detection unrolls [unroll] occurrences
    of an invocation before inserting a back-edge, so a loop whose body
    mutates its own operands on every iteration would be unrolled until fuel
    runs out rather than recognized. *)

open Smr

(** Where an edge goes. *)
type target =
  | Jump of int  (** to node [i] *)
  | Back of int  (** back-edge: re-enters the loop headed at node [i] *)
  | Done  (** the call returns *)
  | Stuck of string
      (** the continuation raised on this (infeasible) response *)
  | Cut  (** fuel exhausted; the graph is incomplete below here *)

type edge = { response : Op.value; target : target }

type node = { inv : Op.invocation; mutable edges : edge list }

type cycle = {
  entry : int;  (** node id the back-edge returns to *)
  body : Op.invocation list;  (** invocations along the looping path segment *)
}

type t = {
  pid : Op.pid;  (** process the program was analyzed as *)
  entry : target;
  nodes : node array;  (** indexed by node id, in discovery (DFS) order *)
  cycles : cycle list;
  complete : bool;  (** no branch was cut by fuel *)
  stuck : int;  (** number of [Stuck] leaves (pruned infeasible branches) *)
}

val extract :
  ?fuel:int ->
  ?unroll:int ->
  ?values:Op.value list ->
  exclusive:(Op.addr -> bool) ->
  pid:Op.pid ->
  Op.value Program.t ->
  t
(** [extract ~exclusive ~pid program] unfolds [program] as executed by
    [pid].  [values] is the response domain for unconstrained reads
    (default [[-1; 0; 1]]; callers should widen it to cover every pid and
    initial value the program compares against).  [exclusive a] must return
    [true] only if no process other than [pid] ever writes cell [a] —
    {!Lint} computes this from a first, exclusivity-free pass.  [fuel]
    bounds the total node count (default [300_000]); [unroll] is the number
    of occurrences of one invocation tolerated on a path before the next one
    becomes a back-edge (default [2], so a loop exit observed after the
    first iteration still explores its full downstream). *)

val size : t -> int
(** Number of nodes. *)

val invocations : t -> Op.invocation list
(** Every reachable invocation, deduplicated. *)
