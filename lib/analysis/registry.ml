open Smr

type call = {
  label : string;
  pids : Op.pid list;
  program : Op.pid -> Op.value Program.t;
}

type entry = {
  name : string;
  mutant : bool;
  n : int;
  layout : Var.layout;
  primitives : Op.primitive_class list;
  claims : Claims.t;
  calls : call list;
  fuel : int option;
  unroll : int option;
  values : Op.value list option;
}

let entry ?(mutant = false) ?fuel ?unroll ?values ~name ~n ~layout ~primitives
    ~claims calls =
  (* Fail at registration time, not lint time, on a label without a claim. *)
  List.iter (fun c -> ignore (Claims.call claims c.label)) calls;
  { name; mutant; n; layout; primitives; claims; calls; fuel; unroll; values }

let entries : entry list ref = ref []

let register e =
  entries := List.filter (fun e' -> e'.name <> e.name) !entries @ [ e ]

let all ?(mutants = false) () =
  List.filter (fun e -> mutants || not e.mutant) !entries

let find name = List.find_opt (fun e -> e.name = name) !entries

let clear () = entries := []
