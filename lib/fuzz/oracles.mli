(** The differential checking lattice: each oracle runs one case through
    two (or more) independent implementations of the same semantics and
    demands agreement.  Every oracle is deterministic — same case, same
    verdict, bytewise. *)

type verdict =
  | Agree of int  (** number of comparisons performed *)
  | Disagree of string  (** a finding: the first observable divergence *)
  | Skip  (** not applicable, or a truncated exploration; not a finding *)

type id =
  | Lean_vs_full
      (** persistent machine with vs without per-step history — every
          counter, call record and memory cell must match *)
  | Sim_vs_flat
      (** persistent machine vs the struct-of-arrays engine, caches
          sized so the flat LRU can never evict (the documented
          exact-match regime) *)
  | Por_vs_nopor
      (** model checker with dedup + sleep sets vs the literal
          enumeration: identical Spec 4.1 verdict on a 2-process scope *)
  | Claims_vs_measured
      (** a registry entry's static claims vs a measured execution: RMR
          bounds, spin locality, declared primitive classes *)
  | Amortized_vs_measured
      (** the amortized abstract interpreter's proven (cold, steady,
          refills) figures for a polling entry's Signal() vs the workload
          driver's measured signaler RMRs under every CC protocol, with
          one refill epoch charged per completed poll *)
  | Cc_invariants
      (** cost models are pure folds: responses/memory/clock are
          model-independent; with unbounded caches LFCU never bills more
          than write-through, and write-back never does on
          read/write-only histories (failed comparisons acquire
          exclusive ownership under wb, so the bound is false in
          general); DSM bills exactly the remote-home steps *)

val all : id list

val name : id -> string
val of_name : string -> id option

val applies : id -> Case.t -> bool
(** Whether the oracle consumes this case's family. *)

val weight : id -> int
(** Relative cost of one evaluation, for the deterministic budget. *)

val eval : id -> Case.t -> verdict
