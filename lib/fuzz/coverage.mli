(** Behavior signatures for coverage feedback.

    A signature compresses one case's flat-engine run — with
    {!Obs.Counters} planes armed, under write-through-on-a-bus and a
    never-evicting cache — into the set of event classes that fired, how
    many distinct cells each touched, and each total's binary order of
    magnitude (e.g. ["rmr:3c/b5 local:2c/b4 fetch:3c/b3 msg:b4"];
    ["quiet"] when nothing executed).  Cases sharing a signature drove
    the engine through the same classes of branches at the same scale,
    which is what the harness buckets corpus coverage by — and what
    [--coverage-new-only] keeps. *)

val signature : Case.t -> string
(** Deterministic: a function of the case alone.  Elaborates the case,
    so the lint registry must be populated first for [Entry] cases
    (the harness does this). *)

val signature_of_counters : Obs.Counters.t -> string
(** Render already-accumulated planes — one part per event class that
    fired, in {!Obs.Counters.classes} order, then the message bucket;
    ["quiet"] if every plane is zero.  {!signature} is drive-then-this. *)

val bucket : int -> int
(** [floor(log2 v) + 1] for positive [v], [0] for [0] — the
    order-of-magnitude bucket index used in signatures. *)
