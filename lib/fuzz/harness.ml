(* The budgeted fuzzing harness.

   Deterministic end to end: the case stream is a function of the seed,
   each oracle is a deterministic function of its case, and the budget is
   measured in schedule-decisions-times-oracle-weight rather than wall
   time — so `separation fuzz --seed S --cases N` produces the same
   table, the same findings and the same shrunk cases on every machine,
   byte for byte. *)

type config = {
  seed : int;
  cases : int;
  budget : int option; (* cap on deterministic work units *)
  oracles : Oracles.id list;
  mutants : bool; (* draw Entry cases from the seeded lint mutants *)
  only : int option; (* replay exactly one case index *)
  coverage_new_only : bool; (* oracle-check only signature-novel cases *)
}

let default_config =
  { seed = 1;
    cases = 200;
    budget = None;
    oracles = Oracles.all;
    mutants = false;
    only = None;
    coverage_new_only = false }

type finding = {
  f_oracle : string;
  f_index : int;
  f_detail : string;
  f_case : Case.t;
  f_shrunk : Case.t;
}

type report = {
  table : Core.Results.table;
  coverage : Core.Results.table;
  findings : finding list;
  cases_run : int;
  cases_skipped : int; (* duplicate-signature cases under coverage_new_only *)
  units : int;
}

let profile_for cfg =
  let algorithms =
    List.map
      (fun (module A : Core.Signaling.POLLING) -> A.name)
      Core.Experiment.polling_algorithms
  in
  let entries =
    List.filter_map
      (fun (e : Analysis.Registry.entry) ->
        if e.Analysis.Registry.mutant = cfg.mutants then
          Some e.Analysis.Registry.name
        else None)
      (Analysis.Registry.all ~mutants:true ())
  in
  let families =
    List.sort_uniq compare
      (List.concat_map
         (function
           | Oracles.Por_vs_nopor -> [ `Script ]
           | Oracles.Claims_vs_measured | Oracles.Amortized_vs_measured ->
             [ `Entry ]
           | Oracles.Lean_vs_full | Oracles.Sim_vs_flat | Oracles.Cc_invariants
             ->
             [ `Programs; `Script; `Entry ])
         cfg.oracles)
  in
  { Gen.p_families = families; p_algorithms = algorithms; p_entries = entries }

type tally = {
  mutable t_cases : int;
  mutable t_checks : int;
  mutable t_findings : int;
  mutable t_units : int;
}

let run cfg =
  (* The Entry family and the claims oracle read the lint registry. *)
  Core.Lint_catalog.register ();
  let profile = profile_for cfg in
  let oracles =
    List.filter (fun o -> List.mem o cfg.oracles) Oracles.all
  in
  let tallies =
    List.map
      (fun o -> (o, { t_cases = 0; t_checks = 0; t_findings = 0; t_units = 0 }))
      oracles
  in
  let tally o = List.assq o tallies in
  let findings = ref [] in
  let units = ref 0 in
  let exhausted () =
    match cfg.budget with Some b -> !units >= b | None -> false
  in
  let indices =
    match cfg.only with
    | Some i -> [ i ]
    | None -> List.init (max 0 cfg.cases) Fun.id
  in
  let cases_run = ref 0 in
  (* Coverage buckets: behavior signature -> (first case index, cases).
     [order] keeps first-seen order for a deterministic table. *)
  let buckets : (string, int * int ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun index ->
      if not (exhausted ()) then begin
        let case = Gen.gen ~profile ~seed:cfg.seed ~index in
        incr cases_run;
        let signature = Coverage.signature case in
        let novel =
          match Hashtbl.find_opt buckets signature with
          | Some (_, count) ->
            incr count;
            false
          | None ->
            Hashtbl.add buckets signature (index, ref 1);
            order := signature :: !order;
            true
        in
        if cfg.coverage_new_only && not novel then incr skipped
        else
          List.iter
          (fun o ->
            if Oracles.applies o case && not (exhausted ()) then begin
              let t = tally o in
              t.t_cases <- t.t_cases + 1;
              let cost =
                Oracles.weight o * max 1 (List.length case.Case.schedule)
              in
              t.t_units <- t.t_units + cost;
              units := !units + cost;
              match Oracles.eval o case with
              | Oracles.Skip -> ()
              | Oracles.Agree k -> t.t_checks <- t.t_checks + k
              | Oracles.Disagree detail ->
                t.t_checks <- t.t_checks + 1;
                t.t_findings <- t.t_findings + 1;
                let check c =
                  match Oracles.eval o c with
                  | Oracles.Disagree _ -> true
                  | Oracles.Agree _ | Oracles.Skip -> false
                in
                let shrunk = Shrink.minimize ~check case in
                let detail =
                  match Oracles.eval o shrunk with
                  | Oracles.Disagree d -> d
                  | Oracles.Agree _ | Oracles.Skip -> detail
                in
                findings :=
                  { f_oracle = Oracles.name o;
                    f_index = index;
                    f_detail = detail;
                    f_case = case;
                    f_shrunk = shrunk }
                  :: !findings
            end)
          oracles
      end)
    indices;
  let table =
    Core.Results.make ~experiment:"fuzz"
      ~title:
        (Printf.sprintf
           "Differential fuzz: seed=%d, %d cases through the oracle lattice"
           cfg.seed !cases_run)
      ~claim:
        "Lean vs full machine, persistent vs flat engine, POR vs literal \
         exploration, static claims vs measured RMRs, and the CC cost-model \
         invariants agree on every generated case"
      ~params:
        Core.Results.
          [ ("seed", int cfg.seed);
            ("cases", int !cases_run);
            ("mutants", bool cfg.mutants) ]
      ~columns:
        Core.Results.
          [ param "oracle"; measure "cases"; measure "checks";
            measure "findings"; measure "units" ]
      (List.map
         (fun (o, t) ->
           Core.Results.
             [ text (Oracles.name o); int t.t_cases; int t.t_checks;
               int t.t_findings; int t.t_units ])
         tallies)
  in
  let coverage =
    Core.Results.make ~experiment:"fuzz" ~part:"coverage"
      ~title:
        (Printf.sprintf "corpus coverage: %d signature buckets over %d cases"
           (Hashtbl.length buckets) !cases_run)
      ~claim:
        "counter-plane behavior signatures bucket the corpus; \
         --coverage-new-only oracle-checks one case per bucket"
      ~params:
        Core.Results.
          [ ("seed", int cfg.seed);
            ("buckets", int (Hashtbl.length buckets));
            ("skipped", int !skipped);
            ("new_only", bool cfg.coverage_new_only) ]
      ~columns:
        Core.Results.
          [ param "signature"; measure "first_case"; measure "cases" ]
      (List.rev_map
         (fun s ->
           let first, count = Hashtbl.find buckets s in
           Core.Results.[ text s; int first; int !count ])
         !order)
  in
  { table;
    coverage;
    findings = List.rev !findings;
    cases_run = !cases_run;
    cases_skipped = !skipped;
    units = !units }

let pp_finding ppf f =
  Fmt.pf ppf
    "@[<v>FINDING [%s] case %d: %s@,replay: separation fuzz --seed %d --only \
     %d@,minimized:@,%a@]"
    f.f_oracle f.f_index f.f_detail f.f_case.Case.seed f.f_index Case.pp
    f.f_shrunk
