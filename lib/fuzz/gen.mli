(** Seeded case generation: case [i] of seed [S] is a function of
    [(S, i)] alone, so any case can be regenerated in isolation
    ([separation fuzz --seed S --only i]).  Biased toward read-write
    races on a tiny heap, paired LL/SC, and crash-bearing schedules. *)

type profile = {
  p_families : [ `Programs | `Script | `Entry ] list;
      (** enabled families; families with an empty pool are dropped, and
          an empty result falls back to [`Programs] *)
  p_algorithms : string list;  (** pool for the [Script] family *)
  p_entries : string list;  (** pool for the [Entry] family *)
}

val case_rng : seed:int -> index:int -> Workload.Rng.t
val gen : profile:profile -> seed:int -> index:int -> Case.t
