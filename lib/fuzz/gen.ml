(* Seeded case generation.

   Case [i] of seed [S] is a function of (S, i) alone — each case owns a
   private splitmix64 stream keyed by the pair — so any case from any run
   can be regenerated in isolation ([separation fuzz --seed S --only i])
   without replaying the cases before it.

   The program generator is biased toward what actually finds
   disagreements: a tiny heap (1-3 cells) so processes race on the same
   addresses, paired LL/SC with an optional intervening access (the
   pattern cache models and link-invalidation bookkeeping get wrong
   first), comparison primitives with near-colliding operand values, and
   schedules that mix bursts of one process with uniform interleaving
   plus occasional mid-call crashes. *)

open Workload

type profile = {
  p_families : [ `Programs | `Script | `Entry ] list;
  p_algorithms : string list; (* pool for the Script family *)
  p_entries : string list; (* pool for the Entry family *)
}

let case_rng ~seed ~index = Rng.create (seed + (0x9E3779B9 * (index + 1)))

let pick rng = function
  | [] -> invalid_arg "Fuzz.Gen.pick: empty pool"
  | l -> List.nth l (Rng.int rng (List.length l))

let gen_ops rng ~ncells ~len =
  let buf = ref [] in
  let emit op = buf := op :: !buf in
  let v () = Rng.int rng 3 in
  let addr () = Rng.int rng ncells in
  for _ = 1 to len do
    let a = addr () in
    let roll = Rng.int rng 100 in
    if roll < 30 then emit (Smr.Op.Read a)
    else if roll < 52 then emit (Smr.Op.Write (a, v ()))
    else if roll < 64 then emit (Smr.Op.Cas (a, v (), v ()))
    else if roll < 78 then begin
      (* paired LL/SC, optionally with an access in between — the shape
         adversarial schedules break first *)
      emit (Smr.Op.Ll a);
      if Rng.bool rng 0.3 then emit (Smr.Op.Read (addr ()));
      emit (Smr.Op.Sc (a, v ()))
    end
    else if roll < 86 then emit (Smr.Op.Faa (a, 1 + Rng.int rng 2))
    else if roll < 93 then emit (Smr.Op.Fas (a, v ()))
    else emit (Smr.Op.Tas a)
  done;
  List.rev !buf

let gen_schedule rng ~n ~len ~crash_prob =
  let buf = ref [] in
  let last = ref 0 in
  for _ = 1 to len do
    let p = if Rng.bool rng 0.35 then !last else Rng.int rng (max 1 n) in
    last := p;
    buf :=
      (if Rng.bool rng crash_prob then Case.Crash p else Case.Step p) :: !buf
  done;
  List.rev !buf

let gen_programs rng ~seed ~index =
  let n = 2 + Rng.int rng 3 in
  let ncells = 1 + Rng.int rng 3 in
  let cells =
    List.init ncells (fun _ ->
        { Case.home = (if Rng.bool rng 0.5 then -1 else Rng.int rng n);
          init = Rng.int rng 2 })
  in
  let calls =
    List.init n (fun _ ->
        List.init
          (1 + Rng.int rng 2)
          (fun _ -> gen_ops rng ~ncells ~len:(1 + Rng.int rng 5)))
  in
  let total_ops =
    List.fold_left
      (fun acc per_pid ->
        List.fold_left (fun acc ops -> acc + List.length ops) acc per_pid)
      0 calls
  in
  let len = (2 * (total_ops + n)) + 8 + Rng.int rng 17 in
  { Case.seed;
    index;
    n;
    family = Case.Programs { cells; calls };
    schedule = gen_schedule rng ~n ~len ~crash_prob:0.04 }

let gen_script rng ~seed ~index ~algorithms =
  let n = 2 + Rng.int rng 3 in
  let algorithm = pick rng algorithms in
  let polls = 1 + Rng.int rng 3 in
  let len = 60 + Rng.int rng 240 in
  { Case.seed;
    index;
    n;
    family = Case.Script { algorithm; polls };
    schedule = gen_schedule rng ~n ~len ~crash_prob:0.02 }

let gen_entry rng ~seed ~index ~entries =
  let n = 2 + Rng.int rng 3 in
  let entry = pick rng entries in
  let repeats = 1 + Rng.int rng 2 in
  let len = 80 + Rng.int rng 160 in
  { Case.seed;
    index;
    n;
    family = Case.Entry { entry; repeats };
    schedule = gen_schedule rng ~n ~len ~crash_prob:0.03 }

let gen ~profile ~seed ~index =
  let rng = case_rng ~seed ~index in
  let families =
    List.filter
      (function
        | `Script -> profile.p_algorithms <> []
        | `Entry -> profile.p_entries <> []
        | `Programs -> true)
      profile.p_families
  in
  let families = match families with [] -> [ `Programs ] | l -> l in
  match pick rng families with
  | `Programs -> gen_programs rng ~seed ~index
  | `Script -> gen_script rng ~seed ~index ~algorithms:profile.p_algorithms
  | `Entry -> gen_entry rng ~seed ~index ~entries:profile.p_entries
