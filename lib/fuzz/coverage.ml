(* Behavior signatures for coverage feedback.

   The ROADMAP's coverage item asks to bucket fuzz cases by which engine
   branches they exercise.  The counter planes give that signal for free:
   run the elaborated case once on the flat engine with {!Obs.Counters}
   armed, and the set of (event class → how many distinct cells fired ×
   order-of-magnitude total) is a cheap, deterministic behavior signature
   — two cases with the same signature drove the engine through the same
   classes of branches at the same scale, so evaluating the full oracle
   lattice on both rarely learns anything new.

   The signature run fixes one cost model (write-through on a bus, the
   protocol with the richest event mix: fetches, invalidations and
   roundtrips all occur) and an LRU that never evicts, so the signature is
   a function of the case alone.  Totals are bucketed to their binary
   order of magnitude: coverage should distinguish "a handful" from "a
   thousand" invalidations, not 17 from 18. *)

open Smr

let norm_pid n p = if n <= 0 then 0 else ((p mod n) + n) mod n

(* floor(log2 v) + 1 for positive v: the bucket index of a total. *)
let bucket v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let signature_of_counters c =
  let size = Obs.Counters.size c in
  let parts =
    List.filter_map
      (fun cls ->
        let total = Obs.Counters.total c cls in
        if total = 0 then None
        else begin
          let cells = ref 0 in
          for a = 0 to size - 1 do
            if Obs.Counters.cell_total c ~addr:a cls > 0 then incr cells
          done;
          Some
            (Printf.sprintf "%s:%dc/b%d" (Obs.Counters.cls_name cls) !cells
               (bucket total))
        end)
      Obs.Counters.classes
  in
  let parts =
    match Obs.Counters.total_messages c with
    | 0 -> parts
    | m -> parts @ [ Printf.sprintf "msg:b%d" (bucket m) ]
  in
  match parts with [] -> "quiet" | _ -> String.concat " " parts

let signature (case : Case.t) =
  let rn = Case.elaborate case in
  let size = Var.layout_size rn.Case.r_layout in
  let counters = Obs.Counters.create ~groups:1 ~n:rn.Case.r_n ~size () in
  let flat =
    Flat_sim.create ~counters
      ~ll_ways:(max 4 size)
      ~model:
        (Flat_sim.Cc
           { protocol = Cc.Write_through;
             interconnect = Cc.Bus;
             ways = max 1 size })
      ~layout:rn.Case.r_layout ~n:rn.Case.r_n ()
  in
  let queues = Array.copy rn.Case.r_calls in
  let apply d =
    match d with
    | Case.Crash p ->
      let p = norm_pid rn.Case.r_n p in
      if Flat_sim.is_running flat p then Flat_sim.crash flat p
    | Case.Step p -> (
      let p = norm_pid rn.Case.r_n p in
      if Flat_sim.is_terminated flat p then ()
      else if Flat_sim.is_running flat p then Flat_sim.advance flat p
      else
        match queues.(p) with
        | [] -> ()
        | (label, prog) :: rest ->
          queues.(p) <- rest;
          Flat_sim.begin_call flat p ~label prog)
  in
  List.iter apply case.Case.schedule;
  for p = 0 to rn.Case.r_n - 1 do
    if Flat_sim.is_running flat p then Flat_sim.crash flat p
  done;
  signature_of_counters counters
