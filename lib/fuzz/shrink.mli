(** Greedy structural shrinking: replace the case with the first
    strictly-{!Case.size}-smaller candidate still failing [check], to a
    fixpoint or until [max_checks] candidate evaluations are spent.
    Deterministic given a deterministic [check]. *)

val candidates : Case.t -> Case.t list
(** Strictly smaller variants, most-aggressive first (schedule halves,
    crash removal, per-decision deletion, then family simplifications). *)

val minimize : ?max_checks:int -> check:(Case.t -> bool) -> Case.t -> Case.t
(** [check c] must return [true] iff [c] still reproduces the failure;
    [max_checks] defaults to 250. *)
