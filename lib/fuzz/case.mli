(** Symbolic fuzz cases: plain-data descriptions of one differential
    experiment, regenerable byte-identically from their (seed, index)
    pair and total to elaborate — every syntactic case, including every
    case the shrinker proposes, is runnable. *)

open Smr

type cell = { home : int;  (** -1 = Shared, otherwise a pid (mod n) *) init : int }

(** One scheduling decision.  [Step p] advances [p] if it is mid-call and
    otherwise begins its next queued call; [Crash p] crashes [p] if it is
    mid-call and is a no-op otherwise.  Decisions aimed at out-of-range
    pids are wrapped modulo the elaborated process count. *)
type decision = Step of Op.pid | Crash of Op.pid

type family =
  | Programs of {
      cells : cell list;
      calls : Op.invocation list list list;
          (** per pid: a list of calls, each an op list whose addresses
              are cell {e indices}, remapped at elaboration *)
    }
  | Script of { algorithm : string; polls : int }
      (** a catalog signaling algorithm: one Signal(), [polls] Poll()
          calls per waiter *)
  | Entry of { entry : string; repeats : int }
      (** a lint-registry entry: each registered call, [repeats] times
          per analyzed pid *)

type t = {
  seed : int;
  index : int;
  n : int;
  family : family;
  schedule : decision list;
}

val family_name : family -> string

val size : t -> int
(** Structural size — the measure {!Shrink.minimize} strictly decreases. *)

(** A case elaborated against real layouts and programs. *)
type runnable = {
  r_n : int;
  r_layout : Var.layout;
  r_calls : (string * Op.value Program.t) list array;
      (** per pid, the queue of calls the schedule's [Step]s consume *)
}

val elaborate : t -> runnable
(** Total on every syntactic case; raises [Invalid_argument] only for an
    unknown algorithm or registry-entry name (the registry must be
    populated first — see {!Core.Lint_catalog.register}). *)

val script_instance :
  n:int ->
  algorithm:string ->
  (Core.Signaling.config * Core.Signaling.instance * Var.layout) option
(** A fresh instance of a catalog signaling algorithm, for oracles that
    need the raw Poll/Signal programs (the exploration oracle). *)

val pp_decision : decision Fmt.t
val pp : t Fmt.t
val to_string : t -> string
