(* Greedy structural shrinking.

   [minimize ~check case] repeatedly replaces the case with the first
   strictly-smaller candidate on which [check] still holds ([check c] =
   "c still reproduces the disagreement"), until no candidate does or the
   check budget runs out.  Every candidate strictly decreases
   {!Case.size}, so the loop terminates; elaboration is total on every
   candidate, so [check] never has to guard against malformed cases.

   Candidate order matters for output quality: schedule bisection first
   (the big wins), then per-decision deletion, then family-level
   simplifications (drop calls, truncate ops, drop crashes, shrink
   parameters). *)

let drop_nth l i = List.filteri (fun j _ -> j <> i) l

let replace_nth l i x = List.mapi (fun j y -> if j = i then x else y) l

(* Lazily-ish ordered candidate list; all are plain data so building the
   list eagerly is cheap relative to one [check]. *)
let candidates (c : Case.t) =
  let with_schedule s = { c with Case.schedule = s } in
  let len = List.length c.Case.schedule in
  let halves =
    if len < 2 then []
    else
      let k = len / 2 in
      [ with_schedule (List.filteri (fun i _ -> i >= k) c.Case.schedule);
        with_schedule (List.filteri (fun i _ -> i < k) c.Case.schedule) ]
  in
  let no_crashes =
    if List.exists (function Case.Crash _ -> true | _ -> false) c.Case.schedule
    then
      [ with_schedule
          (List.filter
             (function Case.Crash _ -> false | _ -> true)
             c.Case.schedule) ]
    else []
  in
  let per_decision =
    List.init len (fun i -> with_schedule (drop_nth c.Case.schedule i))
  in
  let family =
    match c.Case.family with
    | Case.Programs { cells; calls } ->
      let with_calls calls =
        { c with Case.family = Case.Programs { cells; calls } }
      in
      (* drop one whole call of one pid *)
      List.concat
        (List.mapi
           (fun p per_pid ->
             List.init (List.length per_pid) (fun j ->
                 with_calls (replace_nth calls p (drop_nth per_pid j))))
           calls)
      (* truncate the last op of each call *)
      @ List.concat
          (List.mapi
             (fun p per_pid ->
               List.concat
                 (List.mapi
                    (fun j ops ->
                      match ops with
                      | [] | [ _ ] -> []
                      | _ ->
                        [ with_calls
                            (replace_nth calls p
                               (replace_nth per_pid j
                                  (drop_nth ops (List.length ops - 1)))) ])
                    per_pid))
             calls)
      (* drop the last cell *)
      @ (if List.length cells > 1 then
           [ { c with
               Case.family =
                 Case.Programs
                   { cells = drop_nth cells (List.length cells - 1); calls } } ]
         else [])
      (* fewer processes *)
      @
      if c.Case.n > 1 then
        [ { c with Case.n = c.Case.n - 1; family = Case.Programs { cells; calls } } ]
      else []
    | Case.Script { algorithm; polls } ->
      (if polls > 1 then
         [ { c with Case.family = Case.Script { algorithm; polls = polls - 1 } } ]
       else [])
      @
      if c.Case.n > 2 then
        [ { c with Case.n = c.Case.n - 1 } ]
      else []
    | Case.Entry { entry; repeats } ->
      if repeats > 1 then
        [ { c with Case.family = Case.Entry { entry; repeats = repeats - 1 } } ]
      else []
  in
  List.filter
    (fun cand -> Case.size cand < Case.size c)
    (halves @ no_crashes @ per_decision @ family)

let minimize ?(max_checks = 250) ~check case =
  let budget = ref max_checks in
  let rec go case =
    let next =
      List.find_opt
        (fun cand ->
          if !budget <= 0 then false
          else begin
            decr budget;
            check cand
          end)
        (candidates case)
    in
    match next with Some c -> go c | None -> case
  in
  go case
