(** The budgeted fuzzing harness behind [separation fuzz].

    Deterministic end to end: the case stream is a function of the seed,
    each oracle is a deterministic function of its case, and the budget
    is measured in work units (schedule decisions × oracle weight), not
    wall time — same seed, same bytes, on every machine. *)

type config = {
  seed : int;
  cases : int;  (** case indices 0 .. cases-1 *)
  budget : int option;  (** cap on deterministic work units *)
  oracles : Oracles.id list;
  mutants : bool;
      (** draw the Entry family from the seeded lint mutants instead of
          the honest catalog — every mutant reached must surface as a
          finding *)
  only : int option;  (** replay exactly one case index *)
  coverage_new_only : bool;
      (** evaluate the oracle lattice only on cases whose
          {!Coverage.signature} has not been seen yet this run; duplicate
          buckets still count toward coverage but cost no oracle work *)
}

val default_config : config
(** seed 1, 200 cases, no budget cap, every oracle, honest entries. *)

type finding = {
  f_oracle : string;
  f_index : int;
  f_detail : string;  (** re-derived on the shrunk case when possible *)
  f_case : Case.t;  (** as generated *)
  f_shrunk : Case.t;  (** greedily minimized, still disagreeing *)
}

type report = {
  table : Core.Results.table;  (** one row per selected oracle *)
  coverage : Core.Results.table;
      (** part ["coverage"]: one row per signature bucket, first-seen
          order *)
  findings : finding list;
  cases_run : int;
  cases_skipped : int;
      (** duplicate-signature cases not oracle-checked (0 unless
          [coverage_new_only]) *)
  units : int;
}

val run : config -> report
(** Registers the lint catalog, streams cases, evaluates every selected
    applicable oracle on each, and shrinks any disagreement. *)

val pp_finding : finding Fmt.t
(** Detail, replay command line, and the minimized case dump. *)
