(* The differential checking lattice.

   Each oracle runs one case through two (or more) independent
   implementations of the same semantics and demands agreement:

   - lean_vs_full: the persistent machine with and without per-step
     history accumulation — lean mode promises every counter, call
     record and memory cell is maintained identically.
   - sim_vs_flat: the persistent machine against the mutable
     struct-of-arrays engine, with the flat cache sized so its LRU can
     never evict (the regime where the two are documented to match
     exactly).
   - por_vs_nopor: the model checker with dedup + sleep-set POR against
     the literal one-leaf-per-interleaving enumeration; the Spec 4.1
     verdict must be identical.
   - claims_vs_measured: a registry entry's static claims (primitive
     classes, DSM RMR bounds, spin locality) against what a measured
     execution actually does — the dynamic half of the lint.
   - amortized_vs_measured: the amortized-RMR abstract interpreter's
     proven (cold, steady, refills) figures for a polling entry's
     Signal() against the open-system workload driver's measured
     signaler RMRs under every CC protocol — the dynamic half of the
     amortized lint.
   - cc_invariants: cost models are pure folds over one execution, so
     responses, memory, clock and per-call step counts must not depend
     on the model; with unbounded caches LFCU never bills more than
     write-through (and write-back never does on read/write-only
     histories), while DSM bills a step iff the accessed cell's home is
     remote.

   Every oracle is deterministic: same case, same verdict, bytewise. *)

open Smr

type verdict =
  | Agree of int (* number of comparisons performed *)
  | Disagree of string
  | Skip (* not applicable / budget truncation; not a finding *)

type id =
  | Lean_vs_full
  | Sim_vs_flat
  | Por_vs_nopor
  | Claims_vs_measured
  | Amortized_vs_measured
  | Cc_invariants

let all =
  [ Lean_vs_full; Sim_vs_flat; Por_vs_nopor; Claims_vs_measured;
    Amortized_vs_measured; Cc_invariants ]

let name = function
  | Lean_vs_full -> "lean-vs-full"
  | Sim_vs_flat -> "sim-vs-flat"
  | Por_vs_nopor -> "por-vs-nopor"
  | Claims_vs_measured -> "claims-vs-measured"
  | Amortized_vs_measured -> "amortized-vs-measured"
  | Cc_invariants -> "cc-invariants"

let of_name s = List.find_opt (fun o -> name o = s) all

let applies o (case : Case.t) =
  match (o, case.family) with
  | Por_vs_nopor, Case.Script _ -> true
  | Por_vs_nopor, _ -> false
  | (Claims_vs_measured | Amortized_vs_measured), Case.Entry _ -> true
  | (Claims_vs_measured | Amortized_vs_measured), _ -> false
  | (Lean_vs_full | Sim_vs_flat | Cc_invariants), _ -> true

(* Relative cost of one evaluation, for the deterministic budget. *)
let weight = function
  | Lean_vs_full -> 2
  | Sim_vs_flat -> 2
  | Por_vs_nopor -> 12
  | Claims_vs_measured -> 4
  | Amortized_vs_measured -> 8
  | Cc_invariants -> 4

(* {1 Cost models} *)

type tag = [ `Dsm | `Cc_wt | `Cc_wb | `Cc_lfcu ]

let tags : tag list = [ `Dsm; `Cc_wt; `Cc_wb; `Cc_lfcu ]

let tag_name (t : tag) =
  Core.Scenario.model_tag_name (t :> Core.Scenario.model_tag)

let tag_for_index i = List.nth tags (((i mod 4) + 4) mod 4)

let sim_cost ~n layout (t : tag) =
  Core.Scenario.make_model ~n layout (t :> Core.Scenario.model_tag)

let flat_spec layout : tag -> Flat_sim.model_spec =
  let ways = max 1 (Var.layout_size layout) in
  function
  | `Dsm -> Flat_sim.Dsm
  | `Cc_wt ->
    Flat_sim.Cc { protocol = Cc.Write_through; interconnect = Cc.Bus; ways }
  | `Cc_wb ->
    Flat_sim.Cc { protocol = Cc.Write_back; interconnect = Cc.Bus; ways }
  | `Cc_lfcu ->
    Flat_sim.Cc { protocol = Cc.Write_update; interconnect = Cc.Bus; ways }

(* {1 Drivers}

   Both engines consume the same decision list; control decisions (what
   to begin, whether a pid is runnable) are taken from the engine being
   driven, which the differential then proves equivalent by induction:
   the first divergence in observable state is exactly what the
   comparison reports. *)

let norm_pid n p = if n <= 0 then 0 else ((p mod n) + n) mod n

type observation = {
  o_clock : int;
  o_rmrs : int;
  o_messages : int;
  o_memory : (Op.addr * Op.value) list;
  o_calls : History.call list; (* sorted by (pid, seq) *)
}

let canon_calls calls =
  List.sort
    (fun (a : History.call) (b : History.call) ->
      compare (a.History.c_pid, a.History.c_seq) (b.History.c_pid, b.History.c_seq))
    calls

let drive_sim ~lean ~(tag : tag) (rn : Case.runnable) schedule =
  let cost = sim_cost ~n:rn.Case.r_n rn.Case.r_layout tag in
  let sim = Sim.create ~model:cost ~layout:rn.Case.r_layout ~n:rn.Case.r_n in
  let sim = if lean then Sim.lean_mode sim else sim in
  let queues = Array.copy rn.Case.r_calls in
  let apply sim d =
    match d with
    | Case.Crash p ->
      let p = norm_pid rn.Case.r_n p in
      if Sim.is_running sim p then Sim.crash sim p else sim
    | Case.Step p -> (
      let p = norm_pid rn.Case.r_n p in
      if Sim.is_terminated sim p then sim
      else if Sim.is_running sim p then Sim.advance sim p
      else
        match queues.(p) with
        | [] -> sim
        | (label, prog) :: rest ->
          queues.(p) <- rest;
          Sim.begin_call sim p ~label prog)
  in
  let sim = List.fold_left apply sim schedule in
  (* Crash every in-flight call so the call-record sets line up with the
     flat engine, which reports calls only at their end. *)
  let sim = ref sim in
  for p = 0 to rn.Case.r_n - 1 do
    if Sim.is_running !sim p then sim := Sim.crash !sim p
  done;
  !sim

let observe_sim (rn : Case.runnable) sim =
  { o_clock = Sim.clock sim;
    o_rmrs = Sim.total_rmrs sim;
    o_messages = Sim.total_messages sim;
    o_memory =
      List.map
        (fun a -> (a, Memory.get (Sim.memory sim) a))
        (Var.layout_addrs rn.Case.r_layout);
    o_calls = canon_calls (Sim.calls sim) }

let drive_flat ~(tag : tag) (rn : Case.runnable) schedule =
  let acc = ref [] in
  let on_complete ~pid ~label ~seq ~started ~finished ~crashed ~result ~rmrs
      ~steps =
    acc :=
      { History.c_pid = pid;
        c_label = label;
        c_seq = seq;
        c_started = started;
        c_finished = (if crashed then None else Some finished);
        c_result = (if crashed then None else Some result);
        c_rmrs = rmrs;
        c_steps = steps }
      :: !acc
  in
  let flat =
    Flat_sim.create ~on_complete
      ~ll_ways:(max 4 (Var.layout_size rn.Case.r_layout))
      ~model:(flat_spec rn.Case.r_layout tag)
      ~layout:rn.Case.r_layout ~n:rn.Case.r_n ()
  in
  let queues = Array.copy rn.Case.r_calls in
  let apply d =
    match d with
    | Case.Crash p ->
      let p = norm_pid rn.Case.r_n p in
      if Flat_sim.is_running flat p then Flat_sim.crash flat p
    | Case.Step p -> (
      let p = norm_pid rn.Case.r_n p in
      if Flat_sim.is_terminated flat p then ()
      else if Flat_sim.is_running flat p then Flat_sim.advance flat p
      else
        match queues.(p) with
        | [] -> ()
        | (label, prog) :: rest ->
          queues.(p) <- rest;
          Flat_sim.begin_call flat p ~label prog)
  in
  List.iter apply schedule;
  for p = 0 to rn.Case.r_n - 1 do
    if Flat_sim.is_running flat p then Flat_sim.crash flat p
  done;
  ( { o_clock = Flat_sim.clock flat;
      o_rmrs = Flat_sim.total_rmrs flat;
      o_messages = Flat_sim.total_messages flat;
      o_memory =
        List.map
          (fun a -> (a, Flat_sim.value flat a))
          (Var.layout_addrs rn.Case.r_layout);
      o_calls = canon_calls !acc },
    flat )

let pp_call = History.pp_call

let compare_observations ~left ~right a b =
  if a.o_clock <> b.o_clock then
    Some (Fmt.str "clock: %s=%d %s=%d" left a.o_clock right b.o_clock)
  else if a.o_rmrs <> b.o_rmrs then
    Some (Fmt.str "total rmrs: %s=%d %s=%d" left a.o_rmrs right b.o_rmrs)
  else if a.o_messages <> b.o_messages then
    Some
      (Fmt.str "total messages: %s=%d %s=%d" left a.o_messages right
         b.o_messages)
  else if a.o_memory <> b.o_memory then
    let diff =
      List.filter_map
        (fun ((addr, va), (_, vb)) ->
          if va <> vb then Some (Fmt.str "[%d]=%d/%d" addr va vb) else None)
        (List.combine a.o_memory b.o_memory)
    in
    Some (Fmt.str "memory (%s/%s): %s" left right (String.concat " " diff))
  else if List.length a.o_calls <> List.length b.o_calls then
    Some
      (Fmt.str "call count: %s=%d %s=%d" left
         (List.length a.o_calls)
         right
         (List.length b.o_calls))
  else
    match
      List.find_opt
        (fun (ca, cb) -> ca <> cb)
        (List.combine a.o_calls b.o_calls)
    with
    | Some (ca, cb) ->
      Some (Fmt.str "call record: %s=%a %s=%a" left pp_call ca right pp_call cb)
    | None -> None

(* {1 The oracles} *)

let lean_vs_full (case : Case.t) =
  let rn = Case.elaborate case in
  let tag = tag_for_index case.index in
  let full = observe_sim rn (drive_sim ~lean:false ~tag rn case.schedule) in
  let lean = observe_sim rn (drive_sim ~lean:true ~tag rn case.schedule) in
  match compare_observations ~left:"full" ~right:"lean" full lean with
  | Some d -> Disagree (Fmt.str "[%s] %s" (tag_name tag) d)
  | None -> Agree (5 + List.length full.o_calls)

let sim_vs_flat (case : Case.t) =
  let rn = Case.elaborate case in
  let tag = tag_for_index (case.index + 1) in
  let sim = observe_sim rn (drive_sim ~lean:false ~tag rn case.schedule) in
  let flat, _ = drive_flat ~tag rn case.schedule in
  match compare_observations ~left:"sim" ~right:"flat" sim flat with
  | Some d -> Disagree (Fmt.str "[%s] %s" (tag_name tag) d)
  | None -> Agree (5 + List.length sim.o_calls)

let por_vs_nopor (case : Case.t) =
  match case.family with
  | Case.Programs _ | Case.Entry _ -> Skip
  | Case.Script { algorithm; polls } -> (
    (* Naive enumeration is exponential, so the exploration oracle runs
       the smallest nontrivial scope: one waiter, one signaler, at most
       two polls.  POR + dedup against the literal enumeration on the
       same scope must reach the same Spec 4.1 verdict. *)
    let polls = min (max 1 polls) 2 in
    match Case.script_instance ~n:2 ~algorithm with
    | None -> Skip
    | Some (cfg, inst, layout) ->
      let model = Cost_model.dsm layout in
      let scripts =
        List.map
          (fun s ->
            ( s,
              Explore.of_list
                [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal s)
                ] ))
          cfg.Core.Signaling.signalers
        @ List.map
            (fun w ->
              ( w,
                Explore.repeat ~limit:polls
                  ~until:(fun r -> r = 1)
                  (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
            cfg.Core.Signaling.waiters
      in
      let property sim = Core.Signaling.check_polling (Sim.calls sim) = [] in
      let run ~dedup ~por =
        Explore.check ~max_histories:50_000 ~max_steps_per_history:300 ~dedup
          ~por ~layout ~model ~n:cfg.Core.Signaling.n ~scripts ~property ()
      in
      let reduced = run ~dedup:true ~por:true in
      let naive = run ~dedup:false ~por:false in
      if not (reduced.Explore.complete && naive.Explore.complete) then Skip
      else if
        (reduced.Explore.violation <> None) <> (naive.Explore.violation <> None)
      then
        Disagree
          (Fmt.str
             "%s: por+dedup %s a Spec 4.1 violation over %d states, the \
              literal enumeration %s one over %d histories"
             algorithm
             (if reduced.Explore.violation <> None then "found" else "missed")
             reduced.Explore.stats.Explore.states
             (if naive.Explore.violation <> None then "found" else "missed")
             naive.Explore.histories)
      else Agree 1)

(* Dynamic lint: measure a registry entry's calls under the DSM model and
   hold the measurements against the entry's declared claims.  The static
   analyzer proves the claims over the CFG; here a real execution must
   not be able to exceed them — a mutant whose claims flatter it (the
   seeded lint fixtures) loses on both fronts. *)
let claims_vs_measured (case : Case.t) =
  match case.family with
  | Case.Programs _ | Case.Script _ -> Skip
  | Case.Entry { entry; repeats } -> (
    match Analysis.Registry.find entry with
    | None -> Skip
    | Some e ->
      let repeats = max 1 repeats in
      let fuel = 512 in
      let spin_rmr_bound = 64 in
      let cost = Cost_model.dsm e.Analysis.Registry.layout in
      let fresh () =
        Sim.create ~model:cost ~layout:e.Analysis.Registry.layout
          ~n:e.Analysis.Registry.n
      in
      let problems = ref [] in
      let checks = ref 0 in
      let problem fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
      let run_one sim (c : Analysis.Registry.call) p =
        (* A fuel-crashed process stays crashed (a crash is forever), so
           later repeats simply skip it. *)
        if Sim.is_terminated !sim p then ()
        else
        let s =
          Sim.begin_call !sim p ~label:c.Analysis.Registry.label
            (c.Analysis.Registry.program p)
        in
        let rec go s fuel =
          if fuel <= 0 || not (Sim.is_running s p) then s
          else go (Sim.advance s p) (fuel - 1)
        in
        let s = go s fuel in
        let s = if Sim.is_running s p then Sim.crash s p else s in
        sim := s;
        let seq = Sim.call_count s p - 1 in
        match
          List.find_opt
            (fun (r : History.call) -> r.History.c_seq = seq)
            (Sim.calls_of s p)
        with
        | None -> ()
        | Some record ->
          let claim =
            Analysis.Claims.call e.Analysis.Registry.claims
              c.Analysis.Registry.label
          in
          incr checks;
          (match claim.Analysis.Claims.dsm_rmrs with
          | Analysis.Claims.Rmr k ->
            if record.History.c_rmrs > k then
              problem
                "%s/%s (pid %d): measured %d DSM RMRs exceed the claimed \
                 bound of %d"
                entry c.Analysis.Registry.label p record.History.c_rmrs k
          | Analysis.Claims.Unbounded -> ());
          (match claim.Analysis.Claims.spin with
          | Analysis.Claims.No_spin | Analysis.Claims.Local_spin ->
            if record.History.c_finished = None && record.History.c_rmrs > spin_rmr_bound
            then
              problem
                "%s/%s (pid %d): burned %d RMRs in %d steps without \
                 completing under a %s claim (remote busy-wait)"
                entry c.Analysis.Registry.label p record.History.c_rmrs
                record.History.c_steps
                (Analysis.Claims.spin_name claim.Analysis.Claims.spin)
          | Analysis.Claims.Remote_spin -> ())
      in
      (* Phase 1 — solo: every call measured from the initial state, one
         process alone.  A Wait()/acquire measured before anyone signals
         or releases is exactly where a mis-claimed spin shows its
         locality (mutant-remote-spin survives the sequential phase,
         where the preceding Signal() makes its wait return at once). *)
      let solo_sims =
        List.concat_map
          (fun (c : Analysis.Registry.call) ->
            List.map
              (fun p ->
                let sim = ref (fresh ()) in
                run_one sim c p;
                !sim)
              c.Analysis.Registry.pids)
          e.Analysis.Registry.calls
      in
      (* Phase 2 — sequential: all calls share one machine, [repeats]
         rounds, so later calls observe earlier effects. *)
      let shared = ref (fresh ()) in
      for _ = 1 to repeats do
        List.iter
          (fun (c : Analysis.Registry.call) ->
            List.iter (run_one shared c) c.Analysis.Registry.pids)
          e.Analysis.Registry.calls
      done;
      (* Declared primitive classes must cover every executed strong
         primitive.  Reads and writes are the base vocabulary every
         algorithm may use; it is the comparison and fetch-and-phi steps
         that decide which lower bound applies (Thm. 6.2 / Cor. 6.14 /
         Sec. 7), so executing one undeclared is a lie about complexity
         class — the lie mutant-cas-flag tells. *)
      List.iter
        (fun sim ->
          List.iter
            (fun (s : History.step) ->
              incr checks;
              let cls = Op.primitive_class s.History.inv in
              if
                cls <> Op.Reads_writes
                && not (List.mem cls e.Analysis.Registry.primitives)
              then
                problem
                  "%s: executed a %s step (%s) outside the declared classes"
                  entry
                  (Fmt.str "%a" Op.pp_primitive_class cls)
                  (Op.show_invocation s.History.inv))
            (Sim.steps sim))
        (!shared :: solo_sims);
      if !problems = [] then Agree !checks
      else Disagree (String.concat "; " (List.sort_uniq compare !problems)))

(* Dynamic half of the amortized lint.  The abstract interpreter proves a
   (cold, steady, refills) accounting for every call: total CC RMRs over N
   calls stay within cold + N*steady plus [refills] per external-mutation
   epoch.  Here the open-system workload driver runs the same polling
   entry at small scale under every CC protocol, and the signaler's
   measured RMR total must obey that identity with one epoch charged per
   completed poll (every external write happens inside some poll; the
   driver's crash and early-leave knobs stay at zero so completed polls
   are exactly the external activity).  The cache is sized so the flat
   LRU never evicts — the ideal-cache regime the static pass models. *)

(* Lint is pure in the entry (the registry re-registers identically named
   entries identically), so one static analysis serves every case that
   draws the same entry. *)
let lint_memo : (string, Analysis.Lint.report) Hashtbl.t = Hashtbl.create 8

let lint_report (e : Analysis.Registry.entry) =
  match Hashtbl.find_opt lint_memo e.Analysis.Registry.name with
  | Some r -> r
  | None ->
    let r = Analysis.Lint.run e in
    Hashtbl.add lint_memo e.Analysis.Registry.name r;
    r

let amortized_vs_measured (case : Case.t) =
  match case.family with
  | Case.Programs _ | Case.Script _ -> Skip
  | Case.Entry { entry; repeats } -> (
    match Analysis.Registry.find entry with
    | None -> Skip
    | Some e -> (
      let find_call l =
        List.find_opt
          (fun (c : Analysis.Registry.call) -> c.Analysis.Registry.label = l)
          e.Analysis.Registry.calls
      in
      (* Only the driver's shape fits: pid 0 signals, pids 1..k poll. *)
      match (find_call "signal", find_call "poll") with
      | Some signal_call, Some poll_call
        when List.mem 0 signal_call.Analysis.Registry.pids
             && poll_call.Analysis.Registry.pids <> []
             && poll_call.Analysis.Registry.pids
                = List.init
                    (List.length poll_call.Analysis.Registry.pids)
                    (fun i -> i + 1) -> (
        let report = lint_report e in
        match
          List.find_opt
            (fun (c : Analysis.Lint.call_report) ->
              c.Analysis.Lint.call = "signal")
            report.Analysis.Lint.calls
        with
        | Some cr when cr.Analysis.Lint.complete -> (
          let am = cr.Analysis.Lint.amortized in
          match (am.Analysis.Amortized.cold, am.Analysis.Amortized.steady) with
          | Analysis.Claims.Unbounded, _ | _, Analysis.Claims.Unbounded ->
            Skip (* nothing finite to hold the measurement against *)
          | Analysis.Claims.Rmr cold, Analysis.Claims.Rmr steady ->
            let refills = am.Analysis.Amortized.refills in
            let layout = e.Analysis.Registry.layout in
            let ways = max 1 (Var.layout_size layout) in
            let spec =
              { Workload.Driver.default_spec with
                Workload.Driver.seed = case.seed + (31 * case.index);
                waiters = List.length poll_call.Analysis.Registry.pids;
                polls_per_waiter = max 1 repeats;
                signals = 4;
                signal_every = 8;
                arrivals = Workload.Arrivals.Poisson 1.0;
                fuel = 200_000 }
            in
            let inst =
              { Workload.Driver.w_name = entry;
                w_poll = poll_call.Analysis.Registry.program;
                w_signal = signal_call.Analysis.Registry.program }
            in
            let problems = ref [] in
            let checks = ref 0 in
            let problem fmt =
              Fmt.kstr (fun s -> problems := s :: !problems) fmt
            in
            List.iter
              (fun protocol ->
                let model =
                  Flat_sim.Cc { protocol; interconnect = Cc.Bus; ways }
                in
                let r =
                  Workload.Driver.run ~ll_ways:ways ~model ~layout
                    ~n:e.Analysis.Registry.n inst spec
                in
                if not r.Workload.Driver.r_fuel_exhausted then begin
                  incr checks;
                  let bound =
                    cold
                    + (r.Workload.Driver.r_signals * steady)
                    + (r.Workload.Driver.r_polls * refills)
                  in
                  if r.Workload.Driver.r_signaler_rmrs > bound then
                    problem
                      "%s [%s]: signaler measured %d CC RMRs over %d \
                       signals and %d polls, above the proven amortized \
                       budget %d + %d*%d + %d*%dr = %d"
                      entry (Cc.protocol_name protocol)
                      r.Workload.Driver.r_signaler_rmrs
                      r.Workload.Driver.r_signals r.Workload.Driver.r_polls
                      cold r.Workload.Driver.r_signals steady
                      r.Workload.Driver.r_polls refills bound
                end)
              [ Cc.Write_through; Cc.Write_back; Cc.Write_update ];
            if !problems <> [] then
              Disagree (String.concat "; " (List.sort_uniq compare !problems))
            else if !checks = 0 then Skip
            else Agree !checks)
        | Some _ | None -> Skip)
      | _ -> Skip))

let cc_invariants (case : Case.t) =
  let rn = Case.elaborate case in
  let run tag = drive_sim ~lean:false ~tag rn case.schedule in
  let dsm = run `Dsm
  and wt = run `Cc_wt
  and wb = run `Cc_wb
  and lfcu = run `Cc_lfcu in
  let strip sim =
    List.map
      (fun (c : History.call) ->
        ( c.History.c_pid,
          c.History.c_label,
          c.History.c_seq,
          c.History.c_started,
          c.History.c_finished,
          c.History.c_result,
          c.History.c_steps ))
      (canon_calls (Sim.calls sim))
  in
  let memory sim =
    List.map
      (fun a -> Memory.get (Sim.memory sim) a)
      (Var.layout_addrs rn.Case.r_layout)
  in
  let base_calls = strip dsm and base_mem = memory dsm in
  let problems = ref [] in
  let problem fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (tag, sim) ->
      if Sim.clock sim <> Sim.clock dsm then
        problem "clock depends on the cost model (%s: %d, dsm: %d)"
          (tag_name tag) (Sim.clock sim) (Sim.clock dsm);
      if strip sim <> base_calls then
        problem
          "call responses/timestamps depend on the cost model (%s vs dsm)"
          (tag_name tag);
      if memory sim <> base_mem then
        problem "final memory depends on the cost model (%s vs dsm)"
          (tag_name tag))
    [ (`Cc_wt, wt); (`Cc_wb, wb); (`Cc_lfcu, lfcu) ];
  (* Cache monotonicity.  LFCU never invalidates, so its caches are
     supersets of write-through's at every step and it can only save
     RMRs — for every primitive mix.  Write-back enjoys the same
     superset argument only on read/write histories: a failed comparison
     primitive still acquires exclusive ownership under write-back
     (invalidating copies write-through leaves in place), so with
     CAS/LL/SC in play wb can legitimately out-bill wt — the fuzzer's
     own minimized counterexamples (e.g. seed 1 case 213: two failed
     CASes then an LL) are recorded in docs/MODEL.md. *)
  let rw_only =
    List.for_all
      (fun (s : History.step) ->
        match Op.kind s.History.inv with
        | Op.K_read | Op.K_write -> true
        | Op.K_cas | Op.K_ll | Op.K_sc | Op.K_faa | Op.K_fas | Op.K_tas ->
          false)
      (Sim.steps dsm)
  in
  if rw_only && Sim.total_rmrs wb > Sim.total_rmrs wt then
    problem
      "write-back billed more RMRs than write-through on a read/write-only \
       history (%d > %d)"
      (Sim.total_rmrs wb) (Sim.total_rmrs wt);
  if Sim.total_rmrs lfcu > Sim.total_rmrs wt then
    problem "LFCU billed more RMRs than write-through (%d > %d)"
      (Sim.total_rmrs lfcu) (Sim.total_rmrs wt);
  (* DSM billing is static: a step is an RMR iff the cell's home is not
     the stepping process's own memory module. *)
  List.iter
    (fun (s : History.step) ->
      let expected =
        match s.History.home with
        | Var.Module q -> q <> s.History.pid
        | Var.Shared -> true
      in
      if s.History.rmr <> expected then
        problem "dsm step rmr mis-billed at t=%d (pid %d, %s, home %a)"
          s.History.time s.History.pid
          (Op.show_invocation s.History.inv)
          Var.pp_home s.History.home)
    (Sim.steps dsm);
  if !problems = [] then Agree (7 + List.length base_calls)
  else Disagree (String.concat "; " (List.sort_uniq compare !problems))

let eval o case =
  match o with
  | Lean_vs_full -> lean_vs_full case
  | Sim_vs_flat -> sim_vs_flat case
  | Por_vs_nopor -> por_vs_nopor case
  | Claims_vs_measured -> claims_vs_measured case
  | Amortized_vs_measured -> amortized_vs_measured case
  | Cc_invariants -> cc_invariants case
