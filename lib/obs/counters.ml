(* Counter planes; see the .mli.

   Storage is marginal, not joint: a (pid × cell × class) cube at the flat
   engine's scale (n and size both up to 10^6) would need 10^12 slots, so
   the plane set keeps
     - by_cell : groups * size * classes   (cell attribution, per group)
     - by_pid  : n * classes               (pid attribution, exact)
     - by_pc   : groups * pc_slots * classes
     - msgs    : groups * size             (coherence messages per cell)
   which together answer every profile query the CLI renders (hot cells,
   per-pid tables, per-pc tables, message attribution) in O(planes) space.

   Hot-path discipline: a bump is index arithmetic plus an unsafe array
   write — no allocation, so the flat engine's zero-steady-state-allocation
   property (and the minor_words/step CI gate) survives with counters
   enabled. *)

type cls = Rmr | Local | Fetch | Invalidate | Update | Crash

let classes = [ Rmr; Local; Fetch; Invalidate; Update; Crash ]
let num_classes = 6

let cls_index = function
  | Rmr -> 0
  | Local -> 1
  | Fetch -> 2
  | Invalidate -> 3
  | Update -> 4
  | Crash -> 5

let cls_name = function
  | Rmr -> "rmr"
  | Local -> "local"
  | Fetch -> "fetch"
  | Invalidate -> "invalidate"
  | Update -> "update"
  | Crash -> "crash"

type t = {
  n : int;
  size : int;
  groups : int;
  pc_slots : int;
  group : int array; (* pid -> group *)
  by_cell : int array; (* (g * size + a) * classes + c *)
  by_pid : int array; (* p * classes + c *)
  by_pc : int array; (* (g * pc_slots + pc) * classes + c *)
  msgs : int array; (* g * size + a *)
}

let create ?(groups = 2) ?(pc_slots = 16) ~n ~size () =
  if n < 0 || size < 0 then invalid_arg "Counters.create: negative shape";
  if groups < 1 || pc_slots < 1 then
    invalid_arg "Counters.create: groups and pc_slots must be positive";
  { n;
    size;
    groups;
    pc_slots;
    group = Array.make (max 1 n) 0;
    by_cell = Array.make (groups * size * num_classes) 0;
    by_pid = Array.make (n * num_classes) 0;
    by_pc = Array.make (groups * pc_slots * num_classes) 0;
    msgs = Array.make (groups * size) 0 }

let n t = t.n
let size t = t.size
let groups t = t.groups
let pc_slots t = t.pc_slots

let set_group t ~pid ~group =
  if group < 0 || group >= t.groups then
    invalid_arg "Counters.set_group: group out of range";
  t.group.(pid) <- group

let group_of t ~pid = t.group.(pid)

(* --- hot path --- *)

let[@inline] bump t ~pid ~addr ~pc cls =
  let c = cls_index cls in
  let g = Array.unsafe_get t.group pid in
  let pc = if pc >= t.pc_slots then t.pc_slots - 1 else if pc < 0 then 0 else pc in
  let i_cell = (((g * t.size) + addr) * num_classes) + c in
  Array.unsafe_set t.by_cell i_cell (Array.unsafe_get t.by_cell i_cell + 1);
  let i_pid = (pid * num_classes) + c in
  Array.unsafe_set t.by_pid i_pid (Array.unsafe_get t.by_pid i_pid + 1);
  let i_pc = (((g * t.pc_slots) + pc) * num_classes) + c in
  Array.unsafe_set t.by_pc i_pc (Array.unsafe_get t.by_pc i_pc + 1)

let[@inline] bump_messages t ~pid ~addr by =
  let g = Array.unsafe_get t.group pid in
  let i = (g * t.size) + addr in
  Array.unsafe_set t.msgs i (Array.unsafe_get t.msgs i + by)

(* --- readout --- *)

let check_group t g =
  if g < 0 || g >= t.groups then invalid_arg "Counters: group out of range"

let check_addr t a =
  if a < 0 || a >= t.size then invalid_arg "Counters: addr out of range"

let cell_count t ~group ~addr cls =
  check_group t group;
  check_addr t addr;
  t.by_cell.((((group * t.size) + addr) * num_classes) + cls_index cls)

let pid_count t ~pid cls =
  if pid < 0 || pid >= t.n then invalid_arg "Counters: pid out of range";
  t.by_pid.((pid * num_classes) + cls_index cls)

let pc_count t ~group ~pc cls =
  check_group t group;
  if pc < 0 || pc >= t.pc_slots then invalid_arg "Counters: pc out of range";
  t.by_pc.((((group * t.pc_slots) + pc) * num_classes) + cls_index cls)

let messages_at t ~group ~addr =
  check_group t group;
  check_addr t addr;
  t.msgs.((group * t.size) + addr)

let cell_total t ~addr cls =
  let acc = ref 0 in
  for g = 0 to t.groups - 1 do
    acc := !acc + cell_count t ~group:g ~addr cls
  done;
  !acc

let messages_total_at t ~addr =
  let acc = ref 0 in
  for g = 0 to t.groups - 1 do
    acc := !acc + messages_at t ~group:g ~addr
  done;
  !acc

let total t cls =
  let c = cls_index cls in
  let acc = ref 0 in
  for p = 0 to t.n - 1 do
    acc := !acc + t.by_pid.((p * num_classes) + c)
  done;
  !acc

let total_messages t =
  Array.fold_left ( + ) 0 t.msgs

let reset t =
  Array.fill t.by_cell 0 (Array.length t.by_cell) 0;
  Array.fill t.by_pid 0 (Array.length t.by_pid) 0;
  Array.fill t.by_pc 0 (Array.length t.by_pc) 0;
  Array.fill t.msgs 0 (Array.length t.msgs) 0

let fold_into_metrics ?(model = "flat") t m =
  for p = 0 to t.n - 1 do
    let pid_label = Printf.sprintf "p%d" p in
    let rmr = pid_count t ~pid:p Rmr and local = pid_count t ~pid:p Local in
    if rmr > 0 then
      Metrics.incr m ~by:rmr "rmr_total"
        ~labels:[ ("model", model); ("pid", pid_label) ];
    if rmr + local > 0 then
      Metrics.incr m ~by:(rmr + local) "steps_total"
        ~labels:[ ("pid", pid_label) ]
  done;
  List.iter
    (fun cls ->
      match cls with
      | Fetch | Invalidate | Update ->
        let v = total t cls in
        if v > 0 then
          Metrics.incr m ~by:v "cache_events_total"
            ~labels:[ ("action", cls_name cls) ]
      | Rmr | Local | Crash -> ())
    classes;
  let msgs = total_messages t in
  if msgs > 0 then
    Metrics.incr m ~by:msgs "coherence_messages_total" ~labels:[];
  let crashes = total t Crash in
  if crashes > 0 then Metrics.incr m ~by:crashes "crashes_total" ~labels:[]
