(* Labeled counters and fixed-bucket histograms; see the .mli.

   The registry is a hash table keyed by (metric name, canonically sorted
   labels); rendering sorts rows, so output order is independent of
   insertion order.  Histograms expand Prometheus-style into _bucket
   (cumulative, with an +Inf bucket), _sum and _count rows. *)

type hist = {
  buckets : float array; (* ascending upper bounds; +Inf implicit *)
  counts : int array; (* length = Array.length buckets + 1 *)
  mutable sum : float;
  mutable count : int;
}

type cell = Counter of int ref | Hist of hist

type key = string * (string * string) list

type t = { tbl : (key, cell) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let canon labels = List.sort compare labels

let incr m ?(by = 1) name ~labels =
  let key = (name, canon labels) in
  match Hashtbl.find_opt m.tbl key with
  | Some (Counter r) -> r := !r + by
  | Some (Hist _) ->
    invalid_arg (Printf.sprintf "Metrics.incr %s: registered as a histogram" name)
  | None -> Hashtbl.add m.tbl key (Counter (ref by))

let default_buckets = [| 0.001; 0.01; 0.1; 1.; 10.; 60. |]

let observe m ?(buckets = default_buckets) name ~labels v =
  let key = (name, canon labels) in
  let h =
    match Hashtbl.find_opt m.tbl key with
    | Some (Hist h) -> h
    | Some (Counter _) ->
      invalid_arg
        (Printf.sprintf "Metrics.observe %s: registered as a counter" name)
    | None ->
      let h =
        { buckets = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.;
          count = 0 }
      in
      Hashtbl.add m.tbl key (Hist h);
      h
  in
  let rec slot i =
    if i >= Array.length h.buckets then i
    else if v <= h.buckets.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let time m ?buckets name ~labels f =
  let t0 = Clock.now_s () in
  let finally () = observe m ?buckets name ~labels (Clock.elapsed_s ~since:t0) in
  Fun.protect ~finally f

let is_timing name =
  String.ends_with ~suffix:"_seconds" name

(* --- rendering --- *)

type row = {
  metric : string;
  labels : (string * string) list;
  value : float;
  is_int : bool;
}

let bucket_label b =
  (* A short stable rendering: integral bounds without a trailing ".000". *)
  if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

let rows ?(timing = false) m =
  let expand ((name, labels), cell) =
    match cell with
    | Counter r ->
      [ { metric = name; labels; value = float_of_int !r; is_int = true } ]
    | Hist h ->
      let cumulative = ref 0 in
      let buckets =
        List.concat
          (List.init
             (Array.length h.counts)
             (fun i ->
               cumulative := !cumulative + h.counts.(i);
               let le =
                 if i < Array.length h.buckets then bucket_label h.buckets.(i)
                 else "+Inf"
               in
               [ { metric = name ^ "_bucket";
                   labels = canon (("le", le) :: labels);
                   value = float_of_int !cumulative;
                   is_int = true } ]))
      in
      buckets
      @ [ { metric = name ^ "_sum"; labels; value = h.sum; is_int = false };
          { metric = name ^ "_count";
            labels;
            value = float_of_int h.count;
            is_int = true } ]
  in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.tbl []
  |> List.filter (fun ((name, _), _) -> timing || not (is_timing name))
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  |> List.concat_map expand

let total m name =
  Hashtbl.fold
    (fun (n, _) cell acc ->
      if n <> name then acc
      else
        match cell with
        | Counter r -> acc +. float_of_int !r
        | Hist h -> acc +. h.sum)
    m.tbl 0.

let pp_labels ppf labels =
  match labels with
  | [] -> ()
  | labels ->
    Fmt.pf ppf "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels))

let render_labels labels = Fmt.str "%a" pp_labels labels
