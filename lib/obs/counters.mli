(** Preallocated counter planes for the flat-path engines.

    The persistent simulator attributes costs through the event stream
    ({!Trace}): every step allocates an {!Event.t}, which is fine at
    adversary/explorer scale and fatal at the flat engine's (millions of
    steps, k up to 10^6 processes).  A counter plane is the allocation-free
    alternative: dense [int array]s preallocated at creation, keyed by
    (group × cell-slot × event class), (pid × event class) and
    (group × program-counter slot × event class), bumped in O(1) on the hot
    path and read out — or folded into a {!Metrics} registry — after the
    run.

    {b Classes.}  Six event classes cover the flat engines' observable
    behavior: [Rmr] and [Local] partition executed steps by the billing
    verdict; [Fetch], [Invalidate] and [Update] count cache-coherence
    actions (a write-through round trip on a failed mutation is billed
    under [Fetch]); [Crash] counts calls cut down mid-flight.  Coherence
    {e messages} are accumulated separately per (group × cell), mirroring
    the message totals {!Trace} folds into [coherence_messages_total].

    {b Groups.}  A full (pid × cell) joint plane is quadratic — 10^12
    slots at k = 10^6 — so per-cell and per-pc attribution is kept per
    {e group}: a small caller-assigned partition of the pids (the workload
    profiler uses group 0 = signaler, group 1 = waiters).  Per-pid counts
    are kept exactly (linear in n).

    Everything here is deterministic: the planes are pure functions of the
    bump sequence, and readout order is the caller's. *)

type t

(** Event classes.  The constructor order is the storage order; {!classes}
    lists them in it. *)
type cls = Rmr | Local | Fetch | Invalidate | Update | Crash

val classes : cls list

val cls_name : cls -> string
(** ["rmr"], ["local"], ["fetch"], ["invalidate"], ["update"], ["crash"]. *)

val create : ?groups:int -> ?pc_slots:int -> n:int -> size:int -> unit -> t
(** A zeroed plane set for [n] processes over [size] cells.  [groups]
    (default 2) bounds the group ids {!set_group} may assign; [pc_slots]
    (default 16) bounds the per-call step index tracked by the pc plane —
    deeper steps land in the last slot.  Allocation happens here and never
    again. *)

val n : t -> int
val size : t -> int
val groups : t -> int
val pc_slots : t -> int

val set_group : t -> pid:int -> group:int -> unit
(** Assign [pid] to [group] (default 0).  Raises [Invalid_argument] on an
    out-of-range group.  Call before the run; bumps read the current
    assignment. *)

val group_of : t -> pid:int -> int

(** {1 Hot path}

    All bump operations are branch-plus-array-write: no allocation, no
    bounds surprises ([pc] is clamped into the slot range; [pid] and
    [addr] must be in range, as they are for every engine-issued bump). *)

val bump : t -> pid:int -> addr:int -> pc:int -> cls -> unit
(** Count one event of class [cls] by [pid] at cell [addr], at step index
    [pc] of the current call (clamped to [pc_slots - 1]). *)

val bump_messages : t -> pid:int -> addr:int -> int -> unit
(** Accumulate coherence messages against [pid]'s group at cell [addr]. *)

(** {1 Readout} *)

val cell_count : t -> group:int -> addr:int -> cls -> int
val pid_count : t -> pid:int -> cls -> int
val pc_count : t -> group:int -> pc:int -> cls -> int
val messages_at : t -> group:int -> addr:int -> int

val cell_total : t -> addr:int -> cls -> int
(** Sum of {!cell_count} over every group. *)

val messages_total_at : t -> addr:int -> int

val total : t -> cls -> int
(** Whole-run total of a class (summed over the pid plane). *)

val total_messages : t -> int

val reset : t -> unit
(** Zero every plane (group assignments survive). *)

val fold_into_metrics :
  ?model:string -> t -> Metrics.t -> unit
(** Post-run fold into a {!Metrics} registry, emitting the rows the
    tracing path already produces so existing sinks and reports work
    unchanged: [rmr_total{model,pid}] and [steps_total{pid}] per active
    pid, [cache_events_total{action}] per coherence class,
    [coherence_messages_total{}] and [crashes_total{}] as totals.  [model]
    (default ["flat"]) labels the rmr rows.  Only nonzero cells emit, so
    folding a k = 10^6 run stays proportional to the pids that actually
    stepped. *)
