(** The closed schema of trace events.

    Every event is keyed by the simulator's {e logical event clock} —
    never wall time — so a recorded stream is a pure function of the run's
    inputs and can be byte-compared across runs and [--jobs] levels.  All
    fields are primitives (int/string/bool): [Obs] sits below the
    simulator in the dependency order, and emitters translate their own
    vocabulary into it.

    The schema is deliberately closed: sinks ({!Sink_jsonl},
    {!Sink_chrome}, {!Sink_text}) and the metrics fold ({!Trace.emit})
    pattern-match exhaustively, so adding a constructor is a compile-time
    event for every consumer. *)

(** Where the accessed cell is homed in the DSM sense: one process's
    memory module, or a module remote to everyone (mirrors [Smr.Var.home]
    without depending on it). *)
type home = Module of int | Shared

val home_label : home -> string
(** ["p<i>"] or ["shared"] — the [addr_home] metric label. *)

type t =
  | Op_step of {
      t : int;  (** logical tick of the step *)
      pid : int;
      kind : string;  (** operation mnemonic: "read", "cas", ... *)
      addr : int;
      var : string;  (** the cell's declared debug name *)
      home : home;
      response : int;
      wrote : bool;  (** the operation was nontrivial in this execution *)
      rmr : bool;  (** under the run's primary cost model *)
      messages : int;
      model : string;  (** primary cost-model name, e.g. "dsm" *)
      call_seq : int;  (** ordinal of the enclosing call in its process *)
    }  (** One executed memory operation ([Smr.Memory.apply] + accounting). *)
  | Call_begin of { t : int; pid : int; label : string; seq : int }
  | Call_end of {
      t : int;
      pid : int;
      label : string;
      seq : int;
      result : int;
      rmrs : int;  (** RMRs charged to the call under the primary model *)
      steps : int;
    }
  | Call_crash of {
      t : int;
      pid : int;
      label : string;
      seq : int;
      rmrs : int;
      steps : int;
    }  (** A process crashed mid-call; the call is begun-but-unfinished. *)
  | Proc_exit of { t : int; pid : int; crashed : bool }
  | Cache of {
      t : int;
      pid : int;
      addr : int;
      action : string;
          (** "fetch" (read miss), "invalidate", "update", or "roundtrip"
              (a failed write-through mutation's global round trip) *)
      copies : int;  (** remote copies reached (0 for "fetch"/"roundtrip") *)
      messages : int;  (** interconnect messages the action generated *)
      protocol : string;  (** "cc-wt" / "cc-wb" / "cc-lfcu" *)
      interconnect : string;  (** "bus" / "dir" / "dir<k>" *)
    }  (** One cache-coherence action from {!Smr.Cc}. *)
  | Adversary of { t : int; decision : string; pid : int; detail : string }
      (** A Section 6 construction decision ("erase", "erase-blocked",
          "roll-forward", "round", "stabilized", "signaler",
          "chase-erase", "chase-blocked"); [pid] is the process acted on,
          [-1] for whole-round decisions. *)
  | Explore_task of {
      task : int;
      t0 : int;
      t1 : int;
          (** synthesized logical interval: cumulative visited-state
              counts, so spans nest deterministically on a shared axis *)
      states : int;
      dedup_hits : int;
      por_prunes : int;
      histories : int;
      truncated : int;
      max_depth : int;
    }  (** One subtree task of {!Smr.Explore.check}, in task order. *)
  | Runner_span of {
      t0 : int;
      t1 : int;  (** synthesized interval: cumulative emitted row counts *)
      experiment : string;
      tables : int;
      rows : int;
    }  (** One experiment executed by {!Core.Runner.run}, in spec order. *)

val category : t -> string
(** "op" | "call" | "proc" | "cache" | "adversary" | "explore" |
    "runner". *)

val tick : t -> int
(** The event's logical timestamp ([t0] for spans). *)
