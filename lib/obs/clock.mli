(** Monotonic wall clock (CLOCK_MONOTONIC via the bechamel stubs).

    Use this — never [Sys.time], which is process CPU time and misreports
    elapsed time for domain-parallel work — whenever a duration is
    measured.  Durations are inherently nondeterministic: keep them out of
    anything that is byte-compared across runs or [--jobs] levels (the
    {!Metrics} registry segregates them for exactly that reason). *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary (boot-time) epoch. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_s : since:float -> float
(** Seconds elapsed since a {!now_s} reading. *)
