(* Minimal JSON string emission shared by the JSONL and Chrome sinks.
   Hand-rolled for the same reason Core.Results hand-rolls its JSON: the
   dependency footprint stays tiny and the byte output stays under our
   control (fixed key order, no float surprises). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let bool b = if b then "true" else "false"

(* Fields are (key, already-rendered value) pairs, emitted in list order. *)
let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"
