(* Chrome trace_event sink (the JSON loaded by chrome://tracing and
   Perfetto).  Logical simulator ticks are reported as microseconds, so
   the viewer's time axis *is* the event clock — wall time never appears
   and the file is byte-identical across hosts and [--jobs].

   Track layout (chrome "pid" = track group, "tid" = lane):
     pid 0 "machine"    tid = simulator pid (op slices, call B/E, instants)
     pid 1 "adversary"  tid 0 (decision instants)
     pid 2 "explore"    tid = task index (task spans)
     pid 3 "runner"     tid 0 (experiment spans)
     pid 4 "cells"      tid = cell address (coherence-traffic instants)
   Metadata (ph "M") names only the tracks that actually appear. *)

let pid_machine = 0
let pid_adversary = 1
let pid_explore = 2
let pid_runner = 3
let pid_cells = 4

let i = string_of_int

let meta ~pid ~tid ~kind ~name =
  Json_lite.obj
    [ ("ph", Json_lite.str "M"); ("pid", i pid); ("tid", i tid);
      ("name", Json_lite.str kind);
      ("args", Json_lite.obj [ ("name", Json_lite.str name) ]) ]

(* One trace_event object.  [args] fields are pre-rendered values. *)
let ev_obj ~name ~cat ~ph ~pid ~tid ~ts ?dur ?(args = []) () =
  let open Json_lite in
  let fields =
    [ ("name", str name); ("cat", str cat); ("ph", str ph); ("pid", i pid);
      ("tid", i tid); ("ts", i ts) ]
  in
  let fields =
    match dur with None -> fields | Some d -> fields @ [ ("dur", i d) ]
  in
  let fields = match args with [] -> fields | a -> fields @ [ ("args", obj a) ] in
  obj fields

let span_dur ~t0 ~t1 = max 1 (t1 - t0)

(* Each event renders to one or more trace_event objects, already joined
   by commas (a crash closes its open call slice *and* drops a marker). *)
let objects (ev : Event.t) =
  let open Json_lite in
  match ev with
  | Event.Op_step e ->
    [ ev_obj
        ~name:(e.kind ^ " " ^ e.var)
        ~cat:"op" ~ph:"X" ~pid:pid_machine ~tid:e.pid ~ts:e.t ~dur:1
        ~args:
          [ ("addr", i e.addr); ("home", str (Event.home_label e.home));
            ("response", i e.response); ("wrote", bool e.wrote);
            ("rmr", bool e.rmr); ("messages", i e.messages);
            ("model", str e.model) ]
        () ]
  | Event.Call_begin e ->
    [ ev_obj ~name:e.label ~cat:"call" ~ph:"B" ~pid:pid_machine ~tid:e.pid
        ~ts:e.t
        ~args:[ ("seq", i e.seq) ]
        () ]
  | Event.Call_end e ->
    [ ev_obj ~name:e.label ~cat:"call" ~ph:"E" ~pid:pid_machine ~tid:e.pid
        ~ts:e.t
        ~args:[ ("result", i e.result); ("rmrs", i e.rmrs); ("steps", i e.steps) ]
        () ]
  | Event.Call_crash e ->
    (* Close the open call slice, then mark the crash point. *)
    [ ev_obj ~name:e.label ~cat:"call" ~ph:"E" ~pid:pid_machine ~tid:e.pid
        ~ts:e.t
        ~args:[ ("crashed", bool true); ("rmrs", i e.rmrs); ("steps", i e.steps) ]
        ();
      ev_obj ~name:("crash " ^ e.label) ~cat:"call" ~ph:"i" ~pid:pid_machine
        ~tid:e.pid ~ts:e.t () ]
  | Event.Proc_exit e ->
    [ ev_obj
        ~name:(if e.crashed then "exit (crashed)" else "exit")
        ~cat:"proc" ~ph:"i" ~pid:pid_machine ~tid:e.pid ~ts:e.t () ]
  | Event.Cache e ->
    [ ev_obj ~name:e.action ~cat:"cache" ~ph:"i" ~pid:pid_machine ~tid:e.pid
        ~ts:e.t
        ~args:
          [ ("addr", i e.addr); ("copies", i e.copies);
            ("messages", i e.messages); ("protocol", str e.protocol);
            ("interconnect", str e.interconnect) ]
        () ]
  | Event.Adversary e ->
    [ ev_obj ~name:e.decision ~cat:"adversary" ~ph:"i" ~pid:pid_adversary
        ~tid:0 ~ts:e.t
        ~args:[ ("pid", i e.pid); ("detail", str e.detail) ]
        () ]
  | Event.Explore_task e ->
    [ ev_obj
        ~name:("task " ^ i e.task)
        ~cat:"explore" ~ph:"X" ~pid:pid_explore ~tid:e.task ~ts:e.t0
        ~dur:(span_dur ~t0:e.t0 ~t1:e.t1)
        ~args:
          [ ("states", i e.states); ("dedup_hits", i e.dedup_hits);
            ("por_prunes", i e.por_prunes); ("histories", i e.histories);
            ("truncated", i e.truncated); ("max_depth", i e.max_depth) ]
        () ]
  | Event.Runner_span e ->
    [ ev_obj ~name:e.experiment ~cat:"runner" ~ph:"X" ~pid:pid_runner ~tid:0
        ~ts:e.t0
        ~dur:(span_dur ~t0:e.t0 ~t1:e.t1)
        ~args:[ ("tables", i e.tables); ("rows", i e.rows) ]
        () ]

let render ev = String.concat "," (objects ev)

module Iset = Set.Make (Int)

(* Name only the tracks that appear, in sorted lane order. *)
let metadata events =
  let machine, explore, adversary, runner =
    List.fold_left
      (fun (m, x, a, r) (ev : Event.t) ->
        match ev with
        | Event.Op_step e -> (Iset.add e.pid m, x, a, r)
        | Event.Call_begin e -> (Iset.add e.pid m, x, a, r)
        | Event.Call_end e -> (Iset.add e.pid m, x, a, r)
        | Event.Call_crash e -> (Iset.add e.pid m, x, a, r)
        | Event.Proc_exit e -> (Iset.add e.pid m, x, a, r)
        | Event.Cache e -> (Iset.add e.pid m, x, a, r)
        | Event.Adversary _ -> (m, x, true, r)
        | Event.Explore_task e -> (m, Iset.add e.task x, a, r)
        | Event.Runner_span _ -> (m, x, a, true))
      (Iset.empty, Iset.empty, false, false)
      events
  in
  let machine_meta =
    if Iset.is_empty machine then []
    else
      meta ~pid:pid_machine ~tid:0 ~kind:"process_name" ~name:"machine"
      :: List.map
           (fun p ->
             meta ~pid:pid_machine ~tid:p ~kind:"thread_name"
               ~name:(Printf.sprintf "p%d" p))
           (Iset.elements machine)
  in
  let adversary_meta =
    if adversary then
      [ meta ~pid:pid_adversary ~tid:0 ~kind:"process_name" ~name:"adversary" ]
    else []
  in
  let explore_meta =
    if Iset.is_empty explore then []
    else
      meta ~pid:pid_explore ~tid:0 ~kind:"process_name" ~name:"explore"
      :: List.map
           (fun k ->
             meta ~pid:pid_explore ~tid:k ~kind:"thread_name"
               ~name:(Printf.sprintf "task %d" k))
           (Iset.elements explore)
  in
  let runner_meta =
    if runner then
      [ meta ~pid:pid_runner ~tid:0 ~kind:"process_name" ~name:"runner" ]
    else []
  in
  machine_meta @ adversary_meta @ explore_meta @ runner_meta

let to_string ?(map = List.map) events =
  let head = metadata events in
  let body = List.filter (fun s -> s <> "") (map render events) in
  "{\"traceEvents\":[" ^ String.concat "," (head @ body) ^ "]}\n"

(* --- the cells track group ---

   The flat engines have no {!Event.t} stream (that is the point of the
   counter planes), but the profiler can still export their coherence
   traffic: [Flat_sim]'s [on_cache] hook carries (tick, pid, addr, action,
   messages) tuples, which render here as one instant per transaction on a
   lane per *cell* — the transposed view of the machine track group,
   built for eyeballing cc-flag's single hot cell against dsm-broadcast's
   smear. *)

type cell_event = {
  ce_t : int;
  ce_pid : int;
  ce_addr : int;
  ce_action : string;
  ce_messages : int;
}

let render_cell (e : cell_event) =
  ev_obj ~name:e.ce_action ~cat:"cell" ~ph:"i" ~pid:pid_cells ~tid:e.ce_addr
    ~ts:e.ce_t
    ~args:[ ("pid", i e.ce_pid); ("messages", i e.ce_messages) ]
    ()

let cells_to_string ?(cell_name = Printf.sprintf "cell %d") events =
  let addrs =
    List.fold_left (fun s e -> Iset.add e.ce_addr s) Iset.empty events
  in
  let head =
    if Iset.is_empty addrs then []
    else
      meta ~pid:pid_cells ~tid:0 ~kind:"process_name" ~name:"cells"
      :: List.map
           (fun a ->
             meta ~pid:pid_cells ~tid:a ~kind:"thread_name" ~name:(cell_name a))
           (Iset.elements addrs)
  in
  let body = List.map render_cell events in
  "{\"traceEvents\":[" ^ String.concat "," (head @ body) ^ "]}\n"
