(* Monotonic wall clock.

   [Sys.time] is process CPU time: under a domain-parallel search it counts
   every domain's work and so *over*-reports elapsed time (or under-reports
   it while workers block), which is exactly the bug this module exists to
   fix.  [Unix.gettimeofday] is wall time but jumps under NTP adjustment.
   The bechamel stubs read CLOCK_MONOTONIC, which is both. *)

let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed_s ~since = now_s () -. since
