(** Text sink: one deterministic human-readable line per event,
    generalizing the vocabulary of [Smr.Timeline] to the full event
    schema (calls, cache traffic, adversary decisions, spans). *)

val line : Event.t -> string
(** One event, no trailing newline. *)

val to_string :
  ?map:((Event.t -> string) -> Event.t list -> string list) ->
  Event.t list ->
  string
(** Newline-terminated lines.  [map] (default [List.map]) may be an
    order-preserving parallel map. *)
