(* The closed trace-event schema; see the .mli.

   Every field is a primitive (int/string/bool) so that this module sits
   below the simulator: [Smr] and [Core] depend on [Obs], never the other
   way round.  Emitters translate their own vocabulary (Op.kind, Var.home,
   cost-model names) into the strings recorded here. *)

type home = Module of int | Shared

let home_label = function
  | Module p -> Printf.sprintf "p%d" p
  | Shared -> "shared"

type t =
  | Op_step of {
      t : int;
      pid : int;
      kind : string;
      addr : int;
      var : string;
      home : home;
      response : int;
      wrote : bool;
      rmr : bool;
      messages : int;
      model : string;
      call_seq : int;
    }
  | Call_begin of { t : int; pid : int; label : string; seq : int }
  | Call_end of {
      t : int;
      pid : int;
      label : string;
      seq : int;
      result : int;
      rmrs : int;
      steps : int;
    }
  | Call_crash of {
      t : int;
      pid : int;
      label : string;
      seq : int;
      rmrs : int;
      steps : int;
    }
  | Proc_exit of { t : int; pid : int; crashed : bool }
  | Cache of {
      t : int;
      pid : int;
      addr : int;
      action : string;
      copies : int;
      messages : int;
      protocol : string;
      interconnect : string;
    }
  | Adversary of { t : int; decision : string; pid : int; detail : string }
  | Explore_task of {
      task : int;
      t0 : int;
      t1 : int;
      states : int;
      dedup_hits : int;
      por_prunes : int;
      histories : int;
      truncated : int;
      max_depth : int;
    }
  | Runner_span of {
      t0 : int;
      t1 : int;
      experiment : string;
      tables : int;
      rows : int;
    }

let category = function
  | Op_step _ -> "op"
  | Call_begin _ | Call_end _ | Call_crash _ -> "call"
  | Proc_exit _ -> "proc"
  | Cache _ -> "cache"
  | Adversary _ -> "adversary"
  | Explore_task _ -> "explore"
  | Runner_span _ -> "runner"

let tick = function
  | Op_step e -> e.t
  | Call_begin e -> e.t
  | Call_end e -> e.t
  | Call_crash e -> e.t
  | Proc_exit e -> e.t
  | Cache e -> e.t
  | Adversary e -> e.t
  | Explore_task e -> e.t0
  | Runner_span e -> e.t0
