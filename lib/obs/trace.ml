(* The append-only event sink; see the .mli.

   Emission is O(1) (a cons) and every emit also folds the event into the
   embedded metrics registry, so metrics are always consistent with the
   stream and never need a second pass.  The [armed] latch exists for
   emitters that are invoked from *inside* a simulator step (the cache
   model's accounting closures): the simulator arms the trace around the
   accounting call of a genuinely traced step, and replays — which re-run
   the same closures to reconstruct an erased history — never arm, so they
   cannot duplicate events. *)

type t = {
  mutable events_rev : Event.t list;
  mutable length : int;
  mutable tick : int;
  mutable armed : bool;
  metrics : Metrics.t;
}

let create () =
  { events_rev = []; length = 0; tick = 0; armed = false;
    metrics = Metrics.create () }

let pid_label p = Printf.sprintf "p%d" p

let rmr_buckets = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64. |]

let fold_metrics m (ev : Event.t) =
  match ev with
  | Event.Op_step e ->
    Metrics.incr m "steps_total" ~labels:[ ("pid", pid_label e.pid) ];
    if e.rmr then
      Metrics.incr m "rmr_total"
        ~labels:
          [ ("model", e.model); ("pid", pid_label e.pid);
            ("addr_home", Event.home_label e.home) ];
    if e.messages > 0 then
      Metrics.incr m ~by:e.messages "messages_total"
        ~labels:[ ("model", e.model) ]
  | Event.Call_begin _ -> ()
  | Event.Call_end e ->
    Metrics.incr m "calls_total"
      ~labels:[ ("label", e.label); ("pid", pid_label e.pid) ];
    Metrics.observe m ~buckets:rmr_buckets "call_rmrs"
      ~labels:[ ("label", e.label) ]
      (float_of_int e.rmrs)
  | Event.Call_crash e ->
    Metrics.incr m "crashes_total" ~labels:[ ("label", e.label) ]
  | Event.Proc_exit _ -> ()
  | Event.Cache e ->
    if e.messages > 0 then
      Metrics.incr m ~by:e.messages "coherence_messages_total"
        ~labels:[ ("interconnect", e.interconnect); ("action", e.action) ];
    Metrics.incr m "cache_events_total"
      ~labels:[ ("protocol", e.protocol); ("action", e.action) ]
  | Event.Adversary e ->
    Metrics.incr m "adversary_decisions_total"
      ~labels:[ ("decision", e.decision) ]
  | Event.Explore_task e ->
    Metrics.incr m ~by:e.states "explore_states_total"
      ~labels:[ ("task", string_of_int e.task) ];
    Metrics.incr m ~by:e.histories "explore_histories_total"
      ~labels:[ ("task", string_of_int e.task) ]
  | Event.Runner_span e ->
    Metrics.incr m ~by:e.rows "runner_rows_total"
      ~labels:[ ("experiment", e.experiment) ]

let emit t ev =
  t.events_rev <- ev :: t.events_rev;
  t.length <- t.length + 1;
  fold_metrics t.metrics ev

let events t = List.rev t.events_rev

let length t = t.length

let metrics t = t.metrics

let arm t ~now =
  t.tick <- now;
  t.armed <- true

let disarm t = t.armed <- false

let now t = t.tick

let emit_if_armed t ev = if t.armed then emit t ev
