(** Chrome [trace_event] sink — the JSON format loaded by
    [chrome://tracing] and Perfetto.

    Logical simulator ticks are written as microseconds so the viewer's
    time axis is the event clock; wall time never appears, keeping the
    file byte-identical across hosts and [--jobs].  Tracks: chrome
    process 0 is the simulated machine with one thread lane per
    simulator pid; processes 1–3 carry adversary decisions, explorer
    task spans, and runner experiment spans. *)

val render : Event.t -> string
(** One event as its trace_event object(s), comma-joined (a crash emits
    a slice-closing "E" plus an instant marker). *)

val to_string :
  ?map:((Event.t -> string) -> Event.t list -> string list) ->
  Event.t list ->
  string
(** The complete [{"traceEvents":[...]}] document, including
    process/thread-name metadata for every track that appears.  [map]
    (default [List.map]) may be an order-preserving parallel map. *)
