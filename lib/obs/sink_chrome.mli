(** Chrome [trace_event] sink — the JSON format loaded by
    [chrome://tracing] and Perfetto.

    Logical simulator ticks are written as microseconds so the viewer's
    time axis is the event clock; wall time never appears, keeping the
    file byte-identical across hosts and [--jobs].  Tracks: chrome
    process 0 is the simulated machine with one thread lane per
    simulator pid; processes 1–3 carry adversary decisions, explorer
    task spans, and runner experiment spans. *)

val render : Event.t -> string
(** One event as its trace_event object(s), comma-joined (a crash emits
    a slice-closing "E" plus an instant marker). *)

val to_string :
  ?map:((Event.t -> string) -> Event.t list -> string list) ->
  Event.t list ->
  string
(** The complete [{"traceEvents":[...]}] document, including
    process/thread-name metadata for every track that appears.  [map]
    (default [List.map]) may be an order-preserving parallel map. *)

(** {1 The cells track group}

    The flat engines emit no {!Event.t} stream; their coherence traffic
    is exported through {!Smr.Flat_sim}'s [on_cache] hook as plain
    tuples, rendered on chrome process 4 with one thread lane per {e
    cell} — the transposed view of the machine tracks, built for
    eyeballing cc-flag's single hot cell against dsm-broadcast's
    smear. *)

type cell_event = {
  ce_t : int;  (** logical tick *)
  ce_pid : int;  (** acting simulator pid *)
  ce_addr : int;  (** the cell — becomes the lane *)
  ce_action : string;  (** "fetch" / "invalidate" / "update" / "roundtrip" *)
  ce_messages : int;
}

val cells_to_string :
  ?cell_name:(int -> string) -> cell_event list -> string
(** A complete trace document of coherence-traffic instants, one lane per
    appearing cell, named by [cell_name] (default ["cell <addr>"] — pass
    the layout's variable names for readable lanes).  Deterministic in
    the event list. *)
