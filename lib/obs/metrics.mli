(** Labeled counters and fixed-bucket histograms.

    A registry accumulates counters ([rmr_total{model,pid,addr_home}],
    [coherence_messages_total{interconnect,action}], ...) and histograms
    with fixed bucket bounds.  Rendering ({!rows}) sorts by (metric,
    labels), so the output is deterministic regardless of update order,
    and expands histograms Prometheus-style into [_bucket] (cumulative,
    with an implicit [+Inf] bucket), [_sum] and [_count] rows.

    {b Timing metrics.}  Metrics whose base name ends in ["_seconds"]
    record wall-clock durations — inherently nondeterministic — and are
    excluded from {!rows} unless [~timing:true] is passed, so a rendered
    metrics table stays byte-identical across runs and [--jobs] levels. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> labels:(string * string) list -> unit
(** Add [by] (default 1) to the counter [(name, labels)]; labels are
    canonically sorted, so label order never matters.  Raises
    [Invalid_argument] if the cell is already a histogram. *)

val default_buckets : float array
(** Upper bounds for durations in seconds:
    [[| 0.001; 0.01; 0.1; 1.; 10.; 60. |]]. *)

val observe :
  t -> ?buckets:float array -> string -> labels:(string * string) list ->
  float -> unit
(** Record one observation; [buckets] (ascending upper bounds) takes
    effect when the histogram cell is first created. *)

val time :
  t -> ?buckets:float array -> string -> labels:(string * string) list ->
  (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its monotonic wall-clock duration —
    recorded even if the thunk raises. *)

val is_timing : string -> bool
(** Whether a metric name denotes a wall-clock duration (ends in
    ["_seconds"]). *)

type row = {
  metric : string;
  labels : (string * string) list;
  value : float;
  is_int : bool;  (** render as an integer (counters and bucket counts) *)
}

val rows : ?timing:bool -> t -> row list
(** Every cell, expanded and sorted by (metric, labels).  [timing]
    (default [false]) includes the [*_seconds] metrics — leave it off for
    anything that is byte-compared. *)

val total : t -> string -> float
(** Sum of a counter over all label sets (histograms contribute their
    [_sum]).  [0.] if the metric was never touched. *)

val pp_labels : (string * string) list Fmt.t
val render_labels : (string * string) list -> string
(** [{k="v",k2="v2"}], or the empty string for no labels. *)
