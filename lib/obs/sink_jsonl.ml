(* JSONL sink: one event per line, fixed key order per event kind, so the
   stream is byte-stable and diffable (the golden fixture and the CI
   jobs-invariance check rely on this). *)

let i = string_of_int

let line (ev : Event.t) =
  let open Json_lite in
  match ev with
  | Event.Op_step e ->
    obj
      [ ("ev", str "op"); ("t", i e.t); ("pid", i e.pid);
        ("kind", str e.kind); ("addr", i e.addr); ("var", str e.var);
        ("home", str (Event.home_label e.home)); ("response", i e.response);
        ("wrote", bool e.wrote); ("rmr", bool e.rmr);
        ("messages", i e.messages); ("model", str e.model);
        ("call_seq", i e.call_seq) ]
  | Event.Call_begin e ->
    obj
      [ ("ev", str "call-begin"); ("t", i e.t); ("pid", i e.pid);
        ("label", str e.label); ("seq", i e.seq) ]
  | Event.Call_end e ->
    obj
      [ ("ev", str "call-end"); ("t", i e.t); ("pid", i e.pid);
        ("label", str e.label); ("seq", i e.seq); ("result", i e.result);
        ("rmrs", i e.rmrs); ("steps", i e.steps) ]
  | Event.Call_crash e ->
    obj
      [ ("ev", str "call-crash"); ("t", i e.t); ("pid", i e.pid);
        ("label", str e.label); ("seq", i e.seq); ("rmrs", i e.rmrs);
        ("steps", i e.steps) ]
  | Event.Proc_exit e ->
    obj
      [ ("ev", str "proc-exit"); ("t", i e.t); ("pid", i e.pid);
        ("crashed", bool e.crashed) ]
  | Event.Cache e ->
    obj
      [ ("ev", str "cache"); ("t", i e.t); ("pid", i e.pid);
        ("addr", i e.addr); ("action", str e.action); ("copies", i e.copies);
        ("messages", i e.messages); ("protocol", str e.protocol);
        ("interconnect", str e.interconnect) ]
  | Event.Adversary e ->
    obj
      [ ("ev", str "adversary"); ("t", i e.t); ("decision", str e.decision);
        ("pid", i e.pid); ("detail", str e.detail) ]
  | Event.Explore_task e ->
    obj
      [ ("ev", str "explore-task"); ("task", i e.task); ("t0", i e.t0);
        ("t1", i e.t1); ("states", i e.states);
        ("dedup_hits", i e.dedup_hits); ("por_prunes", i e.por_prunes);
        ("histories", i e.histories); ("truncated", i e.truncated);
        ("max_depth", i e.max_depth) ]
  | Event.Runner_span e ->
    obj
      [ ("ev", str "runner-span"); ("t0", i e.t0); ("t1", i e.t1);
        ("experiment", str e.experiment); ("tables", i e.tables);
        ("rows", i e.rows) ]

let to_string ?(map = List.map) events =
  String.concat "" (map (fun ev -> line ev ^ "\n") events)
