(** JSONL sink: one JSON object per line, one line per event, fixed key
    order — byte-stable, greppable, and `jq`-friendly. *)

val line : Event.t -> string
(** One event as a single JSON line (no trailing newline). *)

val to_string :
  ?map:((Event.t -> string) -> Event.t list -> string list) ->
  Event.t list ->
  string
(** The whole stream, newline-terminated lines.  [map] (default
    [List.map]) renders lines and may be an order-preserving parallel map
    — rendering is per-event pure, so any such map yields identical
    bytes. *)
