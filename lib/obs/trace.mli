(** The append-only trace sink.

    A trace buffers {!Event.t}s in emission order and folds every event
    into an embedded {!Metrics.t} registry as it arrives, so the metrics
    are always consistent with the stream.  Emission is O(1); the
    instrumented hot paths hold an [t option] and skip everything on
    [None], which is the zero-cost-when-disabled guarantee.

    Events are keyed by the simulator's logical clock, so a trace of a
    deterministic run is itself deterministic — sinks render it
    byte-identically regardless of [--jobs] or host speed.

    Derived metrics (per emitted event):
    - [steps_total{pid}], [rmr_total{model,pid,addr_home}],
      [messages_total{model}] from op steps;
    - [calls_total{label,pid}], the [call_rmrs{label}] histogram and
      [crashes_total{label}] from call endpoints;
    - [coherence_messages_total{interconnect,action}] and
      [cache_events_total{protocol,action}] from cache events;
    - [adversary_decisions_total{decision}];
    - [explore_states_total{task}], [explore_histories_total{task}];
    - [runner_rows_total{experiment}]. *)

type t

val create : unit -> t

val emit : t -> Event.t -> unit
(** Append one event and fold it into the metrics registry. *)

val events : t -> Event.t list
(** In emission order. *)

val length : t -> int

val metrics : t -> Metrics.t

(** {1 The armed latch}

    For emitters invoked from {e inside} a simulator step — the cache
    model's accounting closures, which have no access to the clock and
    cannot tell a live step from a replayed one.  The simulator {!arm}s
    the trace (publishing the current tick) around the accounting call of
    a traced step and {!disarm}s it after; replays never arm, so re-run
    closures cannot duplicate events. *)

val arm : t -> now:int -> unit
val disarm : t -> unit

val now : t -> int
(** The tick published by the latest {!arm}. *)

val emit_if_armed : t -> Event.t -> unit
(** {!emit}, but only between an {!arm} and the next {!disarm}. *)
