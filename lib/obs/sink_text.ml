(* Human-oriented text sink: one deterministic line per event, in the
   vocabulary of Smr.Timeline but covering the whole event schema
   (timeline draws only op cells; this also shows calls, cache traffic,
   adversary decisions, and explorer/runner spans). *)

let tick t = Printf.sprintf "t=%04d" t

let line (ev : Event.t) =
  match ev with
  | Event.Op_step e ->
    Printf.sprintf "%s p%d op    %-5s %s@%s -> %d%s%s (%s)" (tick e.t) e.pid
      e.kind e.var
      (Event.home_label e.home)
      e.response
      (if e.rmr then " [rmr]" else "")
      (if e.messages > 0 then Printf.sprintf " msgs=%d" e.messages else "")
      e.model
  | Event.Call_begin e ->
    Printf.sprintf "%s p%d call+ %s#%d" (tick e.t) e.pid e.label e.seq
  | Event.Call_end e ->
    Printf.sprintf "%s p%d call- %s#%d = %d (rmrs=%d, steps=%d)" (tick e.t)
      e.pid e.label e.seq e.result e.rmrs e.steps
  | Event.Call_crash e ->
    Printf.sprintf "%s p%d crash %s#%d (rmrs=%d, steps=%d)" (tick e.t) e.pid
      e.label e.seq e.rmrs e.steps
  | Event.Proc_exit e ->
    Printf.sprintf "%s p%d exit %s" (tick e.t) e.pid
      (if e.crashed then "(crashed)" else "(done)")
  | Event.Cache e ->
    Printf.sprintf "%s p%d cache %-10s a%d copies=%d msgs=%d (%s/%s)"
      (tick e.t) e.pid e.action e.addr e.copies e.messages e.protocol
      e.interconnect
  | Event.Adversary e ->
    let who = if e.pid < 0 then "" else Printf.sprintf " p%d" e.pid in
    let detail = if e.detail = "" then "" else " " ^ e.detail in
    Printf.sprintf "%s adversary %s%s%s" (tick e.t) e.decision who detail
  | Event.Explore_task e ->
    Printf.sprintf
      "explore task %d: t=[%d,%d] states=%d dedup=%d por=%d histories=%d \
       truncated=%d depth=%d"
      e.task e.t0 e.t1 e.states e.dedup_hits e.por_prunes e.histories
      e.truncated e.max_depth
  | Event.Runner_span e ->
    Printf.sprintf "runner %s: t=[%d,%d] tables=%d rows=%d" e.experiment e.t0
      e.t1 e.tables e.rows

let to_string ?(map = List.map) events =
  String.concat "" (map (fun ev -> line ev ^ "\n") events)
