(** Flat-state simulation engine: the mutable struct-of-arrays counterpart
    of {!Sim} for heavy-traffic workloads.

    Same machine semantics — operation responses, RMR/message billing, call
    timestamps — but state lives in dense arrays indexed by address and by
    process, so one step is O(1) work with no engine allocation and the
    machine instantiates at n = 10^6 processes.  No history, no snapshots,
    no replay: {!Sim} remains the oracle for the adversary, the explorer
    and the differential tests. *)

type complete_cb =
  pid:Op.pid ->
  label:string ->
  seq:int ->
  started:int ->
  finished:int ->
  crashed:bool ->
  result:Op.value ->
  rmrs:int ->
  steps:int ->
  unit
(** Called at every call end.  [crashed = true] marks a call interrupted by
    {!crash} ([result] is then meaningless and [finished] is the crash
    tick); otherwise the call completed with [result] at tick [finished].
    All arguments are immediate, so a callback invocation allocates
    nothing. *)

type cache_cb =
  t:int -> pid:Op.pid -> addr:Op.addr -> action:string -> messages:int -> unit
(** Called on every coherence transaction under a [Cc] model: [action] is
    ["fetch"], ["invalidate"], ["update"] or ["roundtrip"] (constant
    strings), [messages] the wire messages the transaction moved, [t] the
    logical tick.  Mirrors the [Cache] events the traced {!Cc} model
    emits, without the event allocation; arguments are immediate. *)

type model_spec =
  | Dsm  (** static home-based billing, as {!Cost_model.dsm} *)
  | Cc of { protocol : Cc.protocol; interconnect : Cc.interconnect; ways : int }
      (** cache-coherent billing, as {!Cc.model}.  [ways] bounds each
          process's cache lines (LRU); results match {!Cc}'s ideal
          unbounded cache whenever every process's live footprint fits in
          [ways] lines, and match [Cc] with [capacity = Some ways]
          otherwise. *)

val model_spec_name : model_spec -> string

type t

val create :
  ?on_complete:complete_cb ->
  ?counters:Obs.Counters.t ->
  ?on_cache:cache_cb ->
  ?ll_ways:int ->
  model:model_spec ->
  layout:Var.layout ->
  n:int ->
  unit ->
  t
(** [ll_ways] (default 4) bounds the concurrent load-links a process may
    hold; exceeding it raises (no catalog algorithm holds more than one).

    [counters], when given, receives a bump per executed step ([Rmr] or
    [Local], at the step's within-call pc), per coherence action ([Fetch] /
    [Invalidate] / [Update], plus the transaction's messages) and per
    mid-call crash — allocation-free, so arming counters preserves the
    engine's zero-steady-state-allocation property.  The planes must cover
    the machine ([Obs.Counters.n] ≥ [n], [Obs.Counters.size] ≥ the layout
    size); raises [Invalid_argument] otherwise.  [on_cache], when given,
    streams the same coherence transactions as calls (for trace export);
    neither hook fires under [Dsm], which has no coherence traffic. *)

val n : t -> int
val layout : t -> Var.layout
val clock : t -> int
val model_name : t -> string

val counters : t -> Obs.Counters.t option
(** The counter planes this machine bumps, if any. *)

val is_idle : t -> Op.pid -> bool
val is_running : t -> Op.pid -> bool
val is_terminated : t -> Op.pid -> bool

val begin_call : t -> Op.pid -> label:string -> Op.value Program.t -> unit
(** Start a call; a zero-step program completes immediately (the
    [on_complete] callback fires before this returns). *)

val advance : t -> Op.pid -> unit
(** Execute the process's next operation; fires [on_complete] if the call
    finishes. *)

val skip_to : t -> int -> unit
(** Advance the clock to [time] (no-op if already past): idle gaps in an
    open-system workload, where no process has a step to take before the
    next scheduled arrival. *)

val terminate : t -> Op.pid -> unit

val crash : t -> Op.pid -> unit
(** Stop the process, mid-call allowed: the interrupted call is reported
    to [on_complete] with [crashed = true], and its step/RMR tallies are
    folded into the per-process totals, exactly as {!Sim.crash} does. *)

val run_call :
  ?fuel:int -> t -> Op.pid -> label:string -> Op.value Program.t -> Op.value
(** Begin and advance to completion; returns the call's result. *)

val rmrs : t -> Op.pid -> int
(** RMRs across the process's finished calls plus its in-flight call. *)

val step_count : t -> Op.pid -> int
val call_count : t -> Op.pid -> int
val completed_count : t -> Op.pid -> int

val last_result : t -> Op.pid -> Op.value option
(** Result of the latest finished call: [Some v] completed, [None] never
    called or crashed — the same view {!Sim.last_result} gives. *)

val total_rmrs : t -> int
val total_messages : t -> int
val total_steps : t -> int
val completed_calls : t -> int
val crashed_calls : t -> int

val value : t -> Op.addr -> Op.value
(** Current cell contents (the flat mirror of {!Memory.get}). *)

val ll_valid : t -> Op.pid -> Op.addr -> bool
(** Whether the process holds a valid load-link on the cell. *)

val bytes_per_process : t -> int
(** Resident engine state divided by [n]: the deterministic memory-footprint
    figure E14 reports. *)

(** {1 Snapshot and restore}

    Deep-copied machine images for randomized replay: the differential
    fuzzer rewinds a run to compare engines, and exploration on the flat
    engine needs the same primitive.  O(size + n) each — cheap because it
    is taken per run, not per step. *)

type snapshot

val snapshot : t -> snapshot
(** A deep copy of the machine's entire mutable state (memory, caches,
    link records, call state, counters, clock). *)

val restore : t -> snapshot -> unit
(** Overwrite the machine's state with the snapshot's.  The snapshot must
    come from a machine of the same shape (same [n], layout size, [ways]
    and [ll_ways]); raises [Invalid_argument] otherwise.  The
    [on_complete] callback is untouched, and so are any attached
    {!Obs.Counters} planes: counter planes are observational (a record of
    what executed, replays included), not machine state. *)
