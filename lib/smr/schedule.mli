(** Scheduling drivers for arbitrary interleavings (paper, Section 2).

    Each process is described by a {!behavior}: whenever the process is
    between calls, the behavior decides which procedure it calls next (or
    that it pauses or terminates).  The driver interleaves the processes
    under a {!policy}; random policies are seeded and reproducible. *)

(** Decision taken by an idle process. *)
type action =
  | Start of string * Op.value Program.t
  | Pause  (** stay idle for now; the driver may ask again later *)
  | Stop  (** terminate *)

type behavior = Sim.t -> Op.pid -> action

type policy =
  | Round_robin
  | Random_seed of int  (** uniformly random pokes from a seeded PRNG *)
  | Fixed of Op.pid list  (** poke processes in exactly this order *)
  | Semi_sync of { delta : int; seed : int }
      (** the semi-synchronous model (paper, Sec. 3): consecutive steps of
          the same mid-call process are at most [delta] scheduling ticks
          apart, otherwise random.  A process that executes [delta] local
          steps therefore knows that every other mid-call process has taken
          at least one step meanwhile — the premise of timing-based
          algorithms like Fischer's lock. *)
  | Pct of { seed : int; depth : int; horizon : int }
      (** probabilistic concurrency testing (Burckhardt et al.): every
          process gets a distinct random priority and the highest-priority
          runnable process always steps, except at [depth - 1] change
          points — scheduling-step indices drawn uniformly from
          [\[1, horizon\]] — where the currently-preferred process is
          demoted below everyone.  A bug of "depth" [d] (one needing [d]
          ordering constraints) is hit with probability at least
          [1 / (n * horizon^(d-1))] per seed, so sweeping seeds gives a
          guaranteed detection rate that a uniform random walk lacks. *)

val policy_name : policy -> string

val run :
  ?max_events:int ->
  policy:policy ->
  behavior:behavior ->
  pids:Op.pid list ->
  Sim.t ->
  Sim.t
(** Drive the machine until every process has terminated, every process
    pauses, or [max_events] scheduling decisions have been spent. *)

val script : (Op.pid * (string * Op.value Program.t) list) list -> behavior
(** A behavior that makes each process perform the listed calls in order and
    then stop.  Stateful: build a fresh script per run. *)
