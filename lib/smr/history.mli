(** Histories and the relations of Section 6.

    A history is the chronological list of executed {!step}s plus the
    procedure-call intervals ({!call}) that the problem specification
    constrains.  The module implements the paper's definitions: "sees"
    (Def. 6.4), "touches" (Def. 6.5) and regularity (Def. 6.6). *)

module Pid_set : Set.S with type elt = int
module Pid_map : Map.S with type key = int

type step = {
  time : int;  (** logical event-clock timestamp *)
  pid : Op.pid;
  inv : Op.invocation;
  response : Op.value;
  wrote : bool;  (** the operation was nontrivial *)
  read_from : Op.pid option;
      (** last writer whose value the operation observed *)
  home : Var.home;  (** DSM home of the accessed address *)
  rmr : bool;  (** RMR under the simulation's primary cost model *)
  messages : int;
  call_seq : int;  (** ordinal of the enclosing call within its process *)
}

type call = {
  c_pid : Op.pid;
  c_label : string;
  c_seq : int;
  c_started : int;
  c_finished : int option;
  c_result : Op.value option;
  c_rmrs : int;  (** RMRs charged to this call under the primary model *)
  c_steps : int;
}

val pp_step : step Fmt.t
val pp_call : call Fmt.t

val sees : step list -> p:Op.pid -> q:Op.pid -> bool
(** Definition 6.4: [p] reads a variable last written by [q]. *)

val touches : step list -> p:Op.pid -> q:Op.pid -> bool
(** Definition 6.5: [p] accesses a variable local to [q]. *)

val participants : step list -> Pid_set.t
(** Processes that take at least one step. *)

val all_sees : step list -> (Op.pid * Op.pid) list
(** Every (p, q) pair, p ≠ q, such that a step of [p] observed a value last
    written by [q]. *)

val all_touches : step list -> (Op.pid * Op.pid) list

val multi_writer_last : step list -> (Op.addr * Op.pid) list
(** Addresses overwritten by more than one process, with their last writer
    (condition 3 of Definition 6.6). *)

(** A violation of regularity, for diagnostics. *)
type irregularity =
  | Sees_active of Op.pid * Op.pid
  | Touches_active of Op.pid * Op.pid
  | Multi_writer_active of Op.addr * Op.pid

val pp_irregularity : irregularity Fmt.t

val irregularities : step list -> finished:(Op.pid -> bool) -> irregularity list

val is_regular : step list -> finished:(Op.pid -> bool) -> bool
(** Definition 6.6, with [finished] the finished-process predicate. *)

type tally = { t_steps : int; t_rmrs : int; t_messages : int }

val zero_tally : tally

val tally_by_pid : step list -> tally Pid_map.t

val total_rmrs : step list -> int

val total_messages : step list -> int

val reaccount : Cost_model.t -> step list -> step list
(** Re-classify every step under a fresh cost model; exact because models
    are pure folds that never influence execution. *)
