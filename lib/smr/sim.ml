(* The simulated multiprocessor.

   State is fully persistent: advancing the machine returns a new machine,
   so snapshots (needed by the stability check of Def. 6.8) are free, and
   branching explorations (the adversary's trial erasures) cost nothing.

   Every state-changing action is also appended to a replayable trace.  The
   trace is the history in the proof's sense: erasing a process (Lemma 6.7)
   is implemented as replaying the trace without that process's events.  If
   the erased process was visible to a survivor — i.e. the history minus the
   process is not a legal history of the algorithm — replay detects the
   divergence and reports it instead of silently producing garbage. *)

module Pid_map = Map.Make (Int)
module Pid_set = Set.Make (Int)

type run = {
  program : Op.value Program.t;
  label : string;
  seq : int;
  started : int;
  run_rmrs : int;
  run_steps : int;
}

type proc_state = Idle | Running of run | Terminated

type event =
  | E_begin of Op.pid * string * Op.value Program.t
  | E_advance of Op.pid
  | E_terminate of Op.pid
  | E_crash of Op.pid

type t = {
  n : int;
  layout : Var.layout;
  mem : Memory.t;
  model : Cost_model.t;
  model0 : Cost_model.t; (* pristine model, for replay *)
  procs : proc_state Pid_map.t;
  clock : int;
  lean : bool; (* skip per-step history (steps_rev) and replay trace *)
  steps_rev : History.step list;
  calls_rev : History.call list;
  trace_rev : event list;
  participated : Pid_set.t;
  rmr_by_pid : int Pid_map.t;
      (* RMRs in *finished* (completed or crashed) calls; the in-flight
         call's tally lives in its [run] record and is added by the
         accessors, so the hot stepping path updates no map *)
  steps_by_pid : int Pid_map.t; (* same folding discipline as rmr_by_pid *)
  seq_by_pid : int Pid_map.t; (* next call ordinal per process *)
  done_by_pid : int Pid_map.t; (* calls completed (crashed excluded) per process *)
  last_by_pid : Op.value option Pid_map.t;
      (* result of the latest completed-or-crashed call per process:
         [Some v] completed with [v], [None] crashed.  Mirrors the newest
         calls_rev record of the process, but is O(log n) to read. *)
  last_resp : Op.value option; (* response of the most recent step *)
  total_rmrs_c : int; (* running totals, so accounting views are O(1) *)
  total_messages_c : int;
  ends_rev : (Op.pid * int * bool) list; (* terminations/crashes: pid, tick, crashed *)
  tracer : Obs.Trace.t option;
}

exception Replay_divergence of { pid : Op.pid; time : int; detail : string }

let create ~model ~layout ~n =
  { n;
    layout;
    mem = Memory.create layout;
    model;
    model0 = model;
    procs = Pid_map.empty;
    clock = 0;
    lean = false;
    steps_rev = [];
    calls_rev = [];
    trace_rev = [];
    participated = Pid_set.empty;
    rmr_by_pid = Pid_map.empty;
    steps_by_pid = Pid_map.empty;
    seq_by_pid = Pid_map.empty;
    done_by_pid = Pid_map.empty;
    last_by_pid = Pid_map.empty;
    last_resp = None;
    total_rmrs_c = 0;
    total_messages_c = 0;
    ends_rev = [];
    tracer = None }

let tracer t = t.tracer

let with_tracer t tracer = { t with tracer }

(* Lean (history-free) stepping: from this point on the machine stops
   accumulating the per-step history ([steps] will be empty) and the
   replayable trace ([replay]/[erase] become unavailable), while every
   counter — clock, per-process and total RMR/step/call tallies, last
   results, call records, ends — is maintained exactly as in full mode.
   This is the explorer's mode: its dedup/POR machinery and the property
   contract consume only counters and call records, and skipping the two
   per-step accumulators removes the dominant allocation on the search hot
   path.  See docs/MODEL.md, "Exploration fast path". *)
let lean_mode t =
  if t.steps_rev <> [] || t.trace_rev <> [] then
    invalid_arg "Sim.lean_mode: machine already has recorded history"
  else { t with lean = true }

let is_lean t = t.lean

(* Observation events are purely additive: on [None] nothing is allocated
   or computed, which is the zero-cost-when-disabled contract. *)
let emit_ev t ev =
  match t.tracer with None -> () | Some tr -> Obs.Trace.emit tr ev

let n t = t.n
let layout t = t.layout
let memory t = t.mem
let clock t = t.clock

let proc_state t p =
  match Pid_map.find_opt p t.procs with Some st -> st | None -> Idle

let is_idle t p = proc_state t p = Idle
let is_terminated t p = proc_state t p = Terminated

let is_running t p =
  match proc_state t p with Running _ -> true | Idle | Terminated -> false

let steps t = List.rev t.steps_rev

(* Completed and crashed calls, in completion order, followed by calls
   still in flight (begun but unfinished).  Including pending calls
   matters: Specification 4.1 quantifies over calls that have *begun*
   (e.g. a Poll may return true as soon as some Signal has begun, even if
   that Signal never completes). *)
let calls t =
  let pending =
    Pid_map.fold
      (fun p st acc ->
        match st with
        | Running r ->
          { History.c_pid = p;
            c_label = r.label;
            c_seq = r.seq;
            c_started = r.started;
            c_finished = None;
            c_result = None;
            c_rmrs = r.run_rmrs;
            c_steps = r.run_steps }
          :: acc
        | Idle | Terminated -> acc)
      t.procs []
  in
  List.rev_append t.calls_rev pending

(* Fold over the same calls [calls] returns, in unspecified order, without
   materializing the list.  Properties evaluated at every search node
   (e.g. Specification 4.1) quantify over call intervals by their
   timestamps, not by list position, so they can skip the O(completed
   calls) copy [calls] performs per evaluation. *)
let fold_calls f acc t =
  let acc = List.fold_left f acc t.calls_rev in
  Pid_map.fold
    (fun p st acc ->
      match st with
      | Running r ->
        f acc
          { History.c_pid = p;
            c_label = r.label;
            c_seq = r.seq;
            c_started = r.started;
            c_finished = None;
            c_result = None;
            c_rmrs = r.run_rmrs;
            c_steps = r.run_steps }
      | Idle | Terminated -> acc)
    t.procs acc

let participants t = t.participated

let peek t p =
  match proc_state t p with
  | Running r -> Program.next_invocation r.program
  | Idle | Terminated -> None

(* Whether p's next operation would be an RMR; [None] when p has no pending
   operation or the classification depends on the operation's outcome. *)
let next_is_rmr t p =
  match peek t p with
  | None -> None
  | Some inv -> Cost_model.predict t.model p inv

let tick t = { t with clock = t.clock + 1 }

let find_count map p =
  match Pid_map.find_opt p map with Some v -> v | None -> 0

let complete_call t p (r : run) result =
  let finished = t.clock in
  let call =
    { History.c_pid = p;
      c_label = r.label;
      c_seq = r.seq;
      c_started = r.started;
      c_finished = Some finished;
      c_result = Some result;
      c_rmrs = r.run_rmrs;
      c_steps = r.run_steps }
  in
  emit_ev t
    (Obs.Event.Call_end
       { t = finished; pid = p; label = r.label; seq = r.seq;
         result; rmrs = r.run_rmrs; steps = r.run_steps });
  (* One record copy for the whole completion; the call's step/RMR tallies
     are folded into the per-process totals here, not on every step. *)
  { t with
    clock = finished + 1;
    procs = Pid_map.add p Idle t.procs;
    calls_rev = call :: t.calls_rev;
    done_by_pid = Pid_map.add p (find_count t.done_by_pid p + 1) t.done_by_pid;
    last_by_pid = Pid_map.add p (Some result) t.last_by_pid;
    rmr_by_pid =
      (if r.run_rmrs = 0 then t.rmr_by_pid
       else Pid_map.add p (find_count t.rmr_by_pid p + r.run_rmrs) t.rmr_by_pid);
    steps_by_pid =
      (if r.run_steps = 0 then t.steps_by_pid
       else
         Pid_map.add p (find_count t.steps_by_pid p + r.run_steps) t.steps_by_pid) }

(* Internal: perform a begin without recording a trace event (replay uses
   this too, via the shared implementation with [record] = false). *)
let begin_call_gen ~record t p ~label program =
  (match proc_state t p with
  | Idle -> ()
  | Running _ -> invalid_arg "Sim.begin_call: process already in a call"
  | Terminated -> invalid_arg "Sim.begin_call: process terminated");
  let trace_rev =
    if record && not t.lean then E_begin (p, label, program) :: t.trace_rev
    else t.trace_rev
  in
  let started = t.clock in
  let seq = find_count t.seq_by_pid p in
  let r = { program; label; seq; started; run_rmrs = 0; run_steps = 0 } in
  emit_ev t (Obs.Event.Call_begin { t = started; pid = p; label; seq });
  (* One record copy per branch (a zero-step program completes on the spot,
     so that branch pays [complete_call]'s copy instead of a [procs] one). *)
  match program with
  | Program.Return v ->
    complete_call
      { t with
        trace_rev;
        clock = started + 1;
        participated = Pid_set.add p t.participated;
        seq_by_pid = Pid_map.add p (seq + 1) t.seq_by_pid }
      p r v
  | Program.Step _ ->
    { t with
      trace_rev;
      clock = started + 1;
      participated = Pid_set.add p t.participated;
      seq_by_pid = Pid_map.add p (seq + 1) t.seq_by_pid;
      procs = Pid_map.add p (Running r) t.procs }

let advance_gen ~record ?(check : Op.value option) t p =
  let r =
    match proc_state t p with
    | Running r -> r
    | Idle -> invalid_arg "Sim.advance: process is idle"
    | Terminated -> invalid_arg "Sim.advance: process terminated"
  in
  match r.program with
  | Program.Return _ -> assert false (* begin/advance never leave a Return *)
  | Program.Step (inv, k) ->
    let trace_rev =
      if record && not t.lean then E_advance p :: t.trace_rev else t.trace_rev
    in
    let { Memory.memory; response; wrote; read_from } =
      Memory.apply t.mem ~pid:p inv
    in
    (match check with
    | Some expected when expected <> response ->
      raise
        (Replay_divergence
           { pid = p;
             time = t.clock;
             detail =
               Printf.sprintf "%s responded %d, originally %d"
                 (Op.show_invocation inv) response expected })
    | _ -> ());
    (* The armed latch lets emitters *inside* the accounting call (the CC
       model's closures) publish cache events at the right tick; replays run
       on a tracerless machine and thus never arm, so re-run closures cannot
       duplicate events. *)
    (match t.tracer with
    | Some tr -> Obs.Trace.arm tr ~now:t.clock
    | None -> ());
    let model, { Cost_model.rmr; messages } =
      Cost_model.account t.model p inv ~wrote
    in
    (match t.tracer with Some tr -> Obs.Trace.disarm tr | None -> ());
    let time = t.clock in
    (* The step record (and its trace event) exists only in full-history
       mode; lean mode keeps every counter below but allocates neither. *)
    let steps_rev =
      if t.lean then t.steps_rev
      else begin
        let step =
          { History.time;
            pid = p;
            inv;
            response;
            wrote;
            read_from;
            home = Var.layout_home t.layout (Op.addr_of inv);
            rmr;
            messages;
            call_seq = r.seq }
        in
        emit_ev t
          (Obs.Event.Op_step
             { t = time;
               pid = p;
               kind = Op.kind_name (Op.kind inv);
               addr = Op.addr_of inv;
               var = Var.layout_name t.layout (Op.addr_of inv);
               home =
                 (match step.History.home with
                 | Var.Module i -> Obs.Event.Module i
                 | Var.Shared -> Obs.Event.Shared);
               response;
               wrote;
               rmr;
               messages;
               model = Cost_model.name model;
               call_seq = r.seq });
        step :: t.steps_rev
      end
    in
    let run_rmrs = (r.run_rmrs + if rmr then 1 else 0) in
    let run_steps = r.run_steps + 1 in
    let total_rmrs_c = (t.total_rmrs_c + if rmr then 1 else 0) in
    let total_messages_c = t.total_messages_c + messages in
    (* Exactly one machine copy per step (the per-process step/RMR maps are
       folded at call end, not here): the stepping path allocates the new
       memory, the step's own bookkeeping, and nothing else. *)
    (match k response with
    | Program.Return v ->
      complete_call
        { t with
          mem = memory;
          model;
          clock = time + 1;
          trace_rev;
          steps_rev;
          last_resp = Some response;
          total_rmrs_c;
          total_messages_c }
        p
        { r with program = Program.Return v; run_rmrs; run_steps }
        v
    | Program.Step _ as program ->
      { t with
        mem = memory;
        model;
        clock = time + 1;
        trace_rev;
        steps_rev;
        last_resp = Some response;
        total_rmrs_c;
        total_messages_c;
        procs = Pid_map.add p (Running { r with program; run_rmrs; run_steps }) t.procs })

let begin_call t p ~label program = begin_call_gen ~record:true t p ~label program

let advance t p = advance_gen ~record:true t p

let terminate t p =
  (match proc_state t p with
  | Idle -> ()
  | Running _ -> invalid_arg "Sim.terminate: process mid-call"
  | Terminated -> invalid_arg "Sim.terminate: already terminated");
  let t =
    if t.lean then t else { t with trace_rev = E_terminate p :: t.trace_rev }
  in
  let t = tick t in
  emit_ev t (Obs.Event.Proc_exit { t = t.clock - 1; pid = p; crashed = false });
  { t with
    procs = Pid_map.add p Terminated t.procs;
    ends_rev = (p, t.clock - 1, false) :: t.ends_rev }

(* A crash: the process stops taking steps, possibly mid-call (paper,
   Sec. 2: "a process crashes if it terminates while performing a procedure
   call").  The interrupted call is recorded as begun-but-unfinished, which
   is exactly how Specification 4.1 treats it: never judged. *)
let crash_gen ~record t p =
  let t =
    if record && not t.lean then
      { t with trace_rev = E_crash p :: t.trace_rev }
    else t
  in
  let t = tick t in
  let t =
    match proc_state t p with
    | Idle | Terminated -> t
    | Running r ->
      let call =
        { History.c_pid = p;
          c_label = r.label;
          c_seq = r.seq;
          c_started = r.started;
          c_finished = None;
          c_result = None;
          c_rmrs = r.run_rmrs;
          c_steps = r.run_steps }
      in
      emit_ev t
        (Obs.Event.Call_crash
           { t = t.clock - 1; pid = p; label = r.label; seq = r.seq;
             rmrs = r.run_rmrs; steps = r.run_steps });
      { t with
        calls_rev = call :: t.calls_rev;
        last_by_pid = Pid_map.add p None t.last_by_pid;
        (* the interrupted call is finished now: fold its tallies, as
           [complete_call] does for completed calls *)
        rmr_by_pid =
          (if r.run_rmrs = 0 then t.rmr_by_pid
           else
             Pid_map.add p (find_count t.rmr_by_pid p + r.run_rmrs) t.rmr_by_pid);
        steps_by_pid =
          (if r.run_steps = 0 then t.steps_by_pid
           else
             Pid_map.add p
               (find_count t.steps_by_pid p + r.run_steps)
               t.steps_by_pid) }
  in
  emit_ev t (Obs.Event.Proc_exit { t = t.clock - 1; pid = p; crashed = true });
  { t with
    procs = Pid_map.add p Terminated t.procs;
    ends_rev = (p, t.clock - 1, true) :: t.ends_rev }

let crash t p = crash_gen ~record:true t p

let rec run_to_idle ?(fuel = 1_000_000) t p =
  match proc_state t p with
  | Idle | Terminated -> t
  | Running _ ->
    if fuel = 0 then failwith "Sim.run_to_idle: out of fuel"
    else run_to_idle ~fuel:(fuel - 1) (advance t p) p

let run_call ?fuel t p ~label program =
  let t = begin_call t p ~label program in
  let t = run_to_idle ?fuel t p in
  match t.calls_rev with
  | c :: _ when c.History.c_pid = p -> (t, Option.get c.History.c_result)
  | _ -> assert false

(* --- accounting views --- *)

(* Per-process tallies: the finished-calls fold plus the in-flight call's
   own counters (kept in its [run] record so stepping updates no map). *)
let rmrs t p =
  find_count t.rmr_by_pid p
  + (match proc_state t p with Running r -> r.run_rmrs | Idle | Terminated -> 0)

let total_rmrs t = t.total_rmrs_c

let total_messages t = t.total_messages_c

let step_count t p =
  find_count t.steps_by_pid p
  + (match proc_state t p with Running r -> r.run_steps | Idle | Terminated -> 0)

let call_count t p = find_count t.seq_by_pid p

let completed_count t p = find_count t.done_by_pid p

let last_step t = match t.steps_rev with [] -> None | s :: _ -> Some s

let last_response t = t.last_resp

let ends t = List.rev t.ends_rev

(* The outcome of the process's most recent call, pending calls excluded:
   the [last_by_pid] mirror of the newest calls_rev record — O(log n)
   instead of a scan of the recorded history, and independent of whether
   the machine keeps one. *)
let last_result t p =
  match Pid_map.find_opt p t.last_by_pid with Some r -> r | None -> None

let calls_of t p =
  List.rev
    (List.filter (fun (c : History.call) -> c.History.c_pid = p) t.calls_rev)

(* --- replay / erasure (Lemma 6.7) --- *)

let trace t = List.rev t.trace_rev

(* Original responses per surviving process, in program order, to validate
   replay against. *)
let responses_by_pid t keep =
  List.fold_left
    (fun acc (s : History.step) ->
      if keep s.pid then
        Pid_map.update s.pid
          (function None -> Some [ s.response ] | Some l -> Some (s.response :: l))
          acc
      else acc)
    Pid_map.empty t.steps_rev
(* steps_rev is reverse-chronological, so the accumulated lists come out in
   chronological order. *)

let replay ?(check = true) ~keep t =
  if t.lean then
    invalid_arg "Sim.replay: a lean machine keeps no replayable trace";
  let expected = if check then responses_by_pid t keep else Pid_map.empty in
  let fresh = create ~model:t.model0 ~layout:t.layout ~n:t.n in
  let step_one (sim, exp) ev =
    match ev with
    | E_begin (p, label, program) ->
      if keep p then (begin_call_gen ~record:true sim p ~label program, exp)
      else (sim, exp)
    | E_advance p ->
      if not (keep p) then (sim, exp)
      else if not check then (advance_gen ~record:true sim p, exp)
      else (
        match Pid_map.find_opt p exp with
        | Some (v :: rest) ->
          ( advance_gen ~record:true ~check:v sim p,
            Pid_map.add p rest exp )
        | Some [] | None ->
          (* More steps than the original had; impossible since the trace is
             a prefix-faithful copy. *)
          assert false)
    | E_terminate p -> if keep p then (terminate sim p, exp) else (sim, exp)
    | E_crash p -> if keep p then (crash_gen ~record:true sim p, exp) else (sim, exp)
  in
  let sim, _ = List.fold_left step_one (fresh, expected) (trace t) in
  (* The replay itself is silent ([fresh] has no tracer — re-running the
     surviving steps must not re-emit their events), but the machine that
     continues from here is still the traced one. *)
  { sim with tracer = t.tracer }

let erase t pids =
  let doomed = Pid_set.of_list pids in
  replay ~check:true ~keep:(fun p -> not (Pid_set.mem p doomed)) t

let can_erase t pids =
  match erase t pids with
  | (_ : t) -> true
  | exception Replay_divergence _ -> false

let pp_proc_state ppf = function
  | Idle -> Fmt.string ppf "idle"
  | Terminated -> Fmt.string ppf "terminated"
  | Running r -> Fmt.pf ppf "in %s#%d (%d steps)" r.label r.seq r.run_steps

let pp ppf t =
  Fmt.pf ppf "sim: n=%d clock=%d steps=%d rmrs=%d@." t.n t.clock
    (Pid_map.fold
       (fun _ c acc -> acc + c)
       t.steps_by_pid
       (Pid_map.fold
          (fun _ st acc ->
            match st with
            | Running r -> acc + r.run_steps
            | Idle | Terminated -> acc)
          t.procs 0))
    (total_rmrs t);
  Pid_set.iter
    (fun p -> Fmt.pf ppf "  p%d: %a@." p pp_proc_state (proc_state t p))
    t.participated
