(* Exhaustive interleaving exploration: a small-scope model checker.

   The paper's histories allow arbitrary interleavings; randomized testing
   samples them, this module enumerates them.  Given a per-process script
   of procedure calls, [check] drives the machine through every possible
   step-level interleaving (depth-first over the persistent state — a
   branch is just a retained binding) and evaluates a property on every
   complete history.

   Interleavings explode combinatorially, so this is for small
   configurations (2-3 processes, a handful of steps each); [max_histories]
   caps the search and the result says whether the enumeration was
   complete.  Properties over completed histories suffice for safety
   (Specification 4.1 violations are recorded in the call list and persist
   to the end of the history). *)

(* What a process does between calls: a PURE function of the machine state
   (branches share nothing, so stateful closures would corrupt the
   search).  [None] means the process is done. *)
type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option

(* A fixed list of calls, performed in order; the per-branch position is
   recovered from the machine itself (number of calls begun so far). *)
let of_list calls : script =
 fun sim p -> List.nth_opt calls (List.length (Sim.calls_of sim p))

(* Repeat a call until its result satisfies [until], at most [limit]
   times — e.g. "Poll() until it returns true", the history restriction of
   Section 4. *)
let repeat ?(limit = max_int) ~until (label, program) : script =
 fun sim p ->
  match Sim.last_result sim p with
  | Some r when until r -> None
  | Some _ | None ->
    if List.length (Sim.calls_of sim p) >= limit then None
    else Some (label, program)

type result = {
  histories : int; (* complete histories the property was checked on *)
  truncated : int; (* branches cut at [max_steps_per_history] (spin loops) *)
  complete : bool; (* false if a cap stopped or truncated the enumeration *)
  violation : Sim.t option; (* a history falsifying the property *)
}

let check ?(max_histories = 1_000_000) ?(max_steps_per_history = 500) ~layout
    ~model ~n ~scripts ~property () =
  let sim0 = Sim.create ~model ~layout ~n in
  (* Enabled moves: advance if mid-call, else begin whatever the script
     asks for next.  A process whose script answers [None] is done. *)
  let moves sim =
    List.filter_map
      (fun ((p : Op.pid), (script : script)) ->
        match Sim.proc_state sim p with
        | Sim.Running _ -> Some (p, `Advance)
        | Sim.Terminated -> None
        | Sim.Idle -> (
          match script sim p with
          | None -> None
          | Some (label, program) -> Some (p, `Begin (label, program))))
      scripts
  in
  let exception Stop of result in
  let histories = ref 0 in
  let truncated = ref 0 in
  let current () =
    { histories = !histories; truncated = !truncated; complete = false;
      violation = None }
  in
  let finish sim =
    (* A leaf: either no moves remain or the branch hit the step bound
       (a spin loop).  Safety properties over recorded calls hold on
       truncated prefixes too, so both are checked. *)
    incr histories;
    if not (property sim) then
      raise (Stop { (current ()) with violation = Some sim });
    if !histories >= max_histories then raise (Stop (current ()))
  in
  let rec go sim depth =
    if depth >= max_steps_per_history then begin
      incr truncated;
      finish sim
    end
    else
      match moves sim with
      | [] -> finish sim
      | ms ->
        List.iter
          (fun (p, m) ->
            match m with
            | `Advance -> go (Sim.advance sim p) (depth + 1)
            | `Begin (label, program) ->
              go (Sim.begin_call sim p ~label program) (depth + 1))
          ms
  in
  match go sim0 0 with
  | () ->
    { histories = !histories; truncated = !truncated;
      complete = !truncated = 0; violation = None }
  | exception Stop r -> r

(* Count interleavings without checking anything (sizing aid). *)
let count ?max_histories ?max_steps_per_history ~layout ~model ~n ~scripts () =
  (check ?max_histories ?max_steps_per_history ~layout ~model ~n ~scripts
     ~property:(fun _ -> true) ())
    .histories
