(* Exhaustive interleaving exploration: a small-scope model checker.

   The paper's histories allow arbitrary interleavings; randomized testing
   samples them, this module enumerates them.  Given a per-process script
   of procedure calls, [check] drives the machine through every possible
   step-level interleaving (depth-first over the persistent state — a
   branch is just a retained binding) and evaluates a property on every
   complete history.

   The naive step-level DFS explodes combinatorially, so three reductions
   make exhaustive checking scale past toy scopes, all of them exploiting
   the persistence of [Sim.t]:

   - State deduplication.  A canonical fingerprint of (memory contents,
     per-process control point) identifies states whose futures coincide;
     a revisited state is pruned.  Soundness needs the fingerprint to
     determine both future behavior and future property verdicts, which is
     why it includes, per running call, the responses received so far (the
     continuation of a deterministic program is a function of them) and a
     snapshot of every process's completed-call count at the call's start
     (Specification-4.1-style verdicts compare a call's start against
     earlier completions).  Begun counts are deliberately not snapshotted:
     began-before-began is not an interval-order relation, so states that
     differ only in the order of concurrent call starts merge.

   - Sleep-set partial-order reduction.  Two enabled moves commute when
     swapping them changes neither future machine behavior nor any
     interval-order relation: two advances whose operations commute
     ([Op.commute]: different cells, or both read-only), two begins
     (scripts read only their own process's state and a begin touches no
     memory), and a begin against a non-completing advance.  A call
     completion is an interval endpoint, so nothing slides past it except
     commuting advances (no call start separates two adjacent non-begin
     moves).  Only one representative order per commuting pair is
     explored.

   - Deterministic frontier parallelism.  The first [split_depth] levels
     are expanded sequentially into independent subtree tasks which fan
     out across domains via [Parallel.map]'s shared atomic task queue;
     each task owns a private visited table and draws its history budget
     as chunked leases from a shared atomic pool, and a reconciliation
     pass in task order then restores the canonical sequential
     accounting, so the merged verdict is byte-identical for every job
     count.

   Three further constant-factor decisions keep the per-state cost flat
   (see docs/MODEL.md, "Exploration fast path"):

   - The machine steps in [Sim.lean_mode]: no per-step history records and
     no replayable trace are accumulated — the property contract below
     consumes only call records and counters, and those are all kept.

   - Memory identity is decided through [Memory.fp_hash], a running
     behavioral hash maintained incrementally per operation, so
     fingerprinting a state is O(running calls), not O(cells); the
     structural comparison ([Memory.same_fingerprint]) runs only to
     confirm a hash match.

   - Fingerprints are interned ([Fp_intern]) to dense small ints, so the
     visited table keys, hashes and compares on ints.

   Dedup and POR assume (and [check]'s documentation requires) that the
   property judges each call, at its completion, from the call's own
   result and its interval-order relations (which calls completed before
   it began, which began before it finished) — true of Specification 4.1
   and the GME occupancy predicate — and that scripts consult only the
   script-visible state (own call count and last result).  Both
   reductions can be switched off, which restores the seed checker's
   exact leaf-per-interleaving semantics ([count] does exactly that). *)

module Pid_set = Sim.Pid_set

(* What a process does between calls: a PURE function of the machine state
   (branches share nothing, so stateful closures would corrupt the
   search).  [None] means the process is done. *)
type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option

(* A fixed list of calls, performed in order; the per-branch position is
   recovered from the machine itself (number of calls begun so far,
   O(log n) via the simulator's per-process ordinal map). *)
let of_list calls : script =
 fun sim p -> List.nth_opt calls (Sim.call_count sim p)

(* Repeat a call until its result satisfies [until], at most [limit]
   times — e.g. "Poll() until it returns true", the history restriction of
   Section 4. *)
let repeat ?(limit = max_int) ~until (label, program) : script =
 fun sim p ->
  match Sim.last_result sim p with
  | Some r when until r -> None
  | Some _ | None ->
    if Sim.call_count sim p >= limit then None else Some (label, program)

type stats = {
  states : int; (* search nodes visited (dedup/POR-pruned nodes included) *)
  dedup_hits : int; (* nodes pruned because an equivalent state was explored *)
  por_prunes : int; (* nodes whose every enabled move was asleep *)
  tasks : int; (* parallel subtree tasks the frontier split produced *)
  max_depth : int; (* deepest step count reached on any branch *)
  orbit_hits : int; (* dedup hits whose canonical key was relabeled *)
  fp_distinct : int; (* distinct dedup keys interned, summed over tasks *)
  fp_collisions : int; (* full-hash collisions among distinct keys *)
  fp_resizes : int; (* intern-table slot doublings, summed over tasks *)
  fp_slots : int; (* intern-table slot capacity, summed over tasks *)
  spill_segments : int; (* segment files written under --mem-budget *)
  spill_reloads : int; (* segments read back on a probe miss *)
  wall_s : float; (* wall-clock seconds (the only jobs-dependent field) *)
}

type result = {
  histories : int; (* complete histories the property was checked on *)
  truncated : int; (* branches cut at [max_steps_per_history] (spin loops) *)
  complete : bool; (* false if a cap stopped or truncated the enumeration *)
  violation : Sim.t option; (* a history falsifying the property *)
  stats : stats;
}

(* --- moves --- *)

type move =
  | M_advance of Op.invocation (* the process's pending operation *)
  | M_begin of string * Op.value Program.t

(* --- per-process search metadata --- *)

(* Per-running-call metadata the fingerprint needs but the simulator does
   not keep: the responses received so far inside the call (they determine
   the continuation of a deterministic program) and the completed-call
   counts of every scripted process at the call's start (they determine
   how interval-order properties will judge the call once it completes). *)
type call_meta = {
  program : Op.value Program.t;
      (* the call's remaining program, advanced in lockstep with the
         machine — it yields the pending invocation and the continuation
         without querying the machine at every node *)
  label : string;
  label_h : int; (* [Hashtbl.hash label], computed once at the begin *)
  seq : int; (* the call's per-process ordinal *)
  begun : int; (* calls this process has begun, this one included *)
  resps_rev : Op.value list;
  resps_len : int; (* [List.length resps_rev], maintained incrementally *)
  resps_h : int; (* rolling hash of [resps_rev], maintained incrementally *)
  snap : int array;
      (* per-process completed-call counts (indexed by pid) at this call's
         start: they decide which completions precede the call in the
         interval order.  Begun counts are deliberately absent —
         began-before-began is not an interval-order relation, and
         omitting them lets states that differ only in the order of
         concurrent call starts merge.  Never mutated after creation. *)
}

(* One entry per process, indexed by pid (pids are dense: [Sim.create ~n]
   numbers them [0..n-1]).  The explorer never terminates or crashes a
   process (a script that answers [None] just stops producing moves), so
   idle-with-history and running are the only control points — and every
   fact the fingerprint and the move enumeration need is maintained here
   incrementally, instead of being re-queried from the machine's maps at
   every search node.  The array is copy-on-write: [apply_move] copies,
   nothing ever mutates an existing array — each one is retained as part
   of its state's interned fingerprint.  Unscripted processes stay
   [P_idle (0, None)] forever; their contribution to every fingerprint is
   the same constant, so including them changes no state equivalence. *)
type pmeta =
  | P_idle of int * Op.value option (* calls begun, last result *)
  | P_running of call_meta

let meta0 n = Array.make n (P_idle (0, None))

(* Enabled moves in script order: advance if mid-call, else begin whatever
   the script asks for next.  A process whose script answers [None] is
   done.  Running processes never touch the machine here — the pending
   invocation comes straight from the tracked program. *)
let moves scripts (meta : pmeta array) sim =
  List.filter_map
    (fun ((p : Op.pid), (script : script)) ->
      match meta.(p) with
      | P_running m -> (
        match Program.next_invocation m.program with
        | Some inv -> Some (p, M_advance inv)
        | None -> assert false (* running implies a pending operation *))
      | P_idle _ -> (
        match script sim p with
        | None -> None
        | Some (label, program) -> Some (p, M_begin (label, program))))
    scripts

(* --- fingerprinting --- *)

(* A state's exact identity: the memory (persistent, so retaining it is
   free; compared behaviorally via [Memory.same_fingerprint], never
   serialized) and the per-process control points — which are the tracked
   metadata array itself.  The array is copy-on-write, so retaining it as
   a key is free and fingerprinting a state allocates one record,
   independent of how many cells the store holds or how deep the history
   is.  Equality and hashing read only the fingerprint-relevant fields:
   [program] is excluded by construction (for a deterministic program it
   is a function of the call's label and responses), [begun] because for a
   running call it always equals [seq + 1]. *)
type fp = { fp_mem : Memory.t; fp_meta : pmeta array }

(* Exact state identity, consulted only when two states share a hash.  The
   process summaries go first: their scalar prefixes reject unequal
   control points before the memory walk runs.  All comparisons are
   monomorphic and fail-fast — on a dedup hit (the common case: the keys
   ARE equal) the whole comparison is a run of int compares plus physical
   shortcuts on shared labels, list spines and snapshot arrays, never the
   generic structural compare, which profiles as one of the hottest calls
   otherwise. *)
let value_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Op.value_equal x y
  | None, Some _ | Some _, None -> false

let rec resps_equal l1 l2 =
  l1 == l2
  ||
  match (l1, l2) with
  | x :: t1, y :: t2 -> Op.value_equal x y && resps_equal t1 t2
  | [], [] -> true
  | [], _ :: _ | _ :: _, [] -> false

let snap_equal (s1 : int array) (s2 : int array) =
  s1 == s2
  || (Array.length s1 = Array.length s2
     &&
     let rec go i = i < 0 || (s1.(i) = s2.(i) && go (i - 1)) in
     go (Array.length s1 - 1))

let pmeta_equal a b =
  match (a, b) with
  | P_idle (c1, r1), P_idle (c2, r2) -> c1 = c2 && value_opt_equal r1 r2
  | P_running m1, P_running m2 ->
    m1.label_h = m2.label_h && m1.seq = m2.seq && m1.resps_len = m2.resps_len
    && m1.resps_h = m2.resps_h
    && (m1.label == m2.label || String.equal m1.label m2.label)
       (* scripts hand out the same physical label string every time, so
          the string walk virtually never runs *)
    && resps_equal m1.resps_rev m2.resps_rev
    && snap_equal m1.snap m2.snap
  | P_idle _, P_running _ | P_running _, P_idle _ -> false

let metas_equal (a : pmeta array) (b : pmeta array) =
  a == b
  || (Array.length a = Array.length b
     &&
     let rec go i = i < 0 || (pmeta_equal a.(i) b.(i) && go (i - 1)) in
     go (Array.length a - 1))

let fp_equal a b =
  metas_equal a.fp_meta b.fp_meta
  && Memory.same_fingerprint a.fp_mem b.fp_mem

(* Rolling-hash mixer for the incremental response hash and the state hash
   below. *)
let mix h x = (((h * 31) + x + 1) * 0x2545F491) land max_int

(* The generic [Hashtbl.hash] is unusable here: its traversal is capped at
   256 nodes, and deep in a spin loop every state shares the same 256-node
   prefix, so all keys collide and probes degrade to long structural
   comparisons.  Instead the scalar summaries are folded explicitly, each
   of them already maintained incrementally: [Memory.fp_hash] is a per-
   operation delta, [resps_h] a per-response delta — so hashing a state is
   O(processes), touching no cell and no response list.  [fp_equal] still
   decides matches exactly, so collisions cost time, never soundness. *)
let rec hash_snap (s : int array) i h =
  if i >= Array.length s then h else hash_snap s (i + 1) (mix h s.(i))

(* Hash of one process's control point, salted by its pid.  The state hash
   is the plain integer sum of the slot hashes (plus [Memory.fp_hash]):
   addition commutes, so the sum can be maintained incrementally — each
   move changes exactly one slot, and [apply_move] swaps that slot's
   contribution out and in — making the per-node hashing cost O(1) slots
   instead of a walk over all of them.  The weaker mixing of a sum is
   acceptable for the same reason every other hash here is: [fp_equal]
   decides matches exactly, collisions cost time, never soundness. *)
let slot_hash (i : int) = function
  | P_idle (c, r) ->
    mix
      (mix (mix ((i + 1) * 0x9E3779B9) 5) c)
      (match r with None -> min_int | Some v -> v)
  | P_running m ->
    hash_snap m.snap 0
      (mix
         (mix
            (mix (mix (mix ((i + 1) * 0x9E3779B9) 7) m.label_h) m.seq)
            m.resps_len)
         m.resps_h)

(* Full slot-hash sum of a metadata array — the non-incremental form of
   the state hash, used at the root and whenever canonicalization has
   relabeled slots (the sum is index-salted, so a relabeled array cannot
   reuse the incrementally maintained value). *)
let mh_full (meta : pmeta array) =
  let h = ref 0 in
  for i = 0 to Array.length meta - 1 do
    h := !h + slot_hash i meta.(i)
  done;
  !h

(* Initial state hash, matching [meta0]. *)
let mh0 n = mh_full (meta0 n)

let mh_swap mh (meta : pmeta array) p pm =
  mh - slot_hash p meta.(p) + slot_hash p pm

(* --- symmetry reduction: orbit-canonical dedup keys --- *)

(* Interchangeable processes — the signaling problem's waiters — make the
   search factorially redundant: a state and its image under a waiter-pid
   permutation have isomorphic futures, yet fingerprint as distinct.  The
   reduction maps each state's {e dedup key} (never the live search state)
   to a canonical orbit representative: sort the interchangeable slots of
   the metadata array by a permutation-invariant total order, relabel every
   slot's start snapshot by the resulting permutation, and recompute the
   slot-hash sum over the canonical array.  Pruning a state because its
   orbit was visited is sound whenever (a) the symmetric pids run literally
   interchangeable scripts — same labels, same invocation/response trees —
   so futures correspond under the permutation, (b) no symmetric pid
   executes [Ll] — pids then never enter the memory fingerprint, which is
   therefore permutation-invariant (addresses never permute; values and
   links carry no symmetric pid) — and (c) the property is invariant under
   the permutation, as Specification 4.1 is (it reads labels, results and
   interval relations, never pids).  {!detect_symmetry} checks (a) and (b)
   from the scripts; (c) is the caller's contract.

   The sort key must itself be permutation-invariant, or twin states would
   sort into different canonical forms.  Per symmetric slot it reads: the
   control tag; for idle slots the begun count and last result; for running
   slots the label, ordinal, responses, and a permuted {e view} of the
   start snapshot — the pinned entries in pid order, then the slot's own
   entry, then the multiset (sorted) of the other symmetric entries.
   Relabeling permutes exactly the positions the view abstracts over, so
   twins produce the same sorted key sequence.  Keys can tie while the
   slots' cross-correlations differ; the canonical form is then
   heapsort-order dependent — some orbit twins fail to merge, which loses
   reduction, never soundness: the canonical array is always the image of
   the real state under an actual permutation, so every pruned state has a
   genuinely explored orbit representative.

   Sleep sets cross the same boundary: the antichain entries recorded for
   an orbit id live in {e canonical} pid coordinates, so the probing
   state's sleep set is mapped through the same permutation before the
   subset test — comparing raw sleep pids against a twin's entries would
   prune interleavings no representative explored. *)

type sym_ctx = {
  sym_arr : int array; (* the interchangeable pids, ascending *)
  is_sym : bool array; (* indexed by pid: membership in [sym_arr] *)
}

let sym_ctx ~n symmetry =
  let arr =
    Array.of_list
      (Pid_set.elements (Pid_set.filter (fun p -> p >= 0 && p < n) symmetry))
  in
  if Array.length arr < 2 then None
  else begin
    let is_sym = Array.make n false in
    Array.iter (fun p -> is_sym.(p) <- true) arr;
    Some { sym_arr = arr; is_sym }
  end

let cmp_value_opt a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> Int.compare x y

let rec cmp_ints l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (x : int) :: t1, y :: t2 ->
    let c = Int.compare x y in
    if c <> 0 then c else cmp_ints t1 t2

(* Permutation-invariant comparison of two symmetric slots' start
   snapshots: pinned entries in pid order, own entry, sorted multiset of
   the other symmetric entries. *)
let cmp_snap_view ctx (a : int) (b : int) (s1 : int array) (s2 : int array) =
  let n = Array.length s1 in
  let c = ref 0 and i = ref 0 in
  while !c = 0 && !i < n do
    if not ctx.is_sym.(!i) then c := Int.compare s1.(!i) s2.(!i);
    incr i
  done;
  if !c <> 0 then !c
  else
    let c = Int.compare s1.(a) s2.(b) in
    if c <> 0 then c
    else
      let others (s : int array) self =
        let l = ref [] in
        Array.iter (fun q -> if q <> self then l := s.(q) :: !l) ctx.sym_arr;
        List.sort Int.compare !l
      in
      cmp_ints (others s1 a) (others s2 b)

let cmp_slot ctx (meta : pmeta array) (a : int) (b : int) =
  match (meta.(a), meta.(b)) with
  | P_idle (c1, r1), P_idle (c2, r2) ->
    let c = Int.compare c1 c2 in
    if c <> 0 then c else cmp_value_opt r1 r2
  | P_idle _, P_running _ -> -1
  | P_running _, P_idle _ -> 1
  | P_running m1, P_running m2 ->
    let c = String.compare m1.label m2.label in
    if c <> 0 then c
    else
      let c = Int.compare m1.seq m2.seq in
      if c <> 0 then c
      else
        let c = Int.compare m1.resps_len m2.resps_len in
        if c <> 0 then c
        else
          let c = cmp_ints m1.resps_rev m2.resps_rev in
          if c <> 0 then c else cmp_snap_view ctx a b m1.snap m2.snap

(* Image of the metadata array under [perm] (old pid -> canonical pid):
   slot [p] moves to [perm.(p)] and every running slot's snapshot — the
   pinned ones included — is re-indexed the same way.  Fresh arrays only;
   the input is retained elsewhere (it is the live search state). *)
let apply_perm (perm : int array) (meta : pmeta array) =
  let n = Array.length meta in
  let relabel_snap (s : int array) =
    let s' = Array.make n 0 in
    for q = 0 to n - 1 do
      s'.(perm.(q)) <- s.(q)
    done;
    s'
  in
  let out = Array.make n (P_idle (0, None)) in
  for p = 0 to n - 1 do
    out.(perm.(p)) <-
      (match meta.(p) with
      | P_idle _ as pm -> pm
      | P_running m -> P_running { m with snap = relabel_snap m.snap })
  done;
  out

(* Canonical orbit representative of [meta]'s dedup key: [meta] itself
   (and [None]) when the symmetric slots are already sorted — the common
   case, kept allocation-free — else the relabeled array and the
   permutation that produced it. *)
let canonical ctx (meta : pmeta array) =
  let k = Array.length ctx.sym_arr in
  let sorted = ref true in
  for r = 0 to k - 2 do
    if !sorted && cmp_slot ctx meta ctx.sym_arr.(r) ctx.sym_arr.(r + 1) > 0
    then sorted := false
  done;
  if !sorted then (meta, None)
  else begin
    let order = Array.copy ctx.sym_arr in
    Array.sort (fun a b -> cmp_slot ctx meta a b) order;
    let perm = Array.init (Array.length meta) Fun.id in
    Array.iteri (fun r p -> perm.(p) <- ctx.sym_arr.(r)) order;
    (apply_perm perm meta, Some perm)
  end

(* Script-level symmetry detection: of the candidate (pid, first-call)
   pairs, the group of pids whose calls are literally interchangeable with
   the first candidate's — same label and bisimilar programs over the
   given response domain (invocations compared structurally at every node,
   continuations followed for every value in [values]) — with [Ll]
   refused anywhere in the tree (a load-link records its pid in the
   memory fingerprint, breaking permutation invariance).  [fuel] bounds
   the total nodes visited per comparison; exhausting it declines that
   candidate (sound: detection failure only loses reduction).  The check
   is exact for programs whose response branching is covered by [values]
   — {!Analysis.Lint.value_domain} covers every catalog algorithm — and
   the caller remains responsible for the property's symmetry.  Pids
   outside the returned set (signalers, asymmetric waiters) stay pinned. *)
let detect_symmetry ?(fuel = 4096) ~values candidates =
  match candidates with
  | [] | [ _ ] -> Pid_set.empty
  | (p0, (label0, prog0)) :: rest ->
    let nodes = ref fuel in
    let rec bisim p q =
      decr nodes;
      !nodes >= 0
      &&
      match (p, q) with
      | Program.Return a, Program.Return b -> Op.value_equal a b
      | Program.Step (i1, k1), Program.Step (i2, k2) ->
        Op.invocation_equal i1 i2
        && (match i1 with Op.Ll _ -> false | _ -> true)
        && List.for_all (fun v -> bisim (k1 v) (k2 v)) values
      | Program.Return _, Program.Step _ | Program.Step _, Program.Return _
        ->
        false
    in
    let self_ok =
      nodes := fuel;
      bisim prog0 prog0
    in
    if not self_ok then Pid_set.empty
    else
      let same =
        List.filter
          (fun (_, (label, prog)) ->
            String.equal label label0
            &&
            (nodes := fuel;
             bisim prog0 prog))
          rest
      in
      if same = [] then Pid_set.empty
      else Pid_set.of_list (p0 :: List.map fst same)

(* --- byte-encoded dedup keys (the spill-to-disk mode) --- *)

(* Canonical byte serialization of a dedup key, faithful to [fp_equal]:
   equal bytes iff equal fingerprints.  The metadata section comes first —
   every variable-length field is length-prefixed, so it is uniquely
   parseable and the memory section that follows cannot alias into it.
   Only [fp_equal]'s fields are encoded (no [program], no [begun], no
   derived hashes). *)
let add_i64 buf (v : int) = Buffer.add_int64_le buf (Int64.of_int v)

let encode_key buf (meta : pmeta array) mem =
  Buffer.clear buf;
  Array.iter
    (fun pm ->
      match pm with
      | P_idle (c, r) -> (
        Buffer.add_char buf '\000';
        add_i64 buf c;
        match r with
        | None -> Buffer.add_char buf '\000'
        | Some v ->
          Buffer.add_char buf '\001';
          add_i64 buf v)
      | P_running m ->
        Buffer.add_char buf '\002';
        add_i64 buf (String.length m.label);
        Buffer.add_string buf m.label;
        add_i64 buf m.seq;
        add_i64 buf m.resps_len;
        List.iter (add_i64 buf) m.resps_rev;
        Array.iter (add_i64 buf) m.snap)
    meta;
  Memory.blit_fingerprint mem buf;
  Buffer.contents buf

let hash_bytes (s : string) =
  let h = ref 0x2545F491 in
  for i = 0 to String.length s - 1 do
    h := mix !h (Char.code (String.unsafe_get s i))
  done;
  !h

(* Resident-footprint estimate of one antichain, for the spill store's
   budget accounting (words, boxing and spine overheads approximated). *)
let antichain_bytes (l : Pid_set.t list) =
  List.fold_left (fun acc s -> acc + 48 + (24 * Pid_set.cardinal s)) 16 l

(* Execute one move, maintaining the per-process metadata in lockstep with
   the machine.  Returns the new machine, the new metadata, and whether
   the move completed a call (the only transitions on which the property
   verdict can change).  Completion and results are derived from the
   tracked program — the same physical closure the machine is running —
   so no machine state is queried back except the step's response. *)
let set (meta : pmeta array) p pm =
  let meta' = Array.copy meta in
  meta'.(p) <- pm;
  meta'

(* The search threads [counts], the completed-call count per pid, alongside
   [meta] under the invariant that [counts.(q)] is the number of calls [q]
   has completed (no crashes happen under the explorer, so an idle process
   has completed everything it began and a running one everything but the
   call in flight).  Like [meta] it is copy-on-write ([bump] copies, nothing mutates a
   shared array), which is what lets a begin adopt the current array as its
   [snap] without copying: most snapshots are then physically shared, so
   [snap_equal]'s [==] shortcut fires and no per-begin allocation runs. *)
let bump (counts : int array) p =
  let c = Array.copy counts in
  c.(p) <- c.(p) + 1;
  c

let apply_move sim (meta : pmeta array) (counts : int array) mh p = function
  | M_begin (label, program) -> (
    let begun =
      match meta.(p) with
      | P_idle (b, _) -> b
      | P_running _ -> assert false
    in
    let sim' = Sim.begin_call sim p ~label program in
    match program with
    | Program.Return v ->
      (* zero-step call: completed on the spot *)
      let pm = P_idle (begun + 1, Some v) in
      (sim', set meta p pm, bump counts p, mh_swap mh meta p pm, true)
    | Program.Step _ ->
      let pm =
        P_running
          { program;
            label;
            label_h = Hashtbl.hash label;
            seq = begun;
            begun = begun + 1;
            resps_rev = [];
            resps_len = 0;
            resps_h = 0;
            snap = counts }
      in
      (sim', set meta p pm, counts, mh_swap mh meta p pm, false))
  | M_advance _ -> (
    let m =
      match meta.(p) with
      | P_running m -> m
      | P_idle _ -> assert false
    in
    let k =
      match m.program with
      | Program.Step (_, k) -> k
      | Program.Return _ -> assert false
    in
    let sim' = Sim.advance sim p in
    let resp =
      match Sim.last_response sim' with Some v -> v | None -> assert false
    in
    match k resp with
    | Program.Return v ->
      let pm = P_idle (m.begun, Some v) in
      (sim', set meta p pm, bump counts p, mh_swap mh meta p pm, true)
    | Program.Step _ as program ->
      let pm =
        P_running
          { m with
            program;
            resps_rev = resp :: m.resps_rev;
            resps_len = m.resps_len + 1;
            resps_h = mix m.resps_h resp }
      in
      (sim', set meta p pm, counts, mh_swap mh meta p pm, false))

(* Sleep set for the child reached by executing [p]'s move [mv]: of the
   processes asleep here or already explored as older siblings, keep those
   whose pending move commutes with the executed one.

   Two advances commute when their operations do ({!Op.commute}).  Two
   begins commute as long as neither completes a zero-step call on the
   spot: scripts consult only their own process's state, a begin touches
   no memory, and swapping two call starts changes no interval-order
   relation (began-before-began is not one) — whereas a completion is an
   interval endpoint, so nothing commutes across a move that completed a
   call ([completed], known only after applying the move).  By the same
   reasoning a begin also commutes with a non-completing advance: the
   advance's memory effect is invisible to the begin (no memory access,
   script reads own state only) and no endpoint separates them. *)
let instant (program : Op.value Program.t) = Program.next_invocation program = None

(* Monomorphic [List.assoc_opt] over the enabled-move list: pid keys are
   ints, so the polymorphic-compare dispatch is pure overhead here. *)
let rec move_of (q : int) = function
  | [] -> None
  | (p, mv) :: rest -> if (p : int) = q then Some mv else move_of q rest

let child_sleep ~por ~commute ~completed ms sleep explored mv =
  if not por then Pid_set.empty
  else
    match mv with
    | M_begin _ when completed -> Pid_set.empty (* a zero-step call: endpoint *)
    | M_begin _ ->
      Pid_set.filter
        (fun q ->
          match move_of q ms with
          | Some (M_begin (_, prog_q)) -> not (instant prog_q)
          | Some (M_advance _) | None -> false)
        (Pid_set.union sleep explored)
    | M_advance inv_p ->
      (* A completing advance is a finish endpoint: begins must be
         reordered against it (begun-before-finished is observable), but
         commuting advances still slide past — two adjacent non-begin
         moves flank no call start, so no interval relation changes. *)
      Pid_set.filter
        (fun q ->
          match move_of q ms with
          | Some (M_advance inv_q) -> commute inv_p inv_q
          | Some (M_begin (_, prog_q)) -> (not completed) && not (instant prog_q)
          | None -> false)
        (Pid_set.union sleep explored)

(* --- subtree exploration --- *)

type task = {
  t_sim : Sim.t;
  t_meta : pmeta array;
  t_counts : int array; (* completed calls per pid, in lockstep with t_meta *)
  t_mh : int; (* incrementally-maintained slot-hash sum of t_meta *)
  t_sleep : Pid_set.t;
  t_depth : int;
  t_completed : bool; (* the move into this node completed a call *)
}

type sub = {
  s_histories : int;
  s_truncated : int;
  s_states : int;
  s_dedup : int;
  s_por : int;
  s_maxd : int;
  s_violation : Sim.t option;
  s_capped : bool;
  s_orbit : int; (* dedup hits whose canonical key was relabeled *)
  s_fp_distinct : int;
  s_fp_collisions : int;
  s_fp_resizes : int;
  s_fp_slots : int;
  s_spill_segments : int; (* segment files written *)
  s_spill_reloads : int; (* segments read back on a probe miss *)
}

(* How a subtree task may count leaves.

   [B_fixed n]: count exactly up to [n] leaves, then stop "capped"
   immediately after the [n]-th — the canonical sequential semantics.

   [B_shared pool]: draw chunked leases from a shared atomic pool; a task
   that cannot refill stops capped at the same program point (immediately
   after the leaf that drained its allowance).  Leasing is first-come-
   first-served and therefore scheduling-dependent; the reconciliation
   pass in [check] restores the canonical accounting afterwards.  Unused
   allowance is refunded when the task stops, so at jobs=1 the pool drains
   exactly in task order and reconciliation accepts every task as-is. *)
type budget_src = B_fixed of int | B_shared of int Atomic.t

let lease_chunk = 64

let take_lease pool =
  let rec go () =
    let avail = Atomic.get pool in
    if avail <= 0 then 0
    else
      let want = min lease_chunk avail in
      if Atomic.compare_and_set pool avail (avail - want) then want else go ()
  in
  go ()

exception Stopped of Sim.t option (* [Some sim]: violation; [None]: cap hit *)

(* Depth-first exploration of one subtree with a private visited table and
   history allowance.  With [B_fixed] the result is a pure function of the
   task and the budget; with [B_shared] only the {e stop point} may vary
   with scheduling, and it always lies immediately after some counted
   leaf — which is what lets [check] reconcile shared-lease runs against
   the fixed-budget semantics without re-exploring completed tasks. *)
let explore_subtree ~dedup ~por ~commute ~property ~scripts
    ~max_steps_per_history ~budget ~sym ~disk task =
  (* State identity: (incremental hash, exact key) pairs interned to dense
     ints; the visited table and its sleep-set antichains then key on
     ints.  Both tables are task-private, so no synchronization.  With
     [disk = Some (dir, budget_bytes, seg_keys)] the keys are byte-encoded
     instead and both tables live in a {!Spill} store whose segments page
     out to [dir] under the byte budget; the dedup decisions are identical
     (the encoding is faithful to [fp_equal]), only the counters gain
     spill telemetry. *)
  let intern : fp Fp_intern.t = Fp_intern.create ~equal:fp_equal () in
  let store =
    match disk with
    | None -> None
    | Some (dir, budget_bytes, seg_keys) ->
      Some
        (Spill.create ~dir ~seg_keys ~budget_bytes ~chain_zero:[]
           ~chain_bytes:antichain_bytes ())
  in
  let buf = Buffer.create 256 in
  (* Sleep-set antichains, indexed directly by interned id: ids are dense
     (0, 1, 2, ...), so a growable array replaces a second hash lookup. *)
  let visited : Pid_set.t list array ref = ref (Array.make 1024 []) in
  let antichain id =
    let arr = !visited in
    if id < Array.length arr then arr.(id)
    else begin
      let arr' = Array.make (max (2 * Array.length arr) (id + 1)) [] in
      Array.blit arr 0 arr' 0 (Array.length arr);
      visited := arr';
      []
    end
  in
  let histories = ref 0 and truncated = ref 0 and states = ref 0 in
  let dedup_hits = ref 0 and por_prunes = ref 0 and maxd = ref 0 in
  let orbit_hits = ref 0 in
  let credits = ref 0 in (* leaves we may still count before refilling *)
  let leaf ~checked sim =
    incr histories;
    if (not checked) && not (property sim) then raise (Stopped (Some sim));
    decr credits;
    if !credits = 0 then begin
      (match budget with
      | B_fixed _ -> ()
      | B_shared pool -> credits := take_lease pool);
      if !credits = 0 then raise (Stopped None)
    end
  in
  let rec visit sim meta counts mh sleep depth ~completed =
    incr states;
    if depth > !maxd then maxd := depth;
    (* The verdict can change only when a call completes; checking there
       (rather than at leaves alone) is what makes pruning sound: every
       prefix is judged before its extensions are shared or discarded. *)
    let checked =
      completed
      && (if property sim then true else raise (Stopped (Some sim)))
    in
    if depth >= max_steps_per_history then begin
      incr truncated;
      leaf ~checked sim
    end
    else
      match moves scripts meta sim with
      | [] -> leaf ~checked sim
      | ms -> (
        let descend awake =
          ignore
            (List.fold_left
               (fun explored (p, mv) ->
                 let sim', meta', counts', mh', completed =
                   apply_move sim meta counts mh p mv
                 in
                 let sleep' =
                   child_sleep ~por ~commute ~completed ms sleep explored mv
                 in
                 visit sim' meta' counts' mh' sleep' (depth + 1) ~completed;
                 Pid_set.add p explored)
               Pid_set.empty awake)
        in
        match List.filter (fun (p, _) -> not (Pid_set.mem p sleep)) ms with
        | [] ->
          (* Every enabled move is asleep: each is independent of some
             already-explored sibling order, so this branch is covered by
             a representative elsewhere; not a leaf. *)
          incr por_prunes
        | awake ->
          let fresh =
            (not dedup)
            ||
            (* The dedup key — never the live search state — is mapped to
               its orbit-canonical representative; the sleep set crosses
               into the same canonical coordinates before it meets the
               antichain (recorded entries live there too). *)
            let cmeta, perm =
              match sym with
              | None -> (meta, None)
              | Some ctx -> canonical ctx meta
            in
            let cmh = match perm with None -> mh | Some _ -> mh_full cmeta in
            let csleep =
              match perm with
              | None -> sleep
              | Some pi -> Pid_set.map (fun q -> pi.(q)) sleep
            in
            let mem = Sim.memory sim in
            (* Prune iff a prior visit (of the orbit) had a sleep set no
               larger (so no fewer awake moves).  The remaining depth
               budget is deliberately not compared: a revisit may arrive
               shallower (a completed call got there in fewer spin
               iterations) and so see a slightly deeper horizon, but
               comparing budgets re-explores every spin state once per
               distinct arrival depth — the dominant cost on spin-heavy
               searches.  When no branch truncates the budget never binds
               and pruning is exact; when one does, the run is already
               reported incomplete. *)
            let hit =
              match store with
              | None ->
                let key = { fp_mem = mem; fp_meta = cmeta } in
                let id =
                  Fp_intern.intern intern
                    ~hash:(mix (Memory.fp_hash mem) cmh)
                    key
                in
                let entries = antichain id in
                if List.exists (fun sl -> Pid_set.subset sl csleep) entries
                then true
                else begin
                  !visited.(id) <-
                    csleep
                    :: List.filter
                         (fun sl -> not (Pid_set.subset csleep sl))
                         entries;
                  false
                end
              | Some st ->
                let bytes = encode_key buf cmeta mem in
                let id = Spill.intern st ~hash:(hash_bytes bytes) bytes in
                let entries = Spill.chain st id in
                if List.exists (fun sl -> Pid_set.subset sl csleep) entries
                then true
                else begin
                  Spill.set_chain st id
                    (csleep
                    :: List.filter
                         (fun sl -> not (Pid_set.subset csleep sl))
                         entries);
                  false
                end
            in
            if hit then begin
              incr dedup_hits;
              if perm <> None then incr orbit_hits;
              false
            end
            else true
          in
          if fresh then descend awake)
  in
  let initial_credits =
    match budget with B_fixed n -> max 0 n | B_shared pool -> take_lease pool
  in
  let violation, capped =
    if initial_credits <= 0 then (None, true)
    else begin
      credits := initial_credits;
      let outcome =
        match
          visit task.t_sim task.t_meta task.t_counts task.t_mh task.t_sleep
            task.t_depth ~completed:task.t_completed
        with
        | () -> (None, false)
        | exception Stopped v -> (v, v = None)
      in
      (* Return what we did not consume, so later tasks can lease it. *)
      (match budget with
      | B_fixed _ -> ()
      | B_shared pool ->
        ignore (Atomic.fetch_and_add pool !credits);
        credits := 0);
      outcome
    end
  in
  let fp_distinct, fp_collisions, fp_resizes, fp_slots, spill_segs, spill_rl =
    match store with
    | None ->
      ( Fp_intern.distinct intern,
        Fp_intern.collisions intern,
        Fp_intern.resizes intern,
        Fp_intern.slots intern,
        0,
        0 )
    | Some st ->
      let r =
        ( Spill.distinct st,
          Spill.collisions st,
          Spill.resizes st,
          Spill.slots st,
          Spill.spilled st,
          Spill.reloads st )
      in
      Spill.cleanup st;
      r
  in
  { s_histories = !histories;
    s_truncated = !truncated;
    s_states = !states;
    s_dedup = !dedup_hits;
    s_por = !por_prunes;
    s_maxd = !maxd;
    s_violation = violation;
    s_capped = capped;
    s_orbit = !orbit_hits;
    s_fp_distinct = fp_distinct;
    s_fp_collisions = fp_collisions;
    s_fp_resizes = fp_resizes;
    s_fp_slots = fp_slots;
    s_spill_segments = spill_segs;
    s_spill_reloads = spill_rl }

(* Expand the first [split_depth] levels sequentially (POR-aware, property
   checked, leaves and truncations accounted) and collect the depth-
   [split_depth] nodes as independent tasks, in DFS order.  The expansion
   never dedups — frontier nodes must all be produced so that the task
   list, and hence the merged verdict, is a pure function of the input. *)
let expand ~por ~commute ~property ~scripts ~n ~max_steps_per_history
    ~max_histories ~split_depth sim0 =
  let tasks = ref [] in
  let histories = ref 0 and truncated = ref 0 and states = ref 0 in
  let maxd = ref 0 in
  let leaf ~checked sim =
    incr histories;
    if (not checked) && not (property sim) then raise (Stopped (Some sim));
    if !histories >= max_histories then raise (Stopped None)
  in
  let rec visit sim meta counts mh sleep depth ~completed =
    if depth >= split_depth && moves scripts meta sim <> []
       && depth < max_steps_per_history
    then
      tasks :=
        { t_sim = sim;
          t_meta = meta;
          t_counts = counts;
          t_mh = mh;
          t_sleep = sleep;
          t_depth = depth;
          t_completed = completed }
        :: !tasks
    else begin
      incr states;
      if depth > !maxd then maxd := depth;
      let checked =
        completed
        && (if property sim then true else raise (Stopped (Some sim)))
      in
      if depth >= max_steps_per_history then begin
        incr truncated;
        leaf ~checked sim
      end
      else
        match moves scripts meta sim with
        | [] -> leaf ~checked sim
        | ms ->
          ignore
            (List.fold_left
               (fun explored (p, mv) ->
                 if Pid_set.mem p sleep then explored
                 else begin
                   let sim', meta', counts', mh', completed =
                     apply_move sim meta counts mh p mv
                   in
                   let sleep' =
                     child_sleep ~por ~commute ~completed ms sleep explored mv
                   in
                   visit sim' meta' counts' mh' sleep' (depth + 1) ~completed;
                   Pid_set.add p explored
                 end)
               Pid_set.empty ms)
    end
  in
  let stopped =
    match
      visit sim0 (meta0 n) (Array.make n 0) (mh0 n) Pid_set.empty 0
        ~completed:false
    with
    | () -> None
    | exception Stopped v -> Some v
  in
  (List.rev !tasks, !histories, !truncated, !states, !maxd, stopped)

let default_split_depth = 2

let zero_capped_sub =
  { s_histories = 0;
    s_truncated = 0;
    s_states = 0;
    s_dedup = 0;
    s_por = 0;
    s_maxd = 0;
    s_violation = None;
    s_capped = true;
    s_orbit = 0;
    s_fp_distinct = 0;
    s_fp_collisions = 0;
    s_fp_resizes = 0;
    s_fp_slots = 0;
    s_spill_segments = 0;
    s_spill_reloads = 0 }

let check ?tracer ?(max_histories = 1_000_000) ?(max_steps_per_history = 500)
    ?(dedup = true) ?(por = true) ?(commute = Op.commute) ?(lean = true)
    ?(jobs = 1) ?(split_depth = default_split_depth)
    ?(symmetry = Pid_set.empty) ?mem_budget ?spill_dir
    ?(spill_seg_keys = 4096) ~layout ~model ~n ~scripts ~property () =
  (* Monotonic wall clock, not [Sys.time] (which is CPU time and so *shrinks*
     relative to elapsed time exactly when [jobs] > 1 parallelizes the search
     — or inflates, summing across domains, depending on the runtime). *)
  let t0 = Obs.Clock.now_s () in
  let sym = sym_ctx ~n symmetry in
  let spill_base =
    match spill_dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ()) "separation-explore-spill"
  in
  let disk_for tag =
    match mem_budget with
    | None -> None
    | Some b -> Some (Filename.concat spill_base tag, max 0 b, spill_seg_keys)
  in
  (* Per-task stores mkdir only their own leaf directory. *)
  (match mem_budget with
  | None -> ()
  | Some _ -> ( try Sys.mkdir spill_base 0o700 with Sys_error _ -> ()));
  let sim0 = Sim.create ~model ~layout ~n in
  let sim0 = if lean then Sim.lean_mode sim0 else sim0 in
  let split_depth = max 0 split_depth in
  let tasks, pre_h, pre_t, pre_states, pre_maxd, stopped =
    expand ~por ~commute ~property ~scripts ~n ~max_steps_per_history
      ~max_histories ~split_depth sim0
  in
  (* [wall_s] is computed in exactly one place — here — and every other
     reading of the elapsed time (the [explore_wall_seconds] metric) is
     derived from the stats field itself, so the two can never disagree. *)
  let finish ~histories ~truncated ~states ~dedup_hits ~por_prunes ~tasks:k
      ~max_depth ~orbit_hits ~fp_distinct ~fp_collisions ~fp_resizes
      ~fp_slots ~spill_segments ~spill_reloads ~violation ~capped =
    let result =
      { histories;
        truncated;
        complete = violation = None && (not capped) && truncated = 0;
        violation;
        stats =
          { states;
            dedup_hits;
            por_prunes;
            tasks = k;
            max_depth;
            orbit_hits;
            fp_distinct;
            fp_collisions;
            fp_resizes;
            fp_slots;
            spill_segments;
            spill_reloads;
            wall_s = Obs.Clock.elapsed_s ~since:t0 } }
    in
    (match tracer with
    | None -> ()
    | Some tr ->
      Obs.Metrics.observe (Obs.Trace.metrics tr) "explore_wall_seconds"
        ~labels:[] result.stats.wall_s);
    result
  in
  match stopped with
  | Some v ->
    (* The expansion itself found a violation or hit the cap; subtree tasks
       are skipped, deterministically. *)
    finish ~histories:pre_h ~truncated:pre_t ~states:pre_states ~dedup_hits:0
      ~por_prunes:0 ~tasks:0 ~max_depth:pre_maxd ~orbit_hits:0 ~fp_distinct:0
      ~fp_collisions:0 ~fp_resizes:0 ~fp_slots:0 ~spill_segments:0
      ~spill_reloads:0 ~violation:v ~capped:(v = None)
  | None ->
    let k = List.length tasks in
    let indexed = List.mapi (fun i task -> (i, task)) tasks in
    (* Spill directories are derived from the task index (plus an "f"
       suffix for fixed-budget reconciliation re-runs, which must not
       share files with the shared-lease attempt) — deterministic, and
       disjoint across concurrent tasks. *)
    let run_task ~suffix budget (i, task) =
      explore_subtree ~dedup ~por ~commute ~property ~scripts
        ~max_steps_per_history ~budget ~sym
        ~disk:(disk_for (Printf.sprintf "task%d%s" i suffix))
        task
    in
    (* Dynamic work-sharing: tasks are drained from [Parallel.map]'s shared
       atomic queue, and each draws history allowance as chunked leases
       from one shared pool — so no task idles on a private slice of the
       budget while a spin-heavy sibling starves. *)
    let remaining_cap = max 0 (max_histories - pre_h) in
    let pool = Atomic.make remaining_cap in
    let raw = Parallel.map ~jobs (run_task ~suffix:"" (B_shared pool)) indexed in
    (* Reconciliation, in task order: normalize the first-come-first-served
       lease accounting back to the canonical semantics "task [i] may
       count whatever of [max_histories] its predecessors left over".  A
       task is accepted as-is when its recorded run provably equals the
       fixed-budget run — it finished naturally within the remaining
       budget, or it stopped by exhaustion exactly at the remaining budget
       (same stop point, immediately after that leaf).  Anything else
       (starved by concurrent leases, or run past what the sequential
       budget allows) is re-run with the exact fixed budget; re-runs cost
       at most the budget they are given and only arise on capped
       searches.  The accepted list — and therefore every reported number
       and the surviving violation — is a pure function of the task list,
       independent of [jobs] and of lease scheduling. *)
    let subs =
      let budget_left = ref remaining_cap in
      List.map2
        (fun task s ->
          let b = !budget_left in
          if b <= 0 then zero_capped_sub
          else if (not s.s_capped) && s.s_histories < b then begin
            budget_left := b - s.s_histories;
            s
          end
          else if s.s_capped && s.s_histories = b then begin
            budget_left := 0;
            s
          end
          else begin
            let s' = run_task ~suffix:"f" (B_fixed b) task in
            budget_left := b - s'.s_histories;
            s'
          end)
        indexed raw
    in
    (* Task spans are emitted *here*, after the parallel map, in task order,
       from the reconciled per-task stats — never from inside worker
       domains — so the trace is byte-identical for every [jobs].  The span
       ticks are synthetic: cumulative states explored, a deterministic
       stand-in for time. *)
    (match tracer with
    | None -> ()
    | Some tr ->
      ignore
        (List.fold_left
           (fun (i, t_acc) s ->
             let t_end = t_acc + s.s_states in
             Obs.Trace.emit tr
               (Obs.Event.Explore_task
                  { task = i; t0 = t_acc; t1 = t_end; states = s.s_states;
                    dedup_hits = s.s_dedup; por_prunes = s.s_por;
                    histories = s.s_histories; truncated = s.s_truncated;
                    max_depth = s.s_maxd });
             (i + 1, t_end))
           (0, pre_states) subs));
    let violation =
      List.find_map (fun s -> s.s_violation) subs (* first in task order *)
    in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 subs in
    (* Every per-task store removed its own directory; with a budget set,
       drop the (now empty) base directory too, best-effort. *)
    if mem_budget <> None then (try Sys.rmdir spill_base with Sys_error _ -> ());
    finish
      ~histories:(pre_h + sum (fun s -> s.s_histories))
      ~truncated:(pre_t + sum (fun s -> s.s_truncated))
      ~states:(pre_states + sum (fun s -> s.s_states))
      ~dedup_hits:(sum (fun s -> s.s_dedup))
      ~por_prunes:(sum (fun s -> s.s_por))
      ~tasks:k
      ~max_depth:(List.fold_left (fun acc s -> max acc s.s_maxd) pre_maxd subs)
      ~orbit_hits:(sum (fun s -> s.s_orbit))
      ~fp_distinct:(sum (fun s -> s.s_fp_distinct))
      ~fp_collisions:(sum (fun s -> s.s_fp_collisions))
      ~fp_resizes:(sum (fun s -> s.s_fp_resizes))
      ~fp_slots:(sum (fun s -> s.s_fp_slots))
      ~spill_segments:(sum (fun s -> s.s_spill_segments))
      ~spill_reloads:(sum (fun s -> s.s_spill_reloads))
      ~violation
      ~capped:(List.exists (fun s -> s.s_capped) subs)

(* Count interleavings without checking anything (sizing aid).  Dedup and
   POR are off so the count is the literal number of step-level
   interleavings, as in the seed checker. *)
let count ?max_histories ?max_steps_per_history ~layout ~model ~n ~scripts () =
  (check ?max_histories ?max_steps_per_history ~dedup:false ~por:false ~layout
     ~model ~n ~scripts
     ~property:(fun _ -> true) ())
    .histories

(* Internal canonicalization machinery, re-exported under stable builders
   so the test suite can state the canonicalization laws (idempotence,
   invariance under relabelings, pinned slots untouched) directly against
   the production comparator and permutation application. *)
module Testing = struct
  type slot = pmeta

  let idle ~begun ~last : slot = P_idle (begun, last)

  let running ~label ~seq ~resps_rev ~snap : slot =
    P_running
      { program = Program.Return 0 (* never read by key machinery *);
        label;
        label_h = Hashtbl.hash label;
        seq;
        begun = seq + 1;
        resps_rev;
        resps_len = List.length resps_rev;
        resps_h = List.fold_left mix 0 (List.rev resps_rev);
        snap = Array.copy snap }

  let relabel ~perm (meta : slot array) = apply_perm perm meta

  let canonicalize ~symmetry (meta : slot array) =
    match sym_ctx ~n:(Array.length meta) symmetry with
    | None -> (meta, false)
    | Some ctx ->
      let meta', perm = canonical ctx meta in
      (meta', perm <> None)

  let equal = metas_equal

  let slot_equal = pmeta_equal
end
