(* Exhaustive interleaving exploration: a small-scope model checker.

   The paper's histories allow arbitrary interleavings; randomized testing
   samples them, this module enumerates them.  Given a per-process script
   of procedure calls, [check] drives the machine through every possible
   step-level interleaving (depth-first over the persistent state — a
   branch is just a retained binding) and evaluates a property on every
   complete history.

   The naive step-level DFS explodes combinatorially, so three reductions
   make exhaustive checking scale past toy scopes, all of them exploiting
   the persistence of [Sim.t]:

   - State deduplication.  A canonical fingerprint of (memory contents,
     per-process control point) identifies states whose futures coincide;
     a revisited state is pruned.  Soundness needs the fingerprint to
     determine both future behavior and future property verdicts, which is
     why it includes, per running call, the responses received so far (the
     continuation of a deterministic program is a function of them) and a
     snapshot of every process's completed-call count at the call's start
     (Specification-4.1-style verdicts compare a call's start against
     earlier completions).  Begun counts are deliberately not snapshotted:
     began-before-began is not an interval-order relation, so states that
     differ only in the order of concurrent call starts merge.

   - Sleep-set partial-order reduction.  Two enabled moves commute when
     swapping them changes neither future machine behavior nor any
     interval-order relation: two advances whose operations commute
     ([Op.commute]: different cells, or both read-only), two begins
     (scripts read only their own process's state and a begin touches no
     memory), and a begin against a non-completing advance.  A call
     completion is an interval endpoint, so nothing slides past it except
     commuting advances (no call start separates two adjacent non-begin
     moves).  Only one representative order per commuting pair is
     explored.

   - Deterministic frontier parallelism.  The first [split_depth] levels
     are expanded sequentially into independent subtree tasks which fan
     out across domains via [Parallel.map]; each task owns a private
     visited table and a fixed slice of the history budget, so the merged
     verdict is byte-identical for every job count.

   Dedup and POR assume (and [check]'s documentation requires) that the
   property judges each call, at its completion, from the call's own
   result and its interval-order relations (which calls completed before
   it began, which began before it finished) — true of Specification 4.1
   and the GME occupancy predicate — and that scripts consult only the
   script-visible state (own call count and last result).  Both
   reductions can be switched off, which restores the seed checker's
   exact leaf-per-interleaving semantics ([count] does exactly that). *)

module Pid_map = Sim.Pid_map
module Pid_set = Sim.Pid_set

(* What a process does between calls: a PURE function of the machine state
   (branches share nothing, so stateful closures would corrupt the
   search).  [None] means the process is done. *)
type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option

(* A fixed list of calls, performed in order; the per-branch position is
   recovered from the machine itself (number of calls begun so far,
   O(log n) via the simulator's per-process ordinal map). *)
let of_list calls : script =
 fun sim p -> List.nth_opt calls (Sim.call_count sim p)

(* Repeat a call until its result satisfies [until], at most [limit]
   times — e.g. "Poll() until it returns true", the history restriction of
   Section 4. *)
let repeat ?(limit = max_int) ~until (label, program) : script =
 fun sim p ->
  match Sim.last_result sim p with
  | Some r when until r -> None
  | Some _ | None ->
    if Sim.call_count sim p >= limit then None else Some (label, program)

type stats = {
  states : int; (* search nodes visited (dedup/POR-pruned nodes included) *)
  dedup_hits : int; (* nodes pruned because an equivalent state was explored *)
  por_prunes : int; (* nodes whose every enabled move was asleep *)
  tasks : int; (* parallel subtree tasks the frontier split produced *)
  max_depth : int; (* deepest step count reached on any branch *)
  wall_s : float; (* wall-clock seconds (the only jobs-dependent field) *)
}

type result = {
  histories : int; (* complete histories the property was checked on *)
  truncated : int; (* branches cut at [max_steps_per_history] (spin loops) *)
  complete : bool; (* false if a cap stopped or truncated the enumeration *)
  violation : Sim.t option; (* a history falsifying the property *)
  stats : stats;
}

(* --- moves --- *)

type move =
  | M_advance of Op.invocation (* the process's pending operation *)
  | M_begin of string * Op.value Program.t

(* Enabled moves in script order: advance if mid-call, else begin whatever
   the script asks for next.  A process whose script answers [None] is
   done. *)
let moves scripts sim =
  List.filter_map
    (fun ((p : Op.pid), (script : script)) ->
      match Sim.proc_state sim p with
      | Sim.Running _ -> (
        match Sim.peek sim p with
        | Some inv -> Some (p, M_advance inv)
        | None -> assert false (* Running implies a pending operation *))
      | Sim.Terminated -> None
      | Sim.Idle -> (
        match script sim p with
        | None -> None
        | Some (label, program) -> Some (p, M_begin (label, program))))
    scripts

(* --- fingerprinting --- *)

(* Per-running-call metadata the fingerprint needs but the simulator does
   not keep: the responses received so far inside the call (they determine
   the continuation of a deterministic program) and the begun/completed
   call counts of every scripted process at the call's start (they
   determine how interval-order properties will judge the call once it
   completes). *)
type call_meta = {
  resps_rev : Op.value list;
  resps_len : int; (* [List.length resps_rev], maintained incrementally *)
  resps_h : int; (* rolling hash of [resps_rev], maintained incrementally *)
  snap : (Op.pid * int) list;
      (* per-process completed-call counts at this call's start: they
         decide which completions precede the call in the interval order.
         Begun counts are deliberately absent — began-before-began is not
         an interval-order relation, and omitting them lets states that
         differ only in the order of concurrent call starts merge. *)
}

type proc_fp =
  | F_terminated of int * Op.value option (* calls completed, last result *)
  | F_idle of int * Op.value option (* calls begun, last result *)
  | F_running of
      string * int * int * int * Op.value list * (Op.pid * int) list
      (* label, seq, resps length, resps hash, resps, snap — the scalar
         summaries come first so equality fails fast on unequal states
         before walking a (possibly long) spin-response list *)

type fp = (Op.addr * Op.value * Op.pid list) list * proc_fp list

(* The fingerprint is kept as a structural value, not serialized: building
   it shares the live [resps_rev]/[snap] lists, and the visited table
   resolves hash collisions with structural equality, so hashing may
   safely examine only a bounded prefix of (possibly long) spin-response
   lists. *)
let fingerprint scripts_pids sim meta : fp =
  let procs =
    List.map
      (fun p ->
        match Sim.proc_state sim p with
        | Sim.Terminated ->
          F_terminated (Sim.completed_count sim p, Sim.last_result sim p)
        | Sim.Idle -> F_idle (Sim.call_count sim p, Sim.last_result sim p)
        | Sim.Running r ->
          let m = Pid_map.find p meta in
          F_running (r.Sim.label, r.Sim.seq, m.resps_len, m.resps_h,
                     m.resps_rev, m.snap))
      scripts_pids
  in
  (Memory.fingerprint (Sim.memory sim), procs)

(* Rolling-hash mixer for the incremental response hash and the table's
   hash function below. *)
let mix h x = (((h * 31) + x + 1) * 0x2545F491) land max_int

(* The generic [Hashtbl.hash] is unusable here: its traversal is capped at
   256 nodes, and deep in a spin loop every state shares the same 256-node
   prefix (memory plus the newest responses), so all keys collide and
   probes degrade to long structural comparisons.  Instead the scalar
   summaries — including the incrementally maintained response-list hash —
   are folded explicitly; structural equality still decides matches
   exactly, so collisions cost time, never soundness. *)
module Fp_tbl = Hashtbl.Make (struct
  type t = fp

  let equal : fp -> fp -> bool = ( = )

  let hash ((mem, procs) : fp) =
    let h =
      List.fold_left
        (fun h (a, v, links) ->
          List.fold_left mix (mix (mix h a) v) links)
        0x9E3779B9 mem
    in
    List.fold_left
      (fun h pf ->
        match pf with
        | F_terminated (c, r) ->
          mix (mix (mix h 3) c) (match r with None -> min_int | Some v -> v)
        | F_idle (c, r) ->
          mix (mix (mix h 5) c) (match r with None -> min_int | Some v -> v)
        | F_running (label, seq, len, rh, _resps, snap) ->
          let h = mix (mix (mix (mix (mix h 7) (Hashtbl.hash label)) seq) len) rh in
          List.fold_left (fun h (p, c) -> mix (mix h p) c) h snap)
      h procs
end)

(* Execute one move, maintaining the fingerprint metadata.  Returns the new
   machine, the new metadata, and whether the move completed a call (the
   only transitions on which the property verdict can change). *)
let apply_move scripts_pids sim meta p = function
  | M_begin (label, program) ->
    let snap =
      List.map (fun q -> (q, Sim.completed_count sim q)) scripts_pids
    in
    let sim' = Sim.begin_call sim p ~label program in
    if Sim.is_running sim' p then
      ( sim',
        Pid_map.add p
          { resps_rev = []; resps_len = 0; resps_h = 0; snap }
          meta,
        false )
    else (sim', Pid_map.remove p meta, true) (* zero-step call completed *)
  | M_advance _ ->
    let sim' = Sim.advance sim p in
    if Sim.is_running sim' p then
      let resp =
        match Sim.last_step sim' with
        | Some s -> s.History.response
        | None -> assert false
      in
      let m = Pid_map.find p meta in
      ( sim',
        Pid_map.add p
          { m with
            resps_rev = resp :: m.resps_rev;
            resps_len = m.resps_len + 1;
            resps_h = mix m.resps_h resp }
          meta,
        false )
    else (sim', Pid_map.remove p meta, true)

(* Sleep set for the child reached by executing [p]'s move [mv]: of the
   processes asleep here or already explored as older siblings, keep those
   whose pending move commutes with the executed one.

   Two advances commute when their operations do ({!Op.commute}).  Two
   begins commute as long as neither completes a zero-step call on the
   spot: scripts consult only their own process's state, a begin touches
   no memory, and swapping two call starts changes no interval-order
   relation (began-before-began is not one) — whereas a completion is an
   interval endpoint, so nothing commutes across a move that completed a
   call ([completed], known only after applying the move).  By the same
   reasoning a begin also commutes with a non-completing advance: the
   advance's memory effect is invisible to the begin (no memory access,
   script reads own state only) and no endpoint separates them. *)
let instant (program : Op.value Program.t) = Program.next_invocation program = None

let child_sleep ~por ~completed ms sleep explored mv =
  if not por then Pid_set.empty
  else
    match mv with
    | M_begin _ when completed -> Pid_set.empty (* a zero-step call: endpoint *)
    | M_begin _ ->
      Pid_set.filter
        (fun q ->
          match List.assoc_opt q ms with
          | Some (M_begin (_, prog_q)) -> not (instant prog_q)
          | Some (M_advance _) | None -> false)
        (Pid_set.union sleep explored)
    | M_advance inv_p ->
      (* A completing advance is a finish endpoint: begins must be
         reordered against it (begun-before-finished is observable), but
         commuting advances still slide past — two adjacent non-begin
         moves flank no call start, so no interval relation changes. *)
      Pid_set.filter
        (fun q ->
          match List.assoc_opt q ms with
          | Some (M_advance inv_q) -> Op.commute inv_p inv_q
          | Some (M_begin (_, prog_q)) -> (not completed) && not (instant prog_q)
          | None -> false)
        (Pid_set.union sleep explored)

(* --- subtree exploration --- *)

type task = {
  t_sim : Sim.t;
  t_meta : call_meta Pid_map.t;
  t_sleep : Pid_set.t;
  t_depth : int;
  t_completed : bool; (* the move into this node completed a call *)
}

type sub = {
  s_histories : int;
  s_truncated : int;
  s_states : int;
  s_dedup : int;
  s_por : int;
  s_maxd : int;
  s_violation : Sim.t option;
  s_capped : bool;
}

exception Stopped of Sim.t option (* [Some sim]: violation; [None]: cap hit *)

(* Depth-first exploration of one subtree with a private visited table and
   history budget.  Deterministic: depends only on the task, never on
   sibling subtrees or scheduling. *)
let explore_subtree ~dedup ~por ~property ~scripts ~scripts_pids
    ~max_steps_per_history ~budget task =
  let visited : Pid_set.t list ref Fp_tbl.t = Fp_tbl.create 1024 in
  let histories = ref 0 and truncated = ref 0 and states = ref 0 in
  let dedup_hits = ref 0 and por_prunes = ref 0 and maxd = ref 0 in
  let leaf ~checked sim =
    incr histories;
    if (not checked) && not (property sim) then raise (Stopped (Some sim));
    if !histories >= budget then raise (Stopped None)
  in
  let rec visit sim meta sleep depth ~completed =
    incr states;
    if depth > !maxd then maxd := depth;
    (* The verdict can change only when a call completes; checking there
       (rather than at leaves alone) is what makes pruning sound: every
       prefix is judged before its extensions are shared or discarded. *)
    let checked =
      completed
      && (if property sim then true else raise (Stopped (Some sim)))
    in
    if depth >= max_steps_per_history then begin
      incr truncated;
      leaf ~checked sim
    end
    else
      match moves scripts sim with
      | [] -> leaf ~checked sim
      | ms -> (
        let descend awake =
          ignore
            (List.fold_left
               (fun explored (p, mv) ->
                 let sim', meta', completed =
                   apply_move scripts_pids sim meta p mv
                 in
                 let sleep' = child_sleep ~por ~completed ms sleep explored mv in
                 visit sim' meta' sleep' (depth + 1) ~completed;
                 Pid_set.add p explored)
               Pid_set.empty awake)
        in
        match List.filter (fun (p, _) -> not (Pid_set.mem p sleep)) ms with
        | [] ->
          (* Every enabled move is asleep: each is independent of some
             already-explored sibling order, so this branch is covered by
             a representative elsewhere; not a leaf. *)
          incr por_prunes
        | awake ->
          let fresh =
            (not dedup)
            ||
            let key = fingerprint scripts_pids sim meta in
            let entries =
              match Fp_tbl.find_opt visited key with
              | Some r -> r
              | None ->
                let r = ref [] in
                Fp_tbl.add visited key r;
                r
            in
            (* Prune iff a prior visit had a sleep set no larger (so no
               fewer awake moves).  The remaining depth budget is
               deliberately not compared: a revisit may arrive shallower
               (a completed call got there in fewer spin iterations) and
               so see a slightly deeper horizon, but comparing budgets
               re-explores every spin state once per distinct arrival
               depth — the dominant cost on spin-heavy searches.  When no
               branch truncates the budget never binds and pruning is
               exact; when one does, the run is already reported
               incomplete. *)
            if List.exists (fun sl -> Pid_set.subset sl sleep) !entries then begin
              incr dedup_hits;
              false
            end
            else begin
              entries :=
                sleep
                :: List.filter (fun sl -> not (Pid_set.subset sleep sl)) !entries;
              true
            end
          in
          if fresh then descend awake)
  in
  let violation, capped =
    if budget <= 0 then (None, true)
    else
      match
        visit task.t_sim task.t_meta task.t_sleep task.t_depth
          ~completed:task.t_completed
      with
      | () -> (None, false)
      | exception Stopped v -> (v, v = None)
  in
  { s_histories = !histories;
    s_truncated = !truncated;
    s_states = !states;
    s_dedup = !dedup_hits;
    s_por = !por_prunes;
    s_maxd = !maxd;
    s_violation = violation;
    s_capped = capped }

(* Expand the first [split_depth] levels sequentially (POR-aware, property
   checked, leaves and truncations accounted) and collect the depth-
   [split_depth] nodes as independent tasks, in DFS order.  The expansion
   never dedups — frontier nodes must all be produced so that the task
   list, and hence the merged verdict, is a pure function of the input. *)
let expand ~por ~property ~scripts ~scripts_pids ~max_steps_per_history
    ~max_histories ~split_depth sim0 =
  let tasks = ref [] in
  let histories = ref 0 and truncated = ref 0 and states = ref 0 in
  let maxd = ref 0 in
  let leaf ~checked sim =
    incr histories;
    if (not checked) && not (property sim) then raise (Stopped (Some sim));
    if !histories >= max_histories then raise (Stopped None)
  in
  let rec visit sim meta sleep depth ~completed =
    if depth >= split_depth && moves scripts sim <> []
       && depth < max_steps_per_history
    then
      tasks :=
        { t_sim = sim;
          t_meta = meta;
          t_sleep = sleep;
          t_depth = depth;
          t_completed = completed }
        :: !tasks
    else begin
      incr states;
      if depth > !maxd then maxd := depth;
      let checked =
        completed
        && (if property sim then true else raise (Stopped (Some sim)))
      in
      if depth >= max_steps_per_history then begin
        incr truncated;
        leaf ~checked sim
      end
      else
        match moves scripts sim with
        | [] -> leaf ~checked sim
        | ms ->
          ignore
            (List.fold_left
               (fun explored (p, mv) ->
                 if Pid_set.mem p sleep then explored
                 else begin
                   let sim', meta', completed =
                     apply_move scripts_pids sim meta p mv
                   in
                   let sleep' = child_sleep ~por ~completed ms sleep explored mv in
                   visit sim' meta' sleep' (depth + 1) ~completed;
                   Pid_set.add p explored
                 end)
               Pid_set.empty ms)
    end
  in
  let stopped =
    match visit sim0 Pid_map.empty Pid_set.empty 0 ~completed:false with
    | () -> None
    | exception Stopped v -> Some v
  in
  (List.rev !tasks, !histories, !truncated, !states, !maxd, stopped)

let default_split_depth = 2

let check ?tracer ?(max_histories = 1_000_000) ?(max_steps_per_history = 500)
    ?(dedup = true) ?(por = true) ?(jobs = 1)
    ?(split_depth = default_split_depth) ~layout ~model ~n ~scripts ~property
    () =
  (* Monotonic wall clock, not [Sys.time] (which is CPU time and so *shrinks*
     relative to elapsed time exactly when [jobs] > 1 parallelizes the search
     — or inflates, summing across domains, depending on the runtime). *)
  let t0 = Obs.Clock.now_s () in
  let sim0 = Sim.create ~model ~layout ~n in
  let scripts_pids = List.map fst scripts in
  let split_depth = max 0 split_depth in
  let tasks, pre_h, pre_t, pre_states, pre_maxd, stopped =
    expand ~por ~property ~scripts ~scripts_pids ~max_steps_per_history
      ~max_histories ~split_depth sim0
  in
  let finish ~histories ~truncated ~states ~dedup_hits ~por_prunes ~tasks:k
      ~max_depth ~violation ~capped =
    { histories;
      truncated;
      complete = violation = None && (not capped) && truncated = 0;
      violation;
      stats =
        { states;
          dedup_hits;
          por_prunes;
          tasks = k;
          max_depth;
          wall_s = Obs.Clock.elapsed_s ~since:t0 } }
  in
  let observe result =
    (match tracer with
    | None -> ()
    | Some tr ->
      Obs.Metrics.observe (Obs.Trace.metrics tr) "explore_wall_seconds"
        ~labels:[] result.stats.wall_s);
    result
  in
  match stopped with
  | Some v ->
    (* The expansion itself found a violation or hit the cap; subtree tasks
       are skipped, deterministically. *)
    observe
      (finish ~histories:pre_h ~truncated:pre_t ~states:pre_states
         ~dedup_hits:0 ~por_prunes:0 ~tasks:0 ~max_depth:pre_maxd ~violation:v
         ~capped:(v = None))
  | None ->
    let k = List.length tasks in
    (* Fixed deterministic budget split: task [i] may count at most
       [budget i] further histories, independent of job count and of the
       other tasks' actual sizes. *)
    let remaining_cap = max_histories - pre_h in
    let budget i =
      if k = 0 then 0
      else (remaining_cap / k) + if i < remaining_cap mod k then 1 else 0
    in
    let subs =
      Parallel.map ~jobs
        (fun (i, task) ->
          explore_subtree ~dedup ~por ~property ~scripts ~scripts_pids
            ~max_steps_per_history ~budget:(budget i) task)
        (List.mapi (fun i t -> (i, t)) tasks)
    in
    (* Task spans are emitted *here*, after the parallel map, in task order,
       from per-task stats — never from inside worker domains — so the trace
       is byte-identical for every [jobs].  The span ticks are synthetic:
       cumulative states explored, a deterministic stand-in for time. *)
    (match tracer with
    | None -> ()
    | Some tr ->
      ignore
        (List.fold_left
           (fun (i, t_acc) s ->
             let t_end = t_acc + s.s_states in
             Obs.Trace.emit tr
               (Obs.Event.Explore_task
                  { task = i; t0 = t_acc; t1 = t_end; states = s.s_states;
                    dedup_hits = s.s_dedup; por_prunes = s.s_por;
                    histories = s.s_histories; truncated = s.s_truncated;
                    max_depth = s.s_maxd });
             (i + 1, t_end))
           (0, pre_states) subs));
    let violation =
      List.find_map (fun s -> s.s_violation) subs (* first in task order *)
    in
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 subs in
    observe
      (finish
         ~histories:(pre_h + sum (fun s -> s.s_histories))
         ~truncated:(pre_t + sum (fun s -> s.s_truncated))
         ~states:(pre_states + sum (fun s -> s.s_states))
         ~dedup_hits:(sum (fun s -> s.s_dedup))
         ~por_prunes:(sum (fun s -> s.s_por))
         ~tasks:k
         ~max_depth:(List.fold_left (fun acc s -> max acc s.s_maxd) pre_maxd subs)
         ~violation
         ~capped:(List.exists (fun s -> s.s_capped) subs))

(* Count interleavings without checking anything (sizing aid).  Dedup and
   POR are off so the count is the literal number of step-level
   interleavings, as in the seed checker. *)
let count ?max_histories ?max_steps_per_history ~layout ~model ~n ~scripts () =
  (check ?max_histories ?max_steps_per_history ~dedup:false ~por:false ~layout
     ~model ~n ~scripts
     ~property:(fun _ -> true) ())
    .histories
