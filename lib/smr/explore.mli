(** Exhaustive interleaving exploration — a small-scope model checker.

    Enumerates every step-level interleaving of the given per-process call
    scripts (the machine's persistent state makes branching free) and
    checks a property on each complete history.  Use for small
    configurations; [max_histories] bounds the search. *)

type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option
(** What a process does when idle: the next call, or [None] when done.
    Must be a pure function of the machine state — search branches share
    nothing, so stateful closures would corrupt the enumeration. *)

val of_list : (string * Op.value Program.t) list -> script
(** Perform exactly these calls, in order. *)

val repeat :
  ?limit:int -> until:(Op.value -> bool) -> string * Op.value Program.t -> script
(** Repeat one call until its result satisfies [until] (or [limit] calls
    have completed) — e.g. "Poll() until it returns true", the history
    restriction of Section 4. *)

type result = {
  histories : int;  (** histories (leaves) the property was checked on *)
  truncated : int;
      (** branches cut at [max_steps_per_history] — spin loops make some
          branches infinite; truncated prefixes are still property-checked *)
  complete : bool;  (** whether every interleaving was fully enumerated *)
  violation : Sim.t option;  (** a history falsifying the property *)
}

val check :
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  property:(Sim.t -> bool) ->
  unit ->
  result
(** Checking the property only on complete histories is sufficient for
    safety properties over recorded calls (violations persist). *)

val count :
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  unit ->
  int
(** Number of interleavings, up to the cap. *)
