(** Exhaustive interleaving exploration — a small-scope model checker.

    Enumerates the step-level interleavings of the given per-process call
    scripts (the machine's persistent state makes branching free) and
    checks a property on each complete history.  Three reductions make
    exhaustive checking scale well past the naive DFS: canonical
    state-fingerprint deduplication, sleep-set partial-order reduction
    over {!Op.commute}, and a deterministic frontier split across OCaml 5
    domains.  Verdicts and statistics (wall time aside) are byte-identical
    for every [jobs] value.

    {b Soundness contract.}  With [dedup]/[por] on (the default), the
    property must be a function of the recorded calls' results and of
    their interval order (which call began/completed before which) — as
    Specification 4.1 and the GME occupancy predicate are — not of raw
    timestamps, step lists or RMR counts; and scripts must decide their
    next call from the script-visible state only (own call count, own
    last result), as {!of_list} and {!repeat} do.  Pass [~dedup:false
    ~por:false] to recover the seed checker's literal
    one-leaf-per-interleaving semantics for arbitrary properties. *)

type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option
(** What a process does when idle: the next call, or [None] when done.
    Must be a pure function of the machine state — search branches share
    nothing, so stateful closures would corrupt the enumeration. *)

val of_list : (string * Op.value Program.t) list -> script
(** Perform exactly these calls, in order. *)

val repeat :
  ?limit:int -> until:(Op.value -> bool) -> string * Op.value Program.t -> script
(** Repeat one call until its result satisfies [until] (or [limit] calls
    have completed) — e.g. "Poll() until it returns true", the history
    restriction of Section 4. *)

type stats = {
  states : int;
      (** search nodes visited, pruned nodes included — the headline
          scalability number to compare against a [~dedup:false
          ~por:false] run *)
  dedup_hits : int;  (** nodes pruned as equivalent to an explored state *)
  por_prunes : int;  (** nodes whose every enabled move was asleep *)
  tasks : int;  (** independent subtree tasks the frontier split produced *)
  max_depth : int;  (** deepest step count reached on any branch *)
  wall_s : float;
      (** elapsed seconds on the monotonic {e wall} clock ({!Obs.Clock},
          not [Sys.time], which measures CPU time and is distorted by
          multi-domain runs); the only field that varies with [jobs] and
          across hosts — keep it out of any byte-comparison or golden
          fixture.  Traced runs also record it as the
          [explore_wall_seconds] histogram, which {!Obs.Metrics.rows}
          likewise excludes from deterministic output by default. *)
}

type result = {
  histories : int;  (** histories (leaves) the property was checked on *)
  truncated : int;
      (** branches cut at [max_steps_per_history] — spin loops make some
          branches infinite; truncated prefixes are still property-checked *)
  complete : bool;  (** whether every interleaving was fully enumerated *)
  violation : Sim.t option;  (** a history falsifying the property *)
  stats : stats;
}

val check :
  ?tracer:Obs.Trace.t ->
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?commute:(Op.invocation -> Op.invocation -> bool) ->
  ?lean:bool ->
  ?jobs:int ->
  ?split_depth:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  property:(Sim.t -> bool) ->
  unit ->
  result
(** The property is evaluated whenever a call completes and at every leaf;
    checking it on prefixes is sufficient for safety properties over
    recorded calls (violations persist) and is what makes pruning sound.

    [max_histories] is a deterministic budget: after the first
    [split_depth] (default 2) levels are expanded into subtree tasks, the
    remaining budget is shared dynamically — tasks draw chunked leases
    from one atomic pool, so no task idles on a private slice while a
    spin-heavy sibling starves — and a reconciliation pass in task order
    then restores the canonical sequential accounting ("each task may
    count whatever its predecessors left over"), so the reported counts
    are independent of [jobs] and of lease scheduling.

    [lean] (default true) steps the machine in {!Sim.lean_mode}: per-step
    history records and the replayable trace are not accumulated, which
    removes the dominant per-step allocations.  Call records and all
    counters are kept, so any property within the soundness contract
    above — a function of recorded calls and their interval order — is
    unaffected; see docs/MODEL.md, "Exploration fast path".  Pass
    [~lean:false] when the property (or post-mortem use of the returned
    [violation] machine) needs {!Sim.steps} or {!Sim.replay}.

    [commute] (default {!Op.commute}) is the independence relation the
    sleep-set POR consults for advance/advance pairs.  A replacement must
    be {e sound for the scripts being explored}: whenever it declares two
    invocations independent, executing them in either order from any
    reachable state must produce the same memory fingerprint and the same
    responses (the {!Commute_check} standard).  {!Analysis.Independence}
    computes such relations statically from the algorithm's CFGs; an
    unsound relation silently prunes real interleavings.  Verdicts and all
    reported counts remain byte-identical across [jobs] for any fixed
    [commute] — the relation changes {e which} states are pruned, never
    the determinism of the accounting.

    [jobs] (default 1) fans the subtree tasks out across domains via
    {!Parallel.map}; every field of the result except [stats.wall_s] is
    byte-identical for every value.

    With [tracer], one {!Obs.Event.Explore_task} span per subtree task is
    emitted after the parallel phase, in task order, with synthetic ticks
    (cumulative states explored) — so the trace too is byte-identical for
    every [jobs].  Wall time goes only into the [explore_wall_seconds]
    metric, which deterministic renderings exclude. *)

val count :
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  unit ->
  int
(** Number of step-level interleavings, up to the cap; runs with both
    reductions off so the count is literal. *)
