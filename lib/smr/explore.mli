(** Exhaustive interleaving exploration — a small-scope model checker.

    Enumerates the step-level interleavings of the given per-process call
    scripts (the machine's persistent state makes branching free) and
    checks a property on each complete history.  Three reductions make
    exhaustive checking scale well past the naive DFS: canonical
    state-fingerprint deduplication, sleep-set partial-order reduction
    over {!Op.commute}, and a deterministic frontier split across OCaml 5
    domains.  Verdicts and statistics (wall time aside) are byte-identical
    for every [jobs] value.

    {b Soundness contract.}  With [dedup]/[por] on (the default), the
    property must be a function of the recorded calls' results and of
    their interval order (which call began/completed before which) — as
    Specification 4.1 and the GME occupancy predicate are — not of raw
    timestamps, step lists or RMR counts; and scripts must decide their
    next call from the script-visible state only (own call count, own
    last result), as {!of_list} and {!repeat} do.  Pass [~dedup:false
    ~por:false] to recover the seed checker's literal
    one-leaf-per-interleaving semantics for arbitrary properties. *)

type script = Sim.t -> Op.pid -> (string * Op.value Program.t) option
(** What a process does when idle: the next call, or [None] when done.
    Must be a pure function of the machine state — search branches share
    nothing, so stateful closures would corrupt the enumeration. *)

val of_list : (string * Op.value Program.t) list -> script
(** Perform exactly these calls, in order. *)

val repeat :
  ?limit:int -> until:(Op.value -> bool) -> string * Op.value Program.t -> script
(** Repeat one call until its result satisfies [until] (or [limit] calls
    have completed) — e.g. "Poll() until it returns true", the history
    restriction of Section 4. *)

type stats = {
  states : int;
      (** search nodes visited, pruned nodes included — the headline
          scalability number to compare against a [~dedup:false
          ~por:false] run *)
  dedup_hits : int;  (** nodes pruned as equivalent to an explored state *)
  por_prunes : int;  (** nodes whose every enabled move was asleep *)
  tasks : int;  (** independent subtree tasks the frontier split produced *)
  max_depth : int;  (** deepest step count reached on any branch *)
  orbit_hits : int;
      (** dedup hits whose canonical key required a non-identity waiter
          relabeling — the pruning attributable to symmetry reduction
          specifically (0 when [symmetry] is empty) *)
  fp_distinct : int;
      (** distinct dedup keys (orbit representatives) interned, summed
          over subtree tasks *)
  fp_collisions : int;
      (** distinct keys that landed on an already-occupied full hash —
          hash-quality diagnostic, never a soundness signal *)
  fp_resizes : int;  (** intern-table slot doublings, summed over tasks *)
  fp_slots : int;
      (** intern-table slot capacity, summed over tasks; [fp_distinct /.
          fp_slots] is the aggregate occupancy *)
  spill_segments : int;
      (** segment files written by the spill store ([mem_budget] runs
          only; rewrites of reloaded dirty segments included) *)
  spill_reloads : int;
      (** spilled segments read back on a probe miss ([mem_budget] runs
          only) *)
  wall_s : float;
      (** elapsed seconds on the monotonic {e wall} clock ({!Obs.Clock},
          not [Sys.time], which measures CPU time and is distorted by
          multi-domain runs); the only field that varies with [jobs] and
          across hosts — keep it out of any byte-comparison or golden
          fixture.  Traced runs also record it as the
          [explore_wall_seconds] histogram, which {!Obs.Metrics.rows}
          likewise excludes from deterministic output by default. *)
}

type result = {
  histories : int;  (** histories (leaves) the property was checked on *)
  truncated : int;
      (** branches cut at [max_steps_per_history] — spin loops make some
          branches infinite; truncated prefixes are still property-checked *)
  complete : bool;  (** whether every interleaving was fully enumerated *)
  violation : Sim.t option;  (** a history falsifying the property *)
  stats : stats;
}

val detect_symmetry :
  ?fuel:int ->
  values:Op.value list ->
  (Op.pid * (string * Op.value Program.t)) list ->
  Sim.Pid_set.t
(** The pids (of the given (pid, labeled first call) candidates) whose
    calls are literally interchangeable with the first candidate's: same
    label, and bisimilar program trees — invocations compared structurally
    at every node, continuations followed for every response in [values] —
    with [Ll] refused anywhere (a load-link records its pid in the memory
    fingerprint, breaking permutation invariance).  Candidates are
    typically one representative call per waiter; {!repeat}-style scripts
    stay symmetric whenever their underlying call is, since they branch
    only on own-process counts and results.

    Detection is conservative by construction: [fuel] (default 4096)
    bounds the nodes visited per comparison and exhaustion declines the
    candidate, so unbounded (spinning) call bodies fall back to the empty
    set rather than diverge.  It is {e exact} only when [values] covers
    every response the programs can receive — pass
    [Analysis.Lint.value_domain] (or a superset) for catalog algorithms.
    Fewer than two matching candidates yield the empty set.  The returned
    set is meant for {!check}'s [symmetry] argument; the {e property}'s
    invariance under waiter permutation (true of Specification 4.1) is the
    caller's responsibility. *)

val check :
  ?tracer:Obs.Trace.t ->
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?commute:(Op.invocation -> Op.invocation -> bool) ->
  ?lean:bool ->
  ?jobs:int ->
  ?split_depth:int ->
  ?symmetry:Sim.Pid_set.t ->
  ?mem_budget:int ->
  ?spill_dir:string ->
  ?spill_seg_keys:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  property:(Sim.t -> bool) ->
  unit ->
  result
(** The property is evaluated whenever a call completes and at every leaf;
    checking it on prefixes is sufficient for safety properties over
    recorded calls (violations persist) and is what makes pruning sound.

    [max_histories] is a deterministic budget: after the first
    [split_depth] (default 2) levels are expanded into subtree tasks, the
    remaining budget is shared dynamically — tasks draw chunked leases
    from one atomic pool, so no task idles on a private slice while a
    spin-heavy sibling starves — and a reconciliation pass in task order
    then restores the canonical sequential accounting ("each task may
    count whatever its predecessors left over"), so the reported counts
    are independent of [jobs] and of lease scheduling.

    [lean] (default true) steps the machine in {!Sim.lean_mode}: per-step
    history records and the replayable trace are not accumulated, which
    removes the dominant per-step allocations.  Call records and all
    counters are kept, so any property within the soundness contract
    above — a function of recorded calls and their interval order — is
    unaffected; see docs/MODEL.md, "Exploration fast path".  Pass
    [~lean:false] when the property (or post-mortem use of the returned
    [violation] machine) needs {!Sim.steps} or {!Sim.replay}.

    [commute] (default {!Op.commute}) is the independence relation the
    sleep-set POR consults for advance/advance pairs.  A replacement must
    be {e sound for the scripts being explored}: whenever it declares two
    invocations independent, executing them in either order from any
    reachable state must produce the same memory fingerprint and the same
    responses (the {!Commute_check} standard).  {!Analysis.Independence}
    computes such relations statically from the algorithm's CFGs; an
    unsound relation silently prunes real interleavings.  Verdicts and all
    reported counts remain byte-identical across [jobs] for any fixed
    [commute] — the relation changes {e which} states are pruned, never
    the determinism of the accounting.

    [jobs] (default 1) fans the subtree tasks out across domains via
    {!Parallel.map}; every field of the result except [stats.wall_s] is
    byte-identical for every value.

    [symmetry] (default empty) names interchangeable pids: before a state
    meets the dedup tables, its key — never the live search state — is
    relabeled to a canonical orbit representative under permutation of
    those pids, and its sleep set crosses into the same canonical
    coordinates, so permuted twins merge (the factorial cut symmetry
    reduction is named for).  {b Sound only when} the named pids run
    literally interchangeable scripts with no [Ll] — use
    {!detect_symmetry} — and the property is invariant under their
    permutation, as Specification 4.1 is.  The verdict ([violation]
    presence, [complete]) is unchanged by a sound [symmetry]; [states],
    [dedup_hits] and [histories] legitimately shrink.  All reported
    numbers stay byte-identical across [jobs] for any fixed [symmetry].

    [mem_budget] (bytes) switches the dedup tables to byte-encoded keys in
    a segmented, LRU-windowed {!Spill} store: segments beyond the budget
    page out to files under [spill_dir]/task<i> (default: a
    "separation-explore-spill" directory under the system temp dir) in
    segments of [spill_seg_keys] (default 4096) keys, read back on probe
    misses, and deleted when the task finishes.  The byte encoding is
    faithful to the structural key equality, so every dedup decision —
    and hence the verdict and every search counter ([states],
    [dedup_hits], [orbit_hits], [histories], …) — is byte-identical to
    an unbudgeted run; only the intern-table diagnostics
    ([fp_collisions], [fp_resizes], [fp_slots]) change, because they now
    describe the byte-key index, and [spill_segments]/[spill_reloads]
    become meaningful.  Two budgeted runs differing only in the budget
    agree on everything except those two spill counters.  Directories
    are derived from the task index, so concurrent [check] calls must
    use distinct [spill_dir]s.

    With [tracer], one {!Obs.Event.Explore_task} span per subtree task is
    emitted after the parallel phase, in task order, with synthetic ticks
    (cumulative states explored) — so the trace too is byte-identical for
    every [jobs].  Wall time goes only into the [explore_wall_seconds]
    metric, recorded from the very [stats.wall_s] value the result
    carries (one clock read; the two can never disagree), which
    deterministic renderings exclude. *)

val count :
  ?max_histories:int ->
  ?max_steps_per_history:int ->
  layout:Var.layout ->
  model:Cost_model.t ->
  n:int ->
  scripts:(Op.pid * script) list ->
  unit ->
  int
(** Number of step-level interleavings, up to the cap; runs with both
    reductions off so the count is literal. *)

(** Internal canonicalization machinery under stable builders, so the test
    suite can state the canonicalization laws — idempotence, invariance
    under waiter relabelings, pinned slots never moved — directly against
    the production comparator and permutation application.  Not for
    production use. *)
module Testing : sig
  type slot
  (** One process's control point as the fingerprint sees it. *)

  val idle : begun:int -> last:Op.value option -> slot

  val running :
    label:string ->
    seq:int ->
    resps_rev:Op.value list ->
    snap:int array ->
    slot
  (** [snap] is the per-pid completed-call snapshot at the call's start;
      its length must equal the slot array's. *)

  val relabel : perm:int array -> slot array -> slot array
  (** Image of the array under [perm] (old pid -> new pid), slot positions
      and every running slot's snapshot re-indexed alike. *)

  val canonicalize : symmetry:Sim.Pid_set.t -> slot array -> slot array * bool
  (** The canonical orbit representative of the array's dedup key, and
      whether a non-identity relabeling produced it. *)

  val equal : slot array -> slot array -> bool
  (** The fingerprint's exact metadata equality. *)

  val slot_equal : slot -> slot -> bool
end
