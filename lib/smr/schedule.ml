(* Scheduling drivers.

   The paper's histories allow arbitrary interleavings ("process steps can be
   scheduled arbitrarily", Sec. 2).  This module runs a set of processes,
   each described by a behavior function that decides — whenever the process
   is between calls — which procedure to call next, under a chosen
   interleaving policy.  Random policies are seeded and therefore
   reproducible; the adversary of Section 6 does not use this module (it
   constructs its schedule by hand). *)

type action =
  | Start of string * Op.value Program.t (* begin this call *)
  | Pause (* stay idle for now; may be asked again later *)
  | Stop (* terminate *)

type behavior = Sim.t -> Op.pid -> action

type policy =
  | Round_robin
  | Random_seed of int
  | Fixed of Op.pid list (* poke processes in exactly this order *)
  | Semi_sync of { delta : int; seed : int }
      (* the semi-synchronous model of Sec. 3: consecutive steps of the
         same (runnable) process are at most [delta] scheduling ticks
         apart — otherwise random *)
  | Pct of { seed : int; depth : int; horizon : int }
      (* probabilistic concurrency testing: random distinct priorities,
         highest-priority runnable process steps, with [depth - 1] random
         priority-change points in [1, horizon] *)

let policy_name = function
  | Round_robin -> "round-robin"
  | Random_seed s -> Printf.sprintf "random(seed=%d)" s
  | Fixed _ -> "fixed"
  | Semi_sync { delta; seed } -> Printf.sprintf "semi-sync(delta=%d,seed=%d)" delta seed
  | Pct { seed; depth; horizon } ->
    Printf.sprintf "pct(seed=%d,depth=%d,horizon=%d)" seed depth horizon

(* Poke one process: advance it if mid-call, otherwise consult its behavior.
   Returns [None] if the process cannot make progress right now. *)
let poke behavior sim p =
  match Sim.proc_state sim p with
  | Sim.Running _ -> Some (Sim.advance sim p)
  | Sim.Terminated -> None
  | Sim.Idle -> (
    match behavior sim p with
    | Start (label, program) -> Some (Sim.begin_call sim p ~label program)
    | Stop -> Some (Sim.terminate sim p)
    | Pause -> None)

let run ?(max_events = 1_000_000) ~policy ~behavior ~pids sim =
  match policy with
  | Fixed order ->
    List.fold_left
      (fun sim p -> match poke behavior sim p with Some sim' -> sim' | None -> sim)
      sim order
  | Round_robin ->
    let rec loop sim budget =
      if budget <= 0 then sim
      else
        let progressed, sim =
          List.fold_left
            (fun (progressed, sim) p ->
              match poke behavior sim p with
              | Some sim' -> (true, sim')
              | None -> (progressed, sim))
            (false, sim) pids
        in
        if progressed then loop sim (budget - List.length pids) else sim
    in
    loop sim max_events
  | Semi_sync { delta; seed } ->
    let rng = Random.State.make [| seed |] in
    (* Staleness = ticks since the process last made progress; a process
       whose staleness reaches [delta] is scheduled before anyone else,
       enforcing the model's step-gap bound.  Kept in a map keyed by pid:
       the per-tick rebuild below is O(n log n), where the former
       association list (one [List.assoc_opt] per process per tick) made
       every tick quadratic in the process count. *)
    let stale staleness p =
      match Sim.Pid_map.find_opt p staleness with Some s -> s | None -> 0
    in
    (* One tick advanced: [q] progressed, everyone else ages by one.
       Rebuilding from [runnable] also drops terminated processes. *)
    let bump staleness runnable q =
      List.fold_left
        (fun m p ->
          Sim.Pid_map.add p (if p = q then 0 else stale staleness p + 1) m)
        Sim.Pid_map.empty runnable
    in
    let rec loop sim budget staleness =
      let runnable =
        List.filter (fun p -> not (Sim.is_terminated sim p)) pids
      in
      if budget <= 0 || runnable = [] then sim
      else
        let overdue =
          List.filter
            (fun p -> stale staleness p >= delta - 1 && Sim.is_running sim p)
            runnable
        in
        let pick =
          match overdue with
          | p :: _ -> p
          | [] -> List.nth runnable (Random.State.int rng (List.length runnable))
        in
        (match poke behavior sim pick with
        | Some sim' -> loop sim' (budget - 1) (bump staleness runnable pick)
        | None ->
          (* The pick is paused (so nobody was overdue).  Sweep once to
             find anyone that can progress; a fruitless sweep ends the
             run. *)
          let progressed, sim =
            List.fold_left
              (fun (progressed, sim) p ->
                match progressed with
                | Some _ -> (progressed, sim)
                | None -> (
                  match poke behavior sim p with
                  | Some sim' -> (Some p, sim')
                  | None -> (None, sim)))
              (None, sim)
              (List.filter (fun p -> p <> pick) runnable)
          in
          (match progressed with
          | Some q -> loop sim (budget - 1) (bump staleness runnable q)
          | None -> sim))
    in
    loop sim max_events Sim.Pid_map.empty
  | Pct { seed; depth; horizon } ->
    let rng = Random.State.make [| seed |] in
    (* Distinct initial priorities: a seeded Fisher-Yates shuffle of the
       pids; earlier shuffle positions get higher priority.  Demotions at
       change points assign fresh priorities below every initial one, so
       priorities stay distinct throughout and the preferred process is
       always unique. *)
    let order = Array.of_list pids in
    let len = Array.length order in
    for i = len - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let prio = Hashtbl.create (max 16 len) in
    Array.iteri (fun i p -> Hashtbl.replace prio p (len - i)) order;
    let priority p = match Hashtbl.find_opt prio p with Some v -> v | None -> 0 in
    (* The d-1 change points, as scheduling-step indices. *)
    let change_points =
      List.sort_uniq compare
        (List.init (max 0 (depth - 1)) (fun _ ->
             1 + Random.State.int rng (max 1 horizon)))
    in
    let next_low = ref 0 in
    let demote p =
      Hashtbl.replace prio p !next_low;
      decr next_low
    in
    let rec loop sim budget steps cps =
      if budget <= 0 then sim
      else
        let runnable =
          List.filter (fun p -> not (Sim.is_terminated sim p)) pids
        in
        if runnable = [] then sim
        else
          let by_priority =
            List.sort (fun p q -> compare (priority q) (priority p)) runnable
          in
          (* Step the highest-priority process that can make progress;
             paused processes are passed over without a priority change. *)
          let rec first_progress = function
            | [] -> None
            | p :: rest -> (
              match poke behavior sim p with
              | Some sim' -> Some (p, sim')
              | None -> first_progress rest)
          in
          (match first_progress by_priority with
          | None -> sim (* everyone pauses: nothing can ever progress *)
          | Some (p, sim') ->
            let steps = steps + 1 in
            let cps =
              match cps with
              | c :: rest when steps >= c ->
                demote p;
                rest
              | cps -> cps
            in
            loop sim' (budget - 1) steps cps)
    in
    loop sim max_events 0 change_points
  | Random_seed seed ->
    let rng = Random.State.make [| seed |] in
    let rec loop sim budget stuck =
      let runnable =
        List.filter (fun p -> not (Sim.is_terminated sim p)) pids
      in
      if budget <= 0 || runnable = [] then sim
      else if stuck > 2 * List.length runnable then
        (* Many consecutive failed pokes: sweep every runnable process once
           to decide whether anyone can still progress.  (A behavior must
           not mutate its own state when it answers [Pause].) *)
        let progressed, sim =
          List.fold_left
            (fun (progressed, sim) p ->
              if progressed then (progressed, sim)
              else
                match poke behavior sim p with
                | Some sim' -> (true, sim')
                | None -> (false, sim))
            (false, sim) runnable
        in
        if progressed then loop sim (budget - 1) 0 else sim
      else
        let p = List.nth runnable (Random.State.int rng (List.length runnable)) in
        match poke behavior sim p with
        | Some sim' -> loop sim' (budget - 1) 0
        | None -> loop sim budget (stuck + 1)
    in
    loop sim max_events 0

(* A behavior combinator: perform the given calls in order, then stop. *)
let script calls =
  (* Pre-build the per-process work lists: the former lazy [List.assoc_opt]
     seeding made the first poke of each process a linear scan — quadratic
     across n processes.  First binding wins on duplicate pids, exactly as
     [List.assoc_opt] resolved them. *)
  let remaining = Hashtbl.create (max 16 (List.length calls)) in
  List.iter
    (fun (p, l) -> if not (Hashtbl.mem remaining p) then Hashtbl.add remaining p l)
    calls;
  fun (_ : Sim.t) p ->
    match Hashtbl.find_opt remaining p with
    | None | Some [] -> Stop
    | Some ((label, program) :: rest) ->
      Hashtbl.replace remaining p rest;
      Start (label, program)
