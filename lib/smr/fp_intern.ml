(* Fingerprint interning: map arbitrary keys to dense small integers.

   The explorer identifies a search state by a (cheap, incrementally
   maintained) integer hash plus an exact key that confirms hash matches.
   Interning separates the two concerns: the caller supplies the hash and
   the key once per state, gets back a small int, and every downstream
   structure (visited states, sleep-set antichains) indexes on that int.
   The exact key is consulted only when two entries share a hash — either
   a revisit (the common dedup case) or a genuine collision, which costs
   one [equal] call and never soundness: distinct keys always receive
   distinct ids.

   The table is hand-rolled rather than a [Hashtbl]: the caller already
   computed the hash, so re-hashing the key (as [Hashtbl] would) and the
   option allocation of [find_opt] are pure overhead — this lookup is the
   single hottest call in the explorer's dedup path.  Layout: open
   addressing with linear probing over two flat int arrays (stored hash
   and id per slot, [-1] = empty) plus a dense key array indexed by id.
   A probe that doesn't match costs one int load per slot — no pointer
   chasing through chain cells — and the load factor is kept under 1/2 so
   probe runs stay short. *)

type 'a t = {
  equal : 'a -> 'a -> bool;
  mutable hashes : int array; (* stored full hash per slot *)
  mutable ids : int array; (* interned id per slot; -1 = empty *)
  mutable mask : int; (* slot count - 1 (slot count is a power of two) *)
  mutable keys : 'a array; (* exact key per id, dense; keys.(0) garbage
                              until the first intern installs it *)
  mutable next : int; (* next id = number of distinct keys so far *)
  mutable collisions : int; (* distinct keys that shared a full hash *)
  mutable resizes : int; (* times the slot array doubled *)
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(size = 1024) ~equal () =
  let cap = pow2_at_least size 16 in
  { equal;
    hashes = Array.make cap 0;
    ids = Array.make cap (-1);
    mask = cap - 1;
    keys = [||];
    next = 0;
    collisions = 0;
    resizes = 0 }

let grow_slots t =
  let cap = 2 * (t.mask + 1) in
  let hashes = Array.make cap 0 in
  let ids = Array.make cap (-1) in
  let mask = cap - 1 in
  let old_ids = t.ids and old_hashes = t.hashes in
  Array.iteri
    (fun i id ->
      if id >= 0 then begin
        let h = old_hashes.(i) in
        let j = ref (h land mask) in
        while ids.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        hashes.(!j) <- h;
        ids.(!j) <- id
      end)
    old_ids;
  t.hashes <- hashes;
  t.ids <- ids;
  t.mask <- mask;
  t.resizes <- t.resizes + 1

let intern t ~hash key =
  let mask = t.mask in
  let hashes = t.hashes and ids = t.ids in
  (* [saw_hash]: a slot with this full hash but a different key exists —
     a genuine collision, counted once per newly interned key. *)
  let rec probe i saw_hash =
    let id = ids.(i) in
    if id < 0 then begin
      if saw_hash then t.collisions <- t.collisions + 1;
      let id = t.next in
      t.next <- id + 1;
      if id = 0 then t.keys <- Array.make 16 key
      else if id >= Array.length t.keys then begin
        let keys = Array.make (2 * Array.length t.keys) key in
        Array.blit t.keys 0 keys 0 id;
        t.keys <- keys
      end;
      t.keys.(id) <- key;
      hashes.(i) <- hash;
      ids.(i) <- id;
      (* keep the load factor under 1/2 so probe runs stay short *)
      if 2 * t.next > mask then grow_slots t;
      id
    end
    else if hashes.(i) = hash then
      if t.equal t.keys.(id) key then id
      else probe ((i + 1) land mask) true
    else probe ((i + 1) land mask) saw_hash
  in
  probe (hash land mask) false

let distinct t = t.next

let collisions t = t.collisions

let resizes t = t.resizes

let slots t = t.mask + 1
