(* Ordered fan-out over OCaml 5 domains.

   A fresh set of domains per call (no persistent pool): experiment runs
   are orders of magnitude longer than Domain.spawn, and per-call domains
   make nesting trivial — a worker that fans out again just runs
   sequentially (guarded by Domain.is_main_domain), so the runner can
   parallelize across experiments while each experiment's own point-level
   fan-out degrades gracefully inside a worker. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 || not (Domain.is_main_domain ()) then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f input.(i) with
          | y -> out.(i) <- Some y
          | exception e ->
            ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some y -> y | None -> assert false (* failure was raised *))
         out)
  end
