(** Cost models: RMR and message accounting per memory operation.

    A model is a persistent fold over executed steps.  Models never influence
    execution, only classify it, so a recorded history can be re-accounted
    under any number of models after the fact (cf. experiment E5). *)

type step_cost = {
  rmr : bool;  (** the step is a remote memory reference under this model *)
  messages : int;
      (** interconnect messages the step generates (Sec. 8 accounting) *)
}

type t

val name : t -> string

val account : t -> Op.pid -> Op.invocation -> wrote:bool -> t * step_cost
(** Account one executed operation.  [wrote] reports whether the operation
    was nontrivial in this execution (e.g. a successful CAS). *)

val predict : t -> Op.pid -> Op.invocation -> bool option
(** Whether applying this operation next would be an RMR: [Some b] when the
    classification does not depend on the operation's outcome (always the
    case in DSM), [None] when it does. *)

val make :
  name:string ->
  account:(Op.pid -> Op.invocation -> wrote:bool -> t * step_cost) ->
  predict:(Op.pid -> Op.invocation -> bool option) ->
  t
(** Build a model from its accounting function; the function returns the
    successor model, making custom models persistent by construction. *)

val make_stateful :
  name:string ->
  account:('s -> Op.pid -> Op.invocation -> wrote:bool -> 's * step_cost) ->
  predict:('s -> Op.pid -> Op.invocation -> bool option) ->
  's ->
  t
(** Build a model from an explicit state and a state-transforming
    accounting function.  The wrapper is shared across steps that leave
    the state {e physically} unchanged, so a no-op step (e.g. a cache hit
    that moves nothing) allocates nothing — the property the explorer's
    stepping hot path relies on.  Accounting functions should return their
    input state ([==]) whenever a step changes nothing. *)

val dsm : Var.layout -> t
(** The DSM model: an access is an RMR iff the address lives in another
    processor's memory module; every RMR is one interconnect message. *)

val local : step_cost
(** The zero cost of a local step. *)
