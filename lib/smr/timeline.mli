(** ASCII rendering of a history: one column per process, one row per
    event-carrying tick.  For small runs (examples, CLI traces).

    Cells: [r7]/[w7]/[c7]/[L7]/[S7]/[F7]/[X7]/[T7] are
    read/write/CAS/LL/SC/FAA/FAS/TAS on address 7, with a [*] suffix when
    the step was an RMR under the run's primary model; [(label] begins a
    call and [)=v] returns from it.

    Both axes are capped — [max_cols] (default 64) process columns and
    [max_rows] (default 512) event-carrying ticks — and a truncated render
    ends with explicit ["[sampled: ...]"] trailer lines, so rendering a
    huge open-system history degrades to a sample instead of an unbounded
    grid.  The defaults leave every small run (all the examples and
    goldens) byte-identical to the uncapped renderer. *)

val render : ?width:int -> ?max_cols:int -> ?max_rows:int -> Sim.t -> string

val print : ?width:int -> ?max_cols:int -> ?max_rows:int -> Sim.t -> unit
