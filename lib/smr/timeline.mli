(** ASCII rendering of a history: one column per process, one row per
    event-carrying tick.  For small runs (examples, CLI traces).

    Cells: [r7]/[w7]/[c7]/[L7]/[S7]/[F7]/[X7]/[T7] are
    read/write/CAS/LL/SC/FAA/FAS/TAS on address 7, with a [*] suffix when
    the step was an RMR under the run's primary model; [(label] begins a
    call and [)=v] returns from it. *)

val render : ?width:int -> Sim.t -> string

val print : ?width:int -> Sim.t -> unit
