(* Spill-to-disk fingerprint storage: a string-keyed interning table whose
   key bytes and per-id payloads live in fixed-size segments that page out
   to binary files under a byte budget.

   The explorer's in-memory dedup tables ([Fp_intern] plus a dense
   antichain array) retain every distinct state for the whole search, so
   the largest verifiable scope is bounded by RAM.  This store keeps the
   same outward contract — intern a (hash, exact key) pair to a dense id,
   read and update the per-id sleep-set antichain — but holds the bulky
   parts (key bytes, antichains) in segments of [seg_keys] consecutive
   ids.  The hot index (stored hash and id per slot, two flat int arrays,
   open addressing with linear probing exactly as in [Fp_intern]) stays
   resident: at 16 bytes per state it is two orders of magnitude smaller
   than the keys it indexes.  Segments beyond the [budget_bytes] resident
   window are marshalled to files in [dir] (least-recently-touched first)
   and read back on a probe miss; a reloaded segment whose antichains were
   updated since the last write is rewritten on its next eviction.

   Everything is deterministic for a deterministic probe sequence: ids are
   first-seen dense, eviction order is a pure function of the touch order,
   and file names derive from the segment index alone — so two runs of the
   same search produce identical ids, identical spill/reload counters, and
   byte-identical files.  The store is single-owner (one explorer task);
   concurrent tasks use disjoint [dir]s. *)

type 'c seg = {
  mutable keys : string array; (* [||] while paged out *)
  mutable chains : 'c array; (* [||] while paged out *)
  mutable count : int; (* ids filled in this segment *)
  mutable bytes : int; (* resident footprint estimate *)
  mutable dirty : bool; (* chains changed since the last write *)
  mutable written : bool; (* a file for this segment exists *)
  mutable stamp : int; (* LRU clock value of the last touch *)
}

type 'c t = {
  dir : string;
  seg_keys : int;
  budget : int;
  chain_zero : 'c;
  chain_bytes : 'c -> int;
  mutable segs : 'c seg array;
  mutable nsegs : int;
  (* resident open-addressed index: full hash and id per slot, -1 = empty *)
  mutable hashes : int array;
  mutable ids : int array;
  mutable mask : int;
  mutable next : int;
  mutable collisions : int;
  mutable resizes : int;
  mutable resident : int; (* bytes held by resident segments *)
  mutable tick : int;
  mutable spilled : int; (* segment files written (rewrites included) *)
  mutable reloads : int; (* segments read back on a probe miss *)
  mutable dir_made : bool;
}

let no_seg () =
  { keys = [||];
    chains = [||];
    count = 0;
    bytes = 0;
    dirty = false;
    written = false;
    stamp = 0 }

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ~dir ?(seg_keys = 4096) ~budget_bytes ~chain_zero ~chain_bytes () =
  let cap = pow2_at_least 16 16 in
  { dir;
    seg_keys = max 16 seg_keys;
    budget = max 0 budget_bytes;
    chain_zero;
    chain_bytes;
    segs = Array.make 8 (no_seg ());
    nsegs = 0;
    hashes = Array.make cap 0;
    ids = Array.make cap (-1);
    mask = cap - 1;
    next = 0;
    collisions = 0;
    resizes = 0;
    resident = 0;
    tick = 0;
    spilled = 0;
    reloads = 0;
    dir_made = false }

let touch t s =
  t.tick <- t.tick + 1;
  s.stamp <- t.tick

let seg_path t i = Filename.concat t.dir (Printf.sprintf "seg%06d.bin" i)

let ensure_dir t =
  if not t.dir_made then begin
    (try Sys.mkdir t.dir 0o700 with Sys_error _ -> ());
    t.dir_made <- true
  end

let write_seg t i s =
  ensure_dir t;
  let oc = open_out_bin (seg_path t i) in
  Marshal.to_channel oc (s.keys, s.chains, s.count) [];
  close_out oc;
  s.written <- true;
  s.dirty <- false;
  t.spilled <- t.spilled + 1

let evict t i s =
  if s.dirty || not s.written then write_seg t i s;
  t.resident <- t.resident - s.bytes;
  s.keys <- [||];
  s.chains <- [||]

let resident s = Array.length s.keys > 0

(* Page out least-recently-touched segments until the window fits the
   budget.  [keep] segments (the one being filled or probed) are pinned,
   so the window never shrinks below what the current operation needs —
   a budget smaller than two segments degrades to thrashing, not to a
   wrong answer. *)
let enforce_budget t ~keep ~keep2 =
  while
    t.resident > t.budget
    &&
    let best = ref (-1) and best_stamp = ref max_int in
    for i = 0 to t.nsegs - 1 do
      let s = t.segs.(i) in
      if resident s && i <> keep && i <> keep2 && s.stamp < !best_stamp
      then begin
        best := i;
        best_stamp := s.stamp
      end
    done;
    if !best < 0 then false
    else begin
      evict t !best t.segs.(!best);
      true
    end
  do
    ()
  done

let load t i s =
  let ic = open_in_bin (seg_path t i) in
  let keys, chains, count = Marshal.from_channel ic in
  close_in ic;
  assert (count = s.count);
  s.keys <- keys;
  s.chains <- chains;
  t.resident <- t.resident + s.bytes;
  t.reloads <- t.reloads + 1

let ensure_resident t i =
  let s = t.segs.(i) in
  if not (resident s) then begin
    load t i s;
    touch t s;
    enforce_budget t ~keep:i ~keep2:(t.next / t.seg_keys)
  end
  else touch t s;
  s

let get_key t id =
  let s = ensure_resident t (id / t.seg_keys) in
  s.keys.(id mod t.seg_keys)

let chain t id =
  let s = ensure_resident t (id / t.seg_keys) in
  s.chains.(id mod t.seg_keys)

let set_chain t id c =
  let i = id / t.seg_keys in
  let s = ensure_resident t i in
  let j = id mod t.seg_keys in
  let delta = t.chain_bytes c - t.chain_bytes s.chains.(j) in
  s.bytes <- s.bytes + delta;
  t.resident <- t.resident + delta;
  s.chains.(j) <- c;
  s.dirty <- true;
  enforce_budget t ~keep:i ~keep2:(t.next / t.seg_keys)

let grow_slots t =
  let cap = 2 * (t.mask + 1) in
  let hashes = Array.make cap 0 in
  let ids = Array.make cap (-1) in
  let mask = cap - 1 in
  let old_ids = t.ids and old_hashes = t.hashes in
  Array.iteri
    (fun i id ->
      if id >= 0 then begin
        let h = old_hashes.(i) in
        let j = ref (h land mask) in
        while ids.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        hashes.(!j) <- h;
        ids.(!j) <- id
      end)
    old_ids;
  t.hashes <- hashes;
  t.ids <- ids;
  t.mask <- mask;
  t.resizes <- t.resizes + 1

(* ~64 bytes of header/index overhead per key beyond the payload bytes. *)
let key_overhead = 64

let append_key t key =
  let id = t.next in
  t.next <- id + 1;
  let i = id / t.seg_keys in
  if i >= t.nsegs then begin
    if i >= Array.length t.segs then begin
      let segs = Array.make (2 * Array.length t.segs) (no_seg ()) in
      Array.blit t.segs 0 segs 0 t.nsegs;
      t.segs <- segs
    end;
    t.segs.(i) <-
      { keys = Array.make t.seg_keys "";
        chains = Array.make t.seg_keys t.chain_zero;
        count = 0;
        bytes = 0;
        dirty = false;
        written = false;
        stamp = 0 };
    t.nsegs <- i + 1
  end;
  let s = t.segs.(i) in
  (* the filling segment is created resident and stays pinned *)
  assert (resident s);
  let j = id mod t.seg_keys in
  s.keys.(j) <- key;
  s.count <- s.count + 1;
  s.dirty <- true;
  let b = String.length key + key_overhead in
  s.bytes <- s.bytes + b;
  t.resident <- t.resident + b;
  touch t s;
  enforce_budget t ~keep:i ~keep2:(-1);
  id

let intern t ~hash key =
  let mask = t.mask in
  let rec probe i saw_hash =
    let id = t.ids.(i) in
    if id < 0 then begin
      if saw_hash then t.collisions <- t.collisions + 1;
      let id = append_key t key in
      (* [append_key] may evict but never rehashes, so slot [i] is still
         the right home for this hash. *)
      t.hashes.(i) <- hash;
      t.ids.(i) <- id;
      if 2 * t.next > mask then grow_slots t;
      id
    end
    else if t.hashes.(i) = hash then
      if String.equal (get_key t id) key then id
      else probe ((i + 1) land mask) true
    else probe ((i + 1) land mask) saw_hash
  in
  probe (hash land mask) false

let key = get_key

let distinct t = t.next

let collisions t = t.collisions

let resizes t = t.resizes

let slots t = t.mask + 1

let segments t = t.nsegs

let spilled t = t.spilled

let reloads t = t.reloads

let cleanup t =
  for i = 0 to t.nsegs - 1 do
    if t.segs.(i).written then try Sys.remove (seg_path t i) with Sys_error _ -> ()
  done;
  if t.dir_made then try Sys.rmdir t.dir with Sys_error _ -> ()
