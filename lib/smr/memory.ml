(* Persistent shared memory.

   Besides cell contents the store tracks, per cell: the last process to have
   performed a nontrivial operation on it (the "sees" relation of Def. 6.4
   needs it), the set of processes holding a valid load-link on it, and
   whether more than one process has ever written it (condition 3 of the
   regularity predicate, Def. 6.6).  Everything is a persistent map so that
   machine snapshots are O(1). *)

module Addr_map = Map.Make (Int)
module Pid_set = Set.Make (Int)

type cell = {
  value : Op.value;
  last_writer : Op.pid option;
  links : Pid_set.t; (* processes holding a valid LL on this cell *)
  writers : Pid_set.t; (* every process that ever overwrote this cell *)
}

type t = { layout : Var.layout; cells : cell Addr_map.t }

let fresh_cell layout a =
  { value = Var.layout_init layout a;
    last_writer = None;
    links = Pid_set.empty;
    writers = Pid_set.empty }

let create layout = { layout; cells = Addr_map.empty }

let cell t a =
  match Addr_map.find_opt a t.cells with
  | Some c -> c
  | None -> fresh_cell t.layout a

let get t a = (cell t a).value

let last_writer t a = (cell t a).last_writer

let writers t a = Pid_set.elements (cell t a).writers

let ll_valid t ~pid a = Pid_set.mem pid (cell t a).links

type applied = {
  memory : t;
  response : Op.value;
  wrote : bool; (* the operation was nontrivial in this execution *)
  read_from : Op.pid option;
      (* last (nontrivial) writer of the cell if the operation observed the
         cell's value, i.e. everything except a blind [Write] *)
}

let apply t ~pid inv =
  let a = Op.addr_of inv in
  let c = cell t a in
  let { Op.response; new_value } =
    Op.execute ~current:c.value ~ll_valid:(Pid_set.mem pid c.links) inv
  in
  let observed_value =
    match inv with Op.Write _ -> false | _ -> true
  in
  let read_from = if observed_value then c.last_writer else None in
  let c' =
    match new_value with
    | None ->
      (* Trivial operation; an [Ll] additionally records a link. *)
      (match inv with
      | Op.Ll _ -> { c with links = Pid_set.add pid c.links }
      | _ -> c)
    | Some v ->
      (* Nontrivial: overwrite, take last-writer, invalidate every link. *)
      { value = v;
        last_writer = Some pid;
        links = Pid_set.empty;
        writers = Pid_set.add pid c.writers }
  in
  { memory = { t with cells = Addr_map.add a c' t.cells };
    response;
    wrote = new_value <> None;
    read_from }

let layout t = t.layout

let dump t =
  Addr_map.fold
    (fun a c acc -> (a, c.value) :: acc)
    t.cells []
  |> List.rev

(* Canonical behavioral fingerprint: the facts future operations can
   observe — cell values and valid load-links.  Cells indistinguishable
   from a fresh cell are omitted, so a store written back to its initial
   value fingerprints identically to one never touched.  Last-writer and
   writer-set bookkeeping is deliberately excluded: it feeds the Section 6
   analyses, not operation responses. *)
let fingerprint t =
  Addr_map.fold
    (fun a c acc ->
      let links = Pid_set.elements c.links in
      if links = [] && c.value = Var.layout_init t.layout a then acc
      else (a, c.value, links) :: acc)
    t.cells []
  |> List.rev
