(* Persistent shared memory.

   Besides cell contents the store tracks, per cell: the last process to have
   performed a nontrivial operation on it (the "sees" relation of Def. 6.4
   needs it), the set of processes holding a valid load-link on it, and
   whether more than one process has ever written it (condition 3 of the
   regularity predicate, Def. 6.6).  Everything is a persistent map so that
   machine snapshots are O(1). *)

module Addr_map = Map.Make (Int)
module Pid_set = Set.Make (Int)

type cell = {
  value : Op.value;
  last_writer : Op.pid option;
  links : Pid_set.t; (* processes holding a valid LL on this cell *)
  writers : Pid_set.t; (* every process that ever overwrote this cell *)
}

type t = { layout : Var.layout; cells : cell Addr_map.t; fp_hash : int }

let fresh_cell layout a =
  { value = Var.layout_init layout a;
    last_writer = None;
    links = Pid_set.empty;
    writers = Pid_set.empty }

(* Whether the cell is behaviorally indistinguishable from a never-touched
   cell: initial value, no valid load-links.  Last-writer and writer-set
   metadata is deliberately ignored — it feeds the Section 6 analyses, not
   operation responses.  Monomorphic comparisons only ([Op.value_equal],
   [Pid_set.is_empty]): this runs on the fingerprint hot path, and
   polymorphic [=] would silently slow or break it if [Op.value] ever
   grows beyond [int]. *)
let fresh_like layout a c =
  Pid_set.is_empty c.links && Op.value_equal c.value (Var.layout_init layout a)

(* Rolling mixer shared by the per-cell hash; mirrors Explore's mixer so
   hash quality is uniform across the dedup pipeline. *)
let mix h x = (((h * 31) + x + 1) * 0x2545F491) land max_int

(* Contribution of one cell to the running behavioral hash.  Fresh-like
   cells contribute 0, so a store written back to its initial state hashes
   identically to one never touched.  Contributions combine by integer
   addition (commutative and invertible), which is what makes the hash
   maintainable as an O(1) delta per [apply]. *)
let cell_contrib layout a c =
  if fresh_like layout a c then 0
  else
    Pid_set.fold
      (fun p h -> mix h p)
      c.links
      (mix (mix 0x531AB597 a) c.value)

let create layout = { layout; cells = Addr_map.empty; fp_hash = 0 }

let cell t a =
  match Addr_map.find_opt a t.cells with
  | Some c -> c
  | None -> fresh_cell t.layout a

let get t a = (cell t a).value

let last_writer t a = (cell t a).last_writer

let writers t a = Pid_set.elements (cell t a).writers

let ll_valid t ~pid a = Pid_set.mem pid (cell t a).links

type applied = {
  memory : t;
  response : Op.value;
  wrote : bool; (* the operation was nontrivial in this execution *)
  read_from : Op.pid option;
      (* last (nontrivial) writer of the cell if the operation observed the
         cell's value, i.e. everything except a blind [Write] *)
}

let apply t ~pid inv =
  let a = Op.addr_of inv in
  let c_opt = Addr_map.find_opt a t.cells in
  let c = match c_opt with Some c -> c | None -> fresh_cell t.layout a in
  let { Op.response; new_value } =
    Op.execute ~current:c.value ~ll_valid:(Pid_set.mem pid c.links) inv
  in
  let observed_value =
    match inv with Op.Write _ -> false | _ -> true
  in
  let read_from = if observed_value then c.last_writer else None in
  let c' =
    match new_value with
    | None ->
      (* Trivial operation; an [Ll] additionally records a link. *)
      (match inv with
      | Op.Ll _ when not (Pid_set.mem pid c.links) ->
        { c with links = Pid_set.add pid c.links }
      | _ -> c)
    | Some v ->
      (* Nontrivial: overwrite, take last-writer, invalidate every link. *)
      { value = v;
        last_writer = Some pid;
        links = Pid_set.empty;
        writers = Pid_set.add pid c.writers }
  in
  (* Incremental behavioral hash: subtract the old cell's contribution,
     add the new one's — an O(1) delta per operation, which is what makes
     {!fp_hash} constant-time for the explorer.  A trivial operation that
     leaves the cell untouched ([c' == c]) changes neither the hash nor
     the map; an untouched absent cell is not even materialized. *)
  let memory =
    if c' == c then t
    else
      { t with
        cells = Addr_map.add a c' t.cells;
        fp_hash =
          t.fp_hash + (cell_contrib t.layout a c' - cell_contrib t.layout a c) }
  in
  { memory; response; wrote = new_value <> None; read_from }

let layout t = t.layout

let dump t =
  Addr_map.fold
    (fun a c acc -> (a, c.value) :: acc)
    t.cells []
  |> List.rev

(* Canonical behavioral fingerprint: the facts future operations can
   observe — cell values and valid load-links.  Cells indistinguishable
   from a fresh cell are omitted, so a store written back to its initial
   value fingerprints identically to one never touched.  Last-writer and
   writer-set bookkeeping is deliberately excluded: it feeds the Section 6
   analyses, not operation responses. *)
let fingerprint t =
  Addr_map.fold
    (fun a c acc ->
      if fresh_like t.layout a c then acc
      else (a, c.value, Pid_set.elements c.links) :: acc)
    t.cells []
  |> List.rev

(* Canonical byte encoding of {!fingerprint}, appended to [buf]: for each
   non-fresh cell in address order, the address, the value, the link count
   and the link pids in ascending order, each as a little-endian 64-bit
   word.  Exactly the facts {!same_fingerprint} compares — two stores have
   equal encodings iff they have equal fingerprints — which is what lets
   the explorer's spill-to-disk mode key its tables on bytes instead of
   live structures without changing a single dedup decision. *)
let blit_fingerprint t buf =
  Addr_map.iter
    (fun a c ->
      if not (fresh_like t.layout a c) then begin
        Buffer.add_int64_le buf (Int64.of_int a);
        Buffer.add_int64_le buf (Int64.of_int c.value);
        Buffer.add_int64_le buf (Int64.of_int (Pid_set.cardinal c.links));
        Pid_set.iter
          (fun p -> Buffer.add_int64_le buf (Int64.of_int p))
          c.links
      end)
    t.cells

(* --- constant-time behavioral summary (the explorer's hot path) --- *)

let fp_hash t = t.fp_hash

(* Behavioral equality: the two stores respond identically to every future
   operation sequence — i.e. their {!fingerprint}s are equal — decided
   without building either fingerprint list.  Cells absent from one side
   compare against the other's fresh view, so a store written back to its
   initial state equals one never touched.  Cost is O(cells) on the first
   structural mismatch-free walk, but the explorer only calls this to
   confirm a hash match, so the common path is two stores that really are
   equal and share most of their (persistent) spine. *)
let same_fingerprint t1 t2 =
  t1.cells == t2.cells
  || (t1.fp_hash = t2.fp_hash
     && Addr_map.for_all
          (fun a c1 ->
            let c2 = cell t2 a in
            c1 == c2
            || (Op.value_equal c1.value c2.value
               && Pid_set.equal c1.links c2.links))
          t1.cells
     && Addr_map.for_all
          (fun a c2 -> Addr_map.mem a t1.cells || fresh_like t2.layout a c2)
          t2.cells)
