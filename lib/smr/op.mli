(** Atomic operation vocabulary of the simulated shared-memory machine.

    The paper's machine (Section 2) offers atomic reads, writes,
    Compare-And-Swap and Load-Linked/Store-Conditional; Section 7 additionally
    discusses Fetch-And-Increment/Add and Fetch-And-Store, and Section 3
    Test-And-Set.  All of them are represented here.  Cells hold integers;
    richer types are layered on top by {!Var}. *)

type pid = int
(** Process identifier; processes are numbered [0 .. n-1]. *)

type addr = int
(** Address of a shared memory cell, allocated by {!Var.Ctx}. *)

type value = int
(** Contents of a cell and response of an operation. *)

val value_equal : value -> value -> bool
(** Monomorphic equality on cell values.  Hot paths compare through this
    rather than polymorphic [=], so a future richer [value] representation
    cannot silently degrade or break them. *)

(** One atomic memory operation. Responses: [Read]/[Ll] return the cell value;
    [Write] returns [0]; [Cas]/[Sc] return [1] on success and [0] on failure;
    [Faa]/[Fas]/[Tas] return the previous cell value. *)
type invocation =
  | Read of addr
  | Write of addr * value  (** unconditional overwrite *)
  | Cas of addr * value * value  (** [Cas (a, expected, update)] *)
  | Ll of addr  (** load-linked *)
  | Sc of addr * value  (** store-conditional; succeeds iff the link is valid *)
  | Faa of addr * value  (** fetch-and-add by a constant delta *)
  | Fas of addr * value  (** fetch-and-store (swap) *)
  | Tas of addr  (** test-and-set: fetch old value, store 1 *)

(** Operation kind, forgetting operands. *)
type kind = K_read | K_write | K_cas | K_ll | K_sc | K_faa | K_fas | K_tas

val kind : invocation -> kind

val all_kinds : kind list
(** Every kind, in declaration order — exhaustiveness hooks for the static
    analyzer ({!Analysis}) and the commute differential check. *)

val kind_name : kind -> string
(** Lower-case mnemonic ("read", "cas", ...) for reports. *)

val addr_of : invocation -> addr
(** The cell an invocation acts on. *)

val invocation_equal : invocation -> invocation -> bool
(** Monomorphic structural equality: same constructor, same operands.
    {!Explore.detect_symmetry} compares per-waiter programs invocation by
    invocation through this. *)

val is_read_only : invocation -> bool
(** [true] iff the operation can never overwrite the cell ([Read], [Ll]). *)

val commute : invocation -> invocation -> bool
(** Static independence for partial-order reduction: [commute a b] holds
    when executing [a] and [b] (by different processes) in either order
    yields the same memory state and the same two responses — they target
    different cells, or are both read-only.  Conservative on comparison
    primitives, whose triviality depends on the outcome. *)

val is_comparison : invocation -> bool
(** [true] for comparison primitives ([Cas], [Sc]) in the sense of Anderson et
    al.; these are the primitives for which the LFCU cache model treats a
    failed application on a cached copy as local. *)

type effect_ = {
  response : value;  (** the value returned to the invoking process *)
  new_value : value option;
      (** [Some v] iff the operation is nontrivial in this execution, i.e. it
          overwrites the cell (paper, Sec. 2) *)
}

val execute : current:value -> ll_valid:bool -> invocation -> effect_
(** Pure semantics of an invocation against cell contents [current].
    [ll_valid] reports whether the invoking process holds a valid load-link on
    the cell and is consulted only by [Sc]. *)

val pp_invocation : invocation Fmt.t

val show_invocation : invocation -> string

(** Primitive classes for which the paper states distinct complexity bounds:
    the DSM lower bound covers [Reads_writes] directly (Thm. 6.2) and
    [Comparison] via the local-CAS transformation (Cor. 6.14), while
    [Fetch_and_phi] escapes it (Sec. 7, queue-based solution). *)
type primitive_class = Reads_writes | Comparison | Fetch_and_phi

val primitive_class : invocation -> primitive_class

val primitive_class_of_kind : kind -> primitive_class

val pp_primitive_class : primitive_class Fmt.t
