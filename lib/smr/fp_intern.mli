(** Fingerprint interning: dense small-integer ids for hash-plus-exact-key
    identified values.

    {!Smr.Explore} identifies each search state by an incrementally
    maintained integer hash plus an exact (structural) key.  An interning
    table turns that pair into a small int id, so the visited-state table
    and its sleep-set entries hash and compare on ints; the exact key is
    consulted only when two states share a hash — a revisit or a genuine
    collision.  Distinct keys always receive distinct ids, so interning
    never affects soundness, only constant factors. *)

type 'a t

val create : ?size:int -> equal:('a -> 'a -> bool) -> unit -> 'a t
(** An empty table.  [equal] decides key identity exactly; it is called
    only on keys whose hashes coincide. *)

val intern : 'a t -> hash:int -> 'a -> int
(** The id of [key]: the id assigned on its first interning (ids are
    dense, starting at 0, in first-seen order).  Two keys receive the same
    id iff they have the same [hash] {e and} are [equal]. *)

val distinct : 'a t -> int
(** Number of distinct keys interned so far (= the next id). *)

val collisions : 'a t -> int
(** Number of distinct keys that landed in an already-occupied hash
    bucket — a diagnostic for hash quality, not a correctness signal. *)

val resizes : 'a t -> int
(** Times the slot array has doubled (load factor kept under 1/2); a
    sizing diagnostic — seed [create ~size] to amortize it away. *)

val slots : 'a t -> int
(** Current slot-array capacity (a power of two).  Together with
    {!distinct} this gives the occupancy [distinct /. slots]. *)
