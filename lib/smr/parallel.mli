(** Ordered fan-out over OCaml 5 domains.

    The simulator is purely functional and every experiment run is
    deterministic, so independent runs can execute on separate domains;
    results are always assembled in input order, making output independent
    of completion order (and therefore of [jobs]). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs] domains.
    [jobs <= 1], short lists, and calls from inside a worker domain (nested
    fan-out) degrade to sequential [List.map].  The first exception raised
    by any [f x] is re-raised after all workers join. *)
