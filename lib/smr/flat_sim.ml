(* The flat-state simulation engine: the billing-path counterpart of {!Sim}.

   [Sim] is persistent — every step copies the machine record and threads
   persistent maps — because the adversary and the explorer need O(1)
   snapshots and replayable history.  The open-system workload driver needs
   neither: it only ever moves forward, but it moves forward a lot (k up to
   10^6 processes, millions of steps).  This engine holds the same machine
   semantics in mutable struct-of-arrays form: dense int arrays indexed by
   address for memory, dense int arrays indexed by pid for call state, so
   one step is O(1) work and the engine itself allocates nothing at steady
   state (the free-monad program interpretation still allocates a bounded
   handful of minor words per step — constant, independent of n and k).

   Equivalence contract (enforced by the differential suite in
   test/test_flat.ml): given the same layout, schedule and model, this
   engine produces the same responses, the same per-call RMR/step tallies,
   the same timestamps and the same memory contents as [Sim] — for DSM
   always, and for CC whenever every process's live cache footprint fits in
   [ways] lines (the catalog algorithms touch O(1) cells per process, so a
   small [ways] is exact; [ways] equal to the layout size is always exact).

   The cache-coherence bookkeeping avoids [Sim]'s per-process address maps
   with an epoch scheme:

   - [cc_epoch.(a)] is bumped by every invalidating write to [a]; a cache
     entry [(a, stamp)] is valid iff [stamp = cc_epoch.(a)], so one bump
     invalidates every copy lazily, in O(1).
   - [sharers.(a)] counts the currently valid copies of [a], so the
     directory message count for an invalidation is a subtraction, not a
     scan of the processes.
   - [owner.(a)] is the write-back exclusive owner (-1 = none).

   Load-links use the same trick: [ll_epoch.(a)] is bumped by every
   nontrivial operation on [a] (which is exactly when {!Memory} empties the
   cell's link set, the writer's own link included), and a process's link
   record [(a, stamp)] is valid iff the stamp still matches. *)

type complete_cb =
  pid:Op.pid ->
  label:string ->
  seq:int ->
  started:int ->
  finished:int ->
  crashed:bool ->
  result:Op.value ->
  rmrs:int ->
  steps:int ->
  unit

type cache_cb =
  t:int -> pid:Op.pid -> addr:Op.addr -> action:string -> messages:int -> unit

type model_spec =
  | Dsm
  | Cc of { protocol : Cc.protocol; interconnect : Cc.interconnect; ways : int }

let model_spec_name = function
  | Dsm -> "dsm"
  | Cc { protocol; interconnect; ways } ->
    Printf.sprintf "%s/%s/w%d"
      (Cc.protocol_name protocol)
      (Cc.interconnect_name interconnect)
      ways

(* Process states, packed into a byte array. *)
let st_idle = '\000'
let st_running = '\001'
let st_terminated = '\002'

(* last-call outcomes *)
let last_none = '\000'
let last_completed = '\001'
let last_crashed = '\002'

let no_program : Op.value Program.t = Program.Return 0

let nop_complete ~pid:_ ~label:_ ~seq:_ ~started:_ ~finished:_ ~crashed:_
    ~result:_ ~rmrs:_ ~steps:_ =
  ()

let nop_cache ~t:_ ~pid:_ ~addr:_ ~action:_ ~messages:_ = ()

type t = {
  n : int;
  layout : Var.layout;
  size : int;
  spec : model_spec;
  (* --- flat memory (per address) --- *)
  values : int array;
  ll_epoch : int array;
  (* --- load-link records (per process, [ll_ways] slots) --- *)
  ll_ways : int;
  ll_addr : int array; (* n * ll_ways; -1 = free slot *)
  ll_stamp : int array;
  (* --- CC cache state (length-0 arrays under Dsm) --- *)
  ways : int;
  cache_addr : int array; (* n * ways; -1 = never filled *)
  cache_stamp : int array;
  cache_lru : int array;
  use_clock : int array; (* per-process recency counter for LRU *)
  cc_epoch : int array; (* per address *)
  sharers : int array; (* valid copies per address *)
  owner : int array; (* write-back exclusive owner per address; -1 = none *)
  cc_n : int;
  cc_bus : bool;
  cc_dir_limit : int; (* -1 = precise directory; only read when not bus *)
  (* --- per-process call state --- *)
  state : Bytes.t;
  progs : Op.value Program.t array;
  labels : string array;
  seqs : int array; (* ordinal of the in-flight call *)
  started : int array;
  run_rmrs : int array;
  run_steps : int array;
  next_seq : int array; (* calls begun (the per-process call counter) *)
  done_calls : int array; (* calls completed (crashes excluded) *)
  rmr_cum : int array; (* RMRs folded in at call end, as in Sim *)
  steps_cum : int array;
  last_kind : Bytes.t;
  last_val : int array;
  (* --- totals and the clock --- *)
  mutable clock : int;
  mutable total_rmrs : int;
  mutable total_messages : int;
  mutable total_steps : int;
  mutable completed_total : int;
  mutable crashed_total : int;
  on_complete : complete_cb;
  (* --- observability (both optional; the hot path stays allocation-free
     whether or not they are armed) --- *)
  counters : Obs.Counters.t option;
  on_cache : cache_cb;
}

let create ?(on_complete = nop_complete) ?counters ?(on_cache = nop_cache)
    ?(ll_ways = 4) ~model ~layout ~n () =
  let size = Var.layout_size layout in
  let values = Array.init size (Var.layout_init layout) in
  (match counters with
  | None -> ()
  | Some c ->
    (* The bump path uses unchecked writes, so the planes must cover every
       (pid, addr) this machine can issue. *)
    if Obs.Counters.n c < n || Obs.Counters.size c < size then
      invalid_arg "Flat_sim.create: counter planes smaller than the machine");
  let ways, cc_n, cc_bus, cc_dir_limit =
    match model with
    | Dsm -> (0, 0, false, -1)
    | Cc { ways; interconnect; _ } ->
      if ways <= 0 then invalid_arg "Flat_sim.create: ways must be positive";
      let bus, limit =
        match interconnect with
        | Cc.Bus -> (true, -1)
        | Cc.Directory_precise -> (false, -1)
        | Cc.Directory_limited k -> (false, k)
      in
      (ways, n, bus, limit)
  in
  { n;
    layout;
    size;
    spec = model;
    values;
    ll_epoch = Array.make size 0;
    ll_ways;
    ll_addr = Array.make (n * ll_ways) (-1);
    ll_stamp = Array.make (n * ll_ways) 0;
    ways;
    cache_addr = Array.make (n * ways) (-1);
    cache_stamp = Array.make (n * ways) 0;
    cache_lru = Array.make (n * ways) 0;
    use_clock = Array.make (if ways = 0 then 0 else n) 0;
    cc_epoch = Array.make (if ways = 0 then 0 else size) 0;
    sharers = Array.make (if ways = 0 then 0 else size) 0;
    owner = Array.make (if ways = 0 then 0 else size) (-1);
    cc_n;
    cc_bus;
    cc_dir_limit;
    state = Bytes.make n st_idle;
    progs = Array.make n no_program;
    labels = Array.make n "";
    seqs = Array.make n 0;
    started = Array.make n 0;
    run_rmrs = Array.make n 0;
    run_steps = Array.make n 0;
    next_seq = Array.make n 0;
    done_calls = Array.make n 0;
    rmr_cum = Array.make n 0;
    steps_cum = Array.make n 0;
    last_kind = Bytes.make n last_none;
    last_val = Array.make n 0;
    clock = 0;
    total_rmrs = 0;
    total_messages = 0;
    total_steps = 0;
    completed_total = 0;
    crashed_total = 0;
    on_complete;
    counters;
    on_cache }

let n t = t.n
let layout t = t.layout
let clock t = t.clock
let model_name t = model_spec_name t.spec
let counters t = t.counters

let is_idle t p = Bytes.unsafe_get t.state p = st_idle
let is_running t p = Bytes.unsafe_get t.state p = st_running
let is_terminated t p = Bytes.unsafe_get t.state p = st_terminated

(* --- load-link records --- *)

let ll_valid t p a =
  let base = p * t.ll_ways in
  let valid = ref false in
  for i = base to base + t.ll_ways - 1 do
    if
      Array.unsafe_get t.ll_addr i = a
      && Array.unsafe_get t.ll_stamp i = Array.unsafe_get t.ll_epoch a
    then valid := true
  done;
  !valid

let ll_record t p a =
  let base = p * t.ll_ways in
  let slot = ref (-1) in
  (* Prefer the slot already holding [a]; otherwise any free or stale one. *)
  for i = base + t.ll_ways - 1 downto base do
    let b = Array.unsafe_get t.ll_addr i in
    if b = a then slot := i
    else if
      !slot < 0
      && (b < 0 || Array.unsafe_get t.ll_stamp i <> Array.unsafe_get t.ll_epoch b)
    then slot := i
  done;
  if !slot < 0 then
    failwith
      (Printf.sprintf
         "Flat_sim: process %d holds more than %d concurrent load-links" p
         t.ll_ways)
  else begin
    t.ll_addr.(!slot) <- a;
    t.ll_stamp.(!slot) <- t.ll_epoch.(a)
  end

(* --- CC cache, the epoch scheme --- *)

(* Index of [p]'s valid cache line for [a], or -1. *)
let line_of t p a =
  let base = p * t.ways in
  let found = ref (-1) in
  for i = base to base + t.ways - 1 do
    if
      Array.unsafe_get t.cache_addr i = a
      && Array.unsafe_get t.cache_stamp i = Array.unsafe_get t.cc_epoch a
    then found := i
  done;
  !found

let has_copy t p a = line_of t p a >= 0

let touch_lru t p i =
  let u = t.use_clock.(p) + 1 in
  t.use_clock.(p) <- u;
  t.cache_lru.(i) <- u

(* Give [p] a valid copy of [a] (the flat [Cc.add_copy]): reuse the line
   already holding [a] if any, else a free or stale line, else evict the
   LRU valid line — decrementing its sharer count and dropping its
   ownership, exactly as [Cc.add_copy] does for a capacity eviction. *)
let add_copy t p a =
  let base = p * t.ways in
  let epoch_a = t.cc_epoch.(a) in
  let same = ref (-1) and free = ref (-1) and lru = ref base in
  for i = base to base + t.ways - 1 do
    let b = Array.unsafe_get t.cache_addr i in
    if b = a then same := i
    else if b < 0 || Array.unsafe_get t.cache_stamp i <> Array.unsafe_get t.cc_epoch b
    then free := i
    else if Array.unsafe_get t.cache_lru i < Array.unsafe_get t.cache_lru !lru
    then lru := i
  done;
  if !same >= 0 then begin
    (* Already present (possibly stale): revalidate and refresh recency. *)
    if t.cache_stamp.(!same) <> epoch_a then begin
      t.cache_stamp.(!same) <- epoch_a;
      t.sharers.(a) <- t.sharers.(a) + 1
    end;
    touch_lru t p !same
  end
  else begin
    let i = if !free >= 0 then !free else !lru in
    (if !free < 0 then begin
       (* Evicting a valid line. *)
       let b = t.cache_addr.(i) in
       t.sharers.(b) <- t.sharers.(b) - 1;
       if t.owner.(b) = p then t.owner.(b) <- -1
     end);
    t.cache_addr.(i) <- a;
    t.cache_stamp.(i) <- epoch_a;
    t.sharers.(a) <- t.sharers.(a) + 1;
    touch_lru t p i
  end

(* Messages to reach [m] remote copies (Cc.coherence_messages). *)
let coherence_messages t ~m =
  if m = 0 then 0
  else if t.cc_bus then 1
  else if t.cc_dir_limit < 0 then m
  else if m <= t.cc_dir_limit then m
  else t.cc_n - 1

(* A read-class access: hit refreshes recency and is local; miss fetches
   (one transfer, plus a write-back if a dirty owner holds the line
   elsewhere) and downgrades the owner. *)
let cc_read_like t p a =
  let i = line_of t p a in
  if i >= 0 then begin
    touch_lru t p i;
    (false, 0)
  end
  else begin
    let ow = t.owner.(a) in
    let dirty_elsewhere = ow >= 0 && ow <> p in
    let messages = 1 + if dirty_elsewhere then 1 else 0 in
    t.owner.(a) <- -1;
    add_copy t p a;
    (match t.counters with
    | None -> ()
    | Some c ->
      Obs.Counters.bump c ~pid:p ~addr:a ~pc:(Array.unsafe_get t.run_steps p)
        Obs.Counters.Fetch;
      Obs.Counters.bump_messages c ~pid:p ~addr:a messages);
    t.on_cache ~t:t.clock ~pid:p ~addr:a ~action:"fetch" ~messages;
    (true, messages)
  end

(* A write-class access that reaches memory and kills (or, for
   write-update, leaves valid) the remote copies. *)
let cc_write_like t ~invalidate ~own p a =
  let m = t.sharers.(a) - if has_copy t p a then 1 else 0 in
  let messages = 1 + coherence_messages t ~m in
  if invalidate then begin
    (* One epoch bump invalidates every copy, the writer's own included;
       the writer re-validates through [add_copy] below. *)
    t.cc_epoch.(a) <- t.cc_epoch.(a) + 1;
    t.sharers.(a) <- 0
  end;
  add_copy t p a;
  t.owner.(a) <- (if own then p else -1);
  (match t.counters with
  | None -> ()
  | Some c ->
    Obs.Counters.bump c ~pid:p ~addr:a ~pc:(Array.unsafe_get t.run_steps p)
      (if invalidate then Obs.Counters.Invalidate else Obs.Counters.Update);
    Obs.Counters.bump_messages c ~pid:p ~addr:a messages);
  t.on_cache ~t:t.clock ~pid:p ~addr:a
    ~action:(if invalidate then "invalidate" else "update")
    ~messages;
  (true, messages)

let cc_account t p inv ~wrote =
  let a = Op.addr_of inv in
  match t.spec with
  | Dsm -> assert false
  | Cc { protocol; _ } ->
    (match protocol with
    | Cc.Write_through ->
      if Op.is_read_only inv then cc_read_like t p a
      else if wrote then cc_write_like t ~invalidate:true ~own:false p a
      else begin
        (* Failed mutating primitive: a fixed-cost global round trip whose
           cache effect is that of a read.  The round trip is one message
           on the wire, billed before the refill's own traffic — the same
           event order the traced [Cc] model emits. *)
        (match t.counters with
        | None -> ()
        | Some c -> Obs.Counters.bump_messages c ~pid:p ~addr:a 1);
        t.on_cache ~t:t.clock ~pid:p ~addr:a ~action:"roundtrip" ~messages:1;
        let (_ : bool * int) = cc_read_like t p a in
        (true, 1)
      end
    | Cc.Write_back ->
      if Op.is_read_only inv then cc_read_like t p a
      else if t.owner.(a) = p then begin
        (* Exclusive owner: completes in-cache, refreshing recency. *)
        let i = line_of t p a in
        if i >= 0 then touch_lru t p i;
        (false, 0)
      end
      else cc_write_like t ~invalidate:true ~own:true p a
    | Cc.Write_update ->
      if Op.is_read_only inv then cc_read_like t p a
      else if Op.is_comparison inv && not wrote then
        (* LFCU: a failed comparison on a cached copy is local, and leaves
           the cache state untouched (no recency refresh — mirror of the
           [Cc] fast path returning the state physically unchanged). *)
        if has_copy t p a then (false, 0) else cc_read_like t p a
      else cc_write_like t ~invalidate:false ~own:false p a)

(* --- the one-step core --- *)

let account t p inv ~wrote =
  match t.spec with
  | Dsm ->
    (* Static DSM billing: remote iff the cell is homed elsewhere
       ([Shared] is -1, remote to everyone). *)
    let home = Var.layout_home_code t.layout (Op.addr_of inv) in
    if home = p then (false, 0) else (true, 1)
  | Cc _ -> cc_account t p inv ~wrote

let complete_call t p ~crashed result =
  let finished = if crashed then t.clock - 1 else t.clock in
  let rmrs = t.run_rmrs.(p) and steps = t.run_steps.(p) in
  t.on_complete ~pid:p ~label:t.labels.(p) ~seq:t.seqs.(p) ~started:t.started.(p)
    ~finished ~crashed ~result ~rmrs ~steps;
  if not crashed then begin
    t.clock <- finished + 1;
    Bytes.unsafe_set t.state p st_idle;
    t.done_calls.(p) <- t.done_calls.(p) + 1;
    Bytes.unsafe_set t.last_kind p last_completed;
    t.last_val.(p) <- result;
    t.completed_total <- t.completed_total + 1
  end
  else begin
    Bytes.unsafe_set t.last_kind p last_crashed;
    t.crashed_total <- t.crashed_total + 1
  end;
  t.progs.(p) <- no_program;
  t.rmr_cum.(p) <- t.rmr_cum.(p) + rmrs;
  t.steps_cum.(p) <- t.steps_cum.(p) + steps

let begin_call t p ~label program =
  (match Bytes.get t.state p with
  | c when c = st_idle -> ()
  | c when c = st_running ->
    invalid_arg "Flat_sim.begin_call: process already in a call"
  | _ -> invalid_arg "Flat_sim.begin_call: process terminated");
  let started = t.clock in
  t.labels.(p) <- label;
  t.seqs.(p) <- t.next_seq.(p);
  t.next_seq.(p) <- t.next_seq.(p) + 1;
  t.started.(p) <- started;
  t.run_rmrs.(p) <- 0;
  t.run_steps.(p) <- 0;
  t.clock <- started + 1;
  match program with
  | Program.Return v ->
    (* A zero-step call completes on the spot, one tick after beginning —
       the same two-tick footprint as Sim's begin-then-complete path. *)
    Bytes.unsafe_set t.state p st_running;
    complete_call t p ~crashed:false v
  | Program.Step _ ->
    Bytes.unsafe_set t.state p st_running;
    t.progs.(p) <- program

let advance t p =
  if Bytes.get t.state p <> st_running then
    invalid_arg "Flat_sim.advance: process is not in a call";
  match t.progs.(p) with
  | Program.Return _ -> assert false
  | Program.Step (inv, k) ->
    let a = Op.addr_of inv in
    let current = Array.unsafe_get t.values a in
    let llv = match inv with Op.Sc _ -> ll_valid t p a | _ -> false in
    let { Op.response; new_value } = Op.execute ~current ~ll_valid:llv inv in
    (match new_value with
    | Some v ->
      (* Nontrivial: overwrite and kill every load-link on the cell (the
         writer's own included), as Memory does by emptying the link set. *)
      Array.unsafe_set t.values a v;
      t.ll_epoch.(a) <- t.ll_epoch.(a) + 1
    | None -> ( match inv with Op.Ll _ -> ll_record t p a | _ -> ()));
    let rmr, messages = account t p inv ~wrote:(new_value <> None) in
    (match t.counters with
    | None -> ()
    | Some c ->
      Obs.Counters.bump c ~pid:p ~addr:a ~pc:(Array.unsafe_get t.run_steps p)
        (if rmr then Obs.Counters.Rmr else Obs.Counters.Local));
    let time = t.clock in
    if rmr then begin
      t.run_rmrs.(p) <- t.run_rmrs.(p) + 1;
      t.total_rmrs <- t.total_rmrs + 1
    end;
    t.run_steps.(p) <- t.run_steps.(p) + 1;
    t.total_messages <- t.total_messages + messages;
    t.total_steps <- t.total_steps + 1;
    t.clock <- time + 1;
    (match k response with
    | Program.Return v -> complete_call t p ~crashed:false v
    | Program.Step _ as program -> t.progs.(p) <- program)

(* Let logical time pass with no process stepping: open-system drivers use
   this when every process is idle but the next arrival or signal is not
   due yet.  Never moves the clock backwards. *)
let skip_to t time = if time > t.clock then t.clock <- time

let terminate t p =
  (match Bytes.get t.state p with
  | c when c = st_idle -> ()
  | c when c = st_running -> invalid_arg "Flat_sim.terminate: process mid-call"
  | _ -> invalid_arg "Flat_sim.terminate: already terminated");
  t.clock <- t.clock + 1;
  Bytes.unsafe_set t.state p st_terminated

let crash t p =
  t.clock <- t.clock + 1;
  (match Bytes.get t.state p with
  | c when c = st_running ->
    (match t.counters with
    | None -> ()
    | Some cs ->
      (* Attribute the crash to the cell the cut-down call was about to
         touch (a running call always has a pending [Step]). *)
      let a =
        match t.progs.(p) with
        | Program.Step (inv, _) -> Op.addr_of inv
        | Program.Return _ -> 0
      in
      if Obs.Counters.size cs > 0 then
        Obs.Counters.bump cs ~pid:p ~addr:a ~pc:t.run_steps.(p)
          Obs.Counters.Crash);
    complete_call t p ~crashed:true 0
  | _ -> ());
  Bytes.unsafe_set t.state p st_terminated

let rec run_to_idle ~fuel t p =
  if Bytes.get t.state p = st_running then
    if fuel = 0 then failwith "Flat_sim.run_call: out of fuel"
    else begin
      advance t p;
      run_to_idle ~fuel:(fuel - 1) t p
    end

let run_call ?(fuel = 1_000_000) t p ~label program =
  begin_call t p ~label program;
  run_to_idle ~fuel t p;
  if Bytes.get t.last_kind p <> last_completed then
    failwith "Flat_sim.run_call: call did not complete"
  else t.last_val.(p)

(* --- accounting views (same shapes as Sim's) --- *)

let rmrs t p =
  t.rmr_cum.(p) + if is_running t p then t.run_rmrs.(p) else 0

let step_count t p =
  t.steps_cum.(p) + if is_running t p then t.run_steps.(p) else 0

let call_count t p = t.next_seq.(p)
let completed_count t p = t.done_calls.(p)

let last_result t p =
  match Bytes.get t.last_kind p with
  | c when c = last_completed -> Some t.last_val.(p)
  | _ -> None

let total_rmrs t = t.total_rmrs
let total_messages t = t.total_messages
let total_steps t = t.total_steps
let completed_calls t = t.completed_total
let crashed_calls t = t.crashed_total

let value t a =
  if a < 0 || a >= t.size then invalid_arg "Flat_sim.value: bad address"
  else t.values.(a)

(* Resident engine footprint amortized per process, in bytes: every
   per-process array plus the per-address arrays (whose length is itself
   O(1) cells per process for the catalog algorithms).  Word-counting is
   exact for int arrays and Bytes; the boxed program/label slots count one
   word each (their targets are the caller's). *)
let bytes_per_process t =
  let words_of_int_array (a : int array) = Array.length a + 1 in
  let words =
    List.fold_left
      (fun acc a -> acc + words_of_int_array a)
      0
      [ t.values; t.ll_epoch; t.ll_addr; t.ll_stamp; t.cache_addr;
        t.cache_stamp; t.cache_lru; t.use_clock; t.cc_epoch; t.sharers;
        t.owner; t.seqs; t.started; t.run_rmrs; t.run_steps; t.next_seq;
        t.done_calls; t.rmr_cum; t.steps_cum; t.last_val ]
    + Array.length t.progs + 1
    + Array.length t.labels + 1
    + ((Bytes.length t.state + Bytes.length t.last_kind) / 8)
    + 2
  in
  words * 8 / max 1 t.n

(* --- snapshot / restore ---

   The flat engine only ever moves forward, but randomized replay (the
   differential fuzzer, and eventually exploration on the flat engine)
   needs to return to an earlier state.  A snapshot is a deep copy of
   every dense array plus the scalar counters: O(size + n) space and
   time, taken rarely — the per-step hot path is untouched.  [progs] and
   [labels] hold immutable values, so copying the arrays is enough. *)

type snapshot = {
  s_values : int array;
  s_ll_epoch : int array;
  s_ll_addr : int array;
  s_ll_stamp : int array;
  s_cache_addr : int array;
  s_cache_stamp : int array;
  s_cache_lru : int array;
  s_use_clock : int array;
  s_cc_epoch : int array;
  s_sharers : int array;
  s_owner : int array;
  s_state : Bytes.t;
  s_progs : Op.value Program.t array;
  s_labels : string array;
  s_seqs : int array;
  s_started : int array;
  s_run_rmrs : int array;
  s_run_steps : int array;
  s_next_seq : int array;
  s_done_calls : int array;
  s_rmr_cum : int array;
  s_steps_cum : int array;
  s_last_kind : Bytes.t;
  s_last_val : int array;
  s_clock : int;
  s_total_rmrs : int;
  s_total_messages : int;
  s_total_steps : int;
  s_completed_total : int;
  s_crashed_total : int;
}

let snapshot t =
  { s_values = Array.copy t.values;
    s_ll_epoch = Array.copy t.ll_epoch;
    s_ll_addr = Array.copy t.ll_addr;
    s_ll_stamp = Array.copy t.ll_stamp;
    s_cache_addr = Array.copy t.cache_addr;
    s_cache_stamp = Array.copy t.cache_stamp;
    s_cache_lru = Array.copy t.cache_lru;
    s_use_clock = Array.copy t.use_clock;
    s_cc_epoch = Array.copy t.cc_epoch;
    s_sharers = Array.copy t.sharers;
    s_owner = Array.copy t.owner;
    s_state = Bytes.copy t.state;
    s_progs = Array.copy t.progs;
    s_labels = Array.copy t.labels;
    s_seqs = Array.copy t.seqs;
    s_started = Array.copy t.started;
    s_run_rmrs = Array.copy t.run_rmrs;
    s_run_steps = Array.copy t.run_steps;
    s_next_seq = Array.copy t.next_seq;
    s_done_calls = Array.copy t.done_calls;
    s_rmr_cum = Array.copy t.rmr_cum;
    s_steps_cum = Array.copy t.steps_cum;
    s_last_kind = Bytes.copy t.last_kind;
    s_last_val = Array.copy t.last_val;
    s_clock = t.clock;
    s_total_rmrs = t.total_rmrs;
    s_total_messages = t.total_messages;
    s_total_steps = t.total_steps;
    s_completed_total = t.completed_total;
    s_crashed_total = t.crashed_total }

let restore t s =
  if
    Array.length s.s_values <> t.size
    || Bytes.length s.s_state <> t.n
    || Array.length s.s_cache_addr <> Array.length t.cache_addr
    || Array.length s.s_ll_addr <> Array.length t.ll_addr
  then invalid_arg "Flat_sim.restore: snapshot from a different machine shape";
  let blit src dst = Array.blit src 0 dst 0 (Array.length dst) in
  blit s.s_values t.values;
  blit s.s_ll_epoch t.ll_epoch;
  blit s.s_ll_addr t.ll_addr;
  blit s.s_ll_stamp t.ll_stamp;
  blit s.s_cache_addr t.cache_addr;
  blit s.s_cache_stamp t.cache_stamp;
  blit s.s_cache_lru t.cache_lru;
  blit s.s_use_clock t.use_clock;
  blit s.s_cc_epoch t.cc_epoch;
  blit s.s_sharers t.sharers;
  blit s.s_owner t.owner;
  Bytes.blit s.s_state 0 t.state 0 t.n;
  blit s.s_progs t.progs;
  blit s.s_labels t.labels;
  blit s.s_seqs t.seqs;
  blit s.s_started t.started;
  blit s.s_run_rmrs t.run_rmrs;
  blit s.s_run_steps t.run_steps;
  blit s.s_next_seq t.next_seq;
  blit s.s_done_calls t.done_calls;
  blit s.s_rmr_cum t.rmr_cum;
  blit s.s_steps_cum t.steps_cum;
  Bytes.blit s.s_last_kind 0 t.last_kind 0 t.n;
  blit s.s_last_val t.last_val;
  t.clock <- s.s_clock;
  t.total_rmrs <- s.s_total_rmrs;
  t.total_messages <- s.s_total_messages;
  t.total_steps <- s.s_total_steps;
  t.completed_total <- s.s_completed_total;
  t.crashed_total <- s.s_crashed_total
