(* Histories: the record of an execution, and the predicates of Section 6.

   A step records everything the proof's definitions quantify over: which
   process accessed which address, whether the operation overwrote the cell,
   whose write it observed ("sees", Def. 6.4), and whose memory module it
   touched ("touches", Def. 6.5).  Calls record the procedure-call intervals
   the problem specification (Spec. 4.1) constrains.  Times are drawn from a
   single logical event clock so that call boundaries and steps are totally
   ordered. *)

module Pid_set = Set.Make (Int)
module Pid_map = Map.Make (Int)

type step = {
  time : int; (* event-clock timestamp *)
  pid : Op.pid;
  inv : Op.invocation;
  response : Op.value;
  wrote : bool;
  read_from : Op.pid option; (* last writer observed, if the op reads *)
  home : Var.home; (* of the accessed address *)
  rmr : bool; (* under the simulation's primary cost model *)
  messages : int;
  call_seq : int; (* ordinal of the enclosing call within its process *)
}

type call = {
  c_pid : Op.pid;
  c_label : string;
  c_seq : int;
  c_started : int; (* event-clock time the call began *)
  c_finished : int option; (* event-clock time it returned, if completed *)
  c_result : Op.value option;
  c_rmrs : int; (* RMRs charged to this call (primary model) *)
  c_steps : int;
}

let pp_step ppf s =
  Fmt.pf ppf "[t%04d] p%d %a -> %d%s%s" s.time s.pid Op.pp_invocation s.inv
    s.response
    (if s.rmr then " (RMR)" else "")
    (match s.read_from with
    | Some q when q <> s.pid -> Printf.sprintf " sees p%d" q
    | _ -> "")

let pp_call ppf c =
  Fmt.pf ppf "p%d.%s#%d [%d..%s]%s" c.c_pid c.c_label c.c_seq c.c_started
    (match c.c_finished with Some t -> string_of_int t | None -> "?")
    (match c.c_result with Some r -> Printf.sprintf " = %d" r | None -> "")

(* --- Section 6 relations over a (chronological) list of steps --- *)

(* Def. 6.4: p sees q iff p reads a variable last written by q. *)
let sees steps ~p ~q =
  List.exists
    (fun s -> s.pid = p && s.read_from = Some q && q <> p)
    steps

(* Def. 6.5: p touches q iff p accesses a variable local to q. *)
let touches steps ~p ~q =
  p <> q
  && List.exists (fun s -> s.pid = p && s.home = Var.Module q) steps

let participants steps =
  List.fold_left (fun acc s -> Pid_set.add s.pid acc) Pid_set.empty steps

(* All (p, q) pairs with p distinct from q such that p sees q. *)
let all_sees steps =
  List.filter_map
    (fun s ->
      match s.read_from with
      | Some q when q <> s.pid -> Some (s.pid, q)
      | _ -> None)
    steps

let all_touches steps =
  List.filter_map
    (fun s ->
      match s.home with
      | Var.Module q when q <> s.pid -> Some (s.pid, q)
      | _ -> None)
    steps

(* Multi-writer variables and their last writers, for condition 3 of
   Def. 6.6.  Returns [(addr, last_writer)] for every address written by
   more than one process. *)
let multi_writer_last steps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.wrote then
        let a = Op.addr_of s.inv in
        let writers, _ =
          match Hashtbl.find_opt tbl a with
          | Some wl -> wl
          | None -> (Pid_set.empty, s.pid)
        in
        Hashtbl.replace tbl a (Pid_set.add s.pid writers, s.pid))
    steps;
  Hashtbl.fold
    (fun a (writers, last) acc ->
      if Pid_set.cardinal writers > 1 then (a, last) :: acc else acc)
    tbl []

type irregularity =
  | Sees_active of Op.pid * Op.pid
  | Touches_active of Op.pid * Op.pid
  | Multi_writer_active of Op.addr * Op.pid

let pp_irregularity ppf = function
  | Sees_active (p, q) -> Fmt.pf ppf "p%d sees active p%d" p q
  | Touches_active (p, q) -> Fmt.pf ppf "p%d touches active p%d" p q
  | Multi_writer_active (a, p) ->
    Fmt.pf ppf "@%d written by several processes, last by active p%d" a p

(* Def. 6.6: a history is regular (w.r.t. the set [fin] of finished
   processes) iff no process sees or touches an unfinished process, and the
   last writer of every multi-writer variable is finished. *)
let irregularities steps ~finished =
  let from_sees =
    List.filter_map
      (fun (p, q) -> if finished q then None else Some (Sees_active (p, q)))
      (all_sees steps)
  in
  let from_touches =
    List.filter_map
      (fun (p, q) -> if finished q then None else Some (Touches_active (p, q)))
      (all_touches steps)
  in
  let from_writes =
    List.filter_map
      (fun (a, p) ->
        if finished p then None else Some (Multi_writer_active (a, p)))
      (multi_writer_last steps)
  in
  from_sees @ from_touches @ from_writes

let is_regular steps ~finished = irregularities steps ~finished = []

(* --- per-process accounting --- *)

type tally = { t_steps : int; t_rmrs : int; t_messages : int }

let zero_tally = { t_steps = 0; t_rmrs = 0; t_messages = 0 }

let tally_by_pid steps =
  List.fold_left
    (fun acc s ->
      let t =
        match Pid_map.find_opt s.pid acc with
        | Some t -> t
        | None -> zero_tally
      in
      Pid_map.add s.pid
        { t_steps = t.t_steps + 1;
          t_rmrs = (t.t_rmrs + if s.rmr then 1 else 0);
          t_messages = t.t_messages + s.messages }
        acc)
    Pid_map.empty steps

let total_rmrs steps =
  List.fold_left (fun acc s -> acc + if s.rmr then 1 else 0) 0 steps

let total_messages steps = List.fold_left (fun acc s -> acc + s.messages) 0 steps

(* Re-account a history under a different cost model (models are pure folds
   over steps, so this is exact). *)
let reaccount model steps =
  let _, rev =
    List.fold_left
      (fun (model, acc) s ->
        let model, { Cost_model.rmr; messages } =
          Cost_model.account model s.pid s.inv ~wrote:s.wrote
        in
        (model, { s with rmr; messages } :: acc))
      (model, []) steps
  in
  List.rev rev
