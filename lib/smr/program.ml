(* Process code as a pure value: a free monad over one memory operation per
   step (paper, Sec. 2: "each step entails a memory access and some local
   computation").

   Representing programs as values rather than running threads is what makes
   the Section 6 adversary implementable: the scheduler can pattern-match on a
   process's continuation to learn its next memory operation without executing
   it, snapshot the whole machine in O(1), and replay histories to erase
   processes (Lemma 6.7). *)

type 'a t =
  | Return of 'a
  | Step of Op.invocation * (Op.value -> 'a t)

let return x = Return x

let rec bind m f =
  match m with
  | Return x -> f x
  | Step (inv, k) -> Step (inv, fun v -> bind (k v) f)

let map f m = bind m (fun x -> return (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

open Syntax

let step inv = Step (inv, fun v -> Return v)

(* Typed operations over Var handles. *)

let read var =
  let+ v = step (Op.Read (Var.addr var)) in
  Var.decode var v

let write var x =
  let+ _ = step (Op.Write (Var.addr var, Var.encode var x)) in
  ()

let cas var ~expected ~update =
  let+ r =
    step
      (Op.Cas (Var.addr var, Var.encode var expected, Var.encode var update))
  in
  r = 1

let load_linked var =
  let+ v = step (Op.Ll (Var.addr var)) in
  Var.decode var v

let store_conditional var x =
  let+ r = step (Op.Sc (Var.addr var, Var.encode var x)) in
  r = 1

let fetch_and_add var delta =
  let+ v = step (Op.Faa (Var.addr var, delta)) in
  v

let fetch_and_increment var = fetch_and_add var 1

let fetch_and_store var x =
  let+ v = step (Op.Fas (Var.addr var, Var.encode var x)) in
  Var.decode var v

let test_and_set var =
  let+ v = step (Op.Tas (Var.addr var)) in
  v <> 0

(* Control flow. *)

let rec seq = function
  | [] -> Return ()
  | m :: rest ->
    let* () = m in
    seq rest

let rec for_ lo hi body =
  if lo > hi then Return ()
  else
    let* () = body lo in
    for_ (lo + 1) hi body

let when_ cond body = if cond then body else Return ()

let rec repeat_until body =
  let* stop = body in
  if stop then Return () else repeat_until body

(* Busy-wait until [read var] satisfies [cond]; the canonical spin loop.
   The loop body is rebuilt lazily, so unbounded waiting costs no memory. *)
let await var cond =
  repeat_until
    (let+ v = read var in
     cond v)

let rec length_exn ?(fuel = 1_000_000) ~respond m =
  (* Number of steps [m] takes when responses are produced by [respond];
     raises if [fuel] is exhausted.  Used by tests to check wait-freedom
     bounds of straight-line programs. *)
  match m with
  | Return _ -> 0
  | Step (inv, k) ->
    if fuel = 0 then invalid_arg "Program.length_exn: out of fuel"
    else 1 + length_exn ~fuel:(fuel - 1) ~respond (k (respond inv))

let next_invocation = function
  | Return _ -> None
  | Step (inv, _) -> Some inv
