(** Cache-coherent cost models (paper, Sections 2 and 8).

    The paper's CC upper bounds rely on a "loose" model: after a process
    reads a location, further reads are local until another process performs
    a nontrivial operation on it.  That is the behavior of an ideal
    invalidation cache, implemented by {!Write_through}.  {!Write_back}
    additionally makes repeated writes by the exclusive owner local, and
    {!Write_update} models the LFCU machines discussed in Section 3 (remote
    copies are updated in place; a failed comparison primitive applied to a
    cached copy is local).

    Message accounting follows Section 8's discussion of the "exchange rate"
    between RMRs and communication: a {!Bus} broadcasts every coherence
    action (one message); a {!Directory_precise} sends one message per remote
    copy; a {!Directory_limited} with a [k]-entry sharer list degenerates to
    broadcast once a line has more than [k] sharers. *)

type protocol = Write_through | Write_back | Write_update

val protocol_name : protocol -> string

type interconnect = Bus | Directory_precise | Directory_limited of int

val interconnect_name : interconnect -> string

val model :
  ?tracer:Obs.Trace.t ->
  ?protocol:protocol ->
  ?interconnect:interconnect ->
  ?capacity:int ->
  n:int ->
  unit ->
  Cost_model.t
(** A fresh CC cost model for an [n]-processor machine with empty caches.
    Defaults: [Write_through] over a [Bus] with unbounded ("ideal") caches.
    [capacity] bounds each processor's cache to that many lines with LRU
    eviction — modeling Section 8's remark that real caches drop data
    spuriously, so the ideal-cache RMR bounds are underestimates (E12).
    With [tracer], every coherence transition (fetch, invalidate, update,
    write-through round trip) is emitted as an {!Obs.Event.Cache} event —
    but only while the owning simulator has armed the trace for a live
    step, so erasure replays never duplicate cache traffic. *)
