(** Persistent shared memory with the bookkeeping the Section 6 proof needs.

    The store tracks, per cell: its value, the last process to overwrite it
    (the "sees" relation of Definition 6.4 reads a variable {e last written}
    by some process), the processes holding valid load-links, and the set of
    all processes that ever overwrote it (condition 3 of regularity,
    Definition 6.6).  All state is persistent: snapshots are O(1). *)

type t

val create : Var.layout -> t
(** Memory in its initial state: every cell holds its layout-declared initial
    value and has no writer. *)

val get : t -> Op.addr -> Op.value

val last_writer : t -> Op.addr -> Op.pid option
(** The process whose nontrivial operation last overwrote the cell, if any. *)

val writers : t -> Op.addr -> Op.pid list
(** Every process that ever overwrote the cell. *)

val ll_valid : t -> pid:Op.pid -> Op.addr -> bool
(** Whether [pid]'s load-link on the cell is still valid (no nontrivial
    operation on the cell since the link was taken). *)

type applied = {
  memory : t;
  response : Op.value;
  wrote : bool;  (** the operation was nontrivial in this execution *)
  read_from : Op.pid option;
      (** the cell's last writer, when the operation observed the cell's
          value (every operation except a blind [Write] does) *)
}

val apply : t -> pid:Op.pid -> Op.invocation -> applied
(** Execute one atomic operation. *)

val layout : t -> Var.layout

val dump : t -> (Op.addr * Op.value) list
(** Cells that have been touched, with their current values (debugging). *)

val fingerprint : t -> (Op.addr * Op.value * Op.pid list) list
(** Canonical summary of everything future operations can observe: each
    cell's value plus the processes holding a valid load-link on it, in
    address order, with cells indistinguishable from their initial state
    omitted.  Two memories with equal fingerprints respond identically to
    every subsequent operation sequence.  Building the list walks every
    touched cell; the explorer's hot path uses {!fp_hash} and
    {!same_fingerprint} instead and never materializes it. *)

val blit_fingerprint : t -> Buffer.t -> unit
(** Append a canonical byte encoding of {!fingerprint} to the buffer: per
    non-fresh cell in address order, the address, value, link count and
    ascending link pids, each as a little-endian 64-bit word.  Two stores
    produce equal encodings iff {!same_fingerprint} holds, so byte keys
    built from it (the explorer's spill-to-disk mode) make exactly the
    dedup decisions the structural comparison would. *)

val fp_hash : t -> int
(** Running hash of the behavioral {!fingerprint}, maintained incrementally
    (an O(1) delta per {!apply}), so reading it is constant-time.  Equal
    fingerprints always hash equally; unequal fingerprints may collide, so
    a hash match must be confirmed with {!same_fingerprint}. *)

val same_fingerprint : t -> t -> bool
(** Whether the two stores (over the same layout) have equal behavioral
    {!fingerprint}s — decided by direct comparison of the cell maps, with
    fresh-cell elision, without building either list.  This is the exact
    collision-confirmation step behind {!fp_hash}. *)
