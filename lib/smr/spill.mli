(** Spill-to-disk fingerprint storage: dense-id interning of byte keys with
    a per-id payload, held in fixed-size segments that page out to binary
    files under a resident byte budget.

    The explorer's in-memory dedup tables retain every distinct state for
    the whole search, bounding the verifiable scope by RAM.  This store
    keeps the same contract — intern a (hash, exact key) pair to a dense
    id, read/update the per-id payload (the sleep-set antichain) — while
    holding the bulky key bytes and payloads in segments of [seg_keys]
    consecutive ids.  The hash index (two flat int arrays, as in
    {!Fp_intern}) stays resident; segments beyond [budget_bytes] are
    marshalled to [Filename.concat dir "seg<i>.bin"] least-recently-
    touched first and read back on a probe miss (payloads updated since
    the last write trigger a rewrite on the next eviction).

    Determinism: for a deterministic probe sequence, ids, file bytes and
    the {!spilled}/{!reloads} counters are all pure functions of that
    sequence — no clocks, no randomness.  The store is single-owner;
    concurrent explorer tasks use disjoint [dir]s. *)

type 'c t
(** A store whose per-id payload has type ['c].  The payload must contain
    no functions (it is marshalled); the explorer stores
    [Sim.Pid_set.t list] antichains. *)

val create :
  dir:string ->
  ?seg_keys:int ->
  budget_bytes:int ->
  chain_zero:'c ->
  chain_bytes:('c -> int) ->
  unit ->
  'c t
(** An empty store spilling to [dir] (created lazily on first eviction).
    [seg_keys] (default 4096, minimum 16) ids per segment; [budget_bytes]
    caps the resident window (the segment being filled and the one being
    probed stay pinned, so a tiny budget degrades to paging, never to a
    wrong answer).  [chain_zero] is the payload every fresh id starts
    with; [chain_bytes] estimates a payload's resident footprint for the
    budget accounting. *)

val intern : 'c t -> hash:int -> string -> int
(** The id of the key: dense, first-seen order, starting at 0.  Two keys
    receive the same id iff they have the same [hash] and equal bytes.
    May page segments in and out. *)

val key : 'c t -> int -> string
(** The exact key bytes interned under this id (paging its segment in if
    needed). *)

val chain : 'c t -> int -> 'c

val set_chain : 'c t -> int -> 'c -> unit
(** Read / replace the payload of an interned id.  Updates mark the
    segment dirty, so a later eviction rewrites its file. *)

val distinct : 'c t -> int
(** Number of distinct keys interned so far (= the next id). *)

val collisions : 'c t -> int
(** Distinct keys that landed in an occupied hash bucket. *)

val resizes : 'c t -> int
(** Times the resident hash index doubled. *)

val slots : 'c t -> int
(** Current hash-index capacity (a power of two). *)

val segments : 'c t -> int
(** Segments allocated so far (resident or spilled). *)

val spilled : 'c t -> int
(** Segment files written — rewrites of dirty reloaded segments
    included.  0 iff the whole search fit in the budget. *)

val reloads : 'c t -> int
(** Segments read back from disk on a probe miss. *)

val cleanup : 'c t -> unit
(** Best-effort removal of every written segment file and, if created, the
    spill directory itself.  The store must not be used afterwards. *)
