(** Process code as a pure value.

    A program is a tree of memory operations: either it is finished
    ([Return]), or it is about to apply one atomic {!Op.invocation} and
    continue with the response.  Because programs are inert values, the
    simulator — and crucially the Section 6 adversary — can inspect a
    process's next memory operation without executing it, snapshot machine
    states, and replay histories deterministically. *)

type 'a t =
  | Return of 'a
  | Step of Op.invocation * (Op.value -> 'a t)

val return : 'a -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

val step : Op.invocation -> Op.value t
(** A single raw memory operation. *)

(** {1 Typed operations} *)

val read : 'a Var.t -> 'a t

val write : 'a Var.t -> 'a -> unit t

val cas : 'a Var.t -> expected:'a -> update:'a -> bool t
(** Returns [true] iff the swap succeeded. *)

val load_linked : 'a Var.t -> 'a t

val store_conditional : 'a Var.t -> 'a -> bool t
(** Succeeds iff no process performed a nontrivial operation on the cell
    since this process's last [load_linked] on it. *)

val fetch_and_add : int Var.t -> int -> int t
(** Returns the previous value. *)

val fetch_and_increment : int Var.t -> int t

val fetch_and_store : 'a Var.t -> 'a -> 'a t
(** Atomic swap; returns the previous value. *)

val test_and_set : bool Var.t -> bool t
(** Sets the cell to [true]; returns the previous value. *)

(** {1 Control flow} *)

val seq : unit t list -> unit t

val for_ : int -> int -> (int -> unit t) -> unit t
(** [for_ lo hi body] runs [body lo], ..., [body hi] in order. *)

val when_ : bool -> unit t -> unit t

val repeat_until : bool t -> unit t
(** Re-run the body until it returns [true].  The body is rebuilt lazily, so
    unbounded busy-waiting is representable. *)

val await : 'a Var.t -> ('a -> bool) -> unit t
(** Spin reading [var] until its value satisfies the predicate — the
    canonical busy-wait loop of local-spin algorithms. *)

(** {1 Inspection} *)

val length_exn : ?fuel:int -> respond:(Op.invocation -> Op.value) -> 'a t -> int
(** Number of steps the program takes when every operation is answered by
    [respond]; raises [Invalid_argument] once [fuel] steps are exceeded.
    Used by tests to check wait-freedom bounds. *)

val next_invocation : 'a t -> Op.invocation option
(** The operation the program is about to apply, or [None] if finished.
    This is the adversary's "peek at the next RMR" primitive. *)
