(* Typed handles over shared memory cells, and the allocation context that
   assigns addresses, DSM homes and initial values.

   In the DSM model every variable lives in exactly one memory module
   (paper, Sec. 1-2).  A module either belongs to a process ([Module i]) or is
   a detached "shared" module remote to every process ([Shared]); the latter
   models globally allocated cells such as the counter of a shared queue.  In
   the CC model homes are irrelevant: any cell can be cached anywhere. *)

type home = Module of Op.pid | Shared

let pp_home ppf = function
  | Module i -> Fmt.pf ppf "module(p%d)" i
  | Shared -> Fmt.string ppf "shared"

type 'a t = {
  addr : Op.addr;
  name : string;
  home : home;
  encode : 'a -> Op.value;
  decode : Op.value -> 'a;
}

let addr v = v.addr
let name v = v.name
let home v = v.home
let encode v x = v.encode x
let decode v x = v.decode x

module Addr_map = Map.Make (Int)

type layout = {
  homes : home Addr_map.t;
  inits : Op.value Addr_map.t;
  names : string Addr_map.t;
  size : int;
}

let layout_home layout a =
  match Addr_map.find_opt a layout.homes with
  | Some h -> h
  | None -> Shared

let layout_init layout a =
  match Addr_map.find_opt a layout.inits with Some v -> v | None -> 0

let layout_name layout a =
  match Addr_map.find_opt a layout.names with
  | Some s -> s
  | None -> Printf.sprintf "@%d" a

let layout_size layout = layout.size

let layout_addrs layout =
  Addr_map.fold (fun a _ acc -> a :: acc) layout.homes [] |> List.rev

module Ctx = struct
  type ctx = {
    mutable next : Op.addr;
    mutable homes : home Addr_map.t;
    mutable inits : Op.value Addr_map.t;
    mutable names : string Addr_map.t;
  }

  type nonrec 'a t = 'a t

  let create () =
    { next = 0;
      homes = Addr_map.empty;
      inits = Addr_map.empty;
      names = Addr_map.empty }

  let alloc ctx ~name ~home ~encode ~decode init =
    let addr = ctx.next in
    ctx.next <- addr + 1;
    ctx.homes <- Addr_map.add addr home ctx.homes;
    ctx.inits <- Addr_map.add addr (encode init) ctx.inits;
    ctx.names <- Addr_map.add addr name ctx.names;
    { addr; name; home; encode; decode }

  let int ctx ~name ~home init =
    alloc ctx ~name ~home ~encode:Fun.id ~decode:Fun.id init

  let bool ctx ~name ~home init =
    let encode b = if b then 1 else 0 in
    let decode v = v <> 0 in
    alloc ctx ~name ~home ~encode ~decode init

  (* Process IDs with a distinguished NIL, as in the single-waiter algorithm
     of Sec. 7 ("W (process ID, initially NIL)").  NIL is encoded as -1. *)
  let pid_opt ctx ~name ~home init =
    let encode = function None -> -1 | Some p -> p in
    let decode v = if v < 0 then None else Some v in
    alloc ctx ~name ~home ~encode ~decode init

  let int_array ctx ~name ~home n init =
    Array.init n (fun i ->
        int ctx ~name:(Printf.sprintf "%s[%d]" name i) ~home:(home i) (init i))

  let bool_array ctx ~name ~home n init =
    Array.init n (fun i ->
        bool ctx ~name:(Printf.sprintf "%s[%d]" name i) ~home:(home i) (init i))

  let freeze ctx =
    { homes = ctx.homes; inits = ctx.inits; names = ctx.names; size = ctx.next }
end
