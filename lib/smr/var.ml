(* Typed handles over shared memory cells, and the allocation context that
   assigns addresses, DSM homes and initial values.

   In the DSM model every variable lives in exactly one memory module
   (paper, Sec. 1-2).  A module either belongs to a process ([Module i]) or is
   a detached "shared" module remote to every process ([Shared]); the latter
   models globally allocated cells such as the counter of a shared queue.  In
   the CC model homes are irrelevant: any cell can be cached anywhere.

   Layouts are dense: addresses are allocated sequentially from 0, so the
   frozen layout stores homes and initial values as flat int arrays indexed
   by address — an O(1) array read on the cost-model hot path, and ~2 words
   per cell instead of ~10 per map node.  Debug names are NOT materialized
   per cell: a million-element vector would otherwise pay a [Printf] and a
   string per element up front.  Instead the layout keeps one naming segment
   per allocation call and renders "V[i]" on demand. *)

type home = Module of Op.pid | Shared

let pp_home ppf = function
  | Module i -> Fmt.pf ppf "module(p%d)" i
  | Shared -> Fmt.string ppf "shared"

(* Homes packed into an int: [Shared] is -1, [Module i] is [i]. *)
let home_code = function Shared -> -1 | Module i -> i
let home_of_code c = if c < 0 then Shared else Module c

type 'a t = {
  addr : Op.addr;
  name : string;
  home : home;
  encode : 'a -> Op.value;
  decode : Op.value -> 'a;
}

let addr v = v.addr
let name v = v.name
let home v = v.home
let encode v x = v.encode x
let decode v x = v.decode x

(* A contiguous range of cells sharing one base name and encoding.  Unlike
   ['a t array] (which materializes one record and one name string per
   element), a vec is O(1) space regardless of length: element handles are
   minted on demand by {!vec_get}.  This is what lets algorithms with
   per-process state (queues, flag vectors) instantiate at k = 10^6. *)
type 'a vec = {
  v_base : Op.addr;
  v_len : int;
  v_name : string;
  v_home : int -> home;
  v_encode : 'a -> Op.value;
  v_decode : Op.value -> 'a;
}

let vec_len v = v.v_len

let vec_addr v i =
  if i < 0 || i >= v.v_len then
    invalid_arg
      (Printf.sprintf "Var.vec_addr: index %d out of bounds for %s[0..%d)" i
         v.v_name v.v_len)
  else v.v_base + i

let vec_get v i =
  let addr = vec_addr v i in
  { addr;
    name = Printf.sprintf "%s[%d]" v.v_name i;
    home = v.v_home i;
    encode = v.v_encode;
    decode = v.v_decode }

(* One naming segment per allocation call: cells [base, base+len) are named
   by [namer (a - base)]. *)
type segment = { s_base : int; s_len : int; s_namer : int -> string }

type layout = {
  size : int;
  homes : int array; (* home_code per address *)
  inits : Op.value array;
  segments : segment array; (* sorted by s_base, non-overlapping *)
}

let layout_home layout a =
  if a >= 0 && a < layout.size then home_of_code (Array.unsafe_get layout.homes a)
  else Shared

let layout_init layout a =
  if a >= 0 && a < layout.size then Array.unsafe_get layout.inits a else 0

(* Raw code accessors for the flat engine: one bounds check, no variant
   allocation.  [layout_home_code l a] is [home_code (layout_home l a)]. *)
let layout_home_code layout a =
  if a >= 0 && a < layout.size then Array.unsafe_get layout.homes a else -1

let layout_name layout a =
  if a < 0 || a >= layout.size then Printf.sprintf "@%d" a
  else begin
    (* Binary search for the segment holding [a]. *)
    let lo = ref 0 and hi = ref (Array.length layout.segments - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let s = layout.segments.(mid) in
      if a < s.s_base then hi := mid - 1
      else if a >= s.s_base + s.s_len then lo := mid + 1
      else found := Some (s.s_namer (a - s.s_base))
    done;
    match !found with Some n -> n | None -> Printf.sprintf "@%d" a
  end

let layout_size layout = layout.size

let layout_addrs layout = List.init layout.size Fun.id

module Ctx = struct
  type ctx = {
    mutable next : Op.addr;
    mutable homes : int array; (* capacity-doubled; [0, next) is live *)
    mutable inits : Op.value array;
    mutable segs_rev : segment list;
    mutable nsegs : int;
  }

  type nonrec 'a t = 'a t
  type nonrec 'a vec = 'a vec

  let create () =
    { next = 0;
      homes = Array.make 16 (-1);
      inits = Array.make 16 0;
      segs_rev = [];
      nsegs = 0 }

  let reserve ctx extra =
    let needed = ctx.next + extra in
    if needed > Array.length ctx.homes then begin
      let cap = max needed (2 * Array.length ctx.homes) in
      let homes = Array.make cap (-1) in
      Array.blit ctx.homes 0 homes 0 ctx.next;
      let inits = Array.make cap 0 in
      Array.blit ctx.inits 0 inits 0 ctx.next;
      ctx.homes <- homes;
      ctx.inits <- inits
    end

  let push_seg ctx s =
    ctx.segs_rev <- s :: ctx.segs_rev;
    ctx.nsegs <- ctx.nsegs + 1

  let alloc ctx ~name ~home ~encode ~decode init =
    let addr = ctx.next in
    reserve ctx 1;
    ctx.next <- addr + 1;
    ctx.homes.(addr) <- home_code home;
    ctx.inits.(addr) <- encode init;
    push_seg ctx { s_base = addr; s_len = 1; s_namer = (fun _ -> name) };
    { addr; name; home; encode; decode }

  let int ctx ~name ~home init =
    alloc ctx ~name ~home ~encode:Fun.id ~decode:Fun.id init

  let bool ctx ~name ~home init =
    let encode b = if b then 1 else 0 in
    let decode v = v <> 0 in
    alloc ctx ~name ~home ~encode ~decode init

  (* Process IDs with a distinguished NIL, as in the single-waiter algorithm
     of Sec. 7 ("W (process ID, initially NIL)").  NIL is encoded as -1. *)
  let pid_opt ctx ~name ~home init =
    let encode = function None -> -1 | Some p -> p in
    let decode v = if v < 0 then None else Some v in
    alloc ctx ~name ~home ~encode ~decode init

  (* Range allocation: one segment, one home/init fill loop, zero
     per-element records. *)
  let alloc_vec ctx ~name ~home ~encode ~decode n init =
    if n < 0 then invalid_arg "Var.Ctx.alloc_vec: negative length";
    let base = ctx.next in
    reserve ctx n;
    ctx.next <- base + n;
    for i = 0 to n - 1 do
      ctx.homes.(base + i) <- home_code (home i);
      ctx.inits.(base + i) <- encode (init i)
    done;
    push_seg ctx
      { s_base = base;
        s_len = n;
        s_namer = (fun i -> Printf.sprintf "%s[%d]" name i) };
    { v_base = base; v_len = n; v_name = name; v_home = home;
      v_encode = encode; v_decode = decode }

  let int_vec ctx ~name ~home n init =
    alloc_vec ctx ~name ~home ~encode:Fun.id ~decode:Fun.id n init

  let bool_vec ctx ~name ~home n init =
    let encode b = if b then 1 else 0 in
    let decode v = v <> 0 in
    alloc_vec ctx ~name ~home ~encode ~decode n init

  let pid_opt_vec ctx ~name ~home n init =
    let encode = function None -> -1 | Some p -> p in
    let decode v = if v < 0 then None else Some v in
    alloc_vec ctx ~name ~home ~encode ~decode n init

  (* The array forms materialize one handle per element; callers that scale
     with the process count should hold the vec and mint handles on
     demand. *)
  let int_array ctx ~name ~home n init =
    let v = int_vec ctx ~name ~home n init in
    Array.init n (vec_get v)

  let bool_array ctx ~name ~home n init =
    let v = bool_vec ctx ~name ~home n init in
    Array.init n (vec_get v)

  let freeze ctx =
    let segments = Array.make ctx.nsegs { s_base = 0; s_len = 0; s_namer = (fun _ -> "") } in
    let rec fill i = function
      | [] -> ()
      | s :: rest ->
        segments.(i) <- s;
        fill (i - 1) rest
    in
    fill (ctx.nsegs - 1) ctx.segs_rev;
    { size = ctx.next;
      homes = Array.sub ctx.homes 0 ctx.next;
      inits = Array.sub ctx.inits 0 ctx.next;
      segments }
end
