(* ASCII rendering of a history: one column per process, one row per
   event-clock tick that carries an event.  Meant for the examples and the
   CLI's --trace flag on small runs; a long history renders long.

   Cell vocabulary:  r7/w7/c7/L7/S7/F7/X7/T7 = read/write/cas/ll/sc/faa/
   fas/tas on address 7, suffixed with '*' when the step is an RMR under
   the run's primary model; '(label' = call begin; ')=v' = call return;
   '#' = termination or crash. *)

let op_letter inv =
  match Op.kind inv with
  | Op.K_read -> "r"
  | Op.K_write -> "w"
  | Op.K_cas -> "c"
  | Op.K_ll -> "L"
  | Op.K_sc -> "S"
  | Op.K_faa -> "F"
  | Op.K_fas -> "X"
  | Op.K_tas -> "T"

let step_cell (s : History.step) =
  Printf.sprintf "%s%d%s" (op_letter s.History.inv)
    (Op.addr_of s.History.inv)
    (if s.History.rmr then "*" else "")

let render ?(width = 9) sim =
  let n = Sim.n sim in
  let cells = Hashtbl.create 256 in
  let put time pid text =
    (* Later writers win; begin/end cells never collide with steps because
       each tick carries exactly one event. *)
    Hashtbl.replace cells (time, pid) text
  in
  List.iter
    (fun (s : History.step) -> put s.History.time s.History.pid (step_cell s))
    (Sim.steps sim);
  List.iter
    (fun (c : History.call) ->
      put c.History.c_started c.History.c_pid ("(" ^ c.History.c_label);
      match (c.History.c_finished, c.History.c_result) with
      | Some t, Some v -> put t c.History.c_pid (Printf.sprintf ")=%d" v)
      | Some t, None -> put t c.History.c_pid ")"
      | None, _ -> ())
    (Sim.calls sim);
  (* Terminations and crashes occupy their own tick, so '#' never
     overwrites a step or call cell. *)
  List.iter (fun (pid, time, _crashed) -> put time pid "#") (Sim.ends sim);
  let buf = Buffer.create 1024 in
  let pad s =
    let s = if String.length s > width then String.sub s 0 width else s in
    s ^ String.make (width - String.length s) ' '
  in
  Buffer.add_string buf (pad "t");
  for p = 0 to n - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "p%d" p))
  done;
  Buffer.add_char buf '\n';
  (* One probe of [cells] per (tick, process), written into a reused row
     buffer — the former per-tick association list cost a second, linear
     lookup per column, making each printed row quadratic in n. *)
  let row = Array.make n "." in
  for t = 0 to Sim.clock sim - 1 do
    let any = ref false in
    for p = 0 to n - 1 do
      row.(p) <-
        (match Hashtbl.find_opt cells (t, p) with
        | Some c ->
          any := true;
          c
        | None -> ".")
    done;
    if !any then begin
      Buffer.add_string buf (pad (string_of_int t));
      for p = 0 to n - 1 do
        Buffer.add_string buf (pad row.(p))
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let print ?width sim = print_string (render ?width sim)
