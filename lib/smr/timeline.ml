(* ASCII rendering of a history: one column per process, one row per
   event-clock tick that carries an event.  Meant for the examples and the
   CLI's --trace flag on small runs; open-system histories can have 10^6
   processes and tens of millions of ticks, so the renderer caps both axes
   and says so with an explicit "sampled" trailer instead of materializing
   an unbounded grid.

   Cell vocabulary:  r7/w7/c7/L7/S7/F7/X7/T7 = read/write/cas/ll/sc/faa/
   fas/tas on address 7, suffixed with '*' when the step is an RMR under
   the run's primary model; '(label' = call begin; ')=v' = call return;
   '#' = termination or crash. *)

let op_letter inv =
  match Op.kind inv with
  | Op.K_read -> "r"
  | Op.K_write -> "w"
  | Op.K_cas -> "c"
  | Op.K_ll -> "L"
  | Op.K_sc -> "S"
  | Op.K_faa -> "F"
  | Op.K_fas -> "X"
  | Op.K_tas -> "T"

let step_cell (s : History.step) =
  Printf.sprintf "%s%d%s" (op_letter s.History.inv)
    (Op.addr_of s.History.inv)
    (if s.History.rmr then "*" else "")

let render ?(width = 9) ?(max_cols = 64) ?(max_rows = 512) sim =
  let n = Sim.n sim in
  let max_cols = max 1 max_cols and max_rows = max 1 max_rows in
  let shown_n = min n max_cols in
  let cells = Hashtbl.create 256 in
  (* Distinct event ticks among the SHOWN columns: rows are drawn from this
     set, so the render cost is bounded by the events, not by the clock. *)
  let ticks = Hashtbl.create 256 in
  let put time pid text =
    if pid < shown_n then begin
      (* Later writers win; begin/end cells never collide with steps because
         each tick carries exactly one event. *)
      Hashtbl.replace cells (time, pid) text;
      Hashtbl.replace ticks time ()
    end
  in
  List.iter
    (fun (s : History.step) -> put s.History.time s.History.pid (step_cell s))
    (Sim.steps sim);
  List.iter
    (fun (c : History.call) ->
      put c.History.c_started c.History.c_pid ("(" ^ c.History.c_label);
      match (c.History.c_finished, c.History.c_result) with
      | Some t, Some v -> put t c.History.c_pid (Printf.sprintf ")=%d" v)
      | Some t, None -> put t c.History.c_pid ")"
      | None, _ -> ())
    (Sim.calls sim);
  (* Terminations and crashes occupy their own tick, so '#' never
     overwrites a step or call cell. *)
  List.iter (fun (pid, time, _crashed) -> put time pid "#") (Sim.ends sim);
  let times =
    let a = Array.make (Hashtbl.length ticks) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun t () ->
        a.(!i) <- t;
        incr i)
      ticks;
    Array.sort compare a;
    a
  in
  let shown_rows = min (Array.length times) max_rows in
  let buf = Buffer.create 1024 in
  let pad s =
    let s = if String.length s > width then String.sub s 0 width else s in
    s ^ String.make (width - String.length s) ' '
  in
  Buffer.add_string buf (pad "t");
  for p = 0 to shown_n - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "p%d" p))
  done;
  Buffer.add_char buf '\n';
  for r = 0 to shown_rows - 1 do
    let t = times.(r) in
    Buffer.add_string buf (pad (string_of_int t));
    for p = 0 to shown_n - 1 do
      Buffer.add_string buf
        (pad
           (match Hashtbl.find_opt cells (t, p) with
           | Some c -> c
           | None -> "."))
    done;
    Buffer.add_char buf '\n'
  done;
  if shown_n < n then
    Buffer.add_string buf
      (Printf.sprintf "[sampled: %d of %d process columns shown]\n" shown_n n);
  if shown_rows < Array.length times then
    Buffer.add_string buf
      (Printf.sprintf "[sampled: %d of %d event ticks shown]\n" shown_rows
         (Array.length times));
  Buffer.contents buf

let print ?width ?max_cols ?max_rows sim =
  print_string (render ?width ?max_cols ?max_rows sim)
