(* Cache-coherent cost models (paper, Secs. 2 and 8).

   The paper's upper bounds need only a "loose" CC model: once a process has
   read a location, further reads are local until some other process performs
   a nontrivial operation on it.  That is exactly the behavior of an ideal
   invalidation-based cache, which [Write_through] implements.  [Write_back]
   additionally makes repeated writes by the exclusive owner local, and
   [Write_update] models the LFCU machines of Anderson & Kim [1] (remote
   copies are updated rather than invalidated, and a failed comparison
   primitive applied to a cached copy is local).

   Message accounting follows Section 8: under a [Bus] interconnect any
   coherence action is one broadcast; under a precise directory an
   invalidation or update costs one message per remote copy; under a limited
   directory with [k]-entry sharer lists, a write to a line with more than
   [k] sharers falls back to broadcasting to all other processors —
   "superfluous invalidation messages". *)

type protocol = Write_through | Write_back | Write_update

let protocol_name = function
  | Write_through -> "cc-wt"
  | Write_back -> "cc-wb"
  | Write_update -> "cc-lfcu"

type interconnect = Bus | Directory_precise | Directory_limited of int

let interconnect_name = function
  | Bus -> "bus"
  | Directory_precise -> "dir"
  | Directory_limited k -> Printf.sprintf "dir%d" k

module Addr_map = Map.Make (Int)
module Pid_map = Map.Make (Int)
module Pid_set = Set.Make (Int)

(* Copy membership lives in per-cell holder sets ([copies]): [has_copy] is
   a map + set lookup and [remote_holders] walks only the cell's actual
   holders, where the former MRU-list representation scanned a process's
   whole cached set per access — O(cached-set) work that made CC billing
   quadratic at [separation load] scale.

   The MRU-ordered per-process lists survive only under a capacity bound:
   Section 8 notes that theoretical RMR bounds assume an "ideal" cache that
   never drops data spuriously, an assumption that fails under finite
   capacity — [capacity = Some k] models that with LRU eviction (experiment
   E12 measures the effect), and there the list is at most [k] long.  An
   unbounded cache never evicts, so recency order is unobservable and only
   the holder sets are kept. *)
type state = {
  caches : Op.addr list Pid_map.t; (* MRU first; maintained iff bounded *)
  copies : Pid_set.t Addr_map.t; (* per-cell copy-holder sets *)
  owner : Op.pid Addr_map.t; (* write-back: exclusive (dirty) owner *)
  capacity : int option;
}

let empty capacity =
  { caches = Pid_map.empty;
    copies = Addr_map.empty;
    owner = Addr_map.empty;
    capacity }

let cache_of st pid =
  match Pid_map.find_opt pid st.caches with Some l -> l | None -> []

let holders st a =
  match Addr_map.find_opt a st.copies with
  | Some s -> s
  | None -> Pid_set.empty

let has_copy st pid a = Pid_set.mem pid (holders st a)

(* Processes other than [pid] holding a copy of [a], in descending pid
   order (the order the former cache-map fold produced). *)
let remote_holders st pid a =
  Pid_set.fold
    (fun q acc -> if q <> pid then q :: acc else acc)
    (holders st a) []

let owner_of st a = Addr_map.find_opt a st.owner

let record_copy copies pid a =
  let hs =
    match Addr_map.find_opt a copies with Some s -> s | None -> Pid_set.empty
  in
  Addr_map.add a (Pid_set.add pid hs) copies

let unrecord_copy copies pid a =
  match Addr_map.find_opt a copies with
  | None -> copies
  | Some hs ->
    let hs = Pid_set.remove pid hs in
    if Pid_set.is_empty hs then Addr_map.remove a copies
    else Addr_map.add a hs copies

(* Touch [a] in [pid]'s cache: give it a valid copy and, under a capacity
   bound, move the line to MRU position, evicting the LRU line if the bound
   is hit.  An evicted dirty (owned) line loses its ownership — the
   writeback itself is charged when the line is next accessed remotely.
   A hit on an unbounded cache returns the state physically unchanged, so
   spin reads allocate nothing. *)
let add_copy st pid a =
  match st.capacity with
  | None ->
    if has_copy st pid a then st
    else { st with copies = record_copy st.copies pid a }
  | Some cap -> (
    let cache0 = cache_of st pid in
    match cache0 with
    | b :: _ when b = a -> st (* already most-recently-used: nothing moves *)
    | _ ->
      let cache = a :: List.filter (fun b -> b <> a) cache0 in
      let cache, evicted =
        if List.length cache > cap then
          let rec split i = function
            | [] -> ([], [])
            | x :: rest ->
              if i >= cap then ([], x :: rest)
              else
                let keep, drop = split (i + 1) rest in
                (x :: keep, drop)
          in
          split 0 cache
        else (cache, [])
      in
      let owner =
        List.fold_left
          (fun owner b ->
            match Addr_map.find_opt b owner with
            | Some q when q = pid -> Addr_map.remove b owner
            | Some _ | None -> owner)
          st.owner evicted
      in
      let copies =
        List.fold_left
          (fun copies b -> unrecord_copy copies pid b)
          (record_copy st.copies pid a)
          evicted
      in
      { st with caches = Pid_map.add pid cache st.caches; owner; copies })

let drop_copy st pid a =
  let caches =
    match st.capacity with
    | None -> st.caches
    | Some _ ->
      Pid_map.add pid
        (List.filter (fun b -> b <> a) (cache_of st pid))
        st.caches
  in
  { st with caches; copies = unrecord_copy st.copies pid a }

(* Messages needed to reach the remote copy holders of [a] (invalidate or
   update them), given [m] remote copies out of [n] processors. *)
let coherence_messages interconnect ~n ~m =
  if m = 0 then 0
  else
    match interconnect with
    | Bus -> 1
    | Directory_precise -> m
    | Directory_limited k -> if m <= k then m else n - 1

(* A read miss: one fetch, plus a write-back transfer if a dirty owner holds
   the line elsewhere. *)
let miss_messages ~dirty_elsewhere = 1 + if dirty_elsewhere then 1 else 0

type t = {
  protocol : protocol;
  interconnect : interconnect;
  n : int;
  st : state;
  tracer : Obs.Trace.t option;
}

(* Cache-line transition events.  Accounting runs *inside* a simulator
   step, so emission goes through the trace's armed latch: the simulator
   arms the trace (publishing the current tick) only around the accounting
   call of a live traced step — erasure replays re-run these closures on a
   tracerless machine and emit nothing. *)
let emit_cache t pid a ~action ~copies ~messages =
  match t.tracer with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit_if_armed tr
      (Obs.Event.Cache
         { t = Obs.Trace.now tr; pid; addr = a; action; copies; messages;
           protocol = protocol_name t.protocol;
           interconnect = interconnect_name t.interconnect })

let read_like t pid a =
  if has_copy t.st pid a then
    (* A hit still refreshes the line's recency (true LRU); when the line
       is already most-recently-used the state is returned physically
       unchanged, so spin reads cost no allocation at all. *)
    let st = add_copy t.st pid a in
    ((if st == t.st then t else { t with st }), Cost_model.local)
  else
    let dirty_elsewhere =
      match owner_of t.st a with Some q -> q <> pid | None -> false
    in
    let messages = miss_messages ~dirty_elsewhere in
    emit_cache t pid a ~action:"fetch"
      ~copies:(if dirty_elsewhere then 1 else 0)
      ~messages;
    (* The previous owner's line is downgraded to shared on a read miss. *)
    let st = { (add_copy t.st pid a) with owner = Addr_map.remove a t.st.owner } in
    ({ t with st }, { Cost_model.rmr = true; messages })

(* A write-like access that must reach memory and kill/update remote copies. *)
let write_like ~invalidate t pid a =
  let remote = remote_holders t.st pid a in
  let m = List.length remote in
  let base = 1 (* the memory / directory transaction itself *) in
  let messages = base + coherence_messages t.interconnect ~n:t.n ~m in
  emit_cache t pid a
    ~action:(if invalidate then "invalidate" else "update")
    ~copies:m ~messages;
  let st =
    if invalidate then
      List.fold_left (fun st q -> drop_copy st q a) t.st remote
    else t.st (* write-update: remote copies stay valid, refreshed *)
  in
  let st = add_copy st pid a in
  let st =
    { st with
      owner =
        (match t.protocol with
        | Write_back -> Addr_map.add a pid st.owner
        | Write_through | Write_update -> Addr_map.remove a st.owner) }
  in
  ({ t with st }, { Cost_model.rmr = true; messages })

let account t pid inv ~wrote =
  let a = Op.addr_of inv in
  match t.protocol with
  | Write_through ->
    if Op.is_read_only inv then read_like t pid a
    else
      (* Every mutating primitive must reach memory; a failed comparison
         still performs the global round trip but invalidates nothing. *)
      if wrote then write_like ~invalidate:true t pid a
      else (
        emit_cache t pid a ~action:"roundtrip" ~copies:0 ~messages:1;
        let t, _ = read_like t pid a in
        (t, { Cost_model.rmr = true; messages = 1 }))
  | Write_back ->
    if Op.is_read_only inv then read_like t pid a
    else if owner_of t.st a = Some pid then
      (* Exclusive owner: the access completes in-cache (and refreshes
         recency). *)
      let st = add_copy t.st pid a in
      ((if st == t.st then t else { t with st }), Cost_model.local)
    else
      (* Acquire exclusivity (even for a comparison that then fails: the
         line must be owned for the atomic to be applied). *)
      write_like ~invalidate:true t pid a
  | Write_update ->
    if Op.is_read_only inv then read_like t pid a
    else if Op.is_comparison inv && not wrote then
      (* The defining LFCU feature: a failed comparison primitive applied to
         a locally cached copy completes locally. *)
      if has_copy t.st pid a then (t, Cost_model.local) else read_like t pid a
    else write_like ~invalidate:false t pid a

let predict t pid inv =
  let a = Op.addr_of inv in
  match t.protocol with
  | Write_through ->
    if Op.is_read_only inv then Some (not (has_copy t.st pid a)) else Some true
  | Write_back ->
    if Op.is_read_only inv then Some (not (has_copy t.st pid a))
    else Some (owner_of t.st a <> Some pid)
  | Write_update ->
    if Op.is_read_only inv then Some (not (has_copy t.st pid a))
    else if Op.is_comparison inv then
      if has_copy t.st pid a then None (* local iff it fails *) else Some true
    else Some true

let model ?tracer ?(protocol = Write_through) ?(interconnect = Bus) ?capacity
    ~n () =
  let full_name =
    Printf.sprintf "%s/%s%s" (protocol_name protocol)
      (interconnect_name interconnect)
      (match capacity with
      | Some c -> Printf.sprintf "/cap%d" c
      | None -> "")
  in
  (* [make_stateful] shares the wrapper across steps that leave the cache
     state physically unchanged, so the hits fast-pathed above (spin reads
     of an MRU line, owned write-back writes, failed cached LFCU
     comparisons) allocate nothing — the explorer's stepping hot path. *)
  Cost_model.make_stateful ~name:full_name ~account ~predict
    { protocol; interconnect; n; st = empty capacity; tracer }
