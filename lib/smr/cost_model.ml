(* Cost models: classify each executed memory operation as local or remote
   (an RMR) and count the interconnect messages it generates (Sec. 8).

   A model is persistent codata: accounting a step returns the successor
   model.  Models never influence execution — the values read and written are
   model-independent — so a single recorded history can be re-accounted under
   several models (used by the cross-model experiment E5). *)

type step_cost = { rmr : bool; messages : int }

type t = {
  name : string;
  account : Op.pid -> Op.invocation -> wrote:bool -> t * step_cost;
  predict : Op.pid -> Op.invocation -> bool option;
      (* [Some b]: the next application of this operation by this process is
         an RMR iff [b], independent of its outcome.  [None]: depends on
         whether the operation turns out to be nontrivial. *)
}

let name t = t.name
let account t pid inv ~wrote = t.account pid inv ~wrote
let predict t pid inv = t.predict pid inv

let make ~name ~account ~predict = { name; account; predict }

(* Wrap an explicit-state model.  The wrapper for a given state is built
   once and reused whenever accounting leaves the state physically
   unchanged — on allocation-sensitive paths (the explorer steps through
   millions of cache hits) a no-op step then allocates nothing at all,
   which a naive [make]-based knot cannot achieve: it must re-wrap every
   successor.  State functions should therefore return their input state
   physically ([==]) whenever a step changes nothing. *)
let make_stateful ~name ~account ~predict s0 =
  let rec wrap s =
    let rec self =
      { name;
        account =
          (fun pid inv ~wrote ->
            let s', cost = account s pid inv ~wrote in
            ((if s' == s then self else wrap s'), cost));
        predict = (fun pid inv -> predict s pid inv) }
    in
    self
  in
  wrap s0

(* DSM (paper, Sec. 2): an access is an RMR iff the address is homed in
   another processor's memory module.  Classification is purely static, which
   is what lets the adversary peek at "next RMRs" exactly. *)
let dsm layout =
  let is_rmr pid inv =
    match Var.layout_home layout (Op.addr_of inv) with
    | Var.Module owner -> owner <> pid
    | Var.Shared -> true
  in
  let rec t =
    { name = "dsm";
      account =
        (fun pid inv ~wrote:_ ->
          let rmr = is_rmr pid inv in
          (t, { rmr; messages = (if rmr then 1 else 0) }));
      predict = (fun pid inv -> Some (is_rmr pid inv)) }
  in
  t

let local = { rmr = false; messages = 0 }
