(** The simulated asynchronous multiprocessor.

    State is fully persistent: every operation returns a new machine, so
    snapshots are O(1) — the stability check of Definition 6.8 and the
    adversary's trial erasures depend on this.  Every state change is also
    appended to a replayable trace; erasing a process from a history
    (Lemma 6.7) is replaying the trace without that process's events, and
    replay verifies that every surviving process receives exactly the
    responses it received originally, raising {!Replay_divergence} otherwise
    (i.e. when the erased process was in fact visible). *)

module Pid_map : Map.S with type key = int
module Pid_set : Set.S with type elt = int

type t

type proc_state = Idle | Running of run | Terminated

and run = {
  program : Op.value Program.t;
  label : string;
  seq : int;
  started : int;
  run_rmrs : int;
  run_steps : int;
}

exception Replay_divergence of { pid : Op.pid; time : int; detail : string }

val create : model:Cost_model.t -> layout:Var.layout -> n:int -> t
(** A machine with [n] processes, all idle, memory in its initial state,
    and no tracer attached. *)

val lean_mode : t -> t
(** The same machine with per-step history accumulation switched off: from
    this point, no {!History.step} records ([steps] stays empty, so no step
    is traced as an {!Obs.Event.Op_step} either) and no replayable trace
    ({!replay} and {!erase} raise [Invalid_argument]) are kept.  Every
    counter — clock, per-process and total RMR/message/step tallies, call
    ordinals, completed counts, {!last_result}, completed-call records,
    [ends] — is maintained exactly as in full mode.  This is {!Explore}'s
    stepping mode: the checker's dedup/POR machinery and its property
    contract consume only counters and call records, and the two per-step
    accumulators dominate allocation on the search hot path.  Must be
    applied to a machine with no recorded history (raises otherwise).
    See docs/MODEL.md, "Exploration fast path". *)

val is_lean : t -> bool

val tracer : t -> Obs.Trace.t option

val with_tracer : t -> Obs.Trace.t option -> t
(** The same machine with a different (or no) tracer attached.  While a
    tracer is attached, every call begin/end, executed step, crash and
    termination is emitted as an {!Obs.Event.t} keyed by the logical
    clock; with no tracer, instrumentation costs nothing.  Erasure
    replays are always silent (re-running surviving steps does not
    re-emit their events), and [None] silences observation on throwaway
    snapshots such as the adversary's stability probes. *)

val n : t -> int
val layout : t -> Var.layout
val memory : t -> Memory.t
val clock : t -> int
(** Logical event clock: call begins/ends and steps each advance it. *)

val proc_state : t -> Op.pid -> proc_state
val is_idle : t -> Op.pid -> bool
val is_running : t -> Op.pid -> bool
val is_terminated : t -> Op.pid -> bool

val peek : t -> Op.pid -> Op.invocation option
(** The memory operation the process would apply on its next step, without
    applying it — the adversary's basic observation. *)

val next_is_rmr : t -> Op.pid -> bool option
(** Whether the peeked operation would be an RMR under the primary cost
    model ([Some]), or [None] when there is no pending operation or the
    classification depends on the outcome. Exact in the DSM model. *)

val begin_call : t -> Op.pid -> label:string -> Op.value Program.t -> t
(** Start a procedure call on an idle process.  A program that returns
    without any memory operation completes immediately. *)

val advance : t -> Op.pid -> t
(** Execute the process's next memory operation.  If the call's program
    thereby finishes, the call is recorded as complete and the process
    becomes idle. *)

val terminate : t -> Op.pid -> t
(** The process terminates (stops taking steps); only legal between calls. *)

val crash : t -> Op.pid -> t
(** The process crashes: it stops taking steps even mid-call (paper,
    Sec. 2).  An interrupted call is recorded as begun-but-unfinished. *)

val run_to_idle : ?fuel:int -> t -> Op.pid -> t
(** Advance the process until its current call completes. *)

val run_call : ?fuel:int -> t -> Op.pid -> label:string -> Op.value Program.t -> t * Op.value
(** [begin_call] followed by [run_to_idle]; returns the call's result. *)

(** {1 History and accounting} *)

val steps : t -> History.step list
(** Chronological list of executed steps; always empty in lean mode. *)

val calls : t -> History.call list
(** Completed and crashed calls in completion order, followed by calls
    still in flight (begun, unfinished).  Pending calls matter to
    Specification 4.1, which quantifies over calls that have {e begun}. *)

val fold_calls : ('a -> History.call -> 'a) -> 'a -> t -> 'a
(** Fold over exactly the calls [calls] returns, in unspecified order,
    without materializing the list.  Meant for properties evaluated at
    every search node: interval-order checks depend on call timestamps,
    never on list position, so they need not pay the per-evaluation copy
    [calls] performs. *)

val calls_of : t -> Op.pid -> History.call list

val participants : t -> Pid_set.t
(** Processes that have begun at least one call. *)

val rmrs : t -> Op.pid -> int
(** RMRs the process has incurred, under the primary model. *)

val total_rmrs : t -> int

val total_messages : t -> int

val step_count : t -> Op.pid -> int

val call_count : t -> Op.pid -> int
(** Number of calls the process has {e begun} (completed, crashed and
    pending alike).  O(log n), unlike [List.length (calls_of t p)], which
    walks the whole recorded history. *)

val completed_count : t -> Op.pid -> int
(** Number of calls the process has completed; crashed calls never count. *)

val last_step : t -> History.step option
(** The most recently executed step, if any.  O(1).  Always [None] in lean
    mode, which keeps no step records — use {!last_response} for the datum
    the explorer needs. *)

val last_response : t -> Op.value option
(** Response of the most recently executed step, if any — available in
    both full and lean mode, O(1). *)

val ends : t -> (Op.pid * int * bool) list
(** Terminations and crashes in chronological order: process, the tick at
    which it stopped, and whether it crashed ([true]) or terminated
    cleanly ([false]). *)

val last_result : t -> Op.pid -> Op.value option
(** Outcome of the process's most recent completed-or-crashed call: the
    result if it completed, [None] if it crashed (or if the process never
    finished a call).  An earlier completed call never shines through a
    later crashed one. *)

(** {1 Replay and erasure (Lemma 6.7)} *)

val replay : ?check:bool -> keep:(Op.pid -> bool) -> t -> t
(** Re-execute the machine's trace, dropping every event of processes not
    kept.  With [check] (default), every surviving step's response is
    compared against the original and {!Replay_divergence} is raised on any
    difference — the witness that the erased processes were visible.
    Raises [Invalid_argument] on a lean machine, which keeps no trace. *)

val erase : t -> Op.pid list -> t
(** [replay] keeping everyone except the given processes. *)

val can_erase : t -> Op.pid list -> bool
(** Whether erasure succeeds without divergence. *)

val pp : t Fmt.t
