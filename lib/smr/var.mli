(** Typed shared variables and their allocation.

    A variable is a typed view of one integer memory cell together with its
    DSM {!home}.  Algorithms declare their variables through a {!Ctx.ctx}
    before the simulation starts; freezing the context produces the {!layout}
    the simulator and cost models consume. *)

(** Where a cell lives in the DSM model: in the memory module of one process,
    or in a detached module remote to every process. *)
type home = Module of Op.pid | Shared

val pp_home : home Fmt.t

type 'a t
(** A typed handle on one shared cell. *)

val addr : 'a t -> Op.addr
val name : 'a t -> string
val home : 'a t -> home

val encode : 'a t -> 'a -> Op.value
(** Encode a typed value into the cell representation. *)

val decode : 'a t -> Op.value -> 'a
(** Decode the cell representation; inverse of {!encode} on valid contents. *)

type 'a vec
(** A contiguous range of cells sharing one base name and encoding — O(1)
    space regardless of length, unlike ['a t array] which materializes one
    record and one name string per element.  The representation algorithms
    with per-process state must use to instantiate at k = 10^6. *)

val vec_len : 'a vec -> int

val vec_addr : 'a vec -> int -> Op.addr
(** Address of element [i]; raises [Invalid_argument] out of bounds. *)

val vec_get : 'a vec -> int -> 'a t
(** Mint the handle of element [i] on demand (allocates the handle and its
    debug name; cheap, but hot loops should hoist it when possible). *)

type layout
(** Frozen allocation: addresses with homes, initial values and debug names.
    Dense: addresses run [0, size); homes and inits are flat array reads. *)

val layout_home : layout -> Op.addr -> home
val layout_init : layout -> Op.addr -> Op.value
val layout_name : layout -> Op.addr -> string

val layout_home_code : layout -> Op.addr -> int
(** [layout_home_code l a] is the home of [a] packed into an int: -1 for
    [Shared], the owning pid for [Module _].  The allocation-free accessor
    the flat engine's DSM billing uses. *)

val layout_size : layout -> int
(** Number of allocated cells. *)

val layout_addrs : layout -> Op.addr list
(** All allocated addresses, in allocation order. *)

(** Allocation context. *)
module Ctx : sig
  type ctx

  type nonrec 'a t = 'a t

  type nonrec 'a vec = 'a vec

  val create : unit -> ctx

  val alloc :
    ctx ->
    name:string ->
    home:home ->
    encode:('a -> Op.value) ->
    decode:(Op.value -> 'a) ->
    'a ->
    'a t
  (** Allocate a cell with a custom encoding and initial (typed) value. *)

  val int : ctx -> name:string -> home:home -> int -> int t

  val bool : ctx -> name:string -> home:home -> bool -> bool t

  val pid_opt : ctx -> name:string -> home:home -> Op.pid option -> Op.pid option t
  (** A process-ID cell with a distinguished NIL ([None]), as used by the
      single-waiter algorithm of Section 7. *)

  val int_array :
    ctx -> name:string -> home:(int -> home) -> int -> (int -> int) -> int t array
  (** [int_array ctx ~name ~home n init] allocates [n] cells; cell [i] is
      homed at [home i] and starts at [init i].  The per-index homing is how
      algorithms express "V[i] is local to process p_i" (Sec. 7). *)

  val bool_array :
    ctx -> name:string -> home:(int -> home) -> int -> (int -> bool) -> bool t array

  val alloc_vec :
    ctx ->
    name:string ->
    home:(int -> home) ->
    encode:('a -> Op.value) ->
    decode:(Op.value -> 'a) ->
    int ->
    (int -> 'a) ->
    'a vec
  (** [alloc_vec ctx ~name ~home ~encode ~decode n init] allocates [n]
      contiguous cells as one O(1)-space vector; cell [i] is homed at
      [home i], starts at [init i], and is named ["name[i]"] on demand. *)

  val int_vec :
    ctx -> name:string -> home:(int -> home) -> int -> (int -> int) -> int vec

  val bool_vec :
    ctx -> name:string -> home:(int -> home) -> int -> (int -> bool) -> bool vec

  val pid_opt_vec :
    ctx ->
    name:string ->
    home:(int -> home) ->
    int ->
    (int -> Op.pid option) ->
    Op.pid option vec

  val freeze : ctx -> layout
  (** Freeze the context into the immutable layout used by the simulator.
      Allocating after freezing is allowed but the new cells are invisible to
      layouts frozen earlier. *)
end
