(* Atomic operation vocabulary of the shared-memory machine (paper, Sec. 2).

   Every shared variable holds an integer value; Booleans are encoded as 0/1
   by the typed layer in {!Var}.  An operation is an [invocation] applied by a
   process to an address; executing it against the current cell contents
   yields a [value] response and possibly a new cell value.  The distinction
   between trivial and nontrivial operations ("a nontrivial operation
   overwrites a memory location, possibly with the same value as before")
   drives both the CC cost model and the history predicates of Section 6. *)

type pid = int

type addr = int

type value = int

(* Monomorphic value equality.  Hot paths (fingerprint elision, dedup
   confirmation) must compare values through this rather than polymorphic
   [=]: if [value] ever grows beyond [int] (boxed payloads, tagged
   encodings), this is the one place that changes, and the compiler flags
   every site that needs a semantic decision instead of silently falling
   back to slow structural comparison. *)
let value_equal : value -> value -> bool = Int.equal

type invocation =
  | Read of addr
  | Write of addr * value
  | Cas of addr * value * value (* expected, update *)
  | Ll of addr
  | Sc of addr * value
  | Faa of addr * value (* fetch-and-add; Fetch-And-Increment is [Faa (a, 1)] *)
  | Fas of addr * value (* fetch-and-store *)
  | Tas of addr (* test-and-set: returns old value, stores 1 *)

type kind = K_read | K_write | K_cas | K_ll | K_sc | K_faa | K_fas | K_tas

let all_kinds =
  [ K_read; K_write; K_cas; K_ll; K_sc; K_faa; K_fas; K_tas ]

let kind_name = function
  | K_read -> "read"
  | K_write -> "write"
  | K_cas -> "cas"
  | K_ll -> "ll"
  | K_sc -> "sc"
  | K_faa -> "faa"
  | K_fas -> "fas"
  | K_tas -> "tas"

let kind = function
  | Read _ -> K_read
  | Write _ -> K_write
  | Cas _ -> K_cas
  | Ll _ -> K_ll
  | Sc _ -> K_sc
  | Faa _ -> K_faa
  | Fas _ -> K_fas
  | Tas _ -> K_tas

let addr_of = function
  | Read a | Write (a, _) | Cas (a, _, _) | Ll a | Sc (a, _)
  | Faa (a, _) | Fas (a, _) | Tas a ->
    a

(* Monomorphic structural equality on invocations: same constructor, same
   operands.  Explore's symmetry detection compares per-waiter programs
   invocation by invocation; spelling the match out keeps the comparison
   total over future constructors (the compiler flags them) and off the
   polymorphic-compare path. *)
let invocation_equal a b =
  match (a, b) with
  | Read a1, Read a2 | Ll a1, Ll a2 | Tas a1, Tas a2 -> a1 = a2
  | Write (a1, v1), Write (a2, v2)
  | Sc (a1, v1), Sc (a2, v2)
  | Faa (a1, v1), Faa (a2, v2)
  | Fas (a1, v1), Fas (a2, v2) ->
    a1 = a2 && v1 = v2
  | Cas (a1, e1, u1), Cas (a2, e2, u2) -> a1 = a2 && e1 = e2 && u1 = u2
  | ( ( Read _ | Write _ | Cas _ | Ll _ | Sc _ | Faa _ | Fas _ | Tas _ ),
      ( Read _ | Write _ | Cas _ | Ll _ | Sc _ | Faa _ | Fas _ | Tas _ ) ) ->
    false

(* Operations that never overwrite the cell, regardless of outcome. *)
let is_read_only = function
  | Read _ | Ll _ -> true
  | Write _ | Cas _ | Sc _ | Faa _ | Fas _ | Tas _ -> false

(* Static independence of two invocations by different processes: they
   commute — either order yields the same memory state and the same
   responses — when they touch different cells, or when both are read-only
   (two reads, two load-links, or one of each; LL link-records are
   per-process set-inserts and so commute too).  Conservative: a failed CAS
   is observationally read-only, but its outcome is not known statically,
   so comparison primitives on a shared cell are treated as dependent.
   This is the independence relation behind Explore's partial-order
   reduction. *)
let commute a b =
  addr_of a <> addr_of b || (is_read_only a && is_read_only b)

(* Comparison primitives in the sense of [3]: they overwrite only when a
   condition on the current value holds.  Used by the LFCU cache model, where
   a failed comparison on a cached copy is local. *)
let is_comparison = function
  | Cas _ | Sc _ -> true
  | Read _ | Write _ | Ll _ | Faa _ | Fas _ | Tas _ -> false

type effect_ = {
  response : value;
  new_value : value option; (* [Some v] iff the operation was nontrivial *)
}

(* Execute an invocation against the current cell [current].  [ll_valid]
   tells whether the acting process holds a valid load-link on the cell
   (only consulted by [Sc]). *)
let execute ~current ~ll_valid = function
  | Read _ | Ll _ -> { response = current; new_value = None }
  | Write (_, v) -> { response = 0; new_value = Some v }
  | Cas (_, expected, update) ->
    if current = expected then { response = 1; new_value = Some update }
    else { response = 0; new_value = None }
  | Sc (_, v) ->
    if ll_valid then { response = 1; new_value = Some v }
    else { response = 0; new_value = None }
  | Faa (_, delta) -> { response = current; new_value = Some (current + delta) }
  | Fas (_, v) -> { response = current; new_value = Some v }
  | Tas _ -> { response = current; new_value = Some 1 }

let pp_invocation ppf inv =
  match inv with
  | Read a -> Fmt.pf ppf "read @%d" a
  | Write (a, v) -> Fmt.pf ppf "write @%d <- %d" a v
  | Cas (a, e, u) -> Fmt.pf ppf "cas @%d (%d -> %d)" a e u
  | Ll a -> Fmt.pf ppf "ll @%d" a
  | Sc (a, v) -> Fmt.pf ppf "sc @%d <- %d" a v
  | Faa (a, d) -> Fmt.pf ppf "faa @%d += %d" a d
  | Fas (a, v) -> Fmt.pf ppf "fas @%d <- %d" a v
  | Tas a -> Fmt.pf ppf "tas @%d" a

let show_invocation = Fmt.to_to_string pp_invocation

(* The synchronization-primitive classes discussed in Sections 3, 6 and 7. *)
type primitive_class =
  | Reads_writes
  | Comparison (* CAS, LL/SC: covered by the lower bound via Cor. 6.14 *)
  | Fetch_and_phi (* FAA/FAI, FAS, TAS: outside the lower bound's reach *)

let primitive_class_of_kind = function
  | K_read | K_write -> Reads_writes
  | K_cas | K_ll | K_sc -> Comparison
  | K_faa | K_fas | K_tas -> Fetch_and_phi

let primitive_class inv = primitive_class_of_kind (kind inv)

let pp_primitive_class ppf = function
  | Reads_writes -> Fmt.string ppf "reads/writes"
  | Comparison -> Fmt.string ppf "comparison (CAS, LL/SC)"
  | Fetch_and_phi -> Fmt.string ppf "fetch-and-phi (FAA, FAS, TAS)"
