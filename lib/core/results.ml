(* Typed experiment results.

   The experiments build these tables; Report/CSV/JSON are pure views.
   JSON emission is hand-rolled (the dependency footprint stays fmt-only)
   and deliberately boring: fixed key order, fixed float rendering, so the
   output is stable byte-for-byte across runs and across --jobs levels. *)

type value =
  | Int of int
  | Float of { value : float; digits : int }
  | Bool of bool
  | Text of string

type kind = Param | Measure

type column = { name : string; kind : kind }

type table = {
  experiment : string;
  part : string option;
  title : string;
  claim : string;
  params : (string * value) list;
  columns : column list;
  rows : value list list;
}

let make ~experiment ?part ~title ~claim ?(params = []) ~columns rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Results.make %s: row %d has %d cells, expected %d"
             experiment i (List.length row) width))
    rows;
  { experiment; part; title; claim; params; columns; rows }

let param name = { name; kind = Param }
let measure name = { name; kind = Measure }

let int i = Int i
let float ?(digits = 2) value = Float { value; digits }
let bool b = Bool b
let text s = Text s

let render_value = function
  | Int i -> string_of_int i
  | Float { value; digits } -> Printf.sprintf "%.*f" digits value
  | Bool b -> if b then "yes" else "no"
  | Text s -> s

(* --- typed access --- *)

let col_index t name =
  let rec go i = function
    | [] -> raise Not_found
    | c :: _ when c.name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let get t ~row name = List.nth row (col_index t name)

let column_values t name =
  let i = col_index t name in
  List.map (fun row -> List.nth row i) t.rows

let rows_where t name v =
  let i = col_index t name in
  List.filter (fun row -> List.nth row i = v) t.rows

let to_int = function Int i -> Some i | Float _ | Bool _ | Text _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float { value; _ } -> Some value
  | Bool _ | Text _ -> None

let to_bool = function Bool b -> Some b | Int _ | Float _ | Text _ -> None

let to_text = render_value

(* --- renderers --- *)

let to_report t =
  Report.make ~title:t.title
    ~header:(List.map (fun c -> c.name) t.columns)
    (List.map (List.map render_value) t.rows)

let to_csv t = Report.to_csv (to_report t)

(* JSON: escape the mandatory characters, pass UTF-8 through. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let json_value = function
  | Int i -> string_of_int i
  | Float { value; digits } -> Printf.sprintf "%.*f" digits value
  | Bool b -> if b then "true" else "false"
  | Text s -> json_string s

let json_fields ~indent t =
  let pad = String.make indent ' ' in
  let columns =
    List.map
      (fun c ->
        Printf.sprintf "{\"name\": %s, \"kind\": %s}" (json_string c.name)
          (json_string (match c.kind with Param -> "param" | Measure -> "measure")))
      t.columns
  in
  let params =
    List.map
      (fun (k, v) -> Printf.sprintf "%s: %s" (json_string k) (json_value v))
      t.params
  in
  let row cells =
    "{"
    ^ String.concat ", "
        (List.map2
           (fun c v -> Printf.sprintf "%s: %s" (json_string c.name) (json_value v))
           t.columns cells)
    ^ "}"
  in
  [ ("experiment", json_string t.experiment);
    ("part", (match t.part with Some p -> json_string p | None -> "null"));
    ("title", json_string t.title);
    ("claim", json_string t.claim);
    ("params", "{" ^ String.concat ", " params ^ "}");
    ("columns", "[" ^ String.concat ", " columns ^ "]");
    ("rows",
     if t.rows = [] then "[]"
     else
       "[\n" ^ pad ^ "    "
       ^ String.concat (",\n" ^ pad ^ "    ") (List.map row t.rows)
       ^ "\n" ^ pad ^ "  ]")
  ]

let json_object ~indent fields =
  let pad = String.make indent ' ' in
  pad ^ "{\n"
  ^ String.concat ",\n"
      (List.map
         (fun (k, v) -> Printf.sprintf "%s  %s: %s" pad (json_string k) v)
         fields)
  ^ "\n" ^ pad ^ "}"

let to_json t = json_object ~indent:0 (json_fields ~indent:0 t) ^ "\n"

let to_json_many ts =
  match ts with
  | [] -> "[]\n"
  | ts ->
    "[\n"
    ^ String.concat ",\n"
        (List.map (fun t -> json_object ~indent:2 (json_fields ~indent:2 t)) ts)
    ^ "\n]\n"
