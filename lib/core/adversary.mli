(** The Section 6 lower-bound construction, mechanized.

    Plays the proof of Theorem 6.2 against a concrete algorithm: part 1
    (Lemma 6.10) drives all N processes as waiters through rounds of
    advance-to-next-RMR, conflict-graph erasure (the Turán step), read
    application, and roll-forward/erasing disposal of pending writes, until
    every surviving waiter is stable (Def. 6.8 — busy-waiting on local
    memory); part 2 (Lemma 6.13) picks a signaler whose module no other
    process has written and erases each stable waiter the instant the
    signaler is about to see or touch it — the wild goose chase.

    Erasure is trace replay with response verification (Lemma 6.7): it
    succeeds exactly when the victim was invisible.  Against reads/writes
    algorithms every erasure succeeds and the signaler's RMRs land on a
    history with O(1) participants — amortized cost Θ(N).  Against F&I
    algorithms the erasures diverge (each registrant is visible through the
    counter), are reported as blocked, and the amortized cost stays flat:
    the mechanized witness of why Theorem 6.2 excludes fetch-and-phi
    primitives while Corollary 6.14 extends it over CAS and LL/SC. *)

open Smr

type round_stat = {
  round : int;
  active_before : int;
  stable : int;  (** actives already stable at classification time *)
  poised : int;  (** unstable actives advanced to a pending RMR *)
  erased_conflicts : int;
  erased_writes : int;
  rolled_forward : Op.pid option;
  active_after : int;
  max_active_rmrs : int;
      (** property 3 of Def. 6.9: at most [round + 1] for every active *)
  regular : bool;  (** Def. 6.6 over the history so far *)
  erase_failures : int;
      (** part-1 erasures that diverged and were skipped (F&I visibility) *)
}

type chase_stat = {
  signaler : Op.pid;
  signaler_rmrs : int;
  chase_erased : int;
  chase_erase_failures : int;
  signaler_steps : int;
}

type result = {
  algorithm : string;
  n : int;
  rounds : round_stat list;
  stable_waiters : int;
  finished : int;  (** rolled-forward processes (|Fin|) *)
  part1_regular : bool;
  chase : chase_stat option;
      (** [None] when part 1 never stabilized every waiter within the round
          budget *)
  participants : int;  (** in the final (post-erasure) history *)
  total_rmrs : int;
  amortized : float;
  spec_violated : bool;
      (** a surviving stable waiter polled false after Signal() completed —
          the Lemma 6.13 contradiction; never set for a correct algorithm *)
  spurious_true : bool;
  final_sim : Smr.Sim.t;
      (** the machine holding the surviving (post-erasure) history *)
}

val run :
  (module Signaling.POLLING) ->
  n:int ->
  ?tracer:Obs.Trace.t ->
  ?stability_polls:int ->
  ?max_rounds:int ->
  ?fuel:int ->
  ?resolution:[ `Independent_set | `Erase_all ] ->
  unit ->
  result
(** Run the construction with all [n] processes as potential waiters in the
    DSM model.  [stability_polls] is the Def. 6.8 horizon: a process is
    declared stable after that many complete solo Poll() calls without an
    RMR.  Raises [Invalid_argument] for algorithms whose signaler is fixed
    in advance (outside the theorem's scope).

    With [tracer], the machine emits its usual step/call events and the
    construction emits one {!Obs.Event.Adversary} decision event per
    erasure (successful, blocked, and chase variants), roll-forward,
    round, stabilization, and signaler choice.  Stability probes and
    survivor validation run on tracer-stripped snapshots, so discarded
    probe work never appears in the stream; erasure replays are silent by
    construction ({!Smr.Sim.replay}). *)

val pp_round : round_stat Fmt.t
val pp_result : result Fmt.t

(** {1 Randomized strategies}

    Alternatives to the Section 6 erasing/rolling-forward construction:
    seed-reproducible probabilistic schedules over the standard open
    workload (waiters poll until they learn; the signaler fires once the
    clock passes [signal_after]).  Both check Specification 4.1 over the
    resulting history — [ro_outcome.violations] is the verdict. *)

type random_outcome = {
  ro_policy : string;  (** [Schedule.policy_name] of the schedule played *)
  ro_seed : int;
  ro_outcome : Scenario.outcome;
}

val run_pct :
  (module Signaling.POLLING) ->
  n:int ->
  seed:int ->
  ?depth:int ->
  ?horizon:int ->
  ?cfg:Signaling.config ->
  ?model:Scenario.model_tag ->
  ?tracer:Obs.Trace.t ->
  ?signal_after:int ->
  ?max_events:int ->
  unit ->
  random_outcome
(** PCT-style randomized priority schedule ({!Smr.Schedule.Pct}): distinct
    random priorities, [depth - 1] demotion points drawn from
    [\[1, horizon\]] (default [horizon = 40 * n]).  A depth-[d] ordering
    bug is hit with probability at least [1 / (n * horizon^(d-1))] per
    seed, so sweeping seeds buys a guaranteed detection rate. *)

val run_walk :
  (module Signaling.POLLING) ->
  n:int ->
  seed:int ->
  ?cfg:Signaling.config ->
  ?model:Scenario.model_tag ->
  ?tracer:Obs.Trace.t ->
  ?signal_after:int ->
  ?max_events:int ->
  unit ->
  random_outcome
(** Seed-reproducible uniform random walk ({!Smr.Schedule.Random_seed}). *)

val pp_random_outcome : random_outcome Fmt.t
