(* Section 7, "many waiters not fixed in advance, one signaler not fixed in
   advance": the Fetch-And-Increment queue solution that closes the gap the
   lower bound opens.

   A waiter's first Poll() adds it to a shared F&I queue and then checks the
   global flag G; later polls read the waiter's own local flag.  Signal()
   sets G and drains the queue, writing the dedicated flag of every waiter
   found.  Worst-case RMRs: O(1) per waiter, O(k) for the signaler over k
   registered waiters — so amortized O(1), which no algorithm restricted to
   reads, writes, CAS and LL/SC can achieve (Thm. 6.2 / Cor. 6.14).

   The escape hatch is the F&I: each registration is pinned into the
   counter's history, every later registrant observes it, and the Section 6
   adversary's erasures stop being legal (replay diverges) — experiment E4
   measures both effects. *)

open Smr
open Program.Syntax

let name = "dsm-queue"

let description =
  "waiters register in a Fetch-And-Increment queue; signaler drains it \
   (Sec. 7); O(1) amortized RMRs in DSM, outside the lower bound's \
   primitive class"

let primitives = [ Op.Reads_writes; Op.Fetch_and_phi ]

let flexibility = Signaling.any_flexibility

type t = {
  queue : Sync.Fai_queue.t;
  g : bool Var.t; (* global signal flag *)
  v : bool Var.vec; (* v[i] homed at module i, written by the signaler *)
  registered : bool Var.vec; (* per-process local memo *)
  observed : bool Var.vec; (* per-process local memo: saw G set at registration *)
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  { queue = Sync.Fai_queue.create ctx ~capacity:n;
    g = Var.Ctx.bool ctx ~name:"G" ~home:Var.Shared false;
    v =
      Var.Ctx.bool_vec ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    registered =
      Var.Ctx.bool_vec ctx ~name:"registered"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false);
    observed =
      Var.Ctx.bool_vec ctx ~name:"observed"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let poll t p =
  let* already = Program.read (Var.vec_get t.registered p) in
  if already then
    let* saw = Program.read (Var.vec_get t.observed p) in
    if saw then Program.return true else Program.read (Var.vec_get t.v p)
  else
    let* () = Program.write (Var.vec_get t.registered p) true in
    let* () = Sync.Fai_queue.enqueue t.queue p in
    (* Check G after enqueueing: closes the race with a Signal() that
       drained the queue before our registration landed. *)
    let* g = Program.read t.g in
    if not g then Program.return false
    else
      (* Memoize the observation in a local cell.  Registering after a
         drain means v[p] stays false until the NEXT Signal(); without the
         memo a later Poll() would answer false after a completed Signal()
         — a Specification 4.1 violation that only open-system workloads
         (waiters arriving between signals) expose. *)
      let* () = Program.write (Var.vec_get t.observed p) true in
      Program.return true

(* The drain skips a claimed-but-unpublished slot after one re-read
   instead of awaiting it: a waiter crashing between its F&I and its slot
   publish would otherwise wedge the drain forever (the livelock E15 first
   exposed).  Skipping is safe under ANY schedule, not just crashy ones,
   because G is set before the drain starts and is never unset: a Poll()
   writes [registered], enqueues (F&I then publish), and only then reads
   G — so a claimant whose slot is still empty when the drain passes has
   not yet read G, will observe G = true when it does, and returns true
   without ever needing its V flag. *)
let signal t _p =
  let* () = Program.write t.g true in
  let* _cursor =
    Sync.Fai_queue.drain ~skip_unpublished:1 t.queue ~from:0 (fun q ->
        Program.write (Var.vec_get t.v q) true)
  in
  Program.return ()

(* Lint claims: Poll() is wait-free O(1) — the F&I registration (one faa,
   one slot publish, one G read) is what Theorem 6.2's primitive class
   cannot express; Signal() drains the queue, busy-waiting on each claimed
   slot's publication (remote, unbounded — but amortized O(1) per
   registration, E5). *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "G"; "V"; "registered"; "observed" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = n + 1 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 3; cc_amortized = Amortized { steady = Rmr 5; refills = 2 } }) ] }
