open Smr

let unit_program p = Program.map (fun () -> 0) p

let bool_program p = Program.map (fun b -> if b then 1 else 0) p

(* One registry entry for a polling algorithm under the standard
   configuration (process 0 signals, the rest poll). *)
let polling ?fuel ?unroll ~n ~claims (module P : Signaling.POLLING) =
  let ctx = Var.Ctx.create () in
  let cfg = Algorithms.config_for (module P) ~n in
  let t = P.create ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  Analysis.Registry.entry ?fuel ?unroll ~name:P.name ~n ~layout
    ~primitives:P.primitives ~claims
    [ { Analysis.Registry.label = "signal";
        pids = cfg.Signaling.signalers;
        program = (fun p -> unit_program (P.signal t p)) };
      { Analysis.Registry.label = "poll";
        pids = cfg.Signaling.waiters;
        program = (fun p -> bool_program (P.poll t p)) } ]

let blocking ?fuel ?unroll ~n ~claims (module B : Signaling.BLOCKING) =
  let ctx = Var.Ctx.create () in
  let cfg = Algorithms.config_for_blocking ~n in
  let t = B.create ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  Analysis.Registry.entry ?fuel ?unroll ~name:B.name ~n ~layout
    ~primitives:B.primitives ~claims
    [ { Analysis.Registry.label = "signal";
        pids = cfg.Signaling.signalers;
        program = (fun p -> unit_program (B.signal t p)) };
      { Analysis.Registry.label = "wait";
        pids = cfg.Signaling.waiters;
        program = (fun p -> unit_program (B.wait t p)) } ]

let lock ?fuel ?unroll ~n ~claims (module L : Sync.Mutex_intf.LOCK) =
  let ctx = Var.Ctx.create () in
  let t = L.create ctx ~n in
  let layout = Var.Ctx.freeze ctx in
  let pids = List.init n (fun i -> i) in
  Analysis.Registry.entry ?fuel ?unroll ~name:L.name ~n ~layout
    ~primitives:L.primitives ~claims
    [ { Analysis.Registry.label = "acquire";
        pids;
        program = (fun p -> unit_program (L.acquire t p)) };
      { Analysis.Registry.label = "release";
        pids;
        program = (fun p -> unit_program (L.release t p)) } ]

let register ?(n = 4) () =
  let r = Analysis.Registry.register in
  r (polling ~n ~claims:(Cc_flag.claims ~n) (module Cc_flag));
  r (polling ~n ~claims:(Dsm_broadcast.claims ~n) (module Dsm_broadcast));
  r (polling ~n ~claims:(Dsm_fixed_waiters.claims ~n) (module Dsm_fixed_waiters));
  r
    (polling ~n
       ~claims:(Dsm_fixed_terminating.claims ~n)
       (module Dsm_fixed_terminating));
  r (polling ~n ~claims:(Dsm_single_waiter.claims ~n) (module Dsm_single_waiter));
  r (polling ~n ~claims:(Dsm_registration.claims ~n) (module Dsm_registration));
  r (polling ~n ~claims:(Dsm_queue.claims ~n) (module Dsm_queue));
  r (polling ~n ~claims:(Cas_register.claims ~n) (module Cas_register));
  r (polling ~n ~claims:(Llsc_register.claims ~n) (module Llsc_register));
  (* Election winners and losers that read the winner's name both reach the
     inner queue signal, so the unfolding is a small multiple of dsm-queue's
     own: give the composition extra node budget. *)
  r
    (polling ~n ~fuel:1_000_000
       ~claims:(Multi_signaler.claims ~inner:(Dsm_queue.claims ~n) ~n)
       (module Algorithms.Queue_multi_signaler));
  (* The lock-transformed registration variants nest a tournament-lock
     passage inside every emulated CAS, so their unfoldings multiply: keep
     them at two processes. *)
  let nt = 2 in
  r
    (polling ~n:nt
       ~claims:(Cas_register.claims ~n:nt)
       (module Cas_register.Transformed));
  r
    (polling ~n:nt
       ~claims:(Llsc_register.claims ~n:nt)
       (module Llsc_register.Transformed));
  (* dsm-leader, mcs and yang-anderson all re-read a cell right after
     awaiting it (or on an infeasible rival-is-myself branch), which at the
     default occurrence threshold folds a spurious back-edge over the
     intervening shared access; one extra unrolling separates the genuine
     spin loop from the straight-line re-read. *)
  r (blocking ~n ~unroll:3 ~claims:(Dsm_leader.claims ~n) (module Dsm_leader));
  let nl = 3 in
  r (lock ~n:nl ~claims:(Sync.Tas_lock.claims ~n:nl) (module Sync.Tas_lock));
  r (lock ~n:nl ~claims:(Sync.Ttas_lock.claims ~n:nl) (module Sync.Ttas_lock));
  r (lock ~n:nl ~claims:(Sync.Ticket_lock.claims ~n:nl) (module Sync.Ticket_lock));
  r
    (lock ~n:nl
       ~claims:(Sync.Anderson_lock.claims ~n:nl)
       (module Sync.Anderson_lock));
  r (lock ~n:nl ~claims:(Sync.Clh_lock.claims ~n:nl) (module Sync.Clh_lock));
  r
    (lock ~n:nl ~unroll:3
       ~claims:(Sync.Mcs_lock.claims ~n:nl)
       (module Sync.Mcs_lock));
  r
    (lock ~n:nl
       ~claims:(Sync.Fischer_lock.claims ~n:nl)
       (Sync.Fischer_lock.with_delay 1));
  r (lock ~n:nl ~claims:(Sync.Bakery_lock.claims ~n:nl) (module Sync.Bakery_lock));
  let ny = 2 in
  r
    (lock ~n:ny ~unroll:3
       ~claims:(Sync.Yang_anderson.claims ~n:ny)
       (module Sync.Yang_anderson));
  Lint_mutants.register ~n

let run ?n ?(mutants = false) ?fuel ?names ?metrics () =
  register ?n ();
  let entries = Analysis.Registry.all ~mutants:true () in
  let entries =
    match names with
    | None -> List.filter (fun e -> mutants || not e.Analysis.Registry.mutant) entries
    | Some names ->
      List.map
        (fun name ->
          match
            List.find_opt (fun e -> e.Analysis.Registry.name = name) entries
          with
          | Some e -> e
          | None -> invalid_arg (Printf.sprintf "lint: unknown algorithm %S" name))
        names
  in
  let lint entry =
    match metrics with
    | None -> Analysis.Lint.run ?fuel entry
    | Some m ->
      Obs.Metrics.time m "lint_entry_seconds"
        ~labels:[ ("algorithm", entry.Analysis.Registry.name) ]
        (fun () -> Analysis.Lint.run ?fuel entry)
  in
  List.map lint entries

let class_tag = function
  | Op.Reads_writes -> "rw"
  | Op.Comparison -> "cmp"
  | Op.Fetch_and_phi -> "fai"

let classes_tag classes = String.concat "+" (List.map class_tag classes)

let lint_table reports =
  let columns =
    [ Results.param "algorithm"; Results.param "call"; Results.param "n";
      Results.measure "pids"; Results.measure "nodes"; Results.measure "cycles";
      Results.measure "stuck"; Results.measure "complete";
      Results.measure "classes"; Results.measure "spin";
      Results.measure "claim_spin"; Results.measure "rmr_worst";
      Results.measure "claim_rmr"; Results.measure "cc_cold";
      Results.measure "cc_amortized"; Results.measure "claim_cc_amortized";
      Results.measure "facts"; Results.measure "indep_checked";
      Results.measure "violations"; Results.measure "ok" ]
  in
  let rows =
    List.concat_map
      (fun (r : Analysis.Lint.report) ->
        let entry = r.Analysis.Lint.entry in
        let call_rows =
          List.map
            (fun (c : Analysis.Lint.call_report) ->
              let claim = Analysis.Claims.call entry.claims c.call in
              let am = c.Analysis.Lint.amortized in
              [ Results.text entry.Analysis.Registry.name;
                Results.text c.call;
                Results.int entry.Analysis.Registry.n;
                Results.int c.pids; Results.int c.nodes; Results.int c.cycles;
                Results.int c.stuck; Results.bool c.complete;
                Results.text (classes_tag c.classes);
                Results.text (Analysis.Claims.spin_name c.spin);
                Results.text (Analysis.Claims.spin_name claim.Analysis.Claims.spin);
                Results.text (Analysis.Claims.bound_name c.rmrs);
                Results.text
                  (Analysis.Claims.bound_name claim.Analysis.Claims.dsm_rmrs);
                Results.text (Analysis.Claims.bound_name am.Analysis.Amortized.cold);
                Results.text
                  (Analysis.Claims.amortized_name
                     { Analysis.Claims.steady = am.Analysis.Amortized.steady;
                       refills = am.Analysis.Amortized.refills });
                Results.text
                  (Analysis.Claims.cc_amortized_name
                     claim.Analysis.Claims.cc_amortized);
                Results.text ""; Results.int 0;
                Results.text (String.concat "; " c.violations);
                Results.bool (c.violations = []) ])
            r.Analysis.Lint.calls
        in
        let entry_row ~call ~facts ~checked vs ok =
          [ Results.text entry.Analysis.Registry.name;
            Results.text call;
            Results.int entry.Analysis.Registry.n;
            Results.int 0; Results.int 0; Results.int 0; Results.int 0;
            Results.bool true; Results.text ""; Results.text "";
            Results.text ""; Results.text ""; Results.text "";
            Results.text ""; Results.text ""; Results.text "";
            Results.text facts; Results.int checked;
            Results.text (String.concat "; " vs); Results.bool ok ]
        in
        let writer_rows =
          match r.Analysis.Lint.writer_violations with
          | [] -> []
          | vs -> [ entry_row ~call:"(writers)" ~facts:"" ~checked:0 vs false ]
        in
        let fact_rows =
          let facts =
            String.concat ","
              (Analysis.Independence.fact_names ~layout:entry.layout
                 r.Analysis.Lint.facts)
          in
          let vs = r.Analysis.Lint.indep_violations in
          if facts = "" && vs = [] then []
          else
            [ entry_row ~call:"(facts)" ~facts
                ~checked:r.Analysis.Lint.indep_checked vs (vs = []) ]
        in
        call_rows @ writer_rows @ fact_rows)
      reports
  in
  Results.make ~experiment:"lint" ~part:"claims"
    ~title:"Static lint: paper-claimed properties vs the extracted CFGs"
    ~claim:
      "every shipped algorithm's declared primitive class, spin locality, \
       DSM RMR bound, amortized CC RMR bound, write ownership and \
       static-independence facts hold over its response-branching \
       control-flow graph"
    ~columns rows

let commute_table (r : Analysis.Commute_check.result) =
  Results.make ~experiment:"lint" ~part:"commute"
    ~title:"Differential soundness of Op.commute (the POR independence relation)"
    ~claim:
      "whenever Op.commute holds, executing the pair in either order yields \
       identical memory fingerprints and responses (premise of Explore's \
       sleep-set reduction)"
    ~columns:
      [ Results.measure "shape_pairs"; Results.measure "kind_pairs";
        Results.measure "scenarios"; Results.measure "commuting";
        Results.measure "failures"; Results.measure "ok" ]
    [ [ Results.int r.Analysis.Commute_check.pairs;
        Results.int r.Analysis.Commute_check.kind_pairs;
        Results.int r.Analysis.Commute_check.checked;
        Results.int r.Analysis.Commute_check.commuting;
        Results.int (List.length r.Analysis.Commute_check.failures);
        Results.bool (r.Analysis.Commute_check.failures = []) ] ]

let all_ok reports commute =
  Analysis.Lint.all_ok reports
  && commute.Analysis.Commute_check.failures = []
  && commute.Analysis.Commute_check.kind_pairs = 64
