(** The Section 5 algorithm: one shared Boolean.  Wait-free, reads/writes
    only, O(1) space; O(1) RMRs per process in the CC model, unbounded under
    DSM accounting. *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
