(* Re-export: the domain fan-out now lives in {!Smr.Parallel} so that the
   model checker ({!Smr.Explore}) can use it too; [Core.Parallel] remains
   the name the runner and CLI were built against. *)

include Smr.Parallel
