(* The Section 5 algorithm: one shared Boolean.

   Signal() sets B; Poll() reads it.  Wait-free, reads and writes only, O(1)
   space.  Under the CC model a waiter's repeated polls are served from its
   cache and cost one RMR in total until the signaler's write invalidates
   the copy, plus one more to re-read — O(1) RMRs per process.  Under the
   DSM model the same code has unbounded RMR complexity: B lives in one
   module and every other process's poll is remote.  The cross-model
   experiment (E5) shows exactly this. *)

open Smr

let name = "cc-flag"

let description = "single shared Boolean (Sec. 5); O(1) RMR in CC, unbounded in DSM"

let primitives = [ Op.Reads_writes ]

let flexibility = Signaling.any_flexibility

type t = { flag : bool Var.t }

let create ctx (_ : Signaling.config) =
  { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false }

let signal t _p = Program.write t.flag true

let poll t _p = Program.read t.flag

(* Lint claims: the Section 5 headline — reads/writes only, wait-free (no
   busy-wait anywhere), one operation per call, and only the signaler ever
   writes the flag.  The amortized claims are the theorem itself, proved
   statically by the cache-lattice pass: Signal pays one RMR per call under
   any CC protocol, and a poller pays nothing in steady state — it re-reads
   only when an external write invalidates its cached copy, at most once
   per Signal ([refills = 1]).  B is a one-shot flag only ever written
   [true], so concurrent Signals commute (the const-write fact). *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "B" ];
      const_writes = [ "B" ];
      calls =
        [ ("signal",
           { spin = No_spin;
             dsm_rmrs = Rmr 1;
             cc_amortized = Amortized { steady = Rmr 1; refills = 0 } });
          ("poll",
           { spin = No_spin;
             dsm_rmrs = Rmr 1;
             cc_amortized = Amortized { steady = Rmr 0; refills = 1 } }) ] }
