(** Open-system load generation: catalog algorithms under the flat engine
    and the workload driver.  Shared by `separation load`, E14/E15 and the
    determinism tests. *)

type scenario = {
  sc_algorithm : (module Signaling.POLLING);
  sc_model : Scenario.model_tag;
  sc_ways : int;
  sc_ll_ways : int;
  sc_spec : Workload.Driver.spec;
}

val scenario :
  ?ways:int ->
  ?ll_ways:int ->
  algorithm:(module Signaling.POLLING) ->
  model:Scenario.model_tag ->
  Workload.Driver.spec ->
  scenario

val flat_model : ways:int -> Scenario.model_tag -> Smr.Flat_sim.model_spec

val prepare :
  scenario -> Workload.Driver.instance * Smr.Var.layout * int
(** Instantiate the scenario's algorithm: the driver instance, the frozen
    memory layout, and the machine size ([waiters + 1]).  Deterministic;
    {!run} is [prepare] plus {!Workload.Driver.run}.  Exposed so callers
    that arm observability hooks (the profiler sizes counter planes from
    the layout) share the exact instantiation path. *)

val run :
  ?counters:Obs.Counters.t ->
  ?on_cache:Smr.Flat_sim.cache_cb ->
  scenario ->
  Workload.Driver.report
(** Deterministic: the report is a function of the scenario alone.
    [counters] / [on_cache] pass through to the driver's flat engine. *)

type timing = {
  elapsed_s : float;
  states_per_sec : float;
  steps : int;
  bytes_per_process : int;
}

val timed : scenario -> Workload.Driver.report * timing
(** Like {!run}, with a wall clock around it.  Timing figures must stay out
    of deterministic output (stderr and [--perf-out] only). *)

val table :
  ?title:string -> (scenario * Workload.Driver.report) list -> Results.table
(** One row per scenario; byte-deterministic for a fixed scenario list. *)

val perf_json : (scenario * timing) list -> string
(** The [--perf-out] sidecar (wall-clock figures; never diffed). *)
