(* The Section 6 lower-bound construction, mechanized.

   Theorem 6.2 is proved by an adversary that (part 1) builds a regular
   history in which many waiters have "stabilized" — they busy-wait on local
   memory and will never again incur an RMR — while erasing or rolling
   forward any process that threatens to become visible to another; and
   (part 2) lets a judiciously chosen signaler run, erasing each stable
   waiter at the instant the signaler is about to see or touch it, forcing
   the signaler onto a "wild goose chase" worth one RMR per stabilized
   waiter while the surviving history contains O(1) participants.

   This module plays that construction against concrete algorithms:

   - Erasure is {!Smr.Sim.erase}: replay the trace without the victim,
     verifying that every survivor receives exactly its original responses.
     For read/write algorithms the verification always passes (a blind write
     leaves no trace in anyone's responses — Lemma 6.7); for F&I-based
     algorithms like [Dsm_queue] it fails, because every registrant is
     visible through the counter, and the failed erasures are reported —
     the mechanized witness of why the theorem's hypotheses exclude
     fetch-and-phi primitives.

   - Stability (Def. 6.8) is checked on an O(1) snapshot by running the
     process solo through [stability_polls] full Poll() calls and watching
     for RMRs; sound for poll-loop algorithms, whose local spin reaches a
     fixed point within a call or two (the horizon is a parameter).

   - Each part-1 round mirrors Lemma 6.10: advance every unstable waiter to
     its next RMR, resolve sees/touches conflicts by erasing the complement
     of a greedy independent set of the conflict graph (the Turán step),
     apply the read RMRs, and dispose of the write RMRs by the roll-forward
     case (many writers on one variable: keep them, roll the last writer
     forward to completion and termination) or the erasing case (one writer
     per variable, second conflict graph on previously-written variables).

   Regularity (Def. 6.6) of the evolving history is checked and reported
   after every round. *)

open Smr

module Pid_set = Sim.Pid_set

type round_stat = {
  round : int;
  active_before : int;
  stable : int; (* stable actives at classification time *)
  poised : int; (* unstable actives advanced to a pending RMR *)
  erased_conflicts : int;
  erased_writes : int;
  rolled_forward : Op.pid option;
  active_after : int;
  max_active_rmrs : int;
      (* property 3 of Def. 6.9: every active process has incurred at most
         [round + 1] RMRs once round [round] has been applied *)
  regular : bool;
  erase_failures : int; (* part-1 erasures that diverged and were skipped *)
}

type chase_stat = {
  signaler : Op.pid;
  signaler_rmrs : int;
  chase_erased : int;
  chase_erase_failures : int;
  signaler_steps : int;
}

type result = {
  algorithm : string;
  n : int;
  rounds : round_stat list;
  stable_waiters : int; (* actives stable when part 1 ended *)
  finished : int; (* |Fin| after part 1 *)
  part1_regular : bool;
  chase : chase_stat option; (* None if part 1 never stabilized everyone *)
  participants : int; (* in the final history *)
  total_rmrs : int; (* in the final history *)
  amortized : float; (* total_rmrs / participants *)
  spec_violated : bool;
      (* a surviving stable waiter polled false after Signal() completed —
         the contradiction at the heart of Lemma 6.13; never set for a
         correct algorithm *)
  spurious_true : bool; (* a Poll() returned true before any Signal() *)
  final_sim : Sim.t; (* the surviving history's machine, for inspection *)
}

type state = {
  sim : Sim.t;
  active : Pid_set.t;
  fin : Pid_set.t;
  inst : Signaling.instance;
  spurious : bool;
}

(* Adversary decision events ride on the machine's tracer: each records
   what the construction chose to do (erase, roll forward, chase...) at
   the current logical clock.  [pid = -1] marks whole-round decisions. *)
let decide st ~decision ~pid ~detail =
  match Sim.tracer st.sim with
  | None -> ()
  | Some tr ->
    Obs.Trace.emit tr
      (Obs.Event.Adversary { t = Sim.clock st.sim; decision; pid; detail })

let isqrt x =
  let rec go r = if (r + 1) * (r + 1) <= x then go (r + 1) else r in
  if x < 0 then 0 else go 0

(* --- driving waiters through repeated Poll() calls --- *)

let begin_poll st p =
  Sim.begin_call st.sim p ~label:Signaling.poll_label (st.inst.Signaling.i_poll p)

(* Advance p in the real machine until its next step would be an RMR,
   starting new Poll() calls as it completes old ones.  Only called on
   processes the stability check classified unstable, so an RMR is reached
   within the check's horizon. *)
let advance_to_rmr ~fuel st p =
  let rec go st fuel =
    if fuel = 0 then failwith "Adversary.advance_to_rmr: out of fuel"
    else
      match Sim.proc_state st.sim p with
      | Sim.Terminated -> st
      | Sim.Idle ->
        let spurious = st.spurious || Sim.last_result st.sim p = Some 1 in
        go { st with sim = begin_poll st p; spurious } (fuel - 1)
      | Sim.Running _ -> (
        match Sim.next_is_rmr st.sim p with
        | Some true -> st (* poised at its next RMR *)
        | Some false | None ->
          go { st with sim = Sim.advance st.sim p } (fuel - 1))
  in
  go st fuel

(* Definition 6.8 on a snapshot: run p solo through [polls] complete Poll()
   calls; stable iff it incurs no RMR.  The snapshot is discarded. *)
let is_stable ?(polls = 3) ?(fuel = 10_000) st p =
  let rmrs0 = Sim.rmrs st.sim p in
  (* The probe runs on a discarded snapshot: strip the tracer so probe
     steps never pollute the event stream or the metrics. *)
  let snapshot = Sim.with_tracer st.sim None in
  let rec go sim remaining fuel =
    if fuel = 0 then false (* ran too long: treat as unstable *)
    else if Sim.rmrs sim p > rmrs0 then false
    else
      match Sim.proc_state sim p with
      | Sim.Terminated -> true
      | Sim.Idle ->
        if remaining = 0 then true
        else
          go
            (Sim.begin_call sim p ~label:Signaling.poll_label
               (st.inst.Signaling.i_poll p))
            (remaining - 1) (fuel - 1)
      | Sim.Running _ -> go (Sim.advance sim p) remaining (fuel - 1)
  in
  go snapshot polls fuel

(* --- conflict graphs --- *)

(* The active processes p's pending operation would make visible: the owner
   of the module it touches, and the last writer of the value it observes
   (every operation except a blind write observes). *)
let visibility_targets st p =
  match Sim.peek st.sim p with
  | None -> []
  | Some inv ->
    let a = Op.addr_of inv in
    let mem = Sim.memory st.sim in
    let touch =
      match Var.layout_home (Sim.layout st.sim) a with
      | Var.Module q when q <> p && Pid_set.mem q st.active -> [ q ]
      | Var.Module _ | Var.Shared -> []
    in
    let sees =
      match inv with
      | Op.Write _ -> [] (* blind *)
      | _ -> (
        match Memory.last_writer mem a with
        | Some q when q <> p && Pid_set.mem q st.active -> [ q ]
        | Some _ | None -> [])
    in
    List.sort_uniq compare (touch @ sees)

(* Greedy independent set (the Turán step): visit vertices by ascending
   degree, keep a vertex iff none of its neighbours was kept. *)
let independent_set ~vertices ~edges =
  let degree = Hashtbl.create 64 in
  let bump v = Hashtbl.replace degree v (1 + Option.value ~default:0 (Hashtbl.find_opt degree v)) in
  List.iter
    (fun (p, q) ->
      bump p;
      bump q)
    edges;
  let deg v = Option.value ~default:0 (Hashtbl.find_opt degree v) in
  let ordered = List.sort (fun a b -> compare (deg a, a) (deg b, b)) vertices in
  let kept = Hashtbl.create 64 in
  let adjacent v =
    List.exists
      (fun (p, q) -> (p = v && Hashtbl.mem kept q) || (q = v && Hashtbl.mem kept p))
      edges
  in
  List.iter (fun v -> if not (adjacent v) then Hashtbl.replace kept v ()) ordered;
  fun v -> Hashtbl.mem kept v

(* Erase [victims] from the machine, skipping any whose erasure diverges
   (visible processes — impossible for read/write algorithms, routine for
   F&I ones).  Returns the new state and the number of failures. *)
let erase_best_effort st victims =
  List.fold_left
    (fun (st, failures) q ->
      if not (Pid_set.mem q st.active) then (st, failures)
      else
        match Sim.erase st.sim [ q ] with
        | sim ->
          decide st ~decision:"erase" ~pid:q ~detail:"";
          ({ st with sim; active = Pid_set.remove q st.active }, failures)
        | exception Sim.Replay_divergence _ ->
          decide st ~decision:"erase-blocked" ~pid:q ~detail:"visible";
          (st, failures + 1))
    (st, 0) victims

(* Resolve conflicts among the poised processes: build the conflict graph
   given by [targets] and erase victims until conflict-free; repeat
   (erasure changes last-writer information).  The victim choice is the
   [resolution] strategy: the proof's Turán step keeps a greedy
   independent set; the cruder [`Erase_all] ablation erases every conflict
   participant (sound, but needlessly shrinks the surviving waiter pool —
   the ablation quantifies by how much). *)
let resolve ?(resolution = `Independent_set) ~targets st poised =
  let rec go st poised erased failures guard =
    let live_poised = List.filter (fun p -> Pid_set.mem p st.active) poised in
    let edges =
      List.concat_map
        (fun p -> List.map (fun q -> (p, q)) (targets st p))
        live_poised
    in
    if edges = [] || guard = 0 then (st, live_poised, erased, failures)
    else
      let vertices = Pid_set.elements st.active in
      let keep =
        match resolution with
        | `Independent_set -> independent_set ~vertices ~edges
        | `Erase_all -> fun _ -> false
      in
      (* Only erase processes that actually participate in a conflict:
         erasing isolated vertices would shrink the active set for
         nothing. *)
      let in_conflict v = List.exists (fun (p, q) -> p = v || q = v) edges in
      let victims =
        List.filter (fun v -> (not (keep v)) && in_conflict v) vertices
      in
      let st, failed = erase_best_effort st victims in
      let succeeded = List.length victims - failed in
      if succeeded = 0 then
        (* Nothing erasable: the conflicts involve visible processes (F&I
           algorithms); give up on this resolution pass. *)
        (st, List.filter (fun p -> Pid_set.mem p st.active) poised,
         erased, failures + failed)
      else
        go st poised (erased + succeeded) (failures + failed) (guard - 1)
  in
  go st poised 0 0 (Pid_set.cardinal st.active + 2)

(* Conditions 1-2 of Def. 6.6: conflicts through the pending operations'
   sees/touches targets. *)
let resolve_conflicts ?resolution st poised =
  resolve ?resolution ~targets:visibility_targets st poised

(* Condition 3 of Def. 6.6 (the erasing case's second graph): a pending
   write on a variable previously written by another active process. *)
let prev_writer_targets st p =
  match Sim.peek st.sim p with
  | Some inv when not (Op.is_read_only inv) ->
    Memory.writers (Sim.memory st.sim) (Op.addr_of inv)
    |> List.filter (fun q -> q <> p && Pid_set.mem q st.active)
  | Some _ | None -> []

let resolve_write_conflicts ?resolution st poised =
  resolve ?resolution ~targets:prev_writer_targets st poised

(* Roll r forward (Lemma 6.10, roll-forward case): let it complete its
   ongoing Poll(), erasing any active process it is about to see or touch,
   then terminate it. *)
let roll_forward ~fuel st r =
  decide st ~decision:"roll-forward" ~pid:r ~detail:"";
  let rec go st fuel failures =
    if fuel = 0 then failwith "Adversary.roll_forward: out of fuel"
    else
      match Sim.proc_state st.sim r with
      | Sim.Idle | Sim.Terminated -> (st, failures)
      | Sim.Running _ ->
        let victims = visibility_targets st r in
        let st, f = erase_best_effort st victims in
        go { st with sim = Sim.advance st.sim r } (fuel - 1) (failures + f)
  in
  let st, failures = go st fuel 0 in
  let sim = Sim.terminate st.sim r in
  ( { st with
      sim;
      active = Pid_set.remove r st.active;
      fin = Pid_set.add r st.fin },
    failures )

(* Group the poised writers by target address; returns (addr, writers in
   poised order) with the largest group first. *)
let group_by_addr st writers =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match Sim.peek st.sim p with
      | Some inv ->
        let a = Op.addr_of inv in
        Hashtbl.replace tbl a
          (p :: Option.value ~default:[] (Hashtbl.find_opt tbl a))
      | None -> ())
    writers;
  Hashtbl.fold (fun a ps acc -> (a, List.rev ps) :: acc) tbl []
  |> List.sort (fun (_, ps) (_, qs) ->
         compare (List.length qs, qs) (List.length ps, ps))

let advance_pid st p = { st with sim = Sim.advance st.sim p }

(* One round of the Lemma 6.10 construction.  Returns [`Stabilized] when
   every active process is stable (part 1 is over), or the new state and
   the round's statistics. *)
let one_round ?resolution ~round ~stability_polls ~fuel st =
  let actives = Pid_set.elements st.active in
  let active_before = List.length actives in
  decide st ~decision:"round" ~pid:(-1)
    ~detail:(Printf.sprintf "round=%d active=%d" round active_before);
  let stable, unstable =
    List.partition (is_stable ~polls:stability_polls ~fuel st) actives
  in
  if unstable = [] then begin
    decide st ~decision:"stabilized" ~pid:(-1)
      ~detail:(Printf.sprintf "stable=%d" (List.length stable));
    `Stabilized (st, List.length stable)
  end
  else
    let st = List.fold_left (fun st p -> advance_to_rmr ~fuel st p) st unstable in
    let st, poised, erased_c, fail_c = resolve_conflicts ?resolution st unstable in
    let readers, writers =
      List.partition
        (fun p ->
          match Sim.peek st.sim p with
          | Some inv -> Op.is_read_only inv
          | None -> false)
        poised
    in
    (* Apply the read RMRs: conflict resolution guarantees they observe
       only finished processes (or initial values). *)
    let st = List.fold_left advance_pid st readers in
    let x = List.length writers in
    let st, erased_w, fail_w, rolled =
      if x = 0 then (st, 0, 0, None)
      else
        match group_by_addr st writers with
        | [] -> (st, 0, 0, None)
        | (_, group) :: _ when List.length group >= max 1 (isqrt x) ->
          (* Roll-forward case: keep the big same-variable group, erase the
             other writers, apply the group's writes, roll the last writer
             forward. *)
          let in_group = Pid_set.of_list group in
          let victims =
            List.filter (fun p -> not (Pid_set.mem p in_group)) writers
          in
          let st, f1 = erase_best_effort st victims in
          let group = List.filter (fun p -> Pid_set.mem p st.active) group in
          let st = List.fold_left advance_pid st group in
          (match List.rev group with
          | [] -> (st, List.length victims - f1, f1, None)
          | r :: _ ->
            let st, f2 = roll_forward ~fuel st r in
            (st, List.length victims - f1, f1 + f2, Some r))
        | groups ->
          (* Erasing case: one writer per variable, then resolve
             previously-written-variable conflicts, then apply. *)
          let reps = List.filter_map (fun (_, ps) -> List.nth_opt ps 0) groups in
          let is_rep = Pid_set.of_list reps in
          let victims =
            List.filter (fun p -> not (Pid_set.mem p is_rep)) writers
          in
          let st, f1 = erase_best_effort st victims in
          let st, reps, erased2, f2 = resolve_write_conflicts ?resolution st reps in
          let st = List.fold_left advance_pid st reps in
          (st, List.length victims - f1 + erased2, f1 + f2, None)
    in
    let finished q = Pid_set.mem q st.fin in
    let stat =
      { round;
        active_before;
        stable = List.length stable;
        poised = List.length poised;
        erased_conflicts = erased_c;
        erased_writes = erased_w;
        rolled_forward = rolled;
        active_after = Pid_set.cardinal st.active;
        max_active_rmrs =
          Pid_set.fold (fun p m -> max m (Sim.rmrs st.sim p)) st.active 0;
        regular = History.is_regular (Sim.steps st.sim) ~finished;
        erase_failures = fail_c + fail_w }
    in
    `Continue (st, stat)

(* --- Part 2: the wild goose chase (Lemma 6.13) --- *)

(* The signaler must be a process whose memory module no participant has
   written, so that every flag the signaler is forced to deliver is an RMR.
   HA histories let each process call Poll() and Signal() in any order
   (Def. 6.1), so the signaler may be one of the stable waiters; a process
   that never participated is preferred when one exists.  A finished
   (rolled-forward) process cannot be chosen: it has terminated. *)
let choose_signaler st =
  let sim = st.sim in
  let written_modules =
    (* Modules written by a process other than their owner: a self-write
       does not disqualify (the proof needs "process p has never written
       memory local to s" for p ≠ s). *)
    List.fold_left
      (fun acc (s : History.step) ->
        if s.History.wrote then
          match s.History.home with
          | Var.Module q when q <> s.History.pid -> Pid_set.add q acc
          | Var.Module _ | Var.Shared -> acc
        else acc)
      Pid_set.empty (Sim.steps sim)
  in
  let candidates =
    List.filter
      (fun p ->
        (not (Pid_set.mem p st.fin)) && not (Pid_set.mem p written_modules))
      (List.init (Sim.n sim) Fun.id)
  in
  let fresh, stable =
    List.partition (fun p -> not (Pid_set.mem p st.active)) candidates
  in
  match (fresh, stable) with
  | p :: _, _ -> Some p
  | [], p :: _ -> Some p
  | [], [] -> None

(* Let the chosen signaler run Signal() to completion, erasing every stable
   waiter it is about to see or touch just before the offending step.
   Erasures that diverge mark the target unerasable (it is visible — the
   F&I defense) and the signaler proceeds. *)
let goose_chase ~fuel st s =
  let st =
    { st with
      sim =
        Sim.begin_call st.sim s ~label:Signaling.signal_label
          (st.inst.Signaling.i_signal s) }
  in
  let rec go st fuel erased failures unerasable =
    if fuel = 0 then failwith "Adversary.goose_chase: out of fuel"
    else
      match Sim.proc_state st.sim s with
      | Sim.Idle | Sim.Terminated -> (st, erased, failures)
      | Sim.Running _ -> (
        let targets =
          List.filter
            (fun q -> not (Pid_set.mem q unerasable))
            (visibility_targets st s)
        in
        match targets with
        | [] -> go (advance_pid st s) (fuel - 1) erased failures unerasable
        | q :: _ -> (
          match Sim.erase st.sim [ q ] with
          | sim ->
            decide st ~decision:"chase-erase" ~pid:q ~detail:"";
            go
              { st with sim; active = Pid_set.remove q st.active }
              fuel (erased + 1) failures unerasable
          | exception Sim.Replay_divergence _ ->
            decide st ~decision:"chase-blocked" ~pid:q ~detail:"visible";
            go st fuel erased (failures + 1) (Pid_set.add q unerasable)))
  in
  go st fuel 0 0 Pid_set.empty

(* After Signal() completed, every surviving stable waiter must now be able
   to see the signal: poll each one (on a snapshot) and flag a
   specification violation if any still reads false — the contradiction of
   Lemma 6.13. *)
let validate_survivors ~fuel st =
  (* Validation polls run on discarded snapshots — silence them. *)
  let snapshot = Sim.with_tracer st.sim None in
  Pid_set.fold
    (fun p violated ->
      violated
      ||
      let sim = Sim.run_to_idle ~fuel snapshot p in
      let sim, result =
        Sim.run_call ~fuel sim p ~label:Signaling.poll_label
          (st.inst.Signaling.i_poll p)
      in
      ignore sim;
      result = 0)
    st.active false

(* --- the full construction --- *)

let run (module A : Signaling.POLLING) ~n ?tracer ?(stability_polls = 3)
    ?(max_rounds = 24) ?(fuel = 2_000_000) ?resolution () =
  if A.flexibility.Signaling.signaler_fixed then
    invalid_arg
      "Adversary.run: the lower bound concerns algorithms whose signaler is \
       not fixed in advance";
  let ctx = Var.Ctx.create () in
  let pids = List.init n Fun.id in
  let cfg = Signaling.config ~n ~waiters:pids ~signalers:pids in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim =
    Sim.with_tracer (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n)
      tracer
  in
  let st =
    { sim; active = Pid_set.of_list pids; fin = Pid_set.empty; inst;
      spurious = false }
  in
  (* Part 1: rounds until every active waiter is stable. *)
  let rec rounds st acc i =
    if i >= max_rounds then (st, List.rev acc, None)
    else
      match one_round ?resolution ~round:i ~stability_polls ~fuel st with
      | `Stabilized (st, stable) -> (st, List.rev acc, Some stable)
      | `Continue (st, stat) -> rounds st (stat :: acc) (i + 1)
  in
  let st, round_stats, stabilized = rounds st [] 0 in
  let finished q = Pid_set.mem q st.fin in
  let part1_regular = History.is_regular (Sim.steps st.sim) ~finished in
  match stabilized with
  | None ->
    (* The construction failed to stabilize the waiters within the round
       budget — report what happened without a chase. *)
    let participants = Pid_set.cardinal (Sim.participants st.sim) in
    let total_rmrs = Sim.total_rmrs st.sim in
    { algorithm = A.name;
      n;
      rounds = round_stats;
      stable_waiters = 0;
      finished = Pid_set.cardinal st.fin;
      part1_regular;
      chase = None;
      participants;
      total_rmrs;
      amortized =
        (if participants = 0 then 0.
         else float_of_int total_rmrs /. float_of_int participants);
      spec_violated = false;
      spurious_true = st.spurious;
      final_sim = st.sim }
  | Some stable_waiters ->
    (* Let each stable process run solo to the end of its pending call;
       stability means this costs no RMRs. *)
    let st =
      Pid_set.fold
        (fun p st -> { st with sim = Sim.run_to_idle ~fuel st.sim p })
        st.active st
    in
    let chase_result =
      match choose_signaler st with
      | None -> None
      | Some s ->
        (* If the signaler is drafted from the stable waiters, it stops
           being a chase target itself. *)
        decide st ~decision:"signaler" ~pid:s ~detail:"";
        let st = { st with active = Pid_set.remove s st.active } in
        let st', erased, failures = goose_chase ~fuel st s in
        Some (st', s, erased, failures)
    in
    (match chase_result with
    | None ->
      let participants = Pid_set.cardinal (Sim.participants st.sim) in
      let total_rmrs = Sim.total_rmrs st.sim in
      { algorithm = A.name;
        n;
        rounds = round_stats;
        stable_waiters;
        finished = Pid_set.cardinal st.fin;
        part1_regular;
        chase = None;
        participants;
        total_rmrs;
        amortized =
          (if participants = 0 then 0.
           else float_of_int total_rmrs /. float_of_int participants);
        spec_violated = false;
        spurious_true = st.spurious;
        final_sim = st.sim }
    | Some (st, s, erased, failures) ->
      let spec_violated = validate_survivors ~fuel st in
      let participants = Pid_set.cardinal (Sim.participants st.sim) in
      let total_rmrs = Sim.total_rmrs st.sim in
      { algorithm = A.name;
        n;
        rounds = round_stats;
        stable_waiters;
        finished = Pid_set.cardinal st.fin;
        part1_regular;
        chase =
          Some
            { signaler = s;
              signaler_rmrs = Sim.rmrs st.sim s;
              chase_erased = erased;
              chase_erase_failures = failures;
              signaler_steps = Sim.step_count st.sim s };
        participants;
        total_rmrs;
        amortized =
          (if participants = 0 then 0.
           else float_of_int total_rmrs /. float_of_int participants);
        spec_violated;
        spurious_true = st.spurious;
        final_sim = st.sim })

let pp_round ppf r =
  Fmt.pf ppf
    "round %d: active %d -> %d (stable %d, poised %d, erased %d+%d%s)%s%s"
    r.round r.active_before r.active_after r.stable r.poised r.erased_conflicts
    r.erased_writes
    (match r.rolled_forward with
    | Some p -> Printf.sprintf ", rolled p%d forward" p
    | None -> "")
    (if r.regular then "" else " [irregular]")
    (if r.erase_failures > 0 then
       Printf.sprintf " [%d erasures blocked]" r.erase_failures
     else "")

let pp_result ppf r =
  Fmt.pf ppf "adversary vs %s (N=%d):@." r.algorithm r.n;
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_round s) r.rounds;
  Fmt.pf ppf "  part 1: %d stable waiters, %d finished, regular=%b@."
    r.stable_waiters r.finished r.part1_regular;
  (match r.chase with
  | None -> Fmt.pf ppf "  part 2: no chase (construction did not complete)@."
  | Some c ->
    Fmt.pf ppf
      "  part 2: signaler p%d incurred %d RMRs (%d waiters erased, %d \
       erasures blocked)@."
      c.signaler c.signaler_rmrs c.chase_erased c.chase_erase_failures);
  Fmt.pf ppf "  final history: %d participants, %d total RMRs, %.2f amortized%s%s@."
    r.participants r.total_rmrs r.amortized
    (if r.spec_violated then " [SPEC VIOLATED]" else "")
    (if r.spurious_true then " [SPURIOUS TRUE]" else "")

(* --- Randomized adversary strategies ---

   The Section 6 construction above plays one hand-built strategy
   (erasing/rolling-forward).  These two play probability instead: a
   PCT-style priority schedule (random distinct priorities, d-1 random
   demotion points — detection probability >= 1/(n * horizon^(d-1)) per
   seed for a depth-d bug) and a plain seed-reproducible uniform random
   walk.  Both drive the standard open workload (waiters poll until they
   learn, the signaler fires once the clock passes [signal_after]) and
   report the Spec 4.1 verdict alongside the RMR accounting, so the fuzz
   harness and the CLI can sweep seeds. *)

type random_outcome = {
  ro_policy : string;
  ro_seed : int;
  ro_outcome : Scenario.outcome;
}

let run_randomized policy (module A : Signaling.POLLING) ~n ~seed ?cfg ?model
    ?tracer ?signal_after ?max_events () =
  let cfg =
    match cfg with Some c -> c | None -> Algorithms.config_for (module A) ~n
  in
  let model = match model with Some m -> m | None -> `Dsm in
  let outcome =
    Scenario.run_random
      (module A)
      ~model ~cfg ~seed ?tracer ~policy ?signal_after ?max_events ()
  in
  { ro_policy = Schedule.policy_name policy; ro_seed = seed; ro_outcome = outcome }

let run_pct (module A : Signaling.POLLING) ~n ~seed ?(depth = 3) ?horizon ?cfg
    ?model ?tracer ?signal_after ?max_events () =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> 40 * n (* roughly the step count of an n-process run *)
  in
  (* Past the last demotion point the priority order is frozen, so events
     beyond a small multiple of the horizon cannot change the verdict —
     they only let a fixed top-priority waiter spin to the generic event
     cap.  PCT's detection guarantee is stated over the horizon anyway. *)
  let max_events =
    match max_events with Some m -> m | None -> max (8 * horizon) 2_000
  in
  run_randomized
    (Schedule.Pct { seed; depth; horizon })
    (module A)
    ~n ~seed ?cfg ?model ?tracer ?signal_after ~max_events ()

let run_walk (module A : Signaling.POLLING) ~n ~seed ?cfg ?model ?tracer
    ?signal_after ?max_events () =
  run_randomized
    (Schedule.Random_seed seed)
    (module A)
    ~n ~seed ?cfg ?model ?tracer ?signal_after ?max_events ()

let pp_random_outcome ppf r =
  let o = r.ro_outcome in
  Fmt.pf ppf
    "%s: %d RMRs total (signaler %d, max waiter %d), %d participants, %d \
     unfinished, %d violation(s)"
    r.ro_policy o.Scenario.total_rmrs o.Scenario.signaler_rmrs
    o.Scenario.max_waiter_rmrs o.Scenario.participants
    o.Scenario.unfinished_waiters
    (List.length o.Scenario.violations)
