(** Seeded lint-violation fixtures.

    Four deliberately broken variants of shipped algorithms, registered
    with [mutant = true] so the default lint run skips them; including them
    (tests, CI's expected-failure step) must produce exactly their four
    violations — a remote busy-wait behind a local-spin claim, a CAS behind
    a reads/writes-only declaration, a hidden remote scan behind an O(1)
    amortized claim, and a false const-write independence fact. *)

val remote_spin_name : string
(** A dsm-fixed-style broadcast whose per-waiter flags were "accidentally"
    homed in the shared module; its Wait() claims local spinning but polls
    a remote cell.  Expected violation: [local-spin] on [wait]. *)

val cas_flag_name : string
(** cc-flag with Signal() "optimized" into a CAS while still declaring
    reads/writes only.  Expected violation: [primitive-class] on
    [signal]. *)

val amortized_scan_name : string
(** cc-flag whose Signal() hides a periodic scan of every waiter's
    heartbeat cell — cells the waiters re-dirty on every poll — while
    still claiming the 1-RMR-per-Signal, zero-refill headline.  Expected
    violation: [amortized] on [signal]. *)

val indep_fact_name : string
(** A flag algorithm that writes its cell with two distinct values while
    declaring it a const-write independence fact.  Expected violation:
    [independence] at the entry level. *)

val register : n:int -> unit
