(** Seeded lint-violation fixtures.

    Two deliberately broken variants of shipped algorithms, registered with
    [mutant = true] so the default lint run skips them; including them
    (tests, CI's expected-failure step) must produce exactly their two
    violations — a remote busy-wait behind a local-spin claim, and a CAS
    behind a reads/writes-only declaration. *)

val remote_spin_name : string
(** A dsm-fixed-style broadcast whose per-waiter flags were "accidentally"
    homed in the shared module; its Wait() claims local spinning but polls
    a remote cell.  Expected violation: [local-spin] on [wait]. *)

val cas_flag_name : string
(** cc-flag with Signal() "optimized" into a CAS while still declaring
    reads/writes only.  Expected violation: [primitive-class] on
    [signal]. *)

val register : n:int -> unit
