(** Section 7, "single waiter" (identity not fixed in advance): the W/S
    handshake with a local forwarding flag; O(1) RMRs per process worst-case
    in the DSM model. *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
