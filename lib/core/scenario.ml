(* Scenario drivers: execute a signaling algorithm under a cost model and a
   schedule, check Specification 4.1 over the recorded history, and report
   RMR accounting.

   Two drivers are provided.  [run_phased] is deterministic — waiters poll,
   the signaler signals, waiters poll until they learn — and is what the
   experiment tables use, so their numbers are reproducible.  [run_random]
   interleaves all processes at step granularity under a seeded PRNG and is
   what the property-based tests use to hunt for safety violations. *)

open Smr

type outcome = {
  sim : Sim.t;
  violations : Signaling.violation list;
  total_rmrs : int;
  total_messages : int;
  participants : int;
  signaler_rmrs : int;
  max_waiter_rmrs : int;
  amortized : float; (* total RMRs / participants *)
  unfinished_waiters : int; (* waiters that never saw the signal *)
}

let build (module A : Signaling.POLLING) cfg =
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate (module A) ctx cfg in
  (inst, Var.Ctx.freeze ctx)

(* The model labels the experiments sweep over. *)
type model_tag =
  [ `Dsm
  | `Cc_wt
  | `Cc_wb
  | `Cc_lfcu
  | `Cc of Cc.protocol * Cc.interconnect ]

let model_tag_name : model_tag -> string = function
  | `Dsm -> "dsm"
  | `Cc_wt -> "cc-wt"
  | `Cc_wb -> "cc-wb"
  | `Cc_lfcu -> "cc-lfcu"
  | `Cc (p, i) ->
    Printf.sprintf "%s/%s" (Cc.protocol_name p) (Cc.interconnect_name i)

let make_model ?tracer ~n layout : model_tag -> Cost_model.t = function
  | `Dsm -> Cost_model.dsm layout
  | `Cc_wt ->
    Cc.model ?tracer ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~n ()
  | `Cc_wb ->
    Cc.model ?tracer ~protocol:Cc.Write_back ~interconnect:Cc.Bus ~n ()
  | `Cc_lfcu ->
    Cc.model ?tracer ~protocol:Cc.Write_update ~interconnect:Cc.Bus ~n ()
  | `Cc (protocol, interconnect) -> Cc.model ?tracer ~protocol ~interconnect ~n ()

let summarize cfg sim ~unfinished =
  let calls = Sim.calls sim in
  let violations = Signaling.check_polling calls in
  let participants = Sim.Pid_set.cardinal (Sim.participants sim) in
  let signaler_rmrs =
    List.fold_left (fun acc p -> max acc (Sim.rmrs sim p)) 0 cfg.Signaling.signalers
  in
  let max_waiter_rmrs =
    List.fold_left (fun acc p -> max acc (Sim.rmrs sim p)) 0 cfg.Signaling.waiters
  in
  let total_rmrs = Sim.total_rmrs sim in
  { sim;
    violations;
    total_rmrs;
    total_messages = Sim.total_messages sim;
    participants;
    signaler_rmrs;
    max_waiter_rmrs;
    amortized =
      (if participants = 0 then 0.
       else float_of_int total_rmrs /. float_of_int participants);
    unfinished_waiters = unfinished }

(* Deterministic: [pre_polls] rounds of Poll() per participating waiter
   (all returning false), one Signal(), then each participating waiter
   polls until it sees true (up to [post_poll_bound] attempts).

   [active_waiters] restricts which of the configured waiters actually
   participate — the partial-participation scenarios of E3/E4, where the
   amortized cost of an O(W)-signaler algorithm blows up because only
   o(W) waiters show up. *)
let run_phased (module A : Signaling.POLLING) ~model ~cfg ?tracer
    ?active_waiters ?(pre_polls = 2) ?(post_poll_bound = 4) ?fuel () =
  let inst, layout = build (module A) cfg in
  let participating =
    match active_waiters with Some l -> l | None -> cfg.Signaling.waiters
  in
  let model = make_model ?tracer ~n:cfg.Signaling.n layout model in
  let sim =
    Sim.with_tracer (Sim.create ~model ~layout ~n:cfg.Signaling.n) tracer
  in
  let poll sim p =
    Sim.run_call ?fuel sim p ~label:Signaling.poll_label (inst.Signaling.i_poll p)
  in
  (* Phase 1: waiters poll and must see false. *)
  let sim =
    List.fold_left
      (fun sim round ->
        ignore round;
        List.fold_left
          (fun sim w ->
            let sim, r = poll sim w in
            if r <> 0 then
              failwith "Scenario.run_phased: Poll returned true before Signal";
            sim)
          sim participating)
      sim
      (List.init pre_polls Fun.id)
  in
  (* Phase 2: the signaler signals. *)
  let sim =
    List.fold_left
      (fun sim s ->
        fst
          (Sim.run_call ?fuel sim s ~label:Signaling.signal_label
             (inst.Signaling.i_signal s)))
      sim cfg.Signaling.signalers
  in
  (* Phase 3: waiters poll until true. *)
  let sim, unfinished =
    List.fold_left
      (fun (sim, unfinished) w ->
        let rec go sim attempts =
          if attempts >= post_poll_bound then (sim, false)
          else
            let sim, r = poll sim w in
            if r = 1 then (sim, true) else go sim (attempts + 1)
        in
        let sim, learned = go sim 0 in
        (sim, if learned then unfinished else unfinished + 1))
      (sim, 0) participating
  in
  summarize cfg sim ~unfinished

(* Randomized: all processes interleave at step granularity; the signaler
   fires once the event clock passes [signal_after].  Waiters poll until
   they see true, then stop.  [policy] overrides the uniform random walk —
   the PCT adversary passes [Schedule.Pct] here. *)
let run_random (module A : Signaling.POLLING) ~model ~cfg ~seed ?tracer ?policy
    ?(signal_after = 50) ?(max_events = 200_000) () =
  let inst, layout = build (module A) cfg in
  let model = make_model ?tracer ~n:cfg.Signaling.n layout model in
  let sim =
    Sim.with_tracer (Sim.create ~model ~layout ~n:cfg.Signaling.n) tracer
  in
  let is_signaler p = List.mem p cfg.Signaling.signalers in
  let signaled = Hashtbl.create 4 in
  let behavior sim p : Schedule.action =
    if is_signaler p then
      if Hashtbl.mem signaled p then Stop
      else if Sim.clock sim >= signal_after then (
        Hashtbl.replace signaled p ();
        Start (Signaling.signal_label, inst.Signaling.i_signal p))
      else Pause
    else
      match Sim.last_result sim p with
      | Some 1 -> Stop (* saw the signal *)
      | Some 0 | None ->
        Start (Signaling.poll_label, inst.Signaling.i_poll p)
      | Some _ -> assert false
  in
  let pids =
    List.sort_uniq compare (cfg.Signaling.waiters @ cfg.Signaling.signalers)
  in
  let policy =
    match policy with Some p -> p | None -> Schedule.Random_seed seed
  in
  let sim = Schedule.run ~max_events ~policy ~behavior ~pids sim in
  let unfinished =
    List.length
      (List.filter (fun w -> Sim.last_result sim w <> Some 1) cfg.Signaling.waiters)
  in
  summarize cfg sim ~unfinished

(* Blocking semantics: waiters call Wait() once — it returns only after a
   Signal() begins — while the signaler fires once the event clock passes
   [signal_after].  Checked against the blocking half of Spec. 4.1. *)
let run_blocking (module A : Signaling.BLOCKING) ~model ~cfg ~seed ?tracer
    ?(signal_after = 60) ?(max_events = 500_000) () =
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate_blocking (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let model = make_model ?tracer ~n:cfg.Signaling.n layout model in
  let sim =
    Sim.with_tracer (Sim.create ~model ~layout ~n:cfg.Signaling.n) tracer
  in
  let is_signaler p = List.mem p cfg.Signaling.signalers in
  let signaled = Hashtbl.create 4 in
  let started_wait = Hashtbl.create 16 in
  let behavior sim p : Schedule.action =
    if is_signaler p then
      if Hashtbl.mem signaled p then Stop
      else if Sim.clock sim >= signal_after then (
        Hashtbl.replace signaled p ();
        Start (Signaling.signal_label, inst.Signaling.b_signal p))
      else Pause
    else if Hashtbl.mem started_wait p then Stop
    else (
      Hashtbl.replace started_wait p ();
      Start (Signaling.wait_label, inst.Signaling.b_wait p))
  in
  let pids =
    List.sort_uniq compare (cfg.Signaling.waiters @ cfg.Signaling.signalers)
  in
  let sim =
    Schedule.run ~max_events ~policy:(Schedule.Random_seed seed) ~behavior ~pids
      sim
  in
  let calls = Sim.calls sim in
  let blocking_violations = Signaling.check_blocking calls in
  let unfinished =
    List.length
      (List.filter
         (fun w ->
           not
             (List.exists
                (fun (c : Smr.History.call) ->
                  c.Smr.History.c_pid = w
                  && c.Smr.History.c_label = Signaling.wait_label
                  && c.Smr.History.c_finished <> None)
                calls))
         cfg.Signaling.waiters)
  in
  (* [summarize] already contributes the polling-clause violations (none of
     which a blocking history's Wait calls can trigger twice), so the Wait
     clause's findings are simply appended. *)
  let base = summarize cfg sim ~unfinished in
  { base with violations = base.violations @ blocking_violations }
