(* Section 7, blocking semantics with waiters and signaler not fixed:
   reduce to the single-waiter case through leader election.

   "The problem can be reduced to the single-waiter case by having the
   waiters elect a leader, which learns about the signal and then ensures
   that the signal is propagated to the remaining waiters."  Here:

   - waiters elect a leader (losers spin locally; see
     {!Sync.Leader_election} for the documented substitution of [13]);
   - the leader plays the single unknown waiter of [Dsm_single_waiter],
     re-running its Poll() until it returns true — after the first poll
     this spins on the leader's own module;
   - the leader then broadcasts completion into per-process cells homed at
     their owners, on which the followers spin locally.

   Follower cost is O(1) RMRs in both models; the leader pays O(N) for the
   broadcast (the paper's [12]-based version is O(1) per process; DESIGN.md
   records the simplification).  The solution is terminating, not
   wait-free — blocking semantics permit exactly that. *)

open Smr
open Program.Syntax

let name = "dsm-leader"

let description =
  "blocking semantics: waiters elect a leader that plays the single-waiter \
   protocol and fans the signal out (Sec. 7)"

let primitives = [ Op.Reads_writes; Op.Fetch_and_phi (* election TAS *) ]

let flexibility = Signaling.any_flexibility

type t = {
  n : int;
  election : Sync.Leader_election.t;
  single : Dsm_single_waiter.t;
  led : bool Var.t array; (* led.(i) homed at module i: leader's fan-out *)
}

let create ctx (cfg : Signaling.config) =
  { n = cfg.Signaling.n;
    election = Sync.Leader_election.create ctx ~n:cfg.Signaling.n;
    single = Dsm_single_waiter.create ctx cfg;
    led =
      Var.Ctx.bool_array ctx ~name:"led"
        ~home:(fun i -> Var.Module i)
        cfg.Signaling.n
        (fun _ -> false) }

let signal t p = Dsm_single_waiter.signal t.single p

let wait t p =
  let* leader = Sync.Leader_election.elect t.election p in
  if leader = p then
    (* The leader is the one waiter the single-waiter protocol serves. *)
    let* () = Program.repeat_until (Dsm_single_waiter.poll t.single p) in
    Program.for_ 0 (t.n - 1) (fun i -> Program.write t.led.(i) true)
  else Program.await t.led.(p) Fun.id

(* Lint claims: blocking semantics with every busy-wait local — election
   losers spin on their own announce cell, the leader polls its own
   registered/V cells, non-leaders block on their own led cell.  Wait()'s
   worst acyclic cost is the winning path: election TAS + n-1 announce
   fan-out + the W/S registration + n-1 led fan-out = 2n+1. *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "registered"; "S"; "V" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = No_spin; dsm_rmrs = Rmr 3; cc_amortized = Amortized { steady = Rmr 2; refills = 1 } });
          ("wait", { spin = Local_spin; dsm_rmrs = Rmr ((2 * n) + 1); cc_amortized = Amortized { steady = Rmr ((3 * n) + 1); refills = n - 1 } }) ] }
