(** Section 7, "many waiters, fixed in advance": per-waiter local flags; the
    signaler writes each fixed waiter's flag unconditionally.  Waiters incur
    zero RMRs in DSM; the signaler pays O(W) worst-case, and amortized cost
    exceeds O(1) when only o(W) waiters participate. *)

include Signaling.POLLING

val create_targets : Smr.Var.Ctx.ctx -> n:int -> targets:Smr.Op.pid list -> t
(** Flags for all [n] processes, with Signal() writing exactly [targets];
    shared with {!Dsm_broadcast} (which targets everyone). *)

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
