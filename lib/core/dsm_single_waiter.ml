(* Section 7, "single waiter" (ID not fixed in advance): O(1) RMRs per
   process worst-case in the DSM model, matching the CC upper bound.

   Global W (the waiter's announced ID, initially NIL) and S (the signal
   flag), plus V[i] homed at process i.  The waiter's first Poll() writes W
   and then reads S; later polls read the local V[i].  Signal() writes S
   first and then reads W: whichever side loses the W/S race still observes
   the other's earlier write, the classic flag handshake.  If the signaler
   reads a registered waiter, it forwards the signal into the waiter's
   module, making all subsequent polls local. *)

open Smr
open Program.Syntax

let name = "dsm-single"

let description =
  "single unknown waiter via W/S handshake + local forwarding flag (Sec. 7); \
   O(1) RMRs per process worst-case in DSM"

let primitives = [ Op.Reads_writes ]

let flexibility = { Signaling.any_flexibility with max_waiters = Some 1 }

type t = {
  w : Op.pid option Var.t; (* the waiter's announcement *)
  s : bool Var.t; (* the signal flag *)
  v : bool Var.t array; (* v.(i) homed at module i: forwarded signal *)
  registered : bool Var.t array; (* per-process local memo: "I announced" *)
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  { w = Var.Ctx.pid_opt ctx ~name:"W" ~home:Var.Shared None;
    s = Var.Ctx.bool ctx ~name:"S" ~home:Var.Shared false;
    v =
      Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    registered =
      Var.Ctx.bool_array ctx ~name:"registered"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let poll t p =
  let* already = Program.read t.registered.(p) in
  if already then Program.read t.v.(p)
  else
    let* () = Program.write t.registered.(p) true in
    let* () = Program.write t.w (Some p) in
    Program.read t.s

let signal t _p =
  let* () = Program.write t.s true in
  let* waiter = Program.read t.w in
  match waiter with
  | None -> Program.return () (* no waiter announced yet; it will read S *)
  | Some j -> Program.write t.v.(j) true

(* Lint claims: the Section 7 W/S handshake — wait-free both sides, O(1)
   RMRs worst case: Poll() at most registers (write W, read S), Signal()
   raises S, reads W and forwards into the waiter's local flag.  With a
   single waiter every cell has one writing process. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "W"; "S"; "V"; "registered" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = No_spin; dsm_rmrs = Rmr 3; cc_amortized = Amortized { steady = Rmr 2; refills = 1 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 3; refills = 2 } }) ] }
