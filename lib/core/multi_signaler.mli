(** Section 7, many signalers: wrap any polling algorithm so that signalers
    elect a leader; the winner runs the inner Signal() and raises a
    completion flag on which losing signalers wait (a Signal() may only
    return once the signal is observable — Specification 4.1). *)

module Make (Inner : Signaling.POLLING) : Signaling.POLLING

val claims : inner:Analysis.Claims.t -> n:int -> Analysis.Claims.t
(** Lint claims for [Make] over an inner algorithm with claims [inner]:
    Poll() inherits the inner poll claim; Signal() busy-waits remotely on
    the completion flag (see docs/EXTENDING.md). *)
