(** Section 7, many signalers: wrap any polling algorithm so that signalers
    elect a leader; the winner runs the inner Signal() and raises a
    completion flag on which losing signalers wait (a Signal() may only
    return once the signal is observable — Specification 4.1). *)

module Make (Inner : Signaling.POLLING) : Signaling.POLLING
