(* The signaling problem (paper, Section 4).

   Signalers must make waiters aware that an event has occurred.  With
   polling semantics a waiter calls Poll(), which returns whether the signal
   has been issued; with blocking semantics it calls Wait(), which returns
   only after some Signal() has begun.  Specification 4.1 pins down the
   safety properties; [check_polling] and [check_blocking] verify them over
   a recorded history's call intervals.

   The problem dimensions of Section 4 — how many waiters/signalers, whether
   their IDs are fixed in advance — are captured by [config] and by each
   algorithm's [flexibility] declaration, so the scenario runner can refuse
   to run an algorithm outside the variant it solves. *)

open Smr

let signal_label = "signal"
let poll_label = "poll"
let wait_label = "wait"

type config = {
  n : int; (* total processes in the system *)
  waiters : Op.pid list; (* processes that may act as waiters *)
  signalers : Op.pid list; (* processes that may call Signal() *)
}

let config ~n ~waiters ~signalers = { n; waiters; signalers }

(* Which problem variant (Sec. 4 / Sec. 7) an algorithm solves. *)
type flexibility = {
  waiters_fixed : bool;
      (* the algorithm must be told the exact waiter set at creation *)
  max_waiters : int option; (* e.g. Some 1 for the single-waiter algorithm *)
  signaler_fixed : bool;
      (* the signaler's identity must be known at creation *)
  max_signalers : int option;
}

let any_flexibility =
  { waiters_fixed = false;
    max_waiters = None;
    signaler_fixed = false;
    max_signalers = None }

module type POLLING = sig
  val name : string

  val description : string

  val primitives : Op.primitive_class list

  val flexibility : flexibility

  type t

  val create : Var.Ctx.ctx -> config -> t

  val signal : t -> Op.pid -> unit Program.t

  val poll : t -> Op.pid -> bool Program.t
end

module type BLOCKING = sig
  val name : string

  val description : string

  val primitives : Op.primitive_class list

  val flexibility : flexibility

  type t

  val create : Var.Ctx.ctx -> config -> t

  val signal : t -> Op.pid -> unit Program.t

  val wait : t -> Op.pid -> unit Program.t
end

(* Any polling solution yields a blocking one: Wait() re-runs the Poll()
   code until it returns true (Sec. 7: "the blocking solution can be
   achieved easily by implementing Wait() via repeated execution of the code
   for Poll()"). *)
module Blocking_of_polling (P : POLLING) : BLOCKING with type t = P.t = struct
  let name = P.name ^ "+spin"

  let description =
    P.description ^ " (blocking wrapper: Wait re-runs Poll until true)"

  let primitives = P.primitives

  let flexibility = P.flexibility

  type t = P.t

  let create = P.create

  let signal = P.signal

  let wait t p = Program.repeat_until (P.poll t p)
end

(* --- Specification 4.1 checking --- *)

type violation =
  | Poll_true_without_signal of History.call
      (* a Poll() returned true before any Signal() began *)
  | Poll_false_after_signal of History.call * History.call
      (* a Poll() returned false although a Signal() completed before it
         began; second component is the offending Signal() *)
  | Wait_returned_without_signal of History.call

let pp_violation ppf = function
  | Poll_true_without_signal c ->
    Fmt.pf ppf "%a returned true before any Signal() began" History.pp_call c
  | Poll_false_after_signal (c, s) ->
    Fmt.pf ppf "%a returned false although %a completed before it began"
      History.pp_call c History.pp_call s
  | Wait_returned_without_signal c ->
    Fmt.pf ppf "%a returned before any Signal() began" History.pp_call c

let is_signal (c : History.call) =
  (* labels are interned constants in practice, so the physical check
     almost always decides *)
  c.History.c_label == signal_label
  || String.equal c.History.c_label signal_label

let earliest_signal_start calls =
  List.fold_left
    (fun acc c ->
      if is_signal c then
        match acc with
        | None -> Some c.History.c_started
        | Some t -> Some (min t c.History.c_started)
      else acc)
    None calls

let check_polling calls =
  (* computed once for the whole history, not once per poll call *)
  let earliest_signal = earliest_signal_start calls in
  let signal_begun_before t =
    match earliest_signal with Some s -> s < t | None -> false
  in
  let completed_signal_before t =
    List.find_opt
      (fun c ->
        is_signal c
        && match c.History.c_finished with Some f -> f < t | None -> false)
      calls
  in
  List.filter_map
    (fun c ->
      if c.History.c_label <> poll_label then None
      else
        match (c.History.c_result, c.History.c_finished) with
        | Some 1, Some finished ->
          if signal_begun_before finished then None
          else Some (Poll_true_without_signal c)
        | Some 0, Some _ -> (
          match completed_signal_before c.History.c_started with
          | Some s -> Some (Poll_false_after_signal (c, s))
          | None -> None)
        | _ -> None)
    calls

(* Boolean fast paths for the model checker, which evaluates the
   specification at every completion of every explored interleaving:
   verdict-equivalent to [check_polling = []] / [check_blocking = []]
   (each violation constructor maps to one clause below) but a single
   O(calls) pass over [Sim.fold_calls] with no list materialized.  The
   quadratic [completed_signal_before] scan collapses to a comparison
   against the earliest completed-signal finish time: a completed signal
   precedes a poll's start iff the earliest-finishing one does. *)

let signal_extents sim =
  Sim.fold_calls
    (fun ((es, ef) as acc) c ->
      if is_signal c then
        ( min es c.History.c_started,
          match c.History.c_finished with Some f -> min ef f | None -> ef )
      else acc)
    (max_int, max_int) sim

let polling_ok sim =
  let earliest_start, earliest_finish = signal_extents sim in
  Sim.fold_calls
    (fun ok c ->
      ok
      &&
      let l = c.History.c_label in
      (not (l == poll_label || String.equal l poll_label))
      ||
      match (c.History.c_result, c.History.c_finished) with
      | Some 1, Some finished -> earliest_start < finished
      | Some 0, Some _ -> not (earliest_finish < c.History.c_started)
      | _ -> true)
    true sim

let blocking_ok sim =
  let earliest_start, _ = signal_extents sim in
  Sim.fold_calls
    (fun ok c ->
      ok
      &&
      let l = c.History.c_label in
      (not (l == wait_label || String.equal l wait_label))
      ||
      match c.History.c_finished with
      | Some finished -> earliest_start < finished
      | None -> true)
    true sim

let check_blocking calls =
  let earliest_signal = earliest_signal_start calls in
  let signal_begun_before t =
    match earliest_signal with Some s -> s < t | None -> false
  in
  List.filter_map
    (fun c ->
      if c.History.c_label <> wait_label then None
      else
        match c.History.c_finished with
        | Some finished when not (signal_begun_before finished) ->
          Some (Wait_returned_without_signal c)
        | _ -> None)
    calls

(* --- configuration validation --- *)

let validate_config (flex : flexibility) (cfg : config) =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let bounded role pids =
    match List.find_opt (fun p -> p < 0 || p >= cfg.n) pids with
    | Some p -> fail "%s pid %d out of range for %d process(es)" role p cfg.n
    | None -> Ok ()
  in
  let distinct role pids =
    (* pids are already range-checked, so a bit per pid suffices — the open
       system instantiates with k = 10^6 waiters, where the obvious
       List.mem scan is a quadratic startup cost. *)
    let seen = Bytes.make cfg.n '\000' in
    let rec dup = function
      | [] -> None
      | p :: rest ->
        if Bytes.get seen p = '\001' then Some p
        else begin
          Bytes.set seen p '\001';
          dup rest
        end
    in
    match dup pids with
    | Some p -> fail "%s pid %d listed more than once" role p
    | None -> Ok ()
  in
  let* () = bounded "waiter" cfg.waiters in
  let* () = bounded "signaler" cfg.signalers in
  let* () = distinct "waiter" cfg.waiters in
  let* () = distinct "signaler" cfg.signalers in
  match flex.max_waiters with
  | Some m when List.length cfg.waiters > m ->
    fail "algorithm supports at most %d waiter(s), %d configured" m
      (List.length cfg.waiters)
  | _ -> (
    match flex.max_signalers with
    | Some m when List.length cfg.signalers > m ->
      fail "algorithm supports at most %d signaler(s), %d configured" m
        (List.length cfg.signalers)
    | _ -> Ok ())

(* --- instantiation: close over the algorithm's typed state, exposing only
   the untyped programs the simulator consumes (Poll returns 0/1). --- *)

type instance = {
  i_name : string;
  i_primitives : Op.primitive_class list;
  i_poll : Op.pid -> Op.value Program.t;
  i_signal : Op.pid -> Op.value Program.t;
}

let instantiate (module A : POLLING) ctx cfg =
  (match validate_config A.flexibility cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Signaling.instantiate: " ^ msg));
  let t = A.create ctx cfg in
  { i_name = A.name;
    i_primitives = A.primitives;
    i_poll = (fun p -> Program.map (fun b -> if b then 1 else 0) (A.poll t p));
    i_signal = (fun p -> Program.map (fun () -> 0) (A.signal t p)) }

type blocking_instance = {
  b_name : string;
  b_wait : Op.pid -> Op.value Program.t;
  b_signal : Op.pid -> Op.value Program.t;
}

let instantiate_blocking (module A : BLOCKING) ctx cfg =
  (match validate_config A.flexibility cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Signaling.instantiate_blocking: " ^ msg));
  let t = A.create ctx cfg in
  { b_name = A.name;
    b_wait = (fun p -> Program.map (fun () -> 0) (A.wait t p));
    b_signal = (fun p -> Program.map (fun () -> 0) (A.signal t p)) }
