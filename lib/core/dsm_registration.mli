(** Section 7, waiters not fixed / one fixed signaler: waiters register in
    the signaler's own memory module; the signaler scans locally and flags
    only registered waiters.  O(1) RMRs per waiter, O(k) for the signaler,
    O(1) amortized. *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
