(* Aligned text tables for experiment output.

   The experiments print machine-checkable claim/measurement tables; this
   module keeps the rendering in one place so every experiment reads the
   same way in the bench log and in EXPERIMENTS.md. *)

type cell = string

type t = { title : string; header : string list; rows : cell list list }

let make ~title ~header rows = { title; header; rows }

let int i = string_of_int i

let float ?(digits = 2) f = Printf.sprintf "%.*f" digits f

let bool b = if b then "yes" else "no"

let widths t =
  let all = t.header :: t.rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let w = Array.make cols 0 in
  List.iter
    (List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)))
    all;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let pp ppf t =
  let w = widths t in
  let line cells =
    let padded = List.mapi (fun i c -> pad w.(i) c) cells in
    Fmt.pf ppf "  %s@." (String.concat "  " padded)
  in
  Fmt.pf ppf "%s@." t.title;
  line t.header;
  line (List.map (fun width -> String.make width '-') (Array.to_list w));
  List.iter line t.rows

let print t = pp Fmt.stdout t

let to_string t = Fmt.str "%a" pp t

(* RFC-4180 CSV: quote cells containing separators, quotes or line breaks
   (both LF and CR — bare CR is a record separator to some readers). *)
let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n' || ch = '\r') c
  then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"
