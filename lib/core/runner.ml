(* The domain-parallel experiment runner; see the .mli. *)

type outcome = {
  spec : Experiment_def.spec;
  tables : Results.table list;
  shape : (unit, string) result option;
}

let default_jobs = Parallel.default_jobs

let run ?jobs ?tracer ?(size = Experiment_def.Default) specs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let outcomes =
    Parallel.map ~jobs
      (fun (spec : Experiment_def.spec) ->
        (* Point-level fan-out inside spec.run degrades to sequential when
           this map already runs it on a worker domain (see Parallel.map). *)
        let tables = spec.run ~jobs size in
        let shape =
          match size with
          | Experiment_def.Default -> Some (spec.shape tables)
          | Experiment_def.Reduced -> None
        in
        { spec; tables; shape })
      specs
  in
  (* Experiment spans are emitted here, after the parallel map, in spec
     order, with synthetic ticks (cumulative row counts) — never from
     worker domains — so traces are byte-identical for every [jobs]. *)
  (match tracer with
  | None -> ()
  | Some tr ->
    ignore
      (List.fold_left
         (fun t_acc o ->
           let rows =
             List.fold_left
               (fun acc (tb : Results.table) -> acc + List.length tb.Results.rows)
               0 o.tables
           in
           let t_end = t_acc + rows in
           Obs.Trace.emit tr
             (Obs.Event.Runner_span
                { t0 = t_acc; t1 = t_end;
                  experiment = o.spec.Experiment_def.id;
                  tables = List.length o.tables; rows });
           t_end)
         0 outcomes));
  outcomes

let tables outcomes = List.concat_map (fun o -> o.tables) outcomes

let failed_shapes outcomes =
  List.filter_map
    (fun o ->
      match o.shape with
      | Some (Error why) -> Some (o.spec.Experiment_def.id, why)
      | Some (Ok ()) | None -> None)
    outcomes
