(* The domain-parallel experiment runner; see the .mli. *)

type outcome = {
  spec : Experiment_def.spec;
  tables : Results.table list;
  shape : (unit, string) result option;
}

let default_jobs = Parallel.default_jobs

let run ?jobs ?(size = Experiment_def.Default) specs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  Parallel.map ~jobs
    (fun (spec : Experiment_def.spec) ->
      (* Point-level fan-out inside spec.run degrades to sequential when
         this map already runs it on a worker domain (see Parallel.map). *)
      let tables = spec.run ~jobs size in
      let shape =
        match size with
        | Experiment_def.Default -> Some (spec.shape tables)
        | Experiment_def.Reduced -> None
      in
      { spec; tables; shape })
    specs

let tables outcomes = List.concat_map (fun o -> o.tables) outcomes

let failed_shapes outcomes =
  List.filter_map
    (fun o ->
      match o.shape with
      | Some (Error why) -> Some (o.spec.Experiment_def.id, why)
      | Some (Ok ()) | None -> None)
    outcomes
