(* Section 7, "many waiters fixed in advance", terminating variant with O(1)
   amortized RMRs: the signaler waits for each fixed waiter to participate
   before writing its flag, so every RMR the signaler pays is matched by a
   participating waiter.

   part[i] is set by waiter i's first Poll(); Signal() awaits part[j] and
   only then writes V[j], for each fixed waiter j.  The paper sketches this
   construction in one sentence; note that the signaler's await of part[j]
   busy-waits on a cell homed at the waiter, which is remote — under the
   fair schedules of the experiments the wait is short (the waiter's first
   poll is two steps), but an adversarial scheduler could inflate it.  The
   solution is terminating, not wait-free, exactly as the paper requires:
   the wait-free version of this variant is impossible at O(1) amortized
   (Sec. 7, "For wait-free solutions ... impossible"), which experiment E3
   demonstrates by the contrast with [Dsm_fixed_waiters]. *)

open Smr
open Program.Syntax

let name = "dsm-fixed-term"

let description =
  "fixed waiters; signaler awaits each waiter's participation before \
   flagging it (Sec. 7); terminating, O(1) amortized RMRs"

let primitives = [ Op.Reads_writes ]

let flexibility = { Signaling.any_flexibility with waiters_fixed = true }

type t = {
  targets : Op.pid list;
  v : bool Var.t array; (* v.(i) homed at module i *)
  part : bool Var.t array; (* participation flags, homed at module i *)
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  { targets = cfg.Signaling.waiters;
    v =
      Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    part =
      Var.Ctx.bool_array ctx ~name:"part"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let poll t p =
  let* () = Program.write t.part.(p) true in
  Program.read t.v.(p)

let signal t _p =
  Program.seq
    (List.map
       (fun j ->
         let* () = Program.await t.part.(j) Fun.id in
         Program.write t.v.(j) true)
       t.targets)

(* Lint claims: Poll() is wait-free and fully local (own participation
   mark, own flag); Signal() busy-waits on each participant's part[j] cell
   — remote spinning, which is exactly the cost this terminating variant
   accepts to let waiters stop participating. *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "V"; "part" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr (n - 1); refills = n - 1 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 0; cc_amortized = Amortized { steady = Rmr 1; refills = 1 } }) ] }
