open Smr

let remote_spin_name = "mutant-remote-spin"

let cas_flag_name = "mutant-cas-flag"

let amortized_scan_name = "mutant-amortized-scan"

let indep_fact_name = "mutant-indep-fact"

(* dsm-fixed's broadcast shape, but the flags land in the shared module:
   the Wait() spin is remote, contradicting the local-spin claim below. *)
module Remote_spin_wait = struct
  type t = { v : bool Var.t array }

  let create ctx ~n =
    { v =
        Var.Ctx.bool_array ctx ~name:"V"
          ~home:(fun _ -> Var.Shared)
          n
          (fun _ -> false) }

  let signal t _p =
    Program.seq
      (List.init (Array.length t.v) (fun j -> Program.write t.v.(j) true))

  let wait t p = Program.await t.v.(p) Fun.id

  let claims ~n =
    Analysis.Claims.
      { single_writer = [ "V" ];
        const_writes = [];
        calls =
          [ ("signal", { spin = No_spin; dsm_rmrs = Rmr n; cc_amortized = Amortized { steady = Unbounded; refills = 64 } });
            ("wait", { spin = Local_spin (* the lie *); dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 64 } }) ] }
end

(* cc-flag, except Signal() sneaks in a CAS while the declared primitive
   class still says reads/writes only. *)
module Cas_flag = struct
  type t = { flag : bool Var.t }

  let primitives = [ Op.Reads_writes (* the lie *) ]

  let create ctx = { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false }

  let signal t _p =
    Program.map ignore (Program.cas t.flag ~expected:false ~update:true)

  let poll t p =
    let _ = p in
    Program.read t.flag

  let claims ~n:_ =
    Analysis.Claims.
      { single_writer = [ "B" ];
        const_writes = [];
        calls =
          [ ("signal", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Unbounded; refills = 64 } });
            ("poll", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Unbounded; refills = 64 } }) ] }
end

(* cc-flag with a hidden periodic remote scan: Signal() also reads every
   waiter's heartbeat cell — cells the waiters themselves write — before
   setting the flag.  Each heartbeat read is re-invalidated by the waiter's
   next poll, so the signaler's cache never reaches a free fixpoint: the
   true refill count is n-1, while the claim below still advertises the
   cc-flag headline of one RMR per Signal with no surcharge.  The
   amortized check must reject exactly this. *)
module Amortized_scan = struct
  type t = { flag : bool Var.t; heartbeat : bool Var.t array }

  let create ctx ~n =
    { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false;
      heartbeat =
        Var.Ctx.bool_array ctx ~name:"hb"
          ~home:(fun _ -> Var.Shared)
          n
          (fun _ -> false) }

  let signal t _p =
    Program.seq
      (List.init
         (Array.length t.heartbeat - 1)
         (fun j -> Program.map ignore (Program.read t.heartbeat.(j + 1)))
      @ [ Program.write t.flag true ])

  let poll t p =
    Program.bind (Program.write t.heartbeat.(p) true) (fun () ->
        Program.read t.flag)

  let claims ~n:_ =
    Analysis.Claims.
      { single_writer = [ "B" ];
        const_writes = [];
        calls =
          [ ("signal",
             { spin = No_spin;
               dsm_rmrs = Unbounded;
               (* the lie: the scan makes the real steady state n-1+(n-1)r *)
               cc_amortized = Amortized { steady = Rmr 1; refills = 0 } });
            ("poll",
             { spin = No_spin;
               dsm_rmrs = Unbounded;
               cc_amortized = Amortized { steady = Rmr 1; refills = 1 } }) ] }
end

(* cc-flag, except the flag is also cleared: Signal() toggles C to 0 after
   setting it to 1, so C is written with two distinct values — the
   declared const-write fact below is false and the independence check
   must reject it. *)
module Indep_fact = struct
  type t = { c : int Var.t }

  let create ctx = { c = Var.Ctx.int ctx ~name:"C" ~home:Var.Shared 0 }

  let signal t _p =
    Program.bind (Program.write t.c 1) (fun () -> Program.write t.c 0)

  let poll t _p = Program.map (fun v -> v <> 0) (Program.read t.c)

  let claims ~n:_ =
    Analysis.Claims.
      { single_writer = [ "C" ];
        const_writes = [ "C" (* the lie: C is written with 1 and 0 *) ];
        calls =
          [ ("signal",
             { spin = No_spin;
               dsm_rmrs = Rmr 2;
               cc_amortized = Amortized { steady = Rmr 2; refills = 0 } });
            ("poll",
             { spin = No_spin;
               dsm_rmrs = Rmr 1;
               cc_amortized = Amortized { steady = Rmr 0; refills = 1 } }) ] }
end

let unit_call label pids program =
  { Analysis.Registry.label;
    pids;
    program = (fun p -> Smr.Program.map (fun () -> 0) (program p)) }

let register ~n =
  let signalers = [ 0 ] and waiters = List.init (n - 1) (fun i -> i + 1) in
  (let ctx = Var.Ctx.create () in
   let t = Remote_spin_wait.create ctx ~n in
   let layout = Var.Ctx.freeze ctx in
   Analysis.Registry.register
     (Analysis.Registry.entry ~mutant:true ~name:remote_spin_name ~n ~layout
        ~primitives:[ Op.Reads_writes ]
        ~claims:(Remote_spin_wait.claims ~n)
        [ unit_call "signal" signalers (Remote_spin_wait.signal t);
          unit_call "wait" waiters (Remote_spin_wait.wait t) ]));
  (let ctx = Var.Ctx.create () in
   let t = Cas_flag.create ctx in
   let layout = Var.Ctx.freeze ctx in
   Analysis.Registry.register
     (Analysis.Registry.entry ~mutant:true ~name:cas_flag_name ~n ~layout
        ~primitives:Cas_flag.primitives ~claims:(Cas_flag.claims ~n)
        [ unit_call "signal" signalers (Cas_flag.signal t);
          { Analysis.Registry.label = "poll";
            pids = waiters;
            program =
              (fun p ->
                Smr.Program.map
                  (fun b -> if b then 1 else 0)
                  (Cas_flag.poll t p)) } ]));
  (let ctx = Var.Ctx.create () in
   let t = Amortized_scan.create ctx ~n in
   let layout = Var.Ctx.freeze ctx in
   Analysis.Registry.register
     (Analysis.Registry.entry ~mutant:true ~name:amortized_scan_name ~n ~layout
        ~primitives:[ Op.Reads_writes ]
        ~claims:(Amortized_scan.claims ~n)
        [ unit_call "signal" signalers (Amortized_scan.signal t);
          { Analysis.Registry.label = "poll";
            pids = waiters;
            program =
              (fun p ->
                Smr.Program.map
                  (fun b -> if b then 1 else 0)
                  (Amortized_scan.poll t p)) } ]));
  let ctx = Var.Ctx.create () in
  let t = Indep_fact.create ctx in
  let layout = Var.Ctx.freeze ctx in
  Analysis.Registry.register
    (Analysis.Registry.entry ~mutant:true ~name:indep_fact_name ~n ~layout
       ~primitives:[ Op.Reads_writes ]
       ~claims:(Indep_fact.claims ~n)
       [ unit_call "signal" signalers (Indep_fact.signal t);
         { Analysis.Registry.label = "poll";
           pids = waiters;
           program =
             (fun p ->
               Smr.Program.map
                 (fun b -> if b then 1 else 0)
                 (Indep_fact.poll t p)) } ])
