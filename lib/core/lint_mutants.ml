open Smr

let remote_spin_name = "mutant-remote-spin"

let cas_flag_name = "mutant-cas-flag"

(* dsm-fixed's broadcast shape, but the flags land in the shared module:
   the Wait() spin is remote, contradicting the local-spin claim below. *)
module Remote_spin_wait = struct
  type t = { v : bool Var.t array }

  let create ctx ~n =
    { v =
        Var.Ctx.bool_array ctx ~name:"V"
          ~home:(fun _ -> Var.Shared)
          n
          (fun _ -> false) }

  let signal t _p =
    Program.seq
      (List.init (Array.length t.v) (fun j -> Program.write t.v.(j) true))

  let wait t p = Program.await t.v.(p) Fun.id

  let claims ~n =
    Analysis.Claims.
      { single_writer = [ "V" ];
        calls =
          [ ("signal", { spin = No_spin; dsm_rmrs = Rmr n });
            ("wait", { spin = Local_spin (* the lie *); dsm_rmrs = Unbounded }) ] }
end

(* cc-flag, except Signal() sneaks in a CAS while the declared primitive
   class still says reads/writes only. *)
module Cas_flag = struct
  type t = { flag : bool Var.t }

  let primitives = [ Op.Reads_writes (* the lie *) ]

  let create ctx = { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false }

  let signal t _p =
    Program.map ignore (Program.cas t.flag ~expected:false ~update:true)

  let poll t p =
    let _ = p in
    Program.read t.flag

  let claims ~n:_ =
    Analysis.Claims.
      { single_writer = [ "B" ];
        calls =
          [ ("signal", { spin = No_spin; dsm_rmrs = Rmr 1 });
            ("poll", { spin = No_spin; dsm_rmrs = Rmr 1 }) ] }
end

let unit_call label pids program =
  { Analysis.Registry.label;
    pids;
    program = (fun p -> Smr.Program.map (fun () -> 0) (program p)) }

let register ~n =
  let signalers = [ 0 ] and waiters = List.init (n - 1) (fun i -> i + 1) in
  (let ctx = Var.Ctx.create () in
   let t = Remote_spin_wait.create ctx ~n in
   let layout = Var.Ctx.freeze ctx in
   Analysis.Registry.register
     (Analysis.Registry.entry ~mutant:true ~name:remote_spin_name ~n ~layout
        ~primitives:[ Op.Reads_writes ]
        ~claims:(Remote_spin_wait.claims ~n)
        [ unit_call "signal" signalers (Remote_spin_wait.signal t);
          unit_call "wait" waiters (Remote_spin_wait.wait t) ]));
  let ctx = Var.Ctx.create () in
  let t = Cas_flag.create ctx in
  let layout = Var.Ctx.freeze ctx in
  Analysis.Registry.register
    (Analysis.Registry.entry ~mutant:true ~name:cas_flag_name ~n ~layout
       ~primitives:Cas_flag.primitives ~claims:(Cas_flag.claims ~n)
       [ unit_call "signal" signalers (Cas_flag.signal t);
         { Analysis.Registry.label = "poll";
           pids = waiters;
           program =
             (fun p ->
               Smr.Program.map
                 (fun b -> if b then 1 else 0)
                 (Cas_flag.poll t p)) } ])
