(** Aligned text tables for experiment output. *)

type cell = string

type t

val make : title:string -> header:string list -> cell list list -> t

val int : int -> cell
val float : ?digits:int -> float -> cell
val bool : bool -> cell

val pp : t Fmt.t
val print : t -> unit
val to_string : t -> string

val to_csv : t -> string
(** Header + rows as CSV (the title is not included), for plotting. *)
