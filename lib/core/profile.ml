(* RMR attribution over the flat path: the observable half of the E14/E15
   story.

   A load run reports totals; a profile says *where* they land.  The run
   is the exact same instantiation path as {!Loadgen.run} — same driver,
   same seed stream, same report — with {!Obs.Counters} planes armed
   (group 0 = the signaler, group 1 = every waiter) and, optionally, the
   flat engine's [on_cache] hook recording coherence transactions for a
   Chrome cells-track export.  The paper's separation then reads off the
   hot-cells table: cc-flag's steady state puts ~1 RMR/Signal on exactly
   one cell, dsm-broadcast smears k across the waiter homes.

   Every table is a function of the scenario (seed included): rows are
   built by deterministic sweeps over the planes with total sort orders,
   so `separation profile` diffs byte-identically across runs and
   [--jobs] levels. *)

open Smr

let signaler_group = 0
let waiter_group = 1
let group_name = function 0 -> "signaler" | _ -> "waiters"

type result = {
  p_report : Workload.Driver.report;
  p_counters : Obs.Counters.t;
  p_layout : Var.layout;
  p_cells : Obs.Sink_chrome.cell_event list; (* recorded order *)
  p_cells_dropped : int; (* transactions past the recording cap *)
}

let run ?record_cells sc =
  let winst, layout, n = Loadgen.prepare sc in
  let counters =
    Obs.Counters.create ~groups:2 ~n ~size:(Var.layout_size layout) ()
  in
  for p = 1 to n - 1 do
    Obs.Counters.set_group counters ~pid:p ~group:waiter_group
  done;
  let cells = ref [] and recorded = ref 0 and dropped = ref 0 in
  let on_cache =
    match record_cells with
    | None -> None
    | Some cap ->
      Some
        (fun ~t ~pid ~addr ~action ~messages ->
          if !recorded < cap then begin
            incr recorded;
            cells :=
              { Obs.Sink_chrome.ce_t = t; ce_pid = pid; ce_addr = addr;
                ce_action = action; ce_messages = messages }
              :: !cells
          end
          else incr dropped)
  in
  let report =
    Workload.Driver.run ~ll_ways:sc.Loadgen.sc_ll_ways ~counters ?on_cache
      ~model:(Loadgen.flat_model ~ways:sc.Loadgen.sc_ways sc.Loadgen.sc_model)
      ~layout ~n winst sc.Loadgen.sc_spec
  in
  { p_report = report;
    p_counters = counters;
    p_layout = layout;
    p_cells = List.rev !cells;
    p_cells_dropped = !dropped }

let chrome_trace r =
  Obs.Sink_chrome.cells_to_string
    ~cell_name:(fun a ->
      Printf.sprintf "%s (a%d)" (Var.layout_name r.p_layout a) a)
    r.p_cells

(* --- tables --- *)

let scenario_params (sc : Loadgen.scenario) =
  let (module A : Signaling.POLLING) = sc.sc_algorithm in
  Results.
    [ ("algorithm", text A.name);
      ("model", text (Scenario.model_tag_name sc.sc_model));
      ("k", int sc.sc_spec.Workload.Driver.waiters);
      ("seed", int sc.sc_spec.Workload.Driver.seed) ]

let home_text layout a = Fmt.str "%a" Var.pp_home (Var.layout_home layout a)

(* Hot cells: every cell ranked by total RMRs charged at it.  [sig_rmrs]
   is the signaler group's share — the column the CI separation gate
   reads: cc-flag's top cell must carry ≥ 99% of all signaler RMRs. *)
let hot_cells_table ?(top = 10) sc r =
  let c = r.p_counters in
  let size = Var.layout_size r.p_layout in
  let cells =
    List.init size (fun a ->
        (a, Obs.Counters.cell_total c ~addr:a Obs.Counters.Rmr))
  in
  let cells =
    List.sort
      (fun (a1, r1) (a2, r2) ->
        if r1 <> r2 then compare r2 r1 else compare a1 a2)
      cells
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let rows =
    List.map
      (fun (a, rmr) ->
        let cls k = Obs.Counters.cell_total c ~addr:a k in
        Results.
          [ int a;
            text (Var.layout_name r.p_layout a);
            text (home_text r.p_layout a);
            int rmr;
            int (cls Obs.Counters.Local);
            int (cls Obs.Counters.Fetch);
            int (cls Obs.Counters.Invalidate);
            int (cls Obs.Counters.Update);
            int (cls Obs.Counters.Crash);
            int (Obs.Counters.messages_total_at c ~addr:a);
            int
              (Obs.Counters.cell_count c ~group:signaler_group ~addr:a
                 Obs.Counters.Rmr) ])
      (take top cells)
  in
  Results.make ~experiment:"profile" ~part:"cells"
    ~title:"hot cells: per-cell RMR and coherence attribution"
    ~claim:
      "cc-flag's steady state charges ~1 RMR/Signal to one cell; \
       dsm-broadcast smears k RMRs across the waiter homes"
    ~params:
      (scenario_params sc
      @ Results.
          [ ("top", int top);
            ("total_rmrs", int (Obs.Counters.total c Obs.Counters.Rmr));
            ("signaler_rmrs", int r.p_report.Workload.Driver.r_signaler_rmrs) ]
      )
    ~columns:
      Results.
        [ param "addr"; measure "cell"; measure "home"; measure "rmr";
          measure "local"; measure "fetch"; measure "invalidate";
          measure "update"; measure "crash"; measure "messages";
          measure "sig_rmrs" ]
    rows

(* Per-pid attribution, ranked by RMRs.  At k = 10^6 only the top slice is
   printable; the tail is waiters that all look alike anyway. *)
let pids_table ?(top = 10) sc r =
  let c = r.p_counters in
  let n = Obs.Counters.n c in
  let pids =
    List.init n (fun p -> (p, Obs.Counters.pid_count c ~pid:p Obs.Counters.Rmr))
  in
  let pids = List.filter (fun (p, rmr) -> rmr > 0 || p = 0) pids in
  let pids =
    List.sort
      (fun (p1, r1) (p2, r2) ->
        if r1 <> r2 then compare r2 r1 else compare p1 p2)
      pids
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let rows =
    List.map
      (fun (p, rmr) ->
        let cls k = Obs.Counters.pid_count c ~pid:p k in
        Results.
          [ int p;
            text (group_name (Obs.Counters.group_of c ~pid:p));
            int rmr;
            int (cls Obs.Counters.Local);
            int (cls Obs.Counters.Fetch);
            int (cls Obs.Counters.Invalidate);
            int (cls Obs.Counters.Update);
            int (cls Obs.Counters.Crash);
            int (rmr + cls Obs.Counters.Local) ])
      (take top pids)
  in
  Results.make ~experiment:"profile" ~part:"pids"
    ~title:"per-pid attribution (top RMR payers)"
    ~claim:
      "under CC the signaler pays O(1) per signal; under DSM it pays for \
       every registered waiter"
    ~params:(scenario_params sc @ [ ("top", Results.int top) ])
    ~columns:
      Results.
        [ param "pid"; measure "role"; measure "rmr"; measure "local";
          measure "fetch"; measure "invalidate"; measure "update";
          measure "crash"; measure "steps" ]
    rows

(* Per-program-counter attribution: which step of a call pays.  The last
   slot aggregates everything at or past it. *)
let pc_table sc r =
  let c = r.p_counters in
  let slots = Obs.Counters.pc_slots c in
  let rows = ref [] in
  for g = Obs.Counters.groups c - 1 downto 0 do
    for pc = slots - 1 downto 0 do
      let cls k = Obs.Counters.pc_count c ~group:g ~pc k in
      let total =
        List.fold_left (fun acc k -> acc + cls k) 0 Obs.Counters.classes
      in
      if total > 0 then
        rows :=
          Results.
            [ text (group_name g);
              text
                (if pc = slots - 1 then Printf.sprintf "%d+" pc
                 else string_of_int pc);
              int (cls Obs.Counters.Rmr);
              int (cls Obs.Counters.Local);
              int (cls Obs.Counters.Fetch);
              int (cls Obs.Counters.Invalidate);
              int (cls Obs.Counters.Update);
              int (cls Obs.Counters.Crash) ]
          :: !rows
    done
  done;
  Results.make ~experiment:"profile" ~part:"pc"
    ~title:"per-program-counter attribution (step index within a call)"
    ~claim:
      "steady-state cc-flag polls satisfy themselves at step 0 (a cached \
       read); the RMR steps sit where the claims place them"
    ~params:(scenario_params sc)
    ~columns:
      Results.
        [ param "group"; param "pc"; measure "rmr"; measure "local";
          measure "fetch"; measure "invalidate"; measure "update";
          measure "crash" ]
    !rows

let tables ?top sc r =
  [ hot_cells_table ?top sc r; pids_table ?top sc r; pc_table sc r ]
