(** The signaling problem (paper, Section 4).

    Signalers must make waiters aware that an event occurred.  With polling
    semantics a waiter calls [Poll()], which reports whether the signal has
    been issued; with blocking semantics it calls [Wait()], which returns
    only once some [Signal()] has begun.  {!check_polling} and
    {!check_blocking} verify Specification 4.1 over a recorded history. *)

open Smr

val signal_label : string
val poll_label : string
val wait_label : string

(** Which processes may play which role in a run.  The problem dimensions of
    Section 4 — how many waiters/signalers, whether their identities are
    fixed in advance — live here and in each algorithm's {!flexibility}. *)
type config = {
  n : int;
  waiters : Op.pid list;
  signalers : Op.pid list;
}

val config : n:int -> waiters:Op.pid list -> signalers:Op.pid list -> config

(** The problem variant (Sections 4 and 7) an algorithm solves. *)
type flexibility = {
  waiters_fixed : bool;
      (** the algorithm must know the exact waiter set at creation *)
  max_waiters : int option;  (** e.g. [Some 1] for the single-waiter variant *)
  signaler_fixed : bool;
      (** the signaler's identity must be known at creation *)
  max_signalers : int option;
}

val any_flexibility : flexibility
(** No restrictions: the hardest variant of Section 4 (waiters and signaler
    not fixed in advance). *)

(** A solution with polling semantics. *)
module type POLLING = sig
  val name : string
  val description : string
  val primitives : Op.primitive_class list
  val flexibility : flexibility

  type t

  val create : Var.Ctx.ctx -> config -> t
  val signal : t -> Op.pid -> unit Program.t
  val poll : t -> Op.pid -> bool Program.t
end

(** A solution with blocking semantics. *)
module type BLOCKING = sig
  val name : string
  val description : string
  val primitives : Op.primitive_class list
  val flexibility : flexibility

  type t

  val create : Var.Ctx.ctx -> config -> t
  val signal : t -> Op.pid -> unit Program.t
  val wait : t -> Op.pid -> unit Program.t
end

module Blocking_of_polling (P : POLLING) : BLOCKING with type t = P.t
(** [Wait()] as repeated execution of [Poll()] (Section 7). *)

(** {1 Specification 4.1 checking} *)

type violation =
  | Poll_true_without_signal of History.call
  | Poll_false_after_signal of History.call * History.call
  | Wait_returned_without_signal of History.call

val pp_violation : violation Fmt.t

val check_polling : History.call list -> violation list
(** Both clauses of Specification 4.1: a [Poll] returning true must follow
    the start of some [Signal]; a [Poll] returning false must not follow a
    completed [Signal]. *)

val check_blocking : History.call list -> violation list
(** A completed [Wait] must follow the start of some [Signal]. *)

val polling_ok : Smr.Sim.t -> bool
(** Verdict-equivalent to [check_polling (Sim.calls sim) = []], in one
    O(calls) pass with no list materialized — the form the model checker
    evaluates at every completion of every explored interleaving.  Use
    [check_polling] when the actual violations are to be reported. *)

val blocking_ok : Smr.Sim.t -> bool
(** Verdict-equivalent to [check_blocking (Sim.calls sim) = []]; see
    {!polling_ok}. *)

(** {1 Instantiation} *)

val validate_config : flexibility -> config -> (unit, string) result
(** Rejects, with a descriptive message: waiter or signaler pids outside
    [0, n), duplicate entries within either role list, and role counts
    beyond the algorithm's [flexibility] bounds. *)

(** An algorithm instance with its typed state closed over, exposing the
    untyped programs the simulator consumes (Poll's Boolean is 0/1). *)
type instance = {
  i_name : string;
  i_primitives : Op.primitive_class list;
  i_poll : Op.pid -> Op.value Program.t;
  i_signal : Op.pid -> Op.value Program.t;
}

val instantiate : (module POLLING) -> Var.Ctx.ctx -> config -> instance
(** Raises [Invalid_argument] when the configuration violates the
    algorithm's {!flexibility}. *)

type blocking_instance = {
  b_name : string;
  b_wait : Op.pid -> Op.value Program.t;
  b_signal : Op.pid -> Op.value Program.t;
}

val instantiate_blocking :
  (module BLOCKING) -> Var.Ctx.ctx -> config -> blocking_instance
