(** RMR attribution over the flat path (`separation profile`).

    Runs a {!Loadgen.scenario} exactly as {!Loadgen.run} does, with
    {!Obs.Counters} planes armed — group 0 is the signaler (pid 0),
    group 1 every waiter — and renders deterministic attribution tables:
    hot cells (per-cell RMR / coherence-class / message counts and the
    signaler's share), top RMR-paying pids, and per-program-counter
    breakdowns.  Optionally records the flat engine's coherence
    transactions for a Chrome cells-track export ({!chrome_trace}).

    All table content is a function of the scenario, seed included;
    `separation profile` output is CI-diffed byte-for-byte across runs
    and [--jobs] levels. *)

val signaler_group : int
(** Counter-plane group 0: the signaler, pid 0. *)

val waiter_group : int
(** Counter-plane group 1: every waiter pid. *)

type result = {
  p_report : Workload.Driver.report;
  p_counters : Obs.Counters.t;
  p_layout : Smr.Var.layout;
  p_cells : Obs.Sink_chrome.cell_event list;
      (** recorded coherence transactions, in execution order *)
  p_cells_dropped : int;  (** transactions past the recording cap *)
}

val run : ?record_cells:int -> Loadgen.scenario -> result
(** Run the scenario with counter planes armed.  [record_cells], when
    given, also records up to that many coherence transactions through
    the engine's [on_cache] hook (the cap keeps a k = 10^6 run's export
    bounded; the overflow count lands in [p_cells_dropped]). *)

val chrome_trace : result -> string
(** The recorded transactions as a Chrome trace document, one lane per
    cell, lanes named from the layout ({!Obs.Sink_chrome.cells_to_string}). *)

val tables : ?top:int -> Loadgen.scenario -> result -> Results.table list
(** The three attribution tables — parts ["cells"], ["pids"], ["pc"] —
    with [top] (default 10) bounding the ranked views.  The cells table's
    [sig_rmrs] column and [signaler_rmrs] param are what the CI
    separation gate reads. *)
