(* E15: waiter churn — crashes and early leavers under bursty arrivals.

   The open-system driver admits waiters in bursts, crashes a fraction of
   them mid-poll and lets another fraction leave before exhausting their
   poll budget.  The point: the separation survives churn.  cc-flag's
   signaler still pays O(1) RMRs per Signal (crashed waiters' cached copies
   are just epoch-stale; nobody cleans up), while dsm-broadcast keeps
   paying for every slot ever allocated, departed or not.  Spec 4.1 is
   checked streamingly against logical time for every non-crashed poll.

   dsm-queue is back in the matrix: its drain once awaited a
   claimed-but-unpublished slot forever, so a waiter crashing between its
   FAI and its slot publish livelocked the signaler (the paper does not
   consider crashes for it).  The drain now re-reads such a hole once and
   skips it — safe because G is set before the drain and a claimant with
   an unpublished slot has not yet read G (see Dsm_queue.signal) — so the
   signaler survives crash churn while still paying Theta(k) per drain. *)

let default_k = 10_000
let reduced_k = 1_000
let seeds = [ 15; 16; 17 ]
let signals = 24

let claim =
  "Secs. 1/5 under churn: crashes and early leavers do not disturb cc-flag's \
   O(1) RMRs per Signal, while dsm-broadcast keeps paying for every waiter \
   that ever joined; dsm-queue's skip-aware drain survives claimants that \
   crash before publishing and still walks Theta(k) registrations"

let contenders : ((module Signaling.POLLING) * Scenario.model_tag) list =
  [ ((module Cc_flag), `Cc_wt);
    ((module Dsm_broadcast), `Dsm);
    ((module Dsm_queue), `Dsm) ]

let spec_for ~k ~seed =
  { Workload.Driver.default_spec with
    seed;
    waiters = k;
    polls_per_waiter = 4;
    signals;
    signal_every = max 1 (6 * k / signals);
    arrivals = Workload.Arrivals.Bursty { burst = 64; mean_lull = 24.0 };
    crash_prob = 0.1;
    leave_early_prob = 0.2 }

let row (seed, ((module A : Signaling.POLLING), model)) ~k =
  let sc =
    Loadgen.scenario ~ways:2 ~ll_ways:1 ~algorithm:(module A) ~model
      (spec_for ~k ~seed)
  in
  let r = Loadgen.run sc in
  let open Workload.Driver in
  Results.
    [ text r.r_algorithm;
      text (Scenario.model_tag_name model);
      int seed;
      int r.r_waiters;
      int r.r_crashes;
      int r.r_left_early;
      int r.r_polls;
      int r.r_signals;
      float ~digits:2 (rmrs_per_signal r);
      float ~digits:3 (rmrs_per_op r);
      bool r.r_spec_ok ]

let table ?(jobs = 1) ?(k = default_k) () =
  let cells =
    List.concat_map (fun s -> List.map (fun c -> (s, c)) contenders) seeds
  in
  Results.make ~experiment:"e15"
    ~title:
      (Printf.sprintf
         "E15 (churn, flat engine): bursty arrivals with crash_prob=0.1 and \
          leave_early_prob=0.2 at k=%d.  cc-flag's per-Signal cost ignores \
          the churn; dsm-broadcast pays for departed waiters forever"
         k)
    ~claim
    ~params:
      [ ("k", Results.int k);
        ("signals", Results.int signals);
        ("seeds", Results.text (String.concat "," (List.map string_of_int seeds)))
      ]
    ~columns:
      Results.
        [ param "algorithm"; param "model"; param "seed"; measure "arrived";
          measure "crashes"; measure "left_early"; measure "polls";
          measure "signals"; measure "rmr/signal"; measure "rmr/op";
          measure "spec_ok" ]
    (Parallel.map ~jobs (row ~k) cells)

let shape = function
  | [ t ] ->
    let open Experiment_def in
    let algo_rows name =
      List.filter
        (fun row -> Results.get t ~row "algorithm" = Results.Text name)
        t.Results.rows
    in
    let floats name rows =
      List.filter_map
        (fun row -> Results.to_float (Results.get t ~row name))
        rows
    in
    let ints name rows =
      List.filter_map
        (fun row -> Results.to_int (Results.get t ~row name))
        rows
    in
    let cc = algo_rows "cc-flag"
    and bc = algo_rows "dsm-broadcast"
    and qu = algo_rows "dsm-queue" in
    check (cc <> [] && bc <> [] && qu <> []) "e15: all three contenders must appear"
    >>> fun () ->
    check
      (List.for_all (fun s -> s = signals) (ints "signals" t.Results.rows))
      "e15: every signaler must complete all its Signals (dsm-queue's \
       drain must not livelock on a crashed claimant's hole)"
    >>> fun () ->
    shape_all t "spec_ok" (fun v -> v = Results.Bool true)
    >>> fun () ->
    check
      (List.for_all (fun c -> c > 0) (ints "crashes" t.Results.rows))
      "e15: the crash adversary must actually fire"
    >>> fun () ->
    check
      (List.for_all (fun l -> l > 0) (ints "left_early" t.Results.rows))
      "e15: some waiters must leave early"
    >>> fun () ->
    check
      (List.for_all (fun v -> v <= 4.0) (floats "rmr/signal" cc))
      "e15: churn must not disturb cc-flag's O(1) RMRs per Signal"
    >>> fun () ->
    check
      (List.for_all
         (fun v -> v >= float_of_int default_k /. 8.0)
         (floats "rmr/signal" bc))
      "e15: dsm-broadcast must keep paying Theta(k) per Signal under churn"
    >>> fun () ->
    check
      (List.for_all
         (fun v -> v >= float_of_int default_k /. 2.0)
         (floats "rmr/signal" qu))
      "e15: dsm-queue's drain must keep walking Theta(k) registrations"
  | _ -> Error "e15: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e15";
      title = "waiter churn under bursty arrivals (flat engine, open system)";
      claim;
      shape_note =
        "spec_ok everywhere; every signaler completes all its Signals (no \
         drain livelock); crashes>0 and left>0 in every run; cc-flag \
         rmr/signal <= 4; dsm-broadcast rmr/signal >= k/8; dsm-queue \
         rmr/signal >= k/2";
      run =
        (fun ~jobs size ->
          let k = match size with Default -> default_k | Reduced -> reduced_k in
          [ table ~jobs ~k () ]);
      shape }
