(* E4: the queue solution is O(1) amortized for every participation level k. *)

let default_n = 128
let default_ks = [ 1; 2; 4; 8; 16; 32; 64; 127 ]
let reduced_n = 64
let reduced_ks = [ 1; 16; 63 ]

let claim =
  "Sec. 7: dsm-queue keeps amortized RMRs O(1) at every participation \
   level k"

let row ~n k =
  let cfg = Algorithms.config_for (module Dsm_queue) ~n in
  let active_waiters = Some (List.init k (fun i -> i + 1)) in
  let o =
    Scenario.run_phased (module Dsm_queue) ~model:`Dsm ~cfg ?active_waiters ()
  in
  Results.
    [ int k;
      int o.Scenario.signaler_rmrs;
      int o.Scenario.total_rmrs;
      int o.Scenario.participants;
      float o.Scenario.amortized ]

let table ?(jobs = 1) ?(n = default_n) ?(ks = default_ks) () =
  Results.make ~experiment:"e4"
    ~title:
      (Printf.sprintf
         "E4 (Sec. 7): dsm-queue with k of %d waiters participating — \
          amortized RMRs stay O(1) for every k"
         (n - 1))
    ~claim
    ~params:
      [ ("n", Results.int n);
        ("ks", Results.text (String.concat "," (List.map string_of_int ks))) ]
    ~columns:
      Results.
        [ param "k"; measure "signaler"; measure "total"; measure "parts";
          measure "amortized" ]
    (Parallel.map ~jobs (row ~n) ks)

let shape = function
  | [ t ] ->
    let amortized =
      List.filter_map Results.to_float (Results.column_values t "amortized")
    in
    let lo = List.fold_left Float.min Float.infinity amortized in
    let hi = List.fold_left Float.max Float.neg_infinity amortized in
    Experiment_def.check
      (amortized <> [] && hi -. lo < 2.)
      "e4: amortized RMRs are not flat across k"
  | _ -> Error "e4: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e4";
      title = "dsm-queue is O(1) amortized at every k";
      claim;
      shape_note = "amortized column flat across all k (spread < 2 RMRs)";
      run =
        (fun ~jobs size ->
          let n, ks =
            match size with
            | Default -> (default_n, default_ks)
            | Reduced -> (reduced_n, reduced_ks)
          in
          [ table ~jobs ~n ~ks () ]);
      shape }
