(* E1: Section 5 upper bound — the CC flag is O(1) RMRs/process. *)

let default_ns = [ 2; 4; 8; 16; 32; 64; 128; 256 ]
let reduced_ns = [ 64 ]

let claim =
  "Sec. 5: the single-Boolean cc-flag algorithm costs O(1) RMRs per process \
   in the CC model"

let row n =
  let cfg = Algorithms.config_for (module Cc_flag) ~n in
  let o = Scenario.run_phased (module Cc_flag) ~model:`Cc_wt ~cfg () in
  Results.
    [ int n;
      int o.Scenario.max_waiter_rmrs;
      int o.Scenario.signaler_rmrs;
      int o.Scenario.total_rmrs;
      float o.Scenario.amortized;
      int (List.length o.Scenario.violations) ]

let table ?(jobs = 1) ?(ns = default_ns) () =
  Results.make ~experiment:"e1"
    ~title:
      "E1 (Sec. 5): cc-flag under CC write-through — per-process RMRs must \
       stay O(1) as N grows"
    ~claim
    ~params:[ ("ns", Results.text (String.concat "," (List.map string_of_int ns))) ]
    ~columns:
      Results.
        [ param "N"; measure "waiter max"; measure "signaler"; measure "total";
          measure "amortized"; measure "violations" ]
    (Parallel.map ~jobs row ns)

let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "violations" (fun v -> v = Results.Int 0) >>> fun () ->
    (match Results.column_values t "waiter max" with
    | [] -> Error "e1: no rows"
    | v :: rest ->
      check
        (List.for_all (( = ) v) rest)
        "e1: waiter max varies with N — per-process cost is not flat")
  | _ -> Error "e1: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e1";
      title = "cc-flag is O(1) RMRs per process under CC";
      claim;
      shape_note = "flat in N: identical waiter-max at every N, no violations";
      run =
        (fun ~jobs size ->
          let ns = match size with Default -> default_ns | Reduced -> reduced_ns in
          [ table ~jobs ~ns () ]);
      shape }
