(** E3 — Section 7 landscape under DSM, full (a) and partial (b)
    participation.  Expected shape: dsm-fixed-term blocks in (b). *)

val tables :
  ?jobs:int -> ?n:int -> ?partial:int -> unit -> Results.table list
(** Two tables: full participation, then partial. *)

val spec : Experiment_def.spec
