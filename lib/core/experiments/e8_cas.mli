(** E8 — Corollary 6.14: CAS/LL-SC contention blowup (a) and the
    read/write reductions (b).  Expected shape: emulated F&I per-waiter
    cost grows with k, hardware F&I stays flat; the reductions execute
    zero comparison steps. *)

val contention_total : (module Signaling.POLLING) -> n:int -> k:int -> int
(** Total RMRs when [k] waiters register under the maximal-collision
    schedule of E8a. *)

val tables : ?jobs:int -> ?n:int -> ?ks:int list -> unit -> Results.table list
(** Two tables: contention, then the reductions. *)

val spec : Experiment_def.spec
