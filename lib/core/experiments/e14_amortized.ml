(* E14: amortized CC-vs-DSM curves under open-system heavy traffic.

   The closed-scenario experiments (E1-E5) measure one conversation; this
   one runs the flat engine's open system at participation levels up to
   k = 10^6 and charts the quantity the paper's separation is really about:
   what a Signal() costs the signaler, amortized over the signals it
   issues.  cc-flag pays O(1) RMRs per Signal in the CC model no matter how
   many waiters joined; every read/write DSM solution pays for the waiters
   — dsm-broadcast writes all k flags on every Signal, and dsm-queue's
   drain walks the full registration queue, so both signaler curves grow
   linearly in k while the CC curve stays flat.  (Amortized over *all*
   operations the queue is O(1) — that is E4's closed-scenario point and
   visible here in the rmr/op column — which is precisely why the
   per-Signal view is the one that separates.)

   Every figure in the table is deterministic (seeded driver, logical time
   only); wall-clock throughput belongs to `separation load --perf-out`. *)

let default_ks = [ 1_000; 10_000; 100_000; 1_000_000 ]
let reduced_ks = [ 1_000; 10_000 ]
let signals = 16
let seed = 14

let claim =
  "Secs. 1/5/7 at heavy traffic: amortized RMRs per Signal stay O(1) for \
   cc-flag under CC and grow with k for the read/write DSM solutions"

(* The contenders: the CC O(1) algorithm under its model, the two DSM
   algorithms under theirs. *)
let contenders : ((module Signaling.POLLING) * Scenario.model_tag) list =
  [ ((module Cc_flag), `Cc_wt);
    ((module Dsm_broadcast), `Dsm);
    ((module Dsm_queue), `Dsm) ]

let spec_for k =
  { Workload.Driver.default_spec with
    seed;
    waiters = k;
    polls_per_waiter = 2;
    signals;
    (* spread the signals across the arrival span (~4 ticks of work per
       joining waiter), so drains observe a growing queue *)
    signal_every = max 1 (4 * k / signals);
    arrivals = Workload.Arrivals.Poisson 2.0 }

let row (k, ((module A : Signaling.POLLING), model)) =
  let sc =
    (* ways = 2: every contender's per-process CC footprint is one or two
       cells, so the bounded cache is exact and costs 3 words per way *)
    Loadgen.scenario ~ways:2 ~ll_ways:1 ~algorithm:(module A) ~model
      (spec_for k)
  in
  let r = Loadgen.run sc in
  let open Workload.Driver in
  Results.
    [ int k;
      text r.r_algorithm;
      text (Scenario.model_tag_name model);
      int r.r_polls;
      int r.r_signals;
      int r.r_signaler_rmrs;
      float ~digits:2 (rmrs_per_signal r);
      float ~digits:3 (rmrs_per_op r);
      float ~digits:3 r.r_poll_rmrs.Workload.Stats.mean;
      bool r.r_spec_ok;
      int r.r_bytes_per_process ]

let table ?(jobs = 1) ?(ks = default_ks) () =
  let cells =
    List.concat_map (fun k -> List.map (fun c -> (k, c)) contenders) ks
  in
  Results.make ~experiment:"e14"
    ~title:
      (Printf.sprintf
         "E14 (open system, flat engine): amortized RMRs per Signal across \
          k, %d signals, Poisson arrivals — CC flat, DSM growing with k"
         signals)
    ~claim
    ~params:
      [ ("ks", Results.text (String.concat "," (List.map string_of_int ks)));
        ("signals", Results.int signals);
        ("seed", Results.int seed) ]
    ~columns:
      Results.
        [ param "k"; param "algorithm"; param "model"; measure "polls";
          measure "signals"; measure "signaler_rmrs"; measure "rmr/signal";
          measure "rmr/op"; measure "poll_rmr_mean"; measure "spec_ok";
          measure "bytes/proc" ]
    (Parallel.map ~jobs row cells)

let shape = function
  | [ t ] -> (
    let cell k algorithm name =
      let rows =
        List.filter
          (fun row ->
            Results.get t ~row "k" = Results.Int k
            && Results.get t ~row "algorithm" = Results.Text algorithm)
          t.Results.rows
      in
      match rows with
      | [ row ] -> Results.to_float (Results.get t ~row name)
      | _ -> None
    in
    let ks =
      List.sort_uniq compare
        (List.filter_map Results.to_int (Results.column_values t "k"))
    in
    match (ks, List.rev ks) with
    | k0 :: _, kN :: _ -> (
      match
        ( cell k0 "cc-flag" "rmr/signal",
          cell kN "cc-flag" "rmr/signal",
          cell k0 "dsm-broadcast" "rmr/signal",
          cell kN "dsm-broadcast" "rmr/signal",
          cell kN "dsm-queue" "rmr/signal" )
      with
      | Some cc0, Some ccN, Some b0, Some bN, Some qN ->
        let open Experiment_def in
        check
          (cc0 <= 4.0 && ccN <= 4.0)
          "e14: cc-flag RMRs per Signal should be O(1) at every k"
        >>> fun () ->
        check
          (bN >= float_of_int kN /. 4.0)
          "e14: dsm-broadcast RMRs per Signal should be Theta(k)"
        >>> fun () ->
        check
          (qN >= float_of_int kN /. 8.0)
          "e14: dsm-queue's drain should walk Theta(k) registrations per \
           Signal"
        >>> fun () ->
        check
          (k0 = kN || bN > b0 *. 1.5)
          "e14: the DSM per-Signal curve should grow with k"
        >>> fun () ->
        let ok =
          List.for_all
            (fun v -> v = Results.Bool true)
            (Results.column_values t "spec_ok")
        in
        check ok "e14: every run must satisfy Specification 4.1"
      | _ -> Error "e14: missing matrix cells")
    | _ -> Error "e14: no participation levels")
  | _ -> Error "e14: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e14";
      title = "heavy-traffic amortized separation (flat engine, open system)";
      claim;
      shape_note =
        "cc-flag rmr/signal <= 4 at every k; dsm-broadcast and dsm-queue \
         rmr/signal >= k/4 resp. k/8 and growing; every run Spec-4.1 clean";
      run =
        (fun ~jobs size ->
          let ks =
            match size with Default -> default_ks | Reduced -> reduced_ks
          in
          [ table ~jobs ~ks () ]);
      shape }
