(* E3: the Section 7 landscape under DSM, full and partial participation. *)

open Smr

let default_n = 64
let default_partial = 8
let reduced_n = 32
let reduced_partial = 4

let claim =
  "Sec. 7: under DSM the landscape splits — O(W)-signaler algorithms keep \
   amortized O(1) only under full participation; cc-flag spins remotely; \
   dsm-fixed-term blocks when waiters are absent"

let columns =
  Results.
    [ param "algorithm"; measure "waiter max"; measure "signaler";
      measure "total"; measure "parts"; measure "amortized"; measure "space";
      measure "violations" ]

let row ~n ~active_count (module A : Signaling.POLLING) =
  let cfg = Algorithms.config_for (module A) ~n in
  let active_waiters =
    match A.flexibility.Signaling.max_waiters with
    | Some 1 -> None
    | _ ->
      if active_count >= n - 1 then None
      else Some (List.init active_count (fun i -> i + 1))
  in
  match Algorithms.run_or_blocks (module A) ~model:`Dsm ~cfg ?active_waiters () with
  | Ok o ->
    Results.
      [ text A.name;
        int o.Scenario.max_waiter_rmrs;
        int o.Scenario.signaler_rmrs;
        int o.Scenario.total_rmrs;
        int o.Scenario.participants;
        float o.Scenario.amortized;
        (* Shared cells allocated: the paper's Sec. 9 notes the CC solution
           needs O(1) space, the DSM ones Θ(N). *)
        int (Var.layout_size (Sim.layout o.Scenario.sim));
        int (List.length o.Scenario.violations) ]
  | Error why ->
    Results.(text A.name :: text why :: List.init 6 (fun _ -> text "-"))

let landscape ~jobs ~n ~active_count =
  Parallel.map ~jobs (row ~n ~active_count) Algorithms.polling_algorithms

let tables ?(jobs = 1) ?(n = default_n) ?(partial = default_partial) () =
  let params = [ ("n", Results.int n); ("partial", Results.int partial) ] in
  [ Results.make ~experiment:"e3" ~part:"a"
      ~title:
        (Printf.sprintf
           "E3a (Sec. 7): DSM landscape, full participation (N=%d, all \
            waiters poll)"
           n)
      ~claim ~params ~columns
      (landscape ~jobs ~n ~active_count:(n - 1));
    Results.make ~experiment:"e3" ~part:"b"
      ~title:
        (Printf.sprintf
           "E3b (Sec. 7): DSM landscape, partial participation (N=%d, only \
            %d waiters poll) — O(W)-signaler algorithms lose amortized \
            O(1); dsm-fixed-term blocks awaiting the absent waiters"
           n partial)
      ~claim ~params ~columns
      (landscape ~jobs ~n ~active_count:partial) ]

let shape = function
  | [ full; partial ] ->
    let open Experiment_def in
    shape_all full "violations" (fun v ->
        v = Results.Int 0 || v = Results.Text "-")
    >>> fun () ->
    check
      (match Results.rows_where partial "algorithm" (Results.Text "dsm-fixed-term") with
      | [ row ] -> Results.get partial ~row "waiter max" = Results.Text "blocks"
      | _ -> false)
      "e3b: dsm-fixed-term should block under partial participation"
  | _ -> Error "e3: expected exactly two tables"

let spec =
  Experiment_def.
    { id = "e3";
      title = "DSM landscape, full vs partial participation";
      claim;
      shape_note =
        "no violations under full participation; dsm-fixed-term blocks in \
         the partial-participation table";
      run =
        (fun ~jobs size ->
          let n, partial =
            match size with
            | Default -> (default_n, default_partial)
            | Reduced -> (reduced_n, reduced_partial)
          in
          tables ~jobs ~n ~partial ());
      shape }
