(* E13: blocking semantics (Sec. 7's Wait() solutions). *)

let default_n = 24
let default_seed = 11
let reduced_n = 12

let claim =
  "Sec. 7, blocking semantics: spin-wrapped cc-flag busy-waits remotely in \
   DSM; dsm-leader concentrates the cost in one elected waiter; every \
   Wait() returns after the Signal()"

let row ~n ~seed ((module B : Signaling.BLOCKING), model) =
  let cfg = Algorithms.config_for_blocking ~n in
  let o = Scenario.run_blocking (module B) ~model ~cfg ~seed () in
  Results.
    [ text B.name;
      text (Scenario.model_tag_name model);
      int o.Scenario.max_waiter_rmrs;
      int o.Scenario.signaler_rmrs;
      int o.Scenario.total_rmrs;
      int o.Scenario.unfinished_waiters;
      int (List.length o.Scenario.violations) ]

let table ?(jobs = 1) ?(n = default_n) ?(seed = default_seed) () =
  let points =
    List.concat_map
      (fun (module B : Signaling.BLOCKING) ->
        List.map
          (fun model -> ((module B : Signaling.BLOCKING), model))
          [ `Dsm; `Cc_wt ])
      Algorithms.blocking_algorithms
  in
  Results.make ~experiment:"e13"
    ~title:
      (Printf.sprintf
         "E13 (Sec. 7, blocking semantics): Wait() solutions under a \
          randomized schedule (N=%d).  Spin-wrapped cc-flag busy-waits \
          remotely in DSM (waiter RMRs grow with the wait — unbounded in \
          general); dsm-leader concentrates the cost in one elected \
          waiter and keeps followers local; every Wait() returns after \
          the Signal()"
         n)
    ~claim
    ~params:[ ("n", Results.int n); ("seed", Results.int seed) ]
    ~columns:
      Results.
        [ param "algorithm"; param "model"; measure "waiter max";
          measure "signaler"; measure "total"; measure "unfinished";
          measure "violations" ]
    (Parallel.map ~jobs (row ~n ~seed) points)

let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "violations" (( = ) (Results.Int 0)) >>> fun () ->
    shape_all t "unfinished" (( = ) (Results.Int 0))
  | _ -> Error "e13: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e13";
      title = "blocking Wait() solutions under randomized schedules";
      claim;
      shape_note = "every Wait() returns (no unfinished waiters), no violations";
      run =
        (fun ~jobs size ->
          let n = match size with Default -> default_n | Reduced -> reduced_n in
          [ table ~jobs ~n () ]);
      shape }
