(* E10: group mutual exclusion (related-work context: the
   Hadzilacos-Danek separation the paper discusses). *)

open Smr

let default_ns = [ 4; 8; 16; 32 ]
let default_entries = 3
let reduced_ns = [ 8 ]
let reduced_entries = 2

let claim =
  "Sec. 1/3 context: two-session group mutual exclusion — the session lock \
   admits same-session concurrency where the mutex reduction cannot"

let model_of tag layout =
  match tag with
  | `Dsm -> Cost_model.dsm layout
  | `Cc -> Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~n:0 ()

let algorithms : (module Sync.Gme_intf.GME) list =
  [ (module Sync.Gme_mutex);
    (module Sync.Gme_session_lock);
    (module Sync.Gme_lightswitch.As_gme) ]

let row ~entries ((module G : Sync.Gme_intf.GME), n) =
  let run tag =
    Sync.Gme_runner.run (module G) ~model_of:(model_of tag) ~n ~entries
      ~sessions:2 ~policy:(Schedule.Random_seed 42) ()
  in
  let cc = run `Cc and dsm = run `Dsm in
  Results.
    [ text G.name;
      int n;
      float ~digits:1 cc.Sync.Gme_runner.avg_rmrs_per_passage;
      float ~digits:1 dsm.Sync.Gme_runner.avg_rmrs_per_passage;
      int dsm.Sync.Gme_runner.max_concurrency;
      bool (cc.Sync.Gme_runner.safe && dsm.Sync.Gme_runner.safe) ]

let table ?(jobs = 1) ?(ns = default_ns) ?(entries = default_entries) () =
  let points =
    List.concat_map
      (fun (module G : Sync.Gme_intf.GME) ->
        List.map (fun n -> ((module G : Sync.Gme_intf.GME), n)) ns)
      algorithms
  in
  Results.make ~experiment:"e10"
    ~title:
      (Printf.sprintf
         "E10 (Sec. 1/3 context): two-session group mutual exclusion, %d \
          entries/process — the session lock admits same-session \
          concurrency where the mutex reduction cannot; the Danek-\
          Hadzilacos tight bounds (CC O(log N) vs DSM Ω(N)) are out of \
          scope, the landscape is context"
         entries)
    ~claim
    ~params:
      [ ("ns", Results.text (String.concat "," (List.map string_of_int ns)));
        ("entries", Results.int entries) ]
    ~columns:
      Results.
        [ param "algorithm"; param "N"; measure "CC RMR/passage";
          measure "DSM RMR/passage"; measure "max conc"; measure "safe" ]
    (Parallel.map ~jobs (row ~entries) points)

let shape = function
  | [ t ] -> Experiment_def.shape_all t "safe" (( = ) (Results.Bool true))
  | _ -> Error "e10: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e10";
      title = "two-session group mutual exclusion landscape";
      claim;
      shape_note = "every GME algorithm is safe in both models";
      run =
        (fun ~jobs size ->
          let ns, entries =
            match size with
            | Default -> (default_ns, default_entries)
            | Reduced -> (reduced_ns, reduced_entries)
          in
          [ table ~jobs ~ns ~entries () ]);
      shape }
