(** E1 — Section 5 upper bound: the CC flag algorithm is O(1) RMRs per
    process.  Expected shape: flat in N. *)

val table : ?jobs:int -> ?ns:int list -> unit -> Results.table

val spec : Experiment_def.spec
