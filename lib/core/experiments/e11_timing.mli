(** E11 — related-work context: Fischer's timing-based lock is safe under
    the semi-synchronous model (Section 3) and violable without it.
    Expected shape: semi-sync sampling safe, async sampling UNSAFE, the
    forced overlap defeats a too-small delay. *)

val table :
  ?jobs:int -> ?n:int -> ?delta:int -> ?seeds:int list -> unit ->
  Results.table

val spec : Experiment_def.spec
