(* The shape of a registered experiment; see the .mli. *)

type size = Default | Reduced

type spec = {
  id : string;
  title : string;
  claim : string;
  shape_note : string;
  run : jobs:int -> size -> Results.table list;
  shape : Results.table list -> (unit, string) result;
}

let shape_all t col p =
  let values = Results.column_values t col in
  match
    List.find_index (fun v -> not (p v)) values
  with
  | None -> Ok ()
  | Some i ->
    Error
      (Printf.sprintf "%s%s: row %d violates the expectation on %S"
         t.Results.experiment
         (match t.Results.part with Some p -> p | None -> "")
         i col)

let check cond msg = if cond then Ok () else Error msg

let ( >>> ) r k = match r with Ok () -> k () | Error _ as e -> e
