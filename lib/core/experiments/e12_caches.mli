(** E12 — Section 8: finite LRU caches make the ideal-cache RMR counts
    underestimates.  Expected shape: every finite capacity >= ideal,
    capacity 1 strictly more. *)

val table :
  ?jobs:int -> ?n:int -> ?capacities:int list -> unit -> Results.table

val spec : Experiment_def.spec
