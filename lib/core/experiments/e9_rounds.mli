(** E9 — Section 6 internals: per-round statistics vs. the Def. 6.9
    invariant.  Expected shape: the S(i) bound and regularity hold at
    every round. *)

val table : ?jobs:int -> ?n:int -> unit -> Results.table

val spec : Experiment_def.spec
