(** The experiment registry: the single source of truth for which
    experiments exist, in presentation order.

    The CLI ([separation tables]), the bench harness, the examples and the
    tests all enumerate {!all}; an experiment is one module under
    [lib/core/experiments/] exposing an {!Experiment_def.spec} plus one
    line in this module's built-in list (or a {!register} call from
    outside the library). *)

val all : unit -> Experiment_def.spec list
(** Built-in experiments (e1..e13) in presentation order, followed by any
    {!register}ed extras in registration order. *)

val ids : unit -> string list

val find : string -> Experiment_def.spec option

val find_exn : string -> Experiment_def.spec
(** Raises [Invalid_argument] with a message listing the valid ids —
    unknown experiment names are a hard error everywhere. *)

val register : Experiment_def.spec -> unit
(** Add an out-of-library experiment.  Raises [Invalid_argument] on a
    duplicate id. *)
