(* E7: the Section 3 mutual-exclusion landscape. *)

open Smr

let default_ns = [ 2; 4; 8; 16; 32 ]
let default_entries = 4
let reduced_ns = [ 8 ]
let reduced_entries = 2

let claim =
  "Sec. 3: the classical mutual-exclusion RMR landscape — TAS/TTAS/ticket/\
   bakery grow with N, Yang-Anderson ~log N, MCS O(1) in both models, \
   Anderson/CLH local-spin in CC only"

let model_of tag layout =
  match tag with
  | `Dsm -> Cost_model.dsm layout
  | `Cc -> Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~n:0 ()

let row ~entries ((module L : Sync.Mutex_intf.LOCK), n) =
  (* A seeded random schedule: a deterministic round-robin would hand
     Anderson's lock slot i to process i every time, making its array
     spins accidentally local in DSM. *)
  let run tag =
    Sync.Lock_runner.run (module L) ~model_of:(model_of tag) ~n ~entries
      ~policy:(Schedule.Random_seed 42) ()
  in
  let cc = run `Cc and dsm = run `Dsm in
  Results.
    [ text L.name;
      int n;
      float ~digits:1 cc.Sync.Lock_runner.avg_rmrs_per_passage;
      float ~digits:1 dsm.Sync.Lock_runner.avg_rmrs_per_passage;
      bool
        (cc.Sync.Lock_runner.mutual_exclusion_held
        && dsm.Sync.Lock_runner.mutual_exclusion_held) ]

let table ?(jobs = 1) ?(ns = default_ns) ?(entries = default_entries) () =
  let points =
    List.concat_map
      (fun (module L : Sync.Mutex_intf.LOCK) ->
        List.map (fun n -> ((module L : Sync.Mutex_intf.LOCK), n)) ns)
      Algorithms.locks
  in
  Results.make ~experiment:"e7"
    ~title:
      (Printf.sprintf
         "E7 (Sec. 3): mutual exclusion under contention (%d \
          entries/process, seeded random steps) — TAS/TTAS/ticket/bakery \
          spin or scan remotely and grow with N, Yang-Anderson ~log N, \
          MCS O(1) in both models, Anderson/CLH local-spin in CC only"
         entries)
    ~claim
    ~params:
      [ ("ns", Results.text (String.concat "," (List.map string_of_int ns)));
        ("entries", Results.int entries) ]
    ~columns:
      Results.
        [ param "lock"; param "N"; measure "CC RMR/passage";
          measure "DSM RMR/passage"; measure "mutex held" ]
    (Parallel.map ~jobs (row ~entries) points)

let shape = function
  | [ t ] ->
    Experiment_def.shape_all t "mutex held" (( = ) (Results.Bool true))
  | _ -> Error "e7: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e7";
      title = "mutual-exclusion RMR landscape";
      claim;
      shape_note = "mutual exclusion holds for every lock in both models";
      run =
        (fun ~jobs size ->
          let ns, entries =
            match size with
            | Default -> (default_ns, default_entries)
            | Reduced -> (reduced_ns, reduced_entries)
          in
          [ table ~jobs ~ns ~entries () ]);
      shape }
