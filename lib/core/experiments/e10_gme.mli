(** E10 — related-work context: two-session group mutual exclusion (the
    problem of the Hadzilacos-Danek separation the paper discusses).
    Expected shape: every algorithm safe in both models. *)

val table :
  ?jobs:int -> ?ns:int list -> ?entries:int -> unit -> Results.table

val spec : Experiment_def.spec
