(** E2 — Theorem 6.2: the adversary forces amortized Θ(N) on a
    reads/writes algorithm and is defeated (erasures blocked) by the F&I
    queue.  Expected shape: amortized grows for dsm-broadcast, flat for
    dsm-queue. *)

val table : ?jobs:int -> ?ns:int list -> unit -> Results.table

val spec : Experiment_def.spec
