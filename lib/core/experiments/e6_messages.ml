(* E6: Section 8 — RMRs vs. coherence messages ("exchange rate"). *)

open Smr

let default_ns = [ 8; 32; 128 ]
let reduced_ns = [ 32 ]

let claim =
  "Sec. 8: an RMR is not a message — a bus broadcasts one message per \
   action while a limited directory sends superfluous invalidations, so \
   the messages-per-RMR exchange rate depends on the interconnect"

let interconnects = [ Cc.Bus; Cc.Directory_precise; Cc.Directory_limited 4 ]

let row (n, ic) =
  let cfg = Algorithms.config_for (module Cc_flag) ~n in
  let model = `Cc (Cc.Write_through, ic) in
  let o = Scenario.run_phased (module Cc_flag) ~model ~cfg () in
  Results.
    [ int n;
      text (Cc.interconnect_name ic);
      int o.Scenario.total_rmrs;
      int o.Scenario.total_messages;
      float
        (if o.Scenario.total_rmrs = 0 then 0.
         else
           float_of_int o.Scenario.total_messages
           /. float_of_int o.Scenario.total_rmrs) ]

let table ?(jobs = 1) ?(ns = default_ns) () =
  let points =
    List.concat_map (fun n -> List.map (fun ic -> (n, ic)) interconnects) ns
  in
  Results.make ~experiment:"e6"
    ~title:
      "E6 (Sec. 8): cc-flag RMRs vs. coherence messages under different \
       interconnects — a bus broadcasts one message per action; a limited \
       directory sends superfluous invalidations, so messages/RMR grows"
    ~claim
    ~params:[ ("ns", Results.text (String.concat "," (List.map string_of_int ns))) ]
    ~columns:
      Results.
        [ param "N"; param "interconnect"; measure "RMRs"; measure "messages";
          measure "msgs/RMR" ]
    (Parallel.map ~jobs row points)

let messages_for t ~interconnect =
  List.filter_map
    (fun row -> Results.to_int (Results.get t ~row "messages"))
    (Results.rows_where t "interconnect" (Results.Text interconnect))

let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "msgs/RMR" (fun v ->
        match Results.to_float v with Some r -> r >= 1. | None -> false)
    >>> fun () ->
    let bus = messages_for t ~interconnect:(Cc.interconnect_name Cc.Bus) in
    let dir =
      messages_for t
        ~interconnect:(Cc.interconnect_name Cc.Directory_precise)
    in
    check
      (List.length bus = List.length dir
      && List.for_all2 (fun b d -> d > b) bus dir)
      "e6: the directory should send more messages than the bus at every N"
  | _ -> Error "e6: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e6";
      title = "RMRs vs. coherence messages per interconnect";
      claim;
      shape_note =
        "msgs/RMR >= 1 everywhere; precise directory outgoing messages \
         exceed the bus's at every N";
      run =
        (fun ~jobs size ->
          let ns = match size with Default -> default_ns | Reduced -> reduced_ns in
          [ table ~jobs ~ns () ]);
      shape }
