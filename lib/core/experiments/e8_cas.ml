(* E8: Corollary 6.14 — CAS does not help: emulated F&I collapses under
   adversarial contention, and the read/write reductions stay correct. *)

open Smr

let default_n = 128
let default_ks = [ 2; 4; 8; 16; 32; 64 ]
let reduced_n = 64
let reduced_ks = [ 16 ]

let claim =
  "Cor. 6.14: comparison primitives (CAS, LL/SC) reduce to reads/writes, \
   so they cannot beat the lower bound — k colliding registrations cost \
   Θ(k²) RMRs emulated vs Θ(k) with hardware F&I"

(* Drive k waiters so that their registration CASes collide maximally:
   advance everyone to the point of applying the contended operation, then
   release them back-to-back; losers loop and collide again.  With hardware
   F&I there are no losers, so the same treatment costs O(k). *)
let contention_total (module A : Signaling.POLLING) ~n ~k =
  let ctx = Var.Ctx.create () in
  let cfg = Algorithms.config_for (module A) ~n in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n in
  let waiters = List.init k (fun i -> i + 1) in
  let sim =
    List.fold_left
      (fun sim w ->
        Sim.begin_call sim w ~label:Signaling.poll_label
          (inst.Signaling.i_poll w))
      sim waiters
  in
  let is_rmw inv =
    match Op.kind inv with
    | Op.K_cas | Op.K_faa | Op.K_fas | Op.K_tas | Op.K_sc -> true
    | Op.K_read | Op.K_write | Op.K_ll -> false
  in
  (* Advance w until it is about to apply a read-modify-write, or its poll
     completes. *)
  let rec to_rmw sim w fuel =
    if fuel = 0 then failwith "E8.contention: out of fuel"
    else
      match Sim.proc_state sim w with
      | Sim.Idle | Sim.Terminated -> sim
      | Sim.Running _ -> (
        match Sim.peek sim w with
        | Some inv when is_rmw inv -> sim
        | Some _ -> to_rmw (Sim.advance sim w) w (fuel - 1)
        | None -> sim)
  in
  let rec rounds sim guard =
    if guard = 0 then failwith "E8.contention: too many rounds"
    else
      let sim = List.fold_left (fun sim w -> to_rmw sim w 10_000) sim waiters in
      let poised =
        List.filter
          (fun w ->
            match Sim.peek sim w with Some inv -> is_rmw inv | None -> false)
          waiters
      in
      if poised = [] then sim
      else
        (* Release the colliding operations back-to-back. *)
        let sim = List.fold_left (fun sim w -> Sim.advance sim w) sim poised in
        rounds sim (guard - 1)
  in
  let sim = rounds sim ((4 * k) + 8) in
  (* Let every waiter finish its first poll. *)
  let sim = List.fold_left (fun sim w -> Sim.run_to_idle sim w) sim waiters in
  Sim.total_rmrs sim

let contention_row ~n k =
  let per total = Results.float (float_of_int total /. float_of_int k) in
  let cas = contention_total (module Cas_register) ~n ~k in
  let llsc = contention_total (module Llsc_register) ~n ~k in
  let fai = contention_total (module Dsm_queue) ~n ~k in
  Results.
    [ int k; int cas; per cas; int llsc; per llsc; int fai; per fai ]

(* The reduction itself: both transformed algorithms are reads/writes only
   and still correct. *)
let comparison_steps sim =
  List.length
    (List.filter
       (fun (s : History.step) ->
         match Op.kind s.History.inv with
         | Op.K_cas | Op.K_ll | Op.K_sc -> true
         | Op.K_read | Op.K_write | Op.K_faa | Op.K_fas | Op.K_tas -> false)
       (Sim.steps sim))

let reduction_row (module A : Signaling.POLLING) =
  let cfg = Algorithms.config_for (module A) ~n:16 in
  let o = Scenario.run_phased (module A) ~model:`Dsm ~cfg () in
  Results.
    [ text A.name;
      int (comparison_steps o.Scenario.sim);
      int (List.length o.Scenario.violations);
      int o.Scenario.total_rmrs;
      float o.Scenario.amortized ]

let tables ?(jobs = 1) ?(n = default_n) ?(ks = default_ks) () =
  let params =
    [ ("n", Results.int n);
      ("ks", Results.text (String.concat "," (List.map string_of_int ks))) ]
  in
  [ Results.make ~experiment:"e8" ~part:"a"
      ~title:
        "E8a (Cor. 6.14): adversarial contention — k colliding \
         registrations cost Θ(k²) RMRs with CAS- or LL/SC-emulated F&I, \
         Θ(k) with hardware F&I"
      ~claim ~params
      ~columns:
        Results.
          [ param "k"; measure "CAS total"; measure "CAS/waiter";
            measure "LL/SC total"; measure "LL/SC/waiter"; measure "F&I total";
            measure "F&I/waiter" ]
      (Parallel.map ~jobs (contention_row ~n) ks);
    Results.make ~experiment:"e8" ~part:"b"
      ~title:
        "E8b (Cor. 6.14): the reductions — zero comparison-primitive steps \
         remain, specification still satisfied"
      ~claim ~params
      ~columns:
        Results.
          [ param "algorithm"; measure "CAS/LL/SC steps"; measure "violations";
            measure "total RMRs"; measure "amortized" ]
      (List.map reduction_row
         [ (module Cas_register.Transformed); (module Llsc_register.Transformed) ]) ]

let per_waiter t col =
  List.filter_map Results.to_float (Results.column_values t col)

let shape = function
  | [ a; b ] ->
    let open Experiment_def in
    let cas = per_waiter a "CAS/waiter" in
    let fai = per_waiter a "F&I/waiter" in
    check (List.length cas >= 2) "e8a: need at least two contention levels"
    >>> fun () ->
    let first = List.hd and last l = List.nth l (List.length l - 1) in
    check
      (last cas > 2. *. first cas)
      "e8a: CAS per-waiter cost does not grow superlinearly"
    >>> fun () ->
    check
      (last fai < 1.5 *. first fai +. 1.)
      "e8a: F&I per-waiter cost is not flat"
    >>> fun () ->
    shape_all b "CAS/LL/SC steps" (( = ) (Results.Int 0)) >>> fun () ->
    shape_all b "violations" (( = ) (Results.Int 0))
  | _ -> Error "e8: expected exactly two tables"

let spec =
  Experiment_def.
    { id = "e8";
      title = "CAS contention blowup and the read/write reductions";
      claim;
      shape_note =
        "CAS per-waiter cost grows with k while F&I stays flat; the \
         transformed algorithms execute zero comparison steps and satisfy \
         the spec";
      run =
        (fun ~jobs size ->
          let n, ks =
            match size with
            | Default -> (default_n, default_ks)
            | Reduced -> (reduced_n, reduced_ks)
          in
          tables ~jobs ~n ~ks ());
      shape }
