(* E11: the semi-synchronous model (Sec. 3) — timing-based mutual
   exclusion is safe exactly when the timing assumption holds. *)

open Smr

let default_n = 4
let default_delta = 6
let default_seeds = List.init 20 (fun i -> i + 1)
let reduced_n = 3
let reduced_seeds = [ 1; 2; 3; 4 ]

let claim =
  "Sec. 3 context: Fischer's lock is safe under the semi-synchronous \
   timing assumption and violable under full asynchrony — timing is \
   exactly what the algorithm's safety buys"

(* Count, over many seeds, how often Fischer's lock loses an increment. *)
let fischer_violations ~n ~delay ~policy_of ~seeds =
  List.fold_left
    (fun bad seed ->
      let o =
        Sync.Lock_runner.run
          (Sync.Fischer_lock.with_delay delay)
          ~model_of:Cost_model.dsm ~n ~entries:2 ~policy:(policy_of seed) ()
      in
      if o.Sync.Lock_runner.mutual_exclusion_held then bad else bad + 1)
    0 seeds

(* The canonical Fischer violation, forced deterministically: p0 and p1
   both read X = NIL; then p0 runs alone through write / delay / re-check
   and enters; only then does p1 perform its write (now the last), delay,
   re-check X = p1, and enter too.  Returns whether both completed acquire
   with nobody releasing, and the step gap p1 needed between its read and
   its write — the schedule is legal in the semi-synchronous model iff
   that gap is at most delta. *)
let fischer_forced_overlap ~delay =
  let ctx = Var.Ctx.create () in
  let lock = Sync.Fischer_lock.create_timed ctx ~n:2 ~delay in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let acquire p =
    Program.map (fun () -> 0) (Sync.Fischer_lock.acquire lock p)
  in
  let sim = Sim.begin_call sim 0 ~label:"acquire" (acquire 0) in
  let sim = Sim.begin_call sim 1 ~label:"acquire" (acquire 1) in
  let sim = Sim.advance sim 0 (* p0 reads X = NIL *) in
  let sim = Sim.advance sim 1 (* p1 reads X = NIL *) in
  let gap_start = Sim.clock sim in
  let sim = Sim.run_to_idle sim 0 (* p0: write, delay, re-check, enter *) in
  let gap = Sim.clock sim - gap_start + 1 (* p1's write comes next *) in
  let sim = Sim.run_to_idle sim 1 (* p1: write, delay, re-check *) in
  let both_in = Sim.is_idle sim 0 && Sim.is_idle sim 1 in
  (both_in, gap)

let table ?(jobs = 1) ?(n = default_n) ?(delta = default_delta)
    ?(seeds = default_seeds) () =
  ignore jobs (* four heterogeneous rows; nothing worth fanning out *);
  let semi seed = Schedule.Semi_sync { delta; seed } in
  let async seed = Schedule.Random_seed seed in
  let forced_row delay =
    let both_in, gap = fischer_forced_overlap ~delay in
    Results.
      [ text "forced overlap (async)";
        int delay;
        text (if both_in then "both entered CS" else "excluded");
        text
          (Printf.sprintf "gap %d %s delta=%d %s" gap
             (if gap <= delta then "<=" else ">")
             delta
             (if gap <= delta then "(legal even semi-sync!)" else "(async only)")) ]
  in
  let sampled_row label policy_of delay =
    let bad = fischer_violations ~n ~delay ~policy_of ~seeds in
    Results.
      [ text label;
        int delay;
        text (Printf.sprintf "%d/%d seeds violated" bad (List.length seeds));
        text (if bad = 0 then "safe" else "UNSAFE") ]
  in
  let safe_delay = (2 * delta) + n in
  Results.make ~experiment:"e11"
    ~title:
      (Printf.sprintf
         "E11 (Sec. 3 context): Fischer's timing-based lock (N=%d).  The \
          forced two-process overlap needs a read-to-write gap of delay+2 \
          ticks: asynchrony always allows it; the semi-synchronous model \
          (gap <= %d) allows it only when the delay is too small — timing \
          is exactly what the algorithm's safety buys"
         n delta)
    ~claim
    ~params:
      [ ("n", Results.int n);
        ("delta", Results.int delta);
        ("seeds", Results.int (List.length seeds)) ]
    ~columns:
      Results.
        [ param "scenario"; param "delay"; measure "outcome";
          measure "schedule legality / verdict" ]
    [ forced_row 1;
      forced_row safe_delay;
      sampled_row
        (Printf.sprintf "semi-sync(delta=%d), sampled" delta)
        semi safe_delay;
      sampled_row "async (random), sampled" async 1 ]

let shape = function
  | [ t ] ->
    let open Experiment_def in
    let verdict ~prefix =
      List.find_map
        (fun row ->
          match Results.get t ~row "scenario" with
          | Results.Text s when String.starts_with ~prefix s ->
            Some (Results.to_text (Results.get t ~row "schedule legality / verdict"))
          | _ -> None)
        t.Results.rows
    in
    check
      (verdict ~prefix:"semi-sync" = Some "safe")
      "e11: Fischer should be safe under the semi-synchronous schedule"
    >>> fun () ->
    check
      (verdict ~prefix:"async (random)" = Some "UNSAFE")
      "e11: Fischer should be violable under full asynchrony"
    >>> fun () ->
    check
      (List.exists
         (fun row ->
           Results.get t ~row "delay" = Results.Int 1
           && Results.get t ~row "outcome" = Results.Text "both entered CS")
         t.Results.rows)
      "e11: the forced overlap should defeat a too-small delay"
  | _ -> Error "e11: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e11";
      title = "Fischer's timing-based lock vs the timing assumption";
      claim;
      shape_note =
        "semi-synchronous sampling is safe, asynchronous sampling is \
         UNSAFE, and the forced overlap defeats a too-small delay";
      run =
        (fun ~jobs size ->
          match size with
          | Default -> [ table ~jobs () ]
          | Reduced -> [ table ~jobs ~n:reduced_n ~seeds:reduced_seeds () ]);
      shape }
