(** The shape of a registered experiment.

    Each of the suite's experiments lives in its own module under
    [lib/core/experiments/] and exposes a {!spec}; the registration line in
    {!Experiment_registry} makes it discoverable by the CLI, the bench
    harness and the tests.  Adding an experiment is one new file plus that
    one line. *)

(** Which parameter set a run uses: [Default] regenerates the full
    EXPERIMENTS.md tables; [Reduced] is the small set the bechamel benches
    time (and CI smoke-runs). *)
type size = Default | Reduced

type spec = {
  id : string;  (** registry key, e.g. ["e1"]; unique *)
  title : string;  (** one-line human title *)
  claim : string;  (** the paper-section claim the experiment regenerates *)
  shape_note : string;
      (** what the expected-shape predicate checks, for docs and [--list] *)
  run : jobs:int -> size -> Results.table list;
      (** Deterministic; [jobs] bounds point-level fan-out (see
          {!Parallel.map}), and never affects the produced tables. *)
  shape : Results.table list -> (unit, string) result;
      (** Expected-shape predicate over [run]'s output (E1 flat in N, E2
          growing, E5 separation, ...): [Error] describes the violated
          expectation.  Checked by {!Runner} on the [Default] size. *)
}

val shape_all :
  Results.table -> string -> (Results.value -> bool) -> (unit, string) result
(** [shape_all t col p] is [Ok ()] when every row's cell under [col]
    satisfies [p], otherwise an [Error] naming the first offending row. *)

val check : bool -> string -> (unit, string) result
(** [check cond msg] is [Ok ()] or [Error msg]. *)

val ( >>> ) :
  (unit, string) result -> (unit -> (unit, string) result) ->
  (unit, string) result
(** Short-circuiting sequencing for predicate pipelines. *)
