(* The experiment registry.  One registration line per experiment. *)

let builtin : Experiment_def.spec list =
  [ E1_cc_flag.spec;
    E2_adversary.spec;
    E3_landscape.spec;
    E4_queue_k.spec;
    E5_separation.spec;
    E6_messages.spec;
    E7_mutex.spec;
    E8_cas.spec;
    E9_rounds.spec;
    E10_gme.spec;
    E11_timing.spec;
    E12_caches.spec;
    E13_blocking.spec;
    E14_amortized.spec;
    E15_churn.spec ]

let extras : Experiment_def.spec list ref = ref []

let all () = builtin @ List.rev !extras

let ids () = List.map (fun s -> s.Experiment_def.id) (all ())

let find id =
  List.find_opt (fun s -> s.Experiment_def.id = id) (all ())

let find_exn id =
  match find id with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown experiment %S; valid ids: %s" id
         (String.concat " " (ids ())))

let register spec =
  let id = spec.Experiment_def.id in
  if find id <> None then
    invalid_arg (Printf.sprintf "experiment %S is already registered" id)
  else extras := spec :: !extras
