(** E4 — Section 7: the queue solution is O(1) amortized for every
    participation level k.  Expected shape: amortized flat across k. *)

val table : ?jobs:int -> ?n:int -> ?ks:int list -> unit -> Results.table

val spec : Experiment_def.spec
