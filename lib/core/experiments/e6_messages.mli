(** E6 — Section 8: RMRs vs. coherence messages under bus/directory
    interconnects.  Expected shape: msgs/RMR >= 1, directories send more
    than the bus. *)

val table : ?jobs:int -> ?ns:int list -> unit -> Results.table

val spec : Experiment_def.spec
