(** E15 — waiter churn on the flat engine: bursty arrivals, crashes and
    early leavers.  Expected shape: Spec 4.1 holds for every non-crashed
    poll, cc-flag's per-Signal cost stays O(1), dsm-broadcast stays
    Theta(k). *)

val table : ?jobs:int -> ?k:int -> unit -> Results.table

val spec : Experiment_def.spec
