(** E7 — Section 3: the mutual-exclusion RMR landscape under contention.
    Expected shape: mutual exclusion holds everywhere. *)

val table :
  ?jobs:int -> ?ns:int list -> ?entries:int -> unit -> Results.table

val spec : Experiment_def.spec
