(* E12: finite caches (Sec. 8) — ideal-cache RMR bounds are underestimates
   once the working set outgrows the cache. *)

open Smr

let default_n = 16
let default_capacities = [ 1; 2; 4; 8 ]
let reduced_n = 8
let reduced_capacities = [ 1; 4 ]

let claim =
  "Sec. 8: with a finite LRU cache repeated polls miss again, so the \
   ideal-cache RMR counts underestimate real machines"

(* A waiter whose poll touches several variables (the queue algorithm's
   registration path) under shrinking caches: with an ideal cache the
   post-registration polls are free; with capacity 1 the working set
   thrashes. *)
let run_capacity ~n capacity =
  let cfg = Algorithms.config_for (module Dsm_queue) ~n in
  (* Build the model directly: Scenario's tags don't carry capacity. *)
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate (module Dsm_queue) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let model =
    Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ?capacity ~n ()
  in
  let sim = Sim.create ~model ~layout ~n in
  (* Each waiter polls four times before the signal: under an ideal cache,
     polls 2-4 are all cache hits. *)
  let sim =
    List.fold_left
      (fun sim round ->
        ignore round;
        List.fold_left
          (fun sim w ->
            fst
              (Sim.run_call sim w ~label:Signaling.poll_label
                 (inst.Signaling.i_poll w)))
          sim cfg.Signaling.waiters)
      sim [ 0; 1; 2; 3 ]
  in
  let sim, _ =
    Sim.run_call sim 0 ~label:Signaling.signal_label (inst.Signaling.i_signal 0)
  in
  Sim.total_rmrs sim

let table ?(jobs = 1) ?(n = default_n) ?(capacities = default_capacities) () =
  let ideal = run_capacity ~n None in
  let finite =
    Parallel.map ~jobs (fun c -> (c, run_capacity ~n (Some c))) capacities
  in
  let rows =
    List.map
      (fun (c, rmrs) ->
        Results.
          [ text (string_of_int c);
            int rmrs;
            float (float_of_int rmrs /. float_of_int ideal) ])
      finite
    @ [ Results.[ text "ideal"; int ideal; float 1.0 ] ]
  in
  Results.make ~experiment:"e12"
    ~title:
      (Printf.sprintf
         "E12 (Sec. 8): dsm-queue polls under CC with finite caches (N=%d) \
          — LRU eviction makes repeated polls miss again, so the \
          ideal-cache RMR counts underestimate real machines"
         n)
    ~claim
    ~params:
      [ ("n", Results.int n);
        ("capacities",
         Results.text (String.concat "," (List.map string_of_int capacities))) ]
    ~columns:
      Results.[ param "capacity"; measure "total RMRs"; measure "vs ideal" ]
    rows

let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "vs ideal" (fun v ->
        match Results.to_float v with Some r -> r >= 1. | None -> false)
    >>> fun () ->
    let ratio cap =
      List.find_map
        (fun row ->
          if Results.get t ~row "capacity" = Results.Text cap then
            Results.to_float (Results.get t ~row "vs ideal")
          else None)
        t.Results.rows
    in
    check
      (match (ratio "1", ratio "ideal") with
      | Some thrash, Some ideal -> thrash > ideal
      | _ -> false)
      "e12: a capacity-1 cache should cost strictly more than the ideal cache"
  | _ -> Error "e12: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e12";
      title = "finite LRU caches vs the ideal-cache RMR counts";
      claim;
      shape_note =
        "every finite capacity costs at least the ideal cache; capacity 1 \
         costs strictly more";
      run =
        (fun ~jobs size ->
          let n, capacities =
            match size with
            | Default -> (default_n, default_capacities)
            | Reduced -> (reduced_n, reduced_capacities)
          in
          [ table ~jobs ~n ~capacities () ]);
      shape }
