(** E14 — open-system heavy traffic on the flat engine: amortized RMRs per
    Signal across participation levels up to k = 10^6.  Expected shape:
    cc-flag flat (O(1)), dsm-broadcast and dsm-queue growing linearly in k. *)

val table : ?jobs:int -> ?ks:int list -> unit -> Results.table

val spec : Experiment_def.spec
