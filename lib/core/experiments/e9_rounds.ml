(* E9: the Section 6 construction's internals (Def. 6.9 invariant). *)

let default_n = 64
let reduced_n = 32

let claim =
  "Sec. 6, Def. 6.9: after round i of the construction every active \
   process has at most i+1 RMRs, and the surviving history stays regular"

let table ?(jobs = 1) ?(n = default_n) () =
  ignore jobs (* one adversary run; nothing to fan out *);
  let r = Adversary.run (module Cas_register) ~n () in
  let rows =
    List.map
      (fun (s : Adversary.round_stat) ->
        Results.
          [ int s.Adversary.round;
            int s.Adversary.active_before;
            int s.Adversary.active_after;
            int s.Adversary.poised;
            int (s.Adversary.erased_conflicts + s.Adversary.erased_writes);
            text
              (match s.Adversary.rolled_forward with
              | Some p -> Printf.sprintf "p%d" p
              | None -> "-");
            int s.Adversary.max_active_rmrs;
            bool (s.Adversary.max_active_rmrs <= s.Adversary.round + 1);
            bool s.Adversary.regular ])
      r.Adversary.rounds
  in
  Results.make ~experiment:"e9"
    ~title:
      (Printf.sprintf
         "E9 (Sec. 6, Def. 6.9): adversary rounds vs cas-register (N=%d) — \
          per-round active counts and the S(i) RMR bound (each active \
          process has at most i+1 RMRs after round i)"
         n)
    ~claim
    ~params:[ ("n", Results.int n) ]
    ~columns:
      Results.
        [ param "round"; measure "act before"; measure "act after";
          measure "poised"; measure "erased"; measure "rolled";
          measure "max act RMRs"; measure "S(i) holds"; measure "regular" ]
    rows

(* Regularity is NOT expected to hold at every round here: cas-register's
   read-like CAS visibility breaks Def. 6.6 (the documented reason
   Cor. 6.14 proceeds by reduction) — the invariant under test is the
   S(i) RMR bound plus "at most one process finishes per round". *)
let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "S(i) holds" (( = ) (Results.Bool true)) >>> fun () ->
    check
      (List.for_all2
         (fun before after ->
           match (Results.to_int before, Results.to_int after) with
           | Some b, Some a -> b - a <= 1
           | _ -> false)
         (Results.column_values t "act before")
         (Results.column_values t "act after"))
      "e9: more than one process finished in a single round"
  | _ -> Error "e9: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e9";
      title = "adversary round internals vs the Def. 6.9 invariant";
      claim;
      shape_note =
        "S(i) bound holds at every round and at most one process finishes \
         per round (regularity alternates by design on cas-register)";
      run =
        (fun ~jobs size ->
          let n = match size with Default -> default_n | Reduced -> reduced_n in
          [ table ~jobs ~n () ]);
      shape }
