(* E5: the cross-model matrix — the separation itself. *)

let default_n = 64
let reduced_n = 32

let claim =
  "Secs. 1/5/7: cc-flag is O(1) per process in every CC variant and Θ(N) \
   under DSM — the complexity separation between the two models"

let models = [ `Dsm; `Cc_wt; `Cc_wb; `Cc_lfcu ]

(* Worst per-process RMRs / amortized, or why the run did not finish; kept
   as one display cell so the matrix stays readable. *)
let cell ~n (module A : Signaling.POLLING) model =
  let cfg = Algorithms.config_for (module A) ~n in
  match Algorithms.run_or_blocks (module A) ~model ~cfg () with
  | Ok o ->
    Printf.sprintf "%d / %s"
      (max o.Scenario.max_waiter_rmrs o.Scenario.signaler_rmrs)
      (Results.render_value (Results.float o.Scenario.amortized))
  | Error why -> why

let row ~n (module A : Signaling.POLLING) =
  Results.text A.name
  :: List.map (fun m -> Results.text (cell ~n (module A) m)) models

let table ?(jobs = 1) ?(n = default_n) () =
  Results.make ~experiment:"e5"
    ~title:
      (Printf.sprintf
         "E5 (Secs. 1/5/7): worst per-process RMRs / amortized RMRs, per \
          model (N=%d).  cc-flag: O(1) in every CC column, Θ(N) under DSM \
          — the separation"
         n)
    ~claim
    ~params:[ ("n", Results.int n) ]
    ~columns:
      (Results.param "algorithm"
      :: List.map (fun m -> Results.measure (Scenario.model_tag_name m)) models)
    (Parallel.map ~jobs (row ~n) Algorithms.polling_algorithms)

let parse cell =
  try Scanf.sscanf cell "%d / %f" (fun w a -> Some (w, a)) with _ -> None

(* The separation reads off the matrix as documented in EXPERIMENTS.md:
   cc-flag is O(1) in every CC column; its bounded-polling DSM run is
   still strictly costlier (E2 is the unbounded-amortized witness); and
   dsm-queue's worst per-process DSM cost is Θ(N) (the signaler walks the
   queue). *)
let shape = function
  | [ t ] -> (
    let n =
      match List.assoc_opt "n" t.Results.params with
      | Some (Results.Int n) -> n
      | _ -> 0
    in
    let cell algorithm model =
      match Results.rows_where t "algorithm" (Results.Text algorithm) with
      | [ row ] -> parse (Results.to_text (Results.get t ~row model))
      | _ -> None
    in
    match
      ( cell "cc-flag" "dsm", cell "cc-flag" "cc-wt", cell "cc-flag" "cc-wb",
        cell "cc-flag" "cc-lfcu", cell "dsm-queue" "dsm" )
    with
    | Some (_, dsm_am), Some (wt, wt_am), Some (wb, _), Some (lfcu, _),
      Some (queue_worst, _) ->
      let open Experiment_def in
      check
        (wt <= 4 && wb <= 4 && lfcu <= 4)
        "e5: cc-flag worst per-process RMRs not O(1) in every CC column"
      >>> fun () ->
      check (dsm_am > wt_am)
        "e5: cc-flag should be strictly costlier under DSM than under CC"
      >>> fun () ->
      check (queue_worst >= n)
        "e5: dsm-queue worst per-process DSM cost should be Θ(N)"
    | _ -> Error "e5: missing or unparsable matrix cells")
  | _ -> Error "e5: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e5";
      title = "the cross-model separation matrix";
      claim;
      shape_note =
        "cc-flag worst-case per-process RMRs <= 4 in every CC column, its \
         bounded-polling DSM run strictly costlier, and dsm-queue's worst \
         DSM cost >= N (E2 is the unbounded-amortized witness)";
      run =
        (fun ~jobs size ->
          let n = match size with Default -> default_n | Reduced -> reduced_n in
          [ table ~jobs ~n () ]);
      shape }
