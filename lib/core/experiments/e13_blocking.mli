(** E13 — Section 7, blocking semantics: the Wait() solutions under
    randomized schedules, per model.  Expected shape: every Wait() returns,
    no violations. *)

val table : ?jobs:int -> ?n:int -> ?seed:int -> unit -> Results.table

val spec : Experiment_def.spec
