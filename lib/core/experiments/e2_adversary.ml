(* E2: Section 6 lower bound — the adversary forces unbounded amortized
   RMRs on read/write algorithms, and fails against F&I. *)

let default_ns = [ 8; 16; 32; 64; 128 ]
let reduced_ns = [ 32 ]

let claim =
  "Thm. 6.2: no reads/writes algorithm solves signaling with O(1) amortized \
   RMRs in DSM; the F&I queue blocks the adversary's erasures"

let row ((module A : Signaling.POLLING), n) =
  let r = Adversary.run (module A) ~n () in
  let chase_rmrs, blocked =
    match r.Adversary.chase with
    | Some c -> (c.Adversary.signaler_rmrs, c.Adversary.chase_erase_failures)
    | None -> (0, 0)
  in
  Results.
    [ text A.name;
      int n;
      int r.Adversary.stable_waiters;
      int chase_rmrs;
      int blocked;
      int r.Adversary.participants;
      float r.Adversary.amortized;
      bool r.Adversary.part1_regular;
      bool (not r.Adversary.spec_violated) ]

let table ?(jobs = 1) ?(ns = default_ns) () =
  let points =
    List.concat_map
      (fun n ->
        [ ((module Dsm_broadcast : Signaling.POLLING), n);
          ((module Dsm_queue : Signaling.POLLING), n) ])
      ns
  in
  Results.make ~experiment:"e2"
    ~title:
      "E2 (Sec. 6, Thm. 6.2): the mechanized adversary vs a reads/writes \
       algorithm (amortized grows ~N) and vs the F&I queue (erasures \
       blocked, amortized flat)"
    ~claim
    ~params:[ ("ns", Results.text (String.concat "," (List.map string_of_int ns))) ]
    ~columns:
      Results.
        [ param "algorithm"; param "N"; measure "stable";
          measure "signaler RMRs"; measure "blocked"; measure "parts";
          measure "amortized"; measure "regular"; measure "spec ok" ]
    (Parallel.map ~jobs row points)

let amortized_of t name =
  List.filter_map
    (fun row ->
      Results.to_float (Results.get t ~row "amortized"))
    (Results.rows_where t "algorithm" (Results.Text name))

let shape = function
  | [ t ] ->
    let open Experiment_def in
    shape_all t "spec ok" (( = ) (Results.Bool true)) >>> fun () ->
    let broadcast = amortized_of t "dsm-broadcast" in
    let queue = amortized_of t "dsm-queue" in
    check (List.length broadcast >= 2 && List.length queue >= 2)
      "e2: need at least two sizes per algorithm"
    >>> fun () ->
    let first = List.hd and last l = List.nth l (List.length l - 1) in
    check
      (last broadcast > first broadcast +. 5.)
      "e2: read/write amortized does not grow with N"
    >>> fun () ->
    check
      (Float.abs (last queue -. first queue) < 2.)
      "e2: F&I amortized is not flat"
  | _ -> Error "e2: expected exactly one table"

let spec =
  Experiment_def.
    { id = "e2";
      title = "the Sec. 6 adversary vs reads/writes and vs F&I";
      claim;
      shape_note =
        "amortized grows with N for dsm-broadcast, stays flat for dsm-queue; \
         the specification holds throughout";
      run =
        (fun ~jobs size ->
          let ns = match size with Default -> default_ns | Reduced -> reduced_ns in
          [ table ~jobs ~ns () ]);
      shape }
