(** E5 — the cross-model matrix: worst per-process / amortized RMRs per
    cost model.  Expected shape: the separation — cc-flag O(1) in every CC
    column, Θ(N) under DSM. *)

val table : ?jobs:int -> ?n:int -> unit -> Results.table

val spec : Experiment_def.spec
