(* Section 7, "many waiters, fixed in advance": per-waiter flags.

   V[i] is a Boolean homed in process i's module; Poll() by p_i reads V[i]
   (always local in DSM — waiters incur zero RMRs), and Signal() writes V[j]
   for every fixed waiter p_j, costing the signaler O(W) RMRs worst-case.
   As the paper notes, amortized RMR complexity exceeds O(1) when the
   signaler pays W RMRs but only o(W) waiters have participated — the
   precise failure mode the Section 6 adversary industrializes, and the
   reason [Dsm_broadcast] (this algorithm with W = N) is the adversary's
   canonical read/write victim. *)

open Smr

let name = "dsm-fixed"

let description =
  "per-waiter local flags, signaler writes each fixed waiter (Sec. 7); \
   waiters O(0), signaler O(W) RMRs in DSM"

let primitives = [ Op.Reads_writes ]

let flexibility = { Signaling.any_flexibility with waiters_fixed = true }

type t = { targets : Op.pid list; v : bool Var.vec }

(* Shared with [Dsm_broadcast]: flags for everyone (a vec, so broadcast
   instantiates at n = 10^6), signal writes the given target list. *)
let create_targets ctx ~n ~targets =
  { targets;
    v =
      Var.Ctx.bool_vec ctx ~name:"V"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let create ctx (cfg : Signaling.config) =
  create_targets ctx ~n:cfg.Signaling.n ~targets:cfg.Signaling.waiters

let signal t _p =
  (* Built lazily, one write per target as the program unfolds: a broadcast
     to 10^6 targets must not materialize a million-element program list up
     front. *)
  let rec go = function
    | [] -> Program.return ()
    | j :: rest ->
      Program.Syntax.(
        let* () = Program.write (Var.vec_get t.v j) true in
        go rest)
  in
  go t.targets

let poll t p = Program.read (Var.vec_get t.v p)

(* Lint claims: with the waiter set fixed at creation, Signal() writes just
   the declared targets' flags (at most n-1 remote) and Poll() is one local
   read — the local-spin baseline the harder variants are measured
   against. *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "V" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = No_spin; dsm_rmrs = Rmr (n - 1); cc_amortized = Amortized { steady = Rmr (n - 1); refills = 0 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 0; cc_amortized = Amortized { steady = Rmr 0; refills = 1 } }) ] }
