(** Scenario drivers: run a signaling algorithm under a cost model and a
    schedule, check Specification 4.1 and report RMR accounting.

    {!run_phased} is deterministic and feeds the experiment tables;
    {!run_random} interleaves at step granularity under a seeded PRNG and
    feeds the property-based safety tests. *)

open Smr

type outcome = {
  sim : Sim.t;
  violations : Signaling.violation list;
  total_rmrs : int;
  total_messages : int;
  participants : int;
  signaler_rmrs : int;  (** max over configured signalers *)
  max_waiter_rmrs : int;
  amortized : float;  (** total RMRs / participants *)
  unfinished_waiters : int;  (** waiters that never saw the signal *)
}

(** Cost-model selectors the experiments sweep over. *)
type model_tag =
  [ `Dsm
  | `Cc_wt  (** write-through invalidate over a bus *)
  | `Cc_wb  (** write-back over a bus *)
  | `Cc_lfcu  (** write-update (LFCU) over a bus *)
  | `Cc of Cc.protocol * Cc.interconnect ]

val model_tag_name : model_tag -> string

val make_model :
  ?tracer:Obs.Trace.t -> n:int -> Var.layout -> model_tag -> Cost_model.t
(** With [tracer], CC models emit {!Obs.Event.Cache} coherence events
    (DSM has no coherence traffic to report). *)

val run_phased :
  (module Signaling.POLLING) ->
  model:model_tag ->
  cfg:Signaling.config ->
  ?tracer:Obs.Trace.t ->
  ?active_waiters:Op.pid list ->
  ?pre_polls:int ->
  ?post_poll_bound:int ->
  ?fuel:int ->
  unit ->
  outcome
(** Deterministic: each participating waiter performs [pre_polls] Poll()
    calls (asserted false), every configured signaler signals once, then
    each participating waiter polls until it sees true.  [active_waiters]
    restricts which configured waiters participate — the
    partial-participation scenarios where O(W)-signaler algorithms lose
    amortized O(1).  With [tracer], the machine and the cost model emit
    the full per-step event stream. *)

val run_random :
  (module Signaling.POLLING) ->
  model:model_tag ->
  cfg:Signaling.config ->
  seed:int ->
  ?tracer:Obs.Trace.t ->
  ?policy:Smr.Schedule.policy ->
  ?signal_after:int ->
  ?max_events:int ->
  unit ->
  outcome
(** Randomized step-level interleaving; the signaler fires once the logical
    clock passes [signal_after]; waiters poll until they see true.
    [policy] overrides the default uniform random walk
    ([Schedule.Random_seed seed]) — {!Adversary.run_pct} passes
    [Schedule.Pct] here. *)

val run_blocking :
  (module Signaling.BLOCKING) ->
  model:model_tag ->
  cfg:Signaling.config ->
  seed:int ->
  ?tracer:Obs.Trace.t ->
  ?signal_after:int ->
  ?max_events:int ->
  unit ->
  outcome
(** Blocking semantics under a randomized schedule: each waiter calls
    Wait() once; checked against the blocking half of Specification 4.1. *)
