(* Section 7, "many waiters not fixed in advance, one signaler fixed in
   advance": waiters register in the signaler's own memory module.

   Because the signaler's identity is known when the variables are laid
   out, the registration array reg[0..N-1] can be homed in the signaler's
   module: a waiter's first Poll() writes reg[p] (one RMR, charged to that
   waiter) and the signaler scans the whole array locally (zero RMRs),
   writing V[j] only for registered waiters (one RMR per participant).
   The race between registration and signaling is closed exactly as the
   paper prescribes: "The signaler writes S at the beginning of Signal(),
   and waiters check S at the end of their first call to Poll() (i.e.,
   after registering)."

   Per-process worst case: O(1) for waiters, O(k) for the signaler over k
   registered waiters; amortized O(1).  The paper cites [12] for a version
   that is O(1) worst-case per process including the signaler — DESIGN.md
   records the simplification. *)

open Smr
open Program.Syntax

let name = "dsm-registration"

let description =
  "fixed signaler; waiters register in the signaler's module, signaler \
   scans locally (Sec. 7); O(1) amortized RMRs in DSM"

let primitives = [ Op.Reads_writes ]

let flexibility =
  { Signaling.any_flexibility with signaler_fixed = true; max_signalers = Some 1 }

type t = {
  n : int;
  s : bool Var.t; (* global signal flag *)
  reg : bool Var.t array; (* reg.(i): all homed at the signaler's module *)
  v : bool Var.t array; (* v.(i) homed at module i *)
  registered : bool Var.t array; (* per-process local memo *)
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  let signaler =
    match cfg.Signaling.signalers with
    | [ s ] -> s
    | _ -> invalid_arg "Dsm_registration.create: exactly one fixed signaler required"
  in
  { n;
    s = Var.Ctx.bool ctx ~name:"S" ~home:Var.Shared false;
    reg =
      Var.Ctx.bool_array ctx ~name:"reg"
        ~home:(fun _ -> Var.Module signaler)
        n
        (fun _ -> false);
    v =
      Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    registered =
      Var.Ctx.bool_array ctx ~name:"registered"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let poll t p =
  let* already = Program.read t.registered.(p) in
  if already then Program.read t.v.(p)
  else
    let* () = Program.write t.registered.(p) true in
    let* () = Program.write t.reg.(p) true in
    (* Check S after registering: closes the race with a concurrent
       Signal() that scanned reg before our registration landed. *)
    Program.read t.s

let signal t _p =
  let* () = Program.write t.s true in
  Program.for_ 0 (t.n - 1) (fun j ->
      let* r = Program.read t.reg.(j) in
      Program.when_ r (Program.write t.v.(j) true))

(* Lint claims: wait-free; waiters register in cells homed at the
   signaler's module (one remote write + the S read), Signal() scans the
   registry locally and forwards into registered waiters' local flags (at
   most S plus n-1 remote writes). *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "reg"; "S"; "V"; "registered" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = No_spin; dsm_rmrs = Rmr n; cc_amortized = Amortized { steady = Rmr (n + 1); refills = n - 1 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 3; refills = 2 } }) ] }
