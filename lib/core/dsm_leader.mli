(** Section 7, blocking semantics, waiters and signaler not fixed: waiters
    elect a leader that plays the single-waiter protocol and fans the signal
    out over per-process local-spin cells. *)

include Signaling.BLOCKING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
