(** Section 7, blocking semantics, waiters and signaler not fixed: waiters
    elect a leader that plays the single-waiter protocol and fans the signal
    out over per-process local-spin cells. *)

include Signaling.BLOCKING
