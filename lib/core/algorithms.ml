(* The algorithm catalog shared by the experiments, the CLI and the tests. *)

module Queue_multi_signaler = Multi_signaler.Make (Dsm_queue)

let polling_algorithms : (module Signaling.POLLING) list =
  [ (module Cc_flag);
    (module Dsm_broadcast);
    (module Dsm_fixed_waiters);
    (module Dsm_fixed_terminating);
    (module Dsm_single_waiter);
    (module Dsm_registration);
    (module Dsm_queue);
    (module Cas_register);
    (module Cas_register.Transformed);
    (module Llsc_register);
    (module Llsc_register.Transformed);
    (module Queue_multi_signaler) ]

let find_algorithm name =
  List.find_opt
    (fun (module A : Signaling.POLLING) -> A.name = name)
    polling_algorithms

(* Standard configuration: process 0 signals, everyone else may wait.  The
   single-waiter algorithm gets exactly one waiter. *)
let config_for (module A : Signaling.POLLING) ~n =
  let waiters =
    match A.flexibility.Signaling.max_waiters with
    | Some 1 -> [ 1 ]
    | _ -> List.init (n - 1) (fun i -> i + 1)
  in
  Signaling.config ~n ~waiters ~signalers:[ 0 ]

let locks : (module Sync.Mutex_intf.LOCK) list =
  [ (module Sync.Tas_lock);
    (module Sync.Ttas_lock);
    (module Sync.Ticket_lock);
    (module Sync.Anderson_lock);
    (module Sync.Clh_lock);
    (module Sync.Mcs_lock);
    (module Sync.Yang_anderson);
    (module Sync.Bakery_lock) ]

module Blocking_cc_flag = Signaling.Blocking_of_polling (Cc_flag)
module Blocking_queue = Signaling.Blocking_of_polling (Dsm_queue)
module Blocking_registration = Signaling.Blocking_of_polling (Dsm_registration)

let blocking_algorithms : (module Signaling.BLOCKING) list =
  [ (module Blocking_cc_flag);
    (module Blocking_registration);
    (module Blocking_queue);
    (module Dsm_leader) ]

let config_for_blocking ~n =
  Signaling.config ~n
    ~waiters:(List.init (n - 1) (fun i -> i + 1))
    ~signalers:[ 0 ]

let run_or_blocks (module A : Signaling.POLLING) ~model ~cfg ?active_waiters () =
  (* A bounded fuel keeps "this algorithm blocks" detection cheap; the
     shipped algorithms' calls finish in far fewer steps. *)
  match
    Scenario.run_phased (module A) ~model ~cfg ?active_waiters ~fuel:100_000 ()
  with
  | o -> Ok o
  | exception Failure msg when msg = "Sim.run_to_idle: out of fuel" ->
    Error "blocks"
  | exception Failure _ -> Error "failed"
