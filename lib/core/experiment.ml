(* Compatibility façade over the experiment registry.

   The suite itself lives in lib/core/experiments/ (one module per
   experiment, registered in Experiment_registry); the algorithm catalog
   lives in Algorithms.  This module re-exports both under the historical
   names and renders Results tables down to Report.t, so existing callers
   keep compiling.  New code should prefer Experiment_registry + Runner +
   Results directly. *)

module Queue_multi_signaler = Algorithms.Queue_multi_signaler

let polling_algorithms = Algorithms.polling_algorithms
let find_algorithm = Algorithms.find_algorithm
let config_for = Algorithms.config_for
let locks = Algorithms.locks
let blocking_algorithms = Algorithms.blocking_algorithms

let report = Results.to_report
let reports = List.map Results.to_report

let e1 ?ns () = report (E1_cc_flag.table ?ns ())
let e2 ?ns () = report (E2_adversary.table ?ns ())
let e3 ?n ?partial () = reports (E3_landscape.tables ?n ?partial ())
let e4 ?n ?ks () = report (E4_queue_k.table ?n ?ks ())
let e5 ?n () = report (E5_separation.table ?n ())
let e6 ?ns () = report (E6_messages.table ?ns ())
let e7 ?ns ?entries () = report (E7_mutex.table ?ns ?entries ())
let e8 ?n ?ks () = reports (E8_cas.tables ?n ?ks ())
let e9 ?n () = report (E9_rounds.table ?n ())
let e10 ?ns ?entries () = report (E10_gme.table ?ns ?entries ())
let e11 ?n ?delta ?seeds () = report (E11_timing.table ?n ?delta ?seeds ())
let e12 ?n ?capacities () = report (E12_caches.table ?n ?capacities ())
let e13 ?n ?seed () = report (E13_blocking.table ?n ?seed ())

let contention_total = E8_cas.contention_total

let all () =
  reports
    (Runner.tables
       (Runner.run ~jobs:1 ~size:Experiment_def.Default
          (Experiment_registry.all ())))

let run_all ppf =
  List.iter (fun t -> Fmt.pf ppf "%a@." Report.pp t) (all ())
