(* The experiment suite.

   The paper has no evaluation section — its only figure is an architecture
   diagram — so every experiment here regenerates a *complexity claim* as a
   measured table.  EXPERIMENTS.md records the claim, the expected shape,
   and the measured outcome for each.  Everything is deterministic (phased
   schedules or seeded randomness), so the tables are reproducible. *)

open Smr

let default_ns = [ 2; 4; 8; 16; 32; 64; 128; 256 ]

module Queue_multi_signaler = Multi_signaler.Make (Dsm_queue)

let polling_algorithms : (module Signaling.POLLING) list =
  [ (module Cc_flag);
    (module Dsm_broadcast);
    (module Dsm_fixed_waiters);
    (module Dsm_fixed_terminating);
    (module Dsm_single_waiter);
    (module Dsm_registration);
    (module Dsm_queue);
    (module Cas_register);
    (module Cas_register.Transformed);
    (module Llsc_register);
    (module Llsc_register.Transformed);
    (module Queue_multi_signaler) ]

let find_algorithm name =
  List.find_opt
    (fun (module A : Signaling.POLLING) -> A.name = name)
    polling_algorithms

(* Standard configuration: process 0 signals, everyone else may wait.  The
   single-waiter algorithm gets exactly one waiter. *)
let config_for (module A : Signaling.POLLING) ~n =
  let waiters =
    match A.flexibility.Signaling.max_waiters with
    | Some 1 -> [ 1 ]
    | _ -> List.init (n - 1) (fun i -> i + 1)
  in
  Signaling.config ~n ~waiters ~signalers:[ 0 ]

let fmt_amortized = Report.float ~digits:2

(* --- E1: Section 5 upper bound — the CC flag is O(1) RMRs/process --- *)

let e1 ?(ns = default_ns) () =
  let rows =
    List.map
      (fun n ->
        let cfg = config_for (module Cc_flag) ~n in
        let o = Scenario.run_phased (module Cc_flag) ~model:`Cc_wt ~cfg () in
        [ Report.int n;
          Report.int o.Scenario.max_waiter_rmrs;
          Report.int o.Scenario.signaler_rmrs;
          Report.int o.Scenario.total_rmrs;
          fmt_amortized o.Scenario.amortized;
          Report.int (List.length o.Scenario.violations) ])
      ns
  in
  Report.make
    ~title:
      "E1 (Sec. 5): cc-flag under CC write-through — per-process RMRs must \
       stay O(1) as N grows"
    ~header:[ "N"; "waiter max"; "signaler"; "total"; "amortized"; "violations" ]
    rows

(* --- E2: Section 6 lower bound — adversary forces unbounded amortized
   RMRs on read/write algorithms, and fails against F&I --- *)

let e2 ?(ns = [ 8; 16; 32; 64; 128; 256 ]) () =
  let row (module A : Signaling.POLLING) n =
    let r = Adversary.run (module A) ~n () in
    let chase_rmrs, blocked =
      match r.Adversary.chase with
      | Some c -> (c.Adversary.signaler_rmrs, c.Adversary.chase_erase_failures)
      | None -> (0, 0)
    in
    [ A.name;
      Report.int n;
      Report.int r.Adversary.stable_waiters;
      Report.int chase_rmrs;
      Report.int blocked;
      Report.int r.Adversary.participants;
      fmt_amortized r.Adversary.amortized;
      Report.bool r.Adversary.part1_regular;
      Report.bool (not r.Adversary.spec_violated) ]
  in
  let rows =
    List.concat_map
      (fun n ->
        [ row (module Dsm_broadcast) n; row (module Dsm_queue) n ])
      ns
  in
  Report.make
    ~title:
      "E2 (Sec. 6, Thm. 6.2): the mechanized adversary vs a reads/writes \
       algorithm (amortized grows ~N) and vs the F&I queue (erasures \
       blocked, amortized flat)"
    ~header:
      [ "algorithm"; "N"; "stable"; "signaler RMRs"; "blocked"; "parts";
        "amortized"; "regular"; "spec ok" ]
    rows

(* --- E3: the Section 7 landscape --- *)

let run_or_blocks (module A : Signaling.POLLING) ~model ~cfg ?active_waiters () =
  (* A bounded fuel keeps "this algorithm blocks" detection cheap; the
     shipped algorithms' calls finish in far fewer steps. *)
  match
    Scenario.run_phased (module A) ~model ~cfg ?active_waiters ~fuel:100_000 ()
  with
  | o -> Ok o
  | exception Failure msg when msg = "Sim.run_to_idle: out of fuel" -> Error "blocks"
  | exception Failure _ -> Error "failed"

let e3 ?(n = 64) ?(partial = 8) () =
  let landscape ~active_count =
    List.filter_map
      (fun (module A : Signaling.POLLING) ->
        let cfg = config_for (module A) ~n in
        let active_waiters =
          match A.flexibility.Signaling.max_waiters with
          | Some 1 -> None
          | _ ->
            if active_count >= n - 1 then None
            else Some (List.init active_count (fun i -> i + 1))
        in
        match run_or_blocks (module A) ~model:`Dsm ~cfg ?active_waiters () with
        | Ok o ->
          Some
            [ A.name;
              Report.int o.Scenario.max_waiter_rmrs;
              Report.int o.Scenario.signaler_rmrs;
              Report.int o.Scenario.total_rmrs;
              Report.int o.Scenario.participants;
              fmt_amortized o.Scenario.amortized;
              (* Shared cells allocated: the paper's Sec. 9 notes the CC
                 solution needs O(1) space, the DSM ones Θ(N). *)
              Report.int (Var.layout_size (Sim.layout o.Scenario.sim));
              Report.int (List.length o.Scenario.violations) ]
        | Error why -> Some [ A.name; why; "-"; "-"; "-"; "-"; "-"; "-" ])
      polling_algorithms
  in
  let header =
    [ "algorithm"; "waiter max"; "signaler"; "total"; "parts"; "amortized";
      "space"; "violations" ]
  in
  [ Report.make
      ~title:
        (Printf.sprintf
           "E3a (Sec. 7): DSM landscape, full participation (N=%d, all \
            waiters poll)"
           n)
      ~header (landscape ~active_count:(n - 1));
    Report.make
      ~title:
        (Printf.sprintf
           "E3b (Sec. 7): DSM landscape, partial participation (N=%d, only \
            %d waiters poll) — O(W)-signaler algorithms lose amortized \
            O(1); dsm-fixed-term blocks awaiting the absent waiters"
           n partial)
      ~header (landscape ~active_count:partial) ]

(* --- E4: the queue solution is O(1) amortized for every k --- *)

let e4 ?(n = 128) ?(ks = [ 1; 2; 4; 8; 16; 32; 64; 127 ]) () =
  let rows =
    List.map
      (fun k ->
        let cfg = config_for (module Dsm_queue) ~n in
        let active_waiters = Some (List.init k (fun i -> i + 1)) in
        let o =
          Scenario.run_phased (module Dsm_queue) ~model:`Dsm ~cfg ?active_waiters ()
        in
        [ Report.int k;
          Report.int o.Scenario.signaler_rmrs;
          Report.int o.Scenario.total_rmrs;
          Report.int o.Scenario.participants;
          fmt_amortized o.Scenario.amortized ])
      ks
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E4 (Sec. 7): dsm-queue with k of %d waiters participating — \
          amortized RMRs stay O(1) for every k"
         (n - 1))
    ~header:[ "k"; "signaler"; "total"; "parts"; "amortized" ]
    rows

(* --- E5: the cross-model matrix — the separation itself --- *)

let e5 ?(n = 64) () =
  let models = [ `Dsm; `Cc_wt; `Cc_wb; `Cc_lfcu ] in
  let cell (module A : Signaling.POLLING) model =
    let cfg = config_for (module A) ~n in
    match run_or_blocks (module A) ~model ~cfg () with
    | Ok o ->
      Printf.sprintf "%d / %s"
        (max o.Scenario.max_waiter_rmrs o.Scenario.signaler_rmrs)
        (fmt_amortized o.Scenario.amortized)
    | Error why -> why
  in
  let rows =
    List.map
      (fun (module A : Signaling.POLLING) ->
        A.name :: List.map (cell (module A)) models)
      polling_algorithms
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E5 (Secs. 1/5/7): worst per-process RMRs / amortized RMRs, per \
          model (N=%d).  cc-flag: O(1) in every CC column, Θ(N) under DSM \
          — the separation"
         n)
    ~header:("algorithm" :: List.map Scenario.model_tag_name models)
    rows

(* --- E6: Section 8 — RMRs vs. coherence messages ("exchange rate") --- *)

let e6 ?(ns = [ 8; 32; 128 ]) () =
  let interconnects =
    [ Cc.Bus; Cc.Directory_precise; Cc.Directory_limited 4 ]
  in
  let rows =
    List.concat_map
      (fun n ->
        let cfg = config_for (module Cc_flag) ~n in
        List.map
          (fun ic ->
            let model = `Cc (Cc.Write_through, ic) in
            let o = Scenario.run_phased (module Cc_flag) ~model ~cfg () in
            [ Report.int n;
              Cc.interconnect_name ic;
              Report.int o.Scenario.total_rmrs;
              Report.int o.Scenario.total_messages;
              Report.float ~digits:2
                (if o.Scenario.total_rmrs = 0 then 0.
                 else
                   float_of_int o.Scenario.total_messages
                   /. float_of_int o.Scenario.total_rmrs) ])
          interconnects)
      ns
  in
  Report.make
    ~title:
      "E6 (Sec. 8): cc-flag RMRs vs. coherence messages under different \
       interconnects — a bus broadcasts one message per action; a limited \
       directory sends superfluous invalidations, so messages/RMR grows"
    ~header:[ "N"; "interconnect"; "RMRs"; "messages"; "msgs/RMR" ]
    rows

(* --- E7: the Section 3 mutual-exclusion landscape --- *)

let locks : (module Sync.Mutex_intf.LOCK) list =
  [ (module Sync.Tas_lock);
    (module Sync.Ttas_lock);
    (module Sync.Ticket_lock);
    (module Sync.Anderson_lock);
    (module Sync.Clh_lock);
    (module Sync.Mcs_lock);
    (module Sync.Yang_anderson);
    (module Sync.Bakery_lock) ]

let e7 ?(ns = [ 2; 4; 8; 16; 32 ]) ?(entries = 4) () =
  let model_of tag layout =
    match tag with
    | `Dsm -> Cost_model.dsm layout
    | `Cc -> Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~n:0 ()
  in
  let rows =
    List.concat_map
      (fun (module L : Sync.Mutex_intf.LOCK) ->
        List.map
          (fun n ->
            (* A seeded random schedule: a deterministic round-robin would
               hand Anderson's lock slot i to process i every time, making
               its array spins accidentally local in DSM. *)
            let run tag =
              Sync.Lock_runner.run (module L) ~model_of:(model_of tag) ~n
                ~entries ~policy:(Schedule.Random_seed 42) ()
            in
            let cc = run `Cc and dsm = run `Dsm in
            [ L.name;
              Report.int n;
              Report.float ~digits:1 cc.Sync.Lock_runner.avg_rmrs_per_passage;
              Report.float ~digits:1 dsm.Sync.Lock_runner.avg_rmrs_per_passage;
              Report.bool
                (cc.Sync.Lock_runner.mutual_exclusion_held
                && dsm.Sync.Lock_runner.mutual_exclusion_held) ])
          ns)
      locks
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E7 (Sec. 3): mutual exclusion under contention (%d \
          entries/process, seeded random steps) — TAS/TTAS/ticket/bakery \
          spin or scan remotely and grow with N, Yang-Anderson ~log N, \
          MCS O(1) in both models, Anderson/CLH local-spin in CC only"
         entries)
    ~header:[ "lock"; "N"; "CC RMR/passage"; "DSM RMR/passage"; "mutex held" ]
    rows

(* --- E8: Corollary 6.14 — CAS does not help --- *)

(* Drive k waiters so that their registration CASes collide maximally:
   advance everyone to the point of applying the contended operation, then
   release them back-to-back; losers loop and collide again.  With hardware
   F&I there are no losers, so the same treatment costs O(k). *)
let contention_total (module A : Signaling.POLLING) ~n ~k =
  let ctx = Var.Ctx.create () in
  let cfg = config_for (module A) ~n in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n in
  let waiters = List.init k (fun i -> i + 1) in
  let sim =
    List.fold_left
      (fun sim w ->
        Sim.begin_call sim w ~label:Signaling.poll_label
          (inst.Signaling.i_poll w))
      sim waiters
  in
  let is_rmw inv =
    match Op.kind inv with
    | Op.K_cas | Op.K_faa | Op.K_fas | Op.K_tas | Op.K_sc -> true
    | Op.K_read | Op.K_write | Op.K_ll -> false
  in
  (* Advance w until it is about to apply a read-modify-write, or its poll
     completes. *)
  let rec to_rmw sim w fuel =
    if fuel = 0 then failwith "Experiment.contention: out of fuel"
    else
      match Sim.proc_state sim w with
      | Sim.Idle | Sim.Terminated -> sim
      | Sim.Running _ -> (
        match Sim.peek sim w with
        | Some inv when is_rmw inv -> sim
        | Some _ -> to_rmw (Sim.advance sim w) w (fuel - 1)
        | None -> sim)
  in
  let rec rounds sim guard =
    if guard = 0 then failwith "Experiment.contention: too many rounds"
    else
      let sim = List.fold_left (fun sim w -> to_rmw sim w 10_000) sim waiters in
      let poised =
        List.filter
          (fun w ->
            match Sim.peek sim w with Some inv -> is_rmw inv | None -> false)
          waiters
      in
      if poised = [] then sim
      else
        (* Release the colliding operations back-to-back. *)
        let sim = List.fold_left (fun sim w -> Sim.advance sim w) sim poised in
        rounds sim (guard - 1)
  in
  let sim = rounds sim (4 * k + 8) in
  (* Let every waiter finish its first poll. *)
  let sim =
    List.fold_left (fun sim w -> Sim.run_to_idle sim w) sim waiters
  in
  Sim.total_rmrs sim

let e8 ?(n = 128) ?(ks = [ 2; 4; 8; 16; 32; 64 ]) () =
  let contention_rows =
    List.map
      (fun k ->
        let cas = contention_total (module Cas_register) ~n ~k in
        let llsc = contention_total (module Llsc_register) ~n ~k in
        let fai = contention_total (module Dsm_queue) ~n ~k in
        [ Report.int k;
          Report.int cas;
          fmt_amortized (float_of_int cas /. float_of_int k);
          Report.int llsc;
          fmt_amortized (float_of_int llsc /. float_of_int k);
          Report.int fai;
          fmt_amortized (float_of_int fai /. float_of_int k) ])
      ks
  in
  let contention =
    Report.make
      ~title:
        "E8a (Cor. 6.14): adversarial contention — k colliding \
         registrations cost Θ(k²) RMRs with CAS- or LL/SC-emulated F&I, \
         Θ(k) with hardware F&I"
      ~header:
        [ "k"; "CAS total"; "CAS/waiter"; "LL/SC total"; "LL/SC/waiter";
          "F&I total"; "F&I/waiter" ]
      contention_rows
  in
  (* The reduction itself: both transformed algorithms are reads/writes
     only and still correct. *)
  let comparison_steps sim =
    List.length
      (List.filter
         (fun (s : History.step) ->
           match Op.kind s.History.inv with
           | Op.K_cas | Op.K_ll | Op.K_sc -> true
           | Op.K_read | Op.K_write | Op.K_faa | Op.K_fas | Op.K_tas -> false)
         (Sim.steps sim))
  in
  let reduction_row (module A : Signaling.POLLING) =
    let cfg = config_for (module A) ~n:16 in
    let o = Scenario.run_phased (module A) ~model:`Dsm ~cfg () in
    [ A.name;
      Report.int (comparison_steps o.Scenario.sim);
      Report.int (List.length o.Scenario.violations);
      Report.int o.Scenario.total_rmrs;
      fmt_amortized o.Scenario.amortized ]
  in
  let reduction =
    Report.make
      ~title:
        "E8b (Cor. 6.14): the reductions — zero comparison-primitive steps \
         remain, specification still satisfied"
      ~header:
        [ "algorithm"; "CAS/LL/SC steps"; "violations"; "total RMRs"; "amortized" ]
      [ reduction_row (module Cas_register.Transformed);
        reduction_row (module Llsc_register.Transformed) ]
  in
  [ contention; reduction ]

(* --- E9: the construction's internals (Def. 6.9 invariant) --- *)

let e9 ?(n = 64) () =
  let r = Adversary.run (module Cas_register) ~n () in
  let rows =
    List.map
      (fun (s : Adversary.round_stat) ->
        [ Report.int s.Adversary.round;
          Report.int s.Adversary.active_before;
          Report.int s.Adversary.active_after;
          Report.int s.Adversary.poised;
          Report.int (s.Adversary.erased_conflicts + s.Adversary.erased_writes);
          (match s.Adversary.rolled_forward with
          | Some p -> Printf.sprintf "p%d" p
          | None -> "-");
          Report.int s.Adversary.max_active_rmrs;
          Report.bool (s.Adversary.max_active_rmrs <= s.Adversary.round + 1);
          Report.bool s.Adversary.regular ])
      r.Adversary.rounds
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E9 (Sec. 6, Def. 6.9): adversary rounds vs cas-register (N=%d) — \
          per-round active counts and the S(i) RMR bound (each active \
          process has at most i+1 RMRs after round i)"
         n)
    ~header:
      [ "round"; "act before"; "act after"; "poised"; "erased"; "rolled";
        "max act RMRs"; "S(i) holds"; "regular" ]
    rows

(* --- E10: group mutual exclusion (related-work context: the
   Hadzilacos-Danek separation the paper discusses) --- *)

let e10 ?(ns = [ 4; 8; 16; 32 ]) ?(entries = 3) () =
  let model_of tag layout =
    match tag with
    | `Dsm -> Cost_model.dsm layout
    | `Cc -> Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~n:0 ()
  in
  let algorithms : (module Sync.Gme_intf.GME) list =
    [ (module Sync.Gme_mutex);
      (module Sync.Gme_session_lock);
      (module Sync.Gme_lightswitch.As_gme) ]
  in
  let rows =
    List.concat_map
      (fun (module G : Sync.Gme_intf.GME) ->
        List.map
          (fun n ->
            let run tag =
              Sync.Gme_runner.run (module G) ~model_of:(model_of tag) ~n
                ~entries ~sessions:2 ~policy:(Schedule.Random_seed 42) ()
            in
            let cc = run `Cc and dsm = run `Dsm in
            [ G.name;
              Report.int n;
              Report.float ~digits:1 cc.Sync.Gme_runner.avg_rmrs_per_passage;
              Report.float ~digits:1 dsm.Sync.Gme_runner.avg_rmrs_per_passage;
              Report.int dsm.Sync.Gme_runner.max_concurrency;
              Report.bool
                (cc.Sync.Gme_runner.safe && dsm.Sync.Gme_runner.safe) ])
          ns)
      algorithms
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E10 (Sec. 1/3 context): two-session group mutual exclusion, %d \
          entries/process — the session lock admits same-session \
          concurrency where the mutex reduction cannot; the Danek-\
          Hadzilacos tight bounds (CC O(log N) vs DSM Ω(N)) are out of \
          scope, the landscape is context"
         entries)
    ~header:
      [ "algorithm"; "N"; "CC RMR/passage"; "DSM RMR/passage"; "max conc";
        "safe" ]
    rows

(* --- E11: the semi-synchronous model (Sec. 3) — timing-based mutual
   exclusion is safe exactly when the timing assumption holds --- *)

(* Count, over many seeds, how often Fischer's lock loses an increment. *)
let fischer_violations ~n ~delay ~policy_of ~seeds =
  List.fold_left
    (fun bad seed ->
      let o =
        Sync.Lock_runner.run
          (Sync.Fischer_lock.with_delay delay)
          ~model_of:Cost_model.dsm ~n ~entries:2 ~policy:(policy_of seed) ()
      in
      if o.Sync.Lock_runner.mutual_exclusion_held then bad else bad + 1)
    0 seeds

(* The canonical Fischer violation, forced deterministically: p0 and p1
   both read X = NIL; then p0 runs alone through write / delay / re-check
   and enters; only then does p1 perform its write (now the last), delay,
   re-check X = p1, and enter too.  Returns whether both completed acquire
   with nobody releasing, and the step gap p1 needed between its read and
   its write — the schedule is legal in the semi-synchronous model iff
   that gap is at most delta. *)
let fischer_forced_overlap ~delay =
  let ctx = Var.Ctx.create () in
  let lock = Sync.Fischer_lock.create_timed ctx ~n:2 ~delay in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let acquire p =
    Program.map (fun () -> 0) (Sync.Fischer_lock.acquire lock p)
  in
  let sim = Sim.begin_call sim 0 ~label:"acquire" (acquire 0) in
  let sim = Sim.begin_call sim 1 ~label:"acquire" (acquire 1) in
  let sim = Sim.advance sim 0 (* p0 reads X = NIL *) in
  let sim = Sim.advance sim 1 (* p1 reads X = NIL *) in
  let gap_start = Sim.clock sim in
  let sim = Sim.run_to_idle sim 0 (* p0: write, delay, re-check, enter *) in
  let gap = Sim.clock sim - gap_start + 1 (* p1's write comes next *) in
  let sim = Sim.run_to_idle sim 1 (* p1: write, delay, re-check *) in
  let both_in = Sim.is_idle sim 0 && Sim.is_idle sim 1 in
  (both_in, gap)

let e11 ?(n = 4) ?(delta = 6) ?(seeds = List.init 20 (fun i -> i + 1)) () =
  let semi seed = Schedule.Semi_sync { delta; seed } in
  let async seed = Schedule.Random_seed seed in
  let forced_row delay =
    let both_in, gap = fischer_forced_overlap ~delay in
    [ "forced overlap (async)";
      Report.int delay;
      (if both_in then "both entered CS" else "excluded");
      Printf.sprintf "gap %d %s delta=%d %s" gap
        (if gap <= delta then "<=" else ">")
        delta
        (if gap <= delta then "(legal even semi-sync!)" else "(async only)") ]
  in
  let sampled_row label policy_of delay =
    let bad = fischer_violations ~n ~delay ~policy_of ~seeds in
    [ label;
      Report.int delay;
      Printf.sprintf "%d/%d seeds violated" bad (List.length seeds);
      (if bad = 0 then "safe" else "UNSAFE") ]
  in
  let safe_delay = (2 * delta) + n in
  Report.make
    ~title:
      (Printf.sprintf
         "E11 (Sec. 3 context): Fischer's timing-based lock (N=%d).  The \
          forced two-process overlap needs a read-to-write gap of delay+2 \
          ticks: asynchrony always allows it; the semi-synchronous model \
          (gap <= %d) allows it only when the delay is too small — timing \
          is exactly what the algorithm's safety buys"
         n delta)
    ~header:[ "scenario"; "delay"; "outcome"; "schedule legality / verdict" ]
    [ forced_row 1;
      forced_row safe_delay;
      sampled_row (Printf.sprintf "semi-sync(delta=%d), sampled" delta) semi safe_delay;
      sampled_row "async (random), sampled" async 1 ]

(* --- E12: finite caches (Sec. 8) — ideal-cache RMR bounds are
   underestimates once the working set outgrows the cache --- *)

let e12 ?(n = 16) ?(capacities = [ 1; 2; 4; 8 ]) () =
  (* A waiter whose poll touches several variables (the queue algorithm's
     registration path) under shrinking caches: with an ideal cache the
     post-registration polls are free; with capacity 1 the working set
     thrashes. *)
  let run capacity =
    let cfg = config_for (module Dsm_queue) ~n in
    (* Build the model directly: Scenario's tags don't carry capacity. *)
    let ctx = Var.Ctx.create () in
    let inst = Signaling.instantiate (module Dsm_queue) ctx cfg in
    let layout = Var.Ctx.freeze ctx in
    let model =
      Cc.model ~protocol:Cc.Write_through ~interconnect:Cc.Bus ?capacity ~n ()
    in
    let sim = Sim.create ~model ~layout ~n in
    (* Each waiter polls four times before the signal: under an ideal
       cache, polls 2-4 are all cache hits. *)
    let sim =
      List.fold_left
        (fun sim round ->
          ignore round;
          List.fold_left
            (fun sim w ->
              fst
                (Sim.run_call sim w ~label:Signaling.poll_label
                   (inst.Signaling.i_poll w)))
            sim cfg.Signaling.waiters)
        sim [ 0; 1; 2; 3 ]
    in
    let sim, _ =
      Sim.run_call sim 0 ~label:Signaling.signal_label (inst.Signaling.i_signal 0)
    in
    Sim.total_rmrs sim
  in
  let ideal = run None in
  let rows =
    List.map
      (fun c ->
        let rmrs = run (Some c) in
        [ Report.int c;
          Report.int rmrs;
          Report.float ~digits:2 (float_of_int rmrs /. float_of_int ideal) ])
      capacities
    @ [ [ "ideal"; Report.int ideal; "1.00" ] ]
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E12 (Sec. 8): dsm-queue polls under CC with finite caches (N=%d) \
          — LRU eviction makes repeated polls miss again, so the \
          ideal-cache RMR counts underestimate real machines"
         n)
    ~header:[ "capacity"; "total RMRs"; "vs ideal" ]
    rows

(* --- E13: blocking semantics (Sec. 7's Wait() solutions) --- *)

module Blocking_cc_flag = Signaling.Blocking_of_polling (Cc_flag)
module Blocking_queue = Signaling.Blocking_of_polling (Dsm_queue)
module Blocking_registration = Signaling.Blocking_of_polling (Dsm_registration)

let blocking_algorithms : (module Signaling.BLOCKING) list =
  [ (module Blocking_cc_flag);
    (module Blocking_registration);
    (module Blocking_queue);
    (module Dsm_leader) ]

let config_for_blocking ~n =
  Signaling.config ~n ~waiters:(List.init (n - 1) (fun i -> i + 1)) ~signalers:[ 0 ]

let e13 ?(n = 24) ?(seed = 11) () =
  let rows =
    List.concat_map
      (fun (module B : Signaling.BLOCKING) ->
        List.map
          (fun model ->
            let cfg = config_for_blocking ~n in
            let o = Scenario.run_blocking (module B) ~model ~cfg ~seed () in
            [ B.name;
              Scenario.model_tag_name model;
              Report.int o.Scenario.max_waiter_rmrs;
              Report.int o.Scenario.signaler_rmrs;
              Report.int o.Scenario.total_rmrs;
              Report.int o.Scenario.unfinished_waiters;
              Report.int (List.length o.Scenario.violations) ])
          [ `Dsm; `Cc_wt ])
      blocking_algorithms
  in
  Report.make
    ~title:
      (Printf.sprintf
         "E13 (Sec. 7, blocking semantics): Wait() solutions under a \
          randomized schedule (N=%d).  Spin-wrapped cc-flag busy-waits \
          remotely in DSM (waiter RMRs grow with the wait — unbounded in \
          general); dsm-leader concentrates the cost in one elected \
          waiter and keeps followers local; every Wait() returns after \
          the Signal()"
         n)
    ~header:
      [ "algorithm"; "model"; "waiter max"; "signaler"; "total"; "unfinished";
        "violations" ]
    rows

(* --- the full suite --- *)

let all () =
  [ e1 () ]
  @ [ e2 ~ns:[ 8; 16; 32; 64; 128 ] () ]
  @ e3 ()
  @ [ e4 (); e5 (); e6 (); e7 () ]
  @ e8 ()
  @ [ e9 (); e10 (); e11 (); e12 (); e13 () ]

let run_all ppf =
  List.iter (fun t -> Fmt.pf ppf "%a@." Report.pp t) (all ())
