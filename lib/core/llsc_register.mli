(** An LL/SC-based registration algorithm (reads, writes, LL/SC): the other
    half of the Corollary 6.14 primitive class.  Structurally identical to
    {!Cas_register} with the head counter advanced by an LL/SC retry loop;
    equally subject to the Θ(k²) contention schedule of E8a. *)

include Signaling.POLLING

val llsc_addrs : t -> Smr.Op.addr list
(** The addresses accessed with LL/SC (the head counter). *)

(** The algorithm after the Corollary 6.14 reduction (LL/SC flavor):
    histories contain no LL or SC steps. *)
module Transformed : Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
