(* Section 7, "many waiters not fixed in advance, many signalers": reduce to
   the one-signaler case by electing a leader among the signalers.

   The functor wraps any polling algorithm.  Signal() joins an election;
   the winner runs the inner Signal() and then raises a completion flag,
   while losers await that flag before returning.  The losers' wait is what
   keeps the specification honest: a Signal() call may only complete once
   the signal is actually observable, otherwise a later Poll() returning
   false would violate Specification 4.1 ("no call to Signal() completed
   before this call to Poll() began"). *)

open Smr
open Program.Syntax

module Make (Inner : Signaling.POLLING) = struct
  let name = Inner.name ^ "+multi-sig"

  let description =
    "signalers elect a leader that runs " ^ Inner.name
    ^ "'s Signal(); losers wait for its completion (Sec. 7)"

  let primitives =
    List.sort_uniq compare (Op.Fetch_and_phi :: Inner.primitives)

  let flexibility = { Inner.flexibility with max_signalers = None }

  type t = {
    inner : Inner.t;
    election : Sync.Leader_election.t;
    completed : bool Var.t;
  }

  let create ctx (cfg : Signaling.config) =
    { inner = Inner.create ctx cfg;
      election = Sync.Leader_election.create ctx ~n:cfg.Signaling.n;
      completed = Var.Ctx.bool ctx ~name:"sig_done" ~home:Var.Shared false }

  let poll t p = Inner.poll t.inner p

  let signal t p =
    let* leader = Sync.Leader_election.elect t.election p in
    if leader = p then
      let* () = Inner.signal t.inner p in
      Program.write t.completed true
    else
      (* Busy-wait on the shared completion flag: remote in DSM, cached in
         CC.  Terminating under fair schedules, as blocking solutions are
         allowed to be. *)
      Program.await t.completed Fun.id
end

(* Lint claims for [Make]: Poll() is the inner algorithm's; Signal() adds
   the election TAS and, for losers, a busy-wait on the shared completion
   flag — remote spinning by design (Specification 4.1 forbids returning
   before the signal is observable). *)
let claims ~inner ~n =
  Analysis.Claims.
    { single_writer = inner.Analysis.Claims.single_writer;
      const_writes = inner.Analysis.Claims.const_writes;
      calls =
        [ ("signal", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = n + 1 } });
          ("poll", Analysis.Claims.call inner "poll") ] }
