(** The experiment runner: fan registered experiments — and independent
    parameter points within one experiment — out across OCaml 5 domains.

    Safe because the simulator is purely functional and every run is
    deterministic; output ordering follows the input spec list (and each
    experiment's own point order), never completion order, so any [jobs]
    level produces byte-identical results. *)

type outcome = {
  spec : Experiment_def.spec;
  tables : Results.table list;
  shape : (unit, string) result option;
      (** [Some] iff the expected-shape predicate was evaluated (it is
          only meaningful on the [Default] parameter sets). *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the cap the CLI applies when no
    explicit [--jobs] is given. *)

val run :
  ?jobs:int ->
  ?tracer:Obs.Trace.t ->
  ?size:Experiment_def.size ->
  Experiment_def.spec list ->
  outcome list
(** [jobs] defaults to {!default_jobs}; [size] to [Default].  With at
    least two specs and [jobs > 1] the specs themselves are fanned out;
    with a single spec its internal parameter points are.  Expected-shape
    predicates are evaluated only when [size = Default].

    With [tracer], one {!Obs.Event.Runner_span} per experiment is emitted
    after the parallel phase, in spec order, with synthetic ticks
    (cumulative result rows) — so the trace is byte-identical for every
    [jobs]. *)

val tables : outcome list -> Results.table list

val failed_shapes : outcome list -> (string * string) list
(** [(experiment id, violated expectation)] for every evaluated predicate
    that failed. *)
