(* The read/write broadcast algorithm: [Dsm_fixed_waiters] with every
   process treated as a potential waiter.

   Because Signal() writes all N per-process flags unconditionally, the
   algorithm is correct for waiters whose IDs are NOT fixed in advance —
   the hard variant of Section 4 — while using only reads and writes.  It is
   therefore squarely inside the reach of Theorem 6.2, and indeed the
   Section 6 adversary forces it to N RMRs with O(1) participants: waiters
   are stable from their very first step (their poll is a local read), the
   goose chase erases each one just before the signaler's write reaches it,
   and the amortized cost N / k grows without bound.  Experiment E2. *)

open Smr

let name = "dsm-broadcast"

let description =
  "signaler blindly writes every process's local flag (reads/writes only); \
   amortized RMRs forced to Θ(N/k) by the Sec. 6 adversary"

let primitives = [ Op.Reads_writes ]

let flexibility = Signaling.any_flexibility

type t = Dsm_fixed_waiters.t

let create ctx (cfg : Signaling.config) =
  Dsm_fixed_waiters.create_targets ctx ~n:cfg.Signaling.n
    ~targets:(List.init cfg.Signaling.n Fun.id)

let signal = Dsm_fixed_waiters.signal

let poll = Dsm_fixed_waiters.poll

(* Lint claims: wait-free; Signal() pays one write per process (its own
   flag is local), Poll() reads only the caller's local flag.  The Θ(N/k)
   amortized cost of E2 is this n-1 worst case spread over k waiters. *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "V" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = No_spin; dsm_rmrs = Rmr (n - 1); cc_amortized = Amortized { steady = Rmr n; refills = 0 } });
          ("poll", { spin = No_spin; dsm_rmrs = Rmr 0; cc_amortized = Amortized { steady = Rmr 0; refills = 1 } }) ] }
