(* A CAS-based registration algorithm, and its Corollary 6.14 read/write
   transformation.

   Waiters register by advancing a head counter with a CAS retry loop and
   publishing their ID into the claimed slot — Fetch-And-Increment emulated
   from CAS.  The signaler sets the global flag and sweeps the published
   slots.  Per-operation the algorithm looks as cheap as [Dsm_queue], but it
   sits inside the lower bound's primitive class (reads, writes, CAS), and
   Corollary 6.14 says O(1) amortized RMRs must be unattainable.  The
   adversary exhibits this differently from the read/write case: a CAS
   retry storm — scheduling k registrants to read the same head value
   before any of them swaps — forces Θ(k²) total RMRs for k registrations
   (experiment E8's contention schedule), whereas hardware F&I admits no
   such schedule.

   [Transformed] applies the {!Sync.Local_cas} rewrite to every CAS on the
   head counter, yielding a reads/writes-only algorithm (the Corollary 6.14
   reduction); tests assert that its histories contain no CAS steps. *)

open Smr
open Program.Syntax

let name = "cas-register"

let description =
  "registration via CAS-emulated F&I (reads/writes/CAS); subject to \
   Cor. 6.14 — contention schedules force ω(1) amortized RMRs"

let primitives = [ Op.Reads_writes; Op.Comparison ]

let flexibility = Signaling.any_flexibility

type t = {
  head : int Var.t;
  slots : Op.pid option Var.t array;
  g : bool Var.t;
  v : bool Var.t array;
  registered : bool Var.t array;
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  { head = Var.Ctx.int ctx ~name:"head" ~home:Var.Shared 0;
    slots =
      Array.init n (fun i ->
          Var.Ctx.pid_opt ctx
            ~name:(Printf.sprintf "slot[%d]" i)
            ~home:Var.Shared None);
    g = Var.Ctx.bool ctx ~name:"G" ~home:Var.Shared false;
    v =
      Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    registered =
      Var.Ctx.bool_array ctx ~name:"registered"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let rec claim_slot t =
  let* h = Program.read t.head in
  let* won = Program.cas t.head ~expected:h ~update:(h + 1) in
  if won then Program.return h else claim_slot t

let poll t p =
  let* already = Program.read t.registered.(p) in
  if already then Program.read t.v.(p)
  else
    let* () = Program.write t.registered.(p) true in
    let* slot = claim_slot t in
    let* () = Program.write t.slots.(slot) (Some p) in
    Program.read t.g

let signal t _p =
  let* () = Program.write t.g true in
  let* upto = Program.read t.head in
  let rec sweep i =
    if i >= upto then Program.return ()
    else
      let* () = Program.await t.slots.(i) Option.is_some in
      let* elem = Program.read t.slots.(i) in
      match elem with
      | Some q ->
        let* () = Program.write t.v.(q) true in
        sweep (i + 1)
      | None -> assert false
  in
  sweep 0

let cas_addrs t = [ Var.addr t.head ]

(* The Corollary 6.14 reduction: the same algorithm with every CAS replaced
   by the lock-mediated read/write implementation. *)
module Transformed = struct
  let name = "cas-register/rw"

  let description =
    "cas-register after the Cor. 6.14 transformation: CAS on the head \
     counter replaced by Local_cas (reads/writes only)"

  let primitives = [ Op.Reads_writes ]

  let flexibility = flexibility

  type nonrec t = { inner : t; lcas : Sync.Local_cas.t }

  let create ctx (cfg : Signaling.config) =
    let inner = create ctx cfg in
    let lcas =
      Sync.Local_cas.create ctx ~n:cfg.Signaling.n ~addrs:(cas_addrs inner)
    in
    { inner; lcas }

  let poll t p = Sync.Local_cas.transform t.lcas p (poll t.inner p)

  let signal t p = Sync.Local_cas.transform t.lcas p (signal t.inner p)
end

(* Lint claims: the CAS registration loop retries on the shared head
   counter — remote spinning with no per-call bound (the E8a schedule
   realizes Θ(k²) total), exactly the weakness Cor. 6.14 predicts for the
   comparison class.  Claims hold for the transformed (reads/writes only)
   variant too: the lock-mediated emulation only adds remote waiting. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "G"; "V"; "registered" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 2; refills = 2 } });
          ("poll", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 2 } }) ] }
