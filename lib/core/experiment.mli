(** Compatibility façade over the experiment registry.

    The experiment suite lives under [lib/core/experiments/]: one module
    per experiment, each exposing an {!Experiment_def.spec}, enumerated by
    {!Experiment_registry.all} and executed by {!Runner}.  This module
    re-exports the historical entry points — [e1]..[e13] as {!Report.t}
    text tables and the algorithm catalog of {!Algorithms} — so existing
    callers keep working; prefer the registry for new code. *)

module Queue_multi_signaler : Signaling.POLLING

val polling_algorithms : (module Signaling.POLLING) list
val find_algorithm : string -> (module Signaling.POLLING) option
val config_for : (module Signaling.POLLING) -> n:int -> Signaling.config
val locks : (module Sync.Mutex_intf.LOCK) list
val blocking_algorithms : (module Signaling.BLOCKING) list

val e1 : ?ns:int list -> unit -> Report.t
val e2 : ?ns:int list -> unit -> Report.t
val e3 : ?n:int -> ?partial:int -> unit -> Report.t list
val e4 : ?n:int -> ?ks:int list -> unit -> Report.t
val e5 : ?n:int -> unit -> Report.t
val e6 : ?ns:int list -> unit -> Report.t
val e7 : ?ns:int list -> ?entries:int -> unit -> Report.t
val e8 : ?n:int -> ?ks:int list -> unit -> Report.t list
val e9 : ?n:int -> unit -> Report.t
val e10 : ?ns:int list -> ?entries:int -> unit -> Report.t
val e11 : ?n:int -> ?delta:int -> ?seeds:int list -> unit -> Report.t
val e12 : ?n:int -> ?capacities:int list -> unit -> Report.t
val e13 : ?n:int -> ?seed:int -> unit -> Report.t

val contention_total : (module Signaling.POLLING) -> n:int -> k:int -> int
(** Total RMRs when [k] waiters register under the maximal-collision
    schedule of E8a. *)

val all : unit -> Report.t list
(** Every registered experiment's tables, in registry order ([Default]
    parameter sets, sequential). *)

val run_all : Format.formatter -> unit
