(** The experiment suite: one measured table per complexity claim.

    The paper has no evaluation section (its only figure is the architecture
    diagram the cost models implement), so each experiment regenerates a
    claim from Sections 3, 5, 6, 7 or 8 as a reproducible table;
    EXPERIMENTS.md records claim vs. measurement.  All runs are
    deterministic. *)

module Queue_multi_signaler : Signaling.POLLING
(** [Multi_signaler.Make (Dsm_queue)]: the Section 7 many-signalers
    construction over the queue solution, registered so the CLI and the
    landscape experiments cover it. *)

val polling_algorithms : (module Signaling.POLLING) list
(** Every polling algorithm shipped, in presentation order. *)

val find_algorithm : string -> (module Signaling.POLLING) option

val config_for : (module Signaling.POLLING) -> n:int -> Signaling.config
(** The standard configuration: process 0 signals, everyone else may wait
    (one waiter for the single-waiter algorithm). *)

val locks : (module Sync.Mutex_intf.LOCK) list

val e1 : ?ns:int list -> unit -> Report.t
(** Section 5: the CC flag algorithm is O(1) RMRs per process. *)

val e2 : ?ns:int list -> unit -> Report.t
(** Theorem 6.2: the adversary forces amortized Θ(N) on a reads/writes
    algorithm and is defeated (erasures blocked) by the F&I queue. *)

val e3 : ?n:int -> ?partial:int -> unit -> Report.t list
(** Section 7 landscape under DSM, full and partial participation. *)

val e4 : ?n:int -> ?ks:int list -> unit -> Report.t
(** Section 7: the queue solution is O(1) amortized for every k. *)

val e5 : ?n:int -> unit -> Report.t
(** The cross-model matrix — the separation itself. *)

val e6 : ?ns:int list -> unit -> Report.t
(** Section 8: RMRs vs. coherence messages under bus/directory interconnects. *)

val e7 : ?ns:int list -> ?entries:int -> unit -> Report.t
(** Section 3: the mutual-exclusion RMR landscape. *)

val e8 : ?n:int -> ?ks:int list -> unit -> Report.t list
(** Corollary 6.14: CAS contention blowup, and the read/write reduction. *)

val e9 : ?n:int -> unit -> Report.t
(** Section 6 internals: per-round statistics vs. the Def. 6.9 invariant. *)

val e10 : ?ns:int list -> ?entries:int -> unit -> Report.t
(** Related-work context: two-session group mutual exclusion — the problem
    of the Hadzilacos-Danek separation the paper discusses. *)

val e11 : ?n:int -> ?delta:int -> ?seeds:int list -> unit -> Report.t
(** Related-work context: Fischer's timing-based lock is safe under the
    semi-synchronous model (Section 3) and violable without it. *)

val e12 : ?n:int -> ?capacities:int list -> unit -> Report.t
(** Section 8: finite LRU caches make the ideal-cache RMR counts
    underestimates. *)

val blocking_algorithms : (module Signaling.BLOCKING) list

val e13 : ?n:int -> ?seed:int -> unit -> Report.t
(** Section 7, blocking semantics: the Wait() solutions under randomized
    schedules, per model. *)

val contention_total : (module Signaling.POLLING) -> n:int -> k:int -> int
(** Total RMRs when [k] waiters register under the maximal-collision
    schedule of E8a. *)

val all : unit -> Report.t list

val run_all : Format.formatter -> unit
