(** Section 7, fixed waiters, terminating variant: the signaler awaits each
    fixed waiter's participation before flagging it, achieving O(1)
    amortized RMRs; blocks if a fixed waiter never participates. *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
