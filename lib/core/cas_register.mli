(** A CAS-based registration algorithm (reads, writes, CAS): registration
    through a CAS-emulated Fetch-And-Increment.  Inside the primitive class
    of Corollary 6.14, so O(1) amortized RMRs must be unattainable — the
    E8a contention schedule forces Θ(k²) RMRs for k registrations. *)

include Signaling.POLLING

val cas_addrs : t -> Smr.Op.addr list
(** The addresses accessed with CAS (the head counter); what the
    Corollary 6.14 transformation must protect. *)

(** The algorithm after the Corollary 6.14 reduction: every CAS on the head
    counter replaced by the lock-mediated reads/writes implementation of
    {!Sync.Local_cas}.  Histories contain no CAS steps. *)
module Transformed : Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint], valid for both the direct and
    the {!Transformed} variant (see docs/EXTENDING.md). *)
