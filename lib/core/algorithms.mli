(** The algorithm catalog: every shipped signaling algorithm, lock and GME
    algorithm, with the standard configurations the experiments and the CLI
    share.  (Moved out of {!Experiment}, which is now a thin façade over
    the experiment registry.) *)

module Queue_multi_signaler : Signaling.POLLING
(** [Multi_signaler.Make (Dsm_queue)]: the Section 7 many-signalers
    construction over the queue solution, registered so the CLI and the
    landscape experiments cover it. *)

val polling_algorithms : (module Signaling.POLLING) list
(** Every polling algorithm shipped, in presentation order. *)

val find_algorithm : string -> (module Signaling.POLLING) option

val config_for : (module Signaling.POLLING) -> n:int -> Signaling.config
(** The standard configuration: process 0 signals, everyone else may wait
    (one waiter for the single-waiter algorithm). *)

val locks : (module Sync.Mutex_intf.LOCK) list
(** The Section 3 mutual-exclusion landscape, in presentation order. *)

val blocking_algorithms : (module Signaling.BLOCKING) list
(** The Wait() solutions: spin-wrapped polling algorithms plus the
    leader-based construction. *)

val config_for_blocking : n:int -> Signaling.config

val run_or_blocks :
  (module Signaling.POLLING) ->
  model:Scenario.model_tag ->
  cfg:Signaling.config ->
  ?active_waiters:Smr.Op.pid list ->
  unit ->
  (Scenario.outcome, string) result
(** {!Scenario.run_phased} under a bounded fuel; [Error "blocks"] when the
    algorithm cannot terminate under this schedule (e.g. dsm-fixed-term
    with absent waiters), [Error "failed"] on any other failure. *)
