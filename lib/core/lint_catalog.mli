(** The lint catalog: every shipped algorithm registered as an
    {!Analysis.Registry} entry, plus the {!Core.Results} rendering shared
    by the CLI, the golden-file generator and the test-suite.

    Signaling algorithms are analyzed at [n] processes (default 4; the
    single-waiter variant keeps its one waiter); locks at a fixed small
    process count chosen so the exhaustive unfolding stays cheap (3, or 2
    for the tournament lock and the lock-transformed registration
    variants, whose CFGs multiply per level). *)

val register : ?n:int -> unit -> unit
(** (Re-)register every catalog entry, including the seeded mutants of
    {!Lint_mutants} (marked [mutant], so excluded from default runs). *)

val run :
  ?n:int ->
  ?mutants:bool ->
  ?fuel:int ->
  ?names:string list ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  Analysis.Lint.report list
(** Register and lint.  [names] restricts to the named entries (unknown
    names raise [Invalid_argument]).  With [metrics], each entry's lint
    wall time is recorded in the [lint_entry_seconds] histogram, labeled
    by algorithm — the per-entry cost profile behind `separation lint`'s
    [--timing] report. *)

val lint_table : Analysis.Lint.report list -> Results.table
(** One row per analyzed call: CFG statistics, observed properties,
    declared claims, and any violations. *)

val commute_table : Analysis.Commute_check.result -> Results.table

val all_ok : Analysis.Lint.report list -> Analysis.Commute_check.result -> bool
