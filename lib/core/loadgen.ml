(* Open-system load generation over the catalog: the glue between the
   signaling algorithms (typed, [Signaling.POLLING]) and the workload
   driver (structural, [Workload.Driver.instance]).

   Everything here is shared by the `separation load` CLI subcommand, the
   heavy-traffic experiments (E14, E15) and the determinism tests, so one
   scenario definition produces identical numbers everywhere.  All table
   content is a function of the scenario (seed included) — wall-clock
   figures are returned separately ({!timed}) and must never reach a table
   that CI diffs across runs or [--jobs] levels. *)

open Smr

type scenario = {
  sc_algorithm : (module Signaling.POLLING);
  sc_model : Scenario.model_tag;
  sc_ways : int; (* cache lines per process under a CC model *)
  sc_ll_ways : int;
  sc_spec : Workload.Driver.spec;
}

let scenario ?(ways = 8) ?(ll_ways = 4) ~algorithm ~model spec =
  { sc_algorithm = algorithm;
    sc_model = model;
    sc_ways = ways;
    sc_ll_ways = ll_ways;
    sc_spec = spec }

(* The flat engine's model spec for an experiment model tag. *)
let flat_model ~ways : Scenario.model_tag -> Flat_sim.model_spec = function
  | `Dsm -> Flat_sim.Dsm
  | `Cc_wt ->
    Flat_sim.Cc { protocol = Cc.Write_through; interconnect = Cc.Bus; ways }
  | `Cc_wb ->
    Flat_sim.Cc { protocol = Cc.Write_back; interconnect = Cc.Bus; ways }
  | `Cc_lfcu ->
    Flat_sim.Cc { protocol = Cc.Write_update; interconnect = Cc.Bus; ways }
  | `Cc (protocol, interconnect) -> Flat_sim.Cc { protocol; interconnect; ways }

(* Instantiate the scenario's algorithm and freeze its memory layout —
   everything a driver run needs besides the optional observability hooks.
   Split out of {!run} so the profiler can arm counter planes (sized from
   the returned layout) on the same instantiation path. *)
let prepare sc =
  let (module A : Signaling.POLLING) = sc.sc_algorithm in
  let n = sc.sc_spec.Workload.Driver.waiters + 1 in
  let cfg = Algorithms.config_for (module A) ~n in
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let winst =
    { Workload.Driver.w_name = A.name;
      w_poll = inst.Signaling.i_poll;
      w_signal = inst.Signaling.i_signal }
  in
  (winst, layout, n)

let run ?counters ?on_cache sc =
  let winst, layout, n = prepare sc in
  Workload.Driver.run ~ll_ways:sc.sc_ll_ways ?counters ?on_cache
    ~model:(flat_model ~ways:sc.sc_ways sc.sc_model)
    ~layout ~n winst sc.sc_spec

type timing = {
  elapsed_s : float;
  states_per_sec : float; (* simulation steps per wall-clock second *)
  steps : int;
  bytes_per_process : int;
}

(* Run with a wall clock around it.  The report stays deterministic; the
   timing is for stderr / perf files only. *)
let timed sc =
  let t0 = Obs.Clock.now_s () in
  let r = run sc in
  let elapsed = Obs.Clock.elapsed_s ~since:t0 in
  let steps = r.Workload.Driver.r_steps in
  ( r,
    { elapsed_s = elapsed;
      states_per_sec =
        (if elapsed <= 0.0 then 0.0 else float_of_int steps /. elapsed);
      steps;
      bytes_per_process = r.Workload.Driver.r_bytes_per_process } )

(* One table row per scenario report — the deterministic `separation load`
   output. *)
let columns =
  Results.
    [ param "algorithm"; param "model"; param "k"; param "seed";
      measure "arrived"; measure "left"; measure "crashes"; measure "polls";
      measure "polls_true"; measure "signals"; measure "clock";
      measure "steps"; measure "rmrs"; measure "messages";
      measure "signaler_rmrs"; measure "rmr/signal"; measure "rmr/op";
      measure "poll_rmr_mean"; measure "poll_lat_mean";
      measure "signal_lat_mean"; measure "spec_ok"; measure "bytes/proc" ]

let row sc (r : Workload.Driver.report) =
  let open Workload.Driver in
  Results.
    [ text r.r_algorithm;
      text (Scenario.model_tag_name sc.sc_model);
      int sc.sc_spec.waiters;
      int sc.sc_spec.seed;
      int r.r_waiters;
      int r.r_left;
      int r.r_crashes;
      int r.r_polls;
      int r.r_polls_true;
      int r.r_signals;
      int r.r_clock;
      int r.r_steps;
      int r.r_total_rmrs;
      int r.r_total_messages;
      int r.r_signaler_rmrs;
      float ~digits:2 (rmrs_per_signal r);
      float ~digits:3 (rmrs_per_op r);
      float ~digits:3 r.r_poll_rmrs.Workload.Stats.mean;
      float ~digits:1 r.r_poll_latency.Workload.Stats.mean;
      float ~digits:1 r.r_signal_latency.Workload.Stats.mean;
      bool r.r_spec_ok;
      int r.r_bytes_per_process ]

let table ?(title = "open-system load: streaming accounting per scenario")
    scenarios_and_reports =
  Results.make ~experiment:"load" ~title
    ~claim:
      "flat-engine open-system runs: deterministic streaming accounting \
       (same seed, same table, independent of --jobs)"
    ~columns
    (List.map (fun (sc, r) -> row sc r) scenarios_and_reports)

(* Perf sidecar (NOT deterministic: wall-clock figures).  Written to the
   file `separation load --perf-out` names; CI asserts its fields with jq. *)
let perf_json reports_and_timings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"schema\": \"separation-load-perf/1\",\n  \"runs\": [\n";
  let add_run i ((sc : scenario), (t : timing)) =
    let (module A : Signaling.POLLING) = sc.sc_algorithm in
    Buffer.add_string b
      (Printf.sprintf
         "    {\"algorithm\": \"%s\", \"model\": \"%s\", \"k\": %d, \
          \"steps\": %d, \"elapsed_s\": %.6f, \"states_per_sec\": %.1f, \
          \"bytes_per_process\": %d}%s\n"
         A.name
         (Scenario.model_tag_name sc.sc_model)
         sc.sc_spec.Workload.Driver.waiters t.steps t.elapsed_s
         t.states_per_sec t.bytes_per_process
         (if i = List.length reports_and_timings - 1 then "" else ","))
  in
  List.iteri add_run reports_and_timings;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
