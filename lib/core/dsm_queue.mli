(** Section 7, waiters and signaler not fixed: registration through a
    Fetch-And-Increment queue.  O(1) amortized RMRs in DSM — achievable only
    because F&I lies outside the primitive class of Theorem 6.2 /
    Corollary 6.14; the adversary's erasures diverge against it. *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
