(** Typed experiment results.

    Every experiment produces one or more {!table}s: a grid of typed
    {!value}s under named columns, tagged with the experiment id, the paper
    claim it regenerates, and the table-level parameter bindings of the run
    (N, k, model, ...).  Renderers turn a table into the aligned text of
    {!Report}, RFC-4180 CSV, or a stable JSON document; {!Report.t} is a
    pure view computed by {!to_report}. *)

type value =
  | Int of int
  | Float of { value : float; digits : int }
      (** Rendered with exactly [digits] decimals in every format. *)
  | Bool of bool  (** Rendered [yes]/[no] in text and CSV, a JSON boolean. *)
  | Text of string

(** Whether a column is a parameter binding of the run (N, k, algorithm,
    model, ...) or a measured quantity. *)
type kind = Param | Measure

type column = { name : string; kind : kind }

type table = private {
  experiment : string;  (** registry id, e.g. ["e1"] *)
  part : string option;
      (** distinguishes sub-tables of one experiment, e.g. ["a"]/["b"] *)
  title : string;  (** the full human title printed above the text table *)
  claim : string;  (** one-line paper-section claim *)
  params : (string * value) list;
      (** table-level parameter bindings, e.g. [("n", Int 64)] *)
  columns : column list;
  rows : value list list;  (** each row aligned with [columns] *)
}

val make :
  experiment:string ->
  ?part:string ->
  title:string ->
  claim:string ->
  ?params:(string * value) list ->
  columns:column list ->
  value list list ->
  table
(** Raises [Invalid_argument] if a row's width differs from [columns]. *)

val param : string -> column
val measure : string -> column

val int : int -> value
val float : ?digits:int -> float -> value
(** [digits] defaults to 2, matching {!Report.float}. *)

val bool : bool -> value
val text : string -> value

val render_value : value -> string
(** The text/CSV cell for a value (what {!to_report} puts in the grid). *)

(** {1 Typed access (for expected-shape predicates)} *)

val get : table -> row:value list -> string -> value
(** Cell of [row] under the column named [string].  Raises [Not_found] if
    the table has no such column. *)

val column_values : table -> string -> value list
(** One value per row. *)

val rows_where : table -> string -> value -> value list list
(** The rows whose cell under the named column equals the given value. *)

val to_int : value -> int option
val to_float : value -> float option
(** Succeeds on [Int] and [Float]. *)

val to_bool : value -> bool option
val to_text : value -> string

(** {1 Renderers} *)

val to_report : table -> Report.t
(** The aligned-text view; [Report.t] carries no information beyond what
    the table holds. *)

val to_csv : table -> string
(** Header + rows (no title), RFC-4180 quoting. *)

val to_json : table -> string
(** One table as a stable JSON object: keys in fixed order
    ([experiment], [part], [title], [claim], [params], [columns], [rows]);
    rows are objects keyed by column name; [Float] values keep their fixed
    decimal rendering.  Deterministic byte-for-byte for a given table. *)

val to_json_many : table list -> string
(** A JSON array of {!to_json} objects, in list order. *)
