(* An LL/SC-based registration algorithm — the other half of the
   Corollary 6.14 primitive class.

   Identical in structure to [Cas_register], but the head counter is
   advanced with a Load-Linked / Store-Conditional retry loop.  LL/SC is a
   comparison-class primitive like CAS: a failed SC writes nothing, so an
   adversarial scheduler can make k concurrent registrations collide into
   Θ(k²) RMRs (every interleaved nontrivial operation invalidates the
   links of all other registrants), while hardware F&I admits no such
   schedule.  [Transformed] applies the {!Sync.Local_cas} rewrite, turning
   every LL/SC (and link-invalidating write) into lock-mediated reads and
   writes — the Corollary 6.14 reduction for the LL/SC case. *)

open Smr
open Program.Syntax

let name = "llsc-register"

let description =
  "registration via LL/SC-emulated F&I (reads/writes/LL/SC); subject to \
   Cor. 6.14 — contention schedules force ω(1) amortized RMRs"

let primitives = [ Op.Reads_writes; Op.Comparison ]

let flexibility = Signaling.any_flexibility

type t = {
  head : int Var.t;
  slots : Op.pid option Var.t array;
  g : bool Var.t;
  v : bool Var.t array;
  registered : bool Var.t array;
}

let create ctx (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  { head = Var.Ctx.int ctx ~name:"head" ~home:Var.Shared 0;
    slots =
      Array.init n (fun i ->
          Var.Ctx.pid_opt ctx
            ~name:(Printf.sprintf "slot[%d]" i)
            ~home:Var.Shared None);
    g = Var.Ctx.bool ctx ~name:"G" ~home:Var.Shared false;
    v =
      Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n (fun _ -> false);
    registered =
      Var.Ctx.bool_array ctx ~name:"registered"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let rec claim_slot t =
  let* h = Program.load_linked t.head in
  let* won = Program.store_conditional t.head (h + 1) in
  if won then Program.return h else claim_slot t

let poll t p =
  let* already = Program.read t.registered.(p) in
  if already then Program.read t.v.(p)
  else
    let* () = Program.write t.registered.(p) true in
    let* slot = claim_slot t in
    let* () = Program.write t.slots.(slot) (Some p) in
    Program.read t.g

let signal t _p =
  let* () = Program.write t.g true in
  let* upto = Program.read t.head in
  let rec sweep i =
    if i >= upto then Program.return ()
    else
      let* () = Program.await t.slots.(i) Option.is_some in
      let* elem = Program.read t.slots.(i) in
      match elem with
      | Some q ->
        let* () = Program.write t.v.(q) true in
        sweep (i + 1)
      | None -> assert false
  in
  sweep 0

let llsc_addrs t = [ Var.addr t.head ]

(* The Corollary 6.14 reduction, LL/SC flavor. *)
module Transformed = struct
  let name = "llsc-register/rw"

  let description =
    "llsc-register after the Cor. 6.14 transformation: LL/SC on the head \
     counter replaced by Local_cas's versioned read/write cell"

  let primitives = [ Op.Reads_writes ]

  let flexibility = flexibility

  type nonrec t = { inner : t; lcas : Sync.Local_cas.t }

  let create ctx (cfg : Signaling.config) =
    let inner = create ctx cfg in
    let lcas =
      Sync.Local_cas.create ctx ~n:cfg.Signaling.n ~addrs:(llsc_addrs inner)
    in
    { inner; lcas }

  let poll t p = Sync.Local_cas.transform t.lcas p (poll t.inner p)

  let signal t p = Sync.Local_cas.transform t.lcas p (signal t.inner p)
end

(* Lint claims: as cas_register — the LL/SC retry loop spins on the shared
   head cell; comparison-class registration cannot be O(1) per call. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "G"; "V"; "registered" ];
      const_writes = [];
      calls =
        [ ("signal", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 2; refills = 2 } });
          ("poll", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 2 } }) ] }
