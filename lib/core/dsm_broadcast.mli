(** The read/write broadcast algorithm: Signal() blindly writes every
    process's local flag, so it solves the hard variant (waiters not fixed)
    with reads and writes only — and is therefore forced by the Section 6
    adversary to amortized Θ(N/k) RMRs in DSM (experiment E2). *)

include Signaling.POLLING

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
