(** Bridges between the observability layer ({!Obs}) and the typed
    {!Results} pipeline. *)

val outcome_table :
  algorithm:string -> model:string -> n:int -> Scenario.outcome -> Results.table
(** A one-row table of the outcome's accounting (RMRs, messages,
    participants, amortized cost, spec verdict) — what `separation run`
    prints, renderable as text, CSV or stable JSON. *)

val metrics_table : ?timing:bool -> Obs.Metrics.t -> Results.table
(** One row per metric sample, in canonical (metric, labels) order, with
    histograms expanded Prometheus-style ([_bucket]/[_sum]/[_count]).
    Wall-time metrics ([*_seconds]) are excluded unless [timing] is true,
    keeping the default rendering deterministic. *)
