(** Alias of {!Smr.Parallel}, kept so existing [Core.Parallel] callers
    (the experiment runner, the CLI) need not change. *)

include module type of Smr.Parallel
