(* Bridges between the observability layer and the Results pipeline: render
   a scenario outcome and a metrics registry as typed tables, so the CLI's
   `run` and `trace` subcommands gain --json and CSV for free and their
   text output goes through the same aligned renderer as the experiment
   tables. *)

let outcome_table ~algorithm ~model ~n (o : Scenario.outcome) =
  Results.make ~experiment:"run"
    ~title:(Printf.sprintf "%s under %s (N=%d)" algorithm model n)
    ~claim:"Specification 4.1 holds on the recorded history"
    ~params:
      Results.
        [ ("algorithm", text algorithm); ("model", text model); ("n", int n) ]
    ~columns:
      Results.
        [ measure "total_rmrs"; measure "total_messages";
          measure "participants"; measure "signaler_rmrs";
          measure "max_waiter_rmrs"; measure "amortized";
          measure "unfinished"; measure "spec_ok" ]
    Results.
      [ [ int o.Scenario.total_rmrs; int o.Scenario.total_messages;
          int o.Scenario.participants; int o.Scenario.signaler_rmrs;
          int o.Scenario.max_waiter_rmrs; float o.Scenario.amortized;
          int o.Scenario.unfinished_waiters;
          bool (o.Scenario.violations = []) ] ]

let metrics_table ?timing m =
  let rows = Obs.Metrics.rows ?timing m in
  Results.make ~experiment:"metrics"
    ~title:"Metrics derived from the event stream"
    ~claim:"counters and histograms aggregated from trace events"
    ~columns:Results.[ param "metric"; param "labels"; measure "value" ]
    (List.map
       (fun (r : Obs.Metrics.row) ->
         Results.
           [ text r.Obs.Metrics.metric;
             text (Obs.Metrics.render_labels r.Obs.Metrics.labels);
             (if r.Obs.Metrics.is_int then int (int_of_float r.Obs.Metrics.value)
              else float ~digits:6 r.Obs.Metrics.value) ])
       rows)
