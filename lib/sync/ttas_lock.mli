(** Test-and-test-and-set lock: spins by reading, so waiting is cheap in the
    CC model (cache-served) but still remote in the DSM model — a minimal
    illustration of the model sensitivity the paper's Section 1 discusses. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
