(** Driver for GME tests and experiments: scripted enter/work/exit passages
    under a chosen schedule and cost model, with the safety verdict and the
    concurrency actually achieved. *)

open Smr

type outcome = {
  sim : Sim.t;
  safe : bool;  (** no two different-session occupancies overlapped *)
  max_concurrency : int;
  total_rmrs : int;
  avg_rmrs_per_passage : float;
  passages : int;
}

val default_session : sessions:int -> Op.pid -> int -> int
(** [(p + round) mod sessions]: neighbours collide. *)

val run :
  (module Gme_intf.GME) ->
  model_of:(Var.layout -> Cost_model.t) ->
  n:int ->
  entries:int ->
  ?sessions:int ->
  ?session_of:(Op.pid -> int -> int) ->
  ?policy:Schedule.policy ->
  ?max_events:int ->
  unit ->
  outcome
(** Raises [Failure] if some process cannot finish its passages. *)
