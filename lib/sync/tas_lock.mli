(** Test-and-set spinlock: the unbounded-RMR baseline of the Section 3
    landscape.  Every spin iteration hits the shared flag remotely in both
    models. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
