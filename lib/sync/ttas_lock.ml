(* Test-and-test-and-set: spin reading until the flag looks free, then
   attempt the test-and-set.

   In the CC model the read spin is served from the local cache, so a waiting
   process incurs RMRs only when the flag actually changes — the simplest
   illustration of why caches make shared spin variables cheap (paper,
   Sec. 1).  In the DSM model the read spin is still remote and the lock is
   as bad as plain TAS, which the lock-comparison experiment (E7) shows. *)

open Smr
open Program.Syntax

let name = "ttas"

let primitives = [ Op.Fetch_and_phi ]

type t = { flag : bool Var.t }

let create ctx ~n:_ =
  { flag = Var.Ctx.bool ctx ~name:"ttas.flag" ~home:Var.Shared false }

let acquire t _p =
  Program.repeat_until
    (let* () = Program.await t.flag not in
     let+ taken = Program.test_and_set t.flag in
     not taken)

let release t _p = Program.write t.flag false

(* Lint claims: the read-spin still targets the shared flag — cheap in CC,
   remote and unbounded in DSM (the model sensitivity this lock exists to
   show). *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 1 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Rmr 1; refills = 0 } }) ] }
