(* Anderson's array queue lock [4]: a Fetch-And-Increment ticket dispenser
   and a circular array of "has-lock" flags.

   Each contender draws a ticket, spins on its own array slot, and on release
   passes the baton to the next slot.  In the CC model each process spins on
   a cached copy of its slot and incurs O(1) RMRs per passage.  In the DSM
   model the slots live in fixed modules unrelated to whoever draws them, so
   the spin is generally remote — Anderson's lock is local-spin for CC only,
   one of the model-sensitivity examples behind the paper's Section 1
   discussion. *)

open Smr
open Program.Syntax

let name = "anderson"

let primitives = [ Op.Fetch_and_phi ]

type t = {
  n : int;
  ticket : int Var.t;
  has_lock : bool Var.t array; (* slot i homed at module i *)
  my_slot : int Var.t array; (* per-process slot memo, homed locally *)
}

let create ctx ~n =
  { n;
    ticket = Var.Ctx.int ctx ~name:"anderson.ticket" ~home:Var.Shared 0;
    has_lock =
      Var.Ctx.bool_array ctx ~name:"anderson.has_lock"
        ~home:(fun i -> Var.Module i)
        n
        (fun i -> i = 0);
    my_slot =
      Var.Ctx.int_array ctx ~name:"anderson.my_slot"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> 0) }

let acquire t p =
  let* ticket = Program.fetch_and_increment t.ticket in
  let slot = ticket mod t.n in
  let* () = Program.write t.my_slot.(p) slot in
  Program.await t.has_lock.(slot) Fun.id

let release t p =
  let* slot = Program.read t.my_slot.(p) in
  let* () = Program.write t.has_lock.(slot) false in
  Program.write t.has_lock.((slot + 1) mod t.n) true

(* Lint claims: slots are homed independently of who draws them, so the
   per-slot spin is remote in DSM.  Only its owner writes my_slot[p];
   has_lock slots are handed around and multi-written.  Release touches at
   most two has_lock slots remotely. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "anderson.my_slot" ];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 3; refills = 3 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 2; refills = 0 } }) ] }
