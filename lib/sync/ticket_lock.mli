(** The ticket lock: F&I dispenser plus a shared now-serving counter.
    FIFO-fair; every hand-off invalidates all waiters (O(N) per passage in
    CC) and the spin is remote in DSM. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
