(** Anderson's array queue lock: Fetch-And-Increment tickets with per-slot
    spinning.  O(1) RMRs per passage in the CC model; not local-spin in the
    DSM model, where slots are homed independently of who draws them. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
