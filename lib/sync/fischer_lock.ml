(* Fischer's timing-based mutual exclusion — the classic algorithm of the
   semi-synchronous model the paper's Section 3 discusses (where, notably,
   the known CC/DSM separation runs in the opposite direction to this
   paper's: DSM O(1) vs CC Ω(log log N) [23]).

   One shared variable X and one timing assumption: between a process's
   consecutive steps at most Δ time passes.  To acquire: wait for X = NIL,
   write X := p, then DELAY for more than Δ — long enough that any process
   that read X = NIL before our write has already performed its own write —
   and re-check; if X is still p, the critical section is safe.  To
   release: X := NIL.

   Correctness NEEDS the timing assumption: under the [Semi_sync] policy
   with delay > delta the lock is mutual-exclusion safe; under an
   asynchronous schedule the delayed re-check can be stale and two
   processes enter together — experiment E11 exhibits both, which is the
   honest way to "run" a model-separation claim.

   The delay is implemented as [delay] reads of a variable homed at the
   caller: each step occupies at least one scheduling tick, so [delay]
   local steps span at least [delay] ticks.  In the DSM model the X-spin is
   remote (the O(1)-RMR semi-synchronous DSM algorithms of [23] are out of
   scope; DESIGN.md records the substitution). *)

open Smr
open Program.Syntax

let primitives = [ Op.Reads_writes ]

type t = {
  x : Op.pid option Var.t;
  pause : int Var.t array; (* pause.(i) homed at module i: delay scratch *)
  delay : int;
}

let create_timed ctx ~n ~delay =
  { x = Var.Ctx.pid_opt ctx ~name:"fischer.x" ~home:Var.Shared None;
    pause =
      Var.Ctx.int_array ctx ~name:"fischer.pause"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> 0);
    delay }

let delay_program t p =
  Program.for_ 1 t.delay (fun _ ->
      let* _ = Program.read t.pause.(p) in
      Program.return ())

let rec acquire t p =
  let* () = Program.await t.x (fun x -> x = None) in
  let* () = Program.write t.x (Some p) in
  let* () = delay_program t p in
  let* holder = Program.read t.x in
  if holder = Some p then Program.return () else acquire t p

let release t p =
  ignore p;
  Program.write t.x None

(* A LOCK instance with the delay fixed, for Lock_runner and E11. *)
let with_delay delay : (module Mutex_intf.LOCK) =
  (module struct
    let name = Printf.sprintf "fischer(d=%d)" delay

    let primitives = primitives

    type nonrec t = t

    let create ctx ~n = create_timed ctx ~n ~delay

    let acquire = acquire

    let release = release
  end)

(* Lint claims: the contention wait polls the single shared variable
   (remote in DSM); the timing delay only reads the process's own pause
   cell, which nobody ever writes.  Claims describe the packaged lock for
   any fixed delay. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "fischer.pause" ];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 1; refills = 1 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Rmr 1; refills = 0 } }) ] }
