(* Leader election where every participant learns the leader's identity.

   Section 7 uses leader election twice: waiters elect a leader to reduce
   blocking signaling to the single-waiter case, and multiple signalers elect
   who actually signals.  The paper points to the O(1)-RMR read/write
   election of Golab, Hendler & Woelfel [13]; that construction is far
   beyond this library's scope, so we substitute the one-step
   read-modify-write election the paper also mentions ("one step per process
   using virtually any read-modify-write primitive"), extended so that
   losers learn the winner by local spinning:

   - the winner is the process whose Test-And-Set on [decided] succeeds;
   - the winner broadcasts its ID into a per-process announcement cell homed
     in each process's own module;
   - a loser spins on its own cell: zero RMRs in DSM, O(1) in CC.

   Cost: O(1) RMRs per loser in both models; O(N) for the single winner
   (the broadcast).  DESIGN.md records this as a documented substitution:
   it preserves the interface property Section 7 relies on — every
   participant learns the leader's ID with O(1) local-spin waiting — at the
   price of a linear winner, which only shifts constants in the experiments
   that use it. *)

open Smr
open Program.Syntax

type t = {
  n : int;
  decided : bool Var.t;
  announce : Op.pid option Var.t array; (* announce.(i) homed at module i *)
}

let create ctx ~n =
  { n;
    decided = Var.Ctx.bool ctx ~name:"elect.decided" ~home:Var.Shared false;
    announce =
      Array.init n (fun i ->
          Var.Ctx.pid_opt ctx
            ~name:(Printf.sprintf "elect.announce[%d]" i)
            ~home:(Var.Module i) None) }

let elect t p =
  let* already = Program.test_and_set t.decided in
  if not already then
    (* Winner: publish to everyone, own cell last is unnecessary — losers
       wait on their own cell only. *)
    let* () =
      Program.for_ 0 (t.n - 1) (fun i -> Program.write t.announce.(i) (Some p))
    in
    Program.return p
  else
    let* () = Program.await t.announce.(p) Option.is_some in
    let* leader = Program.read t.announce.(p) in
    match leader with Some q -> Program.return q | None -> assert false

let winner_known t p =
  let+ l = Program.read t.announce.(p) in
  l
