(* The trivial GME solution: ordinary mutual exclusion, sessions ignored.

   Safe — no two occupancies ever overlap at all — but admits zero
   concurrency, which is exactly what the GME problem exists to provide.
   The baseline for experiment E10: a real GME algorithm must beat its
   concurrency of 1. *)


let name = "gme-mutex"

let primitives = Mcs_lock.primitives

type t = Mcs_lock.t

let create ctx ~n ~sessions:_ = Mcs_lock.create ctx ~n

let enter t p ~session:_ = Mcs_lock.acquire t p

let exit t p = Mcs_lock.release t p
