(** Leader election where every participant learns the winner's identity
    (used by the Section 7 blocking and multi-signaler solutions).

    This is the "one step per process using virtually any read-modify-write
    primitive" election the paper mentions, extended with a local-spin
    announcement: the Test-And-Set winner broadcasts its ID into
    per-process cells homed in their owners' modules, and losers spin
    locally.  Losers pay O(1) RMRs in both models; the single winner pays
    O(N) for the broadcast.  DESIGN.md documents this as a substitution for
    the O(1)-RMR read/write election of Golab, Hendler & Woelfel [13]. *)

open Smr

type t

val create : Var.Ctx.ctx -> n:int -> t

val elect : t -> Op.pid -> Op.pid Program.t
(** Join the election and return the leader's ID (possibly the caller's). *)

val winner_known : t -> Op.pid -> Op.pid option Program.t
(** Non-blocking probe of the caller's announcement cell. *)
