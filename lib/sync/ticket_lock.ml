(* The ticket lock: Fetch-And-Increment dispenser plus a now-serving
   counter everyone spins on.

   FIFO-fair and simple, but all waiters share one spin variable: every
   hand-off invalidates every waiting cache (O(N) coherence traffic per
   passage in CC) and in DSM the spin is plainly remote.  Sits between
   TAS and the queue locks in the Section 3 landscape. *)

open Smr
open Program.Syntax

let name = "ticket"

let primitives = [ Op.Fetch_and_phi ]

type t = { next_ticket : int Var.t; now_serving : int Var.t }

let create ctx ~n:_ =
  { next_ticket = Var.Ctx.int ctx ~name:"ticket.next" ~home:Var.Shared 0;
    now_serving = Var.Ctx.int ctx ~name:"ticket.serving" ~home:Var.Shared 0 }

let acquire t _p =
  let* ticket = Program.fetch_and_increment t.next_ticket in
  Program.await t.now_serving (fun s -> s = ticket)

let release t _p =
  (* Only the holder writes now_serving, so read-then-write is safe. *)
  let* s = Program.read t.now_serving in
  Program.write t.now_serving (s + 1)

(* Lint claims: waiting reads the shared now-serving counter (remote in
   DSM); release reads and bumps it (2 RMRs). *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 1; refills = 1 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 1; refills = 1 } }) ] }
