(* Test-and-set spinlock: the classical non-local-spin baseline.

   Every contender spins with test-and-set directly on the shared flag, so
   under contention each spin iteration is an RMR in both models (and on a
   real machine, a coherence storm).  This is the "unbounded RMR complexity"
   end of the Section 3 landscape. *)

open Smr
open Program.Syntax

let name = "tas"

let primitives = [ Op.Fetch_and_phi ]

type t = { flag : bool Var.t }

let create ctx ~n:_ =
  { flag = Var.Ctx.bool ctx ~name:"tas.flag" ~home:Var.Shared false }

let acquire t _p =
  Program.repeat_until
    (let+ taken = Program.test_and_set t.flag in
     not taken)

let release t _p = Program.write t.flag false

(* Lint claims: the spin TASes the shared flag, so waiting is remote and
   RMR-unbounded in DSM; release is one remote write. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 0 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Rmr 1; refills = 0 } }) ] }
