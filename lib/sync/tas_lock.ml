(* Test-and-set spinlock: the classical non-local-spin baseline.

   Every contender spins with test-and-set directly on the shared flag, so
   under contention each spin iteration is an RMR in both models (and on a
   real machine, a coherence storm).  This is the "unbounded RMR complexity"
   end of the Section 3 landscape. *)

open Smr
open Program.Syntax

let name = "tas"

let primitives = [ Op.Fetch_and_phi ]

type t = { flag : bool Var.t }

let create ctx ~n:_ =
  { flag = Var.Ctx.bool ctx ~name:"tas.flag" ~home:Var.Shared false }

let acquire t _p =
  Program.repeat_until
    (let+ taken = Program.test_and_set t.flag in
     not taken)

let release t _p = Program.write t.flag false
