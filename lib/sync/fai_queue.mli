(** Shared registration queue from Fetch-And-Increment (Section 7).

    O(1) RMRs per enqueue; draining pays one RMR per registered process.
    Because every F&I observes the counter value written by its predecessor,
    an enqueued process is visible to all later registrants — which is
    exactly why the Section 6 adversary cannot erase queue-registered
    waiters, and why the queue-based signaling solution escapes the lower
    bound. *)

open Smr

type t

val create : Var.Ctx.ctx -> capacity:int -> t
(** [capacity] bounds the number of enqueues over the object's lifetime;
    exceeding it raises [Invalid_argument] at execution time. *)

val enqueue : t -> Op.pid -> unit Program.t
(** Draw a slot and publish the caller's ID into it: 2 RMRs. *)

val drain :
  ?skip_unpublished:int ->
  t ->
  from:int ->
  (Op.pid -> unit Program.t) ->
  int Program.t
(** [drain t ~from visit] reads the tail, runs [visit] on every element in
    slots [from, tail), and returns the observed tail (the next cursor).
    By default a claimed-but-unpublished slot is awaited; the wait is
    bounded under any fair schedule because the claimant publishes in its
    next step — but a claimant crashing between its F&I and its publish
    leaves a permanent hole the await livelocks on.
    [skip_unpublished = Some r] instead re-reads an empty slot [r] times
    and then skips past it; the caller must argue that a skipped claimant
    needs no visit (see [Core.Dsm_queue]). *)

val length : t -> int Program.t
(** Number of slots claimed so far. *)
