(* Read/write implementations of CAS and LL/SC, and the Corollary 6.14
   transformation.

   Corollary 6.14 extends the DSM lower bound to algorithms using CAS or
   LL/SC by replacing each such variable with a locally-accessible
   implementation built from reads and writes [11, 12], then invoking
   Theorem 6.2 on the transformed (read/write-only) algorithm.

   The genuine [12] construction achieves O(1) RMRs per operation; it is a
   substantial piece of machinery in its own right.  We substitute a
   lock-mediated implementation: each protected address gets a Yang-Anderson
   lock (itself reads/writes only) plus a version counter, and

   - CAS becomes acquire; read; compare; maybe (write; bump version); release;
   - LL becomes acquire; read value + version, remember the version in a
     cell homed at the caller; release;
   - SC succeeds iff the version is unchanged since the caller's LL
     (version comparison, not value comparison, so there is no ABA);
   - a plain Write to a protected cell also bumps the version under the
     lock — in the hardware semantics any nontrivial operation invalidates
     outstanding links, and the transformation must preserve that.

   This costs O(log N) RMRs per operation instead of O(1) — a documented
   weakening that does not affect what the mechanized Corollary 6.14
   experiment (E8) needs: the transformed algorithm uses reads and writes
   only, so the Section 6 adversary applies to it, and the transformation
   "necessarily introduces busy-waiting" exactly as the paper notes.

   [transform] rewrites a program tree, replacing every CAS/LL/SC/Write on
   a protected address; Reads pass through (they are already atomic
   read/write operations and never invalidate links). *)

open Smr
open Program.Syntax

module Addr_map = Map.Make (Int)

type cell = {
  lock : Yang_anderson.t;
  version : int Var.t; (* bumped on every nontrivial operation *)
  saved : int Var.t array; (* saved.(p): version at p's last LL, homed at p *)
}

type t = { cells : cell Addr_map.t }

let create ctx ~n ~addrs =
  let make_cell a =
    { lock = Yang_anderson.create ctx ~n;
      version =
        Var.Ctx.int ctx ~name:(Printf.sprintf "lcas.ver[@%d]" a) ~home:Var.Shared 0;
      saved =
        Array.init n (fun p ->
            Var.Ctx.int ctx
              ~name:(Printf.sprintf "lcas.saved[@%d][%d]" a p)
              ~home:(Var.Module p) (-1)) }
  in
  let cells =
    List.fold_left
      (fun acc a ->
        if Addr_map.mem a acc then acc else Addr_map.add a (make_cell a) acc)
      Addr_map.empty addrs
  in
  { cells }

let protects t a = Addr_map.mem a t.cells

let cell_exn t a ~who =
  match Addr_map.find_opt a t.cells with
  | Some c -> c
  | None -> invalid_arg (who ^ ": address not protected")

let bump c =
  let* v = Program.read c.version in
  Program.write c.version (v + 1)

(* The read/write CAS: mutual exclusion makes the read-compare-write
   sequence atomic with respect to every other transformed operation on
   the same cell. *)
let cas_program t p ~addr ~expected ~update =
  let c = cell_exn t addr ~who:"Local_cas.cas_program" in
  let* () = Yang_anderson.acquire c.lock p in
  let* current = Program.step (Op.Read addr) in
  let* result =
    if current = expected then
      let* _ = Program.step (Op.Write (addr, update)) in
      let* () = bump c in
      Program.return 1
    else Program.return 0
  in
  let* () = Yang_anderson.release c.lock p in
  Program.return result

let ll_program t p ~addr =
  let c = cell_exn t addr ~who:"Local_cas.ll_program" in
  let* () = Yang_anderson.acquire c.lock p in
  let* value = Program.step (Op.Read addr) in
  let* v = Program.read c.version in
  let* () = Program.write c.saved.(p) v in
  let* () = Yang_anderson.release c.lock p in
  Program.return value

let sc_program t p ~addr ~update =
  let c = cell_exn t addr ~who:"Local_cas.sc_program" in
  let* () = Yang_anderson.acquire c.lock p in
  let* v = Program.read c.version in
  let* mine = Program.read c.saved.(p) in
  let* result =
    if mine >= 0 && v = mine then
      let* _ = Program.step (Op.Write (addr, update)) in
      let* () = bump c in
      (* The link is consumed: hardware SC invalidates every link,
         including the caller's own. *)
      let* () = Program.write c.saved.(p) (-1) in
      Program.return 1
    else Program.return 0
  in
  let* () = Yang_anderson.release c.lock p in
  Program.return result

let write_program t p ~addr ~value =
  let c = cell_exn t addr ~who:"Local_cas.write_program" in
  let* () = Yang_anderson.acquire c.lock p in
  let* _ = Program.step (Op.Write (addr, value)) in
  let* () = bump c in
  let* () = Yang_anderson.release c.lock p in
  Program.return 0

let rec transform t p (prog : 'a Program.t) : 'a Program.t =
  let continue k v = transform t p (k v) in
  match prog with
  | Program.Return v -> Program.Return v
  | Program.Step (Op.Cas (a, expected, update), k) when protects t a ->
    Program.bind (cas_program t p ~addr:a ~expected ~update) (continue k)
  | Program.Step (Op.Ll a, k) when protects t a ->
    Program.bind (ll_program t p ~addr:a) (continue k)
  | Program.Step (Op.Sc (a, update), k) when protects t a ->
    Program.bind (sc_program t p ~addr:a ~update) (continue k)
  | Program.Step (Op.Write (a, value), k) when protects t a ->
    (* A plain write must invalidate outstanding links, so it also goes
       through the lock and bumps the version. *)
    Program.bind (write_program t p ~addr:a ~value) (continue k)
  | Program.Step ((Op.Faa (a, _) | Op.Fas (a, _) | Op.Tas a), _) when protects t a ->
    (* Fetch-and-phi on a protected cell is outside the Cor. 6.14 class;
       an algorithm that has F&I does not need the transformation. *)
    invalid_arg "Local_cas.transform: fetch-and-phi on a protected address"
  | Program.Step (inv, k) -> Program.Step (inv, continue k)
