(** Lamport's bakery algorithm: first-come-first-served mutual exclusion
    from reads and writes only.  The FCFS baseline of the Section 3
    literature; Θ(N) scans per passage, remote in both models. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
