(** The CLH queue lock: contenders spin on their predecessor's rotating
    node — local-spin under cache coherence, remote under DSM; the mirror
    image of MCS in the Section 3 landscape. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
