(* The CLH queue lock (Craig; Landin & Hagersten): an implicit queue where
   each contender spins on its predecessor's node.

   The node a process spins on rotates between processes (on release the
   holder adopts its predecessor's node), so in the DSM model the spin is
   generally in someone else's module — CLH is the canonical example of a
   lock that is local-spin under cache coherence but not under distributed
   shared memory, the mirror image of MCS.  E7 shows the contrast. *)

open Smr
open Program.Syntax

let name = "clh"

let primitives = [ Op.Fetch_and_phi ]

type t = {
  tail : int Var.t; (* index of the last queued node *)
  locked : bool Var.t array; (* n + 1 nodes; node i (< n) starts owned by i *)
  my_node : int Var.t array; (* per-process current node, homed locally *)
  my_pred : int Var.t array; (* per-process predecessor node, homed locally *)
}

let create ctx ~n =
  { tail = Var.Ctx.int ctx ~name:"clh.tail" ~home:Var.Shared n;
    locked =
      Array.init (n + 1) (fun i ->
          Var.Ctx.bool ctx
            ~name:(Printf.sprintf "clh.locked[%d]" i)
            ~home:(if i < n then Var.Module i else Var.Shared)
            false);
    my_node =
      Var.Ctx.int_array ctx ~name:"clh.my_node" ~home:(fun i -> Var.Module i) n
        (fun i -> i);
    my_pred =
      Var.Ctx.int_array ctx ~name:"clh.my_pred" ~home:(fun i -> Var.Module i) n
        (fun _ -> 0) }

let acquire t p =
  let* node = Program.read t.my_node.(p) in
  let* () = Program.write t.locked.(node) true in
  let* pred = Program.fetch_and_store t.tail node in
  let* () = Program.write t.my_pred.(p) pred in
  Program.await t.locked.(pred) not

let release t p =
  let* node = Program.read t.my_node.(p) in
  let* pred = Program.read t.my_pred.(p) in
  let* () = Program.write t.locked.(node) false in
  (* Adopt the predecessor's (now retired) node for the next acquire. *)
  Program.write t.my_node.(p) pred

(* Lint claims: the spin node rotates between processes, so waiting is
   generally in someone else's module — remote in DSM (the mirror image of
   MCS).  my_node/my_pred are per-process memos written only by their
   owner; release frees the owned node (at most 1 remote write). *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [ "clh.my_node"; "clh.my_pred" ];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr 4; refills = 4 } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Rmr 2; refills = 0 } }) ] }
