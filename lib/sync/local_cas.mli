(** Read/write implementations of CAS and LL/SC, and the Corollary 6.14
    transformation.

    Replaces CAS, LL/SC and plain writes on protected addresses with
    lock-mediated sequences built from reads and writes only (the lock is
    Yang-Anderson, itself read/write; links are tracked by a version
    counter, so SC has no ABA problem and any nontrivial operation
    invalidates outstanding links, as in hardware).  The result costs
    O(log N) RMRs per operation — a documented weakening of the O(1)
    construction of Golab et al. [12] — but preserves the property the
    mechanized Corollary 6.14 experiment needs: the transformed algorithm
    uses reads and writes only, so Theorem 6.2's adversary applies. *)

open Smr

type t

val create : Var.Ctx.ctx -> n:int -> addrs:Op.addr list -> t
(** One read/write lock + version counter + per-process link cells per
    distinct protected address.  Call before freezing the context. *)

val protects : t -> Op.addr -> bool

val cas_program :
  t -> Op.pid -> addr:Op.addr -> expected:Op.value -> update:Op.value -> Op.value Program.t
(** Returns 1 on success, 0 on failure, like the hardware primitive. *)

val ll_program : t -> Op.pid -> addr:Op.addr -> Op.value Program.t
(** Load-linked: returns the cell value and records the link. *)

val sc_program : t -> Op.pid -> addr:Op.addr -> update:Op.value -> Op.value Program.t
(** Store-conditional: succeeds (returns 1) iff no nontrivial transformed
    operation hit the cell since the caller's last [ll_program]. *)

val write_program : t -> Op.pid -> addr:Op.addr -> value:Op.value -> Op.value Program.t
(** A plain write routed through the lock so it invalidates links. *)

val transform : t -> Op.pid -> 'a Program.t -> 'a Program.t
(** Rewrite a program, replacing every CAS, LL, SC and Write on a protected
    address.  Raises [Invalid_argument] on fetch-and-phi over a protected
    address (such algorithms are outside the Corollary 6.14 class and need
    no transformation). *)
