(* Yang and Anderson's local-spin tournament lock [30].

   N-process mutual exclusion from reads and writes only: processes climb a
   binary arbitration tree, resolving each internal node with a two-process
   protocol in which every busy-wait is on a spin variable homed in the
   waiting process's own module.  A passage costs Θ(log N) RMRs in both the
   CC and DSM models — the tight bound for reads and writes (Sec. 3).

   The two-process node protocol follows the presentation in Anderson, Kim &
   Herman's survey [3]: C[v][side] announces the contender, T[v] breaks
   ties, and the loser waits on its own per-level spin variable, first for a
   wake-up hint (>= 1) and then, if it still holds the tie-breaker, for the
   explicit hand-off (>= 2). *)

open Smr
open Program.Syntax

let name = "yang-anderson"

let primitives = [ Op.Reads_writes ]

type t = {
  levels : int; (* 0 when n = 1: no arbitration needed *)
  c : Op.pid option Var.t array array; (* c.(node).(side), heap-indexed *)
  tie : Op.pid option Var.t array; (* tie.(node) *)
  spin : int Var.t array array; (* spin.(pid).(level), homed at pid *)
}

let levels_for n =
  let rec go l = if 1 lsl l >= n then l else go (l + 1) in
  go 0

let create ctx ~n =
  let levels = levels_for n in
  let nodes = 1 lsl levels in
  (* nodes 1 .. 2^levels - 1 are real; index 0 is padding *)
  { levels;
    c =
      Array.init nodes (fun v ->
          Array.init 2 (fun s ->
              Var.Ctx.pid_opt ctx
                ~name:(Printf.sprintf "ya.c[%d][%d]" v s)
                ~home:Var.Shared None));
    tie =
      Array.init nodes (fun v ->
          Var.Ctx.pid_opt ctx
            ~name:(Printf.sprintf "ya.t[%d]" v)
            ~home:Var.Shared None);
    spin =
      Array.init n (fun p ->
          Array.init (levels + 1) (fun l ->
              Var.Ctx.int ctx
                ~name:(Printf.sprintf "ya.spin[%d][%d]" p l)
                ~home:(Var.Module p) 0)) }

(* Path helpers: process p's leaf is (2^levels + p); the node contested at
   level l (1-based, root = level [levels]) is the leaf shifted right l
   times, entered from side (leaf >> (l-1)) land 1. *)
let node_at t p ~level = ((1 lsl t.levels) + p) lsr level

let side_at t p ~level = (((1 lsl t.levels) + p) lsr (level - 1)) land 1

let entry2 t p ~level =
  let v = node_at t p ~level and s = side_at t p ~level in
  let my_spin = t.spin.(p).(level) in
  let* () = Program.write t.c.(v).(s) (Some p) in
  let* () = Program.write t.tie.(v) (Some p) in
  let* () = Program.write my_spin 0 in
  let* rival = Program.read t.c.(v).(1 - s) in
  match rival with
  | None -> Program.return () (* uncontested *)
  | Some q ->
    let* holder = Program.read t.tie.(v) in
    if holder <> Some p then Program.return () (* rival yielded the tie *)
    else
      let* rival_spin = Program.read t.spin.(q).(level) in
      let* () =
        Program.when_ (rival_spin = 0) (Program.write t.spin.(q).(level) 1)
      in
      let* () = Program.await my_spin (fun x -> x >= 1) in
      let* holder = Program.read t.tie.(v) in
      if holder = Some p then Program.await my_spin (fun x -> x >= 2)
      else Program.return ()

let exit2 t p ~level =
  let v = node_at t p ~level and s = side_at t p ~level in
  let* () = Program.write t.c.(v).(s) None in
  let* holder = Program.read t.tie.(v) in
  match holder with
  | Some q when q <> p -> Program.write t.spin.(q).(level) 2
  | Some _ | None -> Program.return ()

let acquire t p =
  Program.for_ 1 t.levels (fun level -> entry2 t p ~level)

let release t p =
  (* Exit top-down: the root hand-off happens first. *)
  let rec go level =
    if level < 1 then Program.return ()
    else
      let* () = exit2 t p ~level in
      go (level - 1)
  in
  go t.levels

(* Lint claims: reads/writes only and local-spin — every busy-wait targets
   spin[p][level] homed at the waiting process — with Θ(log n) RMRs per
   passage.  The per-level constants below are worst cases over the
   extracted CFG (7 on entry: name write, tie write, rival read, rival
   spin read + reset, and the two tie re-reads around the waits; 3 on
   exit: name clear, tie read, successor grant).  At n ≤ 2 each c[v][s]
   port belongs to one leaf process; deeper trees share ports between
   subtree members, so the single-writer claim is only made for n ≤ 2. *)
let claims ~n =
  let levels = max 1 (levels_for n) in
  Analysis.Claims.
    { single_writer = (if n <= 2 then [ "ya.c" ] else []);
      const_writes = [];
      calls =
        [ ("acquire", { spin = Local_spin; dsm_rmrs = Rmr (7 * levels); cc_amortized = Amortized { steady = Rmr (5 * levels); refills = 4 * levels } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr (3 * levels); cc_amortized = Amortized { steady = Rmr (2 * levels); refills = levels } }) ] }
