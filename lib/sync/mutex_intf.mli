(** Mutual exclusion: the reference problem of the RMR literature the paper
    builds on (Section 3), and a substrate of the Section 7 solutions. *)

open Smr

(** Interface every lock in this library satisfies. *)
module type LOCK = sig
  val name : string

  val primitives : Op.primitive_class list
  (** The strongest primitive classes the lock's operations use. *)

  type t

  val create : Var.Ctx.ctx -> n:int -> t

  val acquire : t -> Op.pid -> unit Program.t

  val release : t -> Op.pid -> unit Program.t
  (** Only legal for the process currently holding the lock. *)
end

type lock = (module LOCK)

(** A critical-section exerciser for tests and benchmarks: each entry
    performs a deliberately racy double increment of a shared counter inside
    the critical section, so any mutual-exclusion violation shows up as a
    lost increment ([counter_value] < 2 × entries). *)
module Exerciser (L : LOCK) : sig
  type t

  val create : Var.Ctx.ctx -> n:int -> t

  val entry : t -> Op.pid -> unit Program.t
  (** One acquire / racy double increment / release passage. *)

  val counter_value : t -> Sim.t -> int
end
