(* Group mutual exclusion (GME) — the problem behind the first known
   CC/DSM separation.

   GME (Joung [19]) generalizes mutual exclusion: each request for the
   shared resource carries a session ID, and two processes may occupy the
   resource concurrently iff they requested the same session.  Hadzilacos
   and Danek [8] proved the two-session case costs Ω(N) RMRs in the DSM
   model but only O(log N) in the CC model — the separation that motivates
   this paper (Sec. 1, Sec. 3).

   This module defines the interface, the safety checker (no two
   different-session occupancies overlap) and the concurrency metric
   (ordinary mutual exclusion solves GME with zero concurrency, which is
   what distinguishes a real GME algorithm from the trivial reduction).
   We make no claim of reproducing [8]'s tight bounds — that construction
   is its own paper; experiment E10 records the measured landscape as
   related-work context. *)

open Smr

module type GME = sig
  val name : string

  val primitives : Op.primitive_class list

  type t

  val create : Var.Ctx.ctx -> n:int -> sessions:int -> t

  val enter : t -> Op.pid -> session:int -> unit Program.t
  (** Returns once the caller may occupy the resource in [session]. *)

  val exit : t -> Op.pid -> unit Program.t
  (** Leave the resource; only legal for a process inside it.  The session
      is the one passed to the matching [enter]. *)
end

type gme = (module GME)

let enter_label ~session = Printf.sprintf "enter:%d" session

let exit_label = "exit"

let session_of_label label =
  match String.index_opt label ':' with
  | Some i when String.sub label 0 i = "enter" ->
    int_of_string_opt (String.sub label (i + 1) (String.length label - i - 1))
  | _ -> None

(* Critical-section occupancy intervals, recovered from the call record:
   a process occupies the resource from the completion of an [enter] to
   the start of its next [exit] (or forever, if it never exits). *)
type occupancy = {
  o_pid : Op.pid;
  o_session : int;
  o_from : int;
  o_until : int option;
}

let occupancies calls =
  (* Per process, pair each completed enter with the next exit start. *)
  let by_pid = Hashtbl.create 16 in
  List.iter
    (fun (c : History.call) ->
      Hashtbl.replace by_pid c.History.c_pid
        (c :: Option.value ~default:[] (Hashtbl.find_opt by_pid c.History.c_pid)))
    calls;
  Hashtbl.fold
    (fun pid cs acc ->
      let ordered =
        List.sort
          (fun (a : History.call) b -> compare a.History.c_started b.History.c_started)
          cs
      in
      let rec pair acc = function
        | [] -> acc
        | (c : History.call) :: rest -> (
          match (session_of_label c.History.c_label, c.History.c_finished) with
          | Some s, Some finished ->
            let o_until =
              List.find_map
                (fun (x : History.call) ->
                  if x.History.c_label = exit_label && x.History.c_started > finished
                  then Some x.History.c_started
                  else None)
                rest
            in
            pair ({ o_pid = pid; o_session = s; o_from = finished; o_until } :: acc)
              rest
          | _ -> pair acc rest)
      in
      pair acc ordered)
    by_pid []

let overlap a b =
  let before x y = match x.o_until with Some u -> u <= y.o_from | None -> false in
  not (before a b || before b a)

(* The GME safety property: overlapping occupancies share a session. *)
let conflicts calls =
  let occs = occupancies calls in
  let rec pairs acc = function
    | [] -> acc
    | o :: rest ->
      let bad =
        List.filter
          (fun o' -> o.o_session <> o'.o_session && overlap o o')
          rest
      in
      pairs (List.map (fun o' -> (o, o')) bad @ acc) rest
  in
  pairs [] occs

let is_safe calls = conflicts calls = []

(* Peak number of simultaneous occupancies — > 1 only for algorithms that
   actually admit same-session concurrency. *)
let max_concurrency calls =
  let occs = occupancies calls in
  let events =
    List.concat_map
      (fun o ->
        (o.o_from, 1)
        :: (match o.o_until with Some u -> [ (u, -1) ] | None -> []))
      occs
  in
  let ordered = List.sort compare events in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, max peak cur))
      (0, 0) ordered
  in
  peak
