(** Driver for the mutual-exclusion experiments (E7): scripted lock
    passages under a chosen schedule and cost model, with mutual exclusion
    certified by the racy-counter exerciser. *)

open Smr

type outcome = {
  sim : Sim.t;
  mutual_exclusion_held : bool;
  total_rmrs : int;
  total_messages : int;
  max_rmrs_per_process : int;
  avg_rmrs_per_passage : float;
  passages : int;
}

val run :
  (module Mutex_intf.LOCK) ->
  model_of:(Var.layout -> Cost_model.t) ->
  n:int ->
  entries:int ->
  ?policy:Schedule.policy ->
  ?max_events:int ->
  unit ->
  outcome
(** Raises [Failure] if some process cannot finish its passages. *)
