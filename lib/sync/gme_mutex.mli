(** The trivial GME solution: ordinary mutual exclusion with sessions
    ignored.  Safe, but admits zero concurrency — the baseline E10's real
    GME algorithm must beat. *)

include Gme_intf.GME
