(* A local-spin group mutual exclusion algorithm in the style of Keane and
   Moir [20]: an ordinary mutex protects the session bookkeeping, waiters
   for a closed session park on per-process grant flags homed in their own
   modules, and the last process to leave a session hands the resource to
   all waiters of one requested session at once.

   Costs (not tight, by design — see Gme_intf's header): an uncontended or
   same-session entry is O(lock) RMRs; a parked entry adds one local-spin
   wait; an exit that closes a session scans the want array, O(N).  The
   point for E10 is qualitative: same-session concurrency is admitted
   (max_concurrency > 1) while different sessions never overlap, and the
   parked wait is local in both CC and DSM. *)

open Smr
open Program.Syntax

let name = "gme-session"

let primitives = [ Op.Reads_writes; Op.Fetch_and_phi; Op.Comparison ]

type t = {
  n : int;
  lock : Mcs_lock.t;
  active : int Var.t; (* current open session, -1 = none; guarded by lock *)
  count : int Var.t; (* occupants of the active session; guarded by lock *)
  want : int Var.t array; (* want.(i): session i waits for, -1 = none *)
  grant : bool Var.t array; (* grant.(i) homed at module i: admission *)
}

let create ctx ~n ~sessions:_ =
  { n;
    lock = Mcs_lock.create ctx ~n;
    active = Var.Ctx.int ctx ~name:"gme.active" ~home:Var.Shared (-1);
    count = Var.Ctx.int ctx ~name:"gme.count" ~home:Var.Shared 0;
    want =
      Var.Ctx.int_array ctx ~name:"gme.want"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> -1);
    grant =
      Var.Ctx.bool_array ctx ~name:"gme.grant"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let enter t p ~session =
  let* () = Mcs_lock.acquire t.lock p in
  let* a = Program.read t.active in
  if a = -1 || a = session then
    (* The resource is free or already open for our session: join it. *)
    let* c = Program.read t.count in
    let* () = Program.write t.count (c + 1) in
    let* () = Program.write t.active session in
    Mcs_lock.release t.lock p
  else
    (* Another session holds the resource: park on the local grant flag.
       The request is published under the lock, so the closing process
       cannot miss it. *)
    let* () = Program.write t.want.(p) session in
    let* () = Mcs_lock.release t.lock p in
    let* () = Program.await t.grant.(p) Fun.id in
    Program.write t.grant.(p) false

(* Scan the want array (under the lock), admitting every waiter of the
   first requested session found; returns how many were admitted. *)
let admit_next t =
  let rec find_session i =
    if i >= t.n then Program.return (-1)
    else
      let* w = Program.read t.want.(i) in
      if w >= 0 then Program.return w else find_session (i + 1)
  in
  let* chosen = find_session 0 in
  if chosen < 0 then
    let* () = Program.write t.active (-1) in
    Program.return ()
  else
    let rec admit i admitted =
      if i >= t.n then Program.return admitted
      else
        let* w = Program.read t.want.(i) in
        if w = chosen then
          let* () = Program.write t.want.(i) (-1) in
          let* () = Program.write t.grant.(i) true in
          admit (i + 1) (admitted + 1)
        else admit (i + 1) admitted
    in
    let* admitted = admit 0 0 in
    let* () = Program.write t.active chosen in
    Program.write t.count admitted

let exit t p =
  let* () = Mcs_lock.acquire t.lock p in
  let* c = Program.read t.count in
  let* () = Program.write t.count (c - 1) in
  let* () = Program.when_ (c - 1 = 0) (admit_next t) in
  Mcs_lock.release t.lock p
