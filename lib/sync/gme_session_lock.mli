(** A local-spin group mutual exclusion algorithm in the style of Keane and
    Moir [20]: a mutex guards the session bookkeeping, waiters for a closed
    session park on grant flags homed in their own modules, and the last
    process out hands the resource to all waiters of one session at once. *)

include Gme_intf.GME
