(* Lamport's bakery algorithm [24]: first-come-first-served mutual
   exclusion from reads and writes only.

   Each contender takes a ticket one larger than every ticket it can see
   and waits until no smaller (ticket, id) pair is active.  The doorway
   (choosing + ticket scan) gives FCFS: whoever completes the doorway
   first enters first.  The cost is Θ(N) reads per passage even without
   contention — the paper's Section 3 cites the FCFS line of work
   ([24, 3, 7]) whose RMR-efficient successors fix exactly this; bakery is
   the baseline they improve on, and its scans are remote in both models
   (E7 shows it growing everywhere). *)

open Smr
open Program.Syntax

let name = "bakery"

let primitives = [ Op.Reads_writes ]

type t = {
  n : int;
  choosing : bool Var.t array; (* choosing.(i) homed at module i *)
  number : int Var.t array; (* number.(i) homed at module i; 0 = not in line *)
}

let create ctx ~n =
  { n;
    choosing =
      Var.Ctx.bool_array ctx ~name:"bakery.choosing"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false);
    number =
      Var.Ctx.int_array ctx ~name:"bakery.number"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> 0) }

(* The lexicographic priority order on (ticket, id). *)
let precedes (t1, p1) (t2, p2) = t1 < t2 || (t1 = t2 && p1 < p2)

let acquire t p =
  (* Doorway: announce, scan every ticket, take the maximum plus one. *)
  let* () = Program.write t.choosing.(p) true in
  let rec scan_max i acc =
    if i >= t.n then Program.return acc
    else
      let* ni = Program.read t.number.(i) in
      scan_max (i + 1) (max acc ni)
  in
  let* highest = scan_max 0 0 in
  let* () = Program.write t.number.(p) (highest + 1) in
  let* () = Program.write t.choosing.(p) false in
  (* Wait section: for each other process, wait out its doorway, then wait
     until it either leaves the line or has lower priority. *)
  let rec wait_for i =
    if i >= t.n then Program.return ()
    else if i = p then wait_for (i + 1)
    else
      let* () = Program.await t.choosing.(i) not in
      let* () =
        Program.repeat_until
          (let* ni = Program.read t.number.(i) in
           if ni = 0 then Program.return true
           else
             let* np = Program.read t.number.(p) in
             Program.return (precedes (np, p) (ni, i)))
      in
      wait_for (i + 1)
  in
  wait_for 0

let release t p = Program.write t.number.(p) 0

(* Lint claims: reads/writes only (the FCFS baseline); the doorway and
   priority scans poll other processes' choosing/number cells, remote in
   DSM.  Each process alone writes its own choosing and number cells;
   release just retires the owned number cell (0 RMRs). *)
let claims ~n =
  Analysis.Claims.
    { single_writer = [ "bakery.choosing"; "bakery.number" ];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Remote_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Rmr n; refills = 2 * (n - 1) } });
          ("release", { spin = No_spin; dsm_rmrs = Rmr 0; cc_amortized = Amortized { steady = Rmr 1; refills = 0 } }) ] }
