(* The MCS list-based queue lock (Mellor-Crummey & Scott [28]).

   Contenders enqueue themselves with Fetch-And-Store on a shared tail
   pointer and spin on a flag in their own queue node.  Because each
   process's node (its flag and next pointer) is homed in its own memory
   module, the spin is local in the DSM model as well as the CC model:
   O(1) RMRs per passage in both — the strongest entry in the Section 3
   landscape and the textbook example of co-locating variables with the
   processes that access them most heavily (paper, Sec. 1). *)

open Smr
open Program.Syntax

let name = "mcs"

let primitives = [ Op.Fetch_and_phi; Op.Comparison ]

type t = {
  tail : Op.pid option Var.t;
  next : Op.pid option Var.t array; (* next[i] homed at module i *)
  locked : bool Var.t array; (* locked[i] homed at module i *)
}

let create ctx ~n =
  { tail = Var.Ctx.pid_opt ctx ~name:"mcs.tail" ~home:Var.Shared None;
    next =
      Array.init n (fun i ->
          Var.Ctx.pid_opt ctx
            ~name:(Printf.sprintf "mcs.next[%d]" i)
            ~home:(Var.Module i) None);
    locked =
      Var.Ctx.bool_array ctx ~name:"mcs.locked"
        ~home:(fun i -> Var.Module i)
        n
        (fun _ -> false) }

let acquire t p =
  let* () = Program.write t.next.(p) None in
  (* Arm the spin flag before linking, so the predecessor's hand-off cannot
     be lost. *)
  let* () = Program.write t.locked.(p) true in
  let* pred = Program.fetch_and_store t.tail (Some p) in
  match pred with
  | None -> Program.return () (* lock was free *)
  | Some q ->
    let* () = Program.write t.next.(q) (Some p) in
    Program.await t.locked.(p) not

let release t p =
  let* succ = Program.read t.next.(p) in
  match succ with
  | Some q -> Program.write t.locked.(q) false
  | None ->
    (* No known successor: try to swing the tail back to empty; if that
       fails, a successor is mid-enqueue — wait for it to link itself. *)
    let* swung = Program.cas t.tail ~expected:(Some p) ~update:None in
    if swung then Program.return ()
    else
      let* () =
        Program.repeat_until
          (let+ s = Program.read t.next.(p) in
           s <> None)
      in
      let* succ = Program.read t.next.(p) in
      (match succ with
      | Some q -> Program.write t.locked.(q) false
      | None -> assert false)

(* Lint claims: the strongest entry in the Section 3 landscape — every
   busy-wait (the arrival spin on locked[p] and release's hand-off wait on
   next[p]) targets cells homed in the waiting process's own module, and a
   passage costs O(1) RMRs in DSM: acquire pays the tail swap plus the
   enqueue-behind write; release the tail CAS plus the successor grant. *)
let claims ~n:_ =
  Analysis.Claims.
    { single_writer = [];
      const_writes = [];
      calls =
        [ ("acquire", { spin = Local_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 4; refills = 1 } });
          ("release", { spin = Local_spin; dsm_rmrs = Rmr 2; cc_amortized = Amortized { steady = Rmr 1; refills = 1 } }) ] }
