(** Yang and Anderson's tournament lock: N-process mutual exclusion from
    reads and writes only, Θ(log N) RMRs per passage in both models — the
    tight bound for this primitive class (Section 3). *)

include Mutex_intf.LOCK

val levels_for : int -> int
(** Height of the arbitration tree for [n] processes (0 when [n] = 1). *)

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
