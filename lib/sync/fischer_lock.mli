(** Fischer's timing-based mutual exclusion: one shared variable plus the
    semi-synchronous step-gap assumption (paper, Section 3).  Safe under
    {!Smr.Schedule.Semi_sync} with [delay > delta]; violable under
    asynchronous schedules — experiment E11 exhibits both. *)

open Smr

type t

val create_timed : Var.Ctx.ctx -> n:int -> delay:int -> t
(** [delay] is the number of local steps the re-check waits — it must
    exceed the scheduler's step-gap bound for safety. *)

val acquire : t -> Op.pid -> unit Program.t

val release : t -> Op.pid -> unit Program.t

val with_delay : int -> (module Mutex_intf.LOCK)
(** Package as an ordinary lock with the delay fixed. *)

val claims : n:int -> Analysis.Claims.t
(** Lint claims for the packaged lock at any fixed delay, checked by
    [separation lint] (see docs/EXTENDING.md). *)
