(** The MCS list-based queue lock: Fetch-And-Store enqueue, hand-off through
    per-process queue nodes homed in their owners' modules.  O(1) RMRs per
    passage in both the CC and DSM models — the strongest entry in the
    Section 3 landscape. *)

include Mutex_intf.LOCK

val claims : n:int -> Analysis.Claims.t
(** Lint claims checked by [separation lint] (see docs/EXTENDING.md). *)
