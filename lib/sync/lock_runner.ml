(* Driver for the mutual-exclusion experiments (E7): every process performs
   a number of lock passages under a chosen schedule and cost model; the
   exerciser's racy counter certifies mutual exclusion held, and per-process
   RMR tallies reproduce the Section 3 complexity landscape. *)

open Smr

type outcome = {
  sim : Sim.t;
  mutual_exclusion_held : bool;
  total_rmrs : int;
  total_messages : int;
  max_rmrs_per_process : int;
  avg_rmrs_per_passage : float;
  passages : int;
}

let run (module L : Mutex_intf.LOCK) ~model_of ~n ~entries
    ?(policy = Schedule.Round_robin) ?(max_events = 5_000_000) () =
  let module E = Mutex_intf.Exerciser (L) in
  let ctx = Var.Ctx.create () in
  let ex = E.create ctx ~n in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(model_of layout) ~layout ~n in
  let pids = List.init n Fun.id in
  let remaining = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace remaining p entries) pids;
  let behavior _sim p : Schedule.action =
    match Hashtbl.find_opt remaining p with
    | Some k when k > 0 ->
      Hashtbl.replace remaining p (k - 1);
      Start ("cs", Program.map (fun () -> 0) (E.entry ex p))
    | Some _ | None -> Stop
  in
  let sim = Schedule.run ~max_events ~policy ~behavior ~pids sim in
  let passages = n * entries in
  let finished =
    List.for_all (fun p -> Sim.is_terminated sim p || Sim.is_idle sim p) pids
  in
  if not finished then
    failwith
      (Printf.sprintf "Lock_runner: %s did not complete under %s" L.name
         (Schedule.policy_name policy));
  let total_rmrs = Sim.total_rmrs sim in
  { sim;
    mutual_exclusion_held = E.counter_value ex sim = 2 * passages;
    total_rmrs;
    total_messages = Sim.total_messages sim;
    max_rmrs_per_process =
      List.fold_left (fun m p -> max m (Sim.rmrs sim p)) 0 pids;
    avg_rmrs_per_passage =
      (if passages = 0 then 0. else float_of_int total_rmrs /. float_of_int passages);
    passages }
