(* A shared registration queue from Fetch-And-Increment (paper, Sec. 7).

   Enqueueing draws a slot with F&I and publishes the caller's ID into it:
   O(1) RMRs per enqueue in both models.  A reader drains the prefix of
   slots up to the current tail, paying one RMR per slot — O(k) for k
   registrations, i.e. O(1) amortized over the processes that registered.
   This is the mechanism that lets the queue-based signaling solution escape
   the Section 6 lower bound: F&I is not among the primitives the bound
   covers, and an enqueued process is visible to every later F&I, so the
   adversary cannot erase it (replay diverges). *)

open Smr
open Program.Syntax

type t = {
  capacity : int;
  tail : int Var.t;
  slots : Op.pid option Var.vec;
      (* a vec, not a handle array: O(1) space so the queue instantiates at
         capacity 10^6 without a million slot records *)
}

let create ctx ~capacity =
  { capacity;
    tail = Var.Ctx.int ctx ~name:"queue.tail" ~home:Var.Shared 0;
    slots =
      Var.Ctx.pid_opt_vec ctx ~name:"queue.slot"
        ~home:(fun _ -> Var.Shared)
        capacity
        (fun _ -> None) }

let enqueue t p =
  let* slot = Program.fetch_and_increment t.tail in
  if slot >= t.capacity then
    invalid_arg "Fai_queue.enqueue: capacity exceeded"
  else Program.write (Var.vec_get t.slots slot) (Some p)

(* Visit every element in slots [from, tail), in order, and return the new
   cursor (the tail observed at the start).  A slot that has been claimed
   but not yet published is awaited — the claimant publishes it in its very
   next step, so the wait is bounded under any fair schedule. *)
let drain t ~from visit =
  let* upto = Program.read t.tail in
  let rec go i =
    if i >= upto then Program.return upto
    else
      let slot = Var.vec_get t.slots i in
      let* () = Program.await slot Option.is_some in
      let* elem = Program.read slot in
      match elem with
      | Some q ->
        let* () = visit q in
        go (i + 1)
      | None -> assert false (* awaited Some above *)
  in
  go from

let length t =
  let+ v = Program.read t.tail in
  min v t.capacity
