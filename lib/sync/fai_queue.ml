(* A shared registration queue from Fetch-And-Increment (paper, Sec. 7).

   Enqueueing draws a slot with F&I and publishes the caller's ID into it:
   O(1) RMRs per enqueue in both models.  A reader drains the prefix of
   slots up to the current tail, paying one RMR per slot — O(k) for k
   registrations, i.e. O(1) amortized over the processes that registered.
   This is the mechanism that lets the queue-based signaling solution escape
   the Section 6 lower bound: F&I is not among the primitives the bound
   covers, and an enqueued process is visible to every later F&I, so the
   adversary cannot erase it (replay diverges). *)

open Smr
open Program.Syntax

type t = {
  capacity : int;
  tail : int Var.t;
  slots : Op.pid option Var.vec;
      (* a vec, not a handle array: O(1) space so the queue instantiates at
         capacity 10^6 without a million slot records *)
}

let create ctx ~capacity =
  { capacity;
    tail = Var.Ctx.int ctx ~name:"queue.tail" ~home:Var.Shared 0;
    slots =
      Var.Ctx.pid_opt_vec ctx ~name:"queue.slot"
        ~home:(fun _ -> Var.Shared)
        capacity
        (fun _ -> None) }

let enqueue t p =
  let* slot = Program.fetch_and_increment t.tail in
  if slot >= t.capacity then
    invalid_arg "Fai_queue.enqueue: capacity exceeded"
  else Program.write (Var.vec_get t.slots slot) (Some p)

(* Visit every element in slots [from, tail), in order, and return the new
   cursor (the tail observed at the start).

   A slot that has been claimed but not yet published is awaited by
   default — the claimant publishes it in its very next step, so the wait
   is bounded under any fair schedule.  But a claimant that *crashes*
   between its F&I and its publish leaves a hole the await spins on
   forever.  [skip_unpublished = Some r] bounds the exposure: the drain
   re-reads an empty slot [r] times and then moves past it.  Whether
   skipping is safe is the caller's obligation; see {!Core.Dsm_queue} for
   the signaling argument (the skipped claimant either crashed or has not
   yet read the already-set global flag). *)
let drain ?skip_unpublished t ~from visit =
  let* upto = Program.read t.tail in
  let rec go i =
    if i >= upto then Program.return upto
    else
      let slot = Var.vec_get t.slots i in
      let visit_and_continue q =
        let* () = visit q in
        go (i + 1)
      in
      match skip_unpublished with
      | None ->
        let* () = Program.await slot Option.is_some in
        let* elem = Program.read slot in
        (match elem with
        | Some q -> visit_and_continue q
        | None -> assert false (* awaited Some above *))
      | Some retries ->
        let rec probe attempt =
          let* elem = Program.read slot in
          match elem with
          | Some q -> visit_and_continue q
          | None -> if attempt >= retries then go (i + 1) else probe (attempt + 1)
        in
        probe 0
  in
  go from

let length t =
  let+ v = Program.read t.tail in
  min v t.capacity
