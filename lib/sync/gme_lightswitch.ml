(* The "lightswitch" group mutual exclusion: each session is a team; the
   first member in acquires a main lock on the team's behalf, later
   members ride along, and the last member out releases it.

   Structurally different from [Gme_session_lock]: no parking array and no
   O(N) hand-off scan — same-team concurrency is unbounded and entry is
   O(lock) — at the price of no fairness across sessions (a busy team can
   starve the others, which GME's safety spec permits).  The main lock
   must be releasable by a process other than its acquirer, so it is a
   ticket lock (whose release is a plain counter increment) rather than
   MCS (whose release walks the holder's own queue node). *)

open Smr
open Program.Syntax

let name = "gme-lightswitch"

let primitives = [ Op.Reads_writes; Op.Fetch_and_phi ]

type t = {
  team_mutex : Mcs_lock.t array; (* per-session guard for its counter *)
  count : int Var.t array; (* members of session s currently inside *)
  main : Ticket_lock.t; (* inter-team exclusion; asymmetric release *)
}

let create ctx ~n ~sessions =
  { team_mutex = Array.init sessions (fun _ -> Mcs_lock.create ctx ~n);
    count =
      Var.Ctx.int_array ctx ~name:"ls.count" ~home:(fun _ -> Var.Shared) sessions
        (fun _ -> 0);
    main = Ticket_lock.create ctx ~n }

let enter t p ~session =
  let* () = Mcs_lock.acquire t.team_mutex.(session) p in
  let* c = Program.read t.count.(session) in
  let* () = Program.write t.count.(session) (c + 1) in
  (* First one in switches the light on: lock out every other session.
     Done while holding the team mutex, so teammates queue behind until
     the resource is really ours. *)
  let* () = Program.when_ (c = 0) (Ticket_lock.acquire t.main p) in
  Mcs_lock.release t.team_mutex.(session) p

let exit_session t p ~session =
  let* () = Mcs_lock.acquire t.team_mutex.(session) p in
  let* c = Program.read t.count.(session) in
  let* () = Program.write t.count.(session) (c - 1) in
  let* () = Program.when_ (c - 1 = 0) (Ticket_lock.release t.main p) in
  Mcs_lock.release t.team_mutex.(session) p

(* The GME interface needs exit without the session argument: remember it
   per process.  A separate module so the core algorithm above stays
   readable. *)
module As_gme : Gme_intf.GME = struct
  let name = name

  let primitives = primitives

  type nonrec t = { inner : t; my_session : int Var.t array }

  let create ctx ~n ~sessions =
    { inner = create ctx ~n ~sessions;
      my_session =
        Var.Ctx.int_array ctx ~name:"ls.mine" ~home:(fun i -> Var.Module i) n
          (fun _ -> -1) }

  let enter t p ~session =
    let* () = Program.write t.my_session.(p) session in
    enter t.inner p ~session

  let exit t p =
    let* session = Program.read t.my_session.(p) in
    exit_session t.inner p ~session
end
