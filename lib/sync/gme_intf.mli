(** Group mutual exclusion (GME): the problem behind the first known CC/DSM
    separation (Hadzilacos & Danek [8], discussed in the paper's Sections 1
    and 3).  Requests carry session IDs; two processes may occupy the
    resource concurrently iff they requested the same session.

    This module gives the interface, the safety checker, and the
    concurrency metric that distinguishes a real GME algorithm from the
    trivial mutual-exclusion reduction.  E10 records the measured landscape
    as related-work context; no claim is made of reproducing [8]'s tight
    bounds. *)

open Smr

module type GME = sig
  val name : string
  val primitives : Op.primitive_class list

  type t

  val create : Var.Ctx.ctx -> n:int -> sessions:int -> t

  val enter : t -> Op.pid -> session:int -> unit Program.t
  (** Returns once the caller may occupy the resource in [session]. *)

  val exit : t -> Op.pid -> unit Program.t
  (** Leave the resource; only legal inside it. *)
end

type gme = (module GME)

val enter_label : session:int -> string
val exit_label : string

val session_of_label : string -> int option
(** Recover the session from an [enter_label]; [None] for other labels. *)

(** One process's stay in the resource: from the completion of an enter to
    the start of its next exit ([None] = never exited). *)
type occupancy = {
  o_pid : Op.pid;
  o_session : int;
  o_from : int;
  o_until : int option;
}

val occupancies : History.call list -> occupancy list

val conflicts : History.call list -> (occupancy * occupancy) list
(** Pairs of overlapping occupancies with different sessions — GME safety
    violations. *)

val is_safe : History.call list -> bool

val max_concurrency : History.call list -> int
(** Peak simultaneous occupancy; 1 for the mutex reduction, > 1 for
    algorithms that actually admit same-session concurrency. *)
