(* The mutual-exclusion interface shared by every lock in this library.

   Mutual exclusion is the reference problem of the RMR literature the paper
   builds on (Sec. 3): the locks here reproduce the classical complexity
   landscape — TAS spinning is unbounded, Yang-Anderson is Θ(log N) with
   reads and writes, MCS and Anderson are O(1) with fetch-and-phi — and the
   MCS/Anderson machinery is reused by the queue-based signaling solution of
   Section 7. *)

open Smr

module type LOCK = sig
  val name : string

  val primitives : Op.primitive_class list
  (** The strongest primitive classes the lock's operations use. *)

  type t

  val create : Var.Ctx.ctx -> n:int -> t

  val acquire : t -> Op.pid -> unit Program.t

  val release : t -> Op.pid -> unit Program.t
  (** Only legal for the process currently holding the lock. *)
end

type lock = (module LOCK)

(* A critical-section exerciser used by tests and benchmarks: each process
   repeatedly acquires the lock, bumps a shared (unprotected) counter twice
   — the canonical race detector — and releases.  Any mutual-exclusion
   violation makes the final counter differ from 2 * entries. *)
module Exerciser (L : LOCK) = struct
  open Program.Syntax

  type t = { lock : L.t; counter : int Var.t; scratch : int Var.t }

  let create ctx ~n =
    { lock = L.create ctx ~n;
      counter = Var.Ctx.int ctx ~name:"cs_counter" ~home:Var.Shared 0;
      scratch = Var.Ctx.int ctx ~name:"cs_scratch" ~home:Var.Shared 0 }

  let entry t p =
    let* () = L.acquire t.lock p in
    let* v = Program.read t.counter in
    (* A deliberate read-modify-write gap: if two processes are ever in the
       critical section together, increments are lost. *)
    let* () = Program.write t.scratch p in
    let* () = Program.write t.counter (v + 1) in
    let* v2 = Program.read t.counter in
    let* () = Program.write t.counter (v2 + 1) in
    L.release t.lock p

  let counter_value t sim = Memory.get (Sim.memory sim) (Var.addr t.counter)
end
