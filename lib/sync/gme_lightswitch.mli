(** The "lightswitch" group mutual exclusion: the first member of a session
    locks out every other session, later members ride along, the last one
    out releases.  O(lock) entry, unbounded same-session concurrency, no
    cross-session fairness.  The inter-team lock must be releasable by a
    different process than its acquirer, hence the ticket lock inside. *)

open Smr

type t

val create : Var.Ctx.ctx -> n:int -> sessions:int -> t

val enter : t -> Op.pid -> session:int -> unit Program.t

val exit_session : t -> Op.pid -> session:int -> unit Program.t
(** Exit, with the session passed explicitly. *)

(** Packaged under the standard GME interface (the session is remembered
    in a per-process cell). *)
module As_gme : Gme_intf.GME
