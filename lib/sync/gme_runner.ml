(* Driver for GME experiments and tests: every process performs a number
   of enter/exit passages with a configurable session choice, under a
   chosen schedule and cost model; the call record yields both the safety
   verdict (different sessions never overlap) and the concurrency actually
   achieved. *)

open Smr

type outcome = {
  sim : Sim.t;
  safe : bool;
  max_concurrency : int;
  total_rmrs : int;
  avg_rmrs_per_passage : float;
  passages : int;
}

(* Default session choice: alternate so that neighbours collide — half the
   processes ask for each session at any time. *)
let default_session ~sessions p round = (p + round) mod sessions

let run (module G : Gme_intf.GME) ~model_of ~n ~entries ?(sessions = 2)
    ?(session_of = default_session ~sessions) ?(policy = Schedule.Round_robin)
    ?(max_events = 5_000_000) () =
  let ctx = Var.Ctx.create () in
  let g = G.create ctx ~n ~sessions in
  let scratch = Var.Ctx.int ctx ~name:"gme.scratch" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(model_of layout) ~layout ~n in
  let pids = List.init n Fun.id in
  (* Per-process phase machine: enter -> in-CS work -> exit, [entries]
     times.  The work is its own call so that occupancy intervals
     (enter-completion to exit-start) have width and overlaps are
     observable. *)
  let phase = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace phase p (entries, `Enter)) pids;
  let cs_body p =
    (* Wide enough that occupancies outlast a lock passage, so concurrent
       same-session occupancy is observable under step-fair schedules. *)
    Program.for_ 1 8 (fun _ ->
        Program.Syntax.(
          let* v = Program.read scratch in
          Program.write scratch (v + p - p)))
  in
  let behavior _sim p : Schedule.action =
    match Hashtbl.find_opt phase p with
    | Some (k, `Enter) when k > 0 ->
      let session = session_of p (entries - k) in
      Hashtbl.replace phase p (k, `Work);
      Start
        ( Gme_intf.enter_label ~session,
          Program.map (fun () -> 0) (G.enter g p ~session) )
    | Some (k, `Work) ->
      Hashtbl.replace phase p (k, `Exit);
      Start ("cs", Program.map (fun () -> 0) (cs_body p))
    | Some (k, `Exit) ->
      Hashtbl.replace phase p (k - 1, `Enter);
      Start (Gme_intf.exit_label, Program.map (fun () -> 0) (G.exit g p))
    | Some (_, `Enter) | None -> Stop
  in
  let sim = Schedule.run ~max_events ~policy ~behavior ~pids sim in
  let unfinished =
    List.filter (fun p -> not (Sim.is_terminated sim p)) pids
  in
  if unfinished <> [] then
    failwith
      (Printf.sprintf "Gme_runner: %s stuck with %d unfinished processes"
         G.name (List.length unfinished));
  let calls = Sim.calls sim in
  let passages = n * entries in
  let total_rmrs = Sim.total_rmrs sim in
  { sim;
    safe = Gme_intf.is_safe calls;
    max_concurrency = Gme_intf.max_concurrency calls;
    total_rmrs;
    avg_rmrs_per_passage =
      (if passages = 0 then 0. else float_of_int total_rmrs /. float_of_int passages);
    passages }
