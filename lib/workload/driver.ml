(* The open-system workload driver.

   A closed scenario (Scenario.run_phased) fixes the participants and runs
   a phase script; experiments over k = 10^6 processes need the opposite: an
   open system where waiters join according to an arrival process, perform
   a few Poll() calls, and leave — possibly crashing mid-call — while a
   signaler issues Signal() on its own cadence.  This driver runs that loop
   over {!Smr.Flat_sim} with streaming accounting only: per-call RMR and
   latency figures go into Welford accumulators ({!Stats}), the
   Specification 4.1 verdict is checked on the fly against the earliest
   signal extents, and nothing whose size grows with the run is ever
   materialized.

   Everything observable is a function of the spec (seed included): no wall
   clock, no [Random], no iteration over hash tables.  Wall-time figures
   (states/sec) are the caller's business — they must stay out of anything
   that is diffed for determinism. *)

open Smr

let poll_label = "poll"
let signal_label = "signal"

(* The driver's view of a signaling algorithm: fresh program values for one
   Poll() or Signal() by the given process.  Structural (not
   [Signaling.POLLING]) so this library depends only on [smr];
   [Core.Loadgen] adapts instantiated algorithms to it. *)
type instance = {
  w_name : string;
  w_poll : Op.pid -> Op.value Program.t;
  w_signal : Op.pid -> Op.value Program.t;
}

type spec = {
  seed : int;
  waiters : int; (* waiters that join over the whole run (pids 1..waiters) *)
  polls_per_waiter : int;
  signals : int; (* Signal() calls the signaler (pid 0) issues *)
  signal_every : int; (* ticks between consecutive signal begins *)
  arrivals : Arrivals.spec;
  crash_prob : float; (* chance a beginning poll will crash mid-call *)
  leave_early_prob : float; (* chance a waiter leaves between its polls *)
  fuel : int; (* step budget; exceeded -> [r_fuel_exhausted] *)
}

let default_spec =
  { seed = 1;
    waiters = 100;
    polls_per_waiter = 2;
    signals = 8;
    signal_every = 64;
    arrivals = Arrivals.Poisson 2.0;
    crash_prob = 0.0;
    leave_early_prob = 0.0;
    fuel = 100_000_000 }

type report = {
  r_algorithm : string;
  r_model : string;
  r_waiters : int; (* waiters that joined *)
  r_left : int; (* waiters that terminated cleanly *)
  r_left_early : int; (* of those, waiters that cut their poll budget short *)
  r_crashes : int; (* calls interrupted by a crash *)
  r_polls : int; (* completed Poll() calls *)
  r_polls_true : int;
  r_signals : int; (* completed Signal() calls *)
  r_clock : int;
  r_steps : int;
  r_total_rmrs : int;
  r_total_messages : int;
  r_signaler_rmrs : int;
  r_poll_rmrs : Stats.summary;
  r_signal_rmrs : Stats.summary;
  r_poll_latency : Stats.summary;
  r_signal_latency : Stats.summary;
  r_spec_ok : bool; (* streaming Specification 4.1 verdict *)
  r_fuel_exhausted : bool;
  r_bytes_per_process : int;
}

(* Amortized views the experiments chart. *)
let rmrs_per_signal r =
  if r.r_signals = 0 then 0.0
  else float_of_int r.r_signaler_rmrs /. float_of_int r.r_signals

let rmrs_per_op r =
  let ops = r.r_polls + r.r_signals in
  if ops = 0 then 0.0 else float_of_int r.r_total_rmrs /. float_of_int ops

let run ?ll_ways ?counters ?on_cache ~model ~layout ~n (inst : instance) spec =
  if spec.waiters < 0 || n < spec.waiters + 1 then
    invalid_arg "Driver.run: need n >= waiters + 1 (pid 0 is the signaler)";
  if spec.signals < 0 || spec.polls_per_waiter < 1 then
    invalid_arg "Driver.run: bad spec";
  let rng = Rng.create spec.seed in
  let arr = Arrivals.make spec.arrivals in
  (* --- streaming accumulators --- *)
  let polls = ref 0 and polls_true = ref 0 and signals_done = ref 0 in
  let crashes = ref 0 and left = ref 0 and left_early = ref 0 in
  let poll_rmrs = Stats.create () and signal_rmrs = Stats.create () in
  let poll_lat = Stats.create () and signal_lat = Stats.create () in
  let signaler_rmrs = ref 0 in
  (* Earliest signal extents, maintained on the fly: begins are recorded by
     the driver (it issues them, so every begin at or before the current
     tick is already in), finishes by the completion callback.  Logical
     time is monotonic, which makes the streaming check exact: when a poll
     completes, any signal not yet begun starts later than this poll
     finished, and any signal not yet completed finishes after this poll
     started. *)
  let earliest_sig_start = ref max_int in
  let earliest_sig_finish = ref max_int in
  let spec_ok = ref true in
  let on_complete ~pid ~label:_ ~seq:_ ~started ~finished ~crashed ~result
      ~rmrs ~steps:_ =
    if crashed then incr crashes
    else if pid = 0 then begin
      incr signals_done;
      signaler_rmrs := !signaler_rmrs + rmrs;
      if finished < !earliest_sig_finish then earliest_sig_finish := finished;
      Stats.add_int signal_rmrs rmrs;
      Stats.add_int signal_lat (finished - started)
    end
    else begin
      incr polls;
      if result = 1 then begin
        incr polls_true;
        if not (!earliest_sig_start < finished) then spec_ok := false
      end
      else if !earliest_sig_finish < started then spec_ok := false;
      Stats.add_int poll_rmrs rmrs;
      Stats.add_int poll_lat (finished - started)
    end
  in
  let flat =
    Flat_sim.create ?ll_ways ?counters ?on_cache ~on_complete ~model ~layout ~n
      ()
  in
  (* --- scheduler state --- *)
  let active = Array.make n 0 in
  let active_count = ref 0 in
  let push p =
    active.(!active_count) <- p;
    incr active_count
  in
  let remove i =
    decr active_count;
    active.(i) <- active.(!active_count)
  in
  let polls_left = Array.make n 0 in
  let crash_in = Array.make n (-1) in
  let arrived = ref 0 in
  let next_arrival = ref 0 in
  let signals_begun = ref 0 in
  let next_signal = ref 0 in
  let fuel_exhausted = ref false in
  let begin_poll p =
    (* 0 means "crash before the first step": a one-effect poll (a bare
       flag read) must be crashable too, and the sweep checks the counter
       before advancing. *)
    crash_in.(p) <-
      (if spec.crash_prob > 0.0 && Rng.bool rng spec.crash_prob then
         Rng.int rng 4
       else -1);
    Flat_sim.begin_call flat p ~label:poll_label (inst.w_poll p)
  in
  let running = ref true in
  while !running do
    (* 1. admit every arrival already due *)
    while !arrived < spec.waiters && !next_arrival <= Flat_sim.clock flat do
      let p = !arrived + 1 in
      incr arrived;
      polls_left.(p) <- spec.polls_per_waiter;
      begin_poll p;
      push p;
      next_arrival := !next_arrival + Arrivals.next_gap arr rng
    done;
    (* 2. start a signal when its cadence says so *)
    if
      !signals_begun < spec.signals
      && !next_signal <= Flat_sim.clock flat
      && Flat_sim.is_idle flat 0
    then begin
      incr signals_begun;
      let started = Flat_sim.clock flat in
      if started < !earliest_sig_start then earliest_sig_start := started;
      Flat_sim.begin_call flat 0 ~label:signal_label (inst.w_signal 0);
      next_signal := started + spec.signal_every;
      if Flat_sim.is_running flat 0 then push 0
    end;
    (* 3. one sweep: each active process takes one step *)
    if !active_count = 0 then begin
      (* Nobody can step.  Fast-forward to the next due event, or stop. *)
      let due = ref max_int in
      if !arrived < spec.waiters then due := min !due !next_arrival;
      if !signals_begun < spec.signals then due := min !due !next_signal;
      if !due = max_int then running := false
      else Flat_sim.skip_to flat !due
    end
    else begin
      let i = ref 0 in
      while !i < !active_count do
        let p = active.(!i) in
        if crash_in.(p) = 0 then begin
          Flat_sim.crash flat p;
          remove !i
        end
        else begin
          if crash_in.(p) > 0 then crash_in.(p) <- crash_in.(p) - 1;
          Flat_sim.advance flat p;
          if Flat_sim.is_running flat p then incr i
          else if p = 0 then (* signal completed; idle until next cadence *)
            remove !i
          else begin
            polls_left.(p) <- polls_left.(p) - 1;
            if
              polls_left.(p) > 0
              && spec.leave_early_prob > 0.0
              && Rng.bool rng spec.leave_early_prob
            then begin
              polls_left.(p) <- 0;
              incr left_early
            end;
            if polls_left.(p) > 0 then begin
              begin_poll p;
              (* polls always take at least one step, but stay robust to a
                 degenerate instance whose poll is a bare Return *)
              if Flat_sim.is_running flat p then incr i else remove !i
            end
            else begin
              Flat_sim.terminate flat p;
              incr left;
              remove !i
            end
          end
        end
      done
    end;
    if Flat_sim.total_steps flat > spec.fuel then begin
      fuel_exhausted := true;
      running := false
    end
  done;
  { r_algorithm = inst.w_name;
    r_model = Flat_sim.model_name flat;
    r_waiters = !arrived;
    r_left = !left;
    r_left_early = !left_early;
    r_crashes = !crashes;
    r_polls = !polls;
    r_polls_true = !polls_true;
    r_signals = !signals_done;
    r_clock = Flat_sim.clock flat;
    r_steps = Flat_sim.total_steps flat;
    r_total_rmrs = Flat_sim.total_rmrs flat;
    r_total_messages = Flat_sim.total_messages flat;
    r_signaler_rmrs = !signaler_rmrs;
    r_poll_rmrs = Stats.summary poll_rmrs;
    r_signal_rmrs = Stats.summary signal_rmrs;
    r_poll_latency = Stats.summary poll_lat;
    r_signal_latency = Stats.summary signal_lat;
    r_spec_ok = !spec_ok;
    r_fuel_exhausted = !fuel_exhausted;
    r_bytes_per_process = Flat_sim.bytes_per_process flat }
