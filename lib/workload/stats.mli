(** Streaming moments (Welford's algorithm).

    The open-system driver observes millions of per-call figures (RMRs,
    latencies) and never materializes their history: each observation
    updates count, mean, M2, min and max in O(1), and a {!summary} is
    snapshotted at the end.  Welford's update is numerically stable and —
    what actually matters here — deterministic: observations arrive in a
    seed-determined order, so the resulting floats reproduce bit-for-bit
    on a given platform. *)

type t

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit

val add_int : t -> int -> unit
(** [add] after [float_of_int] — the driver's tallies are ints. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population; 0 for fewer than two observations *)
  min : float;  (** 0 when empty *)
  max : float;
}

val summary : t -> summary
(** Snapshot the accumulated moments.  The accumulator is unaffected and
    may keep absorbing observations. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["n=… mean=… sd=… min=… max=…"] — the fixed rendering the load tables
    embed. *)
