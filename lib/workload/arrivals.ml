(* Arrival processes for the open-system driver: when does the next waiter
   join, in logical ticks.

   Three shapes cover the experiments' needs: [Uniform] (a fixed gap — the
   closed-loop baseline), [Poisson] (exponential gaps — the classic open
   system), and [Bursty] (trains of back-to-back arrivals separated by
   exponential lulls — the heavy-traffic shape that piles registrations up
   in front of a Signal, the worst case for drain-style signalers). *)

type spec =
  | Uniform of int (* fixed gap, >= 0 ticks *)
  | Poisson of float (* mean gap in ticks *)
  | Bursty of { burst : int; mean_lull : float }
      (* [burst] arrivals back-to-back, then an exponential lull *)

let spec_name = function
  | Uniform g -> Printf.sprintf "uniform%d" g
  | Poisson m -> Printf.sprintf "poisson%.0f" m
  | Bursty { burst; mean_lull } -> Printf.sprintf "burst%dx%.0f" burst mean_lull

type t = { spec : spec; mutable in_burst : int }

let make spec =
  (match spec with
  | Uniform g when g < 0 -> invalid_arg "Arrivals: negative uniform gap"
  | Poisson m when m <= 0.0 -> invalid_arg "Arrivals: Poisson mean must be positive"
  | Bursty { burst; mean_lull } when burst <= 0 || mean_lull <= 0.0 ->
    invalid_arg "Arrivals: bad burst shape"
  | _ -> ());
  { spec; in_burst = 0 }

(* Ticks until the next arrival after this one. *)
let next_gap t rng =
  match t.spec with
  | Uniform g -> g
  | Poisson mean -> int_of_float (Float.round (Rng.exponential rng ~mean))
  | Bursty { burst; mean_lull } ->
    t.in_burst <- t.in_burst + 1;
    if t.in_burst < burst then 0
    else begin
      t.in_burst <- 0;
      1 + int_of_float (Float.round (Rng.exponential rng ~mean:mean_lull))
    end
