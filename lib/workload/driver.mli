(** The open-system workload driver.

    A closed scenario fixes its participants up front; the E14/E15
    experiments need the opposite: an open system where waiters join
    according to an arrival process, perform a few Poll() calls and leave
    — possibly crashing mid-call — while a signaler (pid 0) issues
    Signal() on its own cadence.  The driver runs that loop over
    {!Smr.Flat_sim} with streaming accounting only: per-call RMR and
    latency figures feed Welford accumulators ({!Stats}), the
    Specification 4.1 verdict is checked on the fly against the earliest
    signal extents, and nothing whose size grows with the run is ever
    materialized — which is what lets k reach 10^6.

    Everything observable is a function of the spec (seed included): no
    wall clock, no [Random], no hash-table iteration. *)

type instance = {
  w_name : string;
  w_poll : Smr.Op.pid -> Smr.Op.value Smr.Program.t;
  w_signal : Smr.Op.pid -> Smr.Op.value Smr.Program.t;
}
(** The driver's view of a signaling algorithm: fresh program values for
    one Poll() or Signal() by the given process.  Structural (not a
    [Signaling.POLLING] instance) so this library depends only on [smr];
    [Core.Loadgen] adapts instantiated catalog algorithms to it. *)

type spec = {
  seed : int;
  waiters : int;  (** waiters that join over the run (pids 1..waiters) *)
  polls_per_waiter : int;
  signals : int;  (** Signal() calls the signaler issues *)
  signal_every : int;  (** ticks between consecutive signal begins *)
  arrivals : Arrivals.spec;
  crash_prob : float;  (** chance a beginning poll will crash mid-call *)
  leave_early_prob : float;  (** chance a waiter leaves between its polls *)
  fuel : int;  (** step budget; exceeded -> [r_fuel_exhausted] *)
}

val default_spec : spec
(** Seed 1, 100 waiters x 2 polls, 8 signals every 64 ticks, Poisson
    arrivals, no churn. *)

type report = {
  r_algorithm : string;
  r_model : string;
  r_waiters : int;  (** waiters that joined *)
  r_left : int;  (** waiters that terminated cleanly *)
  r_left_early : int;  (** of those, waiters that cut their budget short *)
  r_crashes : int;  (** calls interrupted by a crash *)
  r_polls : int;  (** completed Poll() calls *)
  r_polls_true : int;
  r_signals : int;  (** completed Signal() calls *)
  r_clock : int;
  r_steps : int;
  r_total_rmrs : int;
  r_total_messages : int;
  r_signaler_rmrs : int;
  r_poll_rmrs : Stats.summary;
  r_signal_rmrs : Stats.summary;
  r_poll_latency : Stats.summary;
  r_signal_latency : Stats.summary;
  r_spec_ok : bool;  (** streaming Specification 4.1 verdict *)
  r_fuel_exhausted : bool;
  r_bytes_per_process : int;
}

val rmrs_per_signal : report -> float
(** Signaler RMRs amortized over completed signals — the paper's
    separation figure (cc-flag holds 1.00; dsm-broadcast pays k). *)

val rmrs_per_op : report -> float
(** Total RMRs amortized over every completed call. *)

val run :
  ?ll_ways:int ->
  ?counters:Obs.Counters.t ->
  ?on_cache:Smr.Flat_sim.cache_cb ->
  model:Smr.Flat_sim.model_spec ->
  layout:Smr.Var.layout ->
  n:int ->
  instance ->
  spec ->
  report
(** Run the open system to completion (all waiters drained, all signals
    issued) or until [fuel] runs out.  [n] must cover the signaler plus
    every waiter ([n >= waiters + 1]); raises [Invalid_argument]
    otherwise.  [counters] and [on_cache] are handed to the underlying
    {!Smr.Flat_sim.create} unchanged — arm counter planes to get per-cell
    / per-pid / per-pc attribution of the run at no steady-state
    allocation (group assignment is the caller's; the profiler uses
    group 0 = signaler, group 1 = waiters). *)
