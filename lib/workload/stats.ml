(* Streaming moments (Welford's algorithm).

   The workload driver observes millions of per-call figures (RMRs,
   latencies) and must never materialize their history: each observation
   updates count, mean, M2, min and max in O(1), and a [summary] snapshot
   is taken at the end.  Welford's update is numerically stable, and —
   what actually matters here — deterministic: the driver feeds
   observations in a seed-determined order, so the resulting floats are
   reproducible bit-for-bit on a given platform. *)

type t = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mu in
  t.mu <- t.mu +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mu));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let add_int t x = add t (float_of_int x)

type summary = {
  count : int;
  mean : float;
  stddev : float; (* population; 0 for fewer than two observations *)
  min : float; (* 0 when empty *)
  max : float;
}

let summary t =
  if t.n = 0 then { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  else
    { count = t.n;
      mean = t.mu;
      stddev = (if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.n));
      min = t.lo;
      max = t.hi }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.0f max=%.0f" s.count s.mean s.stddev
    s.min s.max
