(** Arrival processes for the open-system driver: how many logical ticks
    until the next waiter joins.

    Three shapes cover the experiments' needs: a fixed gap (the
    closed-loop baseline), exponential gaps (the classic open system),
    and trains of back-to-back arrivals separated by exponential lulls —
    the heavy-traffic shape that piles registrations up in front of a
    Signal, the worst case for drain-style signalers. *)

type spec =
  | Uniform of int  (** fixed gap, >= 0 ticks *)
  | Poisson of float  (** mean gap in ticks *)
  | Bursty of { burst : int; mean_lull : float }
      (** [burst] arrivals back-to-back, then an exponential lull *)

val spec_name : spec -> string
(** Compact label for reports: ["uniform4"], ["poisson2"],
    ["burst8x100"]. *)

type t
(** A spec plus its (tiny) sampling state — where a burst stands. *)

val make : spec -> t
(** Validates the shape: raises [Invalid_argument] on a negative uniform
    gap, a non-positive Poisson mean, or a degenerate burst. *)

val next_gap : t -> Rng.t -> int
(** Ticks until the next arrival after this one.  Draws from [rng] only
    for the stochastic shapes, so interleaving arrival sampling with the
    driver's other draws stays seed-deterministic. *)
