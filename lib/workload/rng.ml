(* Seeded deterministic RNG: splitmix64.

   The workload driver's whole output must be a function of the seed — the
   CI diffs `separation load` byte-for-byte across runs and across [--jobs]
   values — so no [Random], no state hidden in a global, and no dependence
   on wall time anywhere.  Splitmix64 is the standard tiny generator for
   this: one 64-bit add per draw, full period, and good enough mixing for
   workload shaping (we are sampling arrival gaps, not doing cryptography). *)

type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  (* Pre-mix the (small) user seed so nearby seeds yield unrelated
     streams. *)
  { s = mix64 (Int64.of_int seed) }

let next t =
  t.s <- Int64.add t.s golden;
  mix64 t.s

(* Uniform in [0, bound); bound must be positive.  Modulo bias is
   irrelevant at workload bounds (<< 2^63). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

(* Uniform in [0, 1), 53 bits of precision. *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let bool t p = float t < p

(* Exponential with the given mean: inter-arrival gaps of a Poisson
   process. *)
let exponential t ~mean = -.mean *. log (1.0 -. float t)
