(** Seeded deterministic RNG (splitmix64).

    Everything the workload driver emits must be a function of its spec,
    seed included — CI diffs `separation load` byte-for-byte across runs
    and [--jobs] values — so randomness comes from this explicit,
    seed-created state and never from [Random] or wall time.  Splitmix64
    is one 64-bit add plus a mix per draw: full period and mixing good
    enough for workload shaping (arrival gaps and crash coins, not
    cryptography). *)

type t

val create : int -> t
(** A generator from a user seed.  The seed is pre-mixed, so nearby seeds
    (1, 2, 3, …) yield unrelated streams. *)

val next : t -> int64
(** The next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    unless [bound] is positive.  (Modulo bias is irrelevant at workload
    bounds, far below 2^63.) *)

val float : t -> float
(** Uniform in [\[0, 1)], 53 bits of precision. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p] — a biased coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean: the inter-arrival gaps
    of a Poisson process. *)
