(* Tests for the mechanized Section 6 adversary. *)

open Test_util
open Core

let test_broadcast_forced_linear () =
  let n = 32 in
  let r = Adversary.run (module Dsm_broadcast) ~n () in
  check_int "every waiter stabilizes" n r.Adversary.stable_waiters;
  check_true "part 1 history regular" r.Adversary.part1_regular;
  (match r.Adversary.chase with
  | Some c ->
    check_int "signaler forced to N-1 RMRs" (n - 1) c.Adversary.signaler_rmrs;
    check_int "every waiter erased" (n - 1) c.Adversary.chase_erased;
    check_int "no erasure blocked" 0 c.Adversary.chase_erase_failures
  | None -> Alcotest.fail "chase did not run");
  check_int "final history has one participant" 1 r.Adversary.participants;
  check_true "amortized cost is N-1"
    (r.Adversary.amortized >= float_of_int (n - 1) -. 0.01);
  check_false "algorithm is correct (no spec violation)" r.Adversary.spec_violated;
  check_false "no spurious true" r.Adversary.spurious_true

let test_broadcast_amortized_grows () =
  let am n = (Adversary.run (module Dsm_broadcast) ~n ()).Adversary.amortized in
  check_true "amortized scales with N" (am 64 > 3. *. am 16 -. 1.)

let test_queue_resists () =
  let n = 32 in
  let r = Adversary.run (module Dsm_queue) ~n () in
  (match r.Adversary.chase with
  | Some c ->
    check_true "erasures blocked by F&I visibility"
      (c.Adversary.chase_erase_failures > 0);
    check_int "no waiter erased during chase" 0 c.Adversary.chase_erased
  | None -> Alcotest.fail "chase did not run");
  check_true "participants stay Θ(N)" (r.Adversary.participants >= n - 1);
  check_true "amortized stays O(1)" (r.Adversary.amortized <= 8.);
  check_false "F&I chains make part 1 irregular" r.Adversary.part1_regular;
  check_false "no spec violation" r.Adversary.spec_violated

let test_queue_amortized_flat () =
  let am n = (Adversary.run (module Dsm_queue) ~n ()).Adversary.amortized in
  check_true "flat in N" (Float.abs (am 64 -. am 16) < 2.)

let test_fixed_signaler_rejected () =
  check_true "signaler-fixed algorithms are out of scope"
    (match Adversary.run (module Dsm_registration) ~n:8 () with
    | (_ : Adversary.result) -> false
    | exception Invalid_argument _ -> true)

let test_cc_flag_never_stabilizes_in_dsm () =
  (* Under DSM accounting, polling the shared Boolean is an RMR every time,
     so no waiter ever stabilizes; part 1 exhausts its round budget. *)
  let r = Adversary.run (module Cc_flag) ~n:8 ~max_rounds:6 () in
  check_true "no chase" (r.Adversary.chase = None);
  check_int "nobody stable" 0 r.Adversary.stable_waiters;
  check_int "rounds exhausted" 6 (List.length r.Adversary.rounds)

let test_rounds_respect_si_invariant () =
  (* Property 3 of Def. 6.9 on a CAS-based algorithm whose construction
     churns for many rounds. *)
  let r = Adversary.run (module Cas_register) ~n:24 ~max_rounds:12 () in
  List.iter
    (fun (s : Adversary.round_stat) ->
      check_true
        (Printf.sprintf "round %d: max active RMRs %d <= %d" s.Adversary.round
           s.Adversary.max_active_rmrs (s.Adversary.round + 1))
        (s.Adversary.max_active_rmrs <= s.Adversary.round + 1))
    r.Adversary.rounds

let test_broadcast_stabilizes_immediately () =
  let r = Adversary.run (module Dsm_broadcast) ~n:16 () in
  check_int "zero construction rounds needed" 0 (List.length r.Adversary.rounds);
  check_int "nobody rolled forward" 0 r.Adversary.finished

let test_transformed_cas_register_chased () =
  (* The Cor. 6.14 reduction output is reads/writes only, so the adversary
     applies; the construction at least runs and the result is coherent.
     (The lock structure means part 1 may churn; we only require sanity.) *)
  let r = Adversary.run (module Cas_register.Transformed) ~n:12 ~max_rounds:16 () in
  check_true "no spurious true" (not r.Adversary.spurious_true);
  check_false "no spec violation" r.Adversary.spec_violated;
  check_true "rounds recorded" (List.length r.Adversary.rounds >= 1)

let test_adversary_deterministic () =
  let r1 = Adversary.run (module Dsm_broadcast) ~n:16 () in
  let r2 = Adversary.run (module Dsm_broadcast) ~n:16 () in
  check_true "same totals"
    (r1.Adversary.total_rmrs = r2.Adversary.total_rmrs
    && r1.Adversary.participants = r2.Adversary.participants)

let prop_adversary_never_breaks_spec =
  (* Whatever the adversary does, it must never manufacture a spec
     violation against a correct algorithm. *)
  qcheck ~count:12 "adversary never frames a correct algorithm"
    (QCheck.int_range 4 40)
    (fun n ->
      let r1 = Adversary.run (module Dsm_broadcast) ~n () in
      let r2 = Adversary.run (module Dsm_queue) ~n () in
      (not r1.Adversary.spec_violated)
      && (not r2.Adversary.spec_violated)
      && (not r1.Adversary.spurious_true)
      && not r2.Adversary.spurious_true)

let suite =
  [ case "broadcast: forced to N-1 RMRs, 1 participant" test_broadcast_forced_linear;
    case "broadcast: amortized grows with N" test_broadcast_amortized_grows;
    case "queue: erasures blocked, amortized flat" test_queue_resists;
    case "queue: amortized flat across N" test_queue_amortized_flat;
    case "fixed-signaler algorithms rejected" test_fixed_signaler_rejected;
    case "cc-flag never stabilizes under DSM" test_cc_flag_never_stabilizes_in_dsm;
    case "rounds respect the S(i) RMR bound" test_rounds_respect_si_invariant;
    case "broadcast stabilizes in zero rounds" test_broadcast_stabilizes_immediately;
    case "transformed cas-register is chaseable" test_transformed_cas_register_chased;
    case "adversary is deterministic" test_adversary_deterministic;
    prop_adversary_never_breaks_spec ]
