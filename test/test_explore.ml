(* Exhaustive small-scope verification: every interleaving of small
   signaling configurations satisfies Specification 4.1, and the explorer
   itself counts interleavings correctly. *)

open Smr
open Test_util
open Core

(* The spec as an exploration property. *)
let spec_ok sim = Signaling.check_polling (Sim.calls sim) = []

(* Build scripts for an algorithm instance: each waiter performs up to
   [polls] Poll() calls, stopping early once one returns true (the
   Section 4 history restriction); the signaler performs one Signal(). *)
let scripts_for (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n ~waiters ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ])
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Signaling.poll_label, inst.Signaling.i_poll w) ))
         waiters
  in
  (layout, scripts)

let explore (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let layout, scripts = scripts_for (module A) ~n ~waiters ~polls in
  Explore.check ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
    ~property:spec_ok ()

let check_no_violation name (r : Explore.result) =
  check_true (name ^ ": no violation") (r.Explore.violation = None);
  check_true (name ^ ": explored something") (r.Explore.histories > 0)

let test_count_basics () =
  (* Two processes, one single-step call each: begin+step per process give
     2 moves each; interleavings of the 4 events with per-process order
     fixed = C(4,2) = 6. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let script p = Explore.of_list [ ("w", Program.step (Op.Write (Var.addr x, p))) ] in
  let n =
    Explore.count ~layout ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ()
  in
  check_int "six interleavings" 6 n

let test_count_respects_cap () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let script p =
    Explore.of_list
      (List.init 3 (fun i ->
           (Printf.sprintf "w%d" i, Program.step (Op.Write (Var.addr x, p)))))
  in
  let r =
    Explore.check ~max_histories:10 ~layout ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ~property:(fun _ -> true) ()
  in
  check_int "capped" 10 r.Explore.histories;
  check_false "reported incomplete" r.Explore.complete

let test_truncation_of_spin_loops () =
  (* A spinner that never sees its condition: every branch that keeps
     scheduling it truncates rather than hanging. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let spin = Program.map (fun () -> 0) (Program.await x (fun v -> v > 0)) in
  let r =
    Explore.check ~max_steps_per_history:20 ~layout
      ~model:(Cost_model.dsm layout) ~n:1
      ~scripts:[ (0, Explore.of_list [ ("spin", spin) ]) ]
      ~property:(fun _ -> true) ()
  in
  check_true "truncated branches reported" (r.Explore.truncated > 0);
  check_false "not complete" r.Explore.complete

let test_violation_reported () =
  (* A property that always fails is falsified on the first leaf. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let r =
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n:1
      ~scripts:
        [ (0, Explore.of_list [ ("w", Program.step (Op.Write (Var.addr x, 1))) ]) ]
      ~property:(fun _ -> false) ()
  in
  check_true "violation returned" (r.Explore.violation <> None)

(* --- exhaustive spec verification per algorithm --- *)

let test_cc_flag_exhaustive () =
  let r = explore (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "cc-flag" r;
  check_true "fully enumerated" r.Explore.complete

let test_broadcast_exhaustive () =
  let r = explore (module Dsm_broadcast) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "dsm-broadcast" r;
  check_true "fully enumerated" r.Explore.complete

let test_single_waiter_exhaustive () =
  let r = explore (module Dsm_single_waiter) ~n:2 ~waiters:[ 1 ] ~polls:3 in
  check_no_violation "dsm-single" r;
  check_true "fully enumerated" r.Explore.complete

let test_registration_exhaustive () =
  (* Fully enumerable at one waiter; at two waiters the state space tops
     the cap (~11M interleavings), so that run is a bounded search. *)
  let r = explore (module Dsm_registration) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "dsm-registration (n=2)" r;
  check_true "fully enumerated" r.Explore.complete;
  let r3 = explore (module Dsm_registration) ~n:3 ~waiters:[ 1; 2 ] ~polls:1 in
  check_no_violation "dsm-registration (n=3, capped)" r3

let test_queue_exhaustive () =
  (* The drain's await can spin on a claimed slot, so some branches
     truncate; spec safety must hold on every explored prefix. *)
  let r = explore (module Dsm_queue) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "dsm-queue" r

let test_cas_register_exhaustive () =
  let r = explore (module Cas_register) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "cas-register" r

let test_llsc_register_exhaustive () =
  let r = explore (module Llsc_register) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "llsc-register" r

let test_fixed_waiters_exhaustive () =
  let r = explore (module Dsm_fixed_waiters) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "dsm-fixed" r;
  check_true "fully enumerated" r.Explore.complete

let test_multi_signaler_exhaustive () =
  (* Two racing signalers (leader election inside Signal()) and one
     waiter: safety over the explored space; the losing signaler's remote
     spin truncates some branches. *)
  let module M = Multi_signaler.Make (Dsm_broadcast) in
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n:3 ~waiters:[ 2 ] ~signalers:[ 0; 1 ] in
  let inst = Signaling.instantiate (module M) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    [ (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ]);
      (1, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 1) ]);
      ( 2,
        Explore.repeat ~limit:2
          ~until:(fun r -> r = 1)
          (Signaling.poll_label, inst.Signaling.i_poll 2) ) ]
  in
  (* Bounded search: the remote spin makes the space unbounded, so the cap
     governs runtime.  10k deduplicated/reduced histories cover tens of
     thousands of distinct states — comparable behavioral coverage to the
     400k raw interleavings the naive checker's budget used to buy, at a
     fraction of the time. *)
  let r =
    Explore.check ~max_histories:10_000 ~layout
      ~model:(Cost_model.dsm layout) ~n:3 ~scripts ~property:spec_ok ()
  in
  check_no_violation "multi-signaler" r

(* --- reduction effectiveness, scale, and parallel determinism --- *)

let test_reduction_ratio () =
  (* The reference configuration of the rewrite: dedup + POR must visit at
     least 10x fewer states than the naive enumeration while returning the
     same verdict.  [split_depth:0] keeps both searches monolithic so the
     state counts are directly comparable (no per-task private tables). *)
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  let run ~dedup ~por =
    Explore.check ~dedup ~por ~split_depth:0 ~layout
      ~model:(Cost_model.dsm layout) ~n:3 ~scripts ~property:spec_ok ()
  in
  let reduced = run ~dedup:true ~por:true in
  let naive = run ~dedup:false ~por:false in
  check_no_violation "reduced" reduced;
  check_no_violation "naive" naive;
  check_true "reduced complete" reduced.Explore.complete;
  check_true "naive complete" naive.Explore.complete;
  check_true
    (Printf.sprintf "at least 10x fewer states (%d vs %d)"
       reduced.Explore.stats.Explore.states naive.Explore.stats.Explore.states)
    (naive.Explore.stats.Explore.states
    >= 10 * reduced.Explore.stats.Explore.states)

let test_previously_infeasible_scope () =
  (* Three waiters x two polls was far beyond the naive checker's budget
     (hundreds of millions of interleavings); with the reductions the space
     collapses to a few thousand histories and enumerates exhaustively. *)
  let r = explore (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2 in
  check_no_violation "cc-flag (3 waiters)" r;
  check_true "fully enumerated" r.Explore.complete

(* Everything jobs-invariant in a result: all counters plus the violation's
   recorded calls; only [stats.wall_s] may differ between runs. *)
let comparable (r : Explore.result) =
  ( r.Explore.histories,
    r.Explore.truncated,
    r.Explore.complete,
    Option.map Sim.calls r.Explore.violation,
    r.Explore.stats.Explore.states,
    r.Explore.stats.Explore.dedup_hits,
    r.Explore.stats.Explore.por_prunes,
    r.Explore.stats.Explore.tasks,
    r.Explore.stats.Explore.max_depth )

let test_jobs_deterministic () =
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2
  in
  let run jobs =
    Explore.check ~jobs ~layout ~model:(Cost_model.dsm layout) ~n:4 ~scripts
      ~property:spec_ok ()
  in
  let r1 = run 1 and r4 = run 4 in
  check_true "jobs=1 and jobs=4 agree on every field but wall time"
    (comparable r1 = comparable r4)

(* A deliberately broken algorithm: Signal() writes a decoy variable and
   never touches the flag Poll() reads, so every Poll() after a completed
   Signal() still returns false — the second clause of Specification 4.1.
   The checker must find this mutation, and must report the same violating
   history at every parallelism level. *)
module Broken_cc_flag = struct
  let name = "broken-cc-flag"
  let description = "mutation: Signal writes the wrong variable"
  let primitives = [ Op.Reads_writes ]
  let flexibility = Signaling.any_flexibility

  type t = { flag : bool Var.t; decoy : bool Var.t }

  let create ctx _cfg =
    { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false;
      decoy = Var.Ctx.bool ctx ~name:"decoy" ~home:Var.Shared false }

  let signal t _p = Program.write t.decoy true
  let poll t _p = Program.read t.flag
end

let test_mutation_caught () =
  let layout, scripts =
    scripts_for (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  let run jobs =
    Explore.check ~jobs ~layout ~model:(Cost_model.dsm layout) ~n:3 ~scripts
      ~property:spec_ok ()
  in
  let violating_calls jobs =
    match (run jobs).Explore.violation with
    | None -> Alcotest.failf "jobs=%d: mutation not caught" jobs
    | Some sim -> Sim.calls sim
  in
  let c1 = violating_calls 1 in
  check_true "violating history non-empty" (c1 <> []);
  check_true "jobs=2 reports the same violating history"
    (violating_calls 2 = c1);
  check_true "jobs=4 reports the same violating history"
    (violating_calls 4 = c1)

(* --- lean vs. full stepping --- *)

let test_lean_matches_full () =
  (* The explorer steps a lean machine by default; exploring with full
     history must change nothing observable: same verdict, same violating
     history (if any), and every jobs-invariant counter identical — the
     property-preservation argument of docs/MODEL.md, "Exploration fast
     path", checked differentially on reference configurations and on a
     mutant that violates the specification. *)
  let run_pair (module A : Signaling.POLLING) ~n ~waiters ~polls =
    let layout, scripts = scripts_for (module A) ~n ~waiters ~polls in
    let run lean =
      Explore.check ~lean ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
        ~property:spec_ok ()
    in
    (run true, run false)
  in
  let check_pair name (lean, full) =
    check_true (name ^ ": every field but wall time agrees")
      (comparable lean = comparable full)
  in
  check_pair "cc-flag" (run_pair (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2);
  check_pair "dsm-single"
    (run_pair (module Dsm_single_waiter) ~n:2 ~waiters:[ 1 ] ~polls:3);
  let lean, full = run_pair (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_pair "broken-cc-flag" (lean, full);
  match (lean.Explore.violation, full.Explore.violation) with
  | Some ls, Some fs ->
    check_true "lean violation machine keeps no step records"
      (Sim.steps ls = []);
    check_true "full violation machine keeps them" (Sim.steps fs <> [])
  | _ -> Alcotest.fail "mutation not caught on both sides"

let test_fast_property_agrees () =
  (* [Signaling.polling_ok] (the allocation-free form the CLI feeds the
     explorer) must be verdict-equivalent to the violation-listing checker
     on both a correct algorithm and a broken one. *)
  let run (module A : Signaling.POLLING) ~n ~waiters property =
    let layout, scripts = scripts_for (module A) ~n ~waiters ~polls:2 in
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n ~scripts ~property ()
  in
  let slow = run (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] spec_ok in
  let fast =
    run (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] Signaling.polling_ok
  in
  check_true "same violating history on the mutant"
    (Option.map Sim.calls slow.Explore.violation
    = Option.map Sim.calls fast.Explore.violation);
  check_true "violation actually found" (fast.Explore.violation <> None);
  let clean = run (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] Signaling.polling_ok in
  check_true "clean algorithm stays clean" (clean.Explore.violation = None)

(* --- budget determinism and fingerprint interning --- *)

let test_capped_jobs_deterministic () =
  (* A budget that stops the search mid-subtree: the shared lease pool is
     drained first-come-first-served, so reconciliation must restore the
     canonical accounting — every number identical at every jobs. *)
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2
  in
  let run jobs =
    Explore.check ~max_histories:500 ~jobs ~layout
      ~model:(Cost_model.dsm layout) ~n:4 ~scripts ~property:spec_ok ()
  in
  let r1 = run 1 in
  check_false "capped" r1.Explore.complete;
  check_int "stops exactly at the budget" 500 r1.Explore.histories;
  check_true "jobs=2 identical" (comparable (run 2) = comparable r1);
  check_true "jobs=4 identical" (comparable (run 4) = comparable r1)

let test_fp_intern_ids () =
  (* Two distinct keys forced onto one hash: distinct, stable, dense ids;
     the collision is counted; ids survive table growth. *)
  let t = Fp_intern.create ~equal:String.equal () in
  let id_a = Fp_intern.intern t ~hash:42 "a" in
  let id_b = Fp_intern.intern t ~hash:42 "b" in
  check_int "first id is 0" 0 id_a;
  check_int "colliding key gets the next id" 1 id_b;
  check_int "two distinct keys" 2 (Fp_intern.distinct t);
  check_int "one collision counted" 1 (Fp_intern.collisions t);
  check_int "re-interning is stable" id_a (Fp_intern.intern t ~hash:42 "a");
  check_int "for both keys" id_b (Fp_intern.intern t ~hash:42 "b");
  check_int "re-interning adds nothing" 2 (Fp_intern.distinct t);
  for i = 2 to 2000 do
    ignore (Fp_intern.intern t ~hash:(i * 7919) (string_of_int i))
  done;
  check_int "ids survive resizes" id_a (Fp_intern.intern t ~hash:42 "a");
  check_int "all keys kept" 2001 (Fp_intern.distinct t)

let suite =
  [ case "interleaving count" test_count_basics;
    case "history cap respected" test_count_respects_cap;
    case "spin loops truncate" test_truncation_of_spin_loops;
    case "violations reported" test_violation_reported;
    case "cc-flag: all interleavings safe" test_cc_flag_exhaustive;
    case "dsm-broadcast: all interleavings safe" test_broadcast_exhaustive;
    case "dsm-single: all interleavings safe" test_single_waiter_exhaustive;
    case "dsm-registration: all interleavings safe" test_registration_exhaustive;
    case "dsm-queue: explored interleavings safe" test_queue_exhaustive;
    case "cas-register: explored interleavings safe" test_cas_register_exhaustive;
    case "llsc-register: explored interleavings safe" test_llsc_register_exhaustive;
    case "dsm-fixed: all interleavings safe" test_fixed_waiters_exhaustive;
    case "multi-signaler: explored interleavings safe" test_multi_signaler_exhaustive;
    case "dedup+por: >=10x fewer states than naive" test_reduction_ratio;
    case "3 waiters x 2 polls enumerates exhaustively"
      test_previously_infeasible_scope;
    case "verdict identical across jobs" test_jobs_deterministic;
    case "mutation caught identically at every jobs" test_mutation_caught;
    case "lean stepping changes nothing observable" test_lean_matches_full;
    case "fast spec property agrees with the checker" test_fast_property_agrees;
    case "capped search identical at every jobs" test_capped_jobs_deterministic;
    case "fingerprint interning: dense stable ids" test_fp_intern_ids ]
