(* Exhaustive small-scope verification: every interleaving of small
   signaling configurations satisfies Specification 4.1, and the explorer
   itself counts interleavings correctly. *)

open Smr
open Test_util
open Core

(* The spec as an exploration property. *)
let spec_ok sim = Signaling.check_polling (Sim.calls sim) = []

(* Build scripts for an algorithm instance: each waiter performs up to
   [polls] Poll() calls, stopping early once one returns true (the
   Section 4 history restriction); the signaler performs one Signal(). *)
let scripts_for (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n ~waiters ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ])
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Signaling.poll_label, inst.Signaling.i_poll w) ))
         waiters
  in
  (layout, scripts)

let explore (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let layout, scripts = scripts_for (module A) ~n ~waiters ~polls in
  Explore.check ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
    ~property:spec_ok ()

let check_no_violation name (r : Explore.result) =
  check_true (name ^ ": no violation") (r.Explore.violation = None);
  check_true (name ^ ": explored something") (r.Explore.histories > 0)

let test_count_basics () =
  (* Two processes, one single-step call each: begin+step per process give
     2 moves each; interleavings of the 4 events with per-process order
     fixed = C(4,2) = 6. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let script p = Explore.of_list [ ("w", Program.step (Op.Write (Var.addr x, p))) ] in
  let n =
    Explore.count ~layout ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ()
  in
  check_int "six interleavings" 6 n

let test_count_respects_cap () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let script p =
    Explore.of_list
      (List.init 3 (fun i ->
           (Printf.sprintf "w%d" i, Program.step (Op.Write (Var.addr x, p)))))
  in
  let r =
    Explore.check ~max_histories:10 ~layout ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ~property:(fun _ -> true) ()
  in
  check_int "capped" 10 r.Explore.histories;
  check_false "reported incomplete" r.Explore.complete

let test_truncation_of_spin_loops () =
  (* A spinner that never sees its condition: every branch that keeps
     scheduling it truncates rather than hanging. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let spin = Program.map (fun () -> 0) (Program.await x (fun v -> v > 0)) in
  let r =
    Explore.check ~max_steps_per_history:20 ~layout
      ~model:(Cost_model.dsm layout) ~n:1
      ~scripts:[ (0, Explore.of_list [ ("spin", spin) ]) ]
      ~property:(fun _ -> true) ()
  in
  check_true "truncated branches reported" (r.Explore.truncated > 0);
  check_false "not complete" r.Explore.complete

let test_violation_reported () =
  (* A property that always fails is falsified on the first leaf. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let r =
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n:1
      ~scripts:
        [ (0, Explore.of_list [ ("w", Program.step (Op.Write (Var.addr x, 1))) ]) ]
      ~property:(fun _ -> false) ()
  in
  check_true "violation returned" (r.Explore.violation <> None)

(* --- exhaustive spec verification per algorithm --- *)

let test_cc_flag_exhaustive () =
  let r = explore (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "cc-flag" r;
  check_true "fully enumerated" r.Explore.complete

let test_broadcast_exhaustive () =
  let r = explore (module Dsm_broadcast) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "dsm-broadcast" r;
  check_true "fully enumerated" r.Explore.complete

let test_single_waiter_exhaustive () =
  let r = explore (module Dsm_single_waiter) ~n:2 ~waiters:[ 1 ] ~polls:3 in
  check_no_violation "dsm-single" r;
  check_true "fully enumerated" r.Explore.complete

let test_registration_exhaustive () =
  (* Fully enumerable at one waiter; at two waiters the state space tops
     the cap (~11M interleavings), so that run is a bounded search. *)
  let r = explore (module Dsm_registration) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "dsm-registration (n=2)" r;
  check_true "fully enumerated" r.Explore.complete;
  let r3 = explore (module Dsm_registration) ~n:3 ~waiters:[ 1; 2 ] ~polls:1 in
  check_no_violation "dsm-registration (n=3, capped)" r3

let test_queue_exhaustive () =
  (* The drain's await can spin on a claimed slot, so some branches
     truncate; spec safety must hold on every explored prefix. *)
  let r = explore (module Dsm_queue) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "dsm-queue" r

let test_cas_register_exhaustive () =
  let r = explore (module Cas_register) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "cas-register" r

let test_llsc_register_exhaustive () =
  let r = explore (module Llsc_register) ~n:2 ~waiters:[ 1 ] ~polls:2 in
  check_no_violation "llsc-register" r

let test_fixed_waiters_exhaustive () =
  let r = explore (module Dsm_fixed_waiters) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_no_violation "dsm-fixed" r;
  check_true "fully enumerated" r.Explore.complete

let test_multi_signaler_exhaustive () =
  (* Two racing signalers (leader election inside Signal()) and one
     waiter: safety over the explored space; the losing signaler's remote
     spin truncates some branches. *)
  let module M = Multi_signaler.Make (Dsm_broadcast) in
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n:3 ~waiters:[ 2 ] ~signalers:[ 0; 1 ] in
  let inst = Signaling.instantiate (module M) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    [ (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ]);
      (1, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 1) ]);
      ( 2,
        Explore.repeat ~limit:2
          ~until:(fun r -> r = 1)
          (Signaling.poll_label, inst.Signaling.i_poll 2) ) ]
  in
  (* Bounded search: the remote spin makes the space unbounded, so the cap
     governs runtime.  10k deduplicated/reduced histories cover tens of
     thousands of distinct states — comparable behavioral coverage to the
     400k raw interleavings the naive checker's budget used to buy, at a
     fraction of the time. *)
  let r =
    Explore.check ~max_histories:10_000 ~layout
      ~model:(Cost_model.dsm layout) ~n:3 ~scripts ~property:spec_ok ()
  in
  check_no_violation "multi-signaler" r

(* --- reduction effectiveness, scale, and parallel determinism --- *)

let test_reduction_ratio () =
  (* The reference configuration of the rewrite: dedup + POR must visit at
     least 10x fewer states than the naive enumeration while returning the
     same verdict.  [split_depth:0] keeps both searches monolithic so the
     state counts are directly comparable (no per-task private tables). *)
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  let run ~dedup ~por =
    Explore.check ~dedup ~por ~split_depth:0 ~layout
      ~model:(Cost_model.dsm layout) ~n:3 ~scripts ~property:spec_ok ()
  in
  let reduced = run ~dedup:true ~por:true in
  let naive = run ~dedup:false ~por:false in
  check_no_violation "reduced" reduced;
  check_no_violation "naive" naive;
  check_true "reduced complete" reduced.Explore.complete;
  check_true "naive complete" naive.Explore.complete;
  check_true
    (Printf.sprintf "at least 10x fewer states (%d vs %d)"
       reduced.Explore.stats.Explore.states naive.Explore.stats.Explore.states)
    (naive.Explore.stats.Explore.states
    >= 10 * reduced.Explore.stats.Explore.states)

let test_previously_infeasible_scope () =
  (* Three waiters x two polls was far beyond the naive checker's budget
     (hundreds of millions of interleavings); with the reductions the space
     collapses to a few thousand histories and enumerates exhaustively. *)
  let r = explore (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2 in
  check_no_violation "cc-flag (3 waiters)" r;
  check_true "fully enumerated" r.Explore.complete

(* Everything jobs-invariant in a result: all counters plus the violation's
   recorded calls; only [stats.wall_s] may differ between runs. *)
let comparable (r : Explore.result) =
  let s = r.Explore.stats in
  ( ( r.Explore.histories,
      r.Explore.truncated,
      r.Explore.complete,
      Option.map Sim.calls r.Explore.violation ),
    ( s.Explore.states,
      s.Explore.dedup_hits,
      s.Explore.por_prunes,
      s.Explore.tasks,
      s.Explore.max_depth,
      s.Explore.orbit_hits ),
    ( s.Explore.fp_distinct,
      s.Explore.fp_collisions,
      s.Explore.fp_resizes,
      s.Explore.fp_slots,
      s.Explore.spill_segments,
      s.Explore.spill_reloads ) )

(* Same, minus the two spill counters — the only fields on which two
   budgeted runs with different budgets may differ. *)
let comparable_no_spill (r : Explore.result) =
  let s = r.Explore.stats in
  ( ( r.Explore.histories,
      r.Explore.truncated,
      r.Explore.complete,
      Option.map Sim.calls r.Explore.violation ),
    ( s.Explore.states,
      s.Explore.dedup_hits,
      s.Explore.por_prunes,
      s.Explore.tasks,
      s.Explore.max_depth,
      s.Explore.orbit_hits ),
    (s.Explore.fp_distinct, s.Explore.fp_collisions, s.Explore.fp_resizes) )

(* The verdict and search counters only — what a budgeted (byte-keyed)
   run must share with an in-memory run, whose intern-table diagnostics
   (collisions, resizes, slots) describe a differently-hashed index. *)
let comparable_search (r : Explore.result) =
  let s = r.Explore.stats in
  ( ( r.Explore.histories,
      r.Explore.truncated,
      r.Explore.complete,
      Option.map Sim.calls r.Explore.violation ),
    ( s.Explore.states,
      s.Explore.dedup_hits,
      s.Explore.por_prunes,
      s.Explore.tasks,
      s.Explore.max_depth,
      s.Explore.orbit_hits,
      s.Explore.fp_distinct ) )

let test_jobs_deterministic () =
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2
  in
  let run jobs =
    Explore.check ~jobs ~layout ~model:(Cost_model.dsm layout) ~n:4 ~scripts
      ~property:spec_ok ()
  in
  let r1 = run 1 and r4 = run 4 in
  check_true "jobs=1 and jobs=4 agree on every field but wall time"
    (comparable r1 = comparable r4)

(* A deliberately broken algorithm: Signal() writes a decoy variable and
   never touches the flag Poll() reads, so every Poll() after a completed
   Signal() still returns false — the second clause of Specification 4.1.
   The checker must find this mutation, and must report the same violating
   history at every parallelism level. *)
module Broken_cc_flag = struct
  let name = "broken-cc-flag"
  let description = "mutation: Signal writes the wrong variable"
  let primitives = [ Op.Reads_writes ]
  let flexibility = Signaling.any_flexibility

  type t = { flag : bool Var.t; decoy : bool Var.t }

  let create ctx _cfg =
    { flag = Var.Ctx.bool ctx ~name:"B" ~home:Var.Shared false;
      decoy = Var.Ctx.bool ctx ~name:"decoy" ~home:Var.Shared false }

  let signal t _p = Program.write t.decoy true
  let poll t _p = Program.read t.flag
end

let test_mutation_caught () =
  let layout, scripts =
    scripts_for (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  let run jobs =
    Explore.check ~jobs ~layout ~model:(Cost_model.dsm layout) ~n:3 ~scripts
      ~property:spec_ok ()
  in
  let violating_calls jobs =
    match (run jobs).Explore.violation with
    | None -> Alcotest.failf "jobs=%d: mutation not caught" jobs
    | Some sim -> Sim.calls sim
  in
  let c1 = violating_calls 1 in
  check_true "violating history non-empty" (c1 <> []);
  check_true "jobs=2 reports the same violating history"
    (violating_calls 2 = c1);
  check_true "jobs=4 reports the same violating history"
    (violating_calls 4 = c1)

(* --- lean vs. full stepping --- *)

let test_lean_matches_full () =
  (* The explorer steps a lean machine by default; exploring with full
     history must change nothing observable: same verdict, same violating
     history (if any), and every jobs-invariant counter identical — the
     property-preservation argument of docs/MODEL.md, "Exploration fast
     path", checked differentially on reference configurations and on a
     mutant that violates the specification. *)
  let run_pair (module A : Signaling.POLLING) ~n ~waiters ~polls =
    let layout, scripts = scripts_for (module A) ~n ~waiters ~polls in
    let run lean =
      Explore.check ~lean ~layout ~model:(Cost_model.dsm layout) ~n ~scripts
        ~property:spec_ok ()
    in
    (run true, run false)
  in
  let check_pair name (lean, full) =
    check_true (name ^ ": every field but wall time agrees")
      (comparable lean = comparable full)
  in
  check_pair "cc-flag" (run_pair (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2);
  check_pair "dsm-single"
    (run_pair (module Dsm_single_waiter) ~n:2 ~waiters:[ 1 ] ~polls:3);
  let lean, full = run_pair (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_pair "broken-cc-flag" (lean, full);
  match (lean.Explore.violation, full.Explore.violation) with
  | Some ls, Some fs ->
    check_true "lean violation machine keeps no step records"
      (Sim.steps ls = []);
    check_true "full violation machine keeps them" (Sim.steps fs <> [])
  | _ -> Alcotest.fail "mutation not caught on both sides"

let test_fast_property_agrees () =
  (* [Signaling.polling_ok] (the allocation-free form the CLI feeds the
     explorer) must be verdict-equivalent to the violation-listing checker
     on both a correct algorithm and a broken one. *)
  let run (module A : Signaling.POLLING) ~n ~waiters property =
    let layout, scripts = scripts_for (module A) ~n ~waiters ~polls:2 in
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n ~scripts ~property ()
  in
  let slow = run (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] spec_ok in
  let fast =
    run (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] Signaling.polling_ok
  in
  check_true "same violating history on the mutant"
    (Option.map Sim.calls slow.Explore.violation
    = Option.map Sim.calls fast.Explore.violation);
  check_true "violation actually found" (fast.Explore.violation <> None);
  let clean = run (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] Signaling.polling_ok in
  check_true "clean algorithm stays clean" (clean.Explore.violation = None)

(* --- budget determinism and fingerprint interning --- *)

let test_capped_jobs_deterministic () =
  (* A budget that stops the search mid-subtree: the shared lease pool is
     drained first-come-first-served, so reconciliation must restore the
     canonical accounting — every number identical at every jobs. *)
  let layout, scripts =
    scripts_for (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2
  in
  let run jobs =
    Explore.check ~max_histories:500 ~jobs ~layout
      ~model:(Cost_model.dsm layout) ~n:4 ~scripts ~property:spec_ok ()
  in
  let r1 = run 1 in
  check_false "capped" r1.Explore.complete;
  check_int "stops exactly at the budget" 500 r1.Explore.histories;
  check_true "jobs=2 identical" (comparable (run 2) = comparable r1);
  check_true "jobs=4 identical" (comparable (run 4) = comparable r1)

let test_fp_intern_ids () =
  (* Two distinct keys forced onto one hash: distinct, stable, dense ids;
     the collision is counted; ids survive table growth. *)
  let t = Fp_intern.create ~equal:String.equal () in
  let id_a = Fp_intern.intern t ~hash:42 "a" in
  let id_b = Fp_intern.intern t ~hash:42 "b" in
  check_int "first id is 0" 0 id_a;
  check_int "colliding key gets the next id" 1 id_b;
  check_int "two distinct keys" 2 (Fp_intern.distinct t);
  check_int "one collision counted" 1 (Fp_intern.collisions t);
  check_int "re-interning is stable" id_a (Fp_intern.intern t ~hash:42 "a");
  check_int "for both keys" id_b (Fp_intern.intern t ~hash:42 "b");
  check_int "re-interning adds nothing" 2 (Fp_intern.distinct t);
  for i = 2 to 2000 do
    ignore (Fp_intern.intern t ~hash:(i * 7919) (string_of_int i))
  done;
  check_int "ids survive resizes" id_a (Fp_intern.intern t ~hash:42 "a");
  check_int "all keys kept" 2001 (Fp_intern.distinct t)

(* --- symmetry reduction --- *)

(* Like [scripts_for], but also detect the interchangeable waiters the
   way the CLI does: one representative Poll() per waiter, bisimulated
   over the lint's response domain. *)
let scripts_sym (module A : Signaling.POLLING) ~n ~waiters ~polls =
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n ~waiters ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    (0, Explore.of_list [ (Signaling.signal_label, inst.Signaling.i_signal 0) ])
    :: List.map
         (fun w ->
           ( w,
             Explore.repeat ~limit:polls
               ~until:(fun r -> r = 1)
               (Signaling.poll_label, inst.Signaling.i_poll w) ))
         waiters
  in
  let symmetry =
    Explore.detect_symmetry
      ~values:(Analysis.Lint.value_domain ~n ~layout)
      (List.map
         (fun w -> (w, (Signaling.poll_label, inst.Signaling.i_poll w)))
         waiters)
  in
  (layout, scripts, symmetry)

let test_detect_symmetry () =
  (* cc-flag waiters all read the one shared flag: interchangeable. *)
  let _, _, sym = scripts_sym (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  check_int "both cc-flag waiters detected" 2 (Sim.Pid_set.cardinal sym);
  check_true "pid 1 in the set" (Sim.Pid_set.mem 1 sym);
  check_true "pid 2 in the set" (Sim.Pid_set.mem 2 sym);
  (* dsm-broadcast waiters each read their own per-pid flag: the poll
     programs differ structurally (distinct addresses), so detection must
     decline rather than prune unsoundly. *)
  let _, _, bsym =
    scripts_sym (module Dsm_broadcast) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  check_int "per-pid variables decline detection" 0 (Sim.Pid_set.cardinal bsym);
  (* llsc-register polls issue Ll, which records its pid in the memory
     fingerprint: refused outright. *)
  let _, _, lsym =
    scripts_sym (module Llsc_register) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  check_int "Ll declines detection" 0 (Sim.Pid_set.cardinal lsym)

let test_canonicalization_laws () =
  let open Explore.Testing in
  let symmetry =
    List.fold_left
      (fun s p -> Sim.Pid_set.add p s)
      Sim.Pid_set.empty [ 1; 2; 3 ]
  in
  (* Signaler running, three waiters in pairwise-distinct control states
     (distinct permutation-invariant sort keys, so the canonical form is
     unique and the laws hold exactly, ties aside). *)
  let sample =
    [| running ~label:"Signal" ~seq:0 ~resps_rev:[ 1 ] ~snap:[| 0; 2; 1; 0 |];
       idle ~begun:2 ~last:(Some 1);
       running ~label:"Poll" ~seq:1 ~resps_rev:[ 0 ] ~snap:[| 1; 0; 1; 0 |];
       idle ~begun:0 ~last:None |]
  in
  let canon = fst (canonicalize ~symmetry sample) in
  (* Idempotence: the canonical form is its own representative, found by
     the allocation-free already-sorted fast path. *)
  let canon2, moved2 = canonicalize ~symmetry canon in
  check_true "canonicalize is idempotent" (equal canon canon2);
  check_false "second pass reports no relabeling" moved2;
  (* Invariance: every relabeling of the waiters canonicalizes to the
     same representative — the whole point of orbit reduction. *)
  let perms =
    [ [| 0; 1; 3; 2 |];
      [| 0; 2; 1; 3 |];
      [| 0; 2; 3; 1 |];
      [| 0; 3; 1; 2 |];
      [| 0; 3; 2; 1 |] ]
  in
  List.iteri
    (fun i perm ->
      let c = fst (canonicalize ~symmetry (relabel ~perm sample)) in
      check_true
        (Printf.sprintf "relabeling %d canonicalizes identically" i)
        (equal canon c))
    perms;
  (* Empty symmetry: canonicalization is the identity. *)
  let id, moved = canonicalize ~symmetry:Sim.Pid_set.empty sample in
  check_true "empty symmetry is the identity" (equal id sample);
  check_false "and reports no relabeling" moved

let test_canonicalization_pins_asymmetric_slots () =
  let open Explore.Testing in
  (* All-idle slots (no snapshots), so slot content is position-free and
     [slot_equal] across positions is meaningful.  Waiters 1 and 2 are
     symmetric and unsorted; signaler 0 and outsider 3 must stay put. *)
  let symmetry = Sim.Pid_set.add 1 (Sim.Pid_set.add 2 Sim.Pid_set.empty) in
  let s0 = idle ~begun:5 ~last:(Some 1)
  and w_hi = idle ~begun:2 ~last:(Some 0)
  and w_lo = idle ~begun:1 ~last:None
  and s3 = idle ~begun:7 ~last:(Some 0) in
  let sample = [| s0; w_hi; w_lo; s3 |] in
  let canon, moved = canonicalize ~symmetry sample in
  check_true "a relabeling was applied" moved;
  check_true "signaler slot never moves" (slot_equal canon.(0) s0);
  check_true "non-symmetric waiter slot never moves" (slot_equal canon.(3) s3);
  check_true "symmetric slots were reordered"
    (slot_equal canon.(1) w_lo && slot_equal canon.(2) w_hi);
  (* The flipped array is the same orbit: same canonical form. *)
  let flipped = [| s0; w_lo; w_hi; s3 |] in
  let canon', moved' = canonicalize ~symmetry flipped in
  check_true "orbit twin canonicalizes identically" (equal canon canon');
  check_false "the already-sorted twin needs no relabeling" moved'

let test_symmetry_preserves_verdict () =
  let layout, scripts, symmetry =
    scripts_sym (module Cc_flag) ~n:4 ~waiters:[ 1; 2; 3 ] ~polls:2
  in
  check_int "three interchangeable waiters" 3 (Sim.Pid_set.cardinal symmetry);
  let run symmetry =
    Explore.check ~symmetry ~layout ~model:(Cost_model.dsm layout) ~n:4 ~scripts
      ~property:spec_ok ()
  in
  let sym = run symmetry and plain = run Sim.Pid_set.empty in
  check_no_violation "with symmetry" sym;
  check_true "with symmetry: complete" sym.Explore.complete;
  check_no_violation "without" plain;
  check_true "without: complete" plain.Explore.complete;
  check_true "orbit merging happened" (sym.Explore.stats.Explore.orbit_hits > 0);
  check_int "no orbit hits without symmetry" 0
    plain.Explore.stats.Explore.orbit_hits;
  check_true
    (Printf.sprintf "fewer states under symmetry (%d vs %d)"
       sym.Explore.stats.Explore.states plain.Explore.stats.Explore.states)
    (sym.Explore.stats.Explore.states < plain.Explore.stats.Explore.states);
  check_true "fewer orbit representatives than raw states"
    (sym.Explore.stats.Explore.fp_distinct
    < plain.Explore.stats.Explore.fp_distinct)

let test_symmetry_mutation_caught () =
  (* The broken signaler's waiters still run identical Poll() programs, so
     symmetry reduction applies — and must not prune the violation away,
     at any parallelism level. *)
  let layout, scripts, symmetry =
    scripts_sym (module Broken_cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2
  in
  check_int "mutant waiters interchangeable" 2 (Sim.Pid_set.cardinal symmetry);
  let violating_calls jobs =
    let r =
      Explore.check ~jobs ~symmetry ~layout ~model:(Cost_model.dsm layout) ~n:3
        ~scripts ~property:spec_ok ()
    in
    match r.Explore.violation with
    | None -> Alcotest.failf "jobs=%d: mutation not caught under symmetry" jobs
    | Some sim -> Sim.calls sim
  in
  let c1 = violating_calls 1 in
  check_true "violating history non-empty" (c1 <> []);
  check_true "jobs=2 agrees" (violating_calls 2 = c1);
  check_true "jobs=4 agrees" (violating_calls 4 = c1)

let test_symmetry_jobs_deterministic () =
  let layout, scripts, symmetry =
    scripts_sym (module Cc_flag) ~n:5 ~waiters:[ 1; 2; 3; 4 ] ~polls:2
  in
  check_int "four interchangeable waiters" 4 (Sim.Pid_set.cardinal symmetry);
  let run jobs =
    Explore.check ~jobs ~symmetry ~layout ~model:(Cost_model.dsm layout) ~n:5
      ~scripts ~property:spec_ok ()
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check_true "4-waiter scope enumerates exhaustively" r1.Explore.complete;
  check_true "jobs=2 identical" (comparable r2 = comparable r1);
  check_true "jobs=4 identical" (comparable r4 = comparable r1)

(* --- spill-to-disk dedup storage --- *)

let spill_dir suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    ("separation-test-spill-" ^ suffix)

let test_spill_determinism () =
  let layout, scripts = scripts_for (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  let run ?jobs ~budget suffix =
    Explore.check ?jobs ~mem_budget:budget ~spill_dir:(spill_dir suffix)
      ~spill_seg_keys:16 ~layout ~model:(Cost_model.dsm layout) ~n:3 ~scripts
      ~property:spec_ok ()
  in
  (* A budget far below the table size forces real paging; a roomy budget
     never evicts.  Tiny segments (16 keys) make the paging heavy. *)
  let tight = run ~budget:4096 "tight" in
  let roomy = run ~budget:(64 * 1024 * 1024) "roomy" in
  check_no_violation "tight budget" tight;
  check_true "tight budget: complete" tight.Explore.complete;
  check_true "tight budget spilled segments"
    (tight.Explore.stats.Explore.spill_segments > 0);
  check_true "and reloaded some" (tight.Explore.stats.Explore.spill_reloads > 0);
  check_int "roomy budget never spilled" 0
    roomy.Explore.stats.Explore.spill_segments;
  check_true "identical runs modulo the spill counters"
    (comparable_no_spill tight = comparable_no_spill roomy);
  (* Byte-keyed dedup decisions match the in-memory structural ones. *)
  let mem =
    Explore.check ~layout ~model:(Cost_model.dsm layout) ~n:3 ~scripts
      ~property:spec_ok ()
  in
  check_int "in-memory run has no spill counters" 0
    (mem.Explore.stats.Explore.spill_segments
    + mem.Explore.stats.Explore.spill_reloads);
  check_true "spilled search equals the in-memory search"
    (comparable_search tight = comparable_search mem);
  (* Per-task spill directories keep paging deterministic across jobs —
     including the spill counters themselves. *)
  let tight2 = run ~jobs:2 ~budget:4096 "tight-j2" in
  check_true "spill counters identical at jobs=2"
    (comparable tight2 = comparable tight)

let test_spill_store_basics () =
  (* Unit-level: dense first-seen ids survive paging; reloads hand back
     exact key bytes and the latest payload. *)
  let dir = spill_dir "unit" in
  let t =
    Spill.create ~dir ~seg_keys:16 ~budget_bytes:1 ~chain_zero:0
      ~chain_bytes:(fun _ -> 8)
      ()
  in
  let key i = Printf.sprintf "key-%04d-%s" i (String.make 40 'x') in
  let ids = Array.init 200 (fun i -> Spill.intern t ~hash:(i * 7919) (key i)) in
  check_true "dense first-seen ids" (Array.to_list ids = List.init 200 Fun.id);
  check_true "eviction happened" (Spill.spilled t > 0);
  Spill.set_chain t 3 42;
  for i = 0 to 199 do
    check_int (Printf.sprintf "re-intern %d is stable" i) i
      (Spill.intern t ~hash:(i * 7919) (key i))
  done;
  check_int "re-interning adds nothing" 200 (Spill.distinct t);
  check_true "probe misses reloaded segments" (Spill.reloads t > 0);
  check_int "payload update survives paging" 42 (Spill.chain t 3);
  check_int "untouched payload keeps its zero" 0 (Spill.chain t 7);
  check_true "key bytes round-trip exactly" (String.equal (Spill.key t 3) (key 3));
  Spill.cleanup t;
  check_false "cleanup removes the spill directory" (Sys.file_exists dir)

(* --- stats plumbing --- *)

let test_fp_stats_exposed () =
  let r = explore (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  let s = r.Explore.stats in
  check_true "distinct keys counted" (s.Explore.fp_distinct > 0);
  check_true "a task allocated intern slots" (s.Explore.fp_slots > 0);
  check_true "intern load kept under 1/2"
    (2 * s.Explore.fp_distinct <= s.Explore.fp_slots);
  (* The commutative sum-hash trades mixing quality for O(1) incremental
     maintenance; collisions cost a confirming compare, never soundness.
     Structurally each newly interned key counts at most one. *)
  check_true "collision count within its structural bound"
    (s.Explore.fp_collisions < s.Explore.fp_distinct)

let test_wall_metric_single_source () =
  (* wall_s is computed once: the traced metric must carry the very value
     the result reports, not a second clock read. *)
  let layout, scripts = scripts_for (module Cc_flag) ~n:3 ~waiters:[ 1; 2 ] ~polls:2 in
  let tr = Obs.Trace.create () in
  let r =
    Explore.check ~tracer:tr ~layout ~model:(Cost_model.dsm layout) ~n:3 ~scripts
      ~property:spec_ok ()
  in
  let metric = Obs.Metrics.total (Obs.Trace.metrics tr) "explore_wall_seconds" in
  check_true "explore_wall_seconds equals stats.wall_s exactly"
    (metric = r.Explore.stats.Explore.wall_s)

let suite =
  [ case "interleaving count" test_count_basics;
    case "history cap respected" test_count_respects_cap;
    case "spin loops truncate" test_truncation_of_spin_loops;
    case "violations reported" test_violation_reported;
    case "cc-flag: all interleavings safe" test_cc_flag_exhaustive;
    case "dsm-broadcast: all interleavings safe" test_broadcast_exhaustive;
    case "dsm-single: all interleavings safe" test_single_waiter_exhaustive;
    case "dsm-registration: all interleavings safe" test_registration_exhaustive;
    case "dsm-queue: explored interleavings safe" test_queue_exhaustive;
    case "cas-register: explored interleavings safe" test_cas_register_exhaustive;
    case "llsc-register: explored interleavings safe" test_llsc_register_exhaustive;
    case "dsm-fixed: all interleavings safe" test_fixed_waiters_exhaustive;
    case "multi-signaler: explored interleavings safe" test_multi_signaler_exhaustive;
    case "dedup+por: >=10x fewer states than naive" test_reduction_ratio;
    case "3 waiters x 2 polls enumerates exhaustively"
      test_previously_infeasible_scope;
    case "verdict identical across jobs" test_jobs_deterministic;
    case "mutation caught identically at every jobs" test_mutation_caught;
    case "lean stepping changes nothing observable" test_lean_matches_full;
    case "fast spec property agrees with the checker" test_fast_property_agrees;
    case "capped search identical at every jobs" test_capped_jobs_deterministic;
    case "fingerprint interning: dense stable ids" test_fp_intern_ids;
    case "symmetry detection: sound accept and decline" test_detect_symmetry;
    case "canonicalization: idempotent, orbit-invariant"
      test_canonicalization_laws;
    case "canonicalization: pinned slots never move"
      test_canonicalization_pins_asymmetric_slots;
    case "symmetry preserves the verdict, shrinks the search"
      test_symmetry_preserves_verdict;
    case "mutation caught under symmetry at every jobs"
      test_symmetry_mutation_caught;
    case "4 waiters under symmetry: identical at every jobs"
      test_symmetry_jobs_deterministic;
    case "spilled search identical to in-memory" test_spill_determinism;
    case "spill store: ids and payloads survive paging" test_spill_store_basics;
    case "intern-table stats exposed and sane" test_fp_stats_exposed;
    case "wall-clock metric has a single source" test_wall_metric_single_source ]
