(* Golden-pinned ASCII rendering of Timeline: a small deterministic run
   and a crashed-call run exercising the '#' termination marker. *)

open Smr
open Test_util

let test_small_run_golden () =
  (* Two processes over one shared flag: p1 writes 5, then p0 reads it.
     Under DSM both touch a Shared-homed word, so both steps are RMRs. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let sim, _ =
    Sim.run_call sim 1 ~label:"set" (Program.step (Op.Write (Var.addr x, 5)))
  in
  let sim, v =
    Sim.run_call sim 0 ~label:"get" (Program.step (Op.Read (Var.addr x)))
  in
  check_int "p0 read p1's write" 5 v;
  let expected =
    "t        p0       p1       \n\
     0        .        (set     \n\
     1        .        w0*      \n\
     2        .        )=0      \n\
     3        (get     .        \n\
     4        r0*      .        \n\
     5        )=5      .        \n"
  in
  Alcotest.(check string) "small run renders to the golden grid" expected
    (Timeline.render sim)

let test_crash_marker_golden () =
  (* p0 crashes mid-call: the call cell stays open (no ')=') and the
     crash tick carries the '#' marker on its own row.  p1 terminates
     cleanly after finishing, which also renders '#'. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let sim =
    Sim.begin_call sim 0 ~label:"doomed"
      Program.Syntax.(
        let* _ = Program.read x in
        Program.step (Op.Read (Var.addr x)))
  in
  let sim = Sim.advance sim 0 in
  let sim = Sim.crash sim 0 in
  let sim, _ =
    Sim.run_call sim 1 ~label:"ok" (Program.step (Op.Read (Var.addr x)))
  in
  let sim = Sim.terminate sim 1 in
  let rendered = Timeline.render sim in
  let expected =
    "t        p0       p1       \n\
     0        (doomed  .        \n\
     1        r0*      .        \n\
     2        #        .        \n\
     3        .        (ok      \n\
     4        .        r0*      \n\
     5        .        )=0      \n\
     6        .        #        \n"
  in
  Alcotest.(check string) "crash and termination render as '#'" expected
    rendered;
  check_true "ends records the crash"
    (List.mem (0, 2, true) (Sim.ends sim));
  check_true "ends records the clean exit"
    (List.mem (1, 6, false) (Sim.ends sim))

let suite =
  [
    case "small run golden" test_small_run_golden;
    case "crash marker golden" test_crash_marker_golden;
  ]
