(* Correctness and complexity tests for every signaling algorithm, under
   deterministic and randomized schedules and under every cost model. *)

open Test_util
open Core

let algorithms = Experiment.polling_algorithms

let models : Scenario.model_tag list = [ `Dsm; `Cc_wt; `Cc_wb; `Cc_lfcu ]

let name_of (module A : Signaling.POLLING) = A.name

(* Every algorithm, every model, phased schedule: no violations, every
   waiter learns. *)
let phased_cases =
  List.concat_map
    (fun (module A : Signaling.POLLING) ->
      List.map
        (fun model ->
          case
            (Printf.sprintf "%s / %s: phased run is safe and live"
               (name_of (module A))
               (Scenario.model_tag_name model))
            (fun () ->
              let cfg = Experiment.config_for (module A) ~n:16 in
              let o = Scenario.run_phased (module A) ~model ~cfg () in
              check_int "no violations" 0 (List.length o.Scenario.violations);
              check_int "every waiter learned" 0 o.Scenario.unfinished_waiters))
        models)
    algorithms

(* Every algorithm under randomized schedules: Specification 4.1 holds. *)
let random_props =
  List.map
    (fun (module A : Signaling.POLLING) ->
      qcheck ~count:50
        (Printf.sprintf "%s: spec 4.1 under random schedules" (name_of (module A)))
        QCheck.(triple (int_range 2 12) (int_bound 100_000) (int_bound 120))
        (fun (n, seed, signal_after) ->
          let cfg = Experiment.config_for (module A) ~n in
          let o =
            Scenario.run_random (module A) ~model:`Dsm ~cfg ~seed ~signal_after ()
          in
          o.Scenario.violations = []))
    algorithms

(* Polls before any signal must return false; after a completed signal, a
   fresh poll must return true.  (Phased already checks this; here we pin
   the end-to-end outcome explicitly per algorithm at one size.) *)

(* --- per-algorithm complexity bounds (DSM unless noted) --- *)

let test_cc_flag_waiter_bound () =
  let cfg = Experiment.config_for (module Cc_flag) ~n:64 in
  let o = Scenario.run_phased (module Cc_flag) ~model:`Cc_wt ~cfg () in
  check_true "CC waiter O(1)" (o.Scenario.max_waiter_rmrs <= 2);
  check_true "CC signaler O(1)" (o.Scenario.signaler_rmrs <= 2)

let test_cc_flag_wait_free_bound () =
  (* Wait-freedom of the Sec. 5 solution: every Poll() is exactly one step,
     Signal() exactly one step, independent of schedule. *)
  let cfg = Experiment.config_for (module Cc_flag) ~n:8 in
  let o = Scenario.run_random (module Cc_flag) ~model:`Cc_wt ~cfg ~seed:5 () in
  List.iter
    (fun (c : Smr.History.call) ->
      check_true "single-step calls" (c.Smr.History.c_steps <= 1))
    (Smr.Sim.calls o.Scenario.sim)

let test_dsm_single_waiter_bound () =
  let cfg = Experiment.config_for (module Dsm_single_waiter) ~n:64 in
  let o = Scenario.run_phased (module Dsm_single_waiter) ~model:`Dsm ~cfg () in
  check_true "waiter O(1) worst-case" (o.Scenario.max_waiter_rmrs <= 3);
  check_true "signaler O(1) worst-case" (o.Scenario.signaler_rmrs <= 3)

let test_dsm_fixed_waiters_signaler_linear () =
  let run n =
    let cfg = Experiment.config_for (module Dsm_fixed_waiters) ~n in
    (Scenario.run_phased (module Dsm_fixed_waiters) ~model:`Dsm ~cfg ())
      .Scenario.signaler_rmrs
  in
  check_int "signaler pays W at 16" 15 (run 16);
  check_int "signaler pays W at 64" 63 (run 64)

let test_dsm_fixed_waiters_zero_waiter_rmrs () =
  let cfg = Experiment.config_for (module Dsm_fixed_waiters) ~n:32 in
  let o = Scenario.run_phased (module Dsm_fixed_waiters) ~model:`Dsm ~cfg () in
  check_int "waiters never leave their module" 0 o.Scenario.max_waiter_rmrs

let test_dsm_registration_amortized () =
  (* Partial participation: signaler cost tracks participants, not N. *)
  let cfg = Experiment.config_for (module Dsm_registration) ~n:128 in
  let o =
    Scenario.run_phased (module Dsm_registration) ~model:`Dsm ~cfg
      ~active_waiters:(List.init 4 (fun i -> i + 1)) ()
  in
  check_true
    (Printf.sprintf "signaler O(k): %d" o.Scenario.signaler_rmrs)
    (o.Scenario.signaler_rmrs <= 8);
  check_true "waiters O(1)" (o.Scenario.max_waiter_rmrs <= 3)

let test_dsm_queue_amortized_flat () =
  let amortized k =
    let cfg = Experiment.config_for (module Dsm_queue) ~n:128 in
    let o =
      Scenario.run_phased (module Dsm_queue) ~model:`Dsm ~cfg
        ~active_waiters:(List.init k (fun i -> i + 1)) ()
    in
    o.Scenario.amortized
  in
  check_true "flat amortized cost" (amortized 64 < amortized 2 +. 3.)

let test_dsm_fixed_terminating_blocks_without_participation () =
  let cfg = Experiment.config_for (module Dsm_fixed_terminating) ~n:16 in
  check_true "signal blocks awaiting absent waiters"
    (match
       Scenario.run_phased (module Dsm_fixed_terminating) ~model:`Dsm ~cfg
         ~active_waiters:[ 1 ] ()
     with
    | (_ : Scenario.outcome) -> false
    | exception Failure _ -> true)

let test_registration_race_window () =
  (* The race the paper calls out: a waiter registers while Signal() is in
     flight.  Force the interleaving: the signaler writes S, then the
     waiter's first poll runs to completion, then the signaler finishes.
     The waiter must learn (from S), and later polls stay true. *)
  let ctx = Smr.Var.Ctx.create () in
  let cfg = Signaling.config ~n:4 ~waiters:[ 1; 2 ] ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module Dsm_registration) ctx cfg in
  let layout = Smr.Var.Ctx.freeze ctx in
  let sim =
    Smr.Sim.create ~model:(Smr.Cost_model.dsm layout) ~layout ~n:4
  in
  let sim =
    Smr.Sim.begin_call sim 0 ~label:Signaling.signal_label
      (inst.Signaling.i_signal 0)
  in
  let sim = Smr.Sim.advance sim 0 (* S := true *) in
  let sim, r1 =
    Smr.Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
  in
  check_int "late registrant sees S" 1 r1;
  let sim = Smr.Sim.run_to_idle sim 0 in
  let _, r2 =
    Smr.Sim.run_call sim 2 ~label:Signaling.poll_label (inst.Signaling.i_poll 2)
  in
  check_int "post-signal first poll true" 1 r2

let test_queue_race_window () =
  (* Same race for the queue algorithm: enqueue while the drain is past the
     waiter's slot; the G check must save it. *)
  let ctx = Smr.Var.Ctx.create () in
  let cfg = Signaling.config ~n:4 ~waiters:[ 1; 2 ] ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module Dsm_queue) ctx cfg in
  let layout = Smr.Var.Ctx.freeze ctx in
  let sim = Smr.Sim.create ~model:(Smr.Cost_model.dsm layout) ~layout ~n:4 in
  let sim =
    Smr.Sim.begin_call sim 0 ~label:Signaling.signal_label
      (inst.Signaling.i_signal 0)
  in
  let sim = Smr.Sim.advance sim 0 (* G := true *) in
  let sim = Smr.Sim.advance sim 0 (* read tail = 0: drain sees nobody *) in
  let sim, r1 =
    Smr.Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
  in
  check_int "registrant missed by drain still sees G" 1 r1;
  let sim = Smr.Sim.run_to_idle sim 0 in
  check_true "signal completed" (Smr.Sim.is_idle sim 0)

let test_single_waiter_handshake_race () =
  (* W/S handshake: the waiter announces after the signaler read W = NIL.
     Forced interleaving; the waiter must still learn via S. *)
  let ctx = Smr.Var.Ctx.create () in
  let cfg = Signaling.config ~n:4 ~waiters:[ 1 ] ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module Dsm_single_waiter) ctx cfg in
  let layout = Smr.Var.Ctx.freeze ctx in
  let sim = Smr.Sim.create ~model:(Smr.Cost_model.dsm layout) ~layout ~n:4 in
  (* Signal runs completely before the waiter's first poll: S set, W NIL. *)
  let sim, _ =
    Smr.Sim.run_call sim 0 ~label:Signaling.signal_label (inst.Signaling.i_signal 0)
  in
  let _, r =
    Smr.Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
  in
  check_int "waiter reads S on first poll" 1 r

let test_signaler_may_also_wait () =
  (* Section 4: "Alternately, we can require that waiters and signalers be
     distinct.  This has no effect on the complexity bounds" — the
     algorithms must be safe when the signaler also polls. *)
  List.iter
    (fun (module A : Signaling.POLLING) ->
      let cfg =
        Signaling.config ~n:6 ~waiters:[ 0; 1; 2; 3; 4; 5 ] ~signalers:[ 0 ]
      in
      let o = Scenario.run_random (module A) ~model:`Dsm ~cfg ~seed:31 () in
      check_int
        (Printf.sprintf "%s: no violations with a polling signaler"
           (name_of (module A)))
        0
        (List.length o.Scenario.violations))
    [ (module Cc_flag : Signaling.POLLING); (module Dsm_broadcast);
      (module Dsm_queue); (module Cas_register) ]

(* Section 7's simplified lower bound, as an invariant: once waiters have
   stabilized (their polls are local), a completing Signal() must write
   into every stabilized waiter's memory module — otherwise that waiter's
   next poll would wrongly return false.  Ω(W) RMRs for the signaler is a
   corollary.  Checked for every algorithm whose waiters stabilize. *)
let stabilizing_algorithms : (module Signaling.POLLING) list =
  [ (module Dsm_broadcast); (module Dsm_fixed_waiters);
    (module Dsm_fixed_terminating); (module Dsm_registration);
    (module Dsm_queue); (module Cas_register); (module Llsc_register) ]

let omega_w_cases =
  List.map
    (fun (module A : Signaling.POLLING) ->
      case
        (Printf.sprintf "%s: signal writes every stabilized waiter's module"
           (name_of (module A)))
        (fun () ->
          let n = 12 in
          let cfg = Experiment.config_for (module A) ~n in
          let o = Scenario.run_phased (module A) ~model:`Dsm ~cfg ~pre_polls:3 () in
          let steps = Smr.Sim.steps o.Scenario.sim in
          let signal_start =
            List.find_map
              (fun (c : Smr.History.call) ->
                if c.Smr.History.c_label = Signaling.signal_label then
                  Some c.Smr.History.c_started
                else None)
              (Smr.Sim.calls o.Scenario.sim)
            |> Option.get
          in
          List.iter
            (fun w ->
              check_true
                (Printf.sprintf "signaler wrote p%d's module" w)
                (List.exists
                   (fun (s : Smr.History.step) ->
                     s.Smr.History.pid = 0 && s.Smr.History.wrote
                     && s.Smr.History.time > signal_start
                     && s.Smr.History.home = Smr.Var.Module w)
                   steps))
            cfg.Signaling.waiters))
    stabilizing_algorithms

(* --- blocking semantics --- *)

let blocking_algorithms : (module Signaling.BLOCKING) list =
  [ (module Dsm_leader);
    (module Signaling.Blocking_of_polling (Cc_flag));
    (module Signaling.Blocking_of_polling (Dsm_queue));
    (module Signaling.Blocking_of_polling (Dsm_registration)) ]

let blocking_cases =
  List.map
    (fun (module B : Signaling.BLOCKING) ->
      case
        (Printf.sprintf "%s: blocking run is safe and live" B.name)
        (fun () ->
          let cfg = default_cfg ~n:10 in
          let o = Scenario.run_blocking (module B) ~model:`Dsm ~cfg ~seed:17 () in
          check_int "no violations" 0 (List.length o.Scenario.violations);
          check_int "every wait returned" 0 o.Scenario.unfinished_waiters))
    blocking_algorithms

let prop_blocking_random =
  List.map
    (fun (module B : Signaling.BLOCKING) ->
      qcheck ~count:25
        (Printf.sprintf "%s: blocking spec under random schedules" B.name)
        QCheck.(pair (int_range 2 8) (int_bound 50_000))
        (fun (n, seed) ->
          let cfg = default_cfg ~n in
          let o = Scenario.run_blocking (module B) ~model:`Dsm ~cfg ~seed () in
          o.Scenario.violations = [] && o.Scenario.unfinished_waiters = 0))
    blocking_algorithms

let test_dsm_leader_follower_cost () =
  let cfg = default_cfg ~n:16 in
  let o = Scenario.run_blocking (module Dsm_leader) ~model:`Dsm ~cfg ~seed:23 () in
  (* All waiters but the leader pay O(1): election TAS + nothing else
     remote (their led flag is local). *)
  let costs =
    List.map (fun w -> Smr.Sim.rmrs o.Scenario.sim w) cfg.Signaling.waiters
  in
  let cheap = List.filter (fun c -> c <= 3) costs in
  check_true
    (Printf.sprintf "at most one expensive waiter (the leader); costs=%s"
       (String.concat "," (List.map string_of_int costs)))
    (List.length cheap >= List.length costs - 1)

(* --- many signalers --- *)

module Multi_queue = Multi_signaler.Make (Dsm_queue)

let test_multi_signaler_safe () =
  let n = 12 in
  let cfg =
    Signaling.config ~n
      ~waiters:(List.init (n - 3) (fun i -> i + 3))
      ~signalers:[ 0; 1; 2 ]
  in
  let o = Scenario.run_phased (module Multi_queue) ~model:`Dsm ~cfg () in
  check_int "no violations" 0 (List.length o.Scenario.violations);
  check_int "all waiters learn" 0 o.Scenario.unfinished_waiters

let prop_multi_signaler_random =
  qcheck ~count:30 "multi-signaler: spec under random schedules"
    QCheck.(pair (int_range 4 10) (int_bound 50_000))
    (fun (n, seed) ->
      let cfg =
        Signaling.config ~n
          ~waiters:(List.init (n - 2) (fun i -> i + 2))
          ~signalers:[ 0; 1 ]
      in
      let o = Scenario.run_random (module Multi_queue) ~model:`Dsm ~cfg ~seed () in
      o.Scenario.violations = [])

let test_transformed_has_no_cas () =
  let cfg = Experiment.config_for (module Cas_register.Transformed) ~n:8 in
  let o = Scenario.run_phased (module Cas_register.Transformed) ~model:`Dsm ~cfg () in
  check_true "reads/writes only"
    (List.for_all
       (fun (s : Smr.History.step) ->
         match Smr.Op.primitive_class s.Smr.History.inv with
         | Smr.Op.Reads_writes -> true
         | Smr.Op.Comparison | Smr.Op.Fetch_and_phi -> false)
       (Smr.Sim.steps o.Scenario.sim))

let suite =
  phased_cases
  @ random_props
  @ [ case "cc-flag: O(1) RMRs in CC" test_cc_flag_waiter_bound;
      case "cc-flag: wait-free (1-step calls)" test_cc_flag_wait_free_bound;
      case "dsm-single: O(1) worst-case" test_dsm_single_waiter_bound;
      case "dsm-fixed: signaler pays W" test_dsm_fixed_waiters_signaler_linear;
      case "dsm-fixed: waiters pay 0" test_dsm_fixed_waiters_zero_waiter_rmrs;
      case "dsm-registration: O(k) signaler" test_dsm_registration_amortized;
      case "dsm-queue: amortized flat" test_dsm_queue_amortized_flat;
      case "dsm-fixed-term: blocks without participation"
        test_dsm_fixed_terminating_blocks_without_participation;
      case "registration race window" test_registration_race_window;
      case "queue race window" test_queue_race_window;
      case "single-waiter handshake race" test_single_waiter_handshake_race;
      case "multi-signaler safe" test_multi_signaler_safe;
      prop_multi_signaler_random;
      case "transformed algorithm is reads/writes only" test_transformed_has_no_cas;
      case "dsm-leader: followers pay O(1)" test_dsm_leader_follower_cost ]
    @ [ case "signaler may also be a waiter" test_signaler_may_also_wait ]
    @ omega_w_cases
    @ blocking_cases
    @ prop_blocking_random
