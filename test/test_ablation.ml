(* Ablations of the adversary's design choices (DESIGN.md decisions 4 and
   6): the stability horizon and the Turán independent-set step. *)

open Smr
open Test_util
open Core

(* A read/write algorithm whose waiters genuinely conflict in part 1: a
   waiter's first poll marks its neighbour's module (a "touch" edge in the
   conflict graph) before settling into local polling.  Signal() still
   broadcasts to everyone, so the algorithm is correct for the hard
   variant. *)
module Neighbor_mark : Signaling.POLLING = struct
  let name = "neighbor-mark"

  let description =
    "broadcast signaling whose registration touches the neighbour's module \
     — manufactures part-1 conflict edges for the ablation tests"

  let primitives = [ Op.Reads_writes ]

  let flexibility = Signaling.any_flexibility

  type t = {
    n : int;
    mark : bool Var.t array; (* mark.(i) homed at module i *)
    v : bool Var.t array;
    registered : bool Var.t array;
  }

  let create ctx (cfg : Signaling.config) =
    let n = cfg.Signaling.n in
    { n;
      mark =
        Var.Ctx.bool_array ctx ~name:"mark" ~home:(fun i -> Var.Module i) n
          (fun _ -> false);
      v =
        Var.Ctx.bool_array ctx ~name:"V" ~home:(fun i -> Var.Module i) n
          (fun _ -> false);
      registered =
        Var.Ctx.bool_array ctx ~name:"registered"
          ~home:(fun i -> Var.Module i)
          n
          (fun _ -> false) }

  let poll t p =
    let open Program.Syntax in
    let* already = Program.read t.registered.(p) in
    if already then Program.read t.v.(p)
    else
      let* () = Program.write t.registered.(p) true in
      let* () = Program.write t.mark.((p + 1) mod t.n) true in
      Program.read t.v.(p)

  let signal t _p =
    Program.seq
      (List.init t.n (fun j -> Program.write t.v.(j) true))
end

let test_neighbor_mark_is_correct () =
  let cfg = Experiment.config_for (module Neighbor_mark) ~n:12 in
  let o = Scenario.run_phased (module Neighbor_mark) ~model:`Dsm ~cfg () in
  check_int "no violations" 0 (List.length o.Scenario.violations);
  check_int "all learn" 0 o.Scenario.unfinished_waiters

let test_turan_keeps_more_waiters () =
  (* The independent-set step must preserve strictly more stable waiters
     than erasing every conflict participant. *)
  let n = 32 in
  let stable resolution =
    (Adversary.run (module Neighbor_mark) ~n ~resolution ()).Adversary.stable_waiters
  in
  let turan = stable `Independent_set and blunt = stable `Erase_all in
  check_true
    (Printf.sprintf "turan %d > erase-all %d" turan blunt)
    (turan > blunt);
  check_true "turan keeps a constant fraction" (turan >= n / 3)

let test_both_resolutions_force_the_bound () =
  (* Either way, the surviving stable waiters all get goose-chased: the
     amortized cost is the stable count over O(1) participants. *)
  List.iter
    (fun resolution ->
      let r = Adversary.run (module Neighbor_mark) ~n:24 ~resolution () in
      (match r.Adversary.chase with
      | Some c ->
        check_true "chase forced at least the stable count"
          (c.Adversary.signaler_rmrs >= r.Adversary.stable_waiters)
      | None -> Alcotest.fail "no chase");
      check_false "no spec violation" r.Adversary.spec_violated)
    [ `Independent_set; `Erase_all ]

let test_stability_horizon_insensitive () =
  (* DESIGN.md decision 4: for the shipped algorithms, the Def. 6.8
     horizon does not change the adversary's outcome. *)
  let outcome polls =
    let r = Adversary.run (module Dsm_broadcast) ~n:24 ~stability_polls:polls () in
    (r.Adversary.participants, r.Adversary.total_rmrs, r.Adversary.stable_waiters)
  in
  let base = outcome 1 in
  check_true "horizon 3 same" (outcome 3 = base);
  check_true "horizon 6 same" (outcome 6 = base)

let test_timeline_renders () =
  (* The timeline renderer: sanity over a small run. *)
  let cfg = Experiment.config_for (module Cc_flag) ~n:3 in
  let o = Scenario.run_phased (module Cc_flag) ~model:`Dsm ~cfg () in
  let s = Timeline.render o.Scenario.sim in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec at i = i + nl <= hl && (String.sub s i nl = needle || at (i + 1)) in
    at 0
  in
  check_true "mentions every process"
    (List.for_all contains [ "p0"; "p1"; "p2" ]);
  check_true "shows a call begin" (contains "(poll");
  check_true "shows an RMR step" (contains "*")

let suite =
  [ case "neighbor-mark is a correct algorithm" test_neighbor_mark_is_correct;
    case "turan step keeps more waiters than erase-all" test_turan_keeps_more_waiters;
    case "both resolutions force the bound" test_both_resolutions_force_the_bound;
    case "stability horizon insensitive" test_stability_horizon_insensitive;
    case "timeline renders" test_timeline_renders ]
