(* Tests for the non-lock substrates: the F&I queue, leader election, and
   the Local_cas transformation of Corollary 6.14. *)

open Smr
open Program.Syntax
open Test_util

(* --- Fai_queue --- *)

let queue_machine ~n ~capacity =
  let ctx = Var.Ctx.create () in
  let q = Sync.Fai_queue.create ctx ~capacity in
  let layout = Var.Ctx.freeze ctx in
  (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n, q)

let drain_all q =
  let acc = ref [] in
  let* _ =
    Sync.Fai_queue.drain q ~from:0 (fun p ->
        acc := p :: !acc;
        Program.return ())
  in
  Program.return !acc

let test_queue_fifo () =
  let sim, q = queue_machine ~n:4 ~capacity:8 in
  let sim =
    List.fold_left
      (fun sim p -> run_unit ~p sim (Sync.Fai_queue.enqueue q p))
      sim [ 2; 0; 3 ]
  in
  let collected = ref [] in
  let prog =
    Program.bind (drain_all q) (fun l ->
        collected := l;
        Program.return 0)
  in
  let _sim, _ = run ~p:1 sim prog in
  check_true "FIFO order" (List.rev !collected = [ 2; 0; 3 ])

let test_queue_enqueue_cost () =
  let sim, q = queue_machine ~n:4 ~capacity:8 in
  let sim = run_unit ~p:2 sim (Sync.Fai_queue.enqueue q 2) in
  check_int "enqueue is two RMRs" 2 (Sim.rmrs sim 2)

let test_queue_drain_cursor () =
  let sim, q = queue_machine ~n:4 ~capacity:8 in
  let sim = run_unit ~p:0 sim (Sync.Fai_queue.enqueue q 0) in
  let sim = run_unit ~p:1 sim (Sync.Fai_queue.enqueue q 1) in
  let visit _ = Program.return () in
  let sim, cursor = run ~p:3 sim (Sync.Fai_queue.drain q ~from:0 visit) in
  check_int "cursor after two" 2 cursor;
  let sim = run_unit ~p:2 sim (Sync.Fai_queue.enqueue q 2) in
  let _, cursor = run ~p:3 sim (Sync.Fai_queue.drain q ~from:cursor visit) in
  check_int "incremental drain" 3 cursor

let test_queue_capacity () =
  let sim, q = queue_machine ~n:4 ~capacity:1 in
  let sim = run_unit ~p:0 sim (Sync.Fai_queue.enqueue q 0) in
  Alcotest.check_raises "capacity exceeded"
    (Invalid_argument "Fai_queue.enqueue: capacity exceeded") (fun () ->
      ignore (run_unit ~p:1 sim (Sync.Fai_queue.enqueue q 1)))

let test_queue_length () =
  let sim, q = queue_machine ~n:4 ~capacity:8 in
  let sim = run_unit ~p:0 sim (Sync.Fai_queue.enqueue q 0) in
  let _, len = run ~p:1 sim (Sync.Fai_queue.length q) in
  check_int "length" 1 len

let test_queue_claimed_slot_awaited () =
  (* A drain that encounters a claimed-but-unpublished slot waits for the
     publisher; interleave so that exactly this happens. *)
  let sim, q = queue_machine ~n:3 ~capacity:4 in
  let sim =
    Sim.begin_call sim 0 ~label:"enq"
      (Program.map (fun () -> 0) (Sync.Fai_queue.enqueue q 0))
  in
  let sim = Sim.advance sim 0 (* FAI done, slot write pending *) in
  let sim =
    Sim.begin_call sim 1 ~label:"drain"
      (Sync.Fai_queue.drain q ~from:0 (fun _ -> Program.return ()))
  in
  (* Let the drainer read the tail and spin on the empty slot a few times. *)
  let sim = List.fold_left (fun sim () -> Sim.advance sim 1) sim [ (); (); () ] in
  check_true "drainer still waiting" (Sim.is_running sim 1);
  let sim = Sim.run_to_idle sim 0 in
  let sim = Sim.run_to_idle sim 1 in
  check_true "drain completed after publication" (Sim.is_idle sim 1)

(* --- Leader election --- *)

let election_machine ~n =
  let ctx = Var.Ctx.create () in
  let e = Sync.Leader_election.create ctx ~n in
  let layout = Var.Ctx.freeze ctx in
  (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n, e)

let run_election ~n ~seed participants =
  let sim, e = election_machine ~n in
  let behavior sim p : Schedule.action =
    if Sim.last_result sim p <> None then Stop
    else Start ("elect", Sync.Leader_election.elect e p)
  in
  let sim =
    Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior ~pids:participants
      sim
  in
  (sim, List.map (fun p -> (p, Sim.last_result sim p)) participants)

let test_election_agreement () =
  let _, results = run_election ~n:8 ~seed:11 [ 0; 2; 5; 7 ] in
  let leaders = List.filter_map snd results in
  check_int "everyone decided" 4 (List.length leaders);
  (match leaders with
  | l :: rest ->
    check_true "agreement" (List.for_all (fun x -> x = l) rest);
    check_true "leader is a participant" (List.mem l [ 0; 2; 5; 7 ])
  | [] -> Alcotest.fail "no leader")

let test_election_loser_cost () =
  let sim, results = run_election ~n:8 ~seed:3 (List.init 8 Fun.id) in
  let leader =
    match List.filter_map snd results with l :: _ -> l | [] -> assert false
  in
  List.iter
    (fun p ->
      if p <> leader then
        check_true
          (Printf.sprintf "loser p%d pays O(1): %d RMRs" p (Sim.rmrs sim p))
          (Sim.rmrs sim p <= 2))
    (List.init 8 Fun.id)

let prop_election_agreement =
  qcheck ~count:60 "leader election agrees under random schedules"
    QCheck.(pair (int_range 2 8) (int_bound 10_000))
    (fun (k, seed) ->
      let _, results = run_election ~n:8 ~seed (List.init k Fun.id) in
      match List.filter_map snd results with
      | [] -> false
      | l :: rest -> List.for_all (fun x -> x = l) rest && l < k)

(* --- Local_cas --- *)

let lcas_machine ~n =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let lc = Sync.Local_cas.create ctx ~n ~addrs:[ Var.addr x ] in
  let layout = Var.Ctx.freeze ctx in
  (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n, x, lc)

let test_local_cas_semantics () =
  let sim, x, lc = lcas_machine ~n:2 in
  let a = Var.addr x in
  let sim, r =
    run sim (Sync.Local_cas.cas_program lc 0 ~addr:a ~expected:0 ~update:5)
  in
  check_int "success returns 1" 1 r;
  check_int "value written" 5 (Memory.get (Sim.memory sim) a);
  let sim, r =
    run sim (Sync.Local_cas.cas_program lc 0 ~addr:a ~expected:0 ~update:9)
  in
  check_int "failure returns 0" 0 r;
  check_int "value preserved" 5 (Memory.get (Sim.memory sim) a)

let test_transform_replaces_cas () =
  let sim, x, lc = lcas_machine ~n:2 in
  let prog = Program.map (fun b -> if b then 1 else 0) (Program.cas x ~expected:0 ~update:7) in
  let sim, r = run sim (Sync.Local_cas.transform lc 0 prog) in
  check_int "transformed cas succeeds" 1 r;
  check_true "no CAS steps in history"
    (List.for_all
       (fun (s : History.step) -> Op.kind s.History.inv <> Op.K_cas)
       (Sim.steps sim));
  check_int "value written" 7 (Memory.get (Sim.memory sim) (Var.addr x))

let test_transform_leaves_other_ops () =
  let sim, x, lc = lcas_machine ~n:2 in
  let prog =
    let* () = Program.write x 3 in
    let* v = Program.read x in
    Program.return v
  in
  let _, r = run sim (Sync.Local_cas.transform lc 0 prog) in
  check_int "reads/writes pass through" 3 r

let test_transform_atomicity () =
  (* Two processes attempt a transformed CAS with the same expected value;
     exactly one must succeed, under any interleaving. *)
  let prop seed =
    let sim, x, lc = lcas_machine ~n:2 in
    let prog p =
      Sync.Local_cas.transform lc p
        (Program.map
           (fun b -> if b then 1 else 0)
           (Program.cas x ~expected:0 ~update:(p + 1)))
    in
    let behavior sim p : Schedule.action =
      if Sim.last_result sim p <> None then Stop else Start ("cas", prog p)
    in
    let sim =
      Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior ~pids:[ 0; 1 ]
        sim
    in
    let wins =
      List.length
        (List.filter (fun p -> Sim.last_result sim p = Some 1) [ 0; 1 ])
    in
    wins = 1
  in
  check_true "exactly one winner across seeds"
    (List.for_all prop [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])

let test_local_llsc_semantics () =
  let sim, x, lc = lcas_machine ~n:2 in
  let a = Var.addr x in
  (* LL then SC with no interference: succeeds. *)
  let sim, v = run sim (Sync.Local_cas.ll_program lc 0 ~addr:a) in
  check_int "ll reads value" 0 v;
  let sim, r = run sim (Sync.Local_cas.sc_program lc 0 ~addr:a ~update:7) in
  check_int "sc succeeds" 1 r;
  check_int "value stored" 7 (Memory.get (Sim.memory sim) a);
  (* SC without a fresh link fails (the link was consumed). *)
  let sim, r = run sim (Sync.Local_cas.sc_program lc 0 ~addr:a ~update:9) in
  check_int "stale sc fails" 0 r;
  check_int "value preserved" 7 (Memory.get (Sim.memory sim) a)

let test_local_llsc_interference () =
  let sim, x, lc = lcas_machine ~n:2 in
  let a = Var.addr x in
  let sim, _ = run ~p:0 sim (Sync.Local_cas.ll_program lc 0 ~addr:a) in
  (* p1's transformed write must invalidate p0's link. *)
  let sim, _ = run ~p:1 sim (Sync.Local_cas.write_program lc 1 ~addr:a ~value:5) in
  let sim, r = run ~p:0 sim (Sync.Local_cas.sc_program lc 0 ~addr:a ~update:9) in
  check_int "sc fails after interfering write" 0 r;
  check_int "interferer's value survives" 5 (Memory.get (Sim.memory sim) a)

let test_local_llsc_no_aba () =
  (* Value returns to its original, but the version has moved: SC must
     still fail (hardware LL/SC has no ABA problem). *)
  let sim, x, lc = lcas_machine ~n:2 in
  let a = Var.addr x in
  let sim, _ = run ~p:0 sim (Sync.Local_cas.ll_program lc 0 ~addr:a) in
  let sim, _ = run ~p:1 sim (Sync.Local_cas.write_program lc 1 ~addr:a ~value:5) in
  let sim, _ = run ~p:1 sim (Sync.Local_cas.write_program lc 1 ~addr:a ~value:0) in
  let sim, r = run ~p:0 sim (Sync.Local_cas.sc_program lc 0 ~addr:a ~update:9) in
  ignore sim;
  check_int "ABA write-back still fails the sc" 0 r

let test_transform_llsc_history_clean () =
  let sim, x, lc = lcas_machine ~n:2 in
  let prog =
    let* v = Program.load_linked x in
    let* ok = Program.store_conditional x (v + 1) in
    Program.return (if ok then 1 else 0)
  in
  let sim, r = run sim (Sync.Local_cas.transform lc 0 prog) in
  check_int "transformed ll/sc succeeds" 1 r;
  check_true "no LL/SC/CAS steps in history"
    (List.for_all
       (fun (s : History.step) ->
         match Op.kind s.History.inv with
         | Op.K_ll | Op.K_sc | Op.K_cas -> false
         | Op.K_read | Op.K_write | Op.K_faa | Op.K_fas | Op.K_tas -> true)
       (Sim.steps sim))

let test_transform_rejects_fetch_and_phi () =
  let sim, x, lc = lcas_machine ~n:2 in
  ignore sim;
  let prog = Program.step (Op.Faa (Var.addr x, 1)) in
  Alcotest.check_raises "fetch-and-phi rejected"
    (Invalid_argument "Local_cas.transform: fetch-and-phi on a protected address")
    (fun () -> ignore (Sync.Local_cas.transform lc 0 prog))

let suite =
  [ case "queue FIFO" test_queue_fifo;
    case "queue enqueue costs 2 RMRs" test_queue_enqueue_cost;
    case "queue incremental drain cursor" test_queue_drain_cursor;
    case "queue capacity enforced" test_queue_capacity;
    case "queue length" test_queue_length;
    case "queue drain awaits claimed slot" test_queue_claimed_slot_awaited;
    case "election agreement" test_election_agreement;
    case "election losers pay O(1)" test_election_loser_cost;
    prop_election_agreement;
    case "local cas semantics" test_local_cas_semantics;
    case "transform replaces cas" test_transform_replaces_cas;
    case "transform leaves reads/writes" test_transform_leaves_other_ops;
    case "transformed cas is atomic" test_transform_atomicity;
    case "local ll/sc semantics" test_local_llsc_semantics;
    case "local ll/sc interference" test_local_llsc_interference;
    case "local ll/sc has no ABA" test_local_llsc_no_aba;
    case "transformed ll/sc history is clean" test_transform_llsc_history_clean;
    case "transform rejects fetch-and-phi" test_transform_rejects_fetch_and_phi ]
